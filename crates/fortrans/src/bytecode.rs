//! Bytecode tier: compiles the resolved IR ([`crate::rir`]) into a flat
//! instruction stream executed by [`crate::vm`].
//!
//! The tree-walking interpreter re-dispatches on boxed `RExpr`/`RStmt`
//! nodes for every iteration of every loop and allocates a `Vec<i64>` per
//! subscript list. This tier resolves everything resolvable at compile
//! time instead:
//!
//! * frame variables become indices into unboxed per-type value banks
//!   (`i64`/`f64`/`bool`/array-handle) — see [`VSlot`];
//! * structured control flow becomes jump-target PCs;
//! * fixed-shape local arrays get precomputed strides/bounds
//!   ([`SDims`], the `LoadElemS`/`StoreElemS` fast path);
//! * canonical unit-stride `DO` loops compile to a fused
//!   `DoInitC`/`DoHead1`/`DoIncr1` triple (one bounds check + one
//!   counter store + one increment per iteration);
//! * constant subexpressions fold and provably-dead frame-scalar stores
//!   are eliminated — but only in the *optimized* build variant.
//!
//! Two build variants exist per program: `traced = false` (used by
//! `ExecMode::Serial` / `Parallel`) applies every optimization;
//! `traced = true` (used by `ExecMode::Simulated`) disables anything
//! that would change operation counts and inserts the cost-only
//! instructions (`CostBranch`, `VecEnter`/`VecLeave`) so the VM emits a
//! [`crate::cost::CostTrace`] bit-identical to the interpreter's.
//!
//! Evaluation *order* of side effects (stores, allocations, calls,
//! prints, error checks) mirrors the interpreter exactly; cost-counter
//! ordering within one statement may differ, which is unobservable
//! because counters only segment at iteration/region/critical/vec
//! boundaries — always statement boundaries.
//!
//! One documented divergence: when an entry caller passes an
//! [`crate::engine::ArgVal`] whose shape disagrees with the declared
//! parameter (array for a scalar, or an array handle whose element type
//! differs from the declaration), the interpreter defers the type error
//! to first use while the VM reports it at entry (or converts at load).
//! No real program hits this; the differential suite pins everything
//! else.

use crate::ast::{Bin, RedOp};
use crate::intrinsics::Intr;
use crate::interp::Val;
use crate::rir::*;

/// "No target": flow propagates out of the enclosing range instead.
pub const NO_PC: u32 = u32::MAX;

/// Resolved storage location of a variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VSlot {
    /// Frame scalar in the i64 bank.
    I(u32),
    /// Frame scalar in the f64 bank.
    F(u32),
    /// Frame scalar in the bool bank.
    B(u32),
    /// Frame array handle in the handle bank.
    A(u32),
    /// Global scalar cell.
    GlobS(u32),
    /// Global array cell.
    GlobA(u32),
}

/// Comparison selector for `CmpI`/`CmpF`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// Precomputed layout of a fixed-shape array (column-major strides).
#[derive(Debug, Clone)]
pub struct SDims {
    pub dims: Vec<(i64, i64)>,
    pub strides: Vec<usize>,
}

impl SDims {
    fn of(dims: &[(i64, i64)]) -> SDims {
        let mut strides = Vec::with_capacity(dims.len());
        let mut s = 1usize;
        for &(lo, hi) in dims {
            strides.push(s);
            s *= (hi - lo + 1).max(0) as usize;
        }
        SDims { dims: dims.to_vec(), strides }
    }
}

/// One flat instruction. Operands live on an untyped `u64` stack whose
/// static types the compiler tracks; `B` values are stored as 0/1.
#[derive(Debug, Clone, Copy)]
pub enum BInstr {
    /// Push raw bits.
    Const(u64),
    // Frame scalar access (cost-free, like the interpreter's frames).
    LoadI(u32),
    LoadF(u32),
    LoadB(u32),
    StoreI(u32),
    StoreF(u32),
    StoreB(u32),
    /// Global scalar load (counts one Load).
    LoadG(u32),
    /// Global scalar store (counts one Store).
    StoreG(u32),
    // Cost-free conversions (mirror `Val::as_f` / `as_i` / `as_b`).
    CvtIF,
    CvtFI,
    CvtIB,
    CvtFB,
    // f64 arithmetic.
    AddF,
    SubF,
    MulF,
    DivF,
    PowFF,
    /// `F ** I` with the interpreter's powi-for-small-exponents rule.
    PowFI,
    NegF,
    // i64 arithmetic (wrapping; DivI errors on zero).
    AddI,
    SubI,
    MulI,
    DivI,
    PowII,
    NegI,
    // LOGICAL ops (operands already converted to 0/1).
    NotB,
    AndB,
    OrB,
    CmpF(Cmp),
    CmpI(Cmp),
    /// Defensive: arithmetic `Bin` with `ty == B` — evaluate operands,
    /// then fail like the interpreter.
    FailArith2,
    /// Defensive: `Neg` of a LOGICAL.
    FailNegB,
    /// Type error with a precomputed message (pops nothing).
    FailType { msg: u32 },
    /// Integer-flavored intrinsic (all operands statically I).
    IntrI { f: Intr, argc: u8 },
    /// Float-flavored intrinsic; `to_int` for INT/NINT results.
    IntrF { f: Intr, argc: u8, to_int: bool },
    // Array element access: pops `nsubs` i64 subscripts.
    LoadElem { vs: VSlot, v: u32, nsubs: u8, want: ScalarTy },
    StoreElem { vs: VSlot, v: u32, nsubs: u8, src: ScalarTy },
    /// Static-shape fast path (frame fixed arrays only).
    LoadElemS { a: u32, sd: u32, v: u32, want: ScalarTy },
    StoreElemS { a: u32, sd: u32, v: u32, src: ScalarTy },
    ArrRed { f: ArrRed, vs: VSlot, v: u32, want: ScalarTy },
    AllocatedQ { vs: VSlot },
    Broadcast { vs: VSlot, v: u32, src: ScalarTy },
    CopyArr { dvs: VSlot, dv: u32, svs: VSlot, sv: u32 },
    /// Scalar `!$OMP ATOMIC` target; pops the delta (static ty `ety`).
    AtomicScal { vs: VSlot, v: u32, op: RedOp, ety: ScalarTy, vty: ScalarTy },
    /// Array-element ATOMIC; pops subs then delta.
    AtomicElem { vs: VSlot, v: u32, op: RedOp, nsubs: u8, ety: ScalarTy },
    /// Pops `2*ndims` bounds (lo/hi pairs, in order).
    Alloc { vs: VSlot, v: u32, ndims: u8, ty: ScalarTy },
    Dealloc { vs: VSlot, v: u32 },
    // Control flow.
    Jump(u32),
    /// Pops a 0/1 condition.
    JumpIfFalse(u32),
    /// Traced builds only: `branches += 1`.
    CostBranch,
    /// Traced builds only: serial-loop vectorization bracket.
    VecEnter(VecClass),
    VecLeave,
    /// Pops end, start into i-slots; constant step 1.
    DoInitC { ctr: u32, end: u32 },
    /// Vector superinstruction covering the whole `DoHead1` loop that
    /// follows: executes `vecs[desc]` over `[i[ctr], i[end]]` in chunked
    /// slice form and jumps to `exit`, or — when any runtime guard fails
    /// (alias, bounds, shape, budget, vector tier disabled) — falls
    /// through to the scalar head with no state changed. Optimized
    /// builds only.
    VecLoop { desc: u32, ctr: u32, end: u32, var: u32, exit: u32 },
    /// Pops step, end, start; `check` enforces the zero-step error.
    DoInit { ctr: u32, end: u32, step: u32, check: bool },
    /// Fused unit-stride head: check, store loop var, fall through.
    DoHead1 { ctr: u32, end: u32, var: u32, exit: u32 },
    /// Fused generic-step head for frame-I loop vars.
    DoHeadN { ctr: u32, end: u32, step: u32, var: u32, exit: u32 },
    /// Unfused head (loop var stored by following instructions).
    DoHead { ctr: u32, end: u32, step: u32, exit: u32 },
    DoIncr1 { ctr: u32, head: u32 },
    DoIncr { ctr: u32, step: u32, head: u32 },
    /// Peeks the i64 top of stack; errors if zero ("zero DO step").
    CheckStepNZ,
    // Dynamic flow (crosses an OMP-body / CRITICAL boundary).
    FlowExit,
    FlowCycle,
    FlowReturn,
    /// CRITICAL section: body is `[pc+1, end)`; `exit`/`cycle` give the
    /// enclosing loop's targets at this nesting level, or [`NO_PC`].
    Critical { name: u32, end: u32, exit: u32, cycle: u32 },
    /// OMP PARALLEL DO; stack holds bounds/clauses, body in the descriptor.
    OmpDo { desc: u32 },
    /// Call-depth check + call cost, before argument evaluation.
    CallPre,
    /// By-ref element argument: pops subs into the stash, pushes the value.
    StashElem { vs: VSlot, v: u32, nsubs: u8, want: ScalarTy },
    /// Whole-array argument: pushes the handle onto the array stack.
    PushArr { vs: VSlot, v: u32 },
    Call { spec: u32, push: bool },
    Print { spec: u32 },
    Stop { msg: u32 },
}

/// One OMP PARALLEL DO descriptor.
#[derive(Debug, Clone)]
pub struct OmpDesc {
    /// Loop variables, outermost first (collapse dims after dim 0).
    pub dims: Vec<(VSlot, ScalarTy)>,
    pub has_nt: bool,
    /// Loop schedule from the SCHEDULE clause (static block when absent).
    pub sched: omprt::Schedule,
    /// Body touches per-thread (SAVE / THREADPRIVATE) storage; dynamic
    /// and guided schedules are legalized to static for this region
    /// (see [`omprt::Schedule::legalize_for_per_thread`]).
    pub per_thread_access: bool,
    /// Frame-array slots of PRIVATE rank>0 vars (deep-cloned per thread).
    pub private_arrays: Vec<u32>,
    pub reductions: Vec<RedSpec>,
    /// Body PC range.
    pub body: (u32, u32),
}

#[derive(Debug, Clone, Copy)]
pub struct RedSpec {
    pub op: RedOp,
    pub vs: VSlot,
    pub ty: ScalarTy,
}

/// One resolved call site.
#[derive(Debug, Clone)]
pub struct CallSpec {
    pub callee: u32,
    pub args: Vec<BArg>,
    /// Total stash entries consumed by `Elem` args.
    pub n_stash: u32,
    /// Callee function-result slot.
    pub ret: Option<(VSlot, ScalarTy)>,
}

/// One call argument: how to pop it and where to write it back.
#[derive(Debug, Clone, Copy)]
pub enum BArg {
    /// Value-result scalar: pops the value, writes back after the call.
    Scalar { src_vs: VSlot, src_v: u32, src_ty: ScalarTy, p: VSlot, pty: ScalarTy },
    /// Value-result array element (subscripts held in the stash).
    Elem { vs: VSlot, v: u32, nsubs: u8, want: ScalarTy, p: VSlot, pty: ScalarTy },
    /// Shared whole-array handle.
    Arr { p: u32 },
    /// By-value expression.
    Val { src_ty: ScalarTy, p: VSlot, pty: ScalarTy },
}

/// One PRINT list item (value types resolved statically).
#[derive(Debug, Clone)]
pub enum PItem {
    Str(String),
    Val(ScalarTy),
}

/// A fixed-shape frame array to instantiate per call: (slot, type, dims).
pub type FixedArray = (u32, ScalarTy, Vec<(i64, i64)>);

/// A compiled unit.
#[derive(Debug, Clone)]
pub struct BUnit {
    pub code: Vec<BInstr>,
    /// Per-`VarIdx` resolved slot.
    pub vslots: Vec<VSlot>,
    pub ni: u32,
    pub nf: u32,
    pub nb: u32,
    pub na: u32,
    /// Fixed-shape frame arrays to instantiate per call.
    pub fixed_arrays: Vec<FixedArray>,
    pub calls: Vec<CallSpec>,
    pub omps: Vec<OmpDesc>,
    pub prints: Vec<Vec<PItem>>,
    pub sdims: Vec<SDims>,
    /// Error/CRITICAL-name/STOP message string table.
    pub msgs: Vec<String>,
    /// Function result slot.
    pub result: Option<(VSlot, ScalarTy)>,
    /// Source unit index (for names in diagnostics).
    pub unit: u32,
    /// PC→line debug table: `(first_pc, source_line)`, sorted by pc.
    /// Instructions between two entries belong to the earlier one.
    pub lines: Vec<(u32, u32)>,
    /// Serial DO-loop sites, sorted by `init_pc` (profiling side table).
    pub loops: Vec<BLoopSite>,
    /// Vector superinstruction descriptors (optimized builds only).
    pub vecs: Vec<VecDesc>,
}

impl BUnit {
    /// The source line an instruction was compiled from, if known.
    pub fn line_for_pc(&self, pc: u32) -> Option<u32> {
        match self.lines.binary_search_by_key(&pc, |&(p, _)| p) {
            Ok(i) => Some(self.lines[i].1),
            Err(0) => None,
            Err(i) => Some(self.lines[i - 1].1),
        }
    }

    /// The loop site whose `DoInitC`/`DoInit` sits at exactly `init_pc`.
    pub fn loop_site_at(&self, init_pc: u32) -> Option<&BLoopSite> {
        self.loops
            .binary_search_by_key(&init_pc, |s| s.init_pc)
            .ok()
            .map(|i| &self.loops[i])
    }
}

/// A serial DO loop's static extent, recorded for the profiler: the
/// `DoInitC`/`DoInit` pc identifies the loop on entry, `end_pc` is the
/// first instruction after the loop (where EXIT patches land), and
/// `line` is the DO statement's source line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BLoopSite {
    pub init_pc: u32,
    pub end_pc: u32,
    pub line: u32,
}

// ---------------------------------------------------------------------
// Vector superinstructions
// ---------------------------------------------------------------------

/// "No invariant slot" marker for [`VecSub::inv`] / [`VecOp::SplatI`].
pub const NO_SLOT: u32 = u32::MAX;

/// Lane count of one vector chunk. The executor processes the iteration
/// space in runs of this many elements so the per-op inner loops stay in
/// cache and rustc/LLVM can autovectorize them.
pub const VEC_CHUNK: usize = 64;

/// Caps keeping descriptors (and the executor's scratch) small.
pub const VEC_MAX_DEPTH: u32 = 16;
const VEC_MAX_ACCESSES: usize = 32;
const VEC_MAX_STMTS: usize = 32;
const VEC_MAX_OPS: usize = 256;
const VEC_MAX_ARGC: usize = 8;

/// One affine subscript of a vector access: at iteration value `i` the
/// subscript is `coeff*i + add + frame.i[inv]` (wrapping i64 arithmetic,
/// exactly the scalar tier's; `inv == NO_SLOT` contributes 0). `inv`
/// points either at the loop-invariant variable's own frame slot or at a
/// hidden slot filled by prep code emitted between `DoInitC` and
/// `VecLoop`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VecSub {
    pub coeff: i64,
    pub add: i64,
    pub inv: u32,
}

/// One array stream of a vector loop. Interned: one entry per distinct
/// `(slot, subscripts)` pair, so identical-subscript reads and writes of
/// the same array share an entry (the legality rule that makes chunked
/// statement-at-a-time execution exact).
#[derive(Debug, Clone)]
pub struct VecAccess {
    pub vs: VSlot,
    /// Source var index, for diagnostics.
    pub v: u32,
    pub subs: Vec<VecSub>,
    pub write: bool,
}

/// Postfix micro-op of a vector statement program. Lane vectors live in
/// a depth-indexed f64 scratch; one inner loop over the chunk per op.
#[derive(Debug, Clone, Copy)]
pub enum VecOp {
    /// Gather the access's lanes for the current chunk.
    Load(u32),
    /// Broadcast a constant.
    Splat(f64),
    /// Broadcast a frame f64 scalar.
    SplatF(u32),
    /// Broadcast a global scalar cell (declared REAL, so bits are f64).
    SplatG(u32),
    /// Affine integer as f64: `(coeff*i + add + frame.i[inv]) as f64`.
    SplatI { coeff: i64, add: i64, inv: u32 },
    Add,
    Sub,
    Mul,
    Div,
    /// `x.powf(y)` — the scalar tier's `F ** F` (and its `F ** I` rule
    /// for constant exponents with `|e| > 64`, via a `Splat`).
    Pow,
    /// `x.powi(e)` — the scalar tier's `F ** I` small-constant-exponent
    /// rule, decided at compile time.
    PowI(i32),
    Neg,
    /// Per-element intrinsic through the shared [`Intr::eval_f`].
    Intr { f: Intr, argc: u8 },
    /// Scatter the top lanes into the access (map statements only; last
    /// op of its statement).
    Store(u32),
}

/// Reduction flavor of a single-statement vector loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VecRedOp {
    Add,
    Mul,
}

/// Reduction tail: `acc = acc op t` (or `t op acc` when `acc_left` is
/// false), folded sequentially in iteration order for bit-exactness.
#[derive(Debug, Clone, Copy)]
pub struct VecRed {
    /// Accumulator slot (`F` or `GlobS`).
    pub vs: VSlot,
    pub op: VecRedOp,
    pub acc_left: bool,
}

/// A vectorized loop body: interned accesses, one postfix program per
/// statement, and the optional reduction tail.
#[derive(Debug, Clone)]
pub struct VecDesc {
    pub accesses: Vec<VecAccess>,
    pub stmts: Vec<Vec<VecOp>>,
    pub red: Option<VecRed>,
    /// Max operand depth over all statement programs.
    pub max_depth: u32,
    /// Scalar-tier instructions per iteration (`DoHead1` through
    /// `DoIncr1`), used by the VM to pre-reserve the step budget so a
    /// run that would exhaust its budget falls back to the scalar head
    /// and trips there, exactly as before. Patched after loop emission.
    pub iter_cost: u32,
    /// DO statement source line.
    pub line: u32,
}

/// Per-unit slot assignment (phase 1; needed across units for calls).
struct SlotTable {
    vslots: Vec<VSlot>,
    ni: u32,
    nf: u32,
    nb: u32,
    na: u32,
    fixed_arrays: Vec<FixedArray>,
    result: Option<(VSlot, ScalarTy)>,
}

fn assign_slots(unit: &RUnit) -> SlotTable {
    let (mut ni, mut nf, mut nb, mut na) = (0u32, 0u32, 0u32, 0u32);
    let mut fixed = Vec::new();
    let mut vslots = Vec::with_capacity(unit.vars.len());
    for info in &unit.vars {
        let vs = match info.place {
            Place::Global(cell) => {
                if info.rank > 0 {
                    VSlot::GlobA(cell as u32)
                } else {
                    VSlot::GlobS(cell as u32)
                }
            }
            Place::Frame(_) => {
                if info.rank > 0 {
                    let s = na;
                    na += 1;
                    if !info.allocatable && !info.is_param {
                        fixed.push((s, info.ty, info.dims.clone()));
                    }
                    VSlot::A(s)
                } else {
                    match info.ty {
                        ScalarTy::I => {
                            ni += 1;
                            VSlot::I(ni - 1)
                        }
                        ScalarTy::F => {
                            nf += 1;
                            VSlot::F(nf - 1)
                        }
                        ScalarTy::B => {
                            nb += 1;
                            VSlot::B(nb - 1)
                        }
                    }
                }
            }
        };
        vslots.push(vs);
    }
    let result = unit.result.map(|(rv, rty)| (vslots[rv], rty));
    SlotTable { vslots, ni, nf, nb, na, fixed_arrays: fixed, result }
}

/// Compiles every unit of `prog`. `traced = true` produces the
/// cost-exact variant for `ExecMode::Simulated`.
pub fn compile_program(prog: &RProgram, traced: bool) -> Vec<BUnit> {
    let tables: Vec<SlotTable> = prog.units.iter().map(assign_slots).collect();
    prog.units
        .iter()
        .enumerate()
        .map(|(u, unit)| UnitCompiler::new(prog, unit, u, &tables, traced).compile())
        .collect()
}

// ---------------------------------------------------------------------
// Constant folding / purity analysis
// ---------------------------------------------------------------------

/// Folds `op(a, b)` when total (no error, no environment dependence).
fn const_bin(op: Bin, ty: ScalarTy, a: Val, b: Val) -> Option<Val> {
    match op {
        Bin::And => return Some(Val::B(a.as_b() && b.as_b())),
        Bin::Or => return Some(Val::B(a.as_b() || b.as_b())),
        Bin::Eq | Bin::Ne | Bin::Lt | Bin::Le | Bin::Gt | Bin::Ge => {
            let r = match ty {
                ScalarTy::F => {
                    let (x, y) = (a.as_f(), b.as_f());
                    match op {
                        Bin::Eq => x == y,
                        Bin::Ne => x != y,
                        Bin::Lt => x < y,
                        Bin::Le => x <= y,
                        Bin::Gt => x > y,
                        _ => x >= y,
                    }
                }
                _ => {
                    let (x, y) = (a.as_i(), b.as_i());
                    match op {
                        Bin::Eq => x == y,
                        Bin::Ne => x != y,
                        Bin::Lt => x < y,
                        Bin::Le => x <= y,
                        Bin::Gt => x > y,
                        _ => x >= y,
                    }
                }
            };
            return Some(Val::B(r));
        }
        _ => {}
    }
    match ty {
        ScalarTy::F => {
            let (x, y) = (a.as_f(), b.as_f());
            Some(Val::F(match op {
                Bin::Add => x + y,
                Bin::Sub => x - y,
                Bin::Mul => x * y,
                Bin::Div => x / y,
                Bin::Pow => match b {
                    Val::I(e) if e.unsigned_abs() <= 64 => x.powi(e as i32),
                    _ => x.powf(y),
                },
                _ => unreachable!(),
            }))
        }
        ScalarTy::I => {
            let (x, y) = (a.as_i(), b.as_i());
            Some(Val::I(match op {
                Bin::Add => x.wrapping_add(y),
                Bin::Sub => x.wrapping_sub(y),
                Bin::Mul => x.wrapping_mul(y),
                Bin::Div => {
                    if y == 0 {
                        return None; // keep the runtime error
                    }
                    x / y
                }
                Bin::Pow => {
                    if y < 0 {
                        0
                    } else {
                        x.checked_pow(y.min(63) as u32).unwrap_or(i64::MAX)
                    }
                }
                _ => unreachable!(),
            }))
        }
        ScalarTy::B => None, // runtime "arithmetic on LOGICAL"
    }
}

// ---------------------------------------------------------------------
// The per-unit compiler
// ---------------------------------------------------------------------

/// Pending jump-target patch inside a loop context.
enum Patch {
    /// `Jump` / `JumpIfFalse` / `DoHead*` exit operand at this index.
    Target(usize),
    CritExit(usize),
    CritCycle(usize),
}

/// Flow-resolution context: either a flat loop at this nesting level or
/// a boundary (OMP body / CRITICAL body) flow must cross dynamically.
enum Ctx {
    Loop { exit: Vec<Patch>, cycle: Vec<Patch> },
    Boundary,
}

/// Per-loop vectorization plan (the descriptor plus the prep code the
/// emitter must materialize before the `VecLoop`).
#[derive(Default)]
struct VecPlan {
    accesses: Vec<VecAccess>,
    stmts: Vec<Vec<VecOp>>,
    red: Option<VecRed>,
    max_depth: u32,
    /// Loop-invariant subscript expressions to evaluate into hidden
    /// i-slots between `DoInitC` and `VecLoop`: (dedup key, expr, slot).
    prep: Vec<(String, RExpr, u32)>,
    /// Forward-substituted scalar temps: (temp, final substituted RHS).
    /// The vector body never materializes these, so the emitter places a
    /// fixup block on the `VecLoop` exit edge that recomputes each
    /// temp's last-iteration value (the loop variable already holds the
    /// final trip value there).
    fixup: Vec<(VarIdx, RExpr)>,
}

/// Simulates a vector statement program's operand-stack effect.
/// Returns `(final_depth, max_depth)`, or `None` on underflow. Shared
/// with the bytecode verifier.
pub fn vec_stack_effect(ops: &[VecOp]) -> Option<(u32, u32)> {
    let mut d: i64 = 0;
    let mut mx: i64 = 0;
    for op in ops {
        let (pop, push) = match op {
            VecOp::Load(_)
            | VecOp::Splat(_)
            | VecOp::SplatF(_)
            | VecOp::SplatG(_)
            | VecOp::SplatI { .. } => (0, 1),
            VecOp::Add | VecOp::Sub | VecOp::Mul | VecOp::Div | VecOp::Pow => (2, 1),
            VecOp::PowI(_) | VecOp::Neg => (1, 1),
            VecOp::Intr { argc, .. } => (i64::from(*argc), 1),
            VecOp::Store(_) => (1, 0),
        };
        d -= pop;
        if d < 0 {
            return None;
        }
        d += push;
        mx = mx.max(d);
    }
    Some((d as u32, mx as u32))
}

/// True when `e` references variable `var` anywhere (conservatively true
/// for user calls, whose by-ref arguments could smuggle it through).
fn expr_uses_var(e: &RExpr, var: VarIdx) -> bool {
    match e {
        RExpr::ConstI(_) | RExpr::ConstF(_) | RExpr::ConstB(_) => false,
        RExpr::LoadScalar(v) | RExpr::AllocatedQ(v) | RExpr::ArrReduce { v, .. } => *v == var,
        RExpr::LoadElem { v, subs } => *v == var || subs.iter().any(|s| expr_uses_var(s, var)),
        RExpr::Bin { l, r, .. } => expr_uses_var(l, var) || expr_uses_var(r, var),
        RExpr::Neg(x) | RExpr::Not(x) | RExpr::ToF(x) | RExpr::ToI(x) => expr_uses_var(x, var),
        RExpr::Intrinsic { args, .. } => args.iter().any(|a| expr_uses_var(a, var)),
        RExpr::CallFn { .. } => true,
    }
}

/// `e` with every `LoadScalar` of a forwarded temp replaced by the
/// temp's defining expression (itself already substituted, so the
/// result never references another temp). `CallFn` arguments are left
/// alone: a call anywhere disqualifies the loop from vectorizing, so
/// the substituted tree is never emitted in that case.
fn subst_scalars(e: &RExpr, subst: &[(VarIdx, RExpr)]) -> RExpr {
    if subst.is_empty() {
        return e.clone();
    }
    match e {
        RExpr::LoadScalar(v) => match subst.iter().find(|(u, _)| u == v) {
            Some((_, d)) => d.clone(),
            None => e.clone(),
        },
        RExpr::LoadElem { v, subs } => RExpr::LoadElem {
            v: *v,
            subs: subs.iter().map(|s| subst_scalars(s, subst)).collect(),
        },
        RExpr::Bin { op, ty, l, r } => RExpr::Bin {
            op: *op,
            ty: *ty,
            l: Box::new(subst_scalars(l, subst)),
            r: Box::new(subst_scalars(r, subst)),
        },
        RExpr::Neg(x) => RExpr::Neg(Box::new(subst_scalars(x, subst))),
        RExpr::Not(x) => RExpr::Not(Box::new(subst_scalars(x, subst))),
        RExpr::ToF(x) => RExpr::ToF(Box::new(subst_scalars(x, subst))),
        RExpr::ToI(x) => RExpr::ToI(Box::new(subst_scalars(x, subst))),
        RExpr::Intrinsic { f, args } => RExpr::Intrinsic {
            f: *f,
            args: args.iter().map(|a| subst_scalars(a, subst)).collect(),
        },
        _ => e.clone(),
    }
}

struct UnitCompiler<'a> {
    prog: &'a RProgram,
    unit: &'a RUnit,
    unit_idx: usize,
    tables: &'a [SlotTable],
    traced: bool,
    code: Vec<BInstr>,
    calls: Vec<CallSpec>,
    omps: Vec<OmpDesc>,
    prints: Vec<Vec<PItem>>,
    sdims: Vec<SDims>,
    sdim_of: Vec<Option<u32>>,
    msgs: Vec<String>,
    ctx: Vec<Ctx>,
    /// Frame scalars that are never read (DSE candidates).
    dead: Vec<bool>,
    /// Extra hidden i-slots for loop counters/bounds.
    ni_extra: u32,
    /// PC→line debug table under construction.
    lines: Vec<(u32, u32)>,
    /// Last line recorded in `lines` (u32::MAX = none yet).
    last_line: u32,
    /// Serial DO-loop sites under construction (unordered).
    loops: Vec<BLoopSite>,
    /// Vector descriptors under construction.
    vecs: Vec<VecDesc>,
}

impl<'a> UnitCompiler<'a> {
    fn new(
        prog: &'a RProgram,
        unit: &'a RUnit,
        unit_idx: usize,
        tables: &'a [SlotTable],
        traced: bool,
    ) -> Self {
        // Static-dims table: fixed-shape frame locals only (their handle
        // provably matches the declaration — fresh per call).
        let mut sdims = Vec::new();
        let mut sdim_of = vec![None; unit.vars.len()];
        for (v, info) in unit.vars.iter().enumerate() {
            if matches!(info.place, Place::Frame(_))
                && info.rank > 0
                && !info.allocatable
                && !info.is_param
                && info.dims.len() == info.rank
            {
                sdim_of[v] = Some(sdims.len() as u32);
                sdims.push(SDims::of(&info.dims));
            }
        }
        let dead = if traced { vec![false; unit.vars.len()] } else { find_dead_scalars(unit) };
        UnitCompiler {
            prog,
            unit,
            unit_idx,
            tables,
            traced,
            code: Vec::new(),
            calls: Vec::new(),
            omps: Vec::new(),
            prints: Vec::new(),
            sdims,
            sdim_of,
            msgs: Vec::new(),
            ctx: Vec::new(),
            dead,
            ni_extra: tables[unit_idx].ni,
            lines: Vec::new(),
            last_line: u32::MAX,
            loops: Vec::new(),
            vecs: Vec::new(),
        }
    }

    fn compile(mut self) -> BUnit {
        let body = &self.unit.body;
        self.emit_block(body);
        self.loops.sort_by_key(|s| s.init_pc);
        let t = &self.tables[self.unit_idx];
        BUnit {
            code: self.code,
            vslots: t.vslots.clone(),
            ni: self.ni_extra,
            nf: t.nf,
            nb: t.nb,
            na: t.na,
            fixed_arrays: t.fixed_arrays.clone(),
            calls: self.calls,
            omps: self.omps,
            prints: self.prints,
            sdims: self.sdims,
            msgs: self.msgs,
            result: t.result,
            unit: self.unit_idx as u32,
            lines: self.lines,
            loops: self.loops,
            vecs: self.vecs,
        }
    }

    // ---------- small helpers ----------

    fn vslot(&self, v: VarIdx) -> VSlot {
        self.tables[self.unit_idx].vslots[v]
    }

    fn pc(&self) -> u32 {
        self.code.len() as u32
    }

    fn push(&mut self, i: BInstr) -> usize {
        self.code.push(i);
        self.code.len() - 1
    }

    fn msg(&mut self, s: String) -> u32 {
        if let Some(i) = self.msgs.iter().position(|m| m == &s) {
            return i as u32;
        }
        self.msgs.push(s);
        self.msgs.len() as u32 - 1
    }

    fn hidden_i(&mut self) -> u32 {
        self.ni_extra += 1;
        self.ni_extra - 1
    }

    /// Static type of an expression (mirrors sema's typing).
    fn ty_of(&self, e: &RExpr) -> ScalarTy {
        match e {
            RExpr::ConstI(_) => ScalarTy::I,
            RExpr::ConstF(_) => ScalarTy::F,
            RExpr::ConstB(_) => ScalarTy::B,
            RExpr::LoadScalar(v) | RExpr::LoadElem { v, .. } => self.unit.vars[*v].ty,
            RExpr::Bin { op, ty, .. } => match op {
                Bin::Eq | Bin::Ne | Bin::Lt | Bin::Le | Bin::Gt | Bin::Ge | Bin::And | Bin::Or => {
                    ScalarTy::B
                }
                _ => *ty,
            },
            RExpr::Neg(x) => self.ty_of(x),
            RExpr::Not(_) => ScalarTy::B,
            RExpr::ToF(_) => ScalarTy::F,
            RExpr::ToI(_) => ScalarTy::I,
            RExpr::Intrinsic { f, args } => {
                if self.intr_int_flavor(*f, args) || matches!(f, Intr::Int | Intr::Nint) {
                    ScalarTy::I
                } else {
                    ScalarTy::F
                }
            }
            RExpr::ArrReduce { f, v } => {
                if *f == ArrRed::Size {
                    ScalarTy::I
                } else {
                    self.unit.vars[*v].ty
                }
            }
            RExpr::AllocatedQ(_) => ScalarTy::B,
            RExpr::CallFn { ret, .. } => *ret,
        }
    }

    fn intr_int_flavor(&self, f: Intr, args: &[RExpr]) -> bool {
        matches!(f, Intr::Abs | Intr::Max | Intr::Min | Intr::Mod | Intr::Sign)
            && args.iter().all(|a| self.ty_of(a) == ScalarTy::I)
    }

    /// Conversion instructions between static types (`Val::as_*`).
    fn emit_cvt(&mut self, from: ScalarTy, to: ScalarTy) {
        use ScalarTy::*;
        match (from, to) {
            (I, F) | (B, F) => {
                // B bits are 0/1, a valid i64, so B→F shares CvtIF.
                self.push(BInstr::CvtIF);
            }
            (F, I) => {
                self.push(BInstr::CvtFI);
            }
            (I, B) => {
                self.push(BInstr::CvtIB);
            }
            (F, B) => {
                self.push(BInstr::CvtFB);
            }
            // B→I: bits already 0/1 two's-complement; identical.
            _ => {}
        }
    }

    /// Compile-time constant evaluation (optimized builds only; `None`
    /// keeps the runtime evaluation, including its error behaviour).
    fn fold(&self, e: &RExpr) -> Option<Val> {
        if self.traced {
            return None;
        }
        match e {
            RExpr::ConstI(v) => Some(Val::I(*v)),
            RExpr::ConstF(v) => Some(Val::F(*v)),
            RExpr::ConstB(v) => Some(Val::B(*v)),
            RExpr::Bin { op, ty, l, r } => {
                let a = self.fold(l)?;
                let b = self.fold(r)?;
                const_bin(*op, *ty, a, b)
            }
            RExpr::Neg(x) => match self.fold(x)? {
                Val::I(v) => Some(Val::I(v.wrapping_neg())),
                Val::F(v) => Some(Val::F(-v)),
                Val::B(_) => None,
            },
            RExpr::Not(x) => Some(Val::B(!self.fold(x)?.as_b())),
            RExpr::ToF(x) => Some(Val::F(self.fold(x)?.as_f())),
            RExpr::ToI(x) => Some(Val::I(self.fold(x)?.as_i())),
            RExpr::Intrinsic { f, args } => {
                let vals: Option<Vec<Val>> = args.iter().map(|a| self.fold(a)).collect();
                let vals = vals?;
                if self.intr_int_flavor(*f, args) {
                    let iv: Vec<i64> = vals.iter().map(|v| v.as_i()).collect();
                    Some(Val::I(f.eval_i(&iv)))
                } else {
                    let fv: Vec<f64> = vals.iter().map(|v| v.as_f()).collect();
                    let r = f.eval_f(&fv);
                    Some(match f {
                        Intr::Int | Intr::Nint => Val::I(r as i64),
                        _ => Val::F(r),
                    })
                }
            }
            _ => None,
        }
    }

    /// True when evaluating `e` has no side effects and cannot fail, so
    /// a dead store of it can be dropped entirely.
    fn pure_total(&self, e: &RExpr) -> bool {
        match e {
            RExpr::ConstI(_) | RExpr::ConstF(_) | RExpr::ConstB(_) | RExpr::LoadScalar(_) => true,
            RExpr::AllocatedQ(v) => {
                // Global-scalar ALLOCATED would panic in storage; keep it.
                !matches!(self.vslot(*v), VSlot::GlobS(_))
            }
            RExpr::Bin { op, ty, l, r } => {
                let arith = matches!(op, Bin::Add | Bin::Sub | Bin::Mul | Bin::Div | Bin::Pow);
                if arith && *ty == ScalarTy::B {
                    return false; // runtime type error
                }
                if matches!(op, Bin::Div) && *ty == ScalarTy::I {
                    return false; // possible division by zero
                }
                self.pure_total(l) && self.pure_total(r)
            }
            RExpr::Neg(x) => self.ty_of(x) != ScalarTy::B && self.pure_total(x),
            RExpr::Not(x) | RExpr::ToF(x) | RExpr::ToI(x) => self.pure_total(x),
            RExpr::Intrinsic { args, .. } => args.iter().all(|a| self.pure_total(a)),
            RExpr::LoadElem { .. } | RExpr::ArrReduce { .. } | RExpr::CallFn { .. } => false,
        }
    }

    // ---------- expression emission ----------

    /// Emits `e`; leaves one value of static type `ty_of(e)` on the stack.
    fn emit_expr(&mut self, e: &RExpr) {
        if let Some(v) = self.fold(e) {
            let bits = val_bits(v, self.ty_of(e));
            self.push(BInstr::Const(bits));
            return;
        }
        match e {
            RExpr::ConstI(v) => {
                self.push(BInstr::Const(*v as u64));
            }
            RExpr::ConstF(v) => {
                self.push(BInstr::Const(v.to_bits()));
            }
            RExpr::ConstB(v) => {
                self.push(BInstr::Const(u64::from(*v)));
            }
            RExpr::LoadScalar(v) => self.emit_load_scalar(*v),
            RExpr::LoadElem { v, subs } => {
                self.emit_subs(subs);
                self.emit_elem_load(*v, subs.len(), self.unit.vars[*v].ty, false);
            }
            RExpr::Bin { op, ty, l, r } => self.emit_bin(*op, *ty, l, r),
            RExpr::Neg(x) => {
                self.emit_expr(x);
                match self.ty_of(x) {
                    ScalarTy::F => self.push(BInstr::NegF),
                    ScalarTy::I => self.push(BInstr::NegI),
                    ScalarTy::B => self.push(BInstr::FailNegB),
                };
            }
            RExpr::Not(x) => {
                self.emit_expr(x);
                self.emit_cvt(self.ty_of(x), ScalarTy::B);
                self.push(BInstr::NotB);
            }
            RExpr::ToF(x) => {
                self.emit_expr(x);
                self.emit_cvt(self.ty_of(x), ScalarTy::F);
            }
            RExpr::ToI(x) => {
                self.emit_expr(x);
                self.emit_cvt(self.ty_of(x), ScalarTy::I);
            }
            RExpr::Intrinsic { f, args } => {
                let int_flavor = self.intr_int_flavor(*f, args);
                for a in args {
                    self.emit_expr(a);
                    if !int_flavor {
                        self.emit_cvt(self.ty_of(a), ScalarTy::F);
                    }
                }
                let argc = args.len() as u8;
                if int_flavor {
                    self.push(BInstr::IntrI { f: *f, argc });
                } else {
                    self.push(BInstr::IntrF {
                        f: *f,
                        argc,
                        to_int: matches!(f, Intr::Int | Intr::Nint),
                    });
                }
            }
            RExpr::ArrReduce { f, v } => {
                let want = self.ty_of(e);
                self.push(BInstr::ArrRed { f: *f, vs: self.vslot(*v), v: *v as u32, want });
            }
            RExpr::AllocatedQ(v) => {
                let vs = self.vslot(*v);
                match vs {
                    VSlot::I(_) | VSlot::F(_) | VSlot::B(_) => {
                        // Interpreter: a scalar frame slot is never
                        // `FrameVal::Arr(Some)` → constant false.
                        self.push(BInstr::Const(0));
                    }
                    _ => {
                        self.push(BInstr::AllocatedQ { vs });
                    }
                }
            }
            RExpr::CallFn { unit, args, ret: _ } => {
                self.emit_call(*unit, args, true);
            }
        }
    }

    fn emit_bin(&mut self, op: Bin, ty: ScalarTy, l: &RExpr, r: &RExpr) {
        use ScalarTy::*;
        let (lt, rt) = (self.ty_of(l), self.ty_of(r));
        match op {
            Bin::And | Bin::Or => {
                self.emit_expr(l);
                self.emit_cvt(lt, B);
                self.emit_expr(r);
                self.emit_cvt(rt, B);
                self.push(if op == Bin::And { BInstr::AndB } else { BInstr::OrB });
            }
            Bin::Eq | Bin::Ne | Bin::Lt | Bin::Le | Bin::Gt | Bin::Ge => {
                let c = match op {
                    Bin::Eq => Cmp::Eq,
                    Bin::Ne => Cmp::Ne,
                    Bin::Lt => Cmp::Lt,
                    Bin::Le => Cmp::Le,
                    Bin::Gt => Cmp::Gt,
                    _ => Cmp::Ge,
                };
                if ty == F {
                    self.emit_expr(l);
                    self.emit_cvt(lt, F);
                    self.emit_expr(r);
                    self.emit_cvt(rt, F);
                    self.push(BInstr::CmpF(c));
                } else {
                    // I and B compare on as_i (B bits are 0/1).
                    self.emit_expr(l);
                    self.emit_cvt(lt, I);
                    self.emit_expr(r);
                    self.emit_cvt(rt, I);
                    self.push(BInstr::CmpI(c));
                }
            }
            Bin::Add | Bin::Sub | Bin::Mul | Bin::Div | Bin::Pow => match ty {
                F => {
                    self.emit_expr(l);
                    self.emit_cvt(lt, F);
                    self.emit_expr(r);
                    if op == Bin::Pow && rt == I {
                        // Keep the integer exponent for the powi rule.
                        self.push(BInstr::PowFI);
                    } else {
                        self.emit_cvt(rt, F);
                        self.push(match op {
                            Bin::Add => BInstr::AddF,
                            Bin::Sub => BInstr::SubF,
                            Bin::Mul => BInstr::MulF,
                            Bin::Div => BInstr::DivF,
                            _ => BInstr::PowFF,
                        });
                    }
                }
                I => {
                    self.emit_expr(l);
                    self.emit_cvt(lt, I);
                    self.emit_expr(r);
                    self.emit_cvt(rt, I);
                    self.push(match op {
                        Bin::Add => BInstr::AddI,
                        Bin::Sub => BInstr::SubI,
                        Bin::Mul => BInstr::MulI,
                        Bin::Div => BInstr::DivI,
                        _ => BInstr::PowII,
                    });
                }
                B => {
                    self.emit_expr(l);
                    self.emit_expr(r);
                    self.push(BInstr::FailArith2);
                }
            },
        }
    }

    fn emit_load_scalar(&mut self, v: VarIdx) {
        match self.vslot(v) {
            VSlot::I(s) => {
                self.push(BInstr::LoadI(s));
            }
            VSlot::F(s) => {
                self.push(BInstr::LoadF(s));
            }
            VSlot::B(s) => {
                self.push(BInstr::LoadB(s));
            }
            VSlot::GlobS(c) => {
                self.push(BInstr::LoadG(c));
            }
            VSlot::A(_) | VSlot::GlobA(_) => {
                let m = self.msg(format!("array `{}` read as scalar", self.unit.vars[v].name));
                self.push(BInstr::FailType { msg: m });
            }
        }
    }

    /// Emits a store to scalar var `v` from a stack value of type `src`.
    fn emit_store_scalar(&mut self, v: VarIdx, src: ScalarTy) {
        let ty = self.unit.vars[v].ty;
        self.emit_cvt(src, ty);
        match self.vslot(v) {
            VSlot::I(s) => {
                self.push(BInstr::StoreI(s));
            }
            VSlot::F(s) => {
                self.push(BInstr::StoreF(s));
            }
            VSlot::B(s) => {
                self.push(BInstr::StoreB(s));
            }
            VSlot::GlobS(c) => {
                self.push(BInstr::StoreG(c));
            }
            VSlot::A(_) | VSlot::GlobA(_) => unreachable!("sema rejects scalar store to array"),
        }
    }

    /// Subscript expressions, each coerced to I.
    fn emit_subs(&mut self, subs: &[RExpr]) {
        for s in subs {
            self.emit_expr(s);
            self.emit_cvt(self.ty_of(s), ScalarTy::I);
        }
    }

    fn emit_elem_load(&mut self, v: VarIdx, nsubs: usize, want: ScalarTy, stash: bool) {
        let vs = self.vslot(v);
        if stash {
            self.push(BInstr::StashElem { vs, v: v as u32, nsubs: nsubs as u8, want });
            return;
        }
        if !self.traced {
            if let (Some(sd), VSlot::A(a)) = (self.sdim_of[v], vs) {
                if self.sdims[sd as usize].dims.len() == nsubs {
                    self.push(BInstr::LoadElemS { a, sd, v: v as u32, want });
                    return;
                }
            }
        }
        self.push(BInstr::LoadElem { vs, v: v as u32, nsubs: nsubs as u8, want });
    }

    fn emit_elem_store(&mut self, v: VarIdx, nsubs: usize, src: ScalarTy) {
        let vs = self.vslot(v);
        if !self.traced {
            if let (Some(sd), VSlot::A(a)) = (self.sdim_of[v], vs) {
                if self.sdims[sd as usize].dims.len() == nsubs {
                    self.push(BInstr::StoreElemS { a, sd, v: v as u32, src });
                    return;
                }
            }
        }
        self.push(BInstr::StoreElem { vs, v: v as u32, nsubs: nsubs as u8, src });
    }

    // ---------- calls ----------

    fn emit_call(&mut self, callee: UnitId, args: &[RArg], push: bool) {
        self.push(BInstr::CallPre);
        let ct = &self.tables[callee];
        let cunit = &self.prog.units[callee];
        let mut bargs = Vec::with_capacity(args.len());
        let mut n_stash = 0u32;
        for (k, arg) in args.iter().enumerate() {
            let pvar = cunit.params[k];
            let p = ct.vslots[pvar];
            let pty = cunit.vars[pvar].ty;
            match arg {
                RArg::ByRefScalar(v) => {
                    self.emit_load_scalar(*v);
                    let src_ty = self.unit.vars[*v].ty;
                    bargs.push(BArg::Scalar {
                        src_vs: self.vslot(*v),
                        src_v: *v as u32,
                        src_ty,
                        p,
                        pty,
                    });
                }
                RArg::ByRefElem { v, subs } => {
                    self.emit_subs(subs);
                    let want = self.unit.vars[*v].ty;
                    self.emit_elem_load(*v, subs.len(), want, true);
                    n_stash += subs.len() as u32;
                    bargs.push(BArg::Elem {
                        vs: self.vslot(*v),
                        v: *v as u32,
                        nsubs: subs.len() as u8,
                        want,
                        p,
                        pty,
                    });
                }
                RArg::Array(v) => {
                    self.push(BInstr::PushArr { vs: self.vslot(*v), v: *v as u32 });
                    let VSlot::A(pa) = p else {
                        unreachable!("array param has an A slot")
                    };
                    bargs.push(BArg::Arr { p: pa });
                }
                RArg::Value(e) => {
                    self.emit_expr(e);
                    bargs.push(BArg::Val { src_ty: self.ty_of(e), p, pty });
                }
            }
        }
        let spec = CallSpec { callee: callee as u32, args: bargs, n_stash, ret: ct.result };
        self.calls.push(spec);
        let s = self.calls.len() as u32 - 1;
        self.push(BInstr::Call { spec: s, push });
    }

    // ---------- statements ----------

    fn emit_block(&mut self, body: &[SpStmt]) {
        for sp in body {
            if self.last_line != sp.line {
                let pc = self.pc();
                self.lines.push((pc, sp.line));
                self.last_line = sp.line;
            }
            self.emit_stmt(&sp.s);
        }
    }

    /// Resolves EXIT at the current position: static jump or dynamic flow.
    fn nearest_loop(&mut self) -> Option<&mut Ctx> {
        match self.ctx.last_mut() {
            Some(c @ Ctx::Loop { .. }) => Some(c),
            _ => None,
        }
    }

    fn emit_stmt(&mut self, s: &RStmt) {
        match s {
            RStmt::AssignScalar { v, e } => {
                if self.dead[*v] && self.pure_total(e) {
                    return; // dead-store elimination (optimized builds)
                }
                self.emit_expr(e);
                self.emit_store_scalar(*v, self.ty_of(e));
            }
            RStmt::AssignElem { v, subs, e } => {
                self.emit_subs(subs);
                self.emit_expr(e);
                self.emit_elem_store(*v, subs.len(), self.ty_of(e));
            }
            RStmt::Broadcast { v, e } => {
                self.emit_expr(e);
                self.push(BInstr::Broadcast {
                    vs: self.vslot(*v),
                    v: *v as u32,
                    src: self.ty_of(e),
                });
            }
            RStmt::CopyArray { dst, src } => {
                self.push(BInstr::CopyArr {
                    dvs: self.vslot(*dst),
                    dv: *dst as u32,
                    svs: self.vslot(*src),
                    sv: *src as u32,
                });
            }
            RStmt::AtomicUpdate { v, subs, op, e } => {
                self.emit_expr(e);
                let ety = self.ty_of(e);
                let info = &self.unit.vars[*v];
                if info.rank == 0 {
                    self.push(BInstr::AtomicScal {
                        vs: self.vslot(*v),
                        v: *v as u32,
                        op: *op,
                        ety,
                        vty: info.ty,
                    });
                } else {
                    self.emit_subs(subs);
                    self.push(BInstr::AtomicElem {
                        vs: self.vslot(*v),
                        v: *v as u32,
                        op: *op,
                        nsubs: subs.len() as u8,
                        ety,
                    });
                }
            }
            RStmt::If { arms, else_body } => {
                if self.traced {
                    self.push(BInstr::CostBranch);
                }
                let mut end_jumps = Vec::new();
                for (cond, body) in arms {
                    self.emit_expr(cond);
                    self.emit_cvt(self.ty_of(cond), ScalarTy::B);
                    let jf = self.push(BInstr::JumpIfFalse(NO_PC));
                    self.emit_block(body);
                    end_jumps.push(self.push(BInstr::Jump(NO_PC)));
                    let here = self.pc();
                    self.set_target(jf, here);
                }
                self.emit_block(else_body);
                let end = self.pc();
                for j in end_jumps {
                    self.set_target(j, end);
                }
            }
            RStmt::DoWhile { cond, body } => {
                let head = self.pc();
                if self.traced {
                    self.push(BInstr::CostBranch);
                }
                self.emit_expr(cond);
                self.emit_cvt(self.ty_of(cond), ScalarTy::B);
                let jf = self.push(BInstr::JumpIfFalse(NO_PC));
                self.ctx.push(Ctx::Loop { exit: vec![Patch::Target(jf)], cycle: Vec::new() });
                self.emit_block(body);
                self.push(BInstr::Jump(head));
                let Some(Ctx::Loop { exit, cycle }) = self.ctx.pop() else { unreachable!() };
                let end = self.pc();
                for p in exit {
                    self.apply_patch(p, end);
                }
                for p in cycle {
                    self.apply_patch(p, head);
                }
            }
            RStmt::Do { var, start, end, step, body, omp, vec, collapse_with } => {
                if let Some(o) = omp {
                    self.emit_omp_do(*var, start, end, step.as_ref(), body, o, collapse_with);
                } else {
                    self.emit_serial_do(*var, start, end, step.as_ref(), body, *vec);
                }
            }
            RStmt::CallSub { unit, args } => {
                self.emit_call(*unit, args, false);
            }
            RStmt::Allocate { v, dims } => {
                for (lo, hi) in dims {
                    self.emit_expr(lo);
                    self.emit_cvt(self.ty_of(lo), ScalarTy::I);
                    self.emit_expr(hi);
                    self.emit_cvt(self.ty_of(hi), ScalarTy::I);
                }
                self.push(BInstr::Alloc {
                    vs: self.vslot(*v),
                    v: *v as u32,
                    ndims: dims.len() as u8,
                    ty: self.unit.vars[*v].ty,
                });
            }
            RStmt::Deallocate { v } => {
                self.push(BInstr::Dealloc { vs: self.vslot(*v), v: *v as u32 });
            }
            RStmt::Critical { name, body } => {
                let m = self.msg(name.clone());
                // Resolve the enclosing loop's targets at *this* level.
                let idx = self.push(BInstr::Critical { name: m, end: NO_PC, exit: NO_PC, cycle: NO_PC });
                if let Some(Ctx::Loop { exit, cycle }) = self.ctx.last_mut() {
                    exit.push(Patch::CritExit(idx));
                    cycle.push(Patch::CritCycle(idx));
                }
                self.ctx.push(Ctx::Boundary);
                self.emit_block(body);
                self.ctx.pop();
                let end = self.pc();
                if let BInstr::Critical { end: e, .. } = &mut self.code[idx] {
                    *e = end;
                }
            }
            RStmt::Return => {
                self.push(BInstr::FlowReturn);
            }
            RStmt::Exit => {
                if self.nearest_loop().is_some() {
                    let j = self.push(BInstr::Jump(NO_PC));
                    if let Some(Ctx::Loop { exit, .. }) = self.ctx.last_mut() {
                        exit.push(Patch::Target(j));
                    }
                } else {
                    self.push(BInstr::FlowExit);
                }
            }
            RStmt::Cycle => {
                if self.nearest_loop().is_some() {
                    let j = self.push(BInstr::Jump(NO_PC));
                    if let Some(Ctx::Loop { cycle, .. }) = self.ctx.last_mut() {
                        cycle.push(Patch::Target(j));
                    }
                } else {
                    self.push(BInstr::FlowCycle);
                }
            }
            RStmt::Print(items) => {
                let mut spec = Vec::with_capacity(items.len());
                for item in items {
                    match item {
                        PrintItem::Str(s) => spec.push(PItem::Str(s.clone())),
                        PrintItem::Val(e) => {
                            self.emit_expr(e);
                            spec.push(PItem::Val(self.ty_of(e)));
                        }
                    }
                }
                self.prints.push(spec);
                let p = self.prints.len() as u32 - 1;
                self.push(BInstr::Print { spec: p });
            }
            RStmt::Stop(msg) => {
                let m = self.msg(msg.clone().unwrap_or_default());
                self.push(BInstr::Stop { msg: m });
            }
            RStmt::Nop => {}
        }
    }

    fn set_target(&mut self, idx: usize, pc: u32) {
        match &mut self.code[idx] {
            BInstr::Jump(t) | BInstr::JumpIfFalse(t) => *t = pc,
            BInstr::DoHead1 { exit, .. }
            | BInstr::DoHeadN { exit, .. }
            | BInstr::DoHead { exit, .. } => *exit = pc,
            other => unreachable!("not a patchable instruction: {other:?}"),
        }
    }

    fn apply_patch(&mut self, p: Patch, pc: u32) {
        match p {
            Patch::Target(i) => self.set_target(i, pc),
            Patch::CritExit(i) => {
                if let BInstr::Critical { exit, .. } = &mut self.code[i] {
                    *exit = pc;
                }
            }
            Patch::CritCycle(i) => {
                if let BInstr::Critical { cycle, .. } = &mut self.code[i] {
                    *cycle = pc;
                }
            }
        }
    }

    // ---------- vector superinstruction analysis ----------

    /// Decides whether a canonical unit-stride frame-I DO loop body can
    /// execute as a vector superinstruction, and if so builds its plan.
    ///
    /// Legality: every statement is an elementwise REAL array assignment
    /// with affine subscripts — any array both read and written must use
    /// *identical* subscripts with at least one loop-dependent dimension,
    /// so the only dependences are loop-independent — or the body is a
    /// single `acc = acc + term` / `acc * term` REAL reduction whose term
    /// does not reference the accumulator. REAL scalar temps assigned
    /// from expressions with no loop-carried reads are forward-
    /// substituted into their consumers (privatization): they don't
    /// block either shape, and a fixup block on the vector exit edge
    /// restores their final values. Anything else (control flow, calls,
    /// I/O, allocation, non-affine subscripts, LOGICAL/INTEGER element
    /// types) keeps the scalar loop.
    fn analyze_vec(&mut self, var: VarIdx, body: &[SpStmt]) -> Option<VecPlan> {
        let mut plan = VecPlan::default();
        let mut real: Vec<&RStmt> = Vec::new();
        for sp in body {
            match &sp.s {
                RStmt::Nop => {}
                // Statements DSE drops in this build don't block the
                // vector path either.
                RStmt::AssignScalar { v, e } if self.dead[*v] && self.pure_total(e) => {}
                s => real.push(s),
            }
        }
        if real.len() > VEC_MAX_STMTS {
            return None;
        }
        // Pre-scan for the forwarding legality checks: arrays written and
        // scalars assigned anywhere in the body. A temp's RHS may not
        // read either set — a written array would make the fixup re-read
        // clobbered elements, and a still-assigned scalar read is either
        // loop-carried or an accumulator reference.
        let mut awritten: Vec<VarIdx> = Vec::new();
        let mut sassigned: Vec<VarIdx> = Vec::new();
        for s in &real {
            match s {
                RStmt::AssignElem { v, .. } => awritten.push(*v),
                RStmt::AssignScalar { v, .. } => sassigned.push(*v),
                _ => return None, // control flow, calls, I/O: scalar only
            }
        }
        let mut subst: Vec<(VarIdx, RExpr)> = Vec::new();
        let mut maps: Vec<(VarIdx, Vec<RExpr>, RExpr)> = Vec::new();
        let mut red_stmt: Option<(VarIdx, RExpr)> = None;
        for s in &real {
            match s {
                RStmt::AssignElem { v, subs, e } => {
                    let subs2: Vec<RExpr> =
                        subs.iter().map(|s| subst_scalars(s, &subst)).collect();
                    maps.push((*v, subs2, subst_scalars(e, &subst)));
                }
                RStmt::AssignScalar { v, e } => {
                    let e2 = subst_scalars(e, &subst);
                    let fwd = matches!(self.vslot(*v), VSlot::F(_))
                        && self.unit.vars[*v].ty == ScalarTy::F
                        && self.ty_of(&e2) == ScalarTy::F
                        && self.vec_temp_ok(&e2, &awritten, &sassigned)
                        && self.vec_intern_reads(&e2, var, &mut plan).is_some();
                    if fwd {
                        match subst.iter_mut().find(|(u, _)| u == v) {
                            Some(slot) => slot.1 = e2,
                            None => subst.push((*v, e2)),
                        }
                    } else {
                        // Not forwardable: the only remaining legal role
                        // is the (single) reduction statement.
                        if red_stmt.is_some() {
                            return None;
                        }
                        red_stmt = Some((*v, e2));
                    }
                }
                _ => unreachable!(),
            }
        }
        if let Some((acc, e)) = red_stmt {
            // Reduction shape: the accumulator update must be the only
            // non-forwarded statement.
            if !maps.is_empty() {
                return None;
            }
            if self.unit.vars[acc].ty != ScalarTy::F {
                return None;
            }
            let avs = self.vslot(acc);
            if !matches!(avs, VSlot::F(_) | VSlot::GlobS(_)) {
                return None;
            }
            let RExpr::Bin { op, ty: ScalarTy::F, l, r } = &e else { return None };
            let rop = match op {
                Bin::Add => VecRedOp::Add,
                Bin::Mul => VecRedOp::Mul,
                _ => return None,
            };
            let is_acc = |x: &RExpr| matches!(x, RExpr::LoadScalar(v) if *v == acc);
            let (acc_left, term) = match (is_acc(l), is_acc(r)) {
                (true, false) => (true, r.as_ref()),
                (false, true) => (false, l.as_ref()),
                _ => return None,
            };
            // After substitution the term may only reference a body-
            // assigned scalar through use-before-def — loop-carried, so
            // reject (this also subsumes the accumulator itself).
            if sassigned.iter().any(|&t| expr_uses_var(term, t)) {
                return None;
            }
            let mut ops = Vec::new();
            self.vec_operand_f(term, var, &mut plan, &mut ops)?;
            plan.stmts.push(ops);
            plan.red = Some(VecRed { vs: avs, op: rop, acc_left });
        } else {
            // Map shape: every non-forwarded statement an elementwise
            // store. A body of only forwarded temps stays scalar — the
            // empty vector loop would win nothing.
            if maps.is_empty() && !subst.is_empty() {
                return None;
            }
            for (v, subs, e) in &maps {
                // A leftover reference to a body-assigned scalar is a
                // use-before-def (loop-carried) read: the splat/prep
                // machinery would freeze its pre-loop value.
                if sassigned.iter().any(|&t| {
                    expr_uses_var(e, t) || subs.iter().any(|s| expr_uses_var(s, t))
                }) {
                    return None;
                }
                let a = self.vec_access(*v, subs, var, true, &mut plan)?;
                let mut ops = Vec::new();
                self.vec_operand_f(e, var, &mut plan, &mut ops)?;
                ops.push(VecOp::Store(a));
                plan.stmts.push(ops);
            }
        }
        plan.fixup = subst;
        // Dependence rule: distinct subscript patterns on a written array
        // would need cross-element ordering — reject. (Identical patterns
        // were interned into one entry above.)
        for (i, a) in plan.accesses.iter().enumerate() {
            for b in plan.accesses.iter().skip(i + 1) {
                if a.vs == b.vs && (a.write || b.write) {
                    return None;
                }
            }
            // Injectivity: a write must move with the loop, else later
            // elements overwrite earlier ones out of statement order.
            if a.write && a.subs.iter().all(|s| s.coeff == 0) {
                return None;
            }
        }
        for ops in &plan.stmts {
            let (fin, mx) = vec_stack_effect(ops)?;
            let want = u32::from(plan.red.is_some());
            if fin != want || mx > VEC_MAX_DEPTH {
                return None;
            }
            plan.max_depth = plan.max_depth.max(mx);
        }
        Some(plan)
    }

    /// Whether a (substituted) scalar-temp RHS is safe to forward: no
    /// trap potential outside interned array reads, no read of a scalar
    /// assigned in the body (loop-carried or accumulator), and no read
    /// of an array the body writes (the exit fixup re-evaluates the RHS
    /// after all vector stores have landed). Array element reads are
    /// allowed — `vec_intern_reads` registers them so the vector
    /// entry guard proves them in-bounds for the whole trip range.
    fn vec_temp_ok(&self, e: &RExpr, awritten: &[VarIdx], sassigned: &[VarIdx]) -> bool {
        match e {
            RExpr::ConstI(_) | RExpr::ConstF(_) | RExpr::ConstB(_) => true,
            RExpr::LoadScalar(v) => !sassigned.contains(v),
            RExpr::AllocatedQ(v) => !matches!(self.vslot(*v), VSlot::GlobS(_)),
            RExpr::LoadElem { v, subs } => {
                !awritten.contains(v)
                    && subs.iter().all(|s| self.vec_temp_ok(s, awritten, sassigned))
            }
            RExpr::Bin { op, ty, l, r } => {
                let arith = matches!(op, Bin::Add | Bin::Sub | Bin::Mul | Bin::Div | Bin::Pow);
                if arith && *ty == ScalarTy::B {
                    return false; // runtime type error
                }
                if matches!(op, Bin::Div) && *ty == ScalarTy::I {
                    return false; // possible division by zero
                }
                self.vec_temp_ok(l, awritten, sassigned) && self.vec_temp_ok(r, awritten, sassigned)
            }
            RExpr::Neg(x) => {
                self.ty_of(x) != ScalarTy::B && self.vec_temp_ok(x, awritten, sassigned)
            }
            RExpr::Not(x) | RExpr::ToF(x) | RExpr::ToI(x) => {
                self.vec_temp_ok(x, awritten, sassigned)
            }
            RExpr::Intrinsic { args, .. } => {
                args.iter().all(|a| self.vec_temp_ok(a, awritten, sassigned))
            }
            RExpr::ArrReduce { .. } | RExpr::CallFn { .. } => false,
        }
    }

    /// Interns every array element read of a forwarded temp's RHS as a
    /// read access of the plan, so the vector entry guard bounds-checks
    /// it (the exit fixup re-executes the read outside any per-element
    /// check) and the dependence rule sees it. Fails on non-affine
    /// subscripts, which would leave the fixup read unprovable.
    fn vec_intern_reads(
        &mut self,
        e: &RExpr,
        var: VarIdx,
        plan: &mut VecPlan,
    ) -> Option<()> {
        match e {
            RExpr::ConstI(_)
            | RExpr::ConstF(_)
            | RExpr::ConstB(_)
            | RExpr::LoadScalar(_)
            | RExpr::AllocatedQ(_) => Some(()),
            RExpr::LoadElem { v, subs } => {
                self.vec_access(*v, subs, var, false, plan)?;
                Some(())
            }
            RExpr::Bin { l, r, .. } => {
                self.vec_intern_reads(l, var, plan)?;
                self.vec_intern_reads(r, var, plan)
            }
            RExpr::Neg(x) | RExpr::Not(x) | RExpr::ToF(x) | RExpr::ToI(x) => {
                self.vec_intern_reads(x, var, plan)
            }
            RExpr::Intrinsic { args, .. } => {
                for a in args {
                    self.vec_intern_reads(a, var, plan)?;
                }
                Some(())
            }
            RExpr::ArrReduce { .. } | RExpr::CallFn { .. } => None,
        }
    }

    /// Interns one affine array access of a vector loop.
    fn vec_access(
        &mut self,
        v: VarIdx,
        subs: &[RExpr],
        var: VarIdx,
        write: bool,
        plan: &mut VecPlan,
    ) -> Option<u32> {
        let vs = self.vslot(v);
        if !matches!(vs, VSlot::A(_) | VSlot::GlobA(_)) {
            return None;
        }
        let info = &self.unit.vars[v];
        if info.ty != ScalarTy::F || info.rank != subs.len() {
            return None;
        }
        let mut vsubs = Vec::with_capacity(subs.len());
        for s in subs {
            let (coeff, add, inv) = self.vec_affine(s, var)?;
            let slot = match inv {
                None => NO_SLOT,
                Some(x) => self.vec_inv_slot(&x, plan)?,
            };
            vsubs.push(VecSub { coeff, add, inv: slot });
        }
        if let Some(i) = plan.accesses.iter().position(|a| a.vs == vs && a.subs == vsubs) {
            plan.accesses[i].write |= write;
            return Some(i as u32);
        }
        if plan.accesses.len() >= VEC_MAX_ACCESSES {
            return None;
        }
        plan.accesses.push(VecAccess { vs, v: v as u32, subs: vsubs, write });
        Some(plan.accesses.len() as u32 - 1)
    }

    /// Splits an I-typed expression into `coeff*var + add + invariant`.
    /// The invariant remainder comes back as a (possibly synthetic)
    /// expression; integer arithmetic distributes exactly over the
    /// wrapping ring, so the decomposition preserves scalar semantics.
    fn vec_affine(&mut self, e: &RExpr, var: VarIdx) -> Option<(i64, i64, Option<RExpr>)> {
        if let Some(v) = self.fold(e) {
            return Some((0, v.as_i(), None));
        }
        if !expr_uses_var(e, var) {
            return Some((0, 0, Some(e.clone())));
        }
        let add_inv = |a: Option<RExpr>, b: Option<RExpr>| match (a, b) {
            (None, x) | (x, None) => x,
            (Some(a), Some(b)) => Some(RExpr::Bin {
                op: Bin::Add,
                ty: ScalarTy::I,
                l: Box::new(a),
                r: Box::new(b),
            }),
        };
        let neg_inv = |x: Option<RExpr>| x.map(|x| RExpr::Neg(Box::new(x)));
        match e {
            RExpr::LoadScalar(v) if *v == var => Some((1, 0, None)),
            RExpr::Bin { op: Bin::Add, ty: ScalarTy::I, l, r } => {
                let (c1, a1, i1) = self.vec_affine(l, var)?;
                let (c2, a2, i2) = self.vec_affine(r, var)?;
                Some((c1.checked_add(c2)?, a1.checked_add(a2)?, add_inv(i1, i2)))
            }
            RExpr::Bin { op: Bin::Sub, ty: ScalarTy::I, l, r } => {
                let (c1, a1, i1) = self.vec_affine(l, var)?;
                let (c2, a2, i2) = self.vec_affine(r, var)?;
                Some((c1.checked_sub(c2)?, a1.checked_sub(a2)?, add_inv(i1, neg_inv(i2))))
            }
            RExpr::Bin { op: Bin::Mul, ty: ScalarTy::I, l, r } => {
                let (k, x) = if let Some(k) = self.fold(l) {
                    (k.as_i(), r)
                } else if let Some(k) = self.fold(r) {
                    (k.as_i(), l)
                } else {
                    return None; // runtime coefficient on the loop var
                };
                let (c, a, i) = self.vec_affine(x, var)?;
                let scaled = i.map(|x| RExpr::Bin {
                    op: Bin::Mul,
                    ty: ScalarTy::I,
                    l: Box::new(RExpr::ConstI(k)),
                    r: Box::new(x),
                });
                Some((c.checked_mul(k)?, a.checked_mul(k)?, scaled))
            }
            RExpr::Neg(x) if self.ty_of(x) == ScalarTy::I => {
                let (c, a, i) = self.vec_affine(x, var)?;
                Some((c.checked_neg()?, a.checked_neg()?, neg_inv(i)))
            }
            RExpr::ToI(x) if self.ty_of(x) == ScalarTy::I => self.vec_affine(x, var),
            _ => None,
        }
    }

    /// Hidden i-slot holding a loop-invariant I expression; prep code
    /// emitted between `DoInitC` and `VecLoop` fills it. A bare frame-I
    /// scalar uses its own slot (no prep); identical expressions within
    /// one loop share a slot.
    fn vec_inv_slot(&mut self, e: &RExpr, plan: &mut VecPlan) -> Option<u32> {
        if self.ty_of(e) != ScalarTy::I || !self.pure_total(e) {
            return None;
        }
        if let RExpr::LoadScalar(v) = e {
            if let VSlot::I(s) = self.vslot(*v) {
                return Some(s);
            }
        }
        let key = format!("{e:?}");
        if let Some((_, _, s)) = plan.prep.iter().find(|(k, _, _)| *k == key) {
            return Some(*s);
        }
        let s = self.hidden_i();
        plan.prep.push((key, e.clone(), s));
        Some(s)
    }

    /// Emits micro-ops evaluating `e` as an f64 lane vector, mirroring
    /// the scalar tier's emit-then-convert-to-F path.
    fn vec_operand_f(
        &mut self,
        e: &RExpr,
        var: VarIdx,
        plan: &mut VecPlan,
        ops: &mut Vec<VecOp>,
    ) -> Option<()> {
        if ops.len() >= VEC_MAX_OPS {
            return None;
        }
        match self.ty_of(e) {
            ScalarTy::F => self.vec_expr_f(e, var, plan, ops),
            ScalarTy::I => {
                // The scalar tier's CvtIF of an integer expression: only
                // affine-in-var (or invariant) shapes stay vectorizable.
                if let Some(v) = self.fold(e) {
                    ops.push(VecOp::Splat(v.as_f()));
                    return Some(());
                }
                let (coeff, add, inv) = self.vec_affine(e, var)?;
                let slot = match inv {
                    None => NO_SLOT,
                    Some(x) => self.vec_inv_slot(&x, plan)?,
                };
                ops.push(VecOp::SplatI { coeff, add, inv: slot });
                Some(())
            }
            ScalarTy::B => None,
        }
    }

    fn vec_expr_f(
        &mut self,
        e: &RExpr,
        var: VarIdx,
        plan: &mut VecPlan,
        ops: &mut Vec<VecOp>,
    ) -> Option<()> {
        if let Some(v) = self.fold(e) {
            ops.push(VecOp::Splat(v.as_f()));
            return Some(());
        }
        match e {
            RExpr::ConstF(c) => {
                ops.push(VecOp::Splat(*c));
                Some(())
            }
            RExpr::LoadScalar(v) => match self.vslot(*v) {
                VSlot::F(s) => {
                    ops.push(VecOp::SplatF(s));
                    Some(())
                }
                VSlot::GlobS(c) => {
                    ops.push(VecOp::SplatG(c));
                    Some(())
                }
                _ => None,
            },
            RExpr::LoadElem { v, subs } => {
                let a = self.vec_access(*v, subs, var, false, plan)?;
                ops.push(VecOp::Load(a));
                Some(())
            }
            RExpr::Bin { op, ty: ScalarTy::F, l, r } => match op {
                Bin::Add | Bin::Sub | Bin::Mul | Bin::Div => {
                    self.vec_operand_f(l, var, plan, ops)?;
                    self.vec_operand_f(r, var, plan, ops)?;
                    ops.push(match op {
                        Bin::Add => VecOp::Add,
                        Bin::Sub => VecOp::Sub,
                        Bin::Mul => VecOp::Mul,
                        _ => VecOp::Div,
                    });
                    Some(())
                }
                Bin::Pow => {
                    self.vec_operand_f(l, var, plan, ops)?;
                    if self.ty_of(r) == ScalarTy::I {
                        // `F ** I` needs a constant exponent so the
                        // powi-vs-powf rule resolves at compile time.
                        let ev = self.fold(r)?.as_i();
                        if ev.unsigned_abs() <= 64 {
                            ops.push(VecOp::PowI(ev as i32));
                        } else {
                            ops.push(VecOp::Splat(ev as f64));
                            ops.push(VecOp::Pow);
                        }
                    } else {
                        self.vec_operand_f(r, var, plan, ops)?;
                        ops.push(VecOp::Pow);
                    }
                    Some(())
                }
                _ => None,
            },
            RExpr::Neg(x) if self.ty_of(x) == ScalarTy::F => {
                self.vec_expr_f(x, var, plan, ops)?;
                ops.push(VecOp::Neg);
                Some(())
            }
            RExpr::ToF(x) => self.vec_operand_f(x, var, plan, ops),
            RExpr::Intrinsic { f, args } => {
                if self.intr_int_flavor(*f, args)
                    || matches!(f, Intr::Int | Intr::Nint)
                    || args.len() > VEC_MAX_ARGC
                {
                    return None;
                }
                for a in args {
                    self.vec_operand_f(a, var, plan, ops)?;
                }
                ops.push(VecOp::Intr { f: *f, argc: args.len() as u8 });
                Some(())
            }
            _ => None,
        }
    }

    // ---------- DO loops ----------

    fn emit_serial_do(
        &mut self,
        var: VarIdx,
        start: &RExpr,
        end: &RExpr,
        step: Option<&RExpr>,
        body: &[SpStmt],
        vec: VecClass,
    ) {
        self.emit_expr(start);
        self.emit_cvt(self.ty_of(start), ScalarTy::I);
        self.emit_expr(end);
        self.emit_cvt(self.ty_of(end), ScalarTy::I);
        // The step: a folded constant 1 selects the fused loop head
        // (traced builds never fold, so they always take the generic
        // path — including the interpreter's zero-step check).
        let step_const: Option<i64> = match step {
            None => Some(1),
            Some(e) => self.fold(e).map(|v| v.as_i()),
        };
        // Fused heads also need a frame-I loop variable.
        let var_i = match self.vslot(var) {
            VSlot::I(s) => Some(s),
            _ => None,
        };
        let fused1 = var_i.is_some() && step_const == Some(1);
        let do_line = self.last_line;
        // Vector path: optimized builds, canonical unit-stride frame-I
        // loops only (traced builds keep exact scalar op counts).
        let vec_plan =
            if !self.traced && fused1 { self.analyze_vec(var, body) } else { None };
        let (ctr, ends) = (self.hidden_i(), self.hidden_i());
        let steps = if fused1 { 0 } else { self.hidden_i() };
        let init_idx = if fused1 {
            self.push(BInstr::DoInitC { ctr, end: ends })
        } else {
            match step {
                Some(e) if step_const != Some(1) => {
                    self.emit_expr(e);
                    self.emit_cvt(self.ty_of(e), ScalarTy::I);
                    self.push(BInstr::DoInit { ctr, end: ends, step: steps, check: true })
                }
                // Absent, or folded to exactly 1 (no zero check needed).
                _ => {
                    self.push(BInstr::Const(1));
                    self.push(BInstr::DoInit { ctr, end: ends, step: steps, check: false })
                }
            }
        };
        if self.traced && vec != VecClass::None {
            self.push(BInstr::VecEnter(vec));
        }
        let vec_idx = vec_plan.map(|plan| {
            // Prep: loop-invariant subscript parts into hidden i-slots.
            let VecPlan { accesses, stmts, red, max_depth, prep, fixup } = plan;
            for (_, e, slot) in &prep {
                self.emit_expr(e);
                self.emit_cvt(self.ty_of(e), ScalarTy::I);
                self.push(BInstr::StoreI(*slot));
            }
            let desc = self.vecs.len() as u32;
            self.vecs.push(VecDesc {
                accesses,
                stmts,
                red,
                max_depth,
                iter_cost: 0,
                line: do_line,
            });
            let idx = self.push(BInstr::VecLoop {
                desc,
                ctr,
                end: ends,
                var: var_i.unwrap_or(0),
                exit: NO_PC,
            });
            (idx, fixup)
        });
        let head = self.pc();
        let head_idx = match var_i {
            Some(vslot) if fused1 => {
                self.push(BInstr::DoHead1 { ctr, end: ends, var: vslot, exit: NO_PC })
            }
            Some(vslot) => {
                self.push(BInstr::DoHeadN { ctr, end: ends, step: steps, var: vslot, exit: NO_PC })
            }
            None => {
                let h = self.push(BInstr::DoHead { ctr, end: ends, step: steps, exit: NO_PC });
                // Store the loop variable (global or non-I): converted
                // from the counter, costing a Store for globals exactly
                // like the interpreter's per-iteration write_scalar.
                self.push(BInstr::LoadI(ctr));
                self.emit_store_scalar(var, ScalarTy::I);
                h
            }
        };
        self.ctx.push(Ctx::Loop { exit: vec![Patch::Target(head_idx)], cycle: Vec::new() });
        self.emit_block(body);
        let incr = self.pc();
        if fused1 {
            self.push(BInstr::DoIncr1 { ctr, head });
        } else {
            self.push(BInstr::DoIncr { ctr, step: steps, head });
        }
        let Some(Ctx::Loop { exit, cycle }) = self.ctx.pop() else { unreachable!() };
        let end_pc = self.pc();
        if let Some((vi, fixup)) = vec_idx {
            if let BInstr::VecLoop { desc, exit, .. } = &mut self.code[vi] {
                *exit = end_pc;
                let d = *desc as usize;
                // Scalar instructions per iteration: head through incr.
                self.vecs[d].iter_cost = end_pc - head;
            }
            // Forwarded-temp fixup, reached only through the VecLoop
            // exit edge: the vector body never materializes the temps,
            // so recompute each one's final value here (the loop
            // variable holds the last trip value at this point). The
            // scalar loop stores the temps itself and exits past this.
            for (v, e) in &fixup {
                self.emit_expr(e);
                self.emit_store_scalar(*v, self.ty_of(e));
            }
        }
        let after = self.pc();
        self.loops.push(BLoopSite { init_pc: init_idx as u32, end_pc: after, line: do_line });
        if self.traced && vec != VecClass::None {
            self.push(BInstr::VecLeave);
        }
        for p in exit {
            self.apply_patch(p, after);
        }
        for p in cycle {
            self.apply_patch(p, incr);
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn emit_omp_do(
        &mut self,
        var: VarIdx,
        start: &RExpr,
        end: &RExpr,
        step: Option<&RExpr>,
        body: &[SpStmt],
        o: &ROmp,
        collapse_with: &[CollapseDim],
    ) {
        // Stack layout the OmpDo handler pops (top last):
        //   s0, e0, st, [lo,hi]*, [num_threads]
        self.emit_expr(start);
        self.emit_cvt(self.ty_of(start), ScalarTy::I);
        self.emit_expr(end);
        self.emit_cvt(self.ty_of(end), ScalarTy::I);
        match step {
            Some(e) => {
                self.emit_expr(e);
                self.emit_cvt(self.ty_of(e), ScalarTy::I);
                // The zero check fires before collapse bounds evaluate,
                // mirroring the interpreter's evaluation order.
                self.push(BInstr::CheckStepNZ);
            }
            None => {
                self.push(BInstr::Const(1));
            }
        }
        for cd in collapse_with {
            self.emit_expr(&cd.start);
            self.emit_cvt(self.ty_of(&cd.start), ScalarTy::I);
            self.emit_expr(&cd.end);
            self.emit_cvt(self.ty_of(&cd.end), ScalarTy::I);
        }
        if let Some(nt) = &o.num_threads {
            self.emit_expr(nt);
            self.emit_cvt(self.ty_of(nt), ScalarTy::I);
        }
        let mut dims = vec![(self.vslot(var), self.unit.vars[var].ty)];
        for cd in collapse_with {
            dims.push((self.vslot(cd.var), self.unit.vars[cd.var].ty));
        }
        let private_arrays = o
            .private
            .iter()
            .filter_map(|&pv| match (self.unit.vars[pv].rank, self.vslot(pv)) {
                (r, VSlot::A(a)) if r > 0 => Some(a),
                _ => None,
            })
            .collect();
        let reductions = o
            .reductions
            .iter()
            .map(|&(op, v)| RedSpec { op, vs: self.vslot(v), ty: self.unit.vars[v].ty })
            .collect();
        let desc = OmpDesc {
            dims,
            has_nt: o.num_threads.is_some(),
            sched: o.sched,
            per_thread_access: o.per_thread_access,
            private_arrays,
            reductions,
            body: (0, 0),
        };
        self.omps.push(desc);
        let d = self.omps.len() as u32 - 1;
        let instr = self.push(BInstr::OmpDo { desc: d });
        self.ctx.push(Ctx::Boundary);
        self.emit_block(body);
        self.ctx.pop();
        let body_hi = self.pc();
        self.omps[d as usize].body = (instr as u32 + 1, body_hi);
    }
}

fn val_bits(v: Val, ty: ScalarTy) -> u64 {
    match ty {
        ScalarTy::I => v.as_i() as u64,
        ScalarTy::F => v.as_f().to_bits(),
        ScalarTy::B => u64::from(v.as_b()),
    }
}

/// Frame scalars written but never read anywhere in the unit — their
/// assignments are removable when the RHS is pure.
fn find_dead_scalars(unit: &RUnit) -> Vec<bool> {
    let mut read = vec![false; unit.vars.len()];
    for &p in &unit.params {
        read[p] = true;
    }
    if let Some((rv, _)) = unit.result {
        read[rv] = true;
    }
    fn expr(e: &RExpr, read: &mut [bool]) {
        match e {
            RExpr::ConstI(_) | RExpr::ConstF(_) | RExpr::ConstB(_) => {}
            RExpr::LoadScalar(v) | RExpr::AllocatedQ(v) => read[*v] = true,
            RExpr::LoadElem { v, subs } => {
                read[*v] = true;
                subs.iter().for_each(|s| expr(s, read));
            }
            RExpr::Bin { l, r, .. } => {
                expr(l, read);
                expr(r, read);
            }
            RExpr::Neg(x) | RExpr::Not(x) | RExpr::ToF(x) | RExpr::ToI(x) => expr(x, read),
            RExpr::Intrinsic { args, .. } => args.iter().for_each(|a| expr(a, read)),
            RExpr::ArrReduce { v, .. } => read[*v] = true,
            RExpr::CallFn { args, .. } => args.iter().for_each(|a| rarg(a, read)),
        }
    }
    fn rarg(a: &RArg, read: &mut [bool]) {
        match a {
            RArg::ByRefScalar(v) | RArg::Array(v) => read[*v] = true,
            RArg::ByRefElem { v, subs } => {
                read[*v] = true;
                subs.iter().for_each(|s| expr(s, read));
            }
            RArg::Value(e) => expr(e, read),
        }
    }
    fn stmt(s: &RStmt, read: &mut [bool]) {
        match s {
            RStmt::AssignScalar { e, .. } => expr(e, read),
            RStmt::AssignElem { v, subs, e } => {
                read[*v] = true;
                subs.iter().for_each(|x| expr(x, read));
                expr(e, read);
            }
            RStmt::Broadcast { v, e } => {
                read[*v] = true;
                expr(e, read);
            }
            RStmt::CopyArray { dst, src } => {
                read[*dst] = true;
                read[*src] = true;
            }
            RStmt::AtomicUpdate { v, subs, e, .. } => {
                read[*v] = true;
                subs.iter().for_each(|x| expr(x, read));
                expr(e, read);
            }
            RStmt::If { arms, else_body } => {
                for (c, b) in arms {
                    expr(c, read);
                    b.iter().for_each(|x| stmt(&x.s, read));
                }
                else_body.iter().for_each(|x| stmt(&x.s, read));
            }
            RStmt::Do { var, start, end, step, body, omp, collapse_with, .. } => {
                read[*var] = true;
                expr(start, read);
                expr(end, read);
                if let Some(st) = step {
                    expr(st, read);
                }
                for cd in collapse_with {
                    read[cd.var] = true;
                    expr(&cd.start, read);
                    expr(&cd.end, read);
                }
                if let Some(o) = omp {
                    o.private.iter().for_each(|&v| read[v] = true);
                    o.reductions.iter().for_each(|&(_, v)| read[v] = true);
                    if let Some(nt) = &o.num_threads {
                        expr(nt, read);
                    }
                }
                body.iter().for_each(|x| stmt(&x.s, read));
            }
            RStmt::DoWhile { cond, body } => {
                expr(cond, read);
                body.iter().for_each(|x| stmt(&x.s, read));
            }
            RStmt::CallSub { args, .. } => args.iter().for_each(|a| rarg(a, read)),
            RStmt::Allocate { v, dims } => {
                read[*v] = true;
                for (lo, hi) in dims {
                    expr(lo, read);
                    expr(hi, read);
                }
            }
            RStmt::Deallocate { v } => read[*v] = true,
            RStmt::Critical { body, .. } => body.iter().for_each(|x| stmt(&x.s, read)),
            RStmt::Print(items) => {
                for it in items {
                    if let PrintItem::Val(e) = it {
                        expr(e, read);
                    }
                }
            }
            RStmt::Return | RStmt::Exit | RStmt::Cycle | RStmt::Stop(_) | RStmt::Nop => {}
        }
    }
    unit.body.iter().for_each(|s| stmt(&s.s, &mut read));
    unit.vars
        .iter()
        .enumerate()
        .map(|(v, info)| {
            !read[v] && info.rank == 0 && matches!(info.place, Place::Frame(_))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compile(src: &str) -> (RProgram, Vec<BUnit>, Vec<BUnit>) {
        let mut ast = crate::ast::Ast::default();
        let mut part = crate::parse::parse(src).unwrap();
        ast.modules.append(&mut part.modules);
        let prog = crate::sema::resolve(&ast).unwrap();
        let opt = compile_program(&prog, false);
        let traced = compile_program(&prog, true);
        (prog, opt, traced)
    }

    const SRC: &str = r#"
MODULE m
CONTAINS
  SUBROUTINE work(a, n, s)
    REAL(8), DIMENSION(1:64) :: a
    INTEGER :: n, i
    REAL(8) :: s, unused
    unused = 2.0D0 * 3.0D0
    s = 0.0D0
    DO i = 1, n
      s = s + a(i) * (1.0D0 + 2.0D0)
    END DO
  END SUBROUTINE work
END MODULE m
"#;

    #[test]
    fn folding_and_dse_only_in_optimized_builds() {
        let (_, opt, traced) = compile(SRC);
        // The optimized build folds 1.0+2.0 and drops the dead store.
        let consts = |c: &[BInstr]| {
            c.iter()
                .filter(|i| matches!(i, BInstr::Const(b) if f64::from_bits(*b) == 3.0))
                .count()
        };
        assert!(consts(&opt[0].code) >= 1, "folded constant expected");
        assert!(
            opt[0].code.len() < traced[0].code.len(),
            "optimized build should be shorter (DSE + folding): {} vs {}",
            opt[0].code.len(),
            traced[0].code.len()
        );
        // The traced build keeps the AddF for 1.0+2.0 (cost fidelity).
        assert!(traced[0]
            .code
            .iter()
            .any(|i| matches!(i, BInstr::Const(b) if f64::from_bits(*b) == 2.0)));
    }

    #[test]
    fn unit_stride_loop_uses_fused_head() {
        let (_, opt, _) = compile(SRC);
        assert!(opt[0].code.iter().any(|i| matches!(i, BInstr::DoHead1 { .. })));
        assert!(opt[0].code.iter().any(|i| matches!(i, BInstr::DoIncr1 { .. })));
    }

    #[test]
    fn fixed_local_arrays_get_static_dims() {
        let (_, opt, _) = compile(
            r#"
MODULE m
CONTAINS
  REAL(8) FUNCTION peek()
    REAL(8), DIMENSION(1:4, 1:3) :: t
    t(2, 2) = 5.0D0
    peek = t(2, 2)
  END FUNCTION peek
END MODULE m
"#,
        );
        assert!(opt[0].code.iter().any(|i| matches!(i, BInstr::StoreElemS { .. })));
        assert!(opt[0].code.iter().any(|i| matches!(i, BInstr::LoadElemS { .. })));
        assert_eq!(opt[0].sdims.len(), 1);
        assert_eq!(opt[0].sdims[0].strides, vec![1, 4]);
    }
}
