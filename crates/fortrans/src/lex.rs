//! The lexer: raw source → logical lines of tokens.
//!
//! Free-form FORTRAN with the conventions the GLAF code generator (and our
//! hand-written "legacy" sources) use:
//!
//! * `!` starts a comment — except the OpenMP sentinel `!$OMP`, which makes
//!   the line a *directive line*;
//! * `&` at end of line continues onto the next line (an optional leading
//!   `&` on the continuation is consumed);
//! * keywords and identifiers are case-insensitive — identifiers are
//!   normalized to lowercase;
//! * numeric literals accept `D`/`E` exponents (`1.5D0`, `2E-3`);
//! * dot-operators (`.AND.`, `.LT.`, `.TRUE.`, ...) are recognized as
//!   single tokens.

use crate::error::{CompileError, Span};

/// One token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Lowercased identifier or keyword.
    Ident(String),
    Int(i64),
    Real(f64),
    Str(String),
    LParen,
    RParen,
    Comma,
    Percent,
    DoubleColon,
    Colon,
    Assign,
    Plus,
    Minus,
    Star,
    StarStar,
    Slash,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
    Not,
    True,
    False,
}

impl Tok {
    /// True when this token is the identifier `kw` (already lowercase).
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Tok::Ident(s) if s == kw)
    }
}

/// A logical line: continuations joined, comments stripped.
#[derive(Debug, Clone)]
pub struct Line {
    pub toks: Vec<Tok>,
    /// 1-based physical line number where the logical line starts.
    pub lineno: u32,
    /// True when the line came from a `!$OMP` sentinel.
    pub omp: bool,
}

/// Lexes a whole source file into logical lines.
pub fn lex(source: &str) -> Result<Vec<Line>, CompileError> {
    // Pass 1: join physical lines into logical lines, tracking OMP
    // sentinels. A directive line can itself be continued with `&`.
    let mut logical: Vec<(String, u32, bool)> = Vec::new();
    let mut pending: Option<(String, u32, bool)> = None;

    for (idx, raw) in source.lines().enumerate() {
        let lineno = idx as u32 + 1;
        let trimmed = raw.trim_start();
        let (content, omp) = if let Some(rest) = strip_omp_sentinel(trimmed) {
            (rest.to_string(), true)
        } else {
            (strip_comment(raw).to_string(), false)
        };
        let content_trim_end = content.trim_end();
        let (content, continued) = match content_trim_end.strip_suffix('&') {
            Some(head) => (head.to_string(), true),
            None => (content_trim_end.to_string(), false),
        };
        match pending.take() {
            Some((mut acc, start, acc_omp)) => {
                let piece = content.trim_start().strip_prefix('&').unwrap_or(content.trim_start());
                acc.push(' ');
                acc.push_str(piece);
                if continued {
                    pending = Some((acc, start, acc_omp));
                } else {
                    logical.push((acc, start, acc_omp));
                }
            }
            None => {
                if content.trim().is_empty() && !continued {
                    continue;
                }
                if continued {
                    pending = Some((content, lineno, omp));
                } else {
                    logical.push((content, lineno, omp));
                }
            }
        }
    }
    if let Some((acc, start, omp)) = pending {
        logical.push((acc, start, omp));
    }

    // Pass 2: tokenize each logical line.
    let mut out = Vec::with_capacity(logical.len());
    for (text, lineno, omp) in logical {
        let toks = lex_line(&text, lineno)?;
        if !toks.is_empty() {
            out.push(Line { toks, lineno, omp });
        }
    }
    Ok(out)
}

/// Strips the OMP sentinel, returning the directive text if present.
fn strip_omp_sentinel(line: &str) -> Option<&str> {
    let upper_prefix = line.get(..5)?.to_ascii_uppercase();
    if upper_prefix == "!$OMP" {
        Some(&line[5..])
    } else {
        None
    }
}

/// Removes a trailing `!` comment (respecting string literals).
fn strip_comment(line: &str) -> &str {
    let bytes = line.as_bytes();
    let mut in_str = false;
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'\'' => in_str = !in_str,
            b'!' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Tokenizes one statement fragment (no continuation/comment handling).
/// The fixed-form front end feeds blank-stripped card text through this
/// so both form's token streams come from the same scanner.
pub(crate) fn lex_fragment(text: &str, lineno: u32) -> Result<Vec<Tok>, CompileError> {
    lex_line(text, lineno)
}

fn lex_line(text: &str, lineno: u32) -> Result<Vec<Tok>, CompileError> {
    let mut toks = Vec::new();
    let b = text.as_bytes();
    let mut i = 0usize;
    let err = |msg: String| CompileError::Lex { msg, span: Span { line: lineno } };

    while i < b.len() {
        let c = b[i];
        match c {
            b' ' | b'\t' | b'\r' => i += 1,
            b'(' => {
                toks.push(Tok::LParen);
                i += 1;
            }
            b')' => {
                toks.push(Tok::RParen);
                i += 1;
            }
            b',' => {
                toks.push(Tok::Comma);
                i += 1;
            }
            b'%' => {
                toks.push(Tok::Percent);
                i += 1;
            }
            b'+' => {
                toks.push(Tok::Plus);
                i += 1;
            }
            b'-' => {
                toks.push(Tok::Minus);
                i += 1;
            }
            b'*' => {
                if b.get(i + 1) == Some(&b'*') {
                    toks.push(Tok::StarStar);
                    i += 2;
                } else {
                    toks.push(Tok::Star);
                    i += 1;
                }
            }
            b'/' => {
                if b.get(i + 1) == Some(&b'=') {
                    toks.push(Tok::Ne);
                    i += 2;
                } else if b.get(i + 1) == Some(&b'/') {
                    // String concatenation — unsupported, but lex it so the
                    // parser can report a sensible error.
                    return Err(err("string concatenation `//` is not supported".into()));
                } else {
                    toks.push(Tok::Slash);
                    i += 1;
                }
            }
            b'=' => {
                if b.get(i + 1) == Some(&b'=') {
                    toks.push(Tok::Eq);
                    i += 2;
                } else {
                    toks.push(Tok::Assign);
                    i += 1;
                }
            }
            b'<' => {
                if b.get(i + 1) == Some(&b'=') {
                    toks.push(Tok::Le);
                    i += 2;
                } else {
                    toks.push(Tok::Lt);
                    i += 1;
                }
            }
            b'>' => {
                if b.get(i + 1) == Some(&b'=') {
                    toks.push(Tok::Ge);
                    i += 2;
                } else {
                    toks.push(Tok::Gt);
                    i += 1;
                }
            }
            b':' => {
                if b.get(i + 1) == Some(&b':') {
                    toks.push(Tok::DoubleColon);
                    i += 2;
                } else {
                    toks.push(Tok::Colon);
                    i += 1;
                }
            }
            b'\'' => {
                let start = i + 1;
                let mut j = start;
                while j < b.len() && b[j] != b'\'' {
                    j += 1;
                }
                if j >= b.len() {
                    return Err(err("unterminated string literal".into()));
                }
                toks.push(Tok::Str(text[start..j].to_string()));
                i = j + 1;
            }
            b'.' => {
                // Dot-operator or dot-led real literal.
                if i + 1 < b.len() && b[i + 1].is_ascii_digit() {
                    let (tok, ni) = lex_number(text, i, lineno)?;
                    toks.push(tok);
                    i = ni;
                } else {
                    let mut j = i + 1;
                    while j < b.len() && b[j].is_ascii_alphabetic() {
                        j += 1;
                    }
                    if j >= b.len() || b[j] != b'.' {
                        return Err(err(format!(
                            "malformed dot-operator near `{}`",
                            &text[i..(i + 6).min(text.len())]
                        )));
                    }
                    let word = text[i + 1..j].to_ascii_uppercase();
                    let tok = match word.as_str() {
                        "AND" => Tok::And,
                        "OR" => Tok::Or,
                        "NOT" => Tok::Not,
                        "TRUE" => Tok::True,
                        "FALSE" => Tok::False,
                        "EQ" => Tok::Eq,
                        "NE" => Tok::Ne,
                        "LT" => Tok::Lt,
                        "LE" => Tok::Le,
                        "GT" => Tok::Gt,
                        "GE" => Tok::Ge,
                        other => return Err(err(format!("unknown dot-operator `.{other}.`"))),
                    };
                    toks.push(tok);
                    i = j + 1;
                }
            }
            c if c.is_ascii_digit() => {
                let (tok, ni) = lex_number(text, i, lineno)?;
                toks.push(tok);
                i = ni;
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                let mut j = i;
                while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                    j += 1;
                }
                toks.push(Tok::Ident(text[start..j].to_ascii_lowercase()));
                i = j;
            }
            other => {
                return Err(err(format!("unexpected character `{}`", other as char)));
            }
        }
    }
    Ok(toks)
}

/// Lexes a numeric literal starting at `i`. Handles `123`, `1.5`, `.5`,
/// `1.5D0`, `2E-3`, `1D-3`. A trailing `.` followed by a dot-operator
/// letter (e.g. `1.AND.`) is left for the dot-operator path.
fn lex_number(text: &str, i: usize, lineno: u32) -> Result<(Tok, usize), CompileError> {
    let b = text.as_bytes();
    let mut j = i;
    let mut is_real = false;
    while j < b.len() && b[j].is_ascii_digit() {
        j += 1;
    }
    if j < b.len() && b[j] == b'.' {
        // `1.AND.` must not eat the dot; a dot is part of the number only
        // if followed by a digit, exponent, or end/non-letter.
        let next = b.get(j + 1).copied();
        let is_dotop = matches!(next, Some(c) if c.is_ascii_alphabetic()) && {
            // find matching closing dot to confirm a dot-op like .and.
            let mut k = j + 1;
            while k < b.len() && b[k].is_ascii_alphabetic() {
                k += 1;
            }
            k < b.len() && b[k] == b'.'
        };
        if !is_dotop {
            is_real = true;
            j += 1;
            while j < b.len() && b[j].is_ascii_digit() {
                j += 1;
            }
        }
    }
    // Exponent: D or E.
    if j < b.len() && matches!(b[j], b'd' | b'D' | b'e' | b'E') {
        let mut k = j + 1;
        if k < b.len() && matches!(b[k], b'+' | b'-') {
            k += 1;
        }
        if k < b.len() && b[k].is_ascii_digit() {
            is_real = true;
            j = k;
            while j < b.len() && b[j].is_ascii_digit() {
                j += 1;
            }
        }
    }
    let lit = &text[i..j];
    if is_real {
        let norm = lit.replace(['d', 'D'], "e");
        let v: f64 = norm.parse().map_err(|_| CompileError::Lex {
            msg: format!("bad real literal `{lit}`"),
            span: Span { line: lineno },
        })?;
        Ok((Tok::Real(v), j))
    } else {
        let v: i64 = lit.parse().map_err(|_| CompileError::Lex {
            msg: format!("bad integer literal `{lit}`"),
            span: Span { line: lineno },
        })?;
        Ok((Tok::Int(v), j))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        let lines = lex(src).unwrap();
        assert_eq!(lines.len(), 1, "{lines:?}");
        lines[0].toks.clone()
    }

    #[test]
    fn idents_lowercased() {
        assert_eq!(
            toks("Module SARB_Kernels"),
            vec![Tok::Ident("module".into()), Tok::Ident("sarb_kernels".into())]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(toks("42"), vec![Tok::Int(42)]);
        assert_eq!(toks("1.5"), vec![Tok::Real(1.5)]);
        assert_eq!(toks("1.5D0"), vec![Tok::Real(1.5)]);
        assert_eq!(toks("2E-3"), vec![Tok::Real(0.002)]);
        assert_eq!(toks("1D-3"), vec![Tok::Real(0.001)]);
        assert_eq!(toks(".5"), vec![Tok::Real(0.5)]);
    }

    #[test]
    fn operators() {
        assert_eq!(
            toks("a = b ** 2 / c"),
            vec![
                Tok::Ident("a".into()),
                Tok::Assign,
                Tok::Ident("b".into()),
                Tok::StarStar,
                Tok::Int(2),
                Tok::Slash,
                Tok::Ident("c".into()),
            ]
        );
    }

    #[test]
    fn dot_operators_and_modern_comparisons() {
        assert_eq!(toks(".TRUE. .AND. .false."), vec![Tok::True, Tok::And, Tok::False]);
        assert_eq!(toks("a .LT. b"), vec![Tok::Ident("a".into()), Tok::Lt, Tok::Ident("b".into())]);
        assert_eq!(toks("a /= b"), vec![Tok::Ident("a".into()), Tok::Ne, Tok::Ident("b".into())]);
        assert_eq!(toks("a <= b"), vec![Tok::Ident("a".into()), Tok::Le, Tok::Ident("b".into())]);
    }

    #[test]
    fn number_followed_by_dotop() {
        assert_eq!(
            toks("i == 1 .AND. ok"),
            vec![Tok::Ident("i".into()), Tok::Eq, Tok::Int(1), Tok::And, Tok::Ident("ok".into())]
        );
    }

    #[test]
    fn comments_stripped() {
        let lines = lex("x = 1 ! set x\n! whole line\ny = 2").unwrap();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].toks.len(), 3);
        assert!(!lines[0].omp);
    }

    #[test]
    fn omp_sentinel_detected() {
        let lines = lex("!$OMP PARALLEL DO PRIVATE(t)\nx = 1").unwrap();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].omp);
        assert!(lines[0].toks[0].is_kw("parallel"));
        assert!(!lines[1].omp);
    }

    #[test]
    fn continuations_joined() {
        let lines = lex("x = 1 + &\n    & 2 + &\n    3").unwrap();
        assert_eq!(lines.len(), 1);
        assert_eq!(
            lines[0].toks,
            vec![
                Tok::Ident("x".into()),
                Tok::Assign,
                Tok::Int(1),
                Tok::Plus,
                Tok::Int(2),
                Tok::Plus,
                Tok::Int(3)
            ]
        );
    }

    #[test]
    fn strings_and_percent() {
        assert_eq!(
            toks("fi%vd"),
            vec![Tok::Ident("fi".into()), Tok::Percent, Tok::Ident("vd".into())]
        );
        assert_eq!(toks("'hello world'"), vec![Tok::Str("hello world".into())]);
    }

    #[test]
    fn comment_bang_inside_string_kept() {
        assert_eq!(toks("'a!b'"), vec![Tok::Str("a!b".into())]);
    }

    #[test]
    fn double_colon_vs_colon() {
        assert_eq!(
            toks("REAL(8) :: a(1:60)"),
            vec![
                Tok::Ident("real".into()),
                Tok::LParen,
                Tok::Int(8),
                Tok::RParen,
                Tok::DoubleColon,
                Tok::Ident("a".into()),
                Tok::LParen,
                Tok::Int(1),
                Tok::Colon,
                Tok::Int(60),
                Tok::RParen,
            ]
        );
    }

    #[test]
    fn lex_errors_reported() {
        assert!(lex("x = 'unterminated").is_err());
        assert!(lex("x = @").is_err());
        assert!(lex("x = .bogus.").is_err());
    }

    #[test]
    fn blank_lines_skipped() {
        let lines = lex("\n\nx = 1\n\n").unwrap();
        assert_eq!(lines.len(), 1);
        assert_eq!(lines[0].lineno, 3);
    }
}
