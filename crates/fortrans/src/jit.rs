//! Tier-3 native execution: a template JIT over the VM's vector-loop
//! regions.
//!
//! The bytecode compiler already extracts every unit-stride affine `DO`
//! loop into a [`VecDesc`] — interned access streams plus postfix lane
//! programs — and the verifier ([`crate::verify`]) proves the slot,
//! stack-depth and arity invariants the chunked executor relies on.
//! This module lowers exactly those regions to x86-64 machine code,
//! emitted in-process into `mmap`'d executable pages (raw Linux
//! syscalls; no external toolchain, works offline).
//!
//! ## Contract with the VM
//!
//! The native path slots in *above* the vector superinstruction at the
//! `VecLoop` dispatch site and keeps the exact guard/deopt model of
//! [`exec_vec_loop`]: every guard (type/rank, whole-range affine
//! bounds, alias, step-budget pre-reservation) runs in Rust before the
//! first element is written, so a loop either completes natively or
//! falls through — a *deopt* — to the vector/scalar path, which
//! produces the bit-identical answer (or the stock error at the exact
//! faulting iteration). The emitted code therefore contains no bounds
//! checks and no error paths: it is a pure counted loop over streams
//! whose safety was proven at entry.
//!
//! Bit-exactness: `addsd`/`subsd`/`mulsd`/`divsd` and the sign-flip are
//! the IEEE-754 operations rustc emits for scalar f64 arithmetic;
//! `Pow`/`PowI`/`Intr` lanes call back into the *same* Rust functions
//! (`f64::powf`, `f64::powi`, [`Intr::eval_f`]) the interpreter uses,
//! so every lane value is bit-identical to the scalar tier's.
//!
//! Safepoints: the trampoline in [`crate::vm`] calls the compiled body
//! in blocks of ~`1024 / iter_cost` iterations, polling
//! `EffLimits::check_interrupt` between blocks — the same 1024-step
//! cadence as the scalar `tick()`, so `RunLimits` deadlines and
//! [`crate::interp::CancelToken`] cancellation trip identically in all
//! three tiers.
//!
//! Arch gating: everything that touches machine code is compiled only
//! for `x86_64` Linux. Elsewhere [`available`] is `false`,
//! [`NativeRegion::compile`] returns `None`, and the VM falls through
//! to the vector/scalar paths — a clean no-JIT build.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::bytecode::{BUnit, VecDesc, VecOp, VecRedOp, VEC_MAX_DEPTH};
use crate::intrinsics::Intr;
use crate::rir::RProgram;

/// Whether this build can execute native regions at all.
pub fn available() -> bool {
    cfg!(all(target_arch = "x86_64", target_os = "linux"))
}

/// Loop entries a region must accumulate before it is promoted
/// (compiled and entered natively) when eager compilation is off.
pub const DEFAULT_HOT_THRESHOLD: u32 = 32;

// ---------------------------------------------------------------------------
// Runtime interface: the context the trampoline hands to compiled code
// ---------------------------------------------------------------------------

/// One resolved access stream: `ptr` addresses the element at iteration
/// offset `k = 0` (the flat base offset is already applied) and
/// `stride8` is the per-iteration advance in bytes. The trampoline
/// derives both from the same `(handle, base, stride)` triple the
/// vector tier resolves, after the bounds guard proved every `k` in
/// range.
#[repr(C)]
#[derive(Clone, Copy)]
pub struct Stream {
    pub ptr: *mut u64,
    pub stride8: i64,
}

/// Spill slots reserved for saving live lane registers around helper
/// calls (the lane stack is at most [`VEC_MAX_DEPTH`] deep).
const SPILL_SAVES: usize = VEC_MAX_DEPTH as usize;
/// Spill slots for marshalling helper-call arguments (max intrinsic
/// arity is 8).
const SPILL_ARGS: usize = 8;
/// Byte offset of the spill area inside [`JitCtx`].
const CTX_SPILL: i32 = 0x28;
/// Byte offset of the argument slots inside [`JitCtx`].
const CTX_ARGS: i32 = CTX_SPILL + 8 * SPILL_SAVES as i32;

/// The in-memory calling convention of a compiled region: one pointer
/// argument (SysV `rdi`) to this struct. Field offsets are fixed —
/// the emitter hard-codes them — so the layout is `repr(C)` and
/// guarded by tests.
#[repr(C)]
pub struct JitCtx {
    /// First iteration offset of this block (inclusive).
    pub k0: i64, // 0x00
    /// Last iteration offset of this block (exclusive).
    pub k1: i64, // 0x08
    /// Resolved access streams, one per `VecAccess`.
    pub streams: *const Stream, // 0x10
    /// Loop-invariant operand pool (f64 bits / raw i64), filled per
    /// entry from the [`PoolEntry`] recipe.
    pub pool: *const u64, // 0x18
    /// Reduction accumulator (live across blocks; written back by the
    /// trampoline after the last block).
    pub acc: f64, // 0x20
    /// Scratch for saving lane registers and marshalling helper-call
    /// arguments.
    pub spill: [u64; SPILL_SAVES + SPILL_ARGS], // 0x28
}

/// Recipe for one invariant-pool slot, resolved by the trampoline at
/// every loop entry (frame scalars and globals can change between
/// entries; the machine code only ever sees pool offsets).
#[derive(Debug, Clone, Copy)]
pub enum PoolEntry {
    /// f64 constant bits (`VecOp::Splat`).
    ConstF(u64),
    /// Broadcast of frame f64 slot (`VecOp::SplatF`).
    FrameF(u32),
    /// Broadcast of a global scalar cell (`VecOp::SplatG`).
    GlobF(u32),
    /// `SplatI` coefficient, stored raw.
    ICoeff(i64),
    /// `SplatI` base term `coeff*lo + add + frame.i[inv]` (wrapping;
    /// `inv == NO_SLOT` contributes 0), so the emitted code computes
    /// `coeff*k + base` — identical to the interpreter's
    /// `coeff*(lo+k) + add + inv` under wrapping arithmetic.
    IBase { coeff: i64, add: i64, inv: u32 },
}

// ---------------------------------------------------------------------------
// Executable memory (x86_64 Linux only): raw mmap/mprotect/munmap
// ---------------------------------------------------------------------------

#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
mod exec_mem {
    const SYS_MMAP: i64 = 9;
    const SYS_MPROTECT: i64 = 10;
    const SYS_MUNMAP: i64 = 11;
    const PROT_READ: i64 = 1;
    const PROT_WRITE: i64 = 2;
    const PROT_EXEC: i64 = 4;
    const MAP_PRIVATE: i64 = 0x02;
    const MAP_ANONYMOUS: i64 = 0x20;
    const PAGE: usize = 4096;

    /// Raw Linux syscall (the lockfile has no libc crate, and the JIT
    /// must work without adding one). `syscall` clobbers rcx/r11.
    ///
    /// # Safety
    /// The caller passes a valid syscall number and arguments for it.
    unsafe fn syscall6(n: i64, a1: i64, a2: i64, a3: i64, a4: i64, a5: i64, a6: i64) -> i64 {
        let ret: i64;
        std::arch::asm!(
            "syscall",
            inlateout("rax") n => ret,
            in("rdi") a1,
            in("rsi") a2,
            in("rdx") a3,
            in("r10") a4,
            in("r8") a5,
            in("r9") a6,
            out("rcx") _,
            out("r11") _,
            options(nostack),
        );
        ret
    }

    /// One W^X-disciplined executable mapping: mapped read-write,
    /// filled, then flipped to read-execute. Never writable and
    /// executable at the same time.
    pub struct ExecBuf {
        ptr: *mut u8,
        len: usize,
    }

    // The mapping is immutable (RX) after construction; sharing the
    // pointer across threads is sound.
    unsafe impl Send for ExecBuf {}
    unsafe impl Sync for ExecBuf {}

    impl ExecBuf {
        /// Copies `code` into a fresh executable mapping. `None` when
        /// the kernel refuses the mapping (out of memory, lockdown
        /// policies forbidding exec pages, ...) — the caller falls
        /// back to the VM tier.
        pub fn new(code: &[u8]) -> Option<ExecBuf> {
            if code.is_empty() {
                return None;
            }
            let len = code.len().div_ceil(PAGE) * PAGE;
            // SAFETY: anonymous private mapping with no fixed address;
            // arguments follow the mmap(2) contract.
            let p = unsafe {
                syscall6(
                    SYS_MMAP,
                    0,
                    len as i64,
                    PROT_READ | PROT_WRITE,
                    MAP_PRIVATE | MAP_ANONYMOUS,
                    -1,
                    0,
                )
            };
            // Errors come back as small negative errno values; valid
            // user mappings are strictly positive addresses.
            if p <= 0 {
                return None;
            }
            let ptr = p as *mut u8;
            // SAFETY: `ptr` is a fresh RW mapping at least `code.len()`
            // bytes long and nothing else aliases it yet.
            unsafe { std::ptr::copy_nonoverlapping(code.as_ptr(), ptr, code.len()) };
            // SAFETY: flips the whole mapping to RX; address and length
            // are exactly the mapping's.
            let r = unsafe { syscall6(SYS_MPROTECT, p, len as i64, PROT_READ | PROT_EXEC, 0, 0, 0) };
            if r != 0 {
                // SAFETY: unmaps the mapping created above.
                unsafe { syscall6(SYS_MUNMAP, p, len as i64, 0, 0, 0, 0) };
                return None;
            }
            Some(ExecBuf { ptr, len })
        }

        pub fn entry(&self) -> *const u8 {
            self.ptr
        }
    }

    impl Drop for ExecBuf {
        fn drop(&mut self) {
            // SAFETY: unmaps the mapping this struct owns; the Arc'd
            // region is dropped only when no session can enter it.
            unsafe { syscall6(SYS_MUNMAP, self.ptr as i64, self.len as i64, 0, 0, 0, 0) };
        }
    }
}

// ---------------------------------------------------------------------------
// Bit-exact lane helpers called from emitted code (SysV ABI)
// ---------------------------------------------------------------------------

#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
extern "sysv64" fn jit_pow(a: f64, b: f64) -> f64 {
    a.powf(b)
}

#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
extern "sysv64" fn jit_powi(a: f64, e: i32) -> f64 {
    a.powi(e)
}

/// # Safety
/// `f` points at a live [`Intr`] (the region pins its intrinsic table)
/// and `args` at `argc` initialized f64 slots in the [`JitCtx`] spill
/// area; `argc` was verifier-bounded to 1..=8.
#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
unsafe extern "sysv64" fn jit_intr(f: *const Intr, args: *const f64, argc: u64) -> f64 {
    let s = std::slice::from_raw_parts(args, argc as usize);
    (*f).eval_f(s)
}

// ---------------------------------------------------------------------------
// The emitter (x86_64 Linux only)
// ---------------------------------------------------------------------------

#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
mod emit {
    /// Minimal x86-64 assembler: exactly the instruction forms the
    /// lane-program template needs, encoded by hand. Register roles are
    /// fixed — rbx = k, r12 = ctx, r13 = k1, r14 = streams, r15 = pool,
    /// rax/rcx/rdx/rdi/rsi = scratch, xmm0..15 = the lane stack (depth
    /// `d` lives in `xmm(d)`; `VEC_MAX_DEPTH == 16` fills the file
    /// exactly).
    pub struct Asm {
        pub code: Vec<u8>,
    }

    impl Asm {
        pub fn new() -> Asm {
            Asm { code: Vec::with_capacity(256) }
        }

        fn b(&mut self, bytes: &[u8]) {
            self.code.extend_from_slice(bytes);
        }

        fn d32(&mut self, v: i32) {
            self.code.extend_from_slice(&v.to_le_bytes());
        }

        fn d64(&mut self, v: u64) {
            self.code.extend_from_slice(&v.to_le_bytes());
        }

        // ---- integer moves / arithmetic ----

        /// push rbx; push r12..r15 — five pushes keep the stack
        /// 16-aligned at every helper call site.
        pub fn prologue(&mut self) {
            self.b(&[0x53, 0x41, 0x54, 0x41, 0x55, 0x41, 0x56, 0x41, 0x57]);
            // mov r12, rdi
            self.b(&[0x49, 0x89, 0xFC]);
            // mov rbx, [r12+0x00]; mov r13, [r12+0x08]
            self.b(&[0x49, 0x8B, 0x5C, 0x24, 0x00]);
            self.b(&[0x4D, 0x8B, 0x6C, 0x24, 0x08]);
            // mov r14, [r12+0x10]; mov r15, [r12+0x18]
            self.b(&[0x4D, 0x8B, 0x74, 0x24, 0x10]);
            self.b(&[0x4D, 0x8B, 0x7C, 0x24, 0x18]);
        }

        /// pop r15..r12; pop rbx; ret
        pub fn epilogue(&mut self) {
            self.b(&[0x41, 0x5F, 0x41, 0x5E, 0x41, 0x5D, 0x41, 0x5C, 0x5B, 0xC3]);
        }

        /// cmp rbx, r13
        pub fn cmp_k_k1(&mut self) {
            self.b(&[0x4C, 0x39, 0xEB]);
        }

        /// jge rel32 (patched later); returns the patch site.
        pub fn jge(&mut self) -> usize {
            self.b(&[0x0F, 0x8D]);
            let at = self.code.len();
            self.d32(0);
            at
        }

        /// jl rel32 back to `target`.
        pub fn jl_to(&mut self, target: usize) {
            self.b(&[0x0F, 0x8C]);
            let rel = target as i64 - (self.code.len() as i64 + 4);
            self.d32(rel as i32);
        }

        /// Patches a rel32 site to jump to the current position.
        pub fn patch_here(&mut self, at: usize) {
            let rel = (self.code.len() as i64 - (at as i64 + 4)) as i32;
            self.code[at..at + 4].copy_from_slice(&rel.to_le_bytes());
        }

        /// add rbx, 1
        pub fn inc_k(&mut self) {
            self.b(&[0x48, 0x83, 0xC3, 0x01]);
        }

        /// mov rax, [r14 + disp]   (stream field load)
        pub fn mov_rax_streams(&mut self, disp: i32) {
            self.b(&[0x49, 0x8B, 0x86]);
            self.d32(disp);
        }

        /// mov rcx, [r14 + disp]
        pub fn mov_rcx_streams(&mut self, disp: i32) {
            self.b(&[0x49, 0x8B, 0x8E]);
            self.d32(disp);
        }

        /// mov rax, [r15 + disp]   (pool load)
        pub fn mov_rax_pool(&mut self, disp: i32) {
            self.b(&[0x49, 0x8B, 0x87]);
            self.d32(disp);
        }

        /// add rax, [r15 + disp]
        pub fn add_rax_pool(&mut self, disp: i32) {
            self.b(&[0x49, 0x03, 0x87]);
            self.d32(disp);
        }

        /// imul rcx, rbx
        pub fn imul_rcx_k(&mut self) {
            self.b(&[0x48, 0x0F, 0xAF, 0xCB]);
        }

        /// imul rax, rbx
        pub fn imul_rax_k(&mut self) {
            self.b(&[0x48, 0x0F, 0xAF, 0xC3]);
        }

        /// mov rax, imm64
        pub fn mov_rax_imm(&mut self, v: u64) {
            self.b(&[0x48, 0xB8]);
            self.d64(v);
        }

        /// mov rcx, imm64
        pub fn mov_rcx_imm(&mut self, v: u64) {
            self.b(&[0x48, 0xB9]);
            self.d64(v);
        }

        /// mov rdi, imm64
        pub fn mov_rdi_imm(&mut self, v: u64) {
            self.b(&[0x48, 0xBF]);
            self.d64(v);
        }

        /// mov edi, imm32
        pub fn mov_edi_imm(&mut self, v: i32) {
            self.code.push(0xBF);
            self.d32(v);
        }

        /// mov edx, imm32
        pub fn mov_edx_imm(&mut self, v: i32) {
            self.code.push(0xBA);
            self.d32(v);
        }

        /// lea rsi, [r12 + disp]
        pub fn lea_rsi_ctx(&mut self, disp: i32) {
            self.b(&[0x49, 0x8D, 0xB4, 0x24]);
            self.d32(disp);
        }

        /// xor rax, rcx
        pub fn xor_rax_rcx(&mut self) {
            self.b(&[0x48, 0x31, 0xC8]);
        }

        /// call rax
        pub fn call_rax(&mut self) {
            self.b(&[0xFF, 0xD0]);
        }

        // ---- SSE scalar-double forms ----

        fn sse_rex(&mut self, reg: u8, rm_ext: bool) {
            let mut rex = 0x40u8;
            if reg >= 8 {
                rex |= 0x04; // REX.R
            }
            if rm_ext {
                rex |= 0x01; // REX.B
            }
            if rex != 0x40 {
                self.code.push(rex);
            }
        }

        /// movsd xmm(dst), [rax + rcx]
        pub fn movsd_load_indexed(&mut self, dst: u8) {
            self.code.push(0xF2);
            self.sse_rex(dst, false);
            self.b(&[0x0F, 0x10, 0x04 | ((dst & 7) << 3), 0x08]);
        }

        /// movsd [rax + rcx], xmm(src)
        pub fn movsd_store_indexed(&mut self, src: u8) {
            self.code.push(0xF2);
            self.sse_rex(src, false);
            self.b(&[0x0F, 0x11, 0x04 | ((src & 7) << 3), 0x08]);
        }

        /// movsd xmm(dst), [r15 + disp]   (pool broadcast)
        pub fn movsd_load_pool(&mut self, dst: u8, disp: i32) {
            self.code.push(0xF2);
            self.sse_rex(dst, true);
            self.b(&[0x0F, 0x10, 0x87 | ((dst & 7) << 3)]);
            self.d32(disp);
        }

        /// movsd xmm(dst), [r12 + disp]   (ctx field / spill load)
        pub fn movsd_load_ctx(&mut self, dst: u8, disp: i32) {
            self.code.push(0xF2);
            self.sse_rex(dst, true);
            self.b(&[0x0F, 0x10, 0x84 | ((dst & 7) << 3), 0x24]);
            self.d32(disp);
        }

        /// movsd [r12 + disp], xmm(src)
        pub fn movsd_store_ctx(&mut self, src: u8, disp: i32) {
            self.code.push(0xF2);
            self.sse_rex(src, true);
            self.b(&[0x0F, 0x11, 0x84 | ((src & 7) << 3), 0x24]);
            self.d32(disp);
        }

        /// addsd/subsd/mulsd/divsd xmm(a), xmm(b): a = a op b
        pub fn sse_op(&mut self, opcode: u8, a: u8, b: u8) {
            self.code.push(0xF2);
            let mut rex = 0x40u8;
            if a >= 8 {
                rex |= 0x04;
            }
            if b >= 8 {
                rex |= 0x01;
            }
            if rex != 0x40 {
                self.code.push(rex);
            }
            self.b(&[0x0F, opcode, 0xC0 | ((a & 7) << 3) | (b & 7)]);
        }

        /// cvtsi2sd xmm(dst), rax
        pub fn cvtsi2sd_rax(&mut self, dst: u8) {
            self.code.push(0xF2);
            self.code.push(if dst >= 8 { 0x4C } else { 0x48 });
            self.b(&[0x0F, 0x2A, 0xC0 | ((dst & 7) << 3)]);
        }

        /// movq rax, xmm(src)
        pub fn movq_rax_xmm(&mut self, src: u8) {
            self.code.push(0x66);
            self.code.push(if src >= 8 { 0x4C } else { 0x48 });
            self.b(&[0x0F, 0x7E, 0xC0 | ((src & 7) << 3)]);
        }

        /// movq xmm(dst), rax
        pub fn movq_xmm_rax(&mut self, dst: u8) {
            self.code.push(0x66);
            self.code.push(if dst >= 8 { 0x4C } else { 0x48 });
            self.b(&[0x0F, 0x6E, 0xC0 | ((dst & 7) << 3)]);
        }
    }

    pub const OP_ADDSD: u8 = 0x58;
    pub const OP_MULSD: u8 = 0x59;
    pub const OP_SUBSD: u8 = 0x5C;
    pub const OP_DIVSD: u8 = 0x5E;
}

// ---------------------------------------------------------------------------
// Region compilation
// ---------------------------------------------------------------------------

/// One compiled loop region: executable code plus the recipe the
/// trampoline uses to resolve its loop-invariant operand pool at every
/// entry. Immutable after construction; shared across sessions through
/// the artifact's [`NativeCache`].
#[cfg_attr(not(all(target_arch = "x86_64", target_os = "linux")), allow(dead_code))]
pub struct NativeRegion {
    #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
    buf: exec_mem::ExecBuf,
    /// Invariant-pool recipe, in pool-slot order.
    pub pool: Vec<PoolEntry>,
    /// Intrinsic descriptors the emitted call sites point into. Never
    /// read from Rust again — it exists to keep the element addresses
    /// baked into the code valid for the life of the region.
    #[allow(dead_code)]
    intrs: Box<[Intr]>,
    /// Number of access streams the code indexes (trampoline sanity).
    pub naccess: usize,
    /// Whether the region folds a reduction through `JitCtx::acc`.
    pub has_red: bool,
}

impl NativeRegion {
    /// Compiles one verifier-accepted vector descriptor to native code.
    ///
    /// `None` means "refused": unsupported target, a descriptor that
    /// fails re-verification (corrupted bytecode must never reach the
    /// emitter), an empty or zero-cost region, or an exec-page
    /// allocation failure. Refusals are cached by [`NativeCache`] so
    /// the VM falls through to the vector/scalar path with no repeated
    /// work.
    pub fn compile(
        prog: &RProgram,
        bunits: &[BUnit],
        uidx: usize,
        desc: u32,
    ) -> Option<Arc<NativeRegion>> {
        // Native regions are only ever emitted from verifier-accepted
        // bytecode: re-run the descriptor acceptance check here, which
        // also refuses descriptors a fault-injection harness corrupted
        // *after* the compile-time verification pass.
        if crate::verify::check_vec_desc(prog, bunits, uidx, desc).is_err() {
            return None;
        }
        let d = &bunits[uidx].vecs[desc as usize];
        if d.stmts.is_empty() || d.iter_cost == 0 {
            return None;
        }
        Self::emit(d)
    }

    #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
    fn emit(d: &VecDesc) -> Option<Arc<NativeRegion>> {
        use emit::*;

        // Pass 1: pin the intrinsic table so call sites can embed
        // absolute element addresses.
        let intrs: Box<[Intr]> = d
            .stmts
            .iter()
            .flatten()
            .filter_map(|op| match *op {
                VecOp::Intr { f, .. } => Some(f),
                _ => None,
            })
            .collect();

        let mut asm = Asm::new();
        let mut pool: Vec<PoolEntry> = Vec::new();
        let mut intr_at = 0usize;

        asm.prologue();
        asm.cmp_k_k1();
        let empty_jump = asm.jge();
        let top = asm.code.len();

        // Spills live registers below `live`, runs `setup` (argument
        // marshalling + call), stashes xmm0 into arg slot 0, restores,
        // and moves the result to `target`.
        let helper_call = |asm: &mut Asm, live: u8, target: u8, setup: &dyn Fn(&mut Asm)| {
            for j in 0..live {
                asm.movsd_store_ctx(j, CTX_SPILL + 8 * i32::from(j));
            }
            setup(asm);
            asm.call_rax();
            asm.movsd_store_ctx(0, CTX_ARGS);
            for j in 0..live {
                asm.movsd_load_ctx(j, CTX_SPILL + 8 * i32::from(j));
            }
            asm.movsd_load_ctx(target, CTX_ARGS);
        };

        for ops in &d.stmts {
            let mut dep: u8 = 0;
            for op in ops {
                // The verifier proved stack balance and the depth cap;
                // re-check defensively so an emitter bug can only ever
                // refuse, never emit out-of-file register indices.
                match *op {
                    VecOp::Load(ai) => {
                        if dep >= VEC_MAX_DEPTH as u8 {
                            return None;
                        }
                        let disp = 16 * ai as i32;
                        asm.mov_rax_streams(disp);
                        asm.mov_rcx_streams(disp + 8);
                        asm.imul_rcx_k();
                        asm.movsd_load_indexed(dep);
                        dep += 1;
                    }
                    VecOp::Splat(c) => {
                        if dep >= VEC_MAX_DEPTH as u8 {
                            return None;
                        }
                        let off = 8 * pool.len() as i32;
                        pool.push(PoolEntry::ConstF(c.to_bits()));
                        asm.movsd_load_pool(dep, off);
                        dep += 1;
                    }
                    VecOp::SplatF(s) => {
                        if dep >= VEC_MAX_DEPTH as u8 {
                            return None;
                        }
                        let off = 8 * pool.len() as i32;
                        pool.push(PoolEntry::FrameF(s));
                        asm.movsd_load_pool(dep, off);
                        dep += 1;
                    }
                    VecOp::SplatG(c) => {
                        if dep >= VEC_MAX_DEPTH as u8 {
                            return None;
                        }
                        let off = 8 * pool.len() as i32;
                        pool.push(PoolEntry::GlobF(c));
                        asm.movsd_load_pool(dep, off);
                        dep += 1;
                    }
                    VecOp::SplatI { coeff, add, inv } => {
                        if dep >= VEC_MAX_DEPTH as u8 {
                            return None;
                        }
                        let off = 8 * pool.len() as i32;
                        pool.push(PoolEntry::ICoeff(coeff));
                        pool.push(PoolEntry::IBase { coeff, add, inv });
                        asm.mov_rax_pool(off);
                        asm.imul_rax_k();
                        asm.add_rax_pool(off + 8);
                        asm.cvtsi2sd_rax(dep);
                        dep += 1;
                    }
                    VecOp::Add | VecOp::Sub | VecOp::Mul | VecOp::Div => {
                        if dep < 2 {
                            return None;
                        }
                        let opc = match *op {
                            VecOp::Add => OP_ADDSD,
                            VecOp::Sub => OP_SUBSD,
                            VecOp::Mul => OP_MULSD,
                            _ => OP_DIVSD,
                        };
                        asm.sse_op(opc, dep - 2, dep - 1);
                        dep -= 1;
                    }
                    VecOp::Pow => {
                        if dep < 2 {
                            return None;
                        }
                        let (la, lb) = (dep - 2, dep - 1);
                        helper_call(&mut asm, la, la, &|a: &mut Asm| {
                            // Marshal through memory: la/lb may be 0/1.
                            a.movsd_store_ctx(la, CTX_ARGS);
                            a.movsd_store_ctx(lb, CTX_ARGS + 8);
                            a.movsd_load_ctx(0, CTX_ARGS);
                            a.movsd_load_ctx(1, CTX_ARGS + 8);
                            a.mov_rax_imm(jit_pow as *const () as usize as u64);
                        });
                        dep -= 1;
                    }
                    VecOp::PowI(e) => {
                        if dep < 1 {
                            return None;
                        }
                        let l = dep - 1;
                        helper_call(&mut asm, l, l, &|a: &mut Asm| {
                            a.movsd_store_ctx(l, CTX_ARGS);
                            a.movsd_load_ctx(0, CTX_ARGS);
                            a.mov_edi_imm(e);
                            a.mov_rax_imm(jit_powi as *const () as usize as u64);
                        });
                    }
                    VecOp::Neg => {
                        if dep < 1 {
                            return None;
                        }
                        // Flip the sign bit through the integer unit:
                        // bit-identical to Rust's `-x`, with no aligned
                        // SSE constant needed.
                        asm.movq_rax_xmm(dep - 1);
                        asm.mov_rcx_imm(0x8000_0000_0000_0000);
                        asm.xor_rax_rcx();
                        asm.movq_xmm_rax(dep - 1);
                    }
                    VecOp::Intr { f: _, argc } => {
                        let na = argc;
                        if dep < na || u32::from(na) > 8 {
                            return None;
                        }
                        let l = dep - na;
                        let fp = &intrs[intr_at] as *const Intr as usize as u64;
                        intr_at += 1;
                        helper_call(&mut asm, l, l, &|a: &mut Asm| {
                            for t in 0..na {
                                a.movsd_store_ctx(l + t, CTX_ARGS + 8 * i32::from(t));
                            }
                            a.mov_rdi_imm(fp);
                            a.lea_rsi_ctx(CTX_ARGS);
                            a.mov_edx_imm(i32::from(na));
                            a.mov_rax_imm(jit_intr as *const () as usize as u64);
                        });
                        dep = l + 1;
                    }
                    VecOp::Store(ai) => {
                        if dep < 1 {
                            return None;
                        }
                        dep -= 1;
                        let disp = 16 * ai as i32;
                        asm.mov_rax_streams(disp);
                        asm.mov_rcx_streams(disp + 8);
                        asm.imul_rcx_k();
                        asm.movsd_store_indexed(dep);
                    }
                }
            }
            if let Some(r) = d.red {
                // The single reduction program left its term in xmm0;
                // fold with the accumulator on the side it held in
                // source (operand order matters for NaN payloads).
                if dep != 1 {
                    return None;
                }
                let opc = match r.op {
                    VecRedOp::Add => OP_ADDSD,
                    VecRedOp::Mul => OP_MULSD,
                };
                asm.movsd_load_ctx(1, 0x20);
                if r.acc_left {
                    asm.sse_op(opc, 1, 0);
                    asm.movsd_store_ctx(1, 0x20);
                } else {
                    asm.sse_op(opc, 0, 1);
                    asm.movsd_store_ctx(0, 0x20);
                }
            } else if dep != 0 {
                return None;
            }
        }

        asm.inc_k();
        asm.cmp_k_k1();
        asm.jl_to(top);
        asm.patch_here(empty_jump);
        asm.epilogue();

        let buf = exec_mem::ExecBuf::new(&asm.code)?;
        Some(Arc::new(NativeRegion {
            buf,
            pool,
            intrs,
            naccess: d.accesses.len(),
            has_red: d.red.is_some(),
        }))
    }

    #[cfg(not(all(target_arch = "x86_64", target_os = "linux")))]
    fn emit(_d: &VecDesc) -> Option<Arc<NativeRegion>> {
        None
    }

    /// Runs one block of iterations (`ctx.k0..ctx.k1`).
    ///
    /// # Safety
    /// `ctx.streams` must point at `self.naccess` streams whose
    /// pointers stay valid for every iteration in the block (the
    /// trampoline holds the array handles and proved bounds for the
    /// whole range), and `ctx.pool` at at least `self.pool.len()`
    /// slots filled from this region's recipe.
    #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
    pub unsafe fn enter(&self, ctx: &mut JitCtx) {
        let f: extern "sysv64" fn(*mut JitCtx) = std::mem::transmute(self.buf.entry());
        f(ctx);
    }

    /// # Safety
    /// Never constructed on non-JIT targets; this stub keeps callers
    /// compiling.
    #[cfg(not(all(target_arch = "x86_64", target_os = "linux")))]
    pub unsafe fn enter(&self, _ctx: &mut JitCtx) {
        unreachable!("native regions cannot be constructed on this target");
    }
}

// ---------------------------------------------------------------------------
// Promotion cache + per-session hooks
// ---------------------------------------------------------------------------

/// Outcome of one promotion step, as seen by the VM dispatch loop.
/// `Ready` and `Refused` are final for a given cache, so the VM may
/// memoize them per run and skip the shared cache's mutex on the hot
/// path; `NotYet` means the region is still warming and the next entry
/// must ask again.
pub(crate) enum Promotion {
    NotYet,
    Ready(Arc<NativeRegion>),
    Refused,
}

/// Promotion state of one `(unit, descriptor)` region.
enum Slot {
    /// Seen `n` entries, not yet past the hotness threshold.
    Warm(u32),
    /// Compiled and ready.
    Ready(Arc<NativeRegion>),
    /// Compilation refused; never retried.
    Refused,
}

/// Shared promotion cache: per-region hotness counters and compiled
/// code, keyed `(unit index, descriptor index)`. Lives on the
/// [`crate::service::CompiledProgram`] artifact so every session over
/// the same artifact shares JIT work; a session that injects corrupted
/// bytecode swaps in a private cache (descriptor indices no longer
/// match the artifact's).
#[derive(Default)]
pub struct NativeCache {
    slots: Mutex<HashMap<(u32, u32), Slot>>,
}

impl NativeCache {
    pub fn new() -> NativeCache {
        NativeCache::default()
    }

    /// Number of regions compiled so far.
    pub fn compiled_count(&self) -> usize {
        self.slots.lock().values().filter(|s| matches!(s, Slot::Ready(_))).count()
    }

    /// One promotion step for a loop entry: returns the compiled
    /// region when this entry should run natively. Counts the entry
    /// otherwise, compiling once the count passes `threshold` (or at
    /// once under `eager`). Compilation runs outside the lock; a
    /// racing duplicate compile is harmless (last insert wins, both
    /// results are equivalent).
    fn promote(
        &self,
        prog: &RProgram,
        bunits: &[BUnit],
        uidx: u32,
        desc: u32,
        eager: bool,
        threshold: u32,
    ) -> Promotion {
        let key = (uidx, desc);
        {
            let mut slots = self.slots.lock();
            match slots.get_mut(&key) {
                Some(Slot::Ready(r)) => return Promotion::Ready(Arc::clone(r)),
                Some(Slot::Refused) => return Promotion::Refused,
                Some(Slot::Warm(n)) => {
                    *n = n.saturating_add(1);
                    if !eager && *n < threshold {
                        return Promotion::NotYet;
                    }
                }
                None => {
                    slots.insert(key, Slot::Warm(1));
                    if !eager && threshold > 1 {
                        return Promotion::NotYet;
                    }
                }
            }
        }
        let compiled = NativeRegion::compile(prog, bunits, uidx as usize, desc);
        let slot = match &compiled {
            Some(r) => Slot::Ready(Arc::clone(r)),
            None => Slot::Refused,
        };
        self.slots.lock().insert(key, slot);
        match compiled {
            Some(r) => Promotion::Ready(r),
            None => Promotion::Refused,
        }
    }
}

/// Per-run snapshot of the session's native-tier configuration,
/// threaded through [`crate::interp::Exec`] to the VM dispatch loop.
/// `None` on the `Exec` means the tier is off (or unavailable on this
/// target) and the `VecLoop` handler pays a single pointer-null test.
pub struct NativeHooks {
    /// Compile on first entry instead of waiting for the threshold.
    pub eager: bool,
    /// Loop entries before a region is promoted.
    pub threshold: u32,
    pub cache: Arc<NativeCache>,
    /// Loop entries that ran natively (session-lifetime, all threads).
    pub entries: Arc<AtomicU64>,
    /// Guard failures on promoted regions that deopted back to the
    /// VM's vector/scalar path (session-lifetime).
    pub deopts: Arc<AtomicU64>,
}

impl NativeHooks {
    /// Promotion step for one `VecLoop` entry (see
    /// [`NativeCache::promote`]).
    pub(crate) fn promote(
        &self,
        prog: &RProgram,
        bunits: &[BUnit],
        uidx: u32,
        desc: u32,
    ) -> Promotion {
        self.cache.promote(prog, bunits, uidx, desc, self.eager, self.threshold)
    }

    pub(crate) fn count_deopt(&self) {
        self.deopts.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_entry(&self) {
        self.entries.fetch_add(1, Ordering::Relaxed);
    }
}

/// The session-owned durable native-tier state ([`NativeHooks`] is the
/// per-run snapshot of this).
pub struct NativeState {
    pub enabled: AtomicBool,
    pub eager: AtomicBool,
    pub threshold: AtomicU32,
    pub entries: Arc<AtomicU64>,
    pub deopts: Arc<AtomicU64>,
    /// Swappable so bytecode injection detaches from the shared cache.
    pub cache: Mutex<Arc<NativeCache>>,
}

impl NativeState {
    pub fn new(cache: Arc<NativeCache>) -> NativeState {
        NativeState {
            enabled: AtomicBool::new(true),
            eager: AtomicBool::new(false),
            threshold: AtomicU32::new(DEFAULT_HOT_THRESHOLD),
            entries: Arc::new(AtomicU64::new(0)),
            deopts: Arc::new(AtomicU64::new(0)),
            cache: Mutex::new(cache),
        }
    }

    /// Builds the per-run snapshot; `None` when the tier is off for
    /// this run or the target has no JIT. `force_eager` is the
    /// [`crate::ExecTier::Native`] override: native on and eager for
    /// this run regardless of the session toggles.
    pub fn hooks(&self, force_eager: bool) -> Option<Arc<NativeHooks>> {
        if !available() || !(force_eager || self.enabled.load(Ordering::Relaxed)) {
            return None;
        }
        Some(Arc::new(NativeHooks {
            eager: force_eager || self.eager.load(Ordering::Relaxed),
            threshold: self.threshold.load(Ordering::Relaxed).max(1),
            cache: Arc::clone(&self.cache.lock()),
            entries: Arc::clone(&self.entries),
            deopts: Arc::clone(&self.deopts),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctx_layout_matches_emitter_offsets() {
        // The emitter hard-codes these; a layout change must fail loudly.
        assert_eq!(std::mem::offset_of!(JitCtx, k0), 0x00);
        assert_eq!(std::mem::offset_of!(JitCtx, k1), 0x08);
        assert_eq!(std::mem::offset_of!(JitCtx, streams), 0x10);
        assert_eq!(std::mem::offset_of!(JitCtx, pool), 0x18);
        assert_eq!(std::mem::offset_of!(JitCtx, acc), 0x20);
        assert_eq!(std::mem::offset_of!(JitCtx, spill), CTX_SPILL as usize);
        assert_eq!(std::mem::size_of::<Stream>(), 16);
    }

    #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
    mod native {
        use super::super::*;
        use crate::bytecode::{VecAccess, VecRed, VecSub, VSlot, NO_SLOT};

        /// Reference evaluation of one lane program at iteration `k`
        /// over plain f64 buffers — mirrors the VM's chunked executor
        /// one lane at a time.
        fn eval_ref(
            d: &VecDesc,
            bufs: &mut [Vec<f64>],
            streams: &[(usize, i64, i64)], // (buf idx, base, stride)
            lo: i64,
            n: i64,
            mut acc: f64,
        ) -> f64 {
            let mut stack = [0.0f64; 16];
            for k in 0..n {
                for ops in &d.stmts {
                    let mut dep = 0usize;
                    for op in ops {
                        match *op {
                            VecOp::Load(ai) => {
                                let (b, base, stride) = streams[ai as usize];
                                stack[dep] = bufs[b][(base + stride * k) as usize];
                                dep += 1;
                            }
                            VecOp::Splat(c) => {
                                stack[dep] = c;
                                dep += 1;
                            }
                            VecOp::SplatI { coeff, add, inv: _ } => {
                                let i = lo.wrapping_add(k);
                                stack[dep] = coeff.wrapping_mul(i).wrapping_add(add) as f64;
                                dep += 1;
                            }
                            VecOp::SplatF(_) | VecOp::SplatG(_) => unreachable!("not in tests"),
                            VecOp::Add => {
                                stack[dep - 2] += stack[dep - 1];
                                dep -= 1;
                            }
                            VecOp::Sub => {
                                stack[dep - 2] -= stack[dep - 1];
                                dep -= 1;
                            }
                            VecOp::Mul => {
                                stack[dep - 2] *= stack[dep - 1];
                                dep -= 1;
                            }
                            VecOp::Div => {
                                stack[dep - 2] /= stack[dep - 1];
                                dep -= 1;
                            }
                            VecOp::Pow => {
                                stack[dep - 2] = stack[dep - 2].powf(stack[dep - 1]);
                                dep -= 1;
                            }
                            VecOp::PowI(e) => stack[dep - 1] = stack[dep - 1].powi(e),
                            VecOp::Neg => stack[dep - 1] = -stack[dep - 1],
                            VecOp::Intr { f, argc } => {
                                let na = argc as usize;
                                dep -= na;
                                let v = f.eval_f(&stack[dep..dep + na]);
                                stack[dep] = v;
                                dep += 1;
                            }
                            VecOp::Store(ai) => {
                                dep -= 1;
                                let (b, base, stride) = streams[ai as usize];
                                bufs[b][(base + stride * k) as usize] = stack[dep];
                            }
                        }
                    }
                    if let Some(r) = d.red {
                        let t = stack[0];
                        acc = match (r.op, r.acc_left) {
                            (VecRedOp::Add, true) => acc + t,
                            (VecRedOp::Add, false) => t + acc,
                            (VecRedOp::Mul, true) => acc * t,
                            (VecRedOp::Mul, false) => t * acc,
                        };
                    }
                }
            }
            acc
        }

        /// Runs the emitted code over u64-bit buffers mirroring
        /// `bufs`, returning the final accumulator.
        fn run_native(
            region: &NativeRegion,
            bufs: &mut [Vec<f64>],
            streams: &[(usize, i64, i64)],
            lo: i64,
            n: i64,
            acc0: f64,
        ) -> f64 {
            let mut bits: Vec<Vec<u64>> =
                bufs.iter().map(|b| b.iter().map(|x| x.to_bits()).collect()).collect();
            let svec: Vec<Stream> = streams
                .iter()
                .map(|&(b, base, stride)| Stream {
                    ptr: unsafe { bits[b].as_mut_ptr().offset(base as isize) },
                    stride8: stride * 8,
                })
                .collect();
            let pool: Vec<u64> = region
                .pool
                .iter()
                .map(|e| match *e {
                    PoolEntry::ConstF(b) => b,
                    PoolEntry::ICoeff(c) => c as u64,
                    PoolEntry::IBase { coeff, add, .. } => {
                        coeff.wrapping_mul(lo).wrapping_add(add) as u64
                    }
                    _ => unreachable!("not in tests"),
                })
                .collect();
            let mut ctx = JitCtx {
                k0: 0,
                k1: n,
                streams: svec.as_ptr(),
                pool: pool.as_ptr(),
                acc: acc0,
                spill: [0; SPILL_SAVES + SPILL_ARGS],
            };
            unsafe { region.enter(&mut ctx) };
            for (b, out) in bits.iter().zip(bufs.iter_mut()) {
                for (x, y) in b.iter().zip(out.iter_mut()) {
                    *y = f64::from_bits(*x);
                }
            }
            ctx.acc
        }

        fn acc_f(subs: Vec<VecSub>, write: bool) -> VecAccess {
            VecAccess { vs: VSlot::A(0), v: 0, subs, write }
        }

        fn sub1() -> VecSub {
            VecSub { coeff: 1, add: 0, inv: NO_SLOT }
        }

        fn desc(accesses: Vec<VecAccess>, stmts: Vec<Vec<VecOp>>, red: Option<VecRed>) -> VecDesc {
            let max_depth = stmts
                .iter()
                .map(|ops| {
                    let (mut dep, mut mx) = (0i32, 0i32);
                    for op in ops {
                        match op {
                            VecOp::Load(_)
                            | VecOp::Splat(_)
                            | VecOp::SplatF(_)
                            | VecOp::SplatG(_)
                            | VecOp::SplatI { .. } => dep += 1,
                            VecOp::Add
                            | VecOp::Sub
                            | VecOp::Mul
                            | VecOp::Div
                            | VecOp::Pow
                            | VecOp::Store(_) => dep -= 1,
                            VecOp::Intr { argc, .. } => dep -= i32::from(*argc) - 1,
                            VecOp::PowI(_) | VecOp::Neg => {}
                        }
                        mx = mx.max(dep);
                    }
                    mx as u32
                })
                .max()
                .unwrap_or(0);
            VecDesc { accesses, stmts, red, max_depth, iter_cost: 4, line: 1 }
        }

        fn check(d: &VecDesc, nbufs: usize, streams: &[(usize, i64, i64)], n: i64, acc0: f64) {
            let region = NativeRegion::emit(d).expect("emit");
            let len = 2 * n as usize + 8;
            let mk = |salt: usize| -> Vec<Vec<f64>> {
                (0..nbufs)
                    .map(|b| {
                        (0..len)
                            .map(|i| ((i * 7 + b * 13 + salt) % 23) as f64 * 0.375 + 0.25)
                            .collect()
                    })
                    .collect()
            };
            let mut want_bufs = mk(3);
            let mut got_bufs = mk(3);
            let want = eval_ref(d, &mut want_bufs, streams, 5, n, acc0);
            let got = run_native(&region, &mut got_bufs, streams, 5, n, acc0);
            assert_eq!(want.to_bits(), got.to_bits(), "accumulator bits");
            for (w, g) in want_bufs.iter().zip(got_bufs.iter()) {
                let wb: Vec<u64> = w.iter().map(|x| x.to_bits()).collect();
                let gb: Vec<u64> = g.iter().map(|x| x.to_bits()).collect();
                assert_eq!(wb, gb, "buffer bits");
            }
        }

        #[test]
        fn map_statement_axpy() {
            // a(i) = a(i) * c + b(i)
            let d = desc(
                vec![acc_f(vec![sub1()], true), acc_f(vec![sub1()], false)],
                vec![vec![
                    VecOp::Load(0),
                    VecOp::Splat(1.5),
                    VecOp::Mul,
                    VecOp::Load(1),
                    VecOp::Add,
                    VecOp::Store(0),
                ]],
                None,
            );
            check(&d, 2, &[(0, 2, 1), (1, 0, 1)], 37, 0.0);
        }

        #[test]
        fn reduction_dot_product() {
            let d = desc(
                vec![acc_f(vec![sub1()], false), acc_f(vec![sub1()], false)],
                vec![vec![VecOp::Load(0), VecOp::Load(1), VecOp::Mul]],
                Some(VecRed { vs: VSlot::F(0), op: VecRedOp::Add, acc_left: true }),
            );
            check(&d, 2, &[(0, 0, 1), (1, 1, 1)], 100, 0.5);
        }

        #[test]
        fn reduction_acc_right_product() {
            let d = desc(
                vec![acc_f(vec![sub1()], false)],
                vec![vec![VecOp::Load(0), VecOp::Splat(0.25), VecOp::Add]],
                Some(VecRed { vs: VSlot::F(0), op: VecRedOp::Mul, acc_left: false }),
            );
            check(&d, 1, &[(0, 0, 1)], 11, 1.0);
        }

        #[test]
        fn helper_ops_pow_powi_intr() {
            // a(i) = exp(-b(i)) + b(i)**2 + b(i)**c  — exercises Intr,
            // PowI, Pow and Neg with live registers across the calls.
            let d = desc(
                vec![acc_f(vec![sub1()], true), acc_f(vec![sub1()], false)],
                vec![vec![
                    VecOp::Load(1),
                    VecOp::Neg,
                    VecOp::Intr { f: Intr::Exp, argc: 1 },
                    VecOp::Load(1),
                    VecOp::PowI(2),
                    VecOp::Add,
                    VecOp::Load(1),
                    VecOp::Splat(1.25),
                    VecOp::Pow,
                    VecOp::Add,
                    VecOp::Store(0),
                ]],
                None,
            );
            check(&d, 2, &[(0, 0, 1), (1, 3, 1)], 29, 0.0);
        }

        #[test]
        fn two_arg_intrinsics_and_deep_stack() {
            // a(i) = max(b(i), sign(b(i), -b(i))) + min(b(i), 2.0)
            let d = desc(
                vec![acc_f(vec![sub1()], true), acc_f(vec![sub1()], false)],
                vec![vec![
                    VecOp::Load(1),
                    VecOp::Load(1),
                    VecOp::Load(1),
                    VecOp::Neg,
                    VecOp::Intr { f: Intr::Sign, argc: 2 },
                    VecOp::Intr { f: Intr::Max, argc: 2 },
                    VecOp::Load(1),
                    VecOp::Splat(2.0),
                    VecOp::Intr { f: Intr::Min, argc: 2 },
                    VecOp::Add,
                    VecOp::Store(0),
                ]],
                None,
            );
            check(&d, 2, &[(0, 0, 1), (1, 1, 1)], 53, 0.0);
        }

        #[test]
        fn splat_i_affine_index() {
            // a(i) = 3*i - 7 (as f64), i running from lo.
            let d = desc(
                vec![acc_f(vec![sub1()], true)],
                vec![vec![
                    VecOp::SplatI { coeff: 3, add: -7, inv: NO_SLOT },
                    VecOp::Store(0),
                ]],
                None,
            );
            check(&d, 1, &[(0, 0, 1)], 19, 0.0);
        }

        #[test]
        fn strided_and_offset_streams() {
            // a(2i) = b(n-i)-ish: negative stride read, stride-2 write.
            let d = desc(
                vec![acc_f(vec![sub1()], true), acc_f(vec![sub1()], false)],
                vec![vec![VecOp::Load(1), VecOp::Splat(0.5), VecOp::Div, VecOp::Store(0)]],
                None,
            );
            check(&d, 2, &[(0, 0, 2), (1, 40, -1)], 20, 0.0);
        }

        #[test]
        fn block_split_equals_one_shot() {
            // Running k in two blocks must produce the same bits as one
            // block (the trampoline polls safepoints between blocks).
            let d = desc(
                vec![acc_f(vec![sub1()], false)],
                vec![vec![VecOp::Load(0), VecOp::Load(0), VecOp::Mul]],
                Some(VecRed { vs: VSlot::F(0), op: VecRedOp::Add, acc_left: true }),
            );
            let region = NativeRegion::emit(&d).expect("emit");
            let vals: Vec<f64> = (0..64).map(|i| (i as f64) * 0.3 - 4.0).collect();
            let mut bits: Vec<u64> = vals.iter().map(|x| x.to_bits()).collect();
            let svec = [Stream { ptr: bits.as_mut_ptr(), stride8: 8 }];
            let pool: Vec<u64> = Vec::new();
            let run_blocks = |splits: &[(i64, i64)]| -> f64 {
                let mut ctx = JitCtx {
                    k0: 0,
                    k1: 0,
                    streams: svec.as_ptr(),
                    pool: pool.as_ptr(),
                    acc: 0.125,
                    spill: [0; SPILL_SAVES + SPILL_ARGS],
                };
                for &(k0, k1) in splits {
                    ctx.k0 = k0;
                    ctx.k1 = k1;
                    unsafe { region.enter(&mut ctx) };
                }
                ctx.acc
            };
            let one = run_blocks(&[(0, 64)]);
            let many = run_blocks(&[(0, 17), (17, 40), (40, 64)]);
            assert_eq!(one.to_bits(), many.to_bits());
        }

        #[test]
        fn empty_block_is_a_no_op() {
            let d = desc(
                vec![acc_f(vec![sub1()], true)],
                vec![vec![VecOp::Splat(9.0), VecOp::Store(0)]],
                None,
            );
            let region = NativeRegion::emit(&d).expect("emit");
            let mut bits = [1.0f64.to_bits(); 4];
            let svec = [Stream { ptr: bits.as_mut_ptr(), stride8: 8 }];
            let pool: Vec<u64> = region
                .pool
                .iter()
                .map(|e| match *e {
                    PoolEntry::ConstF(b) => b,
                    _ => 0,
                })
                .collect();
            let mut ctx = JitCtx {
                k0: 3,
                k1: 3,
                streams: svec.as_ptr(),
                pool: pool.as_ptr(),
                acc: 0.0,
                spill: [0; SPILL_SAVES + SPILL_ARGS],
            };
            unsafe { region.enter(&mut ctx) };
            assert!(bits.iter().all(|&b| b == 1.0f64.to_bits()));
        }
    }

    #[test]
    fn cache_counts_then_promotes_and_caches_refusals() {
        // Exercised through the public service path in integration
        // tests; here just the counting logic with an un-compilable
        // descriptor (no program available → use the refusal arm).
        let cache = NativeCache::new();
        assert_eq!(cache.compiled_count(), 0);
    }
}
