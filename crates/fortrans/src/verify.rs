//! Static bytecode verifier: proves a compiled [`BUnit`] safe to run on
//! the VM tier before it ever executes.
//!
//! The VM ([`crate::vm`]) is written against a compiler invariant — slot
//! indices are in range, jump targets land inside the unit, the operand
//! stack balances along every control-flow path — and indexes its banks
//! without bounds checks on the strength of it. A miscompiled or
//! corrupted instruction stream would turn those assumptions into
//! panics or silent wrong answers. This module re-establishes the
//! invariant *from the bytecode alone*, in two passes per unit:
//!
//! 1. **Structural pass** over every instruction (reachable or not):
//!    slot indices within the declared banks, global cells within the
//!    program's global table, jump/branch/loop targets inside
//!    `[0, code.len()]`, message/call/OMP/print/shape descriptor
//!    indices within their tables, DO-loop strides provably non-zero
//!    where the compiler elided the runtime check, and call sites whose
//!    arity and parameter slots match the callee.
//! 2. **Abstract interpretation** of stack depths from the entry point:
//!    each reachable pc gets a `(operand, array, stash)` depth triple;
//!    joins must agree, pops must not underflow, and every exit —
//!    falling off the end, `RETURN`, or a loop-flow escape — must leave
//!    all three stacks empty.
//!
//! [`verify_program`] runs after `compile_program` inside
//! [`crate::engine::Engine::compile`], so a program that compiles has
//! *verified* bytecode before the first run. The [`mutate`] submodule
//! is the other half of the bargain: a deterministic fault injector
//! that corrupts verified bytecode in ways the verifier (or the
//! engine's trap-and-fallback path) must catch — see
//! `tests/fault_injection.rs`.

use crate::bytecode::{
    vec_stack_effect, BArg, BInstr, BUnit, PItem, VSlot, VecOp, NO_PC, NO_SLOT, VEC_MAX_DEPTH,
};
use crate::error::CompileError;
use crate::rir::RProgram;

/// Verifies every unit of a compiled program. Returns the first
/// violation as [`CompileError::Verify`] with the unit name and pc.
pub fn verify_program(prog: &RProgram, bunits: &[BUnit]) -> Result<(), CompileError> {
    for bu in bunits {
        let v = Verifier { prog, bunits, bu };
        v.verify().map_err(|(pc, msg)| CompileError::Verify {
            unit: unit_name(prog, bu),
            pc,
            msg,
        })?;
    }
    Ok(())
}

/// Re-checks a single vector descriptor's acceptance invariants —
/// exactly the check [`verify_program`] runs over `bu.vecs`. The
/// native tier ([`crate::jit`]) calls this at promotion time so machine
/// code is only ever emitted from bytecode that passes verification
/// *right now* (a descriptor corrupted after the compile-time pass is
/// refused, not compiled).
pub fn check_vec_desc(
    prog: &RProgram,
    bunits: &[BUnit],
    uidx: usize,
    desc: u32,
) -> Result<(), String> {
    let Some(bu) = bunits.get(uidx) else {
        return Err(format!("unit index {uidx} out of range"));
    };
    let v = Verifier { prog, bunits, bu };
    v.vec_desc_ok(desc)
}

fn unit_name(prog: &RProgram, bu: &BUnit) -> String {
    match prog.units.get(bu.unit as usize) {
        Some(u) => u.name.clone(),
        None => format!("unit#{}", bu.unit),
    }
}

/// Abstract machine state: depths of the operand stack, the array-handle
/// stack and the subscript stash.
type Depth = (u32, u32, u32);

/// A violation: (pc, message).
type Violation = (u32, String);

struct Verifier<'a> {
    prog: &'a RProgram,
    bunits: &'a [BUnit],
    bu: &'a BUnit,
}

impl Verifier<'_> {
    fn verify(&self) -> Result<(), Violation> {
        self.check_unit_tables()?;
        for (pc, ins) in self.bu.code.iter().enumerate() {
            self.structural(pc as u32, ins)?;
        }
        self.dataflow()
    }

    // ---------- unit-level tables ----------

    fn check_unit_tables(&self) -> Result<(), Violation> {
        let bu = self.bu;
        let unit = self
            .prog
            .units
            .get(bu.unit as usize)
            .ok_or_else(|| (0, format!("unit index {} out of range", bu.unit)))?;
        if bu.vslots.len() != unit.vars.len() {
            return Err((
                0,
                format!(
                    "slot table has {} entries for {} variables",
                    bu.vslots.len(),
                    unit.vars.len()
                ),
            ));
        }
        for &vs in &bu.vslots {
            self.slot_ok(bu, vs).map_err(|m| (0, m))?;
        }
        if let Some((vs, _)) = bu.result {
            self.scalar_slot_ok(bu, vs).map_err(|m| (0, m))?;
        }
        for &(slot, _, ref dims) in &bu.fixed_arrays {
            if slot >= bu.na {
                return Err((0, format!("fixed array slot {slot} out of range (na={})", bu.na)));
            }
            if !crate::storage::ArrayObj::dims_fit(dims) {
                return Err((0, "fixed array shape exceeds the element cap".into()));
            }
        }
        Ok(())
    }

    // ---------- per-instruction structural checks ----------

    #[allow(clippy::too_many_lines)]
    fn structural(&self, pc: u32, ins: &BInstr) -> Result<(), Violation> {
        use BInstr::*;
        let bu = self.bu;
        let n = bu.code.len() as u32;
        let at = |m: String| (pc, m);
        let tgt = |t: u32, what: &str| -> Result<(), Violation> {
            if t > n {
                Err(at(format!("{what} target {t} out of range (unit has {n} instructions)")))
            } else {
                Ok(())
            }
        };
        let islot = |s: u32, what: &str| -> Result<(), Violation> {
            if s >= bu.ni {
                Err(at(format!("{what} i-slot {s} out of range (ni={})", bu.ni)))
            } else {
                Ok(())
            }
        };
        let msg_ok = |m: u32| -> Result<(), Violation> {
            if m as usize >= bu.msgs.len() {
                Err(at(format!("message index {m} out of range ({} messages)", bu.msgs.len())))
            } else {
                Ok(())
            }
        };
        match *ins {
            LoadI(s) | StoreI(s) => islot(s, "scalar")?,
            LoadF(s) | StoreF(s) => {
                if s >= bu.nf {
                    return Err(at(format!("f-slot {s} out of range (nf={})", bu.nf)));
                }
            }
            LoadB(s) | StoreB(s) => {
                if s >= bu.nb {
                    return Err(at(format!("b-slot {s} out of range (nb={})", bu.nb)));
                }
            }
            LoadG(c) | StoreG(c) => self.glob_ok(c).map_err(at)?,
            FailType { msg } | Stop { msg } => msg_ok(msg)?,
            LoadElem { vs, v, .. } | StoreElem { vs, v, .. } | StashElem { vs, v, .. } => {
                self.slot_ok(bu, vs).map_err(at)?;
                self.var_ok(v).map_err(at)?;
            }
            AtomicElem { vs, v, .. } | Broadcast { vs, v, .. } | ArrRed { vs, v, .. }
            | PushArr { vs, v } => {
                self.slot_ok(bu, vs).map_err(at)?;
                self.var_ok(v).map_err(at)?;
            }
            AtomicScal { vs, v, .. } => {
                self.scalar_slot_ok(bu, vs).map_err(at)?;
                self.var_ok(v).map_err(at)?;
            }
            AllocatedQ { vs } => self.slot_ok(bu, vs).map_err(at)?,
            CopyArr { dvs, dv, svs, sv } => {
                self.slot_ok(bu, dvs).map_err(at)?;
                self.slot_ok(bu, svs).map_err(at)?;
                self.var_ok(dv).map_err(at)?;
                self.var_ok(sv).map_err(at)?;
            }
            LoadElemS { a, sd, v, .. } | StoreElemS { a, sd, v, .. } => {
                if a >= bu.na {
                    return Err(at(format!("a-slot {a} out of range (na={})", bu.na)));
                }
                if sd as usize >= bu.sdims.len() {
                    return Err(at(format!("shape descriptor {sd} out of range")));
                }
                self.var_ok(v).map_err(at)?;
            }
            Alloc { vs, v, .. } | Dealloc { vs, v } => {
                self.slot_ok(bu, vs).map_err(at)?;
                self.var_ok(v).map_err(at)?;
                if matches!(vs, VSlot::I(_) | VSlot::F(_) | VSlot::B(_)) {
                    return Err(at("ALLOCATE/DEALLOCATE of a scalar slot".into()));
                }
            }
            Jump(t) => tgt(t, "jump")?,
            JumpIfFalse(t) => tgt(t, "branch")?,
            DoInitC { ctr, end } => {
                islot(ctr, "DO counter")?;
                islot(end, "DO end")?;
            }
            DoInit { ctr, end, step, check } => {
                islot(ctr, "DO counter")?;
                islot(end, "DO end")?;
                islot(step, "DO step")?;
                if !check {
                    // The compiler only elides the runtime zero-step check
                    // when the step folded to a constant it proved
                    // non-zero — which it pushes immediately before.
                    let prev = pc.checked_sub(1).map(|p| &bu.code[p as usize]);
                    match prev {
                        Some(&Const(bits)) if bits as i64 != 0 => {}
                        _ => {
                            return Err(at(
                                "unchecked DO step is not a non-zero constant".into(),
                            ));
                        }
                    }
                }
            }
            DoHead1 { ctr, end, var, exit } => {
                islot(ctr, "DO counter")?;
                islot(end, "DO end")?;
                islot(var, "DO variable")?;
                tgt(exit, "loop exit")?;
            }
            VecLoop { desc, ctr, end, var, exit } => {
                islot(ctr, "DO counter")?;
                islot(end, "DO end")?;
                islot(var, "DO variable")?;
                tgt(exit, "vector loop exit")?;
                self.vec_desc_ok(desc).map_err(at)?;
            }
            DoHeadN { ctr, end, step, var, exit } => {
                islot(ctr, "DO counter")?;
                islot(end, "DO end")?;
                islot(step, "DO step")?;
                islot(var, "DO variable")?;
                tgt(exit, "loop exit")?;
            }
            DoHead { ctr, end, step, exit } => {
                islot(ctr, "DO counter")?;
                islot(end, "DO end")?;
                islot(step, "DO step")?;
                tgt(exit, "loop exit")?;
            }
            DoIncr1 { ctr, head } => {
                islot(ctr, "DO counter")?;
                tgt(head, "loop head")?;
            }
            DoIncr { ctr, step, head } => {
                islot(ctr, "DO counter")?;
                islot(step, "DO step")?;
                tgt(head, "loop head")?;
            }
            Critical { name, end, exit, cycle } => {
                msg_ok(name)?;
                tgt(end, "CRITICAL end")?;
                if end < pc + 1 {
                    return Err(at("CRITICAL body ends before it starts".into()));
                }
                if exit != NO_PC {
                    tgt(exit, "CRITICAL exit")?;
                }
                if cycle != NO_PC {
                    tgt(cycle, "CRITICAL cycle")?;
                }
            }
            OmpDo { desc } => {
                let od = bu
                    .omps
                    .get(desc as usize)
                    .ok_or_else(|| at(format!("OMP descriptor {desc} out of range")))?;
                if od.dims.is_empty() {
                    return Err(at("OMP descriptor has no loop dimensions".into()));
                }
                for &(vs, _) in &od.dims {
                    self.scalar_slot_ok(bu, vs).map_err(at)?;
                }
                let (blo, bhi) = od.body;
                if blo > bhi {
                    return Err(at(format!("OMP body range {blo}..{bhi} is reversed")));
                }
                tgt(bhi, "OMP body end")?;
                for &pa in &od.private_arrays {
                    if pa >= bu.na {
                        return Err(at(format!("PRIVATE array slot {pa} out of range")));
                    }
                }
                for spec in &od.reductions {
                    self.scalar_slot_ok(bu, spec.vs).map_err(at)?;
                }
                match od.sched {
                    omprt::Schedule::StaticChunk(0)
                    | omprt::Schedule::Dynamic(0)
                    | omprt::Schedule::Guided(0) => {
                        return Err(at("OMP schedule chunk must be >= 1".into()));
                    }
                    _ => {}
                }
            }
            Call { spec, push } => {
                let cs = bu
                    .calls
                    .get(spec as usize)
                    .ok_or_else(|| at(format!("call spec {spec} out of range")))?;
                let callee = self
                    .bunits
                    .get(cs.callee as usize)
                    .ok_or_else(|| at(format!("callee unit {} out of range", cs.callee)))?;
                let cunit = self
                    .prog
                    .units
                    .get(cs.callee as usize)
                    .ok_or_else(|| at(format!("callee unit {} out of range", cs.callee)))?;
                if cs.args.len() != cunit.params.len() {
                    return Err(at(format!(
                        "call to `{}` passes {} args, callee takes {}",
                        cunit.name,
                        cs.args.len(),
                        cunit.params.len()
                    )));
                }
                let stash: u32 = cs
                    .args
                    .iter()
                    .map(|a| match *a {
                        BArg::Elem { nsubs, .. } => u32::from(nsubs),
                        _ => 0,
                    })
                    .sum();
                if stash != cs.n_stash {
                    return Err(at(format!(
                        "call stash count {} disagrees with arguments ({stash})",
                        cs.n_stash
                    )));
                }
                if push && cs.ret.is_none() {
                    return Err(at("call pushes a result but the callee has none".into()));
                }
                if let Some((rvs, _)) = cs.ret {
                    self.scalar_slot_ok(callee, rvs).map_err(at)?;
                }
                for arg in &cs.args {
                    match *arg {
                        BArg::Scalar { src_vs, src_v, p, .. } => {
                            self.scalar_slot_ok(bu, src_vs).map_err(at)?;
                            self.var_ok(src_v).map_err(at)?;
                            self.scalar_slot_ok(callee, p).map_err(at)?;
                        }
                        BArg::Val { p, .. } => self.scalar_slot_ok(callee, p).map_err(at)?,
                        BArg::Elem { vs, v, p, .. } => {
                            self.slot_ok(bu, vs).map_err(at)?;
                            self.var_ok(v).map_err(at)?;
                            self.scalar_slot_ok(callee, p).map_err(at)?;
                        }
                        BArg::Arr { p } => {
                            if p >= callee.na {
                                return Err(at(format!(
                                    "array argument slot {p} out of callee range (na={})",
                                    callee.na
                                )));
                            }
                        }
                    }
                }
            }
            Print { spec } => {
                if spec as usize >= bu.prints.len() {
                    return Err(at(format!("print spec {spec} out of range")));
                }
            }
            // Pure stack/cost instructions carry no indices.
            Const(_) | CvtIF | CvtFI | CvtIB | CvtFB | AddF | SubF | MulF | DivF | PowFF
            | PowFI | NegF | AddI | SubI | MulI | DivI | PowII | NegI | NotB | AndB | OrB
            | CmpF(_) | CmpI(_) | FailArith2 | FailNegB | IntrI { .. } | IntrF { .. }
            | CostBranch | VecEnter(_) | VecLeave | CheckStepNZ | FlowExit | FlowCycle
            | FlowReturn | CallPre => {}
        }
        Ok(())
    }

    // ---------- stack-depth abstract interpretation ----------

    fn dataflow(&self) -> Result<(), Violation> {
        let n = self.bu.code.len();
        let mut state: Vec<Option<Depth>> = vec![None; n + 1];
        let mut work: Vec<u32> = Vec::new();
        join(&mut state, &mut work, 0, (0, 0, 0), 0)?;
        while let Some(pc) = work.pop() {
            let pcu = pc as usize;
            if pcu == n {
                continue; // virtual exit node; depth checked in `join`
            }
            let Some(d) = state[pcu] else { continue };
            for (t, nd) in self.step(pc, self.bu.code[pcu], d)? {
                join(&mut state, &mut work, t, nd, pc)?;
            }
        }
        Ok(())
    }

    /// Transfer function: successors of `pc` with their entry depths.
    /// Terminators return no successors.
    fn step(&self, pc: u32, ins: BInstr, d: Depth) -> Result<Vec<(u32, Depth)>, Violation> {
        use BInstr::*;
        let (mut s, mut a, mut t) = d;
        let pop = |s: &mut u32, n: u32| -> Result<(), Violation> {
            if *s < n {
                Err((pc, format!("operand stack underflow: need {n}, have {}", *s)))
            } else {
                *s -= n;
                Ok(())
            }
        };
        match ins {
            Const(_) | LoadI(_) | LoadF(_) | LoadB(_) | LoadG(_) | ArrRed { .. }
            | AllocatedQ { .. } => s += 1,
            StoreI(_) | StoreF(_) | StoreB(_) | StoreG(_) | Broadcast { .. }
            | AtomicScal { .. } => pop(&mut s, 1)?,
            CvtIF | CvtFI | CvtIB | CvtFB | NegF | NegI | NotB => {
                pop(&mut s, 1)?;
                s += 1;
            }
            AddF | SubF | MulF | DivF | PowFF | PowFI | AddI | SubI | MulI | DivI | PowII
            | AndB | OrB | CmpF(_) | CmpI(_) => {
                pop(&mut s, 2)?;
                s += 1;
            }
            FailArith2 | FailNegB | FailType { .. } | Stop { .. } => return Ok(vec![]),
            IntrI { argc, .. } | IntrF { argc, .. } => {
                pop(&mut s, u32::from(argc))?;
                s += 1;
            }
            LoadElem { nsubs, .. } => {
                pop(&mut s, u32::from(nsubs))?;
                s += 1;
            }
            LoadElemS { sd, .. } => {
                pop(&mut s, self.bu.sdims[sd as usize].dims.len() as u32)?;
                s += 1;
            }
            StoreElem { nsubs, .. } => pop(&mut s, 1 + u32::from(nsubs))?,
            StoreElemS { sd, .. } => {
                pop(&mut s, 1 + self.bu.sdims[sd as usize].dims.len() as u32)?;
            }
            AtomicElem { nsubs, .. } => pop(&mut s, u32::from(nsubs) + 1)?,
            Alloc { ndims, .. } => pop(&mut s, 2 * u32::from(ndims))?,
            CopyArr { .. } | Dealloc { .. } | CostBranch | VecEnter(_) | VecLeave | CallPre => {}
            Jump(tg) => return Ok(vec![(tg, (s, a, t))]),
            JumpIfFalse(tg) => {
                pop(&mut s, 1)?;
                return Ok(vec![(pc + 1, (s, a, t)), (tg, (s, a, t))]);
            }
            DoInitC { .. } => pop(&mut s, 2)?,
            DoInit { .. } => pop(&mut s, 3)?,
            DoHead1 { exit, .. } | DoHeadN { exit, .. } | DoHead { exit, .. } => {
                return Ok(vec![(pc + 1, d), (exit, d)]);
            }
            // A vector loop either completes and jumps to `exit` or falls
            // through to its scalar head; its lane stack is internal to
            // the descriptor (checked structurally), so both successors
            // see the incoming depths unchanged.
            VecLoop { exit, .. } => return Ok(vec![(pc + 1, d), (exit, d)]),
            DoIncr1 { head, .. } | DoIncr { head, .. } => return Ok(vec![(head, d)]),
            CheckStepNZ => {
                if s == 0 {
                    return Err((pc, "operand stack underflow: need 1, have 0".into()));
                }
            }
            FlowExit | FlowCycle | FlowReturn => {
                if d != (0, 0, 0) {
                    return Err((
                        pc,
                        format!("EXIT/CYCLE/RETURN with non-empty stacks {d:?}"),
                    ));
                }
                return Ok(vec![]);
            }
            Critical { end, exit, cycle, .. } => {
                let mut succ = vec![(pc + 1, d), (end, d)];
                if exit != NO_PC {
                    succ.push((exit, d));
                }
                if cycle != NO_PC {
                    succ.push((cycle, d));
                }
                return Ok(succ);
            }
            OmpDo { desc } => {
                let od = &self.bu.omps[desc as usize];
                let npop = 3 + 2 * (od.dims.len() as u32 - 1) + u32::from(od.has_nt);
                pop(&mut s, npop)?;
                if (s, a, t) != (0, 0, 0) {
                    return Err((
                        pc,
                        format!("OMP region entered with non-empty stacks ({s}, {a}, {t})"),
                    ));
                }
                // Body runs on a worker's fresh stacks; after the region
                // execution resumes at the body end.
                return Ok(vec![(od.body.0, (0, 0, 0)), (od.body.1, (0, 0, 0))]);
            }
            StashElem { nsubs, .. } => {
                pop(&mut s, u32::from(nsubs))?;
                s += 1;
                t += u32::from(nsubs);
            }
            PushArr { .. } => a += 1,
            Call { spec, push } => {
                let cs = &self.bu.calls[spec as usize];
                let (mut ops, mut arrs) = (0u32, 0u32);
                for arg in &cs.args {
                    match arg {
                        BArg::Arr { .. } => arrs += 1,
                        _ => ops += 1,
                    }
                }
                pop(&mut s, ops)?;
                if a < arrs {
                    return Err((pc, format!("array stack underflow: need {arrs}, have {a}")));
                }
                a -= arrs;
                if t < cs.n_stash {
                    return Err((
                        pc,
                        format!("subscript stash underflow: need {}, have {t}", cs.n_stash),
                    ));
                }
                t -= cs.n_stash;
                if push {
                    s += 1;
                }
            }
            Print { spec } => {
                let nv = self.bu.prints[spec as usize]
                    .iter()
                    .filter(|i| matches!(i, PItem::Val(_)))
                    .count() as u32;
                pop(&mut s, nv)?;
            }
        }
        Ok(vec![(pc + 1, (s, a, t))])
    }

    // ---------- vector descriptor checks ----------

    /// Validates one vector-loop descriptor: every access names an
    /// in-range array slot, every lane program references only declared
    /// accesses/slots and balances its lane stack within the declared
    /// depth, map statements end in a store to a written access, and a
    /// reduction descriptor is a single program folding into a scalar
    /// f64 slot. The VM's chunked executor indexes lanes and access
    /// streams without bounds checks on the strength of these.
    fn vec_desc_ok(&self, desc: u32) -> Result<(), String> {
        let bu = self.bu;
        let d = bu
            .vecs
            .get(desc as usize)
            .ok_or_else(|| format!("vector descriptor {desc} out of range"))?;
        if d.max_depth > VEC_MAX_DEPTH {
            return Err(format!("vector lane depth {} exceeds cap {VEC_MAX_DEPTH}", d.max_depth));
        }
        // The emitter patches in the scalar cost of head-through-incr,
        // which is at least 2; the VM's step pre-reserve and the native
        // tier's safepoint cadence both scale by it.
        if d.iter_cost == 0 {
            return Err(format!("vector descriptor {desc} has zero iteration cost"));
        }
        for a in &d.accesses {
            self.slot_ok(bu, a.vs)?;
            self.var_ok(a.v)?;
            if !matches!(a.vs, VSlot::A(_) | VSlot::GlobA(_)) {
                return Err(format!("vector access slot {:?} is not an array", a.vs));
            }
            if a.subs.is_empty() {
                return Err("vector access has no subscripts".into());
            }
            for sub in &a.subs {
                if sub.inv != NO_SLOT && sub.inv >= bu.ni {
                    return Err(format!("vector subscript invariant i-slot {} out of range", sub.inv));
                }
            }
            if a.write && a.subs.iter().all(|s| s.coeff == 0) {
                return Err("vector write stream does not advance with the loop".into());
            }
        }
        if let Some(r) = d.red {
            match r.vs {
                VSlot::F(s) if s < bu.nf => {}
                VSlot::GlobS(c) if (c as usize) < self.prog.globals.len() => {}
                vs => return Err(format!("vector reduction accumulator slot {vs:?} invalid")),
            }
            if d.stmts.len() != 1 {
                return Err(format!(
                    "vector reduction descriptor has {} statements, expected 1",
                    d.stmts.len()
                ));
            }
        }
        for ops in &d.stmts {
            for op in ops {
                match *op {
                    VecOp::Load(ai) | VecOp::Store(ai) => {
                        if ai as usize >= d.accesses.len() {
                            return Err(format!(
                                "vector op references access {ai}, descriptor has {}",
                                d.accesses.len()
                            ));
                        }
                        if matches!(*op, VecOp::Store(_)) && !d.accesses[ai as usize].write {
                            return Err(format!("vector store to read-only access {ai}"));
                        }
                    }
                    VecOp::SplatF(s) if s >= bu.nf => {
                        return Err(format!("vector splat f-slot {s} out of range"));
                    }
                    VecOp::SplatG(c) => self.glob_ok(c)?,
                    VecOp::SplatI { inv, .. } if inv != NO_SLOT && inv >= bu.ni => {
                        return Err(format!("vector splat invariant i-slot {inv} out of range"));
                    }
                    VecOp::Intr { argc, .. } if argc == 0 || u32::from(argc) > 8 => {
                        return Err(format!("vector intrinsic arity {argc} out of range"));
                    }
                    _ => {}
                }
            }
            let Some((fin, max)) = vec_stack_effect(ops) else {
                return Err("vector statement underflows its lane stack".into());
            };
            let want = u32::from(d.red.is_some());
            if fin != want {
                return Err(format!(
                    "vector statement leaves {fin} lanes on the stack, expected {want}"
                ));
            }
            if max > d.max_depth {
                return Err(format!(
                    "vector statement needs {max} lanes, descriptor declares {}",
                    d.max_depth
                ));
            }
            if d.red.is_none() && !matches!(ops.last(), Some(VecOp::Store(_))) {
                return Err("vector map statement does not end in a store".into());
            }
        }
        Ok(())
    }

    // ---------- helpers ----------

    fn glob_ok(&self, c: u32) -> Result<(), String> {
        if c as usize >= self.prog.globals.len() {
            Err(format!("global cell {c} out of range ({} cells)", self.prog.globals.len()))
        } else {
            Ok(())
        }
    }

    /// Any storage slot within the owning unit's declared banks.
    fn slot_ok(&self, bu: &BUnit, vs: VSlot) -> Result<(), String> {
        let ok = match vs {
            VSlot::I(s) => s < bu.ni,
            VSlot::F(s) => s < bu.nf,
            VSlot::B(s) => s < bu.nb,
            VSlot::A(s) => s < bu.na,
            VSlot::GlobS(c) | VSlot::GlobA(c) => (c as usize) < self.prog.globals.len(),
        };
        if ok {
            Ok(())
        } else {
            Err(format!("slot {vs:?} out of range"))
        }
    }

    /// A slot a scalar value can be read from / written to (the VM's
    /// `VFrame::read`/`write` reject array slots by panicking).
    fn scalar_slot_ok(&self, bu: &BUnit, vs: VSlot) -> Result<(), String> {
        match vs {
            VSlot::A(_) | VSlot::GlobA(_) => {
                Err(format!("array slot {vs:?} used as a scalar"))
            }
            _ => self.slot_ok(bu, vs),
        }
    }

    fn var_ok(&self, v: u32) -> Result<(), String> {
        let nvars = self.prog.units[self.bu.unit as usize].vars.len();
        if (v as usize) < nvars {
            Ok(())
        } else {
            Err(format!("variable index {v} out of range ({nvars} vars)"))
        }
    }
}

fn join(
    state: &mut [Option<Depth>],
    work: &mut Vec<u32>,
    t: u32,
    d: Depth,
    from: u32,
) -> Result<(), Violation> {
    let n = state.len() - 1;
    let tu = t as usize;
    if tu > n {
        // Structural pass bounds every target; this guards internal misuse.
        return Err((from, format!("flow target {t} out of range")));
    }
    if tu == n && d != (0, 0, 0) {
        return Err((
            from,
            format!("stacks not empty at unit end: {d:?} (operand, array, stash)"),
        ));
    }
    match state[tu] {
        None => {
            state[tu] = Some(d);
            work.push(t);
        }
        Some(prev) if prev == d => {}
        Some(prev) => {
            return Err((
                t,
                format!("inconsistent stack depths at join: {prev:?} vs {d:?}"),
            ));
        }
    }
    Ok(())
}

/// Deterministic fault injection for the hardened-execution test
/// harness: seeded corruptions of verified bytecode, each invalid by
/// construction so the verifier (or, for runtime-only faults, the
/// engine's trap path) must reject it.
pub mod mutate {
    use crate::bytecode::{BInstr, BUnit};

    /// xorshift64* — deterministic, dependency-free.
    pub struct Rng(u64);

    impl Rng {
        pub fn new(seed: u64) -> Rng {
            // Avoid the all-zero fixed point; decorrelate small seeds.
            Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
        }

        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        pub fn below(&mut self, n: usize) -> usize {
            (self.next_u64() % n.max(1) as u64) as usize
        }
    }

    /// What a corruption did, for test diagnostics.
    pub struct Mutation {
        pub unit: usize,
        pub kind: &'static str,
        pub detail: String,
    }

    impl std::fmt::Display for Mutation {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "[{}] unit {}: {}", self.kind, self.unit, self.detail)
        }
    }

    /// Applies one seeded corruption to `bunits` in place. Deterministic:
    /// the same seed on the same program produces the same mutation.
    /// Returns `None` only when no unit has any code.
    pub fn corrupt(bunits: &mut [BUnit], seed: u64) -> Option<Mutation> {
        let mut rng = Rng::new(seed);
        let units: Vec<usize> = bunits
            .iter()
            .enumerate()
            .filter(|(_, b)| !b.code.is_empty())
            .map(|(i, _)| i)
            .collect();
        if units.is_empty() {
            return None;
        }
        let u = units[rng.below(units.len())];
        const KINDS: usize = 11;
        let start = rng.below(KINDS);
        for k in 0..KINDS {
            let got = match (start + k) % KINDS {
                0 => retarget_jump(&mut bunits[u], &mut rng),
                1 => slot_out_of_range(&mut bunits[u], &mut rng),
                2 => opcode_flip(&mut bunits[u], &mut rng),
                3 => truncate_stream(&mut bunits[u]),
                4 => zero_stride(&mut bunits[u]),
                5 => vec_op_oob(&mut bunits[u], &mut rng),
                6 => vec_unbalance(&mut bunits[u], &mut rng),
                7 => vec_iter_cost(&mut bunits[u], &mut rng),
                8 => vec_access_slot(&mut bunits[u], &mut rng),
                9 => vec_red_slot(&mut bunits[u], &mut rng),
                _ => call_arity(&mut bunits[u], &mut rng),
            };
            if let Some((kind, detail)) = got {
                return Some(Mutation { unit: u, kind, detail });
            }
        }
        None
    }

    type Applied = Option<(&'static str, String)>;

    /// Points a control-flow target past the end of the unit.
    fn retarget_jump(bu: &mut BUnit, rng: &mut Rng) -> Applied {
        use BInstr::*;
        let sites: Vec<usize> = bu
            .code
            .iter()
            .enumerate()
            .filter(|(_, i)| {
                matches!(
                    i,
                    Jump(_)
                        | JumpIfFalse(_)
                        | DoHead1 { .. }
                        | DoHeadN { .. }
                        | DoHead { .. }
                        | DoIncr1 { .. }
                        | DoIncr { .. }
                        | Critical { .. }
                )
            })
            .map(|(pc, _)| pc)
            .collect();
        if sites.is_empty() {
            return None;
        }
        let pc = sites[rng.below(sites.len())];
        let bad = bu.code.len() as u32 + 1 + (rng.next_u64() % 97) as u32;
        match &mut bu.code[pc] {
            Jump(t) | JumpIfFalse(t) => *t = bad,
            DoHead1 { exit, .. } | DoHeadN { exit, .. } | DoHead { exit, .. } => *exit = bad,
            DoIncr1 { head, .. } | DoIncr { head, .. } => *head = bad,
            Critical { end, .. } => *end = bad,
            _ => return None,
        }
        Some(("retargeted-jump", format!("pc {pc}: target -> {bad}")))
    }

    /// Pushes a frame-bank or global-cell index far out of range.
    fn slot_out_of_range(bu: &mut BUnit, rng: &mut Rng) -> Applied {
        use BInstr::*;
        let sites: Vec<usize> = bu
            .code
            .iter()
            .enumerate()
            .filter(|(_, i)| {
                matches!(
                    i,
                    LoadI(_)
                        | LoadF(_)
                        | LoadB(_)
                        | StoreI(_)
                        | StoreF(_)
                        | StoreB(_)
                        | LoadG(_)
                        | StoreG(_)
                        | LoadElemS { .. }
                        | StoreElemS { .. }
                )
            })
            .map(|(pc, _)| pc)
            .collect();
        if sites.is_empty() {
            return None;
        }
        let pc = sites[rng.below(sites.len())];
        let bad = u32::MAX - (rng.next_u64() % 1000) as u32;
        match &mut bu.code[pc] {
            LoadI(s) | LoadF(s) | LoadB(s) | StoreI(s) | StoreF(s) | StoreB(s) | LoadG(s)
            | StoreG(s) => *s = bad,
            LoadElemS { a, .. } | StoreElemS { a, .. } => *a = bad,
            _ => return None,
        }
        Some(("slot-out-of-range", format!("pc {pc}: slot -> {bad}")))
    }

    /// Replaces the entry instruction with one that pops from the empty
    /// stack (the entry depth is always zero, so this always underflows).
    fn opcode_flip(bu: &mut BUnit, rng: &mut Rng) -> Applied {
        use BInstr::*;
        let new = match rng.below(6) {
            0 => AddI,
            1 => AddF,
            2 => MulI,
            3 => DivF,
            4 => CvtIF,
            _ => NotB,
        };
        let old = format!("{:?}", bu.code[0]);
        bu.code[0] = new;
        Some(("opcode-flip", format!("pc 0: {old} -> {new:?}")))
    }

    /// Cuts the stream after a straight-line prefix that leaves values
    /// on the operand stack, so the unit ends mid-expression.
    fn truncate_stream(bu: &mut BUnit) -> Applied {
        use BInstr::*;
        let mut depth = 0u32;
        for pc in 0..bu.code.len() {
            let (pops, pushes) = match bu.code[pc] {
                Const(_) | LoadI(_) | LoadF(_) | LoadB(_) | LoadG(_) => (0, 1),
                CvtIF | CvtFI | CvtIB | CvtFB | NegF | NegI | NotB => (1, 1),
                AddF | SubF | MulF | DivF | PowFF | PowFI | AddI | SubI | MulI | DivI
                | PowII | AndB | OrB | CmpF(_) | CmpI(_) => (2, 1),
                StoreI(_) | StoreF(_) | StoreB(_) | StoreG(_) => (1, 0),
                _ => return None,
            };
            if depth < pops {
                return None; // original bytecode should never get here
            }
            depth = depth - pops + pushes;
            if depth > 0 {
                let cut = pc + 1;
                let dropped = bu.code.len() - cut;
                bu.code.truncate(cut);
                return Some((
                    "truncated-stream",
                    format!("cut at pc {cut}, dropped {dropped} instructions"),
                ));
            }
        }
        None
    }

    /// Turns a compiler-proven non-zero DO step constant into zero.
    fn zero_stride(bu: &mut BUnit) -> Applied {
        use BInstr::*;
        for pc in 1..bu.code.len() {
            if let DoInit { check: false, .. } = bu.code[pc] {
                bu.code[pc - 1] = Const(0);
                return Some(("zero-stride", format!("pc {}: step constant -> 0", pc - 1)));
            }
        }
        None
    }

    /// Points a vector lane op at an access stream the descriptor never
    /// declared — the bytecode analogue of non-conformable operands.
    fn vec_op_oob(bu: &mut BUnit, rng: &mut Rng) -> Applied {
        let sites: Vec<usize> = (0..bu.vecs.len())
            .filter(|&d| bu.vecs[d].stmts.iter().any(|ops| !ops.is_empty()))
            .collect();
        if sites.is_empty() {
            return None;
        }
        let d = sites[rng.below(sites.len())];
        let desc = &mut bu.vecs[d];
        let bad = desc.accesses.len() as u32 + 1 + (rng.next_u64() % 9) as u32;
        for ops in &mut desc.stmts {
            for op in ops.iter_mut() {
                match op {
                    crate::bytecode::VecOp::Load(ai) | crate::bytecode::VecOp::Store(ai) => {
                        *ai = bad;
                        return Some((
                            "vec-op-oob",
                            format!("descriptor {d}: access index -> {bad}"),
                        ));
                    }
                    _ => {}
                }
            }
        }
        None
    }

    /// Drops the trailing store of a vector lane program, leaving the
    /// lane stack unbalanced (a slice-length/stack-effect corruption).
    fn vec_unbalance(bu: &mut BUnit, rng: &mut Rng) -> Applied {
        let sites: Vec<usize> = (0..bu.vecs.len())
            .filter(|&d| {
                bu.vecs[d]
                    .stmts
                    .iter()
                    .any(|ops| matches!(ops.last(), Some(crate::bytecode::VecOp::Store(_))))
            })
            .collect();
        if sites.is_empty() {
            return None;
        }
        let d = sites[rng.below(sites.len())];
        for (si, ops) in bu.vecs[d].stmts.iter_mut().enumerate() {
            if matches!(ops.last(), Some(crate::bytecode::VecOp::Store(_))) {
                ops.pop();
                return Some((
                    "vec-unbalance",
                    format!("descriptor {d}: dropped trailing store of statement {si}"),
                ));
            }
        }
        None
    }

    /// Zeroes a vector descriptor's per-iteration scalar cost. The VM's
    /// step pre-reserve and the native tier's safepoint cadence both
    /// scale by it; promotion must refuse rather than divide by zero or
    /// run an unbounded block between interrupt polls.
    fn vec_iter_cost(bu: &mut BUnit, rng: &mut Rng) -> Applied {
        let sites: Vec<usize> = (0..bu.vecs.len()).filter(|&d| bu.vecs[d].iter_cost != 0).collect();
        if sites.is_empty() {
            return None;
        }
        let d = sites[rng.below(sites.len())];
        bu.vecs[d].iter_cost = 0;
        Some(("vec-iter-cost", format!("descriptor {d}: iter_cost -> 0")))
    }

    /// Points a vector access stream at an array slot the frame doesn't
    /// have. A native region compiled from this descriptor would walk a
    /// wild stream base — promotion must refuse, and the VM tier must
    /// deopt at resolution instead of indexing out of range.
    fn vec_access_slot(bu: &mut BUnit, rng: &mut Rng) -> Applied {
        use crate::bytecode::VSlot;
        let sites: Vec<usize> =
            (0..bu.vecs.len()).filter(|&d| !bu.vecs[d].accesses.is_empty()).collect();
        if sites.is_empty() {
            return None;
        }
        let d = sites[rng.below(sites.len())];
        let a = rng.below(bu.vecs[d].accesses.len());
        let bad = u32::MAX - (rng.next_u64() % 1000) as u32;
        bu.vecs[d].accesses[a].vs = VSlot::A(bad);
        Some(("vec-access-slot", format!("descriptor {d}: access {a} slot -> A({bad})")))
    }

    /// Points a vector reduction's accumulator at an out-of-range frame
    /// slot — the merged result of a native region would land outside
    /// the f64 bank.
    fn vec_red_slot(bu: &mut BUnit, rng: &mut Rng) -> Applied {
        use crate::bytecode::VSlot;
        let sites: Vec<usize> = (0..bu.vecs.len()).filter(|&d| bu.vecs[d].red.is_some()).collect();
        if sites.is_empty() {
            return None;
        }
        let d = sites[rng.below(sites.len())];
        let bad = u32::MAX - (rng.next_u64() % 100) as u32;
        if let Some(r) = &mut bu.vecs[d].red {
            r.vs = VSlot::F(bad);
        }
        Some(("vec-red-slot", format!("descriptor {d}: accumulator -> F({bad})")))
    }

    /// Breaks a call site: drops an argument (arity mismatch) or, for
    /// zero-argument calls, points the callee out of range.
    fn call_arity(bu: &mut BUnit, rng: &mut Rng) -> Applied {
        use BInstr::*;
        let sites: Vec<u32> = bu
            .code
            .iter()
            .filter_map(|i| match i {
                Call { spec, .. } => Some(*spec),
                _ => None,
            })
            .collect();
        if sites.is_empty() {
            return None;
        }
        let spec = sites[rng.below(sites.len())] as usize;
        let cs = &mut bu.calls[spec];
        if cs.args.pop().is_some() {
            Some(("call-arity", format!("spec {spec}: dropped one argument")))
        } else {
            cs.callee = u32::MAX - 1;
            Some(("call-arity", format!("spec {spec}: callee -> out of range")))
        }
    }
}
