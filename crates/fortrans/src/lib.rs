//! # fortrans — a FORTRAN-subset compiler and interpreter with OpenMP
//!
//! The execution substrate of the GLAF reproduction. The paper compiles
//! GLAF-generated FORTRAN with gfortran/ifort and runs it on real
//! hardware; this crate provides the equivalent stack from scratch:
//!
//! * [`lex`] / [`parse`] — free-form FORTRAN 90 subset: modules with
//!   `CONTAINS`, `USE`, derived `TYPE`s and `%` access, `COMMON` blocks,
//!   `SUBROUTINE`/`FUNCTION`, allocatables, `SAVE`, `DO`/`DO WHILE`/`IF`,
//!   the F77/F90 intrinsics GLAF's library back-end emits, and the OpenMP
//!   directives GLAF generates (`!$OMP PARALLEL DO` with
//!   PRIVATE/FIRSTPRIVATE/REDUCTION/COLLAPSE/NUM_THREADS/SCHEDULE,
//!   `ATOMIC`, `CRITICAL`, `THREADPRIVATE`).
//! * [`sema`] — name/slot resolution, storage association for COMMON,
//!   flattening of derived-type variables, type checking with FORTRAN
//!   promotion rules.
//! * [`interp`] — execution in three modes: `Serial`, `Parallel` (real
//!   fork-join threads on the [`omprt`] runtime) and `Simulated`
//!   (serial-order execution emitting a [`cost::CostTrace`] for the
//!   `simcpu` machine model — the substitute for the paper's testbeds on
//!   a single-core host, see DESIGN.md).
//!
//! ## Quick example
//!
//! ```
//! use fortrans::{ArgVal, Engine, ExecMode};
//!
//! let src = r#"
//! MODULE demo
//! CONTAINS
//!   SUBROUTINE scale(a, n, f)
//!     REAL(8), DIMENSION(1:8) :: a
//!     INTEGER :: n
//!     REAL(8) :: f
//!     INTEGER :: i
//!     !$OMP PARALLEL DO DEFAULT(SHARED)
//!     DO i = 1, n
//!       a(i) = a(i) * f
//!     END DO
//!     !$OMP END PARALLEL DO
//!   END SUBROUTINE scale
//! END MODULE demo
//! "#;
//! let engine = Engine::compile(&[src]).unwrap();
//! let a = ArgVal::array_f(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0], 1);
//! engine
//!     .run("scale", &[a.clone(), ArgVal::I(8), ArgVal::F(2.0)], ExecMode::Parallel { threads: 2 })
//!     .unwrap();
//! assert_eq!(a.handle().unwrap().get_f(0), 2.0);
//! assert_eq!(a.handle().unwrap().get_f(7), 16.0);
//! ```

pub mod ast;
pub mod bytecode;
pub mod chaos;
pub mod cost;
pub mod engine;
pub mod error;
pub mod fixedform;
pub mod gen;
pub mod interp;
pub mod intrinsics;
pub mod jit;
pub mod lex;
pub mod parse;
pub mod rir;
pub mod sema;
pub mod service;
pub mod storage;
pub mod trace;
pub mod verify;
pub mod vm;

pub use cost::{CostCounters, CostTrace, OpCounts, RegionEvent, TraceEvent};
pub use engine::{ArgVal, Engine, ExecTier, RunOutcome, TierFallback, VectorLoopInfo};
pub use error::{CompileError, Diagnostic, Diagnostics, Severity};
pub use error::RunError;
pub use fixedform::{is_fixed_form, lex_fixed, to_fixed_form, to_fixed_form_wrapped, ProgramSet};
pub use chaos::{CampaignConfig, CampaignReport};
pub use interp::{CancelToken, ExecMode, RunLimits, ScheduleOverrides, Val};
pub use omprt::{PoolSet, Schedule};
pub use service::{
    source_hash, ArtifactCache, Attempt, BatchReport, CompiledProgram, EngineService, Job,
    JobPolicy, JobQueue, JobResult, PolicyAction, QuarantineMode, QuarantinePolicy, Session,
};
pub use rir::ScalarTy;
pub use storage::ArrayObj;
pub use trace::{Collector, FallbackInfo, Profile, RegionReport, SpanKind, SpanNode};
