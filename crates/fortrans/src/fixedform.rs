//! Fixed-form (FORTRAN 77) ingestion front end.
//!
//! Lowers legacy punched-card sources onto the same AST the free-form
//! parser produces, so COMMON-heavy whole programs flow through the
//! existing sema/RIR/bytecode pipeline unchanged (DESIGN.md §8):
//!
//! * **Column rules** — cols 1–5 statement label, col 6 continuation,
//!   cols 7–72 statement text, col 73+ discarded (with a warning when
//!   non-blank); `C`/`*`/`!` in column 1 start a comment; `C$OMP`,
//!   `*$OMP` and `!$OMP` are directive sentinels.
//! * **Blank insensitivity** — card text is stripped of blanks (outside
//!   character literals) and re-tokenized through the free-form scanner
//!   ([`crate::lex`]); merged leading keywords (`DO10I`, `GOTO20`,
//!   `ENDIF`) are re-split against a keyword table, gated on the classic
//!   `DO10I=1.5` vs `DO10I=1,5` assignment classification.
//! * **IMPLICIT typing** — default `I`–`N` INTEGER / rest REAL, plus
//!   `IMPLICIT` statements and `IMPLICIT NONE`; undeclared names get
//!   synthesized declarations.
//! * **COMMON / EQUIVALENCE / DATA / PARAMETER** — mapped onto the
//!   engine's global-storage model; `DATA` becomes static initializer
//!   words on the owning global cell, `EQUIVALENCE` is honoured for the
//!   exact-alias subset (same type and shape) by renaming.
//! * **Legacy control flow** — arithmetic IF, computed and assigned
//!   GOTO, and plain GOTO webs are desugared into structured
//!   RIR-representable control flow: loop-terminal jumps become
//!   `CYCLE`/`EXIT`, and remaining branch webs are linearized into a
//!   basic-block state machine driven by a `DO WHILE` dispatcher.
//!
//! The front end never stops at the first problem: it recovers at
//! statement boundaries and accumulates a [`Diagnostics`] list, so one
//! submission reports *every* error (surfaced through
//! [`CompileError::Fixed`] and the service layer's `Rejected` results).

use crate::ast::{
    Ast, Attrs, Bin, Decl, Desig, DimDecl, Entity, Expr, Module, OmpDo, Part, RedOp, SchedKind,
    Stmt, TypeSpec, Unit, UnitKind,
};
use crate::error::{CompileError, Diagnostics, Span};
use crate::lex::{lex_fragment, Tok};
use crate::parse::{desig_from_toks, expr_from_toks};
use std::collections::{HashMap, HashSet};

// ---------------------------------------------------------------------------
// Form detection
// ---------------------------------------------------------------------------

/// Heuristic form detection for mixed source sets. Free-form sources in
/// this codebase always open with `MODULE`; anything else is routed to
/// the fixed-form front end. (A previously-accepted free-form source can
/// therefore never be re-routed.)
pub fn is_fixed_form(src: &str) -> bool {
    for line in src.lines() {
        let t = line.trim_start();
        if t.is_empty() || t.starts_with('!') {
            continue;
        }
        let lower = t.to_ascii_lowercase();
        return !(lower.starts_with("module ") || lower == "module");
    }
    false
}

// ---------------------------------------------------------------------------
// Phase 1: cards -> logical statements
// ---------------------------------------------------------------------------

/// One logical fixed-form statement after card assembly and blank
/// stripping: label field, token stream, first physical line, OMP flag.
#[derive(Debug, Clone)]
pub struct FStmt {
    pub label: Option<u32>,
    pub toks: Vec<Tok>,
    pub lineno: u32,
    pub omp: bool,
}

#[derive(Debug)]
struct RawStmt {
    label: Option<u32>,
    text: String,
    lineno: u32,
    omp: bool,
}

fn is_comment_card(c: &[char]) -> bool {
    matches!(c.first(), Some('c' | 'C' | '*' | '!'))
}

fn omp_sentinel(c: &[char]) -> bool {
    if c.len() < 5 {
        return false;
    }
    let head: String = c[..5].iter().collect::<String>().to_ascii_uppercase();
    head == "C$OMP" || head == "*$OMP" || head == "!$OMP"
}

/// Splits one source into card-assembled raw statements, reporting
/// column-discipline problems (bad labels, dangling continuations,
/// col-73 overflow) without giving up on the file.
fn split_cards(src: &str, file: usize, diags: &mut Diagnostics) -> Vec<RawStmt> {
    let mut out: Vec<RawStmt> = Vec::new();
    let mut pending: Option<RawStmt> = None;
    let flush = |p: &mut Option<RawStmt>, out: &mut Vec<RawStmt>, diags: &mut Diagnostics| {
        if let Some(s) = p.take() {
            if s.text.trim().is_empty() {
                if s.label.is_some() {
                    diags.error_hint(
                        file,
                        s.lineno,
                        "labeled statement has no text",
                        "a label in columns 1-5 must be followed by a statement in column 7+",
                    );
                }
            } else {
                out.push(s);
            }
        }
    };

    for (idx, raw) in src.lines().enumerate() {
        let lineno = idx as u32 + 1;
        let chars: Vec<char> = raw.chars().collect();
        if chars.iter().all(|c| c.is_whitespace()) {
            continue;
        }
        let omp = omp_sentinel(&chars);
        if !omp && is_comment_card(&chars) {
            continue; // comments may sit between continuation cards
        }

        // DEC tab format: a leading tab ends the label field; a digit
        // 1-9 right after the tab marks a continuation card.
        let (label_field, cont_ch, body): (Vec<char>, char, Vec<char>) = if !omp
            && chars.first() == Some(&'\t')
        {
            let rest = &chars[1..];
            match rest.first() {
                Some(d @ '1'..='9') => (vec![], *d, rest[1..].to_vec()),
                _ => (vec![], ' ', rest.to_vec()),
            }
        } else {
            let lf = chars.iter().take(5).copied().collect::<Vec<_>>();
            let cc = chars.get(5).copied().unwrap_or(' ');
            let body = if chars.len() > 6 { chars[6..].to_vec() } else { vec![] };
            (lf, cc, body)
        };

        // Column 73+ is ignored (classic card sequence field).
        let (body, overflow) = if body.len() > 66 {
            (body[..66].to_vec(), body[66..].iter().any(|c| !c.is_whitespace()))
        } else {
            (body, false)
        };
        if overflow {
            diags.warn_hint(
                file,
                lineno,
                "text beyond column 72 is ignored",
                "fixed-form statements end at column 72; split the statement onto a \
                 continuation card",
            );
        }
        let joined: String = body.iter().collect();
        let text = strip_inline_comment(&joined).trim_end().to_string();

        let is_cont = cont_ch != ' ' && cont_ch != '0';
        let (label, label_junk) = if omp {
            (None, false)
        } else {
            parse_label_field(&label_field)
        };
        if label_junk {
            // Most often a free-form-style statement that starts in
            // column 1: recover by treating the whole line as text.
            diags.error_hint(
                file,
                lineno,
                "invalid character in label field (columns 1-5)",
                "statement labels are 1-5 digits; statement text starts in column 7",
            );
            flush(&mut pending, &mut out, diags);
            let whole: String = chars.iter().take(72).collect();
            let whole = strip_inline_comment(&whole).trim_end().to_string();
            pending = Some(RawStmt { label: None, text: whole, lineno, omp: false });
            continue;
        }

        if is_cont {
            if label.is_some() {
                diags.error_hint(
                    file,
                    lineno,
                    "label on a continuation line",
                    "only the initial line of a statement may carry a label",
                );
            }
            match pending.as_mut() {
                Some(p) if p.omp == omp => p.text.push_str(&text),
                _ => {
                    diags.error_hint(
                        file,
                        lineno,
                        "continuation line has nothing to continue",
                        "column 6 must be blank or `0` on an initial line",
                    );
                    flush(&mut pending, &mut out, diags);
                    pending = Some(RawStmt { label: None, text, lineno, omp });
                }
            }
        } else {
            flush(&mut pending, &mut out, diags);
            pending = Some(RawStmt { label, text, lineno, omp });
        }
    }
    flush(&mut pending, &mut out, diags);
    out
}

/// Parses columns 1-5: blanks are insignificant, digits form the label.
/// Returns `(label, junk)` where `junk` flags non-digit characters.
fn parse_label_field(field: &[char]) -> (Option<u32>, bool) {
    let mut digits = String::new();
    for &c in field {
        if c.is_ascii_digit() {
            digits.push(c);
        } else if !c.is_whitespace() {
            return (None, true);
        }
    }
    if digits.is_empty() {
        (None, false)
    } else {
        (digits.parse::<u32>().ok().filter(|&l| l > 0), false)
    }
}

/// Strips an inline `!` comment from card text (quote-aware).
fn strip_inline_comment(text: &str) -> &str {
    let b = text.as_bytes();
    let mut in_str = false;
    for (i, &c) in b.iter().enumerate() {
        match c {
            b'\'' => in_str = !in_str,
            b'!' if !in_str => return &text[..i],
            _ => {}
        }
    }
    text
}

/// Removes blanks outside character literals — fixed-form FORTRAN is
/// blank-insensitive, so `D O 1 0 I` and `DO10I` are the same text.
fn strip_blanks(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut in_str = false;
    for c in text.chars() {
        if c == '\'' {
            in_str = !in_str;
            out.push(c);
        } else if in_str || !c.is_whitespace() {
            out.push(c);
        }
    }
    out
}

/// The classic fixed-form classification: a statement is an assignment
/// iff it has a depth-0 `=` (not part of `==`/`<=`/`>=`/`/=`) with no
/// depth-0 `,` after it. `DO10I=1.5` assigns to `DO10I`; `DO10I=1,5`
/// opens a loop.
fn is_assignment(dense: &str) -> bool {
    let b = dense.as_bytes();
    let mut depth = 0i32;
    let mut in_str = false;
    let mut eq_at: Option<usize> = None;
    for (i, &c) in b.iter().enumerate() {
        if in_str {
            if c == b'\'' {
                in_str = false;
            }
            continue;
        }
        match c {
            b'\'' => in_str = true,
            b'(' => depth += 1,
            b')' => depth -= 1,
            b'=' if depth == 0 && eq_at.is_none() => {
                let prev = if i > 0 { b[i - 1] } else { 0 };
                let next = b.get(i + 1).copied().unwrap_or(0);
                if !matches!(prev, b'<' | b'>' | b'=' | b'/') && next != b'=' {
                    eq_at = Some(i);
                }
            }
            // Comma after a depth-0 `=`: a DO statement, not an assignment.
            b',' if depth == 0 && eq_at.is_some() => return false,
            _ => {}
        }
    }
    eq_at.is_some()
}

// ---------------------------------------------------------------------------
// Phase 2: keyword re-splitting of blank-merged token streams
// ---------------------------------------------------------------------------

/// Statement keywords that may absorb following text when blanks vanish,
/// longest first so `ENDDO` wins over `END`. Each maps to the token
/// words it expands to.
const KWS: &[(&str, &[&str])] = &[
    ("doubleprecision", &["doubleprecision"]),
    ("endsubroutine", &["end", "subroutine"]),
    ("implicitnone", &["implicit", "none"]),
    ("endfunction", &["end", "function"]),
    ("equivalence", &["equivalence"]),
    ("endprogram", &["end", "program"]),
    ("subroutine", &["subroutine"]),
    ("endmodule", &["end", "module"]),
    ("character", &["character"]),
    ("blockdata", &["blockdata"]),
    ("dimension", &["dimension"]),
    ("parameter", &["parameter"]),
    ("intrinsic", &["intrinsic"]),
    ("continue", &["continue"]),
    ("critical", &["critical"]),
    ("external", &["external"]),
    ("function", &["function"]),
    ("implicit", &["implicit"]),
    ("endtype", &["end", "type"]),
    ("integer", &["integer"]),
    ("logical", &["logical"]),
    ("program", &["program"]),
    ("elseif", &["else", "if"]),
    ("assign", &["assign"]),
    ("common", &["common"]),
    ("format", &["format"]),
    ("module", &["module"]),
    ("return", &["return"]),
    ("cycle", &["cycle"]),
    ("endif", &["end", "if"]),
    ("enddo", &["end", "do"]),
    ("print", &["print"]),
    ("write", &["write"]),
    ("call", &["call"]),
    ("data", &["data"]),
    ("exit", &["exit"]),
    ("else", &["else"]),
    ("goto", &["goto"]),
    ("real", &["real"]),
    ("save", &["save"]),
    ("stop", &["stop"]),
    ("type", &["type"]),
    ("end", &["end"]),
    ("use", &["use"]),
    ("do", &["do"]),
    ("if", &["if"]),
];

/// Keywords OpenMP directive text can merge into (`PARALLELDOPRIVATE`).
const OMP_KWS: &[&str] = &[
    "firstprivate",
    "num_threads",
    "threadprivate",
    "parallel",
    "reduction",
    "schedule",
    "critical",
    "collapse",
    "private",
    "default",
    "barrier",
    "atomic",
    "shared",
    "nowait",
    "end",
    "do",
];

/// Re-splits the merged leading identifier of a non-assignment statement
/// against the keyword table, then fixes up the handful of second-word
/// merges (`INTEGERFUNCTIONF`, `ASSIGN10TOK`, logical-IF tails).
fn resplit_stmt(toks: Vec<Tok>, lineno: u32) -> Vec<Tok> {
    let Some(Tok::Ident(w)) = toks.first() else { return toks };
    let w = w.clone();
    let mut out: Vec<Tok> = Vec::with_capacity(toks.len() + 2);
    let mut consumed_first = false;
    for (kw, words) in KWS {
        if let Some(rest) = w.strip_prefix(kw) {
            // `IF` must stand alone (it is always followed by `(`), and a
            // non-empty remainder must itself lex cleanly (`10I`, `FOO`).
            if *kw == "if" && !rest.is_empty() {
                continue;
            }
            let rest_toks = if rest.is_empty() {
                vec![]
            } else {
                match lex_fragment(rest, lineno) {
                    Ok(t) if !t.is_empty() => t,
                    _ => continue,
                }
            };
            for wd in *words {
                out.push(Tok::Ident((*wd).to_string()));
            }
            out.extend(rest_toks);
            consumed_first = true;
            break;
        }
    }
    if !consumed_first {
        out.push(Tok::Ident(w));
    }
    out.extend(toks.into_iter().skip(1));

    // `<type> FUNCTION name` with the middle words merged.
    if matches!(out.first(), Some(Tok::Ident(t))
        if matches!(t.as_str(), "integer" | "real" | "logical" | "doubleprecision"))
    {
        let mut j = 1;
        // Skip a kind spec: `*8` or `(8)`.
        if out.get(j) == Some(&Tok::Star) {
            j += 2;
        } else if out.get(j) == Some(&Tok::LParen) {
            while j < out.len() && out[j] != Tok::RParen {
                j += 1;
            }
            j += 1;
        }
        if let Some(Tok::Ident(w2)) = out.get(j) {
            if let Some(rest) = w2.strip_prefix("function") {
                if !rest.is_empty() && rest.chars().next().is_some_and(|c| c.is_ascii_alphabetic())
                {
                    let name = rest.to_string();
                    out.splice(j..=j, [Tok::Ident("function".into()), Tok::Ident(name)]);
                }
            }
        }
    }

    // `ASSIGN 10 TO K` -> [assign][10][tok]; split the trailing `tok`.
    if out.first().is_some_and(|t| t.is_kw("assign")) && out.len() >= 3 {
        if let (Some(Tok::Int(_)), Some(Tok::Ident(w2))) = (out.get(1), out.get(2)) {
            if let Some(var) = w2.strip_prefix("to") {
                if !var.is_empty() {
                    let var = var.to_string();
                    out.splice(2..=2, [Tok::Ident("to".into()), Tok::Ident(var)]);
                }
            }
        }
    }

    // Logical-IF tail: `IF(e)GOTO10` — the tail after the closing paren
    // is its own statement and needs the same treatment.
    if out.first().is_some_and(|t| t.is_kw("if")) && out.get(1) == Some(&Tok::LParen) {
        let mut depth = 0i32;
        let mut close = None;
        for (i, t) in out.iter().enumerate().skip(1) {
            match t {
                Tok::LParen => depth += 1,
                Tok::RParen => {
                    depth -= 1;
                    if depth == 0 {
                        close = Some(i);
                        break;
                    }
                }
                _ => {}
            }
        }
        if let Some(ci) = close {
            if ci + 1 < out.len() {
                if let Tok::Ident(first) = &out[ci + 1] {
                    if first != "then" {
                        let tail = out.split_off(ci + 1);
                        out.extend(resplit_stmt(tail, lineno));
                    }
                }
            }
        }
    }
    out
}

/// Greedy decomposition of a merged OMP directive word into directive /
/// clause keywords; left intact when any segment is not a keyword.
fn omp_split(w: &str) -> Option<Vec<String>> {
    let mut rest = w;
    let mut words = Vec::new();
    'outer: while !rest.is_empty() {
        for kw in OMP_KWS {
            if let Some(r) = rest.strip_prefix(kw) {
                words.push((*kw).to_string());
                rest = r;
                continue 'outer;
            }
        }
        return None;
    }
    Some(words)
}

/// Lexes one fixed-form source into logical statements, accumulating
/// diagnostics instead of failing fast.
pub fn lex_fixed(src: &str) -> (Vec<FStmt>, Diagnostics) {
    let mut diags = Diagnostics::default();
    let stmts = lex_fixed_in(src, 0, &mut diags);
    (stmts, diags)
}

fn lex_fixed_in(src: &str, file: usize, diags: &mut Diagnostics) -> Vec<FStmt> {
    let mut out = Vec::new();
    for raw in split_cards(src, file, diags) {
        let dense = strip_blanks(&raw.text);
        let toks = match lex_fragment(&dense, raw.lineno) {
            Ok(t) => t,
            Err(e) => {
                diags.absorb(file, &e);
                continue;
            }
        };
        if toks.is_empty() {
            continue;
        }
        let toks = if raw.omp {
            // Directive text: decompose merged keyword runs outside
            // parentheses (clause argument lists keep their names).
            let mut depth = 0i32;
            let mut fixed = Vec::with_capacity(toks.len());
            for t in toks {
                match &t {
                    Tok::LParen => {
                        depth += 1;
                        fixed.push(t);
                    }
                    Tok::RParen => {
                        depth -= 1;
                        fixed.push(t);
                    }
                    Tok::Ident(w) if depth == 0 => match omp_split(w) {
                        Some(words) => {
                            fixed.extend(words.into_iter().map(Tok::Ident));
                        }
                        None => fixed.push(t),
                    },
                    _ => fixed.push(t),
                }
            }
            fixed
        } else if is_assignment(&dense) {
            toks
        } else {
            resplit_stmt(toks, raw.lineno)
        };
        out.push(FStmt { label: raw.label, toks, lineno: raw.lineno, omp: raw.omp });
    }
    out
}

// ---------------------------------------------------------------------------
// Free-form -> fixed-form pretty printer (property-test oracle)
// ---------------------------------------------------------------------------

fn tok_text(t: &Tok) -> String {
    match t {
        Tok::Ident(s) => s.clone(),
        Tok::Int(v) => v.to_string(),
        Tok::Real(v) => format!("{v:?}"),
        Tok::Str(s) => format!("'{s}'"),
        Tok::LParen => "(".into(),
        Tok::RParen => ")".into(),
        Tok::Comma => ",".into(),
        Tok::Percent => "%".into(),
        Tok::DoubleColon => "::".into(),
        Tok::Colon => ":".into(),
        Tok::Assign => "=".into(),
        Tok::Plus => "+".into(),
        Tok::Minus => "-".into(),
        Tok::Star => "*".into(),
        Tok::StarStar => "**".into(),
        Tok::Slash => "/".into(),
        Tok::Eq => "==".into(),
        Tok::Ne => "/=".into(),
        Tok::Lt => "<".into(),
        Tok::Le => "<=".into(),
        Tok::Gt => ">".into(),
        Tok::Ge => ">=".into(),
        Tok::And => ".and.".into(),
        Tok::Or => ".or.".into(),
        Tok::Not => ".not.".into(),
        Tok::True => ".true.".into(),
        Tok::False => ".false.".into(),
    }
}

/// Renders a free-form source as fixed-form cards (72-column discipline,
/// `&`-free continuations via column 6). Used by the round-trip property
/// tests: `lex_fixed(to_fixed_form(src))` must reproduce the free-form
/// token stream exactly.
pub fn to_fixed_form(free_src: &str) -> Result<String, CompileError> {
    to_fixed_form_wrapped(free_src, 66)
}

/// As [`to_fixed_form`] but wrapping statement text every `width`
/// characters (1..=66), exercising continuation splits at arbitrary —
/// including mid-token — columns. Splits never land inside a character
/// literal (trailing card blanks are not preserved there).
pub fn to_fixed_form_wrapped(free_src: &str, width: usize) -> Result<String, CompileError> {
    let width = width.clamp(1, 66);
    let lines = crate::lex::lex(free_src)?;
    let mut out = String::new();
    for line in &lines {
        let text: String = {
            let parts: Vec<String> = line.toks.iter().map(tok_text).collect();
            parts.join(" ")
        };
        let dense = strip_blanks(&text);
        // Cut points every `width` chars, nudged out of string literals.
        let chars: Vec<char> = dense.chars().collect();
        let mut pieces: Vec<String> = Vec::new();
        let mut i = 0usize;
        let mut in_str = false;
        let mut start = 0usize;
        while i < chars.len() {
            if chars[i] == '\'' {
                in_str = !in_str;
            }
            i += 1;
            if i - start >= width && !in_str && i < chars.len() {
                pieces.push(chars[start..i].iter().collect());
                start = i;
            }
        }
        if start < chars.len() {
            pieces.push(chars[start..].iter().collect());
        }
        for (k, piece) in pieces.iter().enumerate() {
            let head = match (line.omp, k) {
                (true, 0) => "!$omp ".to_string(),
                (true, _) => "!$omp&".to_string(),
                (false, 0) => "      ".to_string(),
                (false, _) => "     &".to_string(),
            };
            out.push_str(&head);
            out.push_str(piece);
            out.push('\n');
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Phase 3: statement parsing (token stream -> mid-level statement)
// ---------------------------------------------------------------------------

/// `(block-name, members)` where each member is `(name, dims)`.
type CommonGroup = (String, Vec<(String, Option<Vec<DimDecl>>)>);
/// `(targets, values)` where each value is `(repeat, literal)`.
type DataGroup = (Vec<Desig>, Vec<(usize, Expr)>);

/// Mid-level fixed-form statements, one per logical line. Structure
/// (DO/IF nesting) and legacy-control-flow desugaring happen later.
#[derive(Debug, Clone)]
#[allow(clippy::enum_variant_names, clippy::large_enum_variant)]
enum S {
    Program(String),
    Subroutine(String, Vec<String>),
    Function(TypeSpec, String, Vec<String>),
    BlockData(Option<String>),
    EndUnit,
    Decl(TypeSpec, Vec<(String, Option<Vec<DimDecl>>)>),
    Dimension(Vec<(String, Vec<DimDecl>)>),
    Common(Vec<CommonGroup>),
    Implicit(Vec<(TypeSpec, Vec<(char, char)>)>),
    ImplicitNone,
    Parameter(Vec<(String, Expr)>),
    EquivalenceS(Vec<Vec<Desig>>),
    /// `(targets, values)` per DATA group; values carry repeat counts.
    Data(Vec<DataGroup>),
    Save(Vec<String>),
    SaveAll,
    External(Vec<String>),
    Format,
    Assign(Desig, Expr),
    Goto(u32),
    CGoto(Vec<u32>, Expr),
    AGoto(String, Vec<u32>),
    LabelAssign(u32, String),
    ArithIf(Expr, u32, u32, u32),
    IfThen(Expr),
    ElseIf(Expr),
    Else,
    EndIf,
    LogIf(Expr, Box<S>),
    DoStart { term: Option<u32>, var: String, start: Expr, end: Expr, step: Option<Expr> },
    DoWhileStart { term: Option<u32>, cond: Expr },
    EndDo,
    CallS(String, Vec<Expr>),
    Return,
    Stop(Option<String>),
    ExitS,
    CycleS,
    ContinueS,
    PrintS(Vec<Expr>),
    OmpPar(OmpDo),
    OmpEndPar,
    OmpAtomic,
    OmpCrit(Option<String>),
    OmpEndCrit,
    OmpIgnored,
}

type PErr = (String, Option<String>);

fn perr(msg: impl Into<String>) -> PErr {
    (msg.into(), None)
}

fn perr_hint(msg: impl Into<String>, hint: impl Into<String>) -> PErr {
    (msg.into(), Some(hint.into()))
}

/// Strips the location prefix off a nested [`CompileError`] (the
/// diagnostic carries its own span).
fn emsg(e: &CompileError) -> String {
    match e {
        CompileError::Lex { msg, .. }
        | CompileError::Parse { msg, .. }
        | CompileError::Sema { msg, .. } => msg.clone(),
        other => other.to_string(),
    }
}

struct Cur<'a> {
    t: &'a [Tok],
    i: usize,
    line: u32,
}

impl<'a> Cur<'a> {
    fn new(t: &'a [Tok], line: u32) -> Self {
        Cur { t, i: 0, line }
    }

    fn peek(&self) -> Option<&Tok> {
        self.t.get(self.i)
    }

    fn bump(&mut self) -> Option<&Tok> {
        let t = self.t.get(self.i);
        if t.is_some() {
            self.i += 1;
        }
        t
    }

    fn done(&self) -> bool {
        self.i >= self.t.len()
    }

    /// Eats the identifier `kw` if it is next.
    fn kw(&mut self, kw: &str) -> bool {
        if self.peek().is_some_and(|t| t.is_kw(kw)) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == Some(t) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Tok, what: &str) -> Result<(), PErr> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(perr(format!("expected {what}")))
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, PErr> {
        match self.peek() {
            Some(Tok::Ident(s)) => {
                let s = s.clone();
                self.i += 1;
                Ok(s)
            }
            _ => Err(perr(format!("expected {what}"))),
        }
    }

    fn label(&mut self) -> Result<u32, PErr> {
        match self.peek() {
            Some(Tok::Int(v)) if (1..=99_999).contains(v) => {
                let v = *v as u32;
                self.i += 1;
                Ok(v)
            }
            _ => Err(perr("expected a statement label (1-99999)")),
        }
    }

    fn expr(&mut self) -> Result<Expr, PErr> {
        let (e, used) =
            expr_from_toks(&self.t[self.i..], self.line).map_err(|e| perr(emsg(&e)))?;
        self.i += used;
        Ok(e)
    }

    fn desig(&mut self) -> Result<Desig, PErr> {
        let (d, used) =
            desig_from_toks(&self.t[self.i..], self.line).map_err(|e| perr(emsg(&e)))?;
        self.i += used;
        Ok(d)
    }

    fn finish(&self, s: S) -> Result<S, PErr> {
        if self.done() {
            Ok(s)
        } else {
            Err(perr(format!(
                "unexpected `{}` after statement",
                tok_text(&self.t[self.i])
            )))
        }
    }
}

/// One `lo:hi` / `n` dimension declarator.
fn parse_dim(c: &mut Cur) -> Result<DimDecl, PErr> {
    let e1 = c.expr()?;
    if c.eat(&Tok::Colon) {
        let e2 = c.expr()?;
        Ok(DimDecl { lo: Some(e1), hi: Some(e2), deferred: false })
    } else {
        Ok(DimDecl { lo: None, hi: Some(e1), deferred: false })
    }
}

fn parse_dims(c: &mut Cur) -> Result<Vec<DimDecl>, PErr> {
    c.expect(&Tok::LParen, "`(`")?;
    let mut dims = vec![parse_dim(c)?];
    while c.eat(&Tok::Comma) {
        dims.push(parse_dim(c)?);
    }
    c.expect(&Tok::RParen, "`)` after array bounds")?;
    Ok(dims)
}

/// `name` or `name(dims)`.
fn parse_entity(c: &mut Cur) -> Result<(String, Option<Vec<DimDecl>>), PErr> {
    let name = c.ident("a variable name")?;
    // CHARACTER*len entity form: tolerate and discard the length.
    if c.eat(&Tok::Star) {
        let _ = c.bump();
    }
    let dims = if c.peek() == Some(&Tok::LParen) { Some(parse_dims(c)?) } else { None };
    Ok((name, dims))
}

/// A type keyword plus optional kind spec (`REAL*8`, `INTEGER*4`,
/// `REAL(8)`). Returns `None` if the next token is not a type keyword.
fn parse_type_kw(c: &mut Cur) -> Option<TypeSpec> {
    let base = match c.peek() {
        Some(Tok::Ident(s)) => s.clone(),
        _ => return None,
    };
    let mut ts = match base.as_str() {
        "integer" => TypeSpec::Integer,
        "real" => TypeSpec::Real,
        "logical" => TypeSpec::Logical,
        "character" => TypeSpec::Character,
        "doubleprecision" => TypeSpec::Real8,
        _ => return None,
    };
    c.i += 1;
    let kind = if c.eat(&Tok::Star) {
        match c.bump() {
            Some(Tok::Int(v)) => Some(*v),
            _ => None,
        }
    } else if base != "character"
        && c.peek() == Some(&Tok::LParen)
        && matches!(c.t.get(c.i + 1), Some(Tok::Int(_)))
        && c.t.get(c.i + 2) == Some(&Tok::RParen)
    {
        let v = match c.t.get(c.i + 1) {
            Some(Tok::Int(v)) => *v,
            _ => 0,
        };
        c.i += 3;
        Some(v)
    } else {
        None
    };
    if ts == TypeSpec::Real && kind == Some(8) {
        ts = TypeSpec::Real8;
    }
    Some(ts)
}

fn parse_params(c: &mut Cur) -> Result<Vec<String>, PErr> {
    let mut params = Vec::new();
    if c.eat(&Tok::LParen) && !c.eat(&Tok::RParen) {
        {
            loop {
                params.push(c.ident("a dummy argument name")?);
                if c.eat(&Tok::RParen) {
                    break;
                }
                c.expect(&Tok::Comma, "`,` or `)` in the dummy argument list")?;
            }
        }
    }
    Ok(params)
}

fn parse_label_list(c: &mut Cur) -> Result<Vec<u32>, PErr> {
    c.expect(&Tok::LParen, "`(`")?;
    let mut labels = vec![c.label()?];
    while c.eat(&Tok::Comma) {
        labels.push(c.label()?);
    }
    c.expect(&Tok::RParen, "`)` after the label list")?;
    Ok(labels)
}

fn parse_stmt(
    f: &FStmt,
    file: usize,
    diags: &mut Diagnostics,
) -> Result<S, PErr> {
    if f.omp {
        return parse_omp(f, file, diags);
    }
    let mut c = Cur::new(&f.toks, f.lineno);

    // Assignment first — mirrors the classic F77 classifier. A leading
    // designator followed by `=` is an assignment no matter what the
    // first identifier looks like.
    if matches!(c.peek(), Some(Tok::Ident(_))) {
        let save = c.i;
        if let Ok(d) = c.desig() {
            if c.eat(&Tok::Assign) {
                let value = c.expr()?;
                return c.finish(S::Assign(d, value));
            }
        }
        c.i = save;
    }

    let head = match c.peek() {
        Some(Tok::Ident(s)) => s.clone(),
        Some(t) => return Err(perr(format!("statement cannot start with `{}`", tok_text(t)))),
        None => return Err(perr("empty statement")),
    };

    match head.as_str() {
        "program" => {
            c.i += 1;
            let name = c.ident("the program name")?;
            c.finish(S::Program(name))
        }
        "subroutine" => {
            c.i += 1;
            let name = c.ident("the subroutine name")?;
            let params = parse_params(&mut c)?;
            c.finish(S::Subroutine(name, params))
        }
        "function" => {
            c.i += 1;
            let name = c.ident("the function name")?;
            let params = parse_params(&mut c)?;
            // Untyped FUNCTION: result type follows from IMPLICIT rules;
            // marked Character here and patched during finalization.
            c.finish(S::Function(TypeSpec::Character, name, params))
        }
        "blockdata" => {
            c.i += 1;
            let name = match c.peek() {
                Some(Tok::Ident(s)) => {
                    let s = s.clone();
                    c.i += 1;
                    Some(s)
                }
                _ => None,
            };
            c.finish(S::BlockData(name))
        }
        "integer" | "real" | "logical" | "character" | "doubleprecision" => {
            let ts = parse_type_kw(&mut c).expect("checked type keyword");
            if c.kw("function") {
                let name = c.ident("the function name")?;
                let params = parse_params(&mut c)?;
                return c.finish(S::Function(ts, name, params));
            }
            let _ = c.eat(&Tok::DoubleColon);
            let mut ents = vec![parse_entity(&mut c)?];
            while c.eat(&Tok::Comma) {
                ents.push(parse_entity(&mut c)?);
            }
            c.finish(S::Decl(ts, ents))
        }
        "dimension" => {
            c.i += 1;
            let mut items = Vec::new();
            loop {
                let name = c.ident("an array name")?;
                let dims = parse_dims(&mut c)?;
                items.push((name, dims));
                if !c.eat(&Tok::Comma) {
                    break;
                }
            }
            c.finish(S::Dimension(items))
        }
        "common" => {
            c.i += 1;
            let mut groups: Vec<CommonGroup> = Vec::new();
            let mut block = String::new();
            if c.eat(&Tok::Slash) && !c.eat(&Tok::Slash) {
                block = c.ident("the COMMON block name")?;
                c.expect(&Tok::Slash, "`/` after the COMMON block name")?;
            }
            loop {
                let mut members = Vec::new();
                loop {
                    members.push(parse_entity(&mut c)?);
                    if !c.eat(&Tok::Comma) {
                        break;
                    }
                    if c.peek() == Some(&Tok::Slash) {
                        break;
                    }
                }
                groups.push((block.clone(), members));
                if c.eat(&Tok::Slash) {
                    if c.eat(&Tok::Slash) {
                        block = String::new();
                    } else {
                        block = c.ident("the COMMON block name")?;
                        c.expect(&Tok::Slash, "`/` after the COMMON block name")?;
                    }
                } else {
                    break;
                }
            }
            c.finish(S::Common(groups))
        }
        "implicit" => {
            c.i += 1;
            if c.kw("none") {
                return c.finish(S::ImplicitNone);
            }
            let mut specs = Vec::new();
            loop {
                let ts = parse_type_kw(&mut c)
                    .ok_or_else(|| perr("expected a type in IMPLICIT"))?;
                c.expect(&Tok::LParen, "`(` after the IMPLICIT type")?;
                let mut ranges = Vec::new();
                loop {
                    let a = c.ident("a letter")?;
                    if a.len() != 1 {
                        return Err(perr(format!("`{a}` is not a single letter")));
                    }
                    let lo = a.chars().next().unwrap_or('a');
                    let hi = if c.eat(&Tok::Minus) {
                        let b = c.ident("a letter")?;
                        if b.len() != 1 {
                            return Err(perr(format!("`{b}` is not a single letter")));
                        }
                        b.chars().next().unwrap_or('z')
                    } else {
                        lo
                    };
                    ranges.push((lo, hi));
                    if !c.eat(&Tok::Comma) {
                        break;
                    }
                }
                c.expect(&Tok::RParen, "`)` after the IMPLICIT letter ranges")?;
                specs.push((ts, ranges));
                if !c.eat(&Tok::Comma) {
                    break;
                }
            }
            c.finish(S::Implicit(specs))
        }
        "parameter" => {
            c.i += 1;
            c.expect(&Tok::LParen, "`(` after PARAMETER")?;
            let mut items = Vec::new();
            loop {
                let name = c.ident("a PARAMETER name")?;
                c.expect(&Tok::Assign, "`=` in PARAMETER")?;
                let e = c.expr()?;
                items.push((name, e));
                if !c.eat(&Tok::Comma) {
                    break;
                }
            }
            c.expect(&Tok::RParen, "`)` closing PARAMETER")?;
            c.finish(S::Parameter(items))
        }
        "equivalence" => {
            c.i += 1;
            let mut groups = Vec::new();
            loop {
                c.expect(&Tok::LParen, "`(` opening an EQUIVALENCE group")?;
                let mut items = vec![c.desig()?];
                while c.eat(&Tok::Comma) {
                    items.push(c.desig()?);
                }
                c.expect(&Tok::RParen, "`)` closing an EQUIVALENCE group")?;
                groups.push(items);
                if !c.eat(&Tok::Comma) {
                    break;
                }
            }
            c.finish(S::EquivalenceS(groups))
        }
        "data" => {
            c.i += 1;
            let mut groups = Vec::new();
            loop {
                let mut targets = vec![c.desig()?];
                while c.eat(&Tok::Comma) {
                    targets.push(c.desig()?);
                }
                c.expect(&Tok::Slash, "`/` before the DATA values")?;
                let mut values: Vec<(usize, Expr)> = Vec::new();
                loop {
                    let (rep, val) = parse_data_value(&mut c)?;
                    values.push((rep, val));
                    if c.eat(&Tok::Slash) {
                        break;
                    }
                    c.expect(&Tok::Comma, "`,` or `/` in the DATA value list")?;
                }
                groups.push((targets, values));
                if !c.eat(&Tok::Comma) && c.done() {
                    break;
                }
                if c.done() {
                    break;
                }
            }
            c.finish(S::Data(groups))
        }
        "save" => {
            c.i += 1;
            if c.done() {
                return Ok(S::SaveAll);
            }
            let mut names = Vec::new();
            loop {
                if c.eat(&Tok::Slash) {
                    // SAVE /block/ — COMMON storage is always persistent
                    // in this engine, so this is a no-op.
                    let _ = c.ident("the COMMON block name")?;
                    c.expect(&Tok::Slash, "`/` after the COMMON block name")?;
                } else {
                    names.push(c.ident("a variable name")?);
                }
                if !c.eat(&Tok::Comma) {
                    break;
                }
            }
            c.finish(S::Save(names))
        }
        "external" | "intrinsic" => {
            c.i += 1;
            let mut names = vec![c.ident("a procedure name")?];
            while c.eat(&Tok::Comma) {
                names.push(c.ident("a procedure name")?);
            }
            c.finish(S::External(names))
        }
        "format" => {
            diags.warn_hint(
                file,
                f.lineno,
                "FORMAT statements are ignored; output is list-directed",
                "the engine prints PRINT/WRITE arguments in list-directed form",
            );
            Ok(S::Format)
        }
        "goto" => {
            c.i += 1;
            match c.peek() {
                Some(Tok::Int(_)) => {
                    let l = c.label()?;
                    c.finish(S::Goto(l))
                }
                Some(Tok::LParen) => {
                    let labels = parse_label_list(&mut c)?;
                    let _ = c.eat(&Tok::Comma);
                    let e = c.expr()?;
                    c.finish(S::CGoto(labels, e))
                }
                Some(Tok::Ident(_)) => {
                    let var = c.ident("a variable")?;
                    let _ = c.eat(&Tok::Comma);
                    let labels = if c.peek() == Some(&Tok::LParen) {
                        parse_label_list(&mut c)?
                    } else {
                        vec![]
                    };
                    c.finish(S::AGoto(var, labels))
                }
                _ => Err(perr("GO TO needs a label, a label list, or a variable")),
            }
        }
        "assign" => {
            c.i += 1;
            let l = c.label()?;
            if !c.kw("to") {
                return Err(perr_hint(
                    "expected TO in ASSIGN",
                    "the form is `ASSIGN <label> TO <variable>`",
                ));
            }
            let var = c.ident("a variable")?;
            c.finish(S::LabelAssign(l, var))
        }
        "if" => {
            c.i += 1;
            c.expect(&Tok::LParen, "`(` after IF")?;
            let cond = c.expr()?;
            c.expect(&Tok::RParen, "`)` closing the IF condition")?;
            if c.kw("then") {
                return c.finish(S::IfThen(cond));
            }
            if matches!(c.peek(), Some(Tok::Int(_))) {
                let l1 = c.label()?;
                c.expect(&Tok::Comma, "`,` in arithmetic IF")?;
                let l2 = c.label()?;
                c.expect(&Tok::Comma, "`,` in arithmetic IF")?;
                let l3 = c.label()?;
                return c.finish(S::ArithIf(cond, l1, l2, l3));
            }
            // Logical IF: one simple trailing statement.
            let inner = FStmt {
                label: None,
                toks: f.toks[c.i..].to_vec(),
                lineno: f.lineno,
                omp: false,
            };
            let s = parse_stmt(&inner, file, diags)?;
            match &s {
                S::Assign(..)
                | S::Goto(..)
                | S::CGoto(..)
                | S::AGoto(..)
                | S::LabelAssign(..)
                | S::ArithIf(..)
                | S::CallS(..)
                | S::Return
                | S::Stop(_)
                | S::ExitS
                | S::CycleS
                | S::ContinueS
                | S::PrintS(_) => Ok(S::LogIf(cond, Box::new(s))),
                _ => Err(perr("this statement cannot be the body of a logical IF")),
            }
        }
        "else" => {
            c.i += 1;
            if c.kw("if") {
                c.expect(&Tok::LParen, "`(` after ELSE IF")?;
                let cond = c.expr()?;
                c.expect(&Tok::RParen, "`)` closing the ELSE IF condition")?;
                if !c.kw("then") {
                    return Err(perr("expected THEN after ELSE IF (...)"));
                }
                return c.finish(S::ElseIf(cond));
            }
            c.finish(S::Else)
        }
        "end" => {
            c.i += 1;
            if c.kw("if") {
                return c.finish(S::EndIf);
            }
            if c.kw("do") {
                return c.finish(S::EndDo);
            }
            // END [SUBROUTINE|FUNCTION|PROGRAM [name]]
            while c.bump().is_some() {}
            Ok(S::EndUnit)
        }
        "do" => {
            c.i += 1;
            let term = match c.peek() {
                Some(Tok::Int(_)) => Some(c.label()?),
                _ => None,
            };
            if c.kw("while") {
                c.expect(&Tok::LParen, "`(` after DO WHILE")?;
                let cond = c.expr()?;
                c.expect(&Tok::RParen, "`)` closing the DO WHILE condition")?;
                return c.finish(S::DoWhileStart { term, cond });
            }
            let var = c.ident("the DO control variable")?;
            c.expect(&Tok::Assign, "`=` in the DO statement")?;
            let start = c.expr()?;
            c.expect(&Tok::Comma, "`,` between the DO bounds")?;
            let end = c.expr()?;
            let step = if c.eat(&Tok::Comma) { Some(c.expr()?) } else { None };
            c.finish(S::DoStart { term, var, start, end, step })
        }
        "continue" => {
            c.i += 1;
            c.finish(S::ContinueS)
        }
        "return" => {
            c.i += 1;
            c.finish(S::Return)
        }
        "exit" => {
            c.i += 1;
            c.finish(S::ExitS)
        }
        "cycle" => {
            c.i += 1;
            c.finish(S::CycleS)
        }
        "stop" => {
            c.i += 1;
            let msg = match c.peek() {
                Some(Tok::Str(s)) => {
                    let s = s.clone();
                    c.i += 1;
                    Some(s)
                }
                Some(Tok::Int(v)) => {
                    let s = v.to_string();
                    c.i += 1;
                    Some(s)
                }
                _ => None,
            };
            c.finish(S::Stop(msg))
        }
        "call" => {
            c.i += 1;
            let name = c.ident("the subroutine name")?;
            let mut args = Vec::new();
            if c.eat(&Tok::LParen) && !c.eat(&Tok::RParen) {
                loop {
                    args.push(c.expr()?);
                    if c.eat(&Tok::RParen) {
                        break;
                    }
                    c.expect(&Tok::Comma, "`,` or `)` in the argument list")?;
                }
            }
            c.finish(S::CallS(name, args))
        }
        "print" => {
            c.i += 1;
            if !c.eat(&Tok::Star) {
                if matches!(c.peek(), Some(Tok::Int(_))) {
                    let _ = c.label()?;
                    diags.warn_hint(
                        file,
                        f.lineno,
                        "PRINT format label ignored; output is list-directed",
                        "the engine prints arguments in list-directed form",
                    );
                } else {
                    return Err(perr("expected `*` or a format label after PRINT"));
                }
            }
            let mut args = Vec::new();
            while c.eat(&Tok::Comma) {
                args.push(c.expr()?);
            }
            c.finish(S::PrintS(args))
        }
        "write" => {
            c.i += 1;
            c.expect(&Tok::LParen, "`(` after WRITE")?;
            match c.peek() {
                Some(Tok::Star | Tok::Int(_)) => {
                    c.i += 1;
                }
                Some(Tok::Ident(_)) => {
                    // WRITE(UNIT=..., ...) — tolerate by skipping to `)`.
                }
                _ => return Err(perr("expected a unit specifier in WRITE")),
            }
            if c.eat(&Tok::Comma) {
                match c.peek() {
                    Some(Tok::Star) => {
                        c.i += 1;
                    }
                    Some(Tok::Int(_)) => {
                        let _ = c.label()?;
                        diags.warn_hint(
                            file,
                            f.lineno,
                            "WRITE format label ignored; output is list-directed",
                            "the engine prints arguments in list-directed form",
                        );
                    }
                    _ => return Err(perr("expected `*` or a format label in WRITE")),
                }
            }
            c.expect(&Tok::RParen, "`)` closing the WRITE control list")?;
            let mut args = Vec::new();
            if !c.done() {
                loop {
                    args.push(c.expr()?);
                    if !c.eat(&Tok::Comma) {
                        break;
                    }
                }
            }
            c.finish(S::PrintS(args))
        }
        "module" | "use" | "contains" | "allocate" | "deallocate" | "critical" => {
            Err(perr_hint(
                format!("`{head}` is not a fixed-form F77 statement"),
                "free-form sources must start with MODULE; fixed-form sources may not \
                 use F90 module features",
            ))
        }
        other => Err(perr(format!("unrecognized statement `{other}`"))),
    }
}

/// One DATA value: `[n*]value` where value is a possibly-signed literal.
fn parse_data_value(c: &mut Cur) -> Result<(usize, Expr), PErr> {
    // Repeat count?
    if let (Some(Tok::Int(n)), Some(Tok::Star)) = (c.peek(), c.t.get(c.i + 1)) {
        if *n > 0 {
            let n = *n as usize;
            c.i += 2;
            let v = parse_data_scalar(c)?;
            return Ok((n, v));
        }
    }
    Ok((1, parse_data_scalar(c)?))
}

fn parse_data_scalar(c: &mut Cur) -> Result<Expr, PErr> {
    let neg = if c.eat(&Tok::Minus) {
        true
    } else {
        let _ = c.eat(&Tok::Plus);
        false
    };
    let e = match c.bump() {
        Some(Tok::Int(v)) => Expr::Int(*v),
        Some(Tok::Real(v)) => Expr::Real(*v),
        Some(Tok::True) => Expr::Logical(true),
        Some(Tok::False) => Expr::Logical(false),
        Some(Tok::Str(s)) => Expr::Str(s.clone()),
        Some(Tok::Ident(n)) => Expr::Name(Desig {
            parts: vec![Part { name: n.clone(), subs: vec![] }],
            span: Span { line: c.line },
        }),
        _ => return Err(perr("expected a constant in the DATA value list")),
    };
    Ok((if neg { Expr::Neg(Box::new(e)) } else { e }, ()).0)
}

/// Parses an OMP directive statement.
fn parse_omp(f: &FStmt, file: usize, diags: &mut Diagnostics) -> Result<S, PErr> {
    let mut c = Cur::new(&f.toks, f.lineno);
    if c.kw("parallel") {
        if !c.kw("do") {
            diags.warn_hint(
                file,
                f.lineno,
                "unsupported OpenMP directive ignored",
                "only PARALLEL DO, ATOMIC and CRITICAL are honoured",
            );
            return Ok(S::OmpIgnored);
        }
        let mut omp = OmpDo::default();
        while !c.done() {
            if c.kw("private") {
                omp.private.extend(parse_name_list(&mut c)?);
            } else if c.kw("firstprivate") {
                omp.firstprivate.extend(parse_name_list(&mut c)?);
            } else if c.kw("reduction") {
                c.expect(&Tok::LParen, "`(` after REDUCTION")?;
                let op = match c.bump() {
                    Some(Tok::Plus) => RedOp::Add,
                    Some(Tok::Star) => RedOp::Mul,
                    Some(Tok::Ident(s)) if s == "max" => RedOp::Max,
                    Some(Tok::Ident(s)) if s == "min" => RedOp::Min,
                    _ => return Err(perr("expected +, *, MAX or MIN in REDUCTION")),
                };
                c.expect(&Tok::Colon, "`:` in REDUCTION")?;
                let mut names = vec![c.ident("a reduction variable")?];
                while c.eat(&Tok::Comma) {
                    names.push(c.ident("a reduction variable")?);
                }
                c.expect(&Tok::RParen, "`)` closing REDUCTION")?;
                omp.reductions.push((op, names));
            } else if c.kw("collapse") {
                c.expect(&Tok::LParen, "`(` after COLLAPSE")?;
                let n = match c.bump() {
                    Some(Tok::Int(v)) if *v >= 1 => *v as usize,
                    _ => return Err(perr("COLLAPSE needs a positive integer")),
                };
                c.expect(&Tok::RParen, "`)` closing COLLAPSE")?;
                omp.collapse = n;
            } else if c.kw("num_threads") {
                c.expect(&Tok::LParen, "`(` after NUM_THREADS")?;
                omp.num_threads = Some(c.expr()?);
                c.expect(&Tok::RParen, "`)` closing NUM_THREADS")?;
            } else if c.kw("schedule") {
                c.expect(&Tok::LParen, "`(` after SCHEDULE")?;
                let kind = match c.bump() {
                    Some(Tok::Ident(s)) if s == "static" => SchedKind::Static,
                    Some(Tok::Ident(s)) if s == "dynamic" => SchedKind::Dynamic,
                    Some(Tok::Ident(s)) if s == "guided" => SchedKind::Guided,
                    _ => return Err(perr("expected STATIC, DYNAMIC or GUIDED in SCHEDULE")),
                };
                let chunk = if c.eat(&Tok::Comma) {
                    match c.bump() {
                        Some(Tok::Int(v)) if *v >= 1 => Some(*v as usize),
                        _ => return Err(perr("SCHEDULE chunk must be a positive integer")),
                    }
                } else {
                    None
                };
                c.expect(&Tok::RParen, "`)` closing SCHEDULE")?;
                omp.schedule = Some((kind, chunk));
            } else if c.kw("default") || c.kw("shared") {
                if c.eat(&Tok::LParen) {
                    while !c.done() && !c.eat(&Tok::RParen) {
                        c.i += 1;
                    }
                }
            } else if c.kw("nowait") {
                // no-op
            } else {
                return Err(perr(format!(
                    "unknown PARALLEL DO clause near `{}`",
                    c.peek().map(tok_text).unwrap_or_default()
                )));
            }
        }
        return Ok(S::OmpPar(omp));
    }
    if c.kw("end") {
        if c.kw("parallel") {
            let _ = c.kw("do");
            return Ok(S::OmpEndPar);
        }
        if c.kw("critical") {
            return Ok(S::OmpEndCrit);
        }
        return Ok(S::OmpIgnored);
    }
    if c.kw("atomic") {
        return Ok(S::OmpAtomic);
    }
    if c.kw("critical") {
        let name = if c.eat(&Tok::LParen) {
            let n = c.ident("the critical section name")?;
            c.expect(&Tok::RParen, "`)` closing the critical section name")?;
            Some(n)
        } else {
            None
        };
        return Ok(S::OmpCrit(name));
    }
    diags.warn_hint(
        file,
        f.lineno,
        "unsupported OpenMP directive ignored",
        "only PARALLEL DO, ATOMIC and CRITICAL are honoured",
    );
    Ok(S::OmpIgnored)
}

fn parse_name_list(c: &mut Cur) -> Result<Vec<String>, PErr> {
    c.expect(&Tok::LParen, "`(`")?;
    let mut names = vec![c.ident("a variable name")?];
    while c.eat(&Tok::Comma) {
        names.push(c.ident("a variable name")?);
    }
    c.expect(&Tok::RParen, "`)` closing the name list")?;
    Ok(names)
}

// ---------------------------------------------------------------------------
// Phase 4: structure building (statement list -> nested body with branches)
// ---------------------------------------------------------------------------

/// Legacy branch statements kept symbolic until legalization.
#[derive(Debug, Clone)]
enum Branch {
    Goto(u32),
    CGoto(Vec<u32>, Expr),
    AGoto(String, Vec<u32>),
    Arith(Expr, u32, u32, u32),
}

/// A loop body is raw until its region has been legalized.
#[derive(Debug, Clone)]
enum LBody {
    Raw(Vec<LNode>),
    Done(Vec<Stmt>),
}

#[derive(Debug, Clone)]
enum Node {
    St(Stmt),
    Br(Branch),
    Do {
        var: String,
        start: Expr,
        end: Expr,
        step: Option<Expr>,
        omp: Option<OmpDo>,
        body: LBody,
        line: u32,
    },
    DoW {
        cond: Expr,
        body: LBody,
        line: u32,
    },
    If {
        arms: Vec<(Expr, Vec<LNode>)>,
        els: Vec<LNode>,
        line: u32,
    },
    Crit {
        name: Option<String>,
        body: Vec<LNode>,
        line: u32,
    },
}

#[derive(Debug, Clone)]
struct LNode {
    label: Option<u32>,
    line: u32,
    node: Node,
}

/// Everything gathered about one program unit before finalization.
struct UnitAcc {
    kind: UnitKind,
    name: String,
    params: Vec<String>,
    line: u32,
    file: usize,
    /// BLOCK DATA and PROGRAM units compile as parameterless subroutines.
    untyped_function: bool,
    implicit_none: bool,
    implicit: Vec<(TypeSpec, Vec<(char, char)>)>,
    decls_ty: Vec<(TypeSpec, String, Option<Vec<DimDecl>>, u32)>,
    dimension: Vec<(String, Vec<DimDecl>, u32)>,
    commons: Vec<(CommonGroup, u32)>,
    params_c: Vec<(String, Expr, u32)>,
    equiv: Vec<(Vec<Desig>, u32)>,
    data: Vec<(DataGroup, u32)>,
    save_all: bool,
    save: HashSet<String>,
    externals: HashSet<String>,
    label_assigns: HashMap<String, Vec<u32>>,
    format_labels: HashSet<u32>,
    labels: HashSet<u32>,
    body: Vec<LNode>,
}

impl UnitAcc {
    fn new(kind: UnitKind, name: String, params: Vec<String>, line: u32, file: usize) -> Self {
        UnitAcc {
            kind,
            name,
            params,
            line,
            file,
            untyped_function: false,
            implicit_none: false,
            implicit: Vec::new(),
            decls_ty: Vec::new(),
            dimension: Vec::new(),
            commons: Vec::new(),
            params_c: Vec::new(),
            equiv: Vec::new(),
            data: Vec::new(),
            save_all: false,
            save: HashSet::new(),
            externals: HashSet::new(),
            label_assigns: HashMap::new(),
            format_labels: HashSet::new(),
            labels: HashSet::new(),
            body: Vec::new(),
        }
    }
}

#[allow(clippy::large_enum_variant)]
enum Fr {
    Base,
    Do {
        term: Option<u32>,
        var: String,
        start: Expr,
        end: Expr,
        step: Option<Expr>,
        omp: Option<OmpDo>,
        label: Option<u32>,
        line: u32,
    },
    DoW {
        term: Option<u32>,
        cond: Expr,
        label: Option<u32>,
        line: u32,
    },
    If {
        arms: Vec<(Expr, Vec<LNode>)>,
        cond: Expr,
        in_else: bool,
        label: Option<u32>,
        line: u32,
    },
    Crit {
        name: Option<String>,
        label: Option<u32>,
        line: u32,
    },
}

/// The per-unit structure builder: a stack of open DO/IF/CRITICAL frames,
/// each with its growing body.
struct Shape {
    frames: Vec<(Fr, Vec<LNode>)>,
}

impl Shape {
    fn new() -> Self {
        Shape { frames: vec![(Fr::Base, Vec::new())] }
    }

    fn body(&mut self) -> &mut Vec<LNode> {
        &mut self.frames.last_mut().expect("base frame").1
    }

    /// Pops the top frame into its parent body as a finished node.
    fn close_top(&mut self) {
        let (fr, body) = self.frames.pop().expect("non-base frame");
        let node = match fr {
            Fr::Base => unreachable!("base frame never closed"),
            Fr::Do { var, start, end, step, omp, label, line, .. } => LNode {
                label,
                line,
                node: Node::Do { var, start, end, step, omp, body: LBody::Raw(body), line },
            },
            Fr::DoW { cond, label, line, .. } => {
                LNode { label, line, node: Node::DoW { cond, body: LBody::Raw(body), line } }
            }
            Fr::If { mut arms, cond, in_else, label, line } => {
                let els = if in_else {
                    body
                } else {
                    arms.push((cond, body));
                    Vec::new()
                };
                LNode { label, line, node: Node::If { arms, els, line } }
            }
            Fr::Crit { name, label, line } => {
                LNode { label, line, node: Node::Crit { name, body, line } }
            }
        };
        self.body().push(node);
    }

    /// True when an open DO/DO WHILE frame is waiting for terminal `l`.
    fn open_term(&self, l: u32) -> bool {
        self.frames.iter().any(|(f, _)| {
            matches!(f, Fr::Do { term: Some(t), .. } | Fr::DoW { term: Some(t), .. } if *t == l)
        })
    }

    /// Closes every top frame whose terminal label is `l` (shared
    /// terminals close all their loops at once).
    fn close_terms(&mut self, l: u32) {
        while matches!(
            self.frames.last(),
            Some((Fr::Do { term: Some(t), .. } | Fr::DoW { term: Some(t), .. }, _)) if *t == l
        ) {
            self.close_top();
        }
    }
}

/// Lowers one simple S to an AST statement (never a branch/frame S).
fn lower_simple(s: S, line: u32, atomic: bool) -> Stmt {
    let span = Span { line };
    match s {
        S::Assign(target, value) => Stmt::Assign { target, value, atomic, span },
        S::CallS(name, args) => Stmt::Call { name, args, span },
        S::Return => Stmt::Return(span),
        S::Stop(message) => Stmt::Stop { message, span },
        S::PrintS(args) => Stmt::Print { args, span },
        S::ContinueS => Stmt::Continue(span),
        S::ExitS => Stmt::Exit(span),
        S::CycleS => Stmt::Cycle(span),
        S::LabelAssign(l, var) => Stmt::Assign {
            target: Desig { parts: vec![Part { name: var, subs: vec![] }], span },
            value: Expr::Int(i64::from(l)),
            atomic: false,
            span,
        },
        _ => unreachable!("lower_simple called on a structural statement"),
    }
}

fn is_simple(s: &S) -> bool {
    matches!(
        s,
        S::Assign(..)
            | S::CallS(..)
            | S::Return
            | S::Stop(_)
            | S::PrintS(_)
            | S::ContinueS
            | S::ExitS
            | S::CycleS
            | S::LabelAssign(..)
    )
}

/// Scans one fixed-form source into unit accumulators, recovering at
/// statement boundaries and reporting every problem found.
fn lower_source(src: &str, file: usize, diags: &mut Diagnostics) -> Vec<UnitAcc> {
    let stmts = lex_fixed_in(src, file, diags);
    let mut units: Vec<UnitAcc> = Vec::new();
    let mut cur: Option<(UnitAcc, Shape)> = None;
    let mut pending_omp: Option<OmpDo> = None;
    let mut pending_atomic = false;

    let close_unit = |cur: &mut Option<(UnitAcc, Shape)>,
                      units: &mut Vec<UnitAcc>,
                      diags: &mut Diagnostics| {
        if let Some((mut acc, mut shape)) = cur.take() {
            while shape.frames.len() > 1 {
                let msg = match &shape.frames.last().expect("frame").0 {
                    Fr::Do { term: Some(t), line, .. } => format!(
                        "DO terminal label {t} never appears (loop opened at line {line})"
                    ),
                    Fr::Do { line, .. } | Fr::DoW { line, .. } => {
                        format!("DO loop opened at line {line} is never closed")
                    }
                    Fr::If { line, .. } => {
                        format!("IF block opened at line {line} is never closed with END IF")
                    }
                    Fr::Crit { line, .. } => {
                        format!("CRITICAL section opened at line {line} is never closed")
                    }
                    Fr::Base => unreachable!("base frame"),
                };
                diags.error_hint(
                    file,
                    acc.line,
                    msg,
                    "every DO needs its terminal statement or END DO, every IF (...) THEN \
                     its END IF",
                );
                shape.close_top();
            }
            acc.body = shape.frames.pop().map(|(_, b)| b).unwrap_or_default();
            units.push(acc);
        }
    };

    for f in &stmts {
        let s = match parse_stmt(f, file, diags) {
            Ok(s) => s,
            Err((msg, hint)) => {
                match hint {
                    Some(h) => diags.error_hint(file, f.lineno, msg, h),
                    None => diags.error(file, f.lineno, msg),
                }
                continue; // statement-boundary recovery
            }
        };

        // Unit heads.
        let head = match &s {
            S::Program(n) => Some((UnitKind::Subroutine, n.clone(), vec![], false)),
            S::Subroutine(n, p) => Some((UnitKind::Subroutine, n.clone(), p.clone(), false)),
            S::Function(ts, n, p) => {
                let untyped = *ts == TypeSpec::Character;
                Some((UnitKind::Function(ts.clone()), n.clone(), p.clone(), untyped))
            }
            S::BlockData(n) => Some((
                UnitKind::Subroutine,
                n.clone().unwrap_or_else(|| "blockdata".to_string()),
                vec![],
                false,
            )),
            _ => None,
        };
        if let Some((kind, name, params, untyped)) = head {
            if cur.is_some() {
                diags.error_hint(
                    file,
                    f.lineno,
                    format!("`{name}` starts before the previous unit's END"),
                    "add an END statement to close the previous program unit",
                );
                close_unit(&mut cur, &mut units, diags);
            }
            let mut acc = UnitAcc::new(kind, name, params, f.lineno, file);
            acc.untyped_function = untyped;
            cur = Some((acc, Shape::new()));
            continue;
        }

        // Any other statement before a unit head opens the implicit
        // main program (classic F77 main without a PROGRAM card).
        if cur.is_none() {
            if matches!(s, S::EndUnit) {
                diags.error(file, f.lineno, "END without an open program unit");
                continue;
            }
            cur = Some((
                UnitAcc::new(UnitKind::Subroutine, "main".to_string(), vec![], f.lineno, file),
                Shape::new(),
            ));
        }
        let (acc, shape) = cur.as_mut().expect("unit open");

        // Labels: uniqueness + terminal-label discipline.
        if let Some(l) = f.label {
            if !acc.labels.insert(l) {
                diags.error(file, f.lineno, format!("duplicate statement label {l}"));
            }
            if shape.open_term(l) && !is_simple(&s) {
                diags.error_hint(
                    file,
                    f.lineno,
                    format!("DO terminal label {l} is on a non-executable or block statement"),
                    "terminate the loop with a labeled CONTINUE",
                );
            }
        }

        // A pending PARALLEL DO must be followed by a DO statement.
        if pending_omp.is_some()
            && !matches!(s, S::DoStart { .. } | S::OmpPar(_) | S::Format)
        {
            diags.error_hint(
                file,
                f.lineno,
                "PARALLEL DO directive is not followed by a DO loop",
                "put the `C$OMP PARALLEL DO` card directly above the DO statement",
            );
            pending_omp = None;
        }
        if pending_atomic && !matches!(s, S::Assign(..)) {
            diags.error(file, f.lineno, "ATOMIC directive is not followed by an assignment");
            pending_atomic = false;
        }

        match s {
            S::EndUnit => {
                close_unit(&mut cur, &mut units, diags);
            }
            // --- specification statements -------------------------------
            S::Decl(ts, ents) => {
                for (n, d) in ents {
                    acc.decls_ty.push((ts.clone(), n, d, f.lineno));
                }
            }
            S::Dimension(items) => {
                for (n, d) in items {
                    acc.dimension.push((n, d, f.lineno));
                }
            }
            S::Common(groups) => {
                for (b, members) in groups {
                    acc.commons.push(((b, members), f.lineno));
                }
            }
            S::Implicit(specs) => acc.implicit.extend(specs),
            S::ImplicitNone => acc.implicit_none = true,
            S::Parameter(items) => {
                for (n, e) in items {
                    acc.params_c.push((n, e, f.lineno));
                }
            }
            S::EquivalenceS(groups) => {
                for g in groups {
                    acc.equiv.push((g, f.lineno));
                }
            }
            S::Data(groups) => {
                for (t, v) in groups {
                    acc.data.push(((t, v), f.lineno));
                }
            }
            S::SaveAll => acc.save_all = true,
            S::Save(names) => acc.save.extend(names),
            S::External(names) => acc.externals.extend(names),
            S::Format => {
                if let Some(l) = f.label {
                    acc.format_labels.insert(l);
                }
            }
            // --- OMP ----------------------------------------------------
            S::OmpPar(o) => pending_omp = Some(o),
            S::OmpEndPar | S::OmpIgnored => {}
            S::OmpAtomic => pending_atomic = true,
            S::OmpCrit(name) => {
                shape
                    .frames
                    .push((Fr::Crit { name, label: f.label, line: f.lineno }, Vec::new()));
            }
            S::OmpEndCrit => {
                if matches!(shape.frames.last(), Some((Fr::Crit { .. }, _))) {
                    shape.close_top();
                } else {
                    diags.error(file, f.lineno, "END CRITICAL without an open CRITICAL");
                }
            }
            // --- structure ----------------------------------------------
            S::DoStart { term, var, start, end, step } => {
                shape.frames.push((
                    Fr::Do {
                        term,
                        var,
                        start,
                        end,
                        step,
                        omp: pending_omp.take(),
                        label: f.label,
                        line: f.lineno,
                    },
                    Vec::new(),
                ));
            }
            S::DoWhileStart { term, cond } => {
                shape
                    .frames
                    .push((Fr::DoW { term, cond, label: f.label, line: f.lineno }, Vec::new()));
            }
            S::IfThen(cond) => {
                shape.frames.push((
                    Fr::If { arms: Vec::new(), cond, in_else: false, label: f.label, line: f.lineno },
                    Vec::new(),
                ));
            }
            S::ElseIf(newcond) => match shape.frames.last_mut() {
                Some((Fr::If { arms, cond, in_else: false, .. }, body)) => {
                    arms.push((cond.clone(), std::mem::take(body)));
                    *cond = newcond;
                }
                _ => diags.error(file, f.lineno, "ELSE IF without a matching IF (...) THEN"),
            },
            S::Else => match shape.frames.last_mut() {
                Some((Fr::If { arms, cond, in_else, .. }, body)) if !*in_else => {
                    arms.push((cond.clone(), std::mem::take(body)));
                    *in_else = true;
                }
                _ => diags.error(file, f.lineno, "ELSE without a matching IF (...) THEN"),
            },
            S::EndIf => {
                if matches!(shape.frames.last(), Some((Fr::If { .. }, _))) {
                    shape.close_top();
                } else {
                    diags.error(file, f.lineno, "END IF without a matching IF (...) THEN");
                }
            }
            S::EndDo => {
                if matches!(shape.frames.last(), Some((Fr::Do { term: None, .. } | Fr::DoW { term: None, .. }, _)))
                {
                    shape.close_top();
                } else {
                    diags.error(file, f.lineno, "END DO without a matching DO");
                }
            }
            // --- branches -----------------------------------------------
            S::Goto(l) => {
                shape.body().push(LNode {
                    label: f.label,
                    line: f.lineno,
                    node: Node::Br(Branch::Goto(l)),
                });
                if let Some(l) = f.label {
                    shape.close_terms(l);
                }
            }
            S::CGoto(ls, e) => {
                shape.body().push(LNode {
                    label: f.label,
                    line: f.lineno,
                    node: Node::Br(Branch::CGoto(ls, e)),
                });
                if let Some(l) = f.label {
                    shape.close_terms(l);
                }
            }
            S::AGoto(v, ls) => {
                shape.body().push(LNode {
                    label: f.label,
                    line: f.lineno,
                    node: Node::Br(Branch::AGoto(v, ls)),
                });
                if let Some(l) = f.label {
                    shape.close_terms(l);
                }
            }
            S::ArithIf(e, l1, l2, l3) => {
                shape.body().push(LNode {
                    label: f.label,
                    line: f.lineno,
                    node: Node::Br(Branch::Arith(e, l1, l2, l3)),
                });
                if let Some(l) = f.label {
                    shape.close_terms(l);
                }
            }
            S::LogIf(cond, inner) => {
                let inner_node = match *inner {
                    S::Goto(l) => Node::Br(Branch::Goto(l)),
                    S::CGoto(ls, e) => Node::Br(Branch::CGoto(ls, e)),
                    S::AGoto(v, ls) => Node::Br(Branch::AGoto(v, ls)),
                    S::ArithIf(e, a, b, d) => Node::Br(Branch::Arith(e, a, b, d)),
                    other => {
                        if let S::LabelAssign(l, v) = &other {
                            acc.label_assigns.entry(v.clone()).or_default().push(*l);
                        }
                        Node::St(lower_simple(other, f.lineno, false))
                    }
                };
                shape.body().push(LNode {
                    label: f.label,
                    line: f.lineno,
                    node: Node::If {
                        arms: vec![(
                            cond,
                            vec![LNode { label: None, line: f.lineno, node: inner_node }],
                        )],
                        els: Vec::new(),
                        line: f.lineno,
                    },
                });
                if let Some(l) = f.label {
                    shape.close_terms(l);
                }
            }
            // --- simple executable statements ---------------------------
            other if is_simple(&other) => {
                if let S::LabelAssign(l, v) = &other {
                    acc.label_assigns.entry(v.clone()).or_default().push(*l);
                }
                let atomic = pending_atomic && matches!(other, S::Assign(..));
                pending_atomic = false;
                shape.body().push(LNode {
                    label: f.label,
                    line: f.lineno,
                    node: Node::St(lower_simple(other, f.lineno, atomic)),
                });
                if let Some(l) = f.label {
                    shape.close_terms(l);
                }
            }
            _ => unreachable!("all statement kinds handled"),
        }
    }
    if cur.is_some() {
        let line = cur.as_ref().map(|(a, _)| a.line).unwrap_or(1);
        diags.error_hint(
            file,
            line,
            "program unit is missing its END statement",
            "every PROGRAM/SUBROUTINE/FUNCTION must be closed with END",
        );
        close_unit(&mut cur, &mut units, diags);
    }
    units
}

// ---------------------------------------------------------------------------
// Phase 5: legalization — desugar GOTO/computed-GOTO/assigned-GOTO and
// arithmetic IF into structured control flow the RIR can represent.
//
// Strategy (see DESIGN.md §8): structure first. DO nests and IF blocks are
// recovered from labels/END statements by the structure pass; inside each
// *region* (a unit body or one loop body) the classic patterns
// `GOTO <terminal CONTINUE>` and `GOTO <label right after the loop>` become
// CYCLE and EXIT. Whatever branches remain turn the region into a flat
// state machine: basic blocks dispatched by an integer state variable
// inside `DO WHILE (s /= 0)`.
// ---------------------------------------------------------------------------

fn sp(line: u32) -> Span {
    Span { line }
}

fn dvar(n: &str, line: u32) -> Desig {
    Desig { parts: vec![Part { name: n.to_string(), subs: vec![] }], span: sp(line) }
}

fn evar(n: &str, line: u32) -> Expr {
    Expr::Name(dvar(n, line))
}

/// `n = k`
fn seti(n: &str, k: i64, line: u32) -> Stmt {
    Stmt::Assign { target: dvar(n, line), value: Expr::Int(k), atomic: false, span: sp(line) }
}

/// `n = e`
fn sete(n: &str, e: Expr, line: u32) -> Stmt {
    Stmt::Assign { target: dvar(n, line), value: e, atomic: false, span: sp(line) }
}

/// `n == k`
fn eqi(n: &str, k: i64, line: u32) -> Expr {
    Expr::Bin(Bin::Eq, Box::new(evar(n, line)), Box::new(Expr::Int(k)))
}

/// Fresh-name generator seeded with every identifier the unit mentions, so
/// synthesized state variables and temporaries can never collide.
struct TmpGen {
    used: HashSet<String>,
    n: u32,
}

impl TmpGen {
    fn fresh(&mut self, base: &str) -> String {
        loop {
            self.n += 1;
            let c = format!("{base}{}", self.n);
            if self.used.insert(c.clone()) {
                return c;
            }
        }
    }
}

fn names_in_expr(e: &Expr, out: &mut HashSet<String>) {
    match e {
        Expr::Name(d) => names_in_desig(d, out),
        Expr::Bin(_, a, b) => {
            names_in_expr(a, out);
            names_in_expr(b, out);
        }
        Expr::Neg(a) | Expr::Not(a) => names_in_expr(a, out),
        _ => {}
    }
}

fn names_in_desig(d: &Desig, out: &mut HashSet<String>) {
    for p in &d.parts {
        out.insert(p.name.clone());
        for s in &p.subs {
            names_in_expr(s, out);
        }
    }
}

fn names_in_stmt(s: &Stmt, out: &mut HashSet<String>) {
    match s {
        Stmt::Assign { target, value, .. } => {
            names_in_desig(target, out);
            names_in_expr(value, out);
        }
        Stmt::If { arms, else_body, .. } => {
            for (c, b) in arms {
                names_in_expr(c, out);
                for s in b {
                    names_in_stmt(s, out);
                }
            }
            for s in else_body {
                names_in_stmt(s, out);
            }
        }
        Stmt::Do { var, start, end, step, body, .. } => {
            out.insert(var.clone());
            names_in_expr(start, out);
            names_in_expr(end, out);
            if let Some(e) = step {
                names_in_expr(e, out);
            }
            for s in body {
                names_in_stmt(s, out);
            }
        }
        Stmt::DoWhile { cond, body, .. } => {
            names_in_expr(cond, out);
            for s in body {
                names_in_stmt(s, out);
            }
        }
        Stmt::Call { name, args, .. } => {
            out.insert(name.clone());
            for a in args {
                names_in_expr(a, out);
            }
        }
        Stmt::Critical { body, .. } => {
            for s in body {
                names_in_stmt(s, out);
            }
        }
        Stmt::Print { args, .. } => {
            for a in args {
                names_in_expr(a, out);
            }
        }
        _ => {}
    }
}

fn names_in_node(n: &LNode, out: &mut HashSet<String>) {
    match &n.node {
        Node::St(s) => names_in_stmt(s, out),
        Node::Br(b) => match b {
            Branch::Goto(_) => {}
            Branch::CGoto(_, e) | Branch::Arith(e, ..) => names_in_expr(e, out),
            Branch::AGoto(v, _) => {
                out.insert(v.clone());
            }
        },
        Node::Do { var, start, end, step, body, .. } => {
            out.insert(var.clone());
            names_in_expr(start, out);
            names_in_expr(end, out);
            if let Some(e) = step {
                names_in_expr(e, out);
            }
            names_in_body(body, out);
        }
        Node::DoW { cond, body, .. } => {
            names_in_expr(cond, out);
            names_in_body(body, out);
        }
        Node::If { arms, els, .. } => {
            for (c, b) in arms {
                names_in_expr(c, out);
                for n in b {
                    names_in_node(n, out);
                }
            }
            for n in els {
                names_in_node(n, out);
            }
        }
        Node::Crit { body, .. } => {
            for n in body {
                names_in_node(n, out);
            }
        }
    }
}

fn names_in_body(b: &LBody, out: &mut HashSet<String>) {
    match b {
        LBody::Raw(ns) => {
            for n in ns {
                names_in_node(n, out);
            }
        }
        LBody::Done(ss) => {
            for s in ss {
                names_in_stmt(s, out);
            }
        }
    }
}

fn collect_unit_names(acc: &UnitAcc) -> HashSet<String> {
    let mut out = HashSet::new();
    out.insert(acc.name.clone());
    out.extend(acc.params.iter().cloned());
    out.extend(acc.save.iter().cloned());
    out.extend(acc.externals.iter().cloned());
    out.extend(acc.label_assigns.keys().cloned());
    for (_, n, dims, _) in &acc.decls_ty {
        out.insert(n.clone());
        for d in dims.iter().flatten() {
            if let Some(e) = &d.lo {
                names_in_expr(e, &mut out);
            }
            if let Some(e) = &d.hi {
                names_in_expr(e, &mut out);
            }
        }
    }
    for (n, dims, _) in &acc.dimension {
        out.insert(n.clone());
        for d in dims {
            if let Some(e) = &d.lo {
                names_in_expr(e, &mut out);
            }
            if let Some(e) = &d.hi {
                names_in_expr(e, &mut out);
            }
        }
    }
    for ((b, members), _) in &acc.commons {
        out.insert(b.clone());
        for (n, _) in members {
            out.insert(n.clone());
        }
    }
    for (n, e, _) in &acc.params_c {
        out.insert(n.clone());
        names_in_expr(e, &mut out);
    }
    for (g, _) in &acc.equiv {
        for d in g {
            names_in_desig(d, &mut out);
        }
    }
    for ((targets, vals), _) in &acc.data {
        for d in targets {
            names_in_desig(d, &mut out);
        }
        for (_, e) in vals {
            names_in_expr(e, &mut out);
        }
    }
    for n in &acc.body {
        names_in_node(n, &mut out);
    }
    out
}

/// True if the node list (not descending into already-legalized loop
/// bodies) still contains a symbolic branch.
fn has_branch(nodes: &[LNode]) -> bool {
    nodes.iter().any(|n| match &n.node {
        Node::Br(_) => true,
        Node::If { arms, els, .. } => {
            arms.iter().any(|(_, b)| has_branch(b)) || has_branch(els)
        }
        Node::Crit { body, .. } => has_branch(body),
        _ => false,
    })
}

fn has_target_label(nodes: &[LNode], targets: &HashSet<u32>) -> bool {
    nodes.iter().any(|n| {
        n.label.is_some_and(|l| targets.contains(&l))
            || match &n.node {
                Node::If { arms, els, .. } => {
                    arms.iter().any(|(_, b)| has_target_label(b, targets))
                        || has_target_label(els, targets)
                }
                Node::Crit { body, .. } => has_target_label(body, targets),
                _ => false,
            }
    })
}

fn collect_targets(
    nodes: &[LNode],
    la: &HashMap<String, Vec<u32>>,
    out: &mut HashSet<u32>,
) {
    for n in nodes {
        match &n.node {
            Node::Br(b) => match b {
                Branch::Goto(l) => {
                    out.insert(*l);
                }
                Branch::CGoto(ls, _) => out.extend(ls.iter().copied()),
                Branch::AGoto(v, ls) => {
                    if ls.is_empty() {
                        if let Some(xs) = la.get(v) {
                            out.extend(xs.iter().copied());
                        }
                    } else {
                        out.extend(ls.iter().copied());
                    }
                }
                Branch::Arith(_, a, b, c) => {
                    out.insert(*a);
                    out.insert(*b);
                    out.insert(*c);
                }
            },
            Node::If { arms, els, .. } => {
                for (_, b) in arms {
                    collect_targets(b, la, out);
                }
                collect_targets(els, la, out);
            }
            Node::Crit { body, .. } => collect_targets(body, la, out),
            _ => {}
        }
    }
}

/// Rewrites depth-0 `GOTO target` (through IF/CRITICAL, not into nested
/// loops) into CYCLE or EXIT.
fn rewrite_goto(nodes: &mut [LNode], target: u32, to_exit: bool) {
    for n in nodes {
        match &mut n.node {
            Node::Br(Branch::Goto(l)) if *l == target => {
                let line = n.line;
                n.node = Node::St(if to_exit {
                    Stmt::Exit(sp(line))
                } else {
                    Stmt::Cycle(sp(line))
                });
            }
            Node::If { arms, els, .. } => {
                for (_, b) in arms.iter_mut() {
                    rewrite_goto(b, target, to_exit);
                }
                rewrite_goto(els, target, to_exit);
            }
            Node::Crit { body, .. } => rewrite_goto(body, target, to_exit),
            _ => {}
        }
    }
}

/// When a loop body becomes a state machine, its depth-0 EXIT/CYCLE would
/// bind to the machine's DO WHILE instead of the real loop. Compensate:
/// EXIT -> set the escape flag then leave the machine; CYCLE -> just leave
/// the machine (the real loop then iterates normally).
fn compensate(nodes: Vec<LNode>, flag: &str) -> Vec<LNode> {
    let mut out = Vec::with_capacity(nodes.len());
    for mut n in nodes {
        match n.node {
            Node::St(Stmt::Exit(s)) => {
                out.push(LNode {
                    label: n.label,
                    line: n.line,
                    node: Node::St(seti(flag, 1, s.line)),
                });
                out.push(LNode { label: None, line: n.line, node: Node::St(Stmt::Exit(s)) });
            }
            Node::St(Stmt::Cycle(s)) => {
                out.push(LNode { label: n.label, line: n.line, node: Node::St(Stmt::Exit(s)) });
            }
            Node::If { arms, els, line } => {
                let arms = arms
                    .into_iter()
                    .map(|(c, b)| (c, compensate(b, flag)))
                    .collect();
                let els = compensate(els, flag);
                n.node = Node::If { arms, els, line };
                out.push(n);
            }
            Node::Crit { name, body, line } => {
                n.node = Node::Crit { name, body: compensate(body, flag), line };
                out.push(n);
            }
            other => {
                n.node = other;
                out.push(n);
            }
        }
    }
    out
}

#[allow(clippy::large_enum_variant)]
enum FlatItem {
    Label(u32),
    St(Stmt),
    // Branch items carry the source line of the original GO TO / IF so
    // unresolved-label diagnostics point at the jump, not the region.
    Go(u32, u32),
    Cond(Expr, u32, u32),
    CG(Vec<u32>, Expr, u32),
    AG(String, Vec<u32>, u32),
    Ar(Expr, u32, u32, u32, u32),
}

enum Term {
    Fall,
    Go(u32),
    Cond(Expr, u32),
    CG(Vec<u32>, Expr),
    AG(String, Vec<u32>),
    Ar(Expr, u32, u32, u32),
}

struct Blk {
    stmts: Vec<Stmt>,
    term: Term,
    line: u32,
}

/// Per-unit legalizer: owns the fresh-name generator and accumulates the
/// declarations for synthesized temporaries.
struct Lg<'a> {
    file: usize,
    diags: &'a mut Diagnostics,
    format_labels: &'a HashSet<u32>,
    all_labels: &'a HashSet<u32>,
    label_assigns: &'a HashMap<String, Vec<u32>>,
    tmp: TmpGen,
    extra: Vec<(TypeSpec, String)>,
    synth: u32,
}

impl Lg<'_> {
    fn fresh_int(&mut self, base: &str) -> String {
        let n = self.tmp.fresh(base);
        self.extra.push((TypeSpec::Integer, n.clone()));
        n
    }

    fn fresh_real(&mut self, base: &str) -> String {
        let n = self.tmp.fresh(base);
        self.extra.push((TypeSpec::Real8, n.clone()));
        n
    }

    fn synth_label(&mut self) -> u32 {
        self.synth += 1;
        self.synth
    }

    fn legalize_top(&mut self, mut body: Vec<LNode>) -> Vec<Stmt> {
        self.legalize_children(&mut body);
        if !has_branch(&body) {
            return self.assemble(body);
        }
        let line = body.first().map(|n| n.line).unwrap_or(1);
        self.machine(body, line)
    }

    /// Bottom-up: legalize every nested loop body, applying the
    /// GOTO->EXIT rewrite for jumps to the label right after the loop.
    fn legalize_children(&mut self, nodes: &mut [LNode]) {
        let nexts: Vec<Option<u32>> =
            (0..nodes.len()).map(|i| nodes.get(i + 1).and_then(|x| x.label)).collect();
        for (i, n) in nodes.iter_mut().enumerate() {
            match &mut n.node {
                Node::Do { body, .. } | Node::DoW { body, .. } => {
                    if let LBody::Raw(raw) = body {
                        let mut raw = std::mem::take(raw);
                        if let Some(xl) = nexts[i] {
                            rewrite_goto(&mut raw, xl, true);
                        }
                        let stmts = self.legalize_loop_body(raw);
                        *body = LBody::Done(stmts);
                    }
                }
                Node::If { arms, els, .. } => {
                    for (_, b) in arms.iter_mut() {
                        self.legalize_children(b);
                    }
                    self.legalize_children(els);
                }
                Node::Crit { body, .. } => self.legalize_children(body),
                _ => {}
            }
        }
    }

    fn legalize_loop_body(&mut self, mut raw: Vec<LNode>) -> Vec<Stmt> {
        // `GOTO <terminal CONTINUE>` is CYCLE.
        let term = raw.last().and_then(|n| {
            if matches!(n.node, Node::St(Stmt::Continue(_))) {
                n.label
            } else {
                None
            }
        });
        if let Some(l) = term {
            rewrite_goto(&mut raw, l, false);
        }
        self.legalize_children(&mut raw);
        if !has_branch(&raw) {
            return self.assemble(raw);
        }
        let line = raw.first().map(|n| n.line).unwrap_or(1);
        let flag = self.fresh_int("go_x");
        let raw = compensate(raw, &flag);
        let mut out = vec![seti(&flag, 0, line)];
        out.extend(self.machine(raw, line));
        out.push(Stmt::If {
            arms: vec![(eqi(&flag, 1, line), vec![Stmt::Exit(sp(line))])],
            else_body: vec![],
            span: sp(line),
        });
        out
    }

    fn assemble(&mut self, nodes: Vec<LNode>) -> Vec<Stmt> {
        let mut out = Vec::with_capacity(nodes.len());
        for n in nodes {
            let line = n.line;
            out.push(match n.node {
                Node::St(s) => s,
                // Only reachable after a diagnostic was already issued.
                Node::Br(_) => Stmt::Continue(sp(line)),
                Node::Do { var, start, end, step, omp, body, line } => Stmt::Do {
                    var,
                    start,
                    end,
                    step,
                    body: self.done(body),
                    omp,
                    span: sp(line),
                },
                Node::DoW { cond, body, line } => {
                    Stmt::DoWhile { cond, body: self.done(body), span: sp(line) }
                }
                Node::If { arms, els, line } => Stmt::If {
                    arms: arms.into_iter().map(|(c, b)| (c, self.assemble(b))).collect(),
                    else_body: self.assemble(els),
                    span: sp(line),
                },
                Node::Crit { name, body, line } => {
                    Stmt::Critical { name, body: self.assemble(body), span: sp(line) }
                }
            });
        }
        out
    }

    fn done(&mut self, b: LBody) -> Vec<Stmt> {
        match b {
            LBody::Done(s) => s,
            LBody::Raw(ns) => self.assemble(ns),
        }
    }

    fn flatten(&mut self, nodes: Vec<LNode>, targets: &HashSet<u32>, out: &mut Vec<FlatItem>) {
        for n in nodes {
            if let Some(l) = n.label {
                out.push(FlatItem::Label(l));
            }
            let line = n.line;
            match n.node {
                Node::Br(b) => out.push(match b {
                    Branch::Goto(l) => FlatItem::Go(l, line),
                    Branch::CGoto(ls, e) => FlatItem::CG(ls, e, line),
                    Branch::AGoto(v, ls) => FlatItem::AG(v, ls, line),
                    Branch::Arith(e, a, b, c) => FlatItem::Ar(e, a, b, c, line),
                }),
                Node::If { arms, els, line } => {
                    let needs = arms.iter().any(|(_, b)| has_branch(b) || has_target_label(b, targets))
                        || has_branch(&els)
                        || has_target_label(&els, targets);
                    if !needs {
                        let s = self
                            .assemble(vec![LNode { label: None, line, node: Node::If { arms, els, line } }])
                            .pop()
                            .expect("one node in, one out");
                        out.push(FlatItem::St(s));
                    } else if arms.len() == 1
                        && els.is_empty()
                        && arms[0].1.len() == 1
                        && arms[0].1[0].label.is_none()
                        && matches!(arms[0].1[0].node, Node::Br(Branch::Goto(_)))
                    {
                        let (c, mut b) = arms.into_iter().next().expect("one arm");
                        let l = match b.pop().expect("one node").node {
                            Node::Br(Branch::Goto(l)) => l,
                            _ => unreachable!("matched above"),
                        };
                        out.push(FlatItem::Cond(c, l, line));
                    } else {
                        // Decompose into conditional jumps over synthetic labels.
                        let endl = self.synth_label();
                        let armls: Vec<u32> = arms.iter().map(|_| self.synth_label()).collect();
                        for (k, (c, _)) in arms.iter().enumerate() {
                            out.push(FlatItem::Cond(c.clone(), armls[k], line));
                        }
                        let elsel = if els.is_empty() { endl } else { self.synth_label() };
                        out.push(FlatItem::Go(elsel, line));
                        for (k, (_, b)) in arms.into_iter().enumerate() {
                            out.push(FlatItem::Label(armls[k]));
                            self.flatten(b, targets, out);
                            out.push(FlatItem::Go(endl, line));
                        }
                        if !els.is_empty() {
                            out.push(FlatItem::Label(elsel));
                            self.flatten(els, targets, out);
                        }
                        out.push(FlatItem::Label(endl));
                    }
                }
                Node::Crit { name, body, line } => {
                    if has_branch(&body) {
                        self.diags.error_hint(
                            self.file,
                            line,
                            "branch out of a CRITICAL section cannot be legalized",
                            "restructure the critical section without GO TO",
                        );
                    }
                    let body = self.assemble(body);
                    out.push(FlatItem::St(Stmt::Critical { name, body, span: sp(line) }));
                }
                other @ (Node::St(_) | Node::Do { .. } | Node::DoW { .. }) => {
                    let s = self
                        .assemble(vec![LNode { label: None, line, node: other }])
                        .pop()
                        .expect("one node in, one out");
                    out.push(FlatItem::St(s));
                }
            }
        }
    }

    fn resolve(&mut self, l: u32, map: &HashMap<u32, usize>, line: u32) -> i64 {
        if let Some(b) = map.get(&l) {
            (*b + 1) as i64
        } else {
            if self.format_labels.contains(&l) {
                self.diags.error_hint(
                    self.file,
                    line,
                    format!("branch targets FORMAT statement label {l}"),
                    "a GO TO must target an executable statement",
                );
            } else if self.all_labels.contains(&l) {
                self.diags.error_hint(
                    self.file,
                    line,
                    format!("branch to label {l} crosses a DO or IF block boundary"),
                    "jumps into or out of a DO/IF nest are not supported; use EXIT, CYCLE \
                     or restructure with IF/THEN",
                );
            } else {
                self.diags.error_hint(
                    self.file,
                    line,
                    format!("label {l} is not defined in this unit"),
                    "add the labeled statement or fix the GO TO target",
                );
            }
            0
        }
    }

    /// Linearizes a region with irreducible branches into basic blocks
    /// dispatched by a state variable inside `DO WHILE (s /= 0)`.
    fn machine(&mut self, nodes: Vec<LNode>, line: u32) -> Vec<Stmt> {
        let mut targets = HashSet::new();
        collect_targets(&nodes, self.label_assigns, &mut targets);
        let mut items = Vec::new();
        self.flatten(nodes, &targets, &mut items);

        let mut blocks: Vec<Blk> = Vec::new();
        let mut label_block: HashMap<u32, usize> = HashMap::new();
        let mut cur = Blk { stmts: Vec::new(), term: Term::Fall, line };
        for item in items {
            match item {
                FlatItem::Label(l) => {
                    if !cur.stmts.is_empty() {
                        blocks.push(std::mem::replace(
                            &mut cur,
                            Blk { stmts: Vec::new(), term: Term::Fall, line },
                        ));
                    }
                    label_block.insert(l, blocks.len());
                }
                FlatItem::St(s) => cur.stmts.push(s),
                FlatItem::Go(l, tl) => {
                    cur.term = Term::Go(l);
                    cur.line = tl;
                    blocks.push(std::mem::replace(
                        &mut cur,
                        Blk { stmts: Vec::new(), term: Term::Fall, line },
                    ));
                }
                FlatItem::Cond(c, l, tl) => {
                    cur.term = Term::Cond(c, l);
                    cur.line = tl;
                    blocks.push(std::mem::replace(
                        &mut cur,
                        Blk { stmts: Vec::new(), term: Term::Fall, line },
                    ));
                }
                FlatItem::CG(ls, e, tl) => {
                    cur.term = Term::CG(ls, e);
                    cur.line = tl;
                    blocks.push(std::mem::replace(
                        &mut cur,
                        Blk { stmts: Vec::new(), term: Term::Fall, line },
                    ));
                }
                FlatItem::AG(v, ls, tl) => {
                    cur.term = Term::AG(v, ls);
                    cur.line = tl;
                    blocks.push(std::mem::replace(
                        &mut cur,
                        Blk { stmts: Vec::new(), term: Term::Fall, line },
                    ));
                }
                FlatItem::Ar(e, a, b, c, tl) => {
                    cur.term = Term::Ar(e, a, b, c);
                    cur.line = tl;
                    blocks.push(std::mem::replace(
                        &mut cur,
                        Blk { stmts: Vec::new(), term: Term::Fall, line },
                    ));
                }
            }
        }
        blocks.push(cur);

        let sv = self.fresh_int("go_s");
        let n = blocks.len();
        let mut arms = Vec::with_capacity(n);
        for (i, mut blk) in blocks.into_iter().enumerate() {
            let next = if i + 1 < n { (i + 2) as i64 } else { 0 };
            let bl = blk.line;
            match std::mem::replace(&mut blk.term, Term::Fall) {
                Term::Fall => blk.stmts.push(seti(&sv, next, bl)),
                Term::Go(l) => {
                    let st = self.resolve(l, &label_block, bl);
                    blk.stmts.push(seti(&sv, st, bl));
                }
                Term::Cond(c, l) => {
                    let st = self.resolve(l, &label_block, bl);
                    blk.stmts.push(Stmt::If {
                        arms: vec![(c, vec![seti(&sv, st, bl)])],
                        else_body: vec![seti(&sv, next, bl)],
                        span: sp(bl),
                    });
                }
                Term::CG(ls, e) => {
                    let t = self.fresh_int("go_t");
                    blk.stmts.push(sete(&t, e, bl));
                    let mut carms = Vec::with_capacity(ls.len());
                    for (k, l) in ls.iter().enumerate() {
                        let st = self.resolve(*l, &label_block, bl);
                        carms.push((eqi(&t, (k + 1) as i64, bl), vec![seti(&sv, st, bl)]));
                    }
                    blk.stmts.push(Stmt::If {
                        arms: carms,
                        // Out-of-range selector falls through (F77 semantics).
                        else_body: vec![seti(&sv, next, bl)],
                        span: sp(bl),
                    });
                }
                Term::AG(v, ls) => {
                    let ls = if ls.is_empty() {
                        self.label_assigns.get(&v).cloned().unwrap_or_default()
                    } else {
                        ls
                    };
                    if ls.is_empty() {
                        self.diags.error_hint(
                            self.file,
                            bl,
                            format!("assigned GO TO via `{v}` but no ASSIGN statement targets it"),
                            "add `ASSIGN <label> TO var` before the assigned GO TO",
                        );
                    }
                    let mut carms = Vec::with_capacity(ls.len());
                    for l in &ls {
                        let st = self.resolve(*l, &label_block, bl);
                        carms.push((
                            Expr::Bin(
                                Bin::Eq,
                                Box::new(evar(&v, bl)),
                                Box::new(Expr::Int(i64::from(*l))),
                            ),
                            vec![seti(&sv, st, bl)],
                        ));
                    }
                    blk.stmts.push(Stmt::If {
                        arms: carms,
                        else_body: vec![seti(&sv, next, bl)],
                        span: sp(bl),
                    });
                }
                Term::Ar(e, l1, l2, l3) => {
                    let t = self.fresh_real("go_t");
                    blk.stmts.push(sete(&t, e, bl));
                    let s1 = self.resolve(l1, &label_block, bl);
                    let s2 = self.resolve(l2, &label_block, bl);
                    let s3 = self.resolve(l3, &label_block, bl);
                    blk.stmts.push(Stmt::If {
                        arms: vec![
                            (
                                Expr::Bin(
                                    Bin::Lt,
                                    Box::new(evar(&t, bl)),
                                    Box::new(Expr::Real(0.0)),
                                ),
                                vec![seti(&sv, s1, bl)],
                            ),
                            (
                                Expr::Bin(
                                    Bin::Eq,
                                    Box::new(evar(&t, bl)),
                                    Box::new(Expr::Real(0.0)),
                                ),
                                vec![seti(&sv, s2, bl)],
                            ),
                        ],
                        else_body: vec![seti(&sv, s3, bl)],
                        span: sp(bl),
                    });
                }
            }
            arms.push((eqi(&sv, (i + 1) as i64, blk.line), blk.stmts));
        }

        vec![
            seti(&sv, 1, line),
            Stmt::DoWhile {
                cond: Expr::Bin(Bin::Ne, Box::new(evar(&sv, line)), Box::new(Expr::Int(0))),
                body: vec![Stmt::If { arms, else_body: vec![], span: sp(line) }],
                span: sp(line),
            },
        ]
    }
}

/// Legalizes a unit's body in place, appending declarations for any
/// synthesized state variables and temporaries.
fn legalize_unit(acc: &mut UnitAcc, diags: &mut Diagnostics) -> Vec<Stmt> {
    let used = collect_unit_names(acc);
    let body = std::mem::take(&mut acc.body);
    let mut lg = Lg {
        file: acc.file,
        diags,
        format_labels: &acc.format_labels,
        all_labels: &acc.labels,
        label_assigns: &acc.label_assigns,
        tmp: TmpGen { used, n: 0 },
        extra: Vec::new(),
        synth: 1_000_000,
    };
    let stmts = lg.legalize_top(body);
    let extra = std::mem::take(&mut lg.extra);
    for (ts, n) in extra {
        acc.decls_ty.push((ts, n, None, acc.line));
    }
    stmts
}

// ---------------------------------------------------------------------------
// Phase 6: unit finalization — IMPLICIT typing, PARAMETER folding,
// EQUIVALENCE aliasing, DATA expansion, synthesized declarations — and the
// multi-file ProgramSet entry point.
// ---------------------------------------------------------------------------

/// Folds a constant expression to a literal, resolving named constants.
fn cfold(e: &Expr, consts: &HashMap<String, Expr>) -> Option<Expr> {
    fn num(e: &Expr) -> Option<f64> {
        match e {
            Expr::Int(i) => Some(*i as f64),
            Expr::Real(r) => Some(*r),
            _ => None,
        }
    }
    Some(match e {
        Expr::Int(_) | Expr::Real(_) | Expr::Logical(_) | Expr::Str(_) => e.clone(),
        Expr::Name(d) => {
            if d.parts.len() == 1 && d.parts[0].subs.is_empty() {
                consts.get(&d.parts[0].name)?.clone()
            } else {
                return None;
            }
        }
        Expr::Neg(a) => match cfold(a, consts)? {
            Expr::Int(i) => Expr::Int(i.wrapping_neg()),
            Expr::Real(r) => Expr::Real(-r),
            _ => return None,
        },
        Expr::Not(a) => match cfold(a, consts)? {
            Expr::Logical(b) => Expr::Logical(!b),
            _ => return None,
        },
        Expr::Bin(op, a, b) => {
            let a = cfold(a, consts)?;
            let b = cfold(b, consts)?;
            match (op, &a, &b) {
                (Bin::Add, Expr::Int(x), Expr::Int(y)) => Expr::Int(x.wrapping_add(*y)),
                (Bin::Sub, Expr::Int(x), Expr::Int(y)) => Expr::Int(x.wrapping_sub(*y)),
                (Bin::Mul, Expr::Int(x), Expr::Int(y)) => Expr::Int(x.wrapping_mul(*y)),
                (Bin::Div, Expr::Int(x), Expr::Int(y)) if *y != 0 => Expr::Int(x / y),
                (Bin::Pow, Expr::Int(x), Expr::Int(y)) if (0..=62).contains(y) => {
                    Expr::Int(x.checked_pow(*y as u32)?)
                }
                (Bin::Add, _, _) => Expr::Real(num(&a)? + num(&b)?),
                (Bin::Sub, _, _) => Expr::Real(num(&a)? - num(&b)?),
                (Bin::Mul, _, _) => Expr::Real(num(&a)? * num(&b)?),
                (Bin::Div, _, _) => Expr::Real(num(&a)? / num(&b)?),
                (Bin::Pow, _, _) => Expr::Real(num(&a)?.powf(num(&b)?)),
                (Bin::Eq, Expr::Logical(x), Expr::Logical(y)) => Expr::Logical(x == y),
                (Bin::Ne, Expr::Logical(x), Expr::Logical(y)) => Expr::Logical(x != y),
                (Bin::Eq, _, _) => Expr::Logical(num(&a)? == num(&b)?),
                (Bin::Ne, _, _) => Expr::Logical(num(&a)? != num(&b)?),
                (Bin::Lt, _, _) => Expr::Logical(num(&a)? < num(&b)?),
                (Bin::Le, _, _) => Expr::Logical(num(&a)? <= num(&b)?),
                (Bin::Gt, _, _) => Expr::Logical(num(&a)? > num(&b)?),
                (Bin::Ge, _, _) => Expr::Logical(num(&a)? >= num(&b)?),
                (Bin::And, Expr::Logical(x), Expr::Logical(y)) => Expr::Logical(*x && *y),
                (Bin::Or, Expr::Logical(x), Expr::Logical(y)) => Expr::Logical(*x || *y),
                _ => return None,
            }
        }
    })
}

/// Folded `(lo, hi)` bounds of each dimension; `None` if non-constant.
fn fold_extents(
    dims: &[DimDecl],
    consts: &HashMap<String, Expr>,
) -> Option<Vec<(i64, i64)>> {
    let mut out = Vec::with_capacity(dims.len());
    for d in dims {
        if d.deferred {
            return None;
        }
        let lo = match &d.lo {
            Some(e) => match cfold(e, consts)? {
                Expr::Int(i) => i,
                _ => return None,
            },
            None => 1,
        };
        let hi = match cfold(d.hi.as_ref()?, consts)? {
            Expr::Int(i) => i,
            _ => return None,
        };
        out.push((lo, hi));
    }
    Some(out)
}

fn extent_count(ex: &[(i64, i64)]) -> i64 {
    ex.iter().map(|(lo, hi)| (hi - lo + 1).max(0)).product()
}

/// The per-unit implicit typing map, one slot per letter a..z.
fn build_imap(acc: &UnitAcc) -> [Option<TypeSpec>; 26] {
    let mut m: [Option<TypeSpec>; 26] = Default::default();
    if !acc.implicit_none {
        for (i, slot) in m.iter_mut().enumerate() {
            let c = (b'a' + i as u8) as char;
            *slot = Some(if ('i'..='n').contains(&c) { TypeSpec::Integer } else { TypeSpec::Real });
        }
    }
    for (ts, ranges) in &acc.implicit {
        for (a, b) in ranges {
            let (a, b) = (a.to_ascii_lowercase(), b.to_ascii_lowercase());
            for c in a..=b {
                if c.is_ascii_lowercase() {
                    m[(c as u8 - b'a') as usize] = Some(ts.clone());
                }
            }
        }
    }
    m
}

fn imp_ty(imap: &[Option<TypeSpec>; 26], name: &str) -> Option<TypeSpec> {
    let c = name.chars().next()?.to_ascii_lowercase();
    if c.is_ascii_lowercase() {
        imap[(c as u8 - b'a') as usize].clone()
    } else {
        None
    }
}

// --- EQUIVALENCE renaming over the legalized body ---------------------------

fn rename_desig(d: &mut Desig, map: &HashMap<String, String>) {
    if let Some(nn) = map.get(&d.parts[0].name) {
        d.parts[0].name = nn.clone();
    }
    for p in &mut d.parts {
        for s in &mut p.subs {
            rename_expr(s, map);
        }
    }
}

fn rename_expr(e: &mut Expr, map: &HashMap<String, String>) {
    match e {
        Expr::Name(d) => rename_desig(d, map),
        Expr::Bin(_, a, b) => {
            rename_expr(a, map);
            rename_expr(b, map);
        }
        Expr::Neg(a) | Expr::Not(a) => rename_expr(a, map),
        _ => {}
    }
}

fn rename_stmt(s: &mut Stmt, map: &HashMap<String, String>) {
    match s {
        Stmt::Assign { target, value, .. } => {
            rename_desig(target, map);
            rename_expr(value, map);
        }
        Stmt::If { arms, else_body, .. } => {
            for (c, b) in arms {
                rename_expr(c, map);
                for s in b {
                    rename_stmt(s, map);
                }
            }
            for s in else_body {
                rename_stmt(s, map);
            }
        }
        Stmt::Do { var, start, end, step, body, .. } => {
            if let Some(nn) = map.get(var) {
                *var = nn.clone();
            }
            rename_expr(start, map);
            rename_expr(end, map);
            if let Some(e) = step {
                rename_expr(e, map);
            }
            for s in body {
                rename_stmt(s, map);
            }
        }
        Stmt::DoWhile { cond, body, .. } => {
            rename_expr(cond, map);
            for s in body {
                rename_stmt(s, map);
            }
        }
        Stmt::Call { args, .. } => {
            for a in args {
                rename_expr(a, map);
            }
        }
        Stmt::Critical { body, .. } => {
            for s in body {
                rename_stmt(s, map);
            }
        }
        Stmt::Print { args, .. } => {
            for a in args {
                rename_expr(a, map);
            }
        }
        _ => {}
    }
}

// --- bare-name collection for implicit typing -------------------------------

fn bare_expr(e: &Expr, out: &mut HashSet<String>) {
    match e {
        Expr::Name(d) => {
            if d.parts.len() == 1 && d.parts[0].subs.is_empty() {
                out.insert(d.parts[0].name.clone());
            }
            for p in &d.parts {
                for s in &p.subs {
                    bare_expr(s, out);
                }
            }
        }
        Expr::Bin(_, a, b) => {
            bare_expr(a, out);
            bare_expr(b, out);
        }
        Expr::Neg(a) | Expr::Not(a) => bare_expr(a, out),
        _ => {}
    }
}

fn bare_stmt(s: &Stmt, out: &mut HashSet<String>) {
    match s {
        Stmt::Assign { target, value, .. } => {
            out.insert(target.parts[0].name.clone());
            for p in &target.parts {
                for e in &p.subs {
                    bare_expr(e, out);
                }
            }
            bare_expr(value, out);
        }
        Stmt::If { arms, else_body, .. } => {
            for (c, b) in arms {
                bare_expr(c, out);
                for s in b {
                    bare_stmt(s, out);
                }
            }
            for s in else_body {
                bare_stmt(s, out);
            }
        }
        Stmt::Do { var, start, end, step, body, .. } => {
            out.insert(var.clone());
            bare_expr(start, out);
            bare_expr(end, out);
            if let Some(e) = step {
                bare_expr(e, out);
            }
            for s in body {
                bare_stmt(s, out);
            }
        }
        Stmt::DoWhile { cond, body, .. } => {
            bare_expr(cond, out);
            for s in body {
                bare_stmt(s, out);
            }
        }
        Stmt::Call { args, .. } => {
            for a in args {
                bare_expr(a, out);
            }
        }
        Stmt::Critical { body, .. } => {
            for s in body {
                bare_stmt(s, out);
            }
        }
        Stmt::Print { args, .. } => {
            for a in args {
                bare_expr(a, out);
            }
        }
        _ => {}
    }
}

#[derive(Default)]
struct Rec {
    ty: Option<TypeSpec>,
    dims: Option<Vec<DimDecl>>,
    line: u32,
    common: Option<String>,
    removed: bool,
}

fn ent<'a>(
    recs: &'a mut HashMap<String, Rec>,
    order: &mut Vec<String>,
    n: &str,
    line: u32,
) -> &'a mut Rec {
    if !recs.contains_key(n) {
        order.push(n.to_string());
        recs.insert(n.to_string(), Rec { line, ..Default::default() });
    }
    recs.get_mut(n).expect("just inserted")
}

fn zero_of(ty: &TypeSpec) -> Expr {
    match ty {
        TypeSpec::Integer => Expr::Int(0),
        TypeSpec::Logical => Expr::Logical(false),
        _ => Expr::Real(0.0),
    }
}

enum InitAcc {
    Scalar(Option<Expr>),
    Arr(Vec<Option<Expr>>),
}

/// Finalizes one accumulated unit into a free-form AST `Unit`: legalizes
/// control flow, applies IMPLICIT typing, folds PARAMETERs, resolves
/// EQUIVALENCE aliases, expands DATA and synthesizes missing declarations.
fn finalize_unit(
    mut acc: UnitAcc,
    unit_names: &HashSet<String>,
    diags: &mut Diagnostics,
) -> Unit {
    let file = acc.file;
    let mut body = legalize_unit(&mut acc, diags);
    let imap = build_imap(&acc);

    let mut order: Vec<String> = Vec::new();
    let mut recs: HashMap<String, Rec> = HashMap::new();

    for (ts, n, dims, line) in std::mem::take(&mut acc.decls_ty) {
        let r = ent(&mut recs, &mut order, &n, line);
        if r.ty.is_some() {
            diags.error(file, line, format!("`{n}` is declared more than once"));
        } else {
            r.ty = Some(ts);
        }
        if let Some(d) = dims {
            if r.dims.is_some() {
                diags.error(file, line, format!("`{n}` is dimensioned more than once"));
            } else {
                r.dims = Some(d);
            }
        }
    }
    for (n, d, line) in std::mem::take(&mut acc.dimension) {
        let r = ent(&mut recs, &mut order, &n, line);
        if r.dims.is_some() {
            diags.error(file, line, format!("`{n}` is dimensioned more than once"));
        } else {
            r.dims = Some(d);
        }
    }

    let mut commons_out: Vec<(String, Vec<String>)> = Vec::new();
    for ((b, members), line) in std::mem::take(&mut acc.commons) {
        let names: Vec<String> = members.iter().map(|(n, _)| n.clone()).collect();
        for (n, dims) in members {
            let r = ent(&mut recs, &mut order, &n, line);
            if let Some(d) = dims {
                if r.dims.is_some() {
                    diags.error(file, line, format!("`{n}` is dimensioned more than once"));
                } else {
                    r.dims = Some(d);
                }
            }
            if r.common.is_some() {
                diags.error(file, line, format!("`{n}` appears in COMMON more than once"));
            } else {
                r.common = Some(b.clone());
            }
        }
        if let Some((_, v)) = commons_out.iter_mut().find(|(bb, _)| *bb == b) {
            v.extend(names);
        } else {
            commons_out.push((b, names));
        }
    }

    // PARAMETER constants fold in declaration order; later parameters may
    // reference earlier ones.
    let mut consts: HashMap<String, Expr> = HashMap::new();
    let mut param_decls: Vec<Decl> = Vec::new();
    for (n, e, line) in &acc.params_c {
        let Some(lit) = cfold(e, &consts) else {
            diags.error_hint(
                file,
                *line,
                format!("PARAMETER `{n}` is not a constant expression"),
                "parameter values must fold to literals (earlier parameters may be used)",
            );
            continue;
        };
        let ty = recs.get(n).and_then(|r| r.ty.clone()).or_else(|| imp_ty(&imap, n));
        let Some(ty) = ty else {
            diags.error_hint(
                file,
                *line,
                format!("`{n}` has no explicit type and IMPLICIT NONE is in effect"),
                "add a type declaration",
            );
            continue;
        };
        if let Some(r) = recs.get_mut(n) {
            if r.dims.is_some() || r.common.is_some() {
                diags.error(
                    file,
                    *line,
                    format!("PARAMETER `{n}` cannot be an array or a COMMON member"),
                );
            }
            r.removed = true;
        }
        consts.insert(n.clone(), lit.clone());
        param_decls.push(Decl {
            spec: ty,
            attrs: Attrs { parameter: true, ..Default::default() },
            entities: vec![Entity { name: n.clone(), dims: None, init: Some(lit), init_list: None }],
            span: sp(*line),
        });
    }

    // EQUIVALENCE: merge groups transitively, then alias whole variables.
    let mut groups: Vec<(Vec<String>, u32)> = Vec::new();
    for (g, line) in &acc.equiv {
        let mut names = Vec::new();
        for d in g {
            if d.parts.len() == 1 && d.parts[0].subs.is_empty() {
                names.push(d.parts[0].name.clone());
            } else {
                diags.error_hint(
                    file,
                    *line,
                    "only whole-variable EQUIVALENCE is supported",
                    "element or substring equivalence cannot be mapped onto the exact-alias \
                     storage model",
                );
            }
        }
        if names.len() < 2 {
            continue;
        }
        let (inter, keep): (Vec<_>, Vec<_>) = groups
            .drain(..)
            .partition(|(g, _)| g.iter().any(|x| names.contains(x)));
        let mut merged = names;
        let mut gl = *line;
        for (g, l) in inter {
            gl = gl.min(l);
            for x in g {
                if !merged.contains(&x) {
                    merged.push(x);
                }
            }
        }
        let mut dedup = Vec::new();
        for x in merged {
            if !dedup.contains(&x) {
                dedup.push(x);
            }
        }
        groups = keep;
        groups.push((dedup, gl));
    }
    let mut ren: HashMap<String, String> = HashMap::new();
    for (g, gline) in &groups {
        let commoners: Vec<&String> =
            g.iter().filter(|n| recs.get(*n).is_some_and(|r| r.common.is_some())).collect();
        if commoners.len() > 1 {
            diags.error_hint(
                file,
                *gline,
                format!(
                    "EQUIVALENCE connects two COMMON members (`{}`, `{}`)",
                    commoners[0], commoners[1]
                ),
                "an equivalence class may contain at most one COMMON member",
            );
            continue;
        }
        let canon = commoners.first().map(|s| (*s).clone()).unwrap_or_else(|| g[0].clone());
        let cty = recs.get(&canon).and_then(|r| r.ty.clone()).or_else(|| imp_ty(&imap, &canon));
        let cex = recs
            .get(&canon)
            .and_then(|r| r.dims.as_ref())
            .map(|d| fold_extents(d, &consts))
            .unwrap_or(Some(Vec::new()));
        for m in g {
            if *m == canon {
                continue;
            }
            let mty = recs.get(m).and_then(|r| r.ty.clone()).or_else(|| imp_ty(&imap, m));
            let mex = recs
                .get(m)
                .and_then(|r| r.dims.as_ref())
                .map(|d| fold_extents(d, &consts))
                .unwrap_or(Some(Vec::new()));
            if mty != cty || mex != cex {
                diags.error_hint(
                    file,
                    *gline,
                    format!("EQUIVALENCE of `{canon}` and `{m}` with conflicting type or shape"),
                    "only exact-alias EQUIVALENCE (identical type and shape) is supported",
                );
                continue;
            }
            ren.insert(m.clone(), canon.clone());
            if let Some(r) = recs.get_mut(m) {
                r.removed = true;
            }
            if acc.save.contains(m) {
                acc.save.insert(canon.clone());
            }
        }
    }
    if !ren.is_empty() {
        for s in &mut body {
            rename_stmt(s, &ren);
        }
        for ((targets, _), _) in &mut acc.data {
            for d in targets {
                rename_desig(d, &ren);
            }
        }
    }

    // DATA: fold values, map targets onto scalars / whole arrays /
    // constant-subscript elements, force SAVE on initialized locals.
    let mut inits: HashMap<String, InitAcc> = HashMap::new();
    for ((targets, vals), line) in std::mem::take(&mut acc.data) {
        let mut flat: Vec<Expr> = Vec::new();
        let mut ok = true;
        for (rep, e) in &vals {
            match cfold(e, &consts) {
                Some(l) => flat.extend(std::iter::repeat_n(l, *rep)),
                None => {
                    diags.error_hint(
                        file,
                        line,
                        "DATA value is not a constant",
                        "DATA values must fold to literals",
                    );
                    ok = false;
                }
            }
        }
        if !ok {
            continue;
        }
        struct Slot {
            name: String,
            arr_len: Option<i64>,
            idx: Option<i64>,
            count: i64,
        }
        let mut slots: Vec<Slot> = Vec::new();
        let mut total = 0i64;
        for d in &targets {
            if d.parts.len() != 1 {
                diags.error(file, line, "DATA target must be a variable or array element");
                ok = false;
                continue;
            }
            let n = d.parts[0].name.clone();
            if acc.params.contains(&n) {
                diags.error(file, line, format!("DATA initializes dummy argument `{n}`"));
                ok = false;
                continue;
            }
            let dims = recs.get(&n).and_then(|r| r.dims.clone());
            let subs = &d.parts[0].subs;
            if subs.is_empty() {
                match dims {
                    None => {
                        slots.push(Slot { name: n, arr_len: None, idx: None, count: 1 });
                        total += 1;
                    }
                    Some(ds) => match fold_extents(&ds, &consts) {
                        Some(ex) => {
                            let c = extent_count(&ex);
                            slots.push(Slot { name: n, arr_len: Some(c), idx: None, count: c });
                            total += c;
                        }
                        None => {
                            diags.error(
                                file,
                                line,
                                format!("`{n}`: array bounds are not constant"),
                            );
                            ok = false;
                        }
                    },
                }
            } else {
                let Some(ds) = dims else {
                    diags.error(file, line, format!("`{n}` is not an array"));
                    ok = false;
                    continue;
                };
                let Some(ex) = fold_extents(&ds, &consts) else {
                    diags.error(file, line, format!("`{n}`: array bounds are not constant"));
                    ok = false;
                    continue;
                };
                if subs.len() != ex.len() {
                    diags.error(
                        file,
                        line,
                        format!("`{n}`: wrong number of subscripts in DATA target"),
                    );
                    ok = false;
                    continue;
                }
                let mut idx = 0i64;
                let mut stride = 1i64;
                let mut sok = true;
                for (s, (lo, hi)) in subs.iter().zip(&ex) {
                    match cfold(s, &consts) {
                        Some(Expr::Int(v)) if (*lo..=*hi).contains(&v) => {
                            idx += (v - lo) * stride;
                            stride *= hi - lo + 1;
                        }
                        Some(Expr::Int(_)) => {
                            diags.error(
                                file,
                                line,
                                format!("`{n}`: DATA subscript out of bounds"),
                            );
                            sok = false;
                            break;
                        }
                        _ => {
                            diags.error(
                                file,
                                line,
                                format!("`{n}`: DATA subscript is not constant"),
                            );
                            sok = false;
                            break;
                        }
                    }
                }
                if !sok {
                    ok = false;
                    continue;
                }
                let c = extent_count(&ex);
                slots.push(Slot { name: n, arr_len: Some(c), idx: Some(idx), count: 1 });
                total += 1;
            }
        }
        if !ok {
            continue;
        }
        if total != flat.len() as i64 {
            diags.error_hint(
                file,
                line,
                format!(
                    "DATA statement has {} value(s) for {} element(s)",
                    flat.len(),
                    total
                ),
                "the value list must match the target list exactly",
            );
            continue;
        }
        let mut it = flat.into_iter();
        for s in slots {
            ent(&mut recs, &mut order, &s.name, line);
            let slot = inits.entry(s.name.clone()).or_insert_with(|| match s.arr_len {
                Some(l) => InitAcc::Arr(vec![None; l.max(0) as usize]),
                None => InitAcc::Scalar(None),
            });
            let mut put = |cell: &mut Option<Expr>, v: Expr| {
                if cell.is_some() {
                    diags.error(
                        file,
                        line,
                        format!("`{}` is DATA-initialized more than once", s.name),
                    );
                } else {
                    *cell = Some(v);
                }
            };
            match (slot, s.idx) {
                (InitAcc::Scalar(c), _) => put(c, it.next().expect("count checked")),
                (InitAcc::Arr(v), Some(i)) => {
                    put(&mut v[i as usize], it.next().expect("count checked"))
                }
                (InitAcc::Arr(v), None) => {
                    for cell in v.iter_mut() {
                        put(cell, it.next().expect("count checked"));
                    }
                }
            }
            let _ = s.count;
        }
    }
    for n in inits.keys() {
        if recs.get(n).is_none_or(|r| r.common.is_none()) {
            acc.save.insert(n.clone());
        }
    }

    // Synthesize declarations for dummies and implicitly-typed locals.
    let mut used = HashSet::new();
    for s in &body {
        bare_stmt(s, &mut used);
    }
    let mut scan: Vec<String> = acc.params.clone();
    let mut rest: Vec<String> = used
        .iter()
        .filter(|n| {
            !recs.contains_key(*n)
                && !consts.contains_key(*n)
                && !acc.params.contains(*n)
                && **n != acc.name
                && !acc.externals.contains(*n)
                && !unit_names.contains(*n)
                && crate::intrinsics::Intr::from_name(n).is_none()
        })
        .cloned()
        .collect();
    rest.sort();
    scan.extend(rest);
    for n in scan {
        if recs.contains_key(&n) {
            continue;
        }
        match imp_ty(&imap, &n) {
            Some(t) => {
                let r = ent(&mut recs, &mut order, &n, acc.line);
                r.ty = Some(t);
            }
            None => diags.error_hint(
                file,
                acc.line,
                format!("`{n}` has no explicit type and IMPLICIT NONE is in effect"),
                "add a type declaration",
            ),
        }
    }

    // Untyped FUNCTION heads take their result type from an in-body
    // declaration or the implicit map; the placeholder decl is dropped.
    let mut kind = acc.kind.clone();
    if matches!(kind, UnitKind::Function(_)) {
        if acc.untyped_function {
            let ty =
                recs.get(&acc.name).and_then(|r| r.ty.clone()).or_else(|| imp_ty(&imap, &acc.name));
            match ty {
                Some(t) => kind = UnitKind::Function(t),
                None => diags.error_hint(
                    file,
                    acc.line,
                    format!("function `{}` has no result type", acc.name),
                    "declare the function name or give it an implicit type",
                ),
            }
        }
        if let Some(r) = recs.get_mut(&acc.name) {
            r.removed = true;
        }
    }

    // Emit declarations: parameters first (array bounds may use them).
    let mut decls = param_decls;
    for n in &order {
        let r = &recs[n];
        if r.removed {
            continue;
        }
        let Some(ty) = r.ty.clone().or_else(|| imp_ty(&imap, n)) else {
            diags.error_hint(
                file,
                r.line.max(1),
                format!("`{n}` has no explicit type and IMPLICIT NONE is in effect"),
                "add a type declaration",
            );
            continue;
        };
        let (init, init_list) = match inits.remove(n) {
            Some(InitAcc::Scalar(v)) => (v, None),
            Some(InitAcc::Arr(v)) => (
                None,
                Some(v.into_iter().map(|o| o.unwrap_or_else(|| zero_of(&ty))).collect()),
            ),
            None => (None, None),
        };
        let saved = (acc.save_all || acc.save.contains(n))
            && r.common.is_none()
            && !acc.params.contains(n);
        decls.push(Decl {
            spec: ty,
            attrs: Attrs { dims: None, allocatable: false, save: saved, parameter: false },
            entities: vec![Entity { name: n.clone(), dims: r.dims.clone(), init, init_list }],
            span: sp(r.line.max(1)),
        });
    }

    Unit {
        kind,
        name: acc.name,
        params: acc.params,
        uses: Vec::new(),
        decls,
        commons: commons_out,
        body,
        span: sp(acc.line),
    }
}

// ---------------------------------------------------------------------------
// ProgramSet: the multi-file entry point.
// ---------------------------------------------------------------------------

/// A multi-file compilation: fixed-form F77 sources are lowered through the
/// legacy front end, free-form sources go through [`crate::parse`]; the
/// result is one combined [`Ast`] in which COMMON blocks and calls resolve
/// across every file.
pub struct ProgramSet {
    /// The combined AST, ready for [`crate::sema`].
    pub ast: Ast,
    /// Warnings accumulated by the fixed-form front end (empty when all
    /// sources are free-form and clean).
    pub warnings: Diagnostics,
}

impl ProgramSet {
    /// Parses every source (auto-detecting fixed vs. free form per file)
    /// and combines them. Fixed-form errors do not stop at the first
    /// problem: the returned [`CompileError::Fixed`] carries the full
    /// accumulated diagnostics for all files.
    pub fn from_sources(sources: &[&str]) -> Result<ProgramSet, CompileError> {
        let mut diags = Diagnostics::default();
        let mut ast = Ast::default();
        let mut fixed: Vec<(usize, Vec<UnitAcc>)> = Vec::new();
        for (k, src) in sources.iter().enumerate() {
            if is_fixed_form(src) {
                let accs = lower_source(src, k, &mut diags);
                fixed.push((k, accs));
            } else {
                match crate::parse::parse(src) {
                    Ok(a) => ast.modules.extend(a.modules),
                    Err(e) => diags.absorb(k, &e),
                }
            }
        }
        // Unit names must be known globally before finalization so that
        // cross-file calls are not mistaken for implicitly-typed locals.
        let mut unit_names: HashSet<String> = HashSet::new();
        for m in &ast.modules {
            for u in &m.units {
                unit_names.insert(u.name.clone());
            }
        }
        for (_, accs) in &fixed {
            for a in accs {
                unit_names.insert(a.name.clone());
            }
        }
        for (k, accs) in fixed {
            let mut units = Vec::new();
            for acc in accs {
                units.push(finalize_unit(acc, &unit_names, &mut diags));
            }
            ast.modules.push(Module {
                name: format!("f77_file{k}"),
                uses: Vec::new(),
                typedefs: Vec::new(),
                decls: Vec::new(),
                threadprivate: Vec::new(),
                units,
                span: sp(1),
            });
        }
        if diags.has_errors() {
            return Err(CompileError::Fixed { diags });
        }
        Ok(ProgramSet { ast, warnings: diags })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{ArgVal, Engine};
    use crate::interp::{ExecMode, Val};

    fn run1(src: &str, unit: &str, args: &[ArgVal]) -> Option<Val> {
        let engine = Engine::compile(&[src]).expect("compile");
        engine
            .run_tiered(unit, args, ExecMode::Serial, crate::engine::ExecTier::Vm)
            .expect("run")
            .result
    }

    #[test]
    fn detects_fixed_form() {
        assert!(is_fixed_form("      PROGRAM MAIN\n      END\n"));
        assert!(is_fixed_form("C comment\n      X = 1\n      END\n"));
        assert!(!is_fixed_form("module m\ncontains\nend module m\n"));
    }

    #[test]
    fn classic_common_data_do() {
        let src = "
C     CLASSIC FIXED-FORM KERNEL
      PROGRAM MAIN
      COMMON /BLK/ A(10), S
      INTEGER I
      DATA A /10*0.0/
      S = 0.0
      DO 10 I = 1, 10
         A(I) = I*2.0
   10 CONTINUE
      DO 20 I = 1, 10
         S = S + A(I)
   20 CONTINUE
      END
";
        let engine = Engine::compile(&[src]).expect("compile");
        engine
            .run_tiered("main", &[], ExecMode::Serial, crate::engine::ExecTier::Vm)
            .expect("run");
        assert_eq!(engine.global_scalar("common blk::s"), Some(Val::F(110.0)));
    }

    #[test]
    fn goto_loop_becomes_state_machine() {
        let src = "
      REAL FUNCTION ACCUM(N)
      INTEGER N, I
      ACCUM = 0.0
      I = 0
   30 I = I + 1
      IF (I .GT. N) GOTO 40
      ACCUM = ACCUM + 1.5
      GOTO 30
   40 CONTINUE
      END
";
        assert_eq!(run1(src, "accum", &[ArgVal::I(5)]), Some(Val::F(7.5)));
    }

    #[test]
    fn computed_goto_dispatch() {
        let src = "
      INTEGER FUNCTION PICK(K)
      INTEGER K, R
      R = 0
      GOTO (110, 120, 130), K
      R = -1
      GOTO 140
  110 R = 11
      GOTO 140
  120 R = 22
      GOTO 140
  130 R = 33
  140 CONTINUE
      PICK = R
      END
";
        for (k, want) in [(1i64, 11i64), (2, 22), (3, 33), (7, -1)] {
            assert_eq!(run1(src, "pick", &[ArgVal::I(k)]), Some(Val::I(want)));
        }
    }

    #[test]
    fn arithmetic_if_three_way() {
        let src = "
      INTEGER FUNCTION SGN(X)
      REAL X
      IF (X) 1, 2, 3
    1 SGN = -1
      GOTO 4
    2 SGN = 0
      GOTO 4
    3 SGN = 1
    4 CONTINUE
      END
";
        for (x, want) in [(-2.5f64, -1i64), (0.0, 0), (9.0, 1)] {
            assert_eq!(run1(src, "sgn", &[ArgVal::F(x)]), Some(Val::I(want)));
        }
    }

    #[test]
    fn continuation_and_blank_insensitivity() {
        let src = "
      INTEGER FUNCTION TRICKY(N)
      IN TE GER N, K
      K = N +
     &    N +
     1    N
      DO10K=K,K
   10 CONTINUE
      TRICKY = K
      END
";
        assert_eq!(run1(src, "tricky", &[ArgVal::I(4)]), Some(Val::I(12)));
    }

    #[test]
    fn do10i_assignment_vs_loop() {
        // `DO10I = 1.5` is an assignment to DO10I; `DO 10 I = 1, 5` loops.
        let src = "
      REAL FUNCTION AMBIG(N)
      INTEGER N, I
      REAL DO10I
      DO10I = 1.5
      DO 10 I = 1, N
         DO10I = DO10I + 1.0
   10 CONTINUE
      AMBIG = DO10I
      END
";
        assert_eq!(run1(src, "ambig", &[ArgVal::I(3)]), Some(Val::F(4.5)));
    }

    #[test]
    fn multi_file_common_and_implicit_main() {
        let f1 = "
      SUBROUTINE SETUP(N)
      INTEGER N, I
      COMMON /SHARED/ V(8), TOTAL
      DO 10 I = 1, N
         V(I) = I * 1.0
   10 CONTINUE
      TOTAL = 0.0
      END
";
        let f2 = "
      COMMON /SHARED/ V(8), TOTAL
      INTEGER J
      CALL SETUP(8)
      DO 20 J = 1, 8
         TOTAL = TOTAL + V(J)
   20 CONTINUE
      END
";
        let engine = Engine::compile(&[f1, f2]).expect("compile");
        engine
            .run_tiered("main", &[], ExecMode::Serial, crate::engine::ExecTier::Vm)
            .expect("run");
        assert_eq!(engine.global_scalar("common shared::total"), Some(Val::F(36.0)));
    }

    #[test]
    fn equivalence_exact_alias() {
        let src = "
      REAL FUNCTION EQV(X)
      REAL X, A, B
      EQUIVALENCE (A, B)
      A = X
      B = B + 1.0
      EQV = A
      END
";
        assert_eq!(run1(src, "eqv", &[ArgVal::F(2.0)]), Some(Val::F(3.0)));
    }

    #[test]
    fn implicit_typing_and_parameter() {
        let src = "
      FUNCTION SCALE(J)
      PARAMETER (FACTOR = 2.5)
      SCALE = J * FACTOR
      END
";
        // SCALE and FACTOR are implicitly REAL, J implicitly INTEGER.
        assert_eq!(run1(src, "scale", &[ArgVal::I(4)]), Some(Val::F(10.0)));
    }

    #[test]
    fn save_and_data_persist_across_calls() {
        let src = "
      INTEGER FUNCTION COUNTER()
      INTEGER C
      DATA C /100/
      C = C + 1
      COUNTER = C
      END
";
        let engine = Engine::compile(&[src]).expect("compile");
        for want in [101i64, 102, 103] {
            let got = engine
                .run_tiered("counter", &[], ExecMode::Serial, crate::engine::ExecTier::Vm)
                .expect("run")
                .result;
            assert_eq!(got, Some(Val::I(want)));
        }
    }

    #[test]
    fn malformed_source_reports_every_error() {
        let src = "
      PROGRAM BAD
      INTEGER I
      GOTO 999
      I = )( + 1
      X = UNDEF(
      END
";
        let err = match Engine::compile(&[src]) {
            Ok(_) => panic!("must fail"),
            Err(e) => e,
        };
        let msg = err.to_string();
        assert!(msg.contains("label 999 is not defined"), "{msg}");
        assert!(msg.contains("error"), "{msg}");
        match err {
            CompileError::Fixed { diags } => {
                assert!(diags.error_count() >= 2, "wanted multiple errors: {}", diags.render());
            }
            other => panic!("expected Fixed, got {other:?}"),
        }
    }

    #[test]
    fn roundtrip_through_fixed_printer() {
        let free = "
subroutine axpy(n, a, x, y)
  integer :: n, i
  real(8) :: a, x(n), y(n)
  !$omp parallel do
  do i = 1, n
    y(i) = y(i) + a * x(i)
  end do
end subroutine axpy
";
        let fixed = to_fixed_form(free).expect("print");
        assert!(is_fixed_form(&fixed));
        let (stmts, diags) = lex_fixed(&fixed);
        assert!(!diags.has_errors(), "{}", diags.render());
        assert!(stmts.iter().any(|s| s.omp));
    }
}
