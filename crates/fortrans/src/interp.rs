//! The interpreter: executes the resolved IR in three modes.
//!
//! * **Serial** — plain execution, OMP directives ignored (this is what
//!   "compiled without -fopenmp" means).
//! * **Parallel(t)** — `!$OMP PARALLEL DO` loops fork onto an
//!   [`omprt::ThreadPool`]; frames are cloned per thread (giving
//!   private/firstprivate semantics for frame scalars and shared semantics
//!   for array handles and globals), REDUCTION variables accumulate into
//!   per-thread identities and combine at the join, ATOMIC updates CAS.
//! * **Simulated(t)** — serial-order execution that *attributes* each
//!   iteration's operation counts to the thread that would own it under
//!   the static schedule, producing a [`CostTrace`] for the `simcpu`
//!   machine model. Results are bit-identical to Serial.
//!
//! Nested parallel regions execute with a team of one (OpenMP's default
//! `OMP_NESTED=false`) while still paying the fork cost — the mechanism
//! behind the FUN3D "inner-loop parallelization only adds overhead"
//! finding (§4.2.2).

use std::sync::Arc;

use omprt::{chunks_for, CriticalRegistry, Schedule, ThreadPool};
use parking_lot::Mutex;

use crate::ast::{Bin, RedOp};
use crate::cost::{CostCounters, CostTrace, RegionEvent};
use crate::error::RunError;
use crate::intrinsics::Intr;
use crate::rir::*;
use crate::storage::{ArrayObj, Frame, FrameVal, GlobalCell, Globals};

/// Reduction partials from one parallel region, keyed for a
/// deterministic combine order (tid under static schedules, first flat
/// iteration of the chunk under dynamic/guided).
type KeyedPartials = Vec<(usize, Result<Vec<Val>, RunError>)>;

/// Execution mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    Serial,
    Parallel { threads: usize },
    Simulated { threads: usize },
}

impl ExecMode {
    pub fn threads(self) -> usize {
        match self {
            ExecMode::Serial => 1,
            ExecMode::Parallel { threads } | ExecMode::Simulated { threads } => threads.max(1),
        }
    }
}

/// A scalar runtime value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Val {
    I(i64),
    F(f64),
    B(bool),
}

impl Val {
    pub fn as_f(self) -> f64 {
        match self {
            Val::I(v) => v as f64,
            Val::F(v) => v,
            Val::B(b) => f64::from(u8::from(b)),
        }
    }

    pub fn as_i(self) -> i64 {
        match self {
            Val::I(v) => v,
            Val::F(v) => v.trunc() as i64,
            Val::B(b) => i64::from(b),
        }
    }

    pub fn as_b(self) -> bool {
        match self {
            Val::B(b) => b,
            Val::I(v) => v != 0,
            Val::F(v) => v != 0.0,
        }
    }

    pub(crate) fn to_bits(self, ty: ScalarTy) -> u64 {
        match ty {
            ScalarTy::I => self.as_i() as u64,
            ScalarTy::F => self.as_f().to_bits(),
            ScalarTy::B => u64::from(self.as_b()),
        }
    }

    pub(crate) fn from_bits(bits: u64, ty: ScalarTy) -> Val {
        match ty {
            ScalarTy::I => Val::I(bits as i64),
            ScalarTy::F => Val::F(f64::from_bits(bits)),
            ScalarTy::B => Val::B(bits != 0),
        }
    }
}

/// Engine-level execution limits. Every field defaults to the engine's
/// historical behavior (no step budget, no deadline, call depth 200), so
/// `RunLimits::default()` is a no-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunLimits {
    /// Execution-step budget per top-level call (statements in the
    /// tree-walk tier, instructions in the VM tier). `None` = unlimited.
    pub max_steps: Option<u64>,
    /// Wall-clock budget per top-level call. `None` = unlimited.
    pub deadline: Option<std::time::Duration>,
    /// Recursion safety valve (nested user-unit calls).
    pub max_call_depth: usize,
}

impl Default for RunLimits {
    fn default() -> Self {
        RunLimits { max_steps: None, deadline: None, max_call_depth: 200 }
    }
}

/// Cooperative cancellation token shared between a run and whoever may
/// need to stop it (a batch watchdog, a caller-side ctrl-c handler, a
/// test). Both execution tiers poll it at the same safepoints the step
/// budget uses — DO-loop back-edges and statement/instruction dispatch
/// (every 1024 steps) plus OMP region entry — so a fired token surfaces
/// as [`RunError::Cancelled`] instead of a hang. The first `cancel` call
/// wins; later calls keep the original reason.
#[derive(Debug, Default)]
pub struct CancelToken {
    cancelled: std::sync::atomic::AtomicBool,
    reason: Mutex<String>,
}

impl CancelToken {
    pub fn new() -> std::sync::Arc<CancelToken> {
        std::sync::Arc::new(CancelToken::default())
    }

    /// Fires the token. Idempotent; the first reason is kept.
    pub fn cancel(&self, reason: &str) {
        use std::sync::atomic::Ordering;
        let mut slot = self.reason.lock();
        if !self.cancelled.load(Ordering::Relaxed) {
            *slot = reason.to_string();
            self.cancelled.store(true, Ordering::Release);
        }
    }

    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(std::sync::atomic::Ordering::Acquire)
    }

    /// The reason passed to the winning `cancel` call (empty if unfired).
    pub fn reason(&self) -> String {
        self.reason.lock().clone()
    }
}

/// `RunLimits` resolved against a concrete run start time.
pub(crate) struct EffLimits {
    pub(crate) max_steps: Option<u64>,
    pub(crate) deadline: Option<std::time::Instant>,
    pub(crate) max_call_depth: usize,
    pub(crate) cancel: Option<std::sync::Arc<CancelToken>>,
    /// Precomputed `deadline.is_some() || cancel.is_some()`: the per-tick
    /// poll gate, so unlimited runs pay one bool test per 1024 steps.
    pub(crate) poll: bool,
}

impl EffLimits {
    pub(crate) fn start(lim: &RunLimits, cancel: Option<std::sync::Arc<CancelToken>>) -> Self {
        let deadline = lim.deadline.map(|d| std::time::Instant::now() + d);
        EffLimits {
            max_steps: lim.max_steps,
            deadline,
            max_call_depth: lim.max_call_depth,
            poll: deadline.is_some() || cancel.is_some(),
            cancel,
        }
    }

    pub(crate) fn check_deadline(&self) -> Result<(), RunError> {
        if let Some(t) = self.deadline {
            if std::time::Instant::now() >= t {
                return Err(RunError::Limit { msg: "deadline exceeded".into() });
            }
        }
        Ok(())
    }

    /// The shared safepoint check: cancellation first (so a watchdog that
    /// fired the token wins over a simultaneous deadline trip), then the
    /// wall-clock deadline. `at_line` is the caller's best known source
    /// line for the [`RunError::Cancelled`] report.
    pub(crate) fn check_interrupt(&self, at_line: Option<u32>) -> Result<(), RunError> {
        if let Some(tok) = &self.cancel {
            if tok.is_cancelled() {
                return Err(RunError::Cancelled { at_line, reason: tok.reason() });
            }
        }
        self.check_deadline()
    }
}

/// Loop-schedule overrides applied on top of the compiled `SCHEDULE`
/// clauses. Precedence: per-line override > blanket override > the
/// schedule recorded in the descriptor.
///
/// Set on an engine with [`crate::Engine::set_schedule_overrides`] (the
/// feedback path: a measured profile keys overrides by `omp@line`) or
/// [`crate::Engine::set_schedule_override_all`] (schedule-matrix
/// benchmarking). Both execution tiers consult the same snapshot.
#[derive(Debug, Default, Clone)]
pub struct ScheduleOverrides {
    /// Blanket override applied to every parallel DO.
    pub all: Option<Schedule>,
    /// Per-source-line overrides, keyed by the parallel DO's line.
    pub by_line: std::collections::BTreeMap<u32, Schedule>,
}

impl ScheduleOverrides {
    /// The effective schedule for the parallel DO at `line` whose
    /// descriptor recorded `desc`.
    pub fn resolve(&self, line: u32, desc: Schedule) -> Schedule {
        if let Some(&s) = self.by_line.get(&line) {
            return s;
        }
        self.all.unwrap_or(desc)
    }
}

/// Shared execution services.
pub struct Exec {
    pub prog: Arc<RProgram>,
    pub globals: Arc<Globals>,
    pub mode: ExecMode,
    pub pool: Option<Arc<ThreadPool>>,
    pub critical: Arc<CriticalRegistry>,
    pub printed: Mutex<String>,
    pub sched_overrides: Arc<ScheduleOverrides>,
    pub(crate) limits: EffLimits,
    /// Allow the bytecode tier to take the vector superinstruction path.
    /// Off forces every `VecLoop` to fall through to its scalar head.
    pub vector_enabled: bool,
    /// Count of loop entries that actually ran vectorized (all tiers,
    /// all threads); feeds the CI vector smoke check.
    pub vector_entries: Arc<std::sync::atomic::AtomicU64>,
    /// Chaos hook: the worker with this logical thread id panics on OMP
    /// region entry (exercises `RegionPanic` containment end to end).
    /// One-shot: the session arms it for a single `make_exec`.
    pub(crate) debug_panic_worker: Option<usize>,
    /// Native-tier (JIT) promotion hooks for this run. `None` means the
    /// tier is off for this run or unavailable on this target, and the
    /// `VecLoop` dispatch pays a single pointer test.
    pub(crate) native: Option<Arc<crate::jit::NativeHooks>>,
}

/// Statement outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Flow {
    Normal,
    Exit,
    Cycle,
    Return,
}


/// Per-thread interpretation state.
pub(crate) struct Task<'e> {
    ex: &'e Exec,
    /// Logical thread id (selects per-thread global cells).
    tid: usize,
    /// Collect cost counters (Simulated mode)?
    collect: bool,
    serial_cost: CostCounters,
    region: Option<Box<RegionCtx>>,
    trace: CostTrace,
    /// Real threads currently executing under a forked region.
    in_real_region: bool,
    /// Simulated-mode: inside a region (for nesting detection).
    in_sim_region: bool,
    critical_depth: u32,
    vec_mode: VecClass,
    depth: usize,
    out: String,
    /// Source line of the statement currently executing (fault context).
    cur_line: u32,
    /// Unit currently executing (fault context).
    cur_unit: UnitId,
    /// Statements executed (checked against `RunLimits::max_steps`).
    steps: u64,
    /// Profiling collector, attached only to the orchestrating task of a
    /// profiled run (`Engine::run_profiled`); worker tasks never carry
    /// one. Same boundary-only cost contract as the VM tier.
    pub(crate) prof: Option<&'e crate::trace::Collector>,
}

struct RegionCtx {
    per_thread: Vec<CostCounters>,
    cur: usize,
    critical: CostCounters,
    threads: usize,
    trip: u64,
    reductions: usize,
}

/// Operation kinds for cost hooks.
#[derive(Clone, Copy)]
enum OpK {
    Flop,
    FDiv,
    FSpecial,
    IOp,
    Load,
    Store,
}

impl<'e> Task<'e> {
    pub(crate) fn new(ex: &'e Exec, tid: usize, collect: bool) -> Self {
        Task {
            ex,
            tid,
            collect,
            serial_cost: CostCounters::default(),
            region: None,
            trace: CostTrace::default(),
            in_real_region: false,
            in_sim_region: false,
            critical_depth: 0,
            vec_mode: VecClass::None,
            depth: 0,
            out: String::new(),
            cur_line: 0,
            cur_unit: 0,
            steps: 0,
            prof: None,
        }
    }

    /// The display name used in fault context for the current unit.
    fn cur_unit_name(&self) -> &str {
        &self.ex.prog.units[self.cur_unit].name
    }

    /// Wraps a fault with the location registers at the fault point.
    fn attach_ctx(&self, e: RunError) -> RunError {
        let line = if self.cur_line > 0 { Some(self.cur_line) } else { None };
        e.with_ctx(self.cur_unit_name(), line, None)
    }

    fn bucket(&mut self) -> &mut CostCounters {
        match &mut self.region {
            Some(r) => &mut r.per_thread[r.cur],
            None => &mut self.serial_cost,
        }
    }

    #[inline]
    fn op(&mut self, k: OpK) {
        if !self.collect {
            return;
        }
        self.op_n(k, 1);
    }

    fn op_n(&mut self, k: OpK, n: u64) {
        if !self.collect {
            return;
        }
        let vec = self.vec_mode;
        let crit = self.critical_depth > 0 && self.region.is_some();
        let apply = |c: &mut CostCounters| {
            let o = match vec {
                VecClass::Simd => &mut c.vector,
                _ => &mut c.scalar,
            };
            match k {
                OpK::Flop => o.flop += n,
                OpK::FDiv => o.fdiv += n,
                OpK::FSpecial => o.fspecial += n,
                OpK::IOp => o.iop += n,
                OpK::Load => o.load += n,
                OpK::Store => {
                    if vec == VecClass::Memset {
                        c.memset_bytes += 8 * n;
                    } else {
                        o.store += n;
                    }
                }
            }
        };
        apply(self.bucket());
        if crit {
            if let Some(r) = &mut self.region {
                apply(&mut r.critical);
            }
        }
    }

    fn add_misc(&mut self, f: impl Fn(&mut CostCounters)) {
        if !self.collect {
            return;
        }
        f(self.bucket());
        if self.critical_depth > 0 {
            if let Some(r) = &mut self.region {
                f(&mut r.critical);
            }
        }
    }

    // ---------- storage access ----------

    fn read_scalar(&mut self, unit: &RUnit, frame: &Frame, v: VarIdx) -> Result<Val, RunError> {
        let info = &unit.vars[v];
        match info.place {
            Place::Frame(slot) => match &frame.slots[slot] {
                FrameVal::I(x) => Ok(Val::I(*x)),
                FrameVal::F(x) => Ok(Val::F(*x)),
                FrameVal::B(x) => Ok(Val::B(*x)),
                FrameVal::Uninit => Ok(zero_of(info.ty)),
                FrameVal::Arr(_) => Err(RunError::Type {
                    msg: format!("array `{}` read as scalar", info.name),
                }),
            },
            Place::Global(cell) => {
                self.op(OpK::Load);
                let bits = self.ex.globals.cells[cell].load_bits(self.tid);
                Ok(Val::from_bits(bits, info.ty))
            }
        }
    }

    fn write_scalar(
        &mut self,
        unit: &RUnit,
        frame: &mut Frame,
        v: VarIdx,
        val: Val,
    ) -> Result<(), RunError> {
        let info = &unit.vars[v];
        match info.place {
            Place::Frame(slot) => {
                frame.slots[slot] = match info.ty {
                    ScalarTy::I => FrameVal::I(val.as_i()),
                    ScalarTy::F => FrameVal::F(val.as_f()),
                    ScalarTy::B => FrameVal::B(val.as_b()),
                };
                Ok(())
            }
            Place::Global(cell) => {
                self.op(OpK::Store);
                self.ex.globals.cells[cell].store_bits(self.tid, val.to_bits(info.ty));
                Ok(())
            }
        }
    }

    fn array_handle(
        &self,
        unit: &RUnit,
        frame: &Frame,
        v: VarIdx,
    ) -> Result<Arc<ArrayObj>, RunError> {
        let info = &unit.vars[v];
        match info.place {
            Place::Frame(slot) => match &frame.slots[slot] {
                FrameVal::Arr(Some(a)) => Ok(Arc::clone(a)),
                FrameVal::Arr(None) => Err(RunError::Unallocated { var: info.name.clone() }),
                _ => Err(RunError::Type { msg: format!("`{}` is not an array", info.name) }),
            },
            Place::Global(cell) => self.ex.globals.cells[cell]
                .array_handle(self.tid)
                .ok_or_else(|| RunError::Unallocated { var: info.name.clone() }),
        }
    }

    fn eval_subs(
        &mut self,
        unit: &RUnit,
        frame: &mut Frame,
        subs: &[RExpr],
    ) -> Result<Vec<i64>, RunError> {
        subs.iter()
            .map(|e| Ok(self.eval(unit, frame, e)?.as_i()))
            .collect()
    }

    // ---------- expression evaluation ----------

    fn eval(&mut self, unit: &RUnit, frame: &mut Frame, e: &RExpr) -> Result<Val, RunError> {
        match e {
            RExpr::ConstI(v) => Ok(Val::I(*v)),
            RExpr::ConstF(v) => Ok(Val::F(*v)),
            RExpr::ConstB(v) => Ok(Val::B(*v)),
            RExpr::LoadScalar(v) => self.read_scalar(unit, frame, *v),
            RExpr::LoadElem { v, subs } => {
                let ix = self.eval_subs(unit, frame, subs)?;
                let arr = self.array_handle(unit, frame, *v)?;
                let off = arr.offset(&unit.vars[*v].name, &ix)?;
                self.op(OpK::Load);
                Ok(match arr.ty {
                    ScalarTy::I => Val::I(arr.get_i(off)),
                    ScalarTy::F => Val::F(arr.get_f(off)),
                    ScalarTy::B => Val::B(arr.get_b(off)),
                })
            }
            RExpr::Bin { op, ty, l, r } => {
                let a = self.eval(unit, frame, l)?;
                let b = self.eval(unit, frame, r)?;
                self.eval_bin(*op, *ty, a, b)
            }
            RExpr::Neg(x) => {
                let v = self.eval(unit, frame, x)?;
                self.op(match v {
                    Val::F(_) => OpK::Flop,
                    _ => OpK::IOp,
                });
                Ok(match v {
                    Val::I(i) => Val::I(-i),
                    Val::F(f) => Val::F(-f),
                    Val::B(_) => return Err(RunError::Type { msg: "negate LOGICAL".into() }),
                })
            }
            RExpr::Not(x) => {
                let v = self.eval(unit, frame, x)?;
                self.op(OpK::IOp);
                Ok(Val::B(!v.as_b()))
            }
            RExpr::ToF(x) => {
                let v = self.eval(unit, frame, x)?;
                Ok(Val::F(v.as_f()))
            }
            RExpr::ToI(x) => {
                let v = self.eval(unit, frame, x)?;
                Ok(Val::I(v.as_i()))
            }
            RExpr::Intrinsic { f, args } => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(unit, frame, a)?);
                }
                self.op(if f.is_special() { OpK::FSpecial } else { OpK::Flop });
                // Integer-flavored when every operand is I.
                if vals.iter().all(|v| matches!(v, Val::I(_)))
                    && matches!(
                        f,
                        Intr::Abs | Intr::Max | Intr::Min | Intr::Mod | Intr::Sign
                    )
                {
                    let iv: Vec<i64> = vals.iter().map(|v| v.as_i()).collect();
                    return Ok(Val::I(f.eval_i(&iv)));
                }
                let fv: Vec<f64> = vals.iter().map(|v| v.as_f()).collect();
                let r = f.eval_f(&fv);
                Ok(match f {
                    Intr::Int | Intr::Nint => Val::I(r as i64),
                    _ => Val::F(r),
                })
            }
            RExpr::ArrReduce { f, v } => {
                let arr = self.array_handle(unit, frame, *v)?;
                let n = arr.len();
                self.op_n(OpK::Load, n as u64);
                self.op_n(OpK::Flop, n as u64);
                Ok(match f {
                    ArrRed::Size => Val::I(n as i64),
                    ArrRed::Sum => match arr.ty {
                        ScalarTy::I => Val::I((0..n).map(|i| arr.get_i(i)).sum()),
                        _ => Val::F((0..n).map(|i| arr.get_f(i)).sum()),
                    },
                    ArrRed::Maxval => match arr.ty {
                        ScalarTy::I => {
                            Val::I((0..n).map(|i| arr.get_i(i)).max().unwrap_or(i64::MIN))
                        }
                        _ => Val::F(
                            (0..n).map(|i| arr.get_f(i)).fold(f64::NEG_INFINITY, f64::max),
                        ),
                    },
                    ArrRed::Minval => match arr.ty {
                        ScalarTy::I => {
                            Val::I((0..n).map(|i| arr.get_i(i)).min().unwrap_or(i64::MAX))
                        }
                        _ => Val::F((0..n).map(|i| arr.get_f(i)).fold(f64::INFINITY, f64::min)),
                    },
                })
            }
            RExpr::AllocatedQ(v) => {
                let info = &unit.vars[*v];
                let alloc = match info.place {
                    Place::Frame(slot) => matches!(&frame.slots[slot], FrameVal::Arr(Some(_))),
                    Place::Global(cell) => {
                        self.ex.globals.cells[cell].array_handle(self.tid).is_some()
                    }
                };
                Ok(Val::B(alloc))
            }
            RExpr::CallFn { unit: callee, args, ret: _ } => {
                let r = self.call_unit(unit, frame, *callee, args)?;
                r.ok_or_else(|| RunError::Type { msg: "function returned nothing".into() })
            }
        }
    }

    fn eval_bin(&mut self, op: Bin, ty: ScalarTy, a: Val, b: Val) -> Result<Val, RunError> {
        match op {
            Bin::And => {
                self.op(OpK::IOp);
                return Ok(Val::B(a.as_b() && b.as_b()));
            }
            Bin::Or => {
                self.op(OpK::IOp);
                return Ok(Val::B(a.as_b() || b.as_b()));
            }
            Bin::Eq | Bin::Ne | Bin::Lt | Bin::Le | Bin::Gt | Bin::Ge => {
                self.op(if ty == ScalarTy::F { OpK::Flop } else { OpK::IOp });
                let r = match ty {
                    ScalarTy::F => {
                        let (x, y) = (a.as_f(), b.as_f());
                        match op {
                            Bin::Eq => x == y,
                            Bin::Ne => x != y,
                            Bin::Lt => x < y,
                            Bin::Le => x <= y,
                            Bin::Gt => x > y,
                            _ => x >= y,
                        }
                    }
                    _ => {
                        let (x, y) = (a.as_i(), b.as_i());
                        match op {
                            Bin::Eq => x == y,
                            Bin::Ne => x != y,
                            Bin::Lt => x < y,
                            Bin::Le => x <= y,
                            Bin::Gt => x > y,
                            _ => x >= y,
                        }
                    }
                };
                return Ok(Val::B(r));
            }
            _ => {}
        }
        match ty {
            ScalarTy::F => {
                let (x, y) = (a.as_f(), b.as_f());
                let r = match op {
                    Bin::Add => {
                        self.op(OpK::Flop);
                        x + y
                    }
                    Bin::Sub => {
                        self.op(OpK::Flop);
                        x - y
                    }
                    Bin::Mul => {
                        self.op(OpK::Flop);
                        x * y
                    }
                    Bin::Div => {
                        self.op(OpK::FDiv);
                        x / y
                    }
                    Bin::Pow => {
                        self.op(OpK::FSpecial);
                        match b {
                            Val::I(e) if e.unsigned_abs() <= 64 => x.powi(e as i32),
                            _ => x.powf(y),
                        }
                    }
                    _ => unreachable!(),
                };
                Ok(Val::F(r))
            }
            ScalarTy::I => {
                let (x, y) = (a.as_i(), b.as_i());
                self.op(OpK::IOp);
                let r = match op {
                    Bin::Add => x.wrapping_add(y),
                    Bin::Sub => x.wrapping_sub(y),
                    Bin::Mul => x.wrapping_mul(y),
                    Bin::Div => {
                        if y == 0 {
                            return Err(RunError::Arith { msg: "integer division by zero".into() });
                        }
                        x / y
                    }
                    Bin::Pow => {
                        if y < 0 {
                            0
                        } else {
                            x.checked_pow(y.min(63) as u32).unwrap_or(i64::MAX)
                        }
                    }
                    _ => unreachable!(),
                };
                Ok(Val::I(r))
            }
            ScalarTy::B => Err(RunError::Type { msg: "arithmetic on LOGICAL".into() }),
        }
    }

    // ---------- calls ----------

    fn build_frame(&mut self, callee: &RUnit) -> Frame {
        let mut frame = Frame::new(callee.frame_size);
        for info in &callee.vars {
            if let Place::Frame(slot) = info.place {
                if info.rank > 0 {
                    if info.allocatable || info.is_param {
                        frame.slots[slot] = FrameVal::Arr(None);
                    } else {
                        // Fixed-shape local: fresh zeroed array per call.
                        frame.slots[slot] =
                            FrameVal::Arr(Some(Arc::new(ArrayObj::new(info.ty, info.dims.clone()))));
                    }
                } else {
                    frame.slots[slot] = match info.ty {
                        ScalarTy::I => FrameVal::I(0),
                        ScalarTy::F => FrameVal::F(0.0),
                        ScalarTy::B => FrameVal::B(false),
                    };
                }
            }
        }
        frame
    }

    fn call_unit(
        &mut self,
        unit: &RUnit,
        frame: &mut Frame,
        callee_id: UnitId,
        args: &[RArg],
    ) -> Result<Option<Val>, RunError> {
        if self.depth >= self.ex.limits.max_call_depth {
            return Err(RunError::Limit { msg: "call depth exceeded".into() });
        }
        self.add_misc(|c| c.calls += 1);
        let prog = Arc::clone(&self.ex.prog);
        let callee = &prog.units[callee_id];
        let mut cframe = self.build_frame(callee);

        // Copy-in.
        enum Writeback {
            Scalar(VarIdx),
            Elem(VarIdx, Vec<i64>),
            None,
        }
        let mut writebacks: Vec<Writeback> = Vec::with_capacity(args.len());
        for (k, arg) in args.iter().enumerate() {
            let pvar = callee.params[k];
            let pinfo = &callee.vars[pvar];
            let Place::Frame(pslot) = pinfo.place else { unreachable!("params are frame vars") };
            match arg {
                RArg::ByRefScalar(v) => {
                    let val = self.read_scalar(unit, frame, *v)?;
                    cframe.slots[pslot] = typed_frameval(val, pinfo.ty);
                    writebacks.push(Writeback::Scalar(*v));
                }
                RArg::ByRefElem { v, subs } => {
                    let ix = self.eval_subs(unit, frame, subs)?;
                    let arr = self.array_handle(unit, frame, *v)?;
                    let off = arr.offset(&unit.vars[*v].name, &ix)?;
                    self.op(OpK::Load);
                    let val = match arr.ty {
                        ScalarTy::I => Val::I(arr.get_i(off)),
                        ScalarTy::F => Val::F(arr.get_f(off)),
                        ScalarTy::B => Val::B(arr.get_b(off)),
                    };
                    cframe.slots[pslot] = typed_frameval(val, pinfo.ty);
                    writebacks.push(Writeback::Elem(*v, ix));
                }
                RArg::Array(v) => {
                    let h = self.array_handle(unit, frame, *v)?;
                    cframe.slots[pslot] = FrameVal::Arr(Some(h));
                    writebacks.push(Writeback::None);
                }
                RArg::Value(e) => {
                    let val = self.eval(unit, frame, e)?;
                    cframe.slots[pslot] = typed_frameval(val, pinfo.ty);
                    writebacks.push(Writeback::None);
                }
            }
        }

        // Execute. The location registers move to the callee and are
        // restored only on success, so a propagating fault keeps the
        // innermost (most precise) location.
        let (saved_unit, saved_line) = (self.cur_unit, self.cur_line);
        self.cur_unit = callee_id;
        self.depth += 1;
        if let Some(p) = self.prof {
            p.unit_enter(&callee.name);
        }
        let flow = self.exec_block(callee, &mut cframe, &callee.body);
        self.depth -= 1;
        let flow = flow?;
        if let Some(p) = self.prof {
            // Also sweeps loop spans a RETURN left open inside the callee.
            p.unit_exit();
        }
        self.cur_unit = saved_unit;
        self.cur_line = saved_line;
        match flow {
            Flow::Normal | Flow::Return => {}
            _ => return Err(RunError::Type { msg: "EXIT/CYCLE escaped a unit".into() }),
        }

        // Copy-out (value-result for scalar designator args).
        for (k, wb) in writebacks.into_iter().enumerate() {
            let pvar = callee.params[k];
            let pinfo = &callee.vars[pvar];
            let Place::Frame(pslot) = pinfo.place else { unreachable!() };
            match wb {
                Writeback::Scalar(v) => {
                    let val = frameval_to_val(&cframe.slots[pslot], pinfo.ty);
                    self.write_scalar(unit, frame, v, val)?;
                }
                Writeback::Elem(v, ix) => {
                    let val = frameval_to_val(&cframe.slots[pslot], pinfo.ty);
                    let arr = self.array_handle(unit, frame, v)?;
                    let off = arr.offset(&unit.vars[v].name, &ix)?;
                    self.op(OpK::Store);
                    store_val(&arr, off, val);
                }
                Writeback::None => {}
            }
        }

        // Function result.
        if let Some((rv, rty)) = callee.result {
            let Place::Frame(rslot) = callee.vars[rv].place else { unreachable!() };
            Ok(Some(frameval_to_val(&cframe.slots[rslot], rty)))
        } else {
            Ok(None)
        }
    }

    // ---------- statements ----------

    fn exec_block(
        &mut self,
        unit: &RUnit,
        frame: &mut Frame,
        body: &[SpStmt],
    ) -> Result<Flow, RunError> {
        for sp in body {
            self.cur_line = sp.line;
            self.tick()?;
            match self.exec_stmt(unit, frame, &sp.s)? {
                Flow::Normal => {}
                f => return Ok(f),
            }
        }
        Ok(Flow::Normal)
    }

    /// Per-statement accounting against the engine's `RunLimits`.
    #[inline]
    fn tick(&mut self) -> Result<(), RunError> {
        self.steps += 1;
        let lim = &self.ex.limits;
        if let Some(max) = lim.max_steps {
            if self.steps > max {
                return Err(RunError::Limit { msg: format!("step budget of {max} exhausted") });
            }
        }
        if lim.poll && self.steps.is_multiple_of(1024) {
            lim.check_interrupt((self.cur_line > 0).then_some(self.cur_line))?;
        }
        Ok(())
    }

    fn exec_stmt(
        &mut self,
        unit: &RUnit,
        frame: &mut Frame,
        s: &RStmt,
    ) -> Result<Flow, RunError> {
        match s {
            RStmt::AssignScalar { v, e } => {
                let val = self.eval(unit, frame, e)?;
                self.write_scalar(unit, frame, *v, val)?;
                Ok(Flow::Normal)
            }
            RStmt::AssignElem { v, subs, e } => {
                let ix = self.eval_subs(unit, frame, subs)?;
                let val = self.eval(unit, frame, e)?;
                let arr = self.array_handle(unit, frame, *v)?;
                let off = arr.offset(&unit.vars[*v].name, &ix)?;
                self.op(OpK::Store);
                store_val(&arr, off, val);
                Ok(Flow::Normal)
            }
            RStmt::Broadcast { v, e } => {
                let val = self.eval(unit, frame, e)?;
                let arr = self.array_handle(unit, frame, *v)?;
                let n = arr.len();
                self.op_n(OpK::Store, n as u64);
                for off in 0..n {
                    store_val(&arr, off, val);
                }
                Ok(Flow::Normal)
            }
            RStmt::CopyArray { dst, src } => {
                let d = self.array_handle(unit, frame, *dst)?;
                let s = self.array_handle(unit, frame, *src)?;
                if d.len() != s.len() {
                    return Err(RunError::Type {
                        msg: format!(
                            "array copy shape mismatch: {} vs {}",
                            d.len(),
                            s.len()
                        ),
                    });
                }
                let n = d.len();
                self.op_n(OpK::Load, n as u64);
                self.op_n(OpK::Store, n as u64);
                for off in 0..n {
                    d.set_bits(off, s.get_bits(off));
                }
                Ok(Flow::Normal)
            }
            RStmt::AtomicUpdate { v, subs, op, e } => {
                let delta = self.eval(unit, frame, e)?;
                self.add_misc(|c| c.atomics += 1);
                self.op(OpK::Load);
                self.op(OpK::Store);
                let info = &unit.vars[*v];
                if info.rank == 0 {
                    match info.place {
                        Place::Global(cell) =>

                        {
                            let g = &self.ex.globals.cells[cell];
                            atomic_scalar_update(g, self.tid, info.ty, *op, delta);
                        }
                        Place::Frame(_) => {
                            // Frame scalar: thread-private anyway; plain RMW.
                            let cur = self.read_scalar(unit, frame, *v)?;
                            let nv = combine_vals(info.ty, *op, cur, delta);
                            self.write_scalar(unit, frame, *v, nv)?;
                        }
                    }
                } else {
                    let ix = self.eval_subs(unit, frame, subs)?;
                    let arr = self.array_handle(unit, frame, *v)?;
                    let off = arr.offset(&info.name, &ix)?;
                    match arr.ty {
                        ScalarTy::F => {
                            let d = delta.as_f();
                            arr.atomic_update_f(off, |x| combine_f(*op, x, d));
                        }
                        ScalarTy::I => {
                            let d = delta.as_i();
                            arr.atomic_update_i(off, |x| combine_i(*op, x, d));
                        }
                        ScalarTy::B => {
                            return Err(RunError::Type { msg: "ATOMIC on LOGICAL".into() })
                        }
                    }
                }
                Ok(Flow::Normal)
            }
            RStmt::If { arms, else_body } => {
                self.add_misc(|c| c.branches += 1);
                for (cond, body) in arms {
                    if self.eval(unit, frame, cond)?.as_b() {
                        return self.exec_block(unit, frame, body);
                    }
                }
                self.exec_block(unit, frame, else_body)
            }
            RStmt::DoWhile { cond, body } => {
                loop {
                    self.add_misc(|c| c.branches += 1);
                    if !self.eval(unit, frame, cond)?.as_b() {
                        break;
                    }
                    match self.exec_block(unit, frame, body)? {
                        Flow::Normal | Flow::Cycle => {}
                        Flow::Exit => break,
                        Flow::Return => return Ok(Flow::Return),
                    }
                }
                Ok(Flow::Normal)
            }
            RStmt::Do { var, start, end, step, body, omp, vec, collapse_with } => self.exec_do(
                unit,
                frame,
                *var,
                start,
                end,
                step.as_ref(),
                body,
                omp.as_ref(),
                *vec,
                collapse_with,
            ),
            RStmt::CallSub { unit: callee, args } => {
                self.call_unit(unit, frame, *callee, args)?;
                Ok(Flow::Normal)
            }
            RStmt::Allocate { v, dims } => {
                let mut rd = Vec::with_capacity(dims.len());
                for (lo, hi) in dims {
                    let lo = self.eval(unit, frame, lo)?.as_i();
                    let hi = self.eval(unit, frame, hi)?.as_i();
                    rd.push((lo, hi));
                }
                let info = &unit.vars[*v];
                let ty = info.ty;
                let obj = Arc::new(ArrayObj::try_new(ty, rd.clone())?);
                self.add_misc(|c| {
                    c.alloc_calls += 1;
                });
                let bytes = (obj.len() * 8) as u64;
                self.add_misc(move |c| c.alloc_bytes += bytes);
                match info.place {
                    Place::Frame(slot) => {
                        if matches!(&frame.slots[slot], FrameVal::Arr(Some(_))) {
                            return Err(RunError::AlreadyAllocated { var: info.name.clone() });
                        }
                        frame.slots[slot] = FrameVal::Arr(Some(obj));
                    }
                    Place::Global(cell) => {
                        let gc = &self.ex.globals.cells[cell];
                        let prev = if gc.is_per_thread() {
                            gc.set_array_all_threads(self.tid, || {
                                Arc::new(ArrayObj::new(ty, rd.clone()))
                            })
                        } else {
                            gc.set_array(self.tid, Some(obj))
                        };
                        if prev.is_some() {
                            return Err(RunError::AlreadyAllocated { var: info.name.clone() });
                        }
                    }
                }
                Ok(Flow::Normal)
            }
            RStmt::Deallocate { v } => {
                let info = &unit.vars[*v];
                match info.place {
                    Place::Frame(slot) => {
                        if !matches!(&frame.slots[slot], FrameVal::Arr(Some(_))) {
                            return Err(RunError::Unallocated { var: info.name.clone() });
                        }
                        frame.slots[slot] = FrameVal::Arr(None);
                    }
                    Place::Global(cell) => {
                        let gc = &self.ex.globals.cells[cell];
                        let prev = if gc.is_per_thread() {
                            gc.clear_array_all_threads(self.tid)
                        } else {
                            gc.set_array(self.tid, None)
                        };
                        if prev.is_none() {
                            return Err(RunError::Unallocated { var: info.name.clone() });
                        }
                    }
                }
                Ok(Flow::Normal)
            }
            RStmt::Critical { name, body } => {
                self.critical_depth += 1;
                let result = if matches!(self.ex.mode, ExecMode::Parallel { .. })
                    && self.in_real_region
                {
                    let _guard = self.ex.critical.enter(name);
                    self.exec_block(unit, frame, body)
                } else {
                    self.exec_block(unit, frame, body)
                };
                self.critical_depth -= 1;
                result
            }
            RStmt::Return => Ok(Flow::Return),
            RStmt::Exit => Ok(Flow::Exit),
            RStmt::Cycle => Ok(Flow::Cycle),
            RStmt::Nop => Ok(Flow::Normal),
            RStmt::Print(items) => {
                let mut line = String::new();
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        line.push(' ');
                    }
                    match item {
                        PrintItem::Str(s) => line.push_str(s),
                        PrintItem::Val(e) => {
                            let v = self.eval(unit, frame, e)?;
                            match v {
                                Val::I(x) => line.push_str(&x.to_string()),
                                Val::F(x) => line.push_str(&format!("{x:.6}")),
                                Val::B(b) => line.push_str(if b { "T" } else { "F" }),
                            }
                        }
                    }
                }
                line.push('\n');
                self.out.push_str(&line);
                Ok(Flow::Normal)
            }
            RStmt::Stop(msg) => Err(RunError::Stop { msg: msg.clone().unwrap_or_default() }),
        }
    }

    // ---------- DO loops ----------

    #[allow(clippy::too_many_arguments)]
    fn exec_do(
        &mut self,
        unit: &RUnit,
        frame: &mut Frame,
        var: VarIdx,
        start: &RExpr,
        end: &RExpr,
        step: Option<&RExpr>,
        body: &[SpStmt],
        omp: Option<&ROmp>,
        vec: VecClass,
        collapse_with: &[CollapseDim],
    ) -> Result<Flow, RunError> {
        // The DO statement's own line (bound expressions may call units
        // and move `cur_line`).
        let do_line = self.cur_line;
        let s0 = self.eval(unit, frame, start)?.as_i();
        let e0 = self.eval(unit, frame, end)?.as_i();
        let st = match step {
            Some(e) => {
                let v = self.eval(unit, frame, e)?.as_i();
                if v == 0 {
                    return Err(RunError::Arith { msg: "zero DO step".into() });
                }
                v
            }
            None => 1,
        };

        let Some(o) = omp else {
            // Span entered after bounds/step evaluation (and the zero-step
            // check), exactly where the VM's `DoInit` opens its span.
            if let Some(p) = self.prof {
                p.loop_enter(do_line, 0);
            }
            let r = self.exec_serial_do(unit, frame, var, s0, e0, st, body, vec);
            if let Some(p) = self.prof {
                if r.is_ok() {
                    p.loop_exit();
                }
            }
            return r;
        };

        // --- OpenMP PARALLEL DO ---
        let outer_trip = trip_count(s0, e0, st);
        // Collapsed inner dims (bounds evaluated once, per OpenMP rules).
        let mut dims: Vec<(VarIdx, i64, i64)> = vec![(var, s0, e0)];
        for cd in collapse_with {
            let lo = self.eval(unit, frame, &cd.start)?.as_i();
            let hi = self.eval(unit, frame, &cd.end)?.as_i();
            dims.push((cd.var, lo, hi));
        }
        let total_trip: u64 = if collapse_with.is_empty() {
            outer_trip
        } else {
            dims.iter()
                .map(|&(_, lo, hi)| trip_count(lo, hi, 1))
                .product()
        };

        let mode_threads = self.ex.mode.threads();
        let clause_threads = match &o.num_threads {
            Some(e) => Some(self.eval(unit, frame, e)?.as_i().max(1) as usize),
            None => None,
        };
        let team = clause_threads.unwrap_or(mode_threads).min(crate::storage::MAX_THREADS);

        if let Some(p) = self.prof {
            // Matches the VM's `OmpDo` instruction: after bounds, step,
            // collapse bounds and NUM_THREADS have evaluated.
            p.omp_enter(do_line);
        }
        let r = self.exec_omp_dispatch(unit, frame, &dims, st, body, o, team, total_trip, do_line);
        if let Some(p) = self.prof {
            if r.is_ok() {
                p.omp_exit();
            }
        }
        r
    }

    /// Mode dispatch for an OMP nest whose bounds are already evaluated.
    #[allow(clippy::too_many_arguments)]
    fn exec_omp_dispatch(
        &mut self,
        unit: &RUnit,
        frame: &mut Frame,
        dims: &[(VarIdx, i64, i64)],
        st: i64,
        body: &[SpStmt],
        o: &ROmp,
        team: usize,
        total_trip: u64,
        do_line: u32,
    ) -> Result<Flow, RunError> {
        // OMP region entry is a safepoint: never fork a team for a run
        // whose token already fired (or whose deadline already passed).
        if self.ex.limits.poll {
            self.ex.limits.check_interrupt(Some(do_line))?;
        }
        match self.ex.mode {
            ExecMode::Serial => {
                // Directives ignored; plain serial nest. A serial build
                // would also vectorize eligible loops, but GLAF-parallel
                // loops are structurally complex (that's why they kept
                // directives); classify anyway for fairness.
                self.exec_omp_serially(unit, frame, dims, st, body, o, None)
            }
            ExecMode::Simulated { .. } => {
                if self.in_sim_region || self.in_real_region {
                    // Nested region: team of one + fork overhead.
                    self.add_misc(|c| c.nested_forks += 1);
                    return self.exec_omp_serially(unit, frame, dims, st, body, o, None);
                }
                // Flush serial counters, open a region.
                let serial = std::mem::take(&mut self.serial_cost);
                self.trace.push_serial(serial);
                self.region = Some(Box::new(RegionCtx {
                    per_thread: vec![CostCounters::default(); team],
                    cur: 0,
                    critical: CostCounters::default(),
                    threads: team,
                    trip: total_trip,
                    reductions: o.reductions.len(),
                }));
                self.in_sim_region = true;
                let mut sched = self.ex.sched_overrides.resolve(do_line, o.sched);
                if o.per_thread_access {
                    sched = sched.legalize_for_per_thread();
                }
                // Owner map: iteration -> thread (serial-order execution).
                let owner = build_owner_map(sched, total_trip as usize, team);
                let r = self.exec_omp_serially(unit, frame, dims, st, body, o, Some(&owner));
                self.in_sim_region = false;
                let region = self.region.take().expect("region open");
                self.trace.push_region(RegionEvent {
                    threads: region.threads,
                    per_thread: region.per_thread,
                    critical: region.critical,
                    reductions: region.reductions,
                    trip: region.trip,
                    line: do_line,
                });
                r
            }
            ExecMode::Parallel { .. } => {
                if self.in_real_region {
                    // Nested: team of one.
                    return self.exec_omp_serially(unit, frame, dims, st, body, o, None);
                }
                self.exec_omp_parallel(unit, frame, dims, st, body, o, team, total_trip, do_line)
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_serial_do(
        &mut self,
        unit: &RUnit,
        frame: &mut Frame,
        var: VarIdx,
        s0: i64,
        e0: i64,
        st: i64,
        body: &[SpStmt],
        vec: VecClass,
    ) -> Result<Flow, RunError> {
        let prev_vec = self.vec_mode;
        if self.collect && vec != VecClass::None {
            self.vec_mode = vec;
        }
        let mut i = s0;
        let flow = loop {
            if (st > 0 && i > e0) || (st < 0 && i < e0) {
                break Flow::Normal;
            }
            self.write_scalar(unit, frame, var, Val::I(i))?;
            match self.exec_block(unit, frame, body)? {
                Flow::Normal | Flow::Cycle => {}
                Flow::Exit => break Flow::Normal,
                Flow::Return => break Flow::Return,
            }
            i += st;
        };
        self.vec_mode = prev_vec;
        Ok(flow)
    }

    /// Executes an OMP nest in serial iteration order. `owner` switches the
    /// simulated-cost bucket per iteration.
    #[allow(clippy::too_many_arguments)]
    fn exec_omp_serially(
        &mut self,
        unit: &RUnit,
        frame: &mut Frame,
        dims: &[(VarIdx, i64, i64)],
        outer_step: i64,
        body: &[SpStmt],
        _o: &ROmp,
        owner: Option<&[u16]>,
    ) -> Result<Flow, RunError> {
        // Iterate the collapsed space in row-major (outer slowest) order.
        let trips: Vec<u64> = dims
            .iter()
            .enumerate()
            .map(|(k, &(_, lo, hi))| {
                if k == 0 {
                    trip_count(lo, hi, outer_step)
                } else {
                    trip_count(lo, hi, 1)
                }
            })
            .collect();
        let total: u64 = trips.iter().product();
        let mut result = Flow::Normal;
        'outer: for k in 0..total {
            if let (Some(map), Some(region)) = (owner, self.region.as_mut()) {
                region.cur = map[k as usize] as usize;
            }
            // Decompose flat k into per-dim indices, outer slowest.
            let mut rem = k;
            for (d, &(v, lo, _hi)) in dims.iter().enumerate().rev() {
                let t = trips[d].max(1);
                let ix = rem % t;
                rem /= t;
                let step = if d == 0 { outer_step } else { 1 };
                self.write_scalar(unit, frame, v, Val::I(lo + ix as i64 * step))?;
            }
            match self.exec_block(unit, frame, body)? {
                Flow::Normal | Flow::Cycle => {}
                Flow::Exit => break 'outer,
                Flow::Return => {
                    result = Flow::Return;
                    break 'outer;
                }
            }
        }
        if let Some(region) = self.region.as_mut() {
            region.cur = 0;
        }
        Ok(result)
    }

    /// Real fork-join execution on the pool.
    #[allow(clippy::too_many_arguments)]
    fn exec_omp_parallel(
        &mut self,
        unit: &RUnit,
        frame: &mut Frame,
        dims: &[(VarIdx, i64, i64)],
        outer_step: i64,
        body: &[SpStmt],
        o: &ROmp,
        team: usize,
        total_trip: u64,
        do_line: u32,
    ) -> Result<Flow, RunError> {
        let pool = self
            .ex
            .pool
            .as_ref()
            .expect("Parallel mode has a pool")
            .clone();
        let team = team.min(pool.threads());
        let mut sched = self.ex.sched_overrides.resolve(do_line, o.sched);
        if o.per_thread_access {
            sched = sched.legalize_for_per_thread();
        }
        let trips: Vec<u64> = dims
            .iter()
            .enumerate()
            .map(|(k, &(_, lo, hi))| {
                if k == 0 {
                    trip_count(lo, hi, outer_step)
                } else {
                    trip_count(lo, hi, 1)
                }
            })
            .collect();

        // Reduction setup: identity per thread, combine after.
        let red_info: Vec<(RedOp, VarIdx, ScalarTy, Val)> = o
            .reductions
            .iter()
            .map(|&(op, v)| {
                let ty = unit.vars[v].ty;
                let cur = match unit.vars[v].place {
                    Place::Frame(slot) => frameval_to_val(&frame.slots[slot], ty),
                    Place::Global(cell) => {
                        Val::from_bits(self.ex.globals.cells[cell].load_bits(self.tid), ty)
                    }
                };
                (op, v, ty, cur)
            })
            .collect();

        // Partials are keyed so the reduction combine is deterministic
        // regardless of thread completion (or chunk claim) order: one
        // partial per thread keyed by tid under static schedules, one
        // partial per chunk keyed by its first flat iteration under
        // dynamic/guided. The join sorts by key and folds in order.
        let results: Mutex<KeyedPartials> = Mutex::new(Vec::new());
        let prints: Mutex<String> = Mutex::new(String::new());
        let ex = self.ex;
        let cur_unit = self.cur_unit;
        let base_frame = &*frame;
        let dims_ref = dims;
        let trips_ref = &trips;
        let o_ref = o;
        let red_ref = &red_info;
        let total = trips.iter().product::<u64>() as usize;
        let dispenser =
            sched.is_runtime_dispatched().then(|| omprt::Dispenser::new(sched, total, team));
        let disp_ref = &dispenser;

        pool.run_tagged(do_line, sched, |tid| {
            if tid >= team {
                return;
            }
            if ex.debug_panic_worker == Some(tid) {
                panic!("chaos: injected worker panic on tid {tid}");
            }
            let mut task = Task::new(ex, tid, false);
            task.in_real_region = true;
            task.cur_unit = cur_unit;
            let mut tframe = base_frame.clone();
            // PRIVATE arrays: detach per-thread deep copies.
            for &pv in &o_ref.private {
                let info = &unit.vars[pv];
                if info.rank > 0 {
                    if let Place::Frame(slot) = info.place {
                        if let FrameVal::Arr(Some(a)) = &tframe.slots[slot] {
                            tframe.slots[slot] = FrameVal::Arr(Some(Arc::new(a.deep_clone())));
                        }
                    }
                }
            }
            let set_identities = |tframe: &mut Frame| {
                for &(op, v, ty, _) in red_ref {
                    if let Place::Frame(slot) = unit.vars[v].place {
                        tframe.slots[slot] = typed_frameval(identity_val(op, ty), ty);
                    }
                }
            };
            let collect_partials = |tframe: &Frame| -> Vec<Val> {
                red_ref
                    .iter()
                    .map(|&(_, v, ty, _)| match unit.vars[v].place {
                        Place::Frame(slot) => frameval_to_val(&tframe.slots[slot], ty),
                        _ => Val::I(0),
                    })
                    .collect()
            };
            let run_range =
                |task: &mut Task<'_>, tframe: &mut Frame, lo: usize, hi: usize| {
                    for k in lo..hi {
                        let mut rem = k as u64;
                        for (d, &(v, dlo, _)) in dims_ref.iter().enumerate().rev() {
                            let t = trips_ref[d].max(1);
                            let ix = rem % t;
                            rem /= t;
                            let step = if d == 0 { outer_step } else { 1 };
                            task.write_scalar(unit, tframe, v, Val::I(dlo + ix as i64 * step))?;
                        }
                        match task.exec_block(unit, tframe, body)? {
                            Flow::Normal | Flow::Cycle => {}
                            Flow::Exit | Flow::Return => {
                                return Err(RunError::Type {
                                    msg: "EXIT/RETURN out of a parallel loop".into(),
                                })
                            }
                        }
                    }
                    Ok(())
                };

            match disp_ref {
                // Dynamic/guided: claim chunks first-come-first-served.
                Some(disp) => {
                    while let Some((lo, hi)) = disp.claim() {
                        set_identities(&mut tframe);
                        let r = run_range(&mut task, &mut tframe, lo, hi)
                            .map(|()| collect_partials(&tframe));
                        let failed = r.is_err();
                        results.lock().push((lo, r.map_err(|e| task.attach_ctx(e))));
                        if failed {
                            // Stop claiming; let the team drain and join.
                            break;
                        }
                    }
                }
                // Static: the thread owns its chunks up front and
                // accumulates one partial across all of them.
                None => {
                    set_identities(&mut tframe);
                    let r = (|| {
                        for (lo, hi) in chunks_for(sched, total, tid, team) {
                            run_range(&mut task, &mut tframe, lo, hi)?;
                        }
                        Ok(collect_partials(&tframe))
                    })();
                    results.lock().push((tid, r.map_err(|e| task.attach_ctx(e))));
                }
            }
            if !task.out.is_empty() {
                prints.lock().push_str(&task.out);
            }
        })
        .map_err(|p| RunError::Trap { what: p.to_string() })?;

        self.out.push_str(&prints.into_inner());
        let mut keyed = results.into_inner();
        keyed.sort_by_key(|&(k, _)| k);
        let mut all_partials: Vec<Vec<Val>> = Vec::new();
        for (_, r) in keyed {
            all_partials.push(r?);
        }
        let _ = total_trip;

        // Combine reductions into the original variables, in key order.
        for (ri, &(op, v, ty, init)) in red_info.iter().enumerate() {
            let mut acc = init;
            for p in &all_partials {
                acc = combine_vals(ty, op, acc, p[ri]);
            }
            self.write_scalar(unit, frame, v, acc)?;
        }
        Ok(Flow::Normal)
    }

    /// Runs a top-level unit call and returns (result, trace, printed).
    pub(crate) fn run_entry(
        mut self,
        unit_id: UnitId,
        frame: Frame,
    ) -> Result<(Option<Val>, CostTrace, String), RunError> {
        let prog = Arc::clone(&self.ex.prog);
        let unit = &prog.units[unit_id];
        let mut frame = frame;
        self.cur_unit = unit_id;
        if let Some(p) = self.prof {
            p.unit_enter(&unit.name);
        }
        let flow = self
            .exec_block(unit, &mut frame, &unit.body)
            .map_err(|e| self.attach_ctx(e))?;
        if let Some(p) = self.prof {
            p.unit_exit();
            p.set_steps(self.steps);
        }
        debug_assert!(matches!(flow, Flow::Normal | Flow::Return));
        let result = unit.result.map(|(rv, rty)| {
            let Place::Frame(slot) = unit.vars[rv].place else { unreachable!() };
            frameval_to_val(&frame.slots[slot], rty)
        });
        let serial = std::mem::take(&mut self.serial_cost);
        self.trace.push_serial(serial);
        Ok((result, self.trace, self.out))
    }

    /// Builds and fills the entry frame for an external call.
    pub(crate) fn entry_frame(
        &mut self,
        unit_id: UnitId,
        args: &[crate::engine::ArgVal],
    ) -> Result<Frame, RunError> {
        let prog = Arc::clone(&self.ex.prog);
        let unit = &prog.units[unit_id];
        if unit.params.len() != args.len() {
            return Err(RunError::BadCall {
                name: unit.name.clone(),
                msg: format!("takes {} args, got {}", unit.params.len(), args.len()),
            });
        }
        let mut frame = self.build_frame(unit);
        for (k, a) in args.iter().enumerate() {
            let pinfo = &unit.vars[unit.params[k]];
            let Place::Frame(slot) = pinfo.place else { unreachable!() };
            frame.slots[slot] = match a {
                crate::engine::ArgVal::I(v) => typed_frameval(Val::I(*v), pinfo.ty),
                crate::engine::ArgVal::F(v) => typed_frameval(Val::F(*v), pinfo.ty),
                crate::engine::ArgVal::B(v) => typed_frameval(Val::B(*v), pinfo.ty),
                crate::engine::ArgVal::Arr(h) => FrameVal::Arr(Some(Arc::clone(h))),
            };
        }
        Ok(frame)
    }
}

pub(crate) fn zero_of(ty: ScalarTy) -> Val {
    match ty {
        ScalarTy::I => Val::I(0),
        ScalarTy::F => Val::F(0.0),
        ScalarTy::B => Val::B(false),
    }
}

pub(crate) fn typed_frameval(v: Val, ty: ScalarTy) -> FrameVal {
    match ty {
        ScalarTy::I => FrameVal::I(v.as_i()),
        ScalarTy::F => FrameVal::F(v.as_f()),
        ScalarTy::B => FrameVal::B(v.as_b()),
    }
}

pub(crate) fn frameval_to_val(fv: &FrameVal, ty: ScalarTy) -> Val {
    match fv {
        FrameVal::I(v) => Val::I(*v),
        FrameVal::F(v) => Val::F(*v),
        FrameVal::B(v) => Val::B(*v),
        FrameVal::Uninit => zero_of(ty),
        FrameVal::Arr(_) => zero_of(ty),
    }
}

pub(crate) fn store_val(arr: &ArrayObj, off: usize, v: Val) {
    match arr.ty {
        ScalarTy::I => arr.set_i(off, v.as_i()),
        ScalarTy::F => arr.set_f(off, v.as_f()),
        ScalarTy::B => arr.set_b(off, v.as_b()),
    }
}

pub(crate) fn trip_count(lo: i64, hi: i64, step: i64) -> u64 {
    if step > 0 {
        if hi < lo {
            0
        } else {
            ((hi - lo) / step + 1) as u64
        }
    } else if lo < hi {
        0
    } else {
        ((lo - hi) / (-step) + 1) as u64
    }
}

pub(crate) fn combine_f(op: RedOp, a: f64, b: f64) -> f64 {
    match op {
        RedOp::Add => a + b,
        RedOp::Mul => a * b,
        RedOp::Max => a.max(b),
        RedOp::Min => a.min(b),
    }
}

pub(crate) fn combine_i(op: RedOp, a: i64, b: i64) -> i64 {
    match op {
        RedOp::Add => a.wrapping_add(b),
        RedOp::Mul => a.wrapping_mul(b),
        RedOp::Max => a.max(b),
        RedOp::Min => a.min(b),
    }
}

pub(crate) fn combine_vals(ty: ScalarTy, op: RedOp, a: Val, b: Val) -> Val {
    match ty {
        ScalarTy::F => Val::F(combine_f(op, a.as_f(), b.as_f())),
        _ => Val::I(combine_i(op, a.as_i(), b.as_i())),
    }
}

pub(crate) fn identity_val(op: RedOp, ty: ScalarTy) -> Val {
    match (op, ty) {
        (RedOp::Add, ScalarTy::F) => Val::F(0.0),
        (RedOp::Mul, ScalarTy::F) => Val::F(1.0),
        (RedOp::Max, ScalarTy::F) => Val::F(f64::NEG_INFINITY),
        (RedOp::Min, ScalarTy::F) => Val::F(f64::INFINITY),
        (RedOp::Add, _) => Val::I(0),
        (RedOp::Mul, _) => Val::I(1),
        (RedOp::Max, _) => Val::I(i64::MIN),
        (RedOp::Min, _) => Val::I(i64::MAX),
    }
}

pub(crate) fn atomic_scalar_update(cell: &GlobalCell, tid: usize, ty: ScalarTy, op: RedOp, delta: Val) {
    let atom = cell.scalar_atomic(tid);
    match ty {
        ScalarTy::F => {
            let d = delta.as_f();
            let mut cur = atom.load(std::sync::atomic::Ordering::Relaxed);
            loop {
                let next = combine_f(op, f64::from_bits(cur), d).to_bits();
                match atom.compare_exchange_weak(
                    cur,
                    next,
                    std::sync::atomic::Ordering::AcqRel,
                    std::sync::atomic::Ordering::Relaxed,
                ) {
                    Ok(_) => return,
                    Err(a) => cur = a,
                }
            }
        }
        _ => {
            let d = delta.as_i();
            let mut cur = atom.load(std::sync::atomic::Ordering::Relaxed);
            loop {
                let next = combine_i(op, cur as i64, d) as u64;
                match atom.compare_exchange_weak(
                    cur,
                    next,
                    std::sync::atomic::Ordering::AcqRel,
                    std::sync::atomic::Ordering::Relaxed,
                ) {
                    Ok(_) => return,
                    Err(a) => cur = a,
                }
            }
        }
    }
}

/// Precomputed iteration -> owning-thread map for simulated regions.
pub(crate) fn build_owner_map(sched: Schedule, n: usize, threads: usize) -> Vec<u16> {
    let mut owner = vec![0u16; n];
    for t in 0..threads {
        for (lo, hi) in chunks_for(sched, n, t, threads) {
            for slot in owner.iter_mut().take(hi).skip(lo) {
                *slot = t as u16;
            }
        }
    }
    owner
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trip_counts() {
        assert_eq!(trip_count(1, 10, 1), 10);
        assert_eq!(trip_count(1, 10, 3), 4);
        assert_eq!(trip_count(10, 1, -1), 10);
        assert_eq!(trip_count(5, 4, 1), 0);
        assert_eq!(trip_count(4, 5, -1), 0);
    }

    #[test]
    fn owner_map_covers() {
        let m = build_owner_map(Schedule::StaticBlock, 10, 4);
        assert_eq!(m.len(), 10);
        assert_eq!(m[0], 0);
        assert_eq!(m[9], 3);
    }

    #[test]
    fn val_conversions() {
        assert_eq!(Val::F(2.9).as_i(), 2);
        assert_eq!(Val::I(3).as_f(), 3.0);
        assert!(Val::I(1).as_b());
        assert_eq!(Val::B(true).as_f(), 1.0);
    }

    #[test]
    fn identities_and_combines() {
        assert_eq!(identity_val(RedOp::Add, ScalarTy::F), Val::F(0.0));
        assert_eq!(combine_vals(ScalarTy::F, RedOp::Max, Val::F(1.0), Val::F(3.0)), Val::F(3.0));
        assert_eq!(combine_vals(ScalarTy::I, RedOp::Add, Val::I(2), Val::I(3)), Val::I(5));
    }
}
