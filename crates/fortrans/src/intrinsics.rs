//! Intrinsic functions — the FORTRAN library surface GLAF's extended
//! library back-end targets (§3.6: ABS, ALOG, SUM "and other functions").

use crate::rir::ScalarTy;

/// Scalar intrinsics (whole-array SUM/MAXVAL/MINVAL/SIZE/ALLOCATED are
/// handled separately in the resolver).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Intr {
    Abs,
    /// `ALOG` — FORTRAN 77 single-precision natural log name; evaluates
    /// identically to LOG in our f64 model.
    Alog,
    Log,
    Log10,
    Exp,
    Sqrt,
    Sin,
    Cos,
    Tan,
    Atan,
    Max,
    Min,
    Mod,
    Int,
    Nint,
    Real,
    Dble,
    Sign,
    Huge,
    Tiny,
}

impl Intr {
    /// Resolves a lowercase name.
    pub fn from_name(name: &str) -> Option<Intr> {
        Some(match name {
            "abs" | "dabs" => Intr::Abs,
            "alog" => Intr::Alog,
            "log" | "dlog" => Intr::Log,
            "log10" | "alog10" => Intr::Log10,
            "exp" | "dexp" => Intr::Exp,
            "sqrt" | "dsqrt" => Intr::Sqrt,
            "sin" => Intr::Sin,
            "cos" => Intr::Cos,
            "tan" => Intr::Tan,
            "atan" => Intr::Atan,
            "max" | "amax1" | "dmax1" | "max0" => Intr::Max,
            "min" | "amin1" | "dmin1" | "min0" => Intr::Min,
            "mod" => Intr::Mod,
            "int" | "ifix" => Intr::Int,
            "nint" => Intr::Nint,
            "real" | "float" => Intr::Real,
            "dble" => Intr::Dble,
            "sign" => Intr::Sign,
            "huge" => Intr::Huge,
            "tiny" => Intr::Tiny,
            _ => return None,
        })
    }

    /// Accepted argument count range.
    pub fn arity(self) -> (usize, usize) {
        match self {
            Intr::Max | Intr::Min => (2, 8),
            Intr::Mod | Intr::Sign => (2, 2),
            _ => (1, 1),
        }
    }

    /// Result type given the (promoted) argument type.
    pub fn result_ty(self, arg: ScalarTy) -> ScalarTy {
        match self {
            Intr::Int | Intr::Nint => ScalarTy::I,
            Intr::Real | Intr::Dble => ScalarTy::F,
            Intr::Abs | Intr::Max | Intr::Min | Intr::Mod | Intr::Sign | Intr::Huge | Intr::Tiny => arg,
            _ => ScalarTy::F,
        }
    }

    /// True for transcendental-cost operations (the cost model charges
    /// these as `fspecial`).
    pub fn is_special(self) -> bool {
        matches!(
            self,
            Intr::Alog
                | Intr::Log
                | Intr::Log10
                | Intr::Exp
                | Intr::Sqrt
                | Intr::Sin
                | Intr::Cos
                | Intr::Tan
                | Intr::Atan
        )
    }

    /// Evaluates with f64 arguments.
    pub fn eval_f(self, args: &[f64]) -> f64 {
        match self {
            Intr::Abs => args[0].abs(),
            Intr::Alog | Intr::Log => args[0].ln(),
            Intr::Log10 => args[0].log10(),
            Intr::Exp => args[0].exp(),
            Intr::Sqrt => args[0].sqrt(),
            Intr::Sin => args[0].sin(),
            Intr::Cos => args[0].cos(),
            Intr::Tan => args[0].tan(),
            Intr::Atan => args[0].atan(),
            Intr::Max => args.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            Intr::Min => args.iter().copied().fold(f64::INFINITY, f64::min),
            // FORTRAN MOD(a, p) = a - INT(a/p)*p (truncated).
            Intr::Mod => {
                let (a, p) = (args[0], args[1]);
                a - (a / p).trunc() * p
            }
            Intr::Int => args[0].trunc(),
            Intr::Nint => args[0].round(),
            Intr::Real | Intr::Dble => args[0],
            Intr::Sign => {
                if args[1] >= 0.0 {
                    args[0].abs()
                } else {
                    -args[0].abs()
                }
            }
            Intr::Huge => f64::MAX,
            Intr::Tiny => f64::MIN_POSITIVE,
        }
    }

    /// Evaluates with i64 arguments (for integer-typed results).
    pub fn eval_i(self, args: &[i64]) -> i64 {
        match self {
            Intr::Abs => args[0].wrapping_abs(),
            Intr::Max => args.iter().copied().max().unwrap_or(i64::MIN),
            Intr::Min => args.iter().copied().min().unwrap_or(i64::MAX),
            Intr::Mod => {
                if args[1] == 0 {
                    0
                } else {
                    args[0] % args[1]
                }
            }
            Intr::Sign => {
                if args[1] >= 0 {
                    args[0].wrapping_abs()
                } else {
                    -args[0].wrapping_abs()
                }
            }
            Intr::Huge => i64::MAX,
            Intr::Tiny => 1,
            _ => unreachable!("{self:?} has no integer evaluation"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_resolution_incl_f77_aliases() {
        assert_eq!(Intr::from_name("alog"), Some(Intr::Alog));
        assert_eq!(Intr::from_name("dsqrt"), Some(Intr::Sqrt));
        assert_eq!(Intr::from_name("amax1"), Some(Intr::Max));
        assert_eq!(Intr::from_name("nosuch"), None);
    }

    #[test]
    fn float_semantics() {
        assert_eq!(Intr::Abs.eval_f(&[-2.0]), 2.0);
        assert!((Intr::Alog.eval_f(&[std::f64::consts::E]) - 1.0).abs() < 1e-12);
        assert_eq!(Intr::Max.eval_f(&[1.0, 3.0, 2.0]), 3.0);
        assert_eq!(Intr::Sign.eval_f(&[-5.0, 2.0]), 5.0);
        assert_eq!(Intr::Sign.eval_f(&[5.0, -2.0]), -5.0);
    }

    #[test]
    fn fortran_mod_truncates_toward_zero() {
        assert_eq!(Intr::Mod.eval_f(&[7.5, 2.0]), 1.5);
        assert_eq!(Intr::Mod.eval_f(&[-7.5, 2.0]), -1.5);
        assert_eq!(Intr::Mod.eval_i(&[-7, 2]), -1);
        assert_eq!(Intr::Mod.eval_i(&[5, 0]), 0, "div-by-zero guarded");
    }

    #[test]
    fn integer_semantics() {
        assert_eq!(Intr::Abs.eval_i(&[-9]), 9);
        assert_eq!(Intr::Max.eval_i(&[1, 7, 3]), 7);
        assert_eq!(Intr::Min.eval_i(&[1, 7, 3]), 1);
    }

    #[test]
    fn result_types() {
        assert_eq!(Intr::Int.result_ty(ScalarTy::F), ScalarTy::I);
        assert_eq!(Intr::Abs.result_ty(ScalarTy::I), ScalarTy::I);
        assert_eq!(Intr::Exp.result_ty(ScalarTy::I), ScalarTy::F);
    }

    #[test]
    fn special_classification() {
        assert!(Intr::Exp.is_special());
        assert!(!Intr::Abs.is_special());
    }

    #[test]
    fn rounding() {
        assert_eq!(Intr::Int.eval_f(&[2.9]), 2.0);
        assert_eq!(Intr::Int.eval_f(&[-2.9]), -2.0);
        assert_eq!(Intr::Nint.eval_f(&[2.5]), 3.0);
    }
}
