//! The bytecode VM: executes [`crate::bytecode`] instruction streams.
//!
//! Register/stack hybrid: frame scalars live in unboxed per-type value
//! banks ([`VFrame`]) addressed directly by instructions; expression
//! temporaries flow through an untyped `u64` operand stack (f64 as
//! bits, bool as 0/1). The `TRACE` const generic compiles the whole
//! cost-accounting layer out of the Serial/Parallel fast path: with
//! `TRACE = false` every `op()` call is an empty inlined function.
//!
//! Semantics mirror [`crate::interp::Task`] exactly — same side-effect
//! order, same error messages, same cost-event stream in Simulated mode
//! (the differential suite in `tests/vm_differential.rs` pins this).
//! Parallel regions fork `Vm<false>` workers over the same
//! [`omprt::ThreadPool`] the tree-walker uses, with cloned frames
//! (private/firstprivate), deep-copied PRIVATE arrays, reduction
//! identities and completion-order result collection.

use std::sync::Arc;

use omprt::{chunks_for, ThreadPool};
use parking_lot::Mutex;

use crate::bytecode::{
    BArg, BInstr, BUnit, Cmp, OmpDesc, PItem, RedSpec, VSlot, VecDesc, VecOp, VecRedOp, NO_PC,
    NO_SLOT, VEC_CHUNK,
};
use crate::cost::{CostCounters, CostTrace, RegionEvent};
use crate::engine::ArgVal;
use crate::error::RunError;
use crate::interp::{
    atomic_scalar_update, build_owner_map, combine_f, combine_i, combine_vals, identity_val,
    store_val, trip_count, Exec, ExecMode, Flow, Val,
};
use crate::jit::{JitCtx, PoolEntry, Stream as JitStream};
use crate::rir::{ScalarTy, VecClass};
use crate::storage::{ArrayObj, MAX_THREADS};

/// Reduction partials from one parallel region, keyed for a
/// deterministic combine order (tid under static schedules, first flat
/// iteration of the chunk under dynamic/guided).
type KeyedPartials = Vec<(usize, Result<Vec<Val>, RunError>)>;

/// One native-tier memo entry: `(unit, descriptor)` key mapped to the
/// resolved region, or `None` when promotion refused the descriptor.
type NativeMemoEntry = ((u32, u32), Option<Arc<crate::jit::NativeRegion>>);

/// Unboxed per-type value banks for one call frame.
#[derive(Clone)]
pub(crate) struct VFrame {
    pub i: Vec<i64>,
    pub f: Vec<f64>,
    pub b: Vec<bool>,
    pub a: Vec<Option<Arc<ArrayObj>>>,
}

impl VFrame {
    fn new(bu: &BUnit) -> VFrame {
        let mut fr = VFrame {
            i: vec![0; bu.ni as usize],
            f: vec![0.0; bu.nf as usize],
            b: vec![false; bu.nb as usize],
            a: vec![None; bu.na as usize],
        };
        for (slot, ty, dims) in &bu.fixed_arrays {
            fr.a[*slot as usize] = Some(Arc::new(ArrayObj::new(*ty, dims.clone())));
        }
        fr
    }

    /// Restores a pooled frame to the `VFrame::new` state: banks zeroed,
    /// fixed-shape locals zeroed (reusing their storage when this frame
    /// holds the only handle), everything else unallocated.
    fn reset(&mut self, bu: &BUnit) {
        self.i.iter_mut().for_each(|x| *x = 0);
        self.f.iter_mut().for_each(|x| *x = 0.0);
        self.b.iter_mut().for_each(|x| *x = false);
        for (idx, s) in self.a.iter_mut().enumerate() {
            if !bu.fixed_arrays.iter().any(|(sl, _, _)| *sl as usize == idx) {
                *s = None;
            }
        }
        for (slot, ty, dims) in &bu.fixed_arrays {
            let s = &mut self.a[*slot as usize];
            match s {
                Some(h) if Arc::strong_count(h) == 1 => {
                    for off in 0..h.len() {
                        h.set_bits(off, 0);
                    }
                }
                _ => *s = Some(Arc::new(ArrayObj::new(*ty, dims.clone()))),
            }
        }
    }

    fn read(&self, vs: VSlot, ex: &Exec, tid: usize) -> u64 {
        match vs {
            VSlot::I(s) => self.i[s as usize] as u64,
            VSlot::F(s) => self.f[s as usize].to_bits(),
            VSlot::B(s) => u64::from(self.b[s as usize]),
            VSlot::GlobS(c) => ex.globals.cells[c as usize].load_bits(tid),
            VSlot::A(_) | VSlot::GlobA(_) => unreachable!("scalar read of array slot"),
        }
    }

    /// Writes `val` converted to the slot's declared type `ty`.
    fn write(&mut self, vs: VSlot, ty: ScalarTy, val: Val, ex: &Exec, tid: usize) {
        match vs {
            VSlot::I(s) => self.i[s as usize] = val.as_i(),
            VSlot::F(s) => self.f[s as usize] = val.as_f(),
            VSlot::B(s) => self.b[s as usize] = val.as_b(),
            VSlot::GlobS(c) => ex.globals.cells[c as usize].store_bits(tid, val.to_bits(ty)),
            VSlot::A(_) | VSlot::GlobA(_) => unreachable!("scalar write to array slot"),
        }
    }
}

/// Cost-region context (mirror of the interpreter's `RegionCtx`).
struct VRegion {
    per_thread: Vec<CostCounters>,
    cur: usize,
    critical: CostCounters,
    threads: usize,
    trip: u64,
    reductions: usize,
}

/// Simulated-mode cost state; dormant (all fields untouched) when
/// `TRACE = false`.
#[derive(Default)]
struct Tracer {
    serial: CostCounters,
    region: Option<Box<VRegion>>,
    trace: CostTrace,
    in_sim_region: bool,
    critical_depth: u32,
    vec_mode: VecClass,
    vec_stack: Vec<VecClass>,
}

/// Operation kinds (mirror of the interpreter's `OpK`).
#[derive(Clone, Copy)]
enum VOp {
    Flop,
    FDiv,
    FSpecial,
    IOp,
    Load,
    Store,
}

/// Maximum rank handled without heap-allocating the subscript buffer.
const MAX_INLINE_RANK: usize = 8;

pub(crate) struct Vm<'e, const TRACE: bool> {
    ex: &'e Exec,
    bunits: &'e [BUnit],
    tid: usize,
    stack: Vec<u64>,
    astack: Vec<Arc<ArrayObj>>,
    sstash: Vec<i64>,
    fscratch: Vec<f64>,
    iscratch: Vec<i64>,
    /// Per-run cache of global array handles, indexed by cell: fetching a
    /// handle through the cell's RwLock on every element access dominates
    /// kernel time. Entries are dropped on ALLOCATE/DEALLOCATE of the
    /// cell and wholesale after a real parallel region (workers may have
    /// reallocated); within one VM every handle change flows through this
    /// VM's own instructions, so the cache stays coherent.
    gcache: Vec<Option<Arc<ArrayObj>>>,
    /// Frame free-list per unit: call-heavy kernels (one frame per edge
    /// or cell) would otherwise pay four Vec allocations plus fixed-array
    /// instantiation on every call.
    fpool: Vec<Vec<VFrame>>,
    /// Free-list for ALLOCATE/DEALLOCATE of frame-local allocatables
    /// (the FUN3D edge loop frees ten small temporaries per call).
    /// Only uniquely-owned handles enter the pool; reuse re-zeroes the
    /// cells, matching `ArrayObj::new`.
    apool: Vec<Arc<ArrayObj>>,
    tr: Tracer,
    in_real_region: bool,
    depth: usize,
    out: String,
    /// Profiling collector, attached only to the main-thread VM of a
    /// profiled run (`Engine::run_profiled`); `None` everywhere else —
    /// workers never carry one, keeping the hot path a single
    /// pointer-null test at loop/unit/region boundaries.
    prof: Option<&'e crate::trace::Collector>,
    /// Fault-location registers: the unit and pc currently executing.
    /// Kept current by `run_range`; restored across nested calls only on
    /// success, so a propagating error pins the innermost fault site.
    cur_uidx: usize,
    cur_pc: u32,
    /// Instructions retired, for the `RunLimits` step budget.
    steps: u64,
    /// Lane scratch for the vector superinstruction path: `max_depth`
    /// stacked lanes of [`VEC_CHUNK`] f64 each, reused across loops.
    vbuf: Vec<f64>,
    /// Resolved access streams `(handle, base, stride)` for the vector
    /// path, reused across loop entries to avoid per-entry allocation.
    vres: Vec<(Arc<ArrayObj>, i64, i64)>,
    /// Native-tier promotion memo, keyed `(unit, descriptor)`. `Ready`
    /// and `Refused` are final for the run's cache, so after the first
    /// resolution a loop entry costs a short linear scan instead of the
    /// shared cache's mutex + hash lookup (hot kernels make thousands
    /// of entries over a handful of distinct loops). `None` = refused.
    nmemo: Vec<NativeMemoEntry>,
    /// Reused operand-pool and stream buffers for native-tier entries.
    npool: Vec<u64>,
    nstreams: Vec<JitStream>,
}

impl<'e, const TRACE: bool> Vm<'e, TRACE> {
    fn new(ex: &'e Exec, bunits: &'e [BUnit], tid: usize) -> Self {
        Vm {
            ex,
            bunits,
            tid,
            stack: Vec::with_capacity(32),
            astack: Vec::new(),
            sstash: Vec::new(),
            fscratch: Vec::new(),
            iscratch: Vec::new(),
            gcache: vec![None; ex.globals.cells.len()],
            fpool: vec![Vec::new(); bunits.len()],
            apool: Vec::new(),
            tr: Tracer::default(),
            in_real_region: false,
            depth: 0,
            out: String::new(),
            prof: None,
            cur_uidx: 0,
            cur_pc: 0,
            steps: 0,
            vbuf: Vec::new(),
            vres: Vec::new(),
            nmemo: Vec::new(),
            npool: Vec::new(),
            nstreams: Vec::new(),
        }
    }

    /// Per-instruction accounting against the engine's `RunLimits`.
    #[inline(always)]
    fn tick(&mut self) -> Result<(), RunError> {
        self.steps += 1;
        let lim = &self.ex.limits;
        if let Some(max) = lim.max_steps {
            if self.steps > max {
                return Err(RunError::Limit { msg: format!("step budget of {max} exhausted") });
            }
        }
        if lim.poll && self.steps.is_multiple_of(1024) {
            // Line attribution happens in `vm_ctx` at the catch site
            // (`line_for_pc` is a table walk; keep the hot path lean).
            lim.check_interrupt(None)?;
        }
        Ok(())
    }

    // ---------- cost hooks (exact mirror of Task::op / op_n / add_misc) ----------

    #[inline(always)]
    fn op(&mut self, k: VOp) {
        if TRACE {
            self.op_n(k, 1);
        }
    }

    fn op_n(&mut self, k: VOp, n: u64) {
        if !TRACE {
            return;
        }
        let vec = self.tr.vec_mode;
        let crit = self.tr.critical_depth > 0 && self.tr.region.is_some();
        let apply = |c: &mut CostCounters| {
            let o = match vec {
                VecClass::Simd => &mut c.vector,
                _ => &mut c.scalar,
            };
            match k {
                VOp::Flop => o.flop += n,
                VOp::FDiv => o.fdiv += n,
                VOp::FSpecial => o.fspecial += n,
                VOp::IOp => o.iop += n,
                VOp::Load => o.load += n,
                VOp::Store => {
                    if vec == VecClass::Memset {
                        c.memset_bytes += 8 * n;
                    } else {
                        o.store += n;
                    }
                }
            }
        };
        apply(match &mut self.tr.region {
            Some(r) => &mut r.per_thread[r.cur],
            None => &mut self.tr.serial,
        });
        if crit {
            if let Some(r) = &mut self.tr.region {
                apply(&mut r.critical);
            }
        }
    }

    fn add_misc(&mut self, f: impl Fn(&mut CostCounters)) {
        if !TRACE {
            return;
        }
        f(match &mut self.tr.region {
            Some(r) => &mut r.per_thread[r.cur],
            None => &mut self.tr.serial,
        });
        if self.tr.critical_depth > 0 {
            if let Some(r) = &mut self.tr.region {
                f(&mut r.critical);
            }
        }
    }

    // ---------- small helpers ----------

    #[inline(always)]
    fn pop(&mut self) -> u64 {
        self.stack.pop().expect("operand stack underflow")
    }

    #[inline(always)]
    fn push(&mut self, v: u64) {
        self.stack.push(v);
    }

    #[inline(always)]
    fn popf(&mut self) -> f64 {
        f64::from_bits(self.pop())
    }

    #[inline(always)]
    fn popi(&mut self) -> i64 {
        self.pop() as i64
    }

    fn var_name<'p>(&self, uidx: usize, v: u32) -> &'p str
    where
        'e: 'p,
    {
        &self.ex.prog.units[uidx].vars[v as usize].name
    }

    /// Cached global array handle for cell `c` (None = unallocated).
    #[inline]
    fn gfill(&mut self, c: u32) {
        let slot = &mut self.gcache[c as usize];
        if slot.is_none() {
            *slot = self.ex.globals.cells[c as usize].array_handle(self.tid);
        }
    }

    /// Array handle of slot `vs` (interpreter's `array_handle`), as an
    /// owned handle — for handlers that iterate or keep it.
    fn handle_in(
        &mut self,
        uidx: usize,
        frame: &VFrame,
        vs: VSlot,
        v: u32,
    ) -> Result<Arc<ArrayObj>, RunError> {
        match vs {
            VSlot::A(s) => frame.a[s as usize]
                .clone()
                .ok_or_else(|| RunError::Unallocated { var: self.var_name(uidx, v).to_string() }),
            VSlot::GlobA(c) | VSlot::GlobS(c) => {
                self.gfill(c);
                self.gcache[c as usize]
                    .clone()
                    .ok_or_else(|| RunError::Unallocated { var: self.var_name(uidx, v).to_string() })
            }
            _ => Err(RunError::Type {
                msg: format!("`{}` is not an array", self.var_name(uidx, v)),
            }),
        }
    }

    /// Array of slot `vs` by reference — the element-access fast path
    /// (no lock, no refcount). `name` must be fetched by the caller
    /// beforehand (it lives in `'e`, so it survives this borrow).
    #[inline]
    fn aref<'s>(
        &'s mut self,
        frame: &'s VFrame,
        vs: VSlot,
        name: &str,
    ) -> Result<&'s ArrayObj, RunError> {
        match vs {
            VSlot::A(s) => frame.a[s as usize]
                .as_deref()
                .ok_or_else(|| RunError::Unallocated { var: name.to_string() }),
            VSlot::GlobA(c) | VSlot::GlobS(c) => {
                self.gfill(c);
                self.gcache[c as usize]
                    .as_deref()
                    .ok_or_else(|| RunError::Unallocated { var: name.to_string() })
            }
            _ => Err(RunError::Type { msg: format!("`{name}` is not an array") }),
        }
    }

    /// Pops `n` subscripts (pushed in order) into a stack-local buffer.
    #[inline]
    fn pop_subs_into(&mut self, n: usize, buf: &mut [i64; MAX_INLINE_RANK]) {
        debug_assert!(n <= MAX_INLINE_RANK);
        let at = self.stack.len() - n;
        for (d, &b) in self.stack[at..].iter().enumerate() {
            buf[d] = b as i64;
        }
        self.stack.truncate(at);
    }

    /// Takes a matching array from the ALLOCATE pool, re-zeroed.
    fn apool_take(&mut self, ty: ScalarTy, rd: &[(i64, i64)]) -> Option<Arc<ArrayObj>> {
        let idx = self.apool.iter().position(|h| h.ty == ty && h.dims == rd)?;
        let h = self.apool.swap_remove(idx);
        for off in 0..h.len() {
            h.set_bits(off, 0);
        }
        Some(h)
    }

    /// Pops `n` subscripts (pushed in order) into a fresh Vec.
    fn pop_subs(&mut self, n: usize) -> Vec<i64> {
        let at = self.stack.len() - n;
        let subs = self.stack[at..].iter().map(|&b| b as i64).collect();
        self.stack.truncate(at);
        subs
    }

    fn vec_snapshot(&self) -> (VecClass, usize) {
        (self.tr.vec_mode, self.tr.vec_stack.len())
    }

    fn vec_restore(&mut self, snap: (VecClass, usize)) {
        if TRACE {
            self.tr.vec_mode = snap.0;
            self.tr.vec_stack.truncate(snap.1);
        }
    }

    // ---------- vector superinstruction execution ----------

    /// Resolves every access stream of `d` for the whole range
    /// `[lo, hi]` into `rt` as `(handle, base, stride)` triples:
    /// array handle, flat base offset at iteration `lo`, and
    /// per-iteration element stride, with per-dimension bounds proven
    /// for the whole range. Shared by the vector and native tiers so
    /// both commit (or give up) on exactly the same guards. Returns
    /// `false` — with `rt` cleared and no state touched — when any
    /// guard fails: unallocated/mistyped handle, rank mismatch,
    /// subscript overflow, out-of-range endpoint extrema, or aliasing.
    fn resolve_vec_streams(
        &mut self,
        frame: &VFrame,
        d: &VecDesc,
        lo: i64,
        hi: i64,
        rt: &mut Vec<(Arc<ArrayObj>, i64, i64)>,
    ) -> bool {
        rt.clear();
        let uidx = self.cur_uidx;
        for a in &d.accesses {
            // Injected/corrupted descriptors (fault-injection harness)
            // must deopt, not index out of range: validate the slot and
            // invariant indices before touching the banks.
            let in_range = match a.vs {
                VSlot::A(s) => (s as usize) < frame.a.len(),
                VSlot::GlobA(c) | VSlot::GlobS(c) => (c as usize) < self.gcache.len(),
                _ => false,
            };
            if !in_range
                || a.subs.iter().any(|s| s.inv != NO_SLOT && s.inv as usize >= frame.i.len())
            {
                rt.clear();
                return false;
            }
            let Ok(h) = self.handle_in(uidx, frame, a.vs, a.v) else {
                rt.clear();
                return false;
            };
            if h.ty != ScalarTy::F || h.dims.len() != a.subs.len() {
                rt.clear();
                return false;
            }
            let mut base: i64 = 0;
            let mut stride: i64 = 0;
            let mut dim_stride: i64 = 1;
            for (sub, &(dlo, dhi)) in a.subs.iter().zip(h.dims.iter()) {
                let inv = match sub.inv {
                    NO_SLOT => 0,
                    s => frame.i[s as usize],
                };
                let at = |i: i64| {
                    sub.coeff.checked_mul(i).and_then(|x| x.checked_add(sub.add)).and_then(|x| {
                        x.checked_add(inv)
                    })
                };
                let (Some(at_lo), Some(at_hi)) = (at(lo), at(hi)) else {
                    rt.clear();
                    return false;
                };
                // The subscript is affine in i, so its extrema over the
                // range sit at the endpoints.
                let (mn, mx) = if at_lo <= at_hi { (at_lo, at_hi) } else { (at_hi, at_lo) };
                if mn < dlo || mx > dhi {
                    rt.clear();
                    return false;
                }
                let Some(ds) = sub.coeff.checked_mul(dim_stride) else {
                    rt.clear();
                    return false;
                };
                base += (at_lo - dlo) * dim_stride;
                stride += ds;
                dim_stride *= (dhi - dlo + 1).max(0);
            }
            rt.push((h, base, stride));
        }
        // Aliasing: compile time only proved distinct *slots*. If a
        // written stream shares storage with any other stream they must
        // walk the exact same cells (a loop-independent dependence the
        // per-element statement order already honors); anything else —
        // offset overlap, different strides — re-runs scalar.
        for (i, a) in d.accesses.iter().enumerate() {
            for (j, b) in d.accesses.iter().enumerate().skip(i + 1) {
                if !(a.write || b.write) {
                    continue;
                }
                if Arc::ptr_eq(&rt[i].0, &rt[j].0) && (rt[i].1 != rt[j].1 || rt[i].2 != rt[j].2) {
                    rt.clear();
                    return false;
                }
            }
        }
        true
    }

    /// Tier-3 entry: runs a promoted vector region in native code.
    ///
    /// `Ok(true)` — the whole loop ran natively (caller jumps to
    /// `exit`). `Ok(false)` — the tier is off for this run, the region
    /// isn't past its hotness threshold yet, compilation was refused,
    /// or an entry guard failed on a promoted region (a *deopt*,
    /// counted on the session); the caller falls through to the
    /// vector/scalar paths, which re-check the same guards and produce
    /// the bit-identical answer — or the stock error at the exact
    /// faulting iteration. Step pre-reservation and the interrupt
    /// cadence (one poll per ~1024 scalar-equivalent steps) are
    /// exactly the vector tier's, so `RunLimits` and cancellation trip
    /// identically in all three tiers.
    fn exec_native_loop(
        &mut self,
        frame: &mut VFrame,
        bu: &'e BUnit,
        desc: u32,
        ctr: u32,
        end: u32,
        var: u32,
    ) -> Result<bool, RunError> {
        // Traced builds never emit VecLoop; profiled runs want
        // per-iteration loop events, so they take the scalar path.
        if TRACE || self.prof.is_some() {
            return Ok(false);
        }
        let Some(nh) = self.ex.native.clone() else {
            return Ok(false);
        };
        let d = &bu.vecs[desc as usize];
        let lo = frame.i[ctr as usize];
        let hi = frame.i[end as usize];
        let n = match hi.checked_sub(lo).and_then(|x| x.checked_add(1)) {
            Some(x) if x > 0 => x,
            _ => return Ok(false), // zero-trip: scalar head exits at once
        };
        // Pre-reserve the steps the scalar loop would retire, exactly
        // like the vector tier: if the budget can't cover them, run
        // scalar so it trips with the stock error at the right
        // iteration.
        let cost = (n as u64).saturating_mul(u64::from(d.iter_cost));
        if let Some(max) = self.ex.limits.max_steps {
            if self.steps.saturating_add(cost) > max {
                return Ok(false);
            }
        }
        // Promotion: count this entry's heat and fetch the compiled
        // region if it's past the threshold (re-verified + emitted on
        // first promotion; refusals are cached). Final outcomes are
        // memoized per run so steady-state entries skip the shared
        // cache's mutex.
        let key = (self.cur_uidx as u32, desc);
        let region = match self.nmemo.iter().find(|(k, _)| *k == key) {
            Some((_, Some(r))) => Arc::clone(r),
            Some((_, None)) => return Ok(false),
            None => match nh.promote(&self.ex.prog, self.bunits, key.0, key.1) {
                crate::jit::Promotion::NotYet => return Ok(false),
                crate::jit::Promotion::Ready(r) => {
                    self.nmemo.push((key, Some(Arc::clone(&r))));
                    r
                }
                crate::jit::Promotion::Refused => {
                    self.nmemo.push((key, None));
                    return Ok(false);
                }
            },
        };
        let mut rt = std::mem::take(&mut self.vres);
        if !self.resolve_vec_streams(frame, d, lo, hi, &mut rt) || rt.len() != region.naccess {
            rt.clear();
            self.vres = rt;
            nh.count_deopt();
            return Ok(false);
        }
        // Committed: all guards passed.
        self.steps = self.steps.saturating_add(cost);
        nh.count_entry();
        // Resolve the loop-invariant operand pool from the region's
        // recipe (frame scalars / globals can change between entries;
        // the machine code only sees pool offsets). Both buffers are
        // per-VM scratch, reused across entries.
        let mut pool = std::mem::take(&mut self.npool);
        pool.clear();
        pool.extend(region.pool.iter().map(|e| match *e {
            PoolEntry::ConstF(b) => b,
            PoolEntry::FrameF(s) => frame.f[s as usize].to_bits(),
            PoolEntry::GlobF(c) => self.ex.globals.cells[c as usize].load_bits(self.tid),
            PoolEntry::ICoeff(c) => c as u64,
            PoolEntry::IBase { coeff, add, inv } => {
                let invv = match inv {
                    NO_SLOT => 0,
                    s => frame.i[s as usize],
                };
                coeff.wrapping_mul(lo).wrapping_add(add).wrapping_add(invv) as u64
            }
        }));
        // Stream pointers address the element at iteration `lo`; every
        // offset `base + stride*k` for the whole range was proven
        // in-bounds above (affine subscripts, endpoint extrema), so the
        // emitted code needs no bounds checks. The `AtomicU64` cells
        // have guaranteed `u64` layout, and the VM owns this frame's
        // arrays for the duration (same discipline as the vector
        // tier's relaxed loads/stores).
        let mut streams = std::mem::take(&mut self.nstreams);
        streams.clear();
        streams.extend(rt.iter().map(|(h, base, stride)| JitStream {
            ptr: unsafe { (h.cells.as_ptr() as *mut u64).offset(*base as isize) },
            stride8: stride * 8,
        }));
        let mut ctx = JitCtx {
            k0: 0,
            k1: 0,
            streams: streams.as_ptr(),
            pool: pool.as_ptr(),
            acc: 0.0,
            spill: [0; 24],
        };
        if let Some(r) = d.red {
            ctx.acc = match r.vs {
                VSlot::F(s) => frame.f[s as usize],
                VSlot::GlobS(c) => {
                    f64::from_bits(self.ex.globals.cells[c as usize].load_bits(self.tid))
                }
                _ => unreachable!("verified reduction accumulator slot"),
            };
        }
        // Run in blocks of ~1024 scalar-equivalent steps, polling the
        // deadline/token between blocks — the scalar tick() cadence.
        let block = (1024 / i64::from(d.iter_cost.max(1))).max(1);
        let mut k0: i64 = 0;
        while k0 < n {
            if self.ex.limits.poll {
                if let Err(e) = self.ex.limits.check_interrupt(None) {
                    rt.clear();
                    self.vres = rt;
                    self.npool = pool;
                    self.nstreams = streams;
                    return Err(e);
                }
            }
            let k1 = (k0 + block).min(n);
            ctx.k0 = k0;
            ctx.k1 = k1;
            // SAFETY: `streams`/`pool` outlive the call and every
            // iteration offset in `[k0, k1)` was proven in-bounds; the
            // region was emitted from a verifier-accepted descriptor.
            unsafe { region.enter(&mut ctx) };
            k0 = k1;
        }
        if let Some(r) = d.red {
            match r.vs {
                VSlot::F(s) => frame.f[s as usize] = ctx.acc,
                VSlot::GlobS(c) => {
                    self.ex.globals.cells[c as usize].store_bits(self.tid, ctx.acc.to_bits());
                }
                _ => unreachable!("verified reduction accumulator slot"),
            }
        }
        rt.clear();
        self.vres = rt;
        self.npool = pool;
        self.nstreams = streams;
        // Leave the DO state exactly as the scalar head/incr would.
        frame.i[var as usize] = hi;
        frame.i[ctr as usize] = hi.wrapping_add(1);
        Ok(true)
    }

    /// Executes a vectorized unit-stride DO loop in chunked slice form.
    ///
    /// Returns `Ok(true)` when the whole loop ran on the vector path
    /// (caller jumps to `exit`). `Ok(false)` means a runtime guard
    /// failed; no state was touched and the caller falls through to the
    /// scalar `DoHead1`, which re-runs the loop with the exact scalar
    /// semantics — including producing the bounds/limit error at the
    /// precise faulting iteration. All guards run before the first
    /// element is written, so a loop either completes vectorized or
    /// executes fully scalar; results are bit-identical either way.
    fn exec_vec_loop(
        &mut self,
        frame: &mut VFrame,
        bu: &'e BUnit,
        desc: u32,
        ctr: u32,
        end: u32,
        var: u32,
    ) -> Result<bool, RunError> {
        // Traced builds never emit VecLoop; profiled runs want
        // per-iteration loop events, so they take the scalar path.
        if TRACE || !self.ex.vector_enabled || self.prof.is_some() {
            return Ok(false);
        }
        let d = &bu.vecs[desc as usize];
        let lo = frame.i[ctr as usize];
        let hi = frame.i[end as usize];
        let n = match hi.checked_sub(lo).and_then(|x| x.checked_add(1)) {
            Some(x) if x > 0 => x,
            _ => return Ok(false), // zero-trip: scalar head exits at once
        };
        // Pre-reserve the steps the scalar loop would retire. If the
        // budget can't cover them, run scalar so it trips with the
        // stock error at the right iteration.
        let cost = (n as u64).saturating_mul(u64::from(d.iter_cost));
        if let Some(max) = self.ex.limits.max_steps {
            if self.steps.saturating_add(cost) > max {
                return Ok(false);
            }
        }
        // Same injected-corruption defense as the access streams: an
        // out-of-range accumulator slot deopts to the scalar head.
        if let Some(r) = d.red {
            let ok = match r.vs {
                VSlot::F(s) => (s as usize) < frame.f.len(),
                VSlot::GlobS(c) => (c as usize) < self.ex.globals.cells.len(),
                _ => false,
            };
            if !ok {
                return Ok(false);
            }
        }
        let mut rt = std::mem::take(&mut self.vres);
        if !self.resolve_vec_streams(frame, d, lo, hi, &mut rt) {
            self.vres = rt;
            return Ok(false);
        }
        // Committed: all guards passed.
        self.steps = self.steps.saturating_add(cost);
        self.ex.vector_entries.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        if !d.stmts.is_empty() {
            let depth = (d.max_depth as usize).max(1);
            let mut vbuf = std::mem::take(&mut self.vbuf);
            vbuf.clear();
            vbuf.resize(depth * VEC_CHUNK, 0.0);
            let mut args = [0.0f64; 8];
            let mut acc = d.red.map(|r| match r.vs {
                VSlot::F(s) => frame.f[s as usize],
                VSlot::GlobS(c) => {
                    f64::from_bits(self.ex.globals.cells[c as usize].load_bits(self.tid))
                }
                _ => unreachable!("verified reduction accumulator slot"),
            });
            let mut k0: i64 = 0;
            while k0 < n {
                // The scalar tick() only polls the deadline/token every
                // 1024 steps; checking every chunk is at least as prompt.
                if self.ex.limits.poll {
                    if let Err(e) = self.ex.limits.check_interrupt(None) {
                        self.vbuf = vbuf;
                        rt.clear();
                        self.vres = rt;
                        return Err(e);
                    }
                }
                let m = ((n - k0) as usize).min(VEC_CHUNK);
                for ops in &d.stmts {
                    let mut dep = 0usize;
                    for op in ops {
                        match *op {
                            VecOp::Load(ai) => {
                                let (h, base, stride) = &rt[ai as usize];
                                let mut off = base + stride * k0;
                                for x in &mut vbuf[dep * VEC_CHUNK..dep * VEC_CHUNK + m] {
                                    *x = h.get_f(off as usize);
                                    off += stride;
                                }
                                dep += 1;
                            }
                            VecOp::Splat(c) => {
                                vbuf[dep * VEC_CHUNK..dep * VEC_CHUNK + m].fill(c);
                                dep += 1;
                            }
                            VecOp::SplatF(s) => {
                                vbuf[dep * VEC_CHUNK..dep * VEC_CHUNK + m]
                                    .fill(frame.f[s as usize]);
                                dep += 1;
                            }
                            VecOp::SplatG(c) => {
                                let v = f64::from_bits(
                                    self.ex.globals.cells[c as usize].load_bits(self.tid),
                                );
                                vbuf[dep * VEC_CHUNK..dep * VEC_CHUNK + m].fill(v);
                                dep += 1;
                            }
                            VecOp::SplatI { coeff, add, inv } => {
                                let invv = match inv {
                                    NO_SLOT => 0,
                                    s => frame.i[s as usize],
                                };
                                let i0 = lo.wrapping_add(k0);
                                for (j, x) in vbuf[dep * VEC_CHUNK..dep * VEC_CHUNK + m]
                                    .iter_mut()
                                    .enumerate()
                                {
                                    let i = i0.wrapping_add(j as i64);
                                    *x = coeff.wrapping_mul(i).wrapping_add(add).wrapping_add(invv)
                                        as f64;
                                }
                                dep += 1;
                            }
                            VecOp::Add | VecOp::Sub | VecOp::Mul | VecOp::Div | VecOp::Pow => {
                                let at = (dep - 2) * VEC_CHUNK;
                                let (a, b) = vbuf[at..].split_at_mut(VEC_CHUNK);
                                let (a, b) = (&mut a[..m], &b[..m]);
                                match *op {
                                    VecOp::Add => {
                                        for (x, y) in a.iter_mut().zip(b) {
                                            *x += y;
                                        }
                                    }
                                    VecOp::Sub => {
                                        for (x, y) in a.iter_mut().zip(b) {
                                            *x -= y;
                                        }
                                    }
                                    VecOp::Mul => {
                                        for (x, y) in a.iter_mut().zip(b) {
                                            *x *= y;
                                        }
                                    }
                                    VecOp::Div => {
                                        for (x, y) in a.iter_mut().zip(b) {
                                            *x /= y;
                                        }
                                    }
                                    _ => {
                                        for (x, &y) in a.iter_mut().zip(b.iter()) {
                                            *x = x.powf(y);
                                        }
                                    }
                                }
                                dep -= 1;
                            }
                            VecOp::PowI(e) => {
                                let at = (dep - 1) * VEC_CHUNK;
                                for x in &mut vbuf[at..at + m] {
                                    *x = x.powi(e);
                                }
                            }
                            VecOp::Neg => {
                                let at = (dep - 1) * VEC_CHUNK;
                                for x in &mut vbuf[at..at + m] {
                                    *x = -*x;
                                }
                            }
                            VecOp::Intr { f, argc } => {
                                let na = argc as usize;
                                dep -= na;
                                for j in 0..m {
                                    for (t, a) in args.iter_mut().enumerate().take(na) {
                                        *a = vbuf[(dep + t) * VEC_CHUNK + j];
                                    }
                                    vbuf[dep * VEC_CHUNK + j] = f.eval_f(&args[..na]);
                                }
                                dep += 1;
                            }
                            VecOp::Store(ai) => {
                                dep -= 1;
                                let (h, base, stride) = &rt[ai as usize];
                                let mut off = base + stride * k0;
                                for &x in &vbuf[dep * VEC_CHUNK..dep * VEC_CHUNK + m] {
                                    h.set_f(off as usize, x);
                                    off += stride;
                                }
                            }
                        }
                    }
                }
                if let (Some(r), Some(a)) = (d.red, acc.as_mut()) {
                    // The single reduction program left its term lanes
                    // at depth 0; fold them in iteration order with the
                    // accumulator on the side it held in source.
                    for &t in &vbuf[..m] {
                        *a = match (r.op, r.acc_left) {
                            (VecRedOp::Add, true) => *a + t,
                            (VecRedOp::Add, false) => t + *a,
                            (VecRedOp::Mul, true) => *a * t,
                            (VecRedOp::Mul, false) => t * *a,
                        };
                    }
                }
                k0 += m as i64;
            }
            if let (Some(r), Some(a)) = (d.red, acc) {
                match r.vs {
                    VSlot::F(s) => frame.f[s as usize] = a,
                    VSlot::GlobS(c) => {
                        self.ex.globals.cells[c as usize].store_bits(self.tid, a.to_bits());
                    }
                    _ => unreachable!("verified reduction accumulator slot"),
                }
            }
            self.vbuf = vbuf;
        }
        rt.clear();
        self.vres = rt;
        // Leave the DO state exactly as the scalar head/incr would:
        // the variable holds the last iteration, the counter one past.
        frame.i[var as usize] = hi;
        frame.i[ctr as usize] = hi.wrapping_add(1);
        Ok(true)
    }

    // ---------- the dispatch loop ----------

    fn run_range(
        &mut self,
        uidx: usize,
        frame: &mut VFrame,
        lo: u32,
        hi: u32,
    ) -> Result<Flow, RunError> {
        let bu: &'e BUnit = &self.bunits[uidx];
        let code: &'e [BInstr] = &bu.code;
        let mut pc = lo as usize;
        let hi = hi as usize;
        self.cur_uidx = uidx;
        while pc < hi {
            self.cur_pc = pc as u32;
            self.tick()?;
            match code[pc] {
                BInstr::Const(b) => self.push(b),
                BInstr::LoadI(s) => self.push(frame.i[s as usize] as u64),
                BInstr::LoadF(s) => self.push(frame.f[s as usize].to_bits()),
                BInstr::LoadB(s) => self.push(u64::from(frame.b[s as usize])),
                BInstr::StoreI(s) => frame.i[s as usize] = self.pop() as i64,
                BInstr::StoreF(s) => frame.f[s as usize] = f64::from_bits(self.pop()),
                BInstr::StoreB(s) => frame.b[s as usize] = self.pop() != 0,
                BInstr::LoadG(c) => {
                    self.op(VOp::Load);
                    self.push(self.ex.globals.cells[c as usize].load_bits(self.tid));
                }
                BInstr::StoreG(c) => {
                    self.op(VOp::Store);
                    let bits = self.pop();
                    self.ex.globals.cells[c as usize].store_bits(self.tid, bits);
                }
                BInstr::CvtIF => {
                    let v = self.popi();
                    self.push((v as f64).to_bits());
                }
                BInstr::CvtFI => {
                    let v = self.popf();
                    self.push((v.trunc() as i64) as u64);
                }
                BInstr::CvtIB => {
                    let v = self.popi();
                    self.push(u64::from(v != 0));
                }
                BInstr::CvtFB => {
                    let v = self.popf();
                    self.push(u64::from(v != 0.0));
                }
                BInstr::AddF => {
                    let (b, a) = (self.popf(), self.popf());
                    self.op(VOp::Flop);
                    self.push((a + b).to_bits());
                }
                BInstr::SubF => {
                    let (b, a) = (self.popf(), self.popf());
                    self.op(VOp::Flop);
                    self.push((a - b).to_bits());
                }
                BInstr::MulF => {
                    let (b, a) = (self.popf(), self.popf());
                    self.op(VOp::Flop);
                    self.push((a * b).to_bits());
                }
                BInstr::DivF => {
                    let (b, a) = (self.popf(), self.popf());
                    self.op(VOp::FDiv);
                    self.push((a / b).to_bits());
                }
                BInstr::PowFF => {
                    let (b, a) = (self.popf(), self.popf());
                    self.op(VOp::FSpecial);
                    self.push(a.powf(b).to_bits());
                }
                BInstr::PowFI => {
                    let e = self.popi();
                    let x = self.popf();
                    self.op(VOp::FSpecial);
                    let r = if e.unsigned_abs() <= 64 { x.powi(e as i32) } else { x.powf(e as f64) };
                    self.push(r.to_bits());
                }
                BInstr::NegF => {
                    let x = self.popf();
                    self.op(VOp::Flop);
                    self.push((-x).to_bits());
                }
                BInstr::AddI => {
                    let (b, a) = (self.popi(), self.popi());
                    self.op(VOp::IOp);
                    self.push(a.wrapping_add(b) as u64);
                }
                BInstr::SubI => {
                    let (b, a) = (self.popi(), self.popi());
                    self.op(VOp::IOp);
                    self.push(a.wrapping_sub(b) as u64);
                }
                BInstr::MulI => {
                    let (b, a) = (self.popi(), self.popi());
                    self.op(VOp::IOp);
                    self.push(a.wrapping_mul(b) as u64);
                }
                BInstr::DivI => {
                    let (b, a) = (self.popi(), self.popi());
                    self.op(VOp::IOp);
                    if b == 0 {
                        return Err(RunError::Arith { msg: "integer division by zero".into() });
                    }
                    self.push((a / b) as u64);
                }
                BInstr::PowII => {
                    let (b, a) = (self.popi(), self.popi());
                    self.op(VOp::IOp);
                    let r = if b < 0 {
                        0
                    } else {
                        a.checked_pow(b.min(63) as u32).unwrap_or(i64::MAX)
                    };
                    self.push(r as u64);
                }
                BInstr::NegI => {
                    let x = self.popi();
                    self.op(VOp::IOp);
                    self.push(x.wrapping_neg() as u64);
                }
                BInstr::NotB => {
                    let x = self.pop();
                    self.op(VOp::IOp);
                    self.push(u64::from(x == 0));
                }
                BInstr::AndB => {
                    let (b, a) = (self.pop(), self.pop());
                    self.op(VOp::IOp);
                    self.push(u64::from(a != 0 && b != 0));
                }
                BInstr::OrB => {
                    let (b, a) = (self.pop(), self.pop());
                    self.op(VOp::IOp);
                    self.push(u64::from(a != 0 || b != 0));
                }
                BInstr::CmpF(c) => {
                    let (b, a) = (self.popf(), self.popf());
                    self.op(VOp::Flop);
                    let r = match c {
                        Cmp::Eq => a == b,
                        Cmp::Ne => a != b,
                        Cmp::Lt => a < b,
                        Cmp::Le => a <= b,
                        Cmp::Gt => a > b,
                        Cmp::Ge => a >= b,
                    };
                    self.push(u64::from(r));
                }
                BInstr::CmpI(c) => {
                    let (b, a) = (self.popi(), self.popi());
                    self.op(VOp::IOp);
                    let r = match c {
                        Cmp::Eq => a == b,
                        Cmp::Ne => a != b,
                        Cmp::Lt => a < b,
                        Cmp::Le => a <= b,
                        Cmp::Gt => a > b,
                        Cmp::Ge => a >= b,
                    };
                    self.push(u64::from(r));
                }
                BInstr::FailArith2 => {
                    return Err(RunError::Type { msg: "arithmetic on LOGICAL".into() });
                }
                BInstr::FailNegB => {
                    self.op(VOp::IOp);
                    return Err(RunError::Type { msg: "negate LOGICAL".into() });
                }
                BInstr::FailType { msg } => {
                    return Err(RunError::Type { msg: bu.msgs[msg as usize].clone() });
                }
                BInstr::IntrI { f, argc } => {
                    let n = argc as usize;
                    let at = self.stack.len() - n;
                    self.iscratch.clear();
                    self.iscratch.extend(self.stack[at..].iter().map(|&b| b as i64));
                    self.stack.truncate(at);
                    self.op(if f.is_special() { VOp::FSpecial } else { VOp::Flop });
                    let args = std::mem::take(&mut self.iscratch);
                    let r = f.eval_i(&args);
                    self.iscratch = args;
                    self.push(r as u64);
                }
                BInstr::IntrF { f, argc, to_int } => {
                    let n = argc as usize;
                    let at = self.stack.len() - n;
                    self.fscratch.clear();
                    self.fscratch.extend(self.stack[at..].iter().map(|&b| f64::from_bits(b)));
                    self.stack.truncate(at);
                    self.op(if f.is_special() { VOp::FSpecial } else { VOp::Flop });
                    let args = std::mem::take(&mut self.fscratch);
                    let r = f.eval_f(&args);
                    self.fscratch = args;
                    if to_int {
                        self.push((r as i64) as u64);
                    } else {
                        self.push(r.to_bits());
                    }
                }
                BInstr::LoadElem { vs, v, nsubs, want } => {
                    let n = nsubs as usize;
                    let mut buf = [0i64; MAX_INLINE_RANK];
                    let bits = if n <= MAX_INLINE_RANK {
                        self.pop_subs_into(n, &mut buf);
                        let name = self.var_name(uidx, v);
                        let arr = self.aref(frame, vs, name)?;
                        let off = arr.offset(name, &buf[..n])?;
                        if arr.ty == want {
                            // Stack and cell share the bit convention.
                            arr.get_bits(off)
                        } else {
                            let val = match arr.ty {
                                ScalarTy::I => Val::I(arr.get_i(off)),
                                ScalarTy::F => Val::F(arr.get_f(off)),
                                ScalarTy::B => Val::B(arr.get_b(off)),
                            };
                            val.to_bits(want)
                        }
                    } else {
                        let subs = self.pop_subs(n);
                        let arr = self.handle_in(uidx, frame, vs, v)?;
                        let off = arr.offset(self.var_name(uidx, v), &subs)?;
                        let val = match arr.ty {
                            ScalarTy::I => Val::I(arr.get_i(off)),
                            ScalarTy::F => Val::F(arr.get_f(off)),
                            ScalarTy::B => Val::B(arr.get_b(off)),
                        };
                        val.to_bits(want)
                    };
                    self.op(VOp::Load);
                    self.push(bits);
                }
                BInstr::LoadElemS { a, sd, v, want: _ } => {
                    let sdim = &bu.sdims[sd as usize];
                    let n = sdim.dims.len();
                    let at = self.stack.len() - n;
                    let mut off = 0usize;
                    for (d, (&(lo, hi), &stride)) in
                        sdim.dims.iter().zip(sdim.strides.iter()).enumerate()
                    {
                        let ix = self.stack[at + d] as i64;
                        if ix < lo || ix > hi {
                            return Err(RunError::OutOfBounds {
                                var: self.var_name(uidx, v).to_string(),
                                dim: d,
                                index: ix,
                                lo,
                                hi,
                            });
                        }
                        off += (ix - lo) as usize * stride;
                    }
                    self.stack.truncate(at);
                    let arr = frame.a[a as usize].as_ref().ok_or_else(|| {
                        RunError::Unallocated { var: self.var_name(uidx, v).to_string() }
                    })?;
                    // Fixed-shape local: handle ty == declared ty == want.
                    self.push(arr.get_bits(off));
                    self.op(VOp::Load);
                }
                BInstr::StoreElem { vs, v, nsubs, src } => {
                    let bits = self.pop();
                    let n = nsubs as usize;
                    let mut buf = [0i64; MAX_INLINE_RANK];
                    if n <= MAX_INLINE_RANK {
                        self.pop_subs_into(n, &mut buf);
                        let name = self.var_name(uidx, v);
                        let arr = self.aref(frame, vs, name)?;
                        let off = arr.offset(name, &buf[..n])?;
                        if arr.ty == src {
                            arr.set_bits(off, bits);
                        } else {
                            store_val(arr, off, Val::from_bits(bits, src));
                        }
                    } else {
                        let subs = self.pop_subs(n);
                        let arr = self.handle_in(uidx, frame, vs, v)?;
                        let off = arr.offset(self.var_name(uidx, v), &subs)?;
                        store_val(&arr, off, Val::from_bits(bits, src));
                    }
                    self.op(VOp::Store);
                }
                BInstr::StoreElemS { a, sd, v, src } => {
                    let bits = self.pop();
                    let sdim = &bu.sdims[sd as usize];
                    let n = sdim.dims.len();
                    let at = self.stack.len() - n;
                    let mut off = 0usize;
                    for (d, (&(lo, hi), &stride)) in
                        sdim.dims.iter().zip(sdim.strides.iter()).enumerate()
                    {
                        let ix = self.stack[at + d] as i64;
                        if ix < lo || ix > hi {
                            return Err(RunError::OutOfBounds {
                                var: self.var_name(uidx, v).to_string(),
                                dim: d,
                                index: ix,
                                lo,
                                hi,
                            });
                        }
                        off += (ix - lo) as usize * stride;
                    }
                    self.stack.truncate(at);
                    let arr = frame.a[a as usize].as_ref().ok_or_else(|| {
                        RunError::Unallocated { var: self.var_name(uidx, v).to_string() }
                    })?;
                    self.op(VOp::Store);
                    store_val(arr, off, Val::from_bits(bits, src));
                }
                BInstr::ArrRed { f, vs, v, want } => {
                    let arr = self.handle_in(uidx, frame, vs, v)?;
                    let n = arr.len();
                    self.op_n(VOp::Load, n as u64);
                    self.op_n(VOp::Flop, n as u64);
                    let val = match f {
                        crate::rir::ArrRed::Size => Val::I(n as i64),
                        crate::rir::ArrRed::Sum => match arr.ty {
                            ScalarTy::I => Val::I((0..n).map(|i| arr.get_i(i)).sum()),
                            _ => Val::F((0..n).map(|i| arr.get_f(i)).sum()),
                        },
                        crate::rir::ArrRed::Maxval => match arr.ty {
                            ScalarTy::I => {
                                Val::I((0..n).map(|i| arr.get_i(i)).max().unwrap_or(i64::MIN))
                            }
                            _ => Val::F(
                                (0..n).map(|i| arr.get_f(i)).fold(f64::NEG_INFINITY, f64::max),
                            ),
                        },
                        crate::rir::ArrRed::Minval => match arr.ty {
                            ScalarTy::I => {
                                Val::I((0..n).map(|i| arr.get_i(i)).min().unwrap_or(i64::MAX))
                            }
                            _ => Val::F((0..n).map(|i| arr.get_f(i)).fold(f64::INFINITY, f64::min)),
                        },
                    };
                    self.push(val.to_bits(want));
                }
                BInstr::AllocatedQ { vs } => {
                    let alloc = match vs {
                        VSlot::A(s) => frame.a[s as usize].is_some(),
                        VSlot::GlobA(c) | VSlot::GlobS(c) => {
                            self.ex.globals.cells[c as usize].array_handle(self.tid).is_some()
                        }
                        _ => false,
                    };
                    self.push(u64::from(alloc));
                }
                BInstr::Broadcast { vs, v, src } => {
                    let bits = self.pop();
                    let arr = self.handle_in(uidx, frame, vs, v)?;
                    let n = arr.len();
                    self.op_n(VOp::Store, n as u64);
                    let val = Val::from_bits(bits, src);
                    for off in 0..n {
                        store_val(&arr, off, val);
                    }
                }
                BInstr::CopyArr { dvs, dv, svs, sv } => {
                    let d = self.handle_in(uidx, frame, dvs, dv)?;
                    let s = self.handle_in(uidx, frame, svs, sv)?;
                    if d.len() != s.len() {
                        return Err(RunError::Type {
                            msg: format!("array copy shape mismatch: {} vs {}", d.len(), s.len()),
                        });
                    }
                    let n = d.len();
                    self.op_n(VOp::Load, n as u64);
                    self.op_n(VOp::Store, n as u64);
                    for off in 0..n {
                        d.set_bits(off, s.get_bits(off));
                    }
                }
                BInstr::AtomicScal { vs, v: _, op, ety, vty } => {
                    let delta = Val::from_bits(self.pop(), ety);
                    self.add_misc(|c| c.atomics += 1);
                    self.op(VOp::Load);
                    self.op(VOp::Store);
                    match vs {
                        VSlot::GlobS(c) => {
                            let g = &self.ex.globals.cells[c as usize];
                            atomic_scalar_update(g, self.tid, vty, op, delta);
                        }
                        _ => {
                            // Frame scalar: thread-private anyway; plain RMW.
                            let cur = Val::from_bits(frame.read(vs, self.ex, self.tid), vty);
                            let nv = combine_vals(vty, op, cur, delta);
                            frame.write(vs, vty, nv, self.ex, self.tid);
                        }
                    }
                }
                BInstr::AtomicElem { vs, v, op, nsubs, ety } => {
                    let subs = self.pop_subs(nsubs as usize);
                    let delta = Val::from_bits(self.pop(), ety);
                    self.add_misc(|c| c.atomics += 1);
                    self.op(VOp::Load);
                    self.op(VOp::Store);
                    let arr = self.handle_in(uidx, frame, vs, v)?;
                    let off = arr.offset(self.var_name(uidx, v), &subs)?;
                    match arr.ty {
                        ScalarTy::F => {
                            let d = delta.as_f();
                            arr.atomic_update_f(off, |x| combine_f(op, x, d));
                        }
                        ScalarTy::I => {
                            let d = delta.as_i();
                            arr.atomic_update_i(off, |x| combine_i(op, x, d));
                        }
                        ScalarTy::B => {
                            return Err(RunError::Type { msg: "ATOMIC on LOGICAL".into() });
                        }
                    }
                }
                BInstr::Alloc { vs, v, ndims, ty } => {
                    let n = ndims as usize;
                    let at = self.stack.len() - 2 * n;
                    let mut rd = Vec::with_capacity(n);
                    for d in 0..n {
                        let lo = self.stack[at + 2 * d] as i64;
                        let hi = self.stack[at + 2 * d + 1] as i64;
                        rd.push((lo, hi));
                    }
                    self.stack.truncate(at);
                    let obj = match self.apool_take(ty, &rd) {
                        Some(o) => o,
                        None => Arc::new(ArrayObj::try_new(ty, rd.clone())?),
                    };
                    self.add_misc(|c| c.alloc_calls += 1);
                    let bytes = (obj.len() * 8) as u64;
                    self.add_misc(move |c| c.alloc_bytes += bytes);
                    let name = || self.var_name(uidx, v).to_string();
                    match vs {
                        VSlot::A(s) => {
                            if frame.a[s as usize].is_some() {
                                return Err(RunError::AlreadyAllocated { var: name() });
                            }
                            frame.a[s as usize] = Some(obj);
                        }
                        VSlot::GlobA(c) | VSlot::GlobS(c) => {
                            let gc = &self.ex.globals.cells[c as usize];
                            let prev = if gc.is_per_thread() {
                                gc.set_array_all_threads(self.tid, || {
                                    Arc::new(ArrayObj::new(ty, rd.clone()))
                                })
                            } else {
                                gc.set_array(self.tid, Some(obj))
                            };
                            if prev.is_some() {
                                return Err(RunError::AlreadyAllocated { var: name() });
                            }
                            self.gcache[c as usize] = None;
                        }
                        _ => unreachable!("ALLOCATE of a scalar"),
                    }
                }
                BInstr::Dealloc { vs, v } => {
                    let name = || self.var_name(uidx, v).to_string();
                    match vs {
                        VSlot::A(s) => {
                            let Some(h) = frame.a[s as usize].take() else {
                                return Err(RunError::Unallocated { var: name() });
                            };
                            if self.apool.len() < 64 && Arc::strong_count(&h) == 1 {
                                self.apool.push(h);
                            }
                        }
                        VSlot::GlobA(c) | VSlot::GlobS(c) => {
                            let gc = &self.ex.globals.cells[c as usize];
                            let prev = if gc.is_per_thread() {
                                gc.clear_array_all_threads(self.tid)
                            } else {
                                gc.set_array(self.tid, None)
                            };
                            if prev.is_none() {
                                return Err(RunError::Unallocated { var: name() });
                            }
                            self.gcache[c as usize] = None;
                        }
                        _ => unreachable!("DEALLOCATE of a scalar"),
                    }
                }
                BInstr::Jump(t) => {
                    // EXIT jumps land exactly on a loop's end pc; any
                    // other jump target sits strictly inside every open
                    // loop, making this a no-op for them.
                    if let Some(p) = self.prof {
                        p.close_loops_at(t);
                    }
                    pc = t as usize;
                    continue;
                }
                BInstr::JumpIfFalse(t) => {
                    if self.pop() == 0 {
                        pc = t as usize;
                        continue;
                    }
                }
                BInstr::CostBranch => self.add_misc(|c| c.branches += 1),
                BInstr::VecEnter(v) => {
                    if TRACE {
                        self.tr.vec_stack.push(self.tr.vec_mode);
                        self.tr.vec_mode = v;
                    }
                }
                BInstr::VecLeave => {
                    if TRACE {
                        self.tr.vec_mode = self.tr.vec_stack.pop().unwrap_or(VecClass::None);
                    }
                }
                BInstr::DoInitC { ctr, end } => {
                    let e = self.popi();
                    let s = self.popi();
                    frame.i[end as usize] = e;
                    frame.i[ctr as usize] = s;
                    if let Some(p) = self.prof {
                        if let Some(site) = bu.loop_site_at(pc as u32) {
                            p.loop_enter(site.line, site.end_pc);
                        }
                    }
                }
                BInstr::VecLoop { desc, ctr, end, var, exit } => {
                    // Tier ladder: native (promoted machine code), then
                    // the vector superinstruction, then the scalar head.
                    if self.exec_native_loop(frame, bu, desc, ctr, end, var)?
                        || self.exec_vec_loop(frame, bu, desc, ctr, end, var)?
                    {
                        pc = exit as usize;
                        continue;
                    }
                    // Guards failed: fall through to the scalar head.
                }
                BInstr::DoInit { ctr, end, step, check } => {
                    let st = self.popi();
                    let e = self.popi();
                    let s = self.popi();
                    if check && st == 0 {
                        return Err(RunError::Arith { msg: "zero DO step".into() });
                    }
                    frame.i[step as usize] = st;
                    frame.i[end as usize] = e;
                    frame.i[ctr as usize] = s;
                    if let Some(p) = self.prof {
                        if let Some(site) = bu.loop_site_at(pc as u32) {
                            p.loop_enter(site.line, site.end_pc);
                        }
                    }
                }
                BInstr::DoHead1 { ctr, end, var, exit } => {
                    let i = frame.i[ctr as usize];
                    if i > frame.i[end as usize] {
                        if let Some(p) = self.prof {
                            p.close_loops_at(exit);
                        }
                        pc = exit as usize;
                        continue;
                    }
                    frame.i[var as usize] = i;
                }
                BInstr::DoHeadN { ctr, end, step, var, exit } => {
                    let i = frame.i[ctr as usize];
                    let e = frame.i[end as usize];
                    let st = frame.i[step as usize];
                    if (st > 0 && i > e) || (st < 0 && i < e) {
                        if let Some(p) = self.prof {
                            p.close_loops_at(exit);
                        }
                        pc = exit as usize;
                        continue;
                    }
                    frame.i[var as usize] = i;
                }
                BInstr::DoHead { ctr, end, step, exit } => {
                    let i = frame.i[ctr as usize];
                    let e = frame.i[end as usize];
                    let st = frame.i[step as usize];
                    if (st > 0 && i > e) || (st < 0 && i < e) {
                        if let Some(p) = self.prof {
                            p.close_loops_at(exit);
                        }
                        pc = exit as usize;
                        continue;
                    }
                }
                BInstr::DoIncr1 { ctr, head } => {
                    frame.i[ctr as usize] = frame.i[ctr as usize].wrapping_add(1);
                    pc = head as usize;
                    continue;
                }
                BInstr::DoIncr { ctr, step, head } => {
                    frame.i[ctr as usize] =
                        frame.i[ctr as usize].wrapping_add(frame.i[step as usize]);
                    pc = head as usize;
                    continue;
                }
                BInstr::CheckStepNZ => {
                    if *self.stack.last().expect("step on stack") as i64 == 0 {
                        return Err(RunError::Arith { msg: "zero DO step".into() });
                    }
                }
                BInstr::FlowExit => return Ok(Flow::Exit),
                BInstr::FlowCycle => return Ok(Flow::Cycle),
                BInstr::FlowReturn => return Ok(Flow::Return),
                BInstr::Critical { name, end, exit, cycle } => {
                    if TRACE {
                        self.tr.critical_depth += 1;
                    }
                    let snap = self.vec_snapshot();
                    let r = if matches!(self.ex.mode, ExecMode::Parallel { .. })
                        && self.in_real_region
                    {
                        let _guard = self.ex.critical.enter(&bu.msgs[name as usize]);
                        self.run_range(uidx, frame, pc as u32 + 1, end)
                    } else {
                        self.run_range(uidx, frame, pc as u32 + 1, end)
                    };
                    if TRACE {
                        self.tr.critical_depth -= 1;
                    }
                    match r? {
                        Flow::Normal => {
                            pc = end as usize;
                            continue;
                        }
                        Flow::Exit => {
                            self.vec_restore(snap);
                            if exit == NO_PC {
                                return Ok(Flow::Exit);
                            }
                            if let Some(p) = self.prof {
                                p.close_loops_at(exit);
                            }
                            pc = exit as usize;
                            continue;
                        }
                        Flow::Cycle => {
                            self.vec_restore(snap);
                            if cycle == NO_PC {
                                return Ok(Flow::Cycle);
                            }
                            pc = cycle as usize;
                            continue;
                        }
                        Flow::Return => return Ok(Flow::Return),
                    }
                }
                BInstr::OmpDo { desc } => {
                    let omp_line = bu.line_for_pc(pc as u32).unwrap_or(0);
                    if let Some(p) = self.prof {
                        p.omp_enter(omp_line);
                    }
                    let flow = self.exec_omp(uidx, frame, bu, desc as usize, omp_line)?;
                    if let Some(p) = self.prof {
                        p.omp_exit();
                    }
                    match flow {
                        Flow::Normal => {
                            pc = bu.omps[desc as usize].body.1 as usize;
                            continue;
                        }
                        Flow::Return => return Ok(Flow::Return),
                        _ => unreachable!("OMP nest yields Normal or Return"),
                    }
                }
                BInstr::CallPre => {
                    if self.depth >= self.ex.limits.max_call_depth {
                        return Err(RunError::Limit { msg: "call depth exceeded".into() });
                    }
                    self.add_misc(|c| c.calls += 1);
                }
                BInstr::StashElem { vs, v, nsubs, want } => {
                    let subs = self.pop_subs(nsubs as usize);
                    let arr = self.handle_in(uidx, frame, vs, v)?;
                    let off = arr.offset(self.var_name(uidx, v), &subs)?;
                    self.op(VOp::Load);
                    let val = match arr.ty {
                        ScalarTy::I => Val::I(arr.get_i(off)),
                        ScalarTy::F => Val::F(arr.get_f(off)),
                        ScalarTy::B => Val::B(arr.get_b(off)),
                    };
                    self.sstash.extend_from_slice(&subs);
                    self.push(val.to_bits(want));
                }
                BInstr::PushArr { vs, v } => {
                    let h = self.handle_in(uidx, frame, vs, v)?;
                    self.astack.push(h);
                }
                BInstr::Call { spec, push } => {
                    let ret = self.exec_call(uidx, frame, bu, spec as usize)?;
                    if push {
                        match ret {
                            Some(bits) => self.push(bits),
                            None => {
                                return Err(RunError::Type {
                                    msg: "function returned nothing".into(),
                                });
                            }
                        }
                    }
                }
                BInstr::Print { spec } => {
                    let items = &bu.prints[spec as usize];
                    let nvals = items.iter().filter(|i| matches!(i, PItem::Val(_))).count();
                    let at = self.stack.len() - nvals;
                    let mut line = String::new();
                    let mut vi = at;
                    for (i, item) in items.iter().enumerate() {
                        if i > 0 {
                            line.push(' ');
                        }
                        match item {
                            PItem::Str(s) => line.push_str(s),
                            PItem::Val(ty) => {
                                let val = Val::from_bits(self.stack[vi], *ty);
                                vi += 1;
                                match val {
                                    Val::I(x) => line.push_str(&x.to_string()),
                                    Val::F(x) => line.push_str(&format!("{x:.6}")),
                                    Val::B(b) => line.push_str(if b { "T" } else { "F" }),
                                }
                            }
                        }
                    }
                    self.stack.truncate(at);
                    line.push('\n');
                    self.out.push_str(&line);
                }
                BInstr::Stop { msg } => {
                    return Err(RunError::Stop { msg: bu.msgs[msg as usize].clone() });
                }
            }
            pc += 1;
        }
        Ok(Flow::Normal)
    }

    // ---------- calls ----------

    /// Executes a call; returns the function-result bits when the callee
    /// is a function (already in the result's declared type).
    fn exec_call(
        &mut self,
        uidx: usize,
        frame: &mut VFrame,
        bu: &'e BUnit,
        spec: usize,
    ) -> Result<Option<u64>, RunError> {
        let cs = &bu.calls[spec];
        let callee: &'e BUnit = &self.bunits[cs.callee as usize];
        let mut cframe = match self.fpool[cs.callee as usize].pop() {
            Some(mut fr) => {
                fr.reset(callee);
                fr
            }
            None => VFrame::new(callee),
        };
        // Copy-in: payloads were pushed in argument order; pop in reverse.
        for arg in cs.args.iter().rev() {
            match *arg {
                BArg::Scalar { src_ty, p, pty, .. } | BArg::Val { src_ty, p, pty } => {
                    let val = Val::from_bits(self.pop(), src_ty);
                    cframe.write(p, pty, val, self.ex, self.tid);
                }
                BArg::Elem { want, p, pty, .. } => {
                    let val = Val::from_bits(self.pop(), want);
                    cframe.write(p, pty, val, self.ex, self.tid);
                }
                BArg::Arr { p } => {
                    let h = self.astack.pop().expect("array argument on stack");
                    cframe.a[p as usize] = Some(h);
                }
            }
        }
        // Execute the callee body.
        let snap = self.vec_snapshot();
        let (saved_uidx, saved_pc) = (self.cur_uidx, self.cur_pc);
        self.depth += 1;
        if let Some(p) = self.prof {
            p.unit_enter(&self.ex.prog.units[cs.callee as usize].name);
        }
        let flow = self.run_range(cs.callee as usize, &mut cframe, 0, callee.code.len() as u32);
        self.depth -= 1;
        self.vec_restore(snap);
        let flow = flow?;
        if let Some(p) = self.prof {
            // Also sweeps loop spans a RETURN left open inside the callee.
            p.unit_exit();
        }
        self.cur_uidx = saved_uidx;
        self.cur_pc = saved_pc;
        match flow {
            Flow::Normal | Flow::Return => {}
            _ => return Err(RunError::Type { msg: "EXIT/CYCLE escaped a unit".into() }),
        }
        // Copy-out (value-result), forward order; Elem subscripts were
        // stashed left-to-right, so walk the stash tail forward.
        let base = self.sstash.len() - cs.n_stash as usize;
        let mut soff = base;
        for arg in &cs.args {
            match *arg {
                BArg::Scalar { src_vs, src_v, src_ty, p, pty } => {
                    let val = Val::from_bits(cframe.read(p, self.ex, self.tid), pty);
                    match src_vs {
                        VSlot::GlobS(_) => self.op(VOp::Store),
                        VSlot::A(_) | VSlot::GlobA(_) => {
                            return Err(RunError::Type {
                                msg: format!(
                                    "array `{}` read as scalar",
                                    self.var_name(uidx, src_v)
                                ),
                            });
                        }
                        _ => {}
                    }
                    frame.write(src_vs, src_ty, val, self.ex, self.tid);
                }
                BArg::Elem { vs, v, nsubs, p, pty, .. } => {
                    let val = Val::from_bits(cframe.read(p, self.ex, self.tid), pty);
                    let subs: Vec<i64> = self.sstash[soff..soff + nsubs as usize].to_vec();
                    soff += nsubs as usize;
                    let arr = self.handle_in(uidx, frame, vs, v)?;
                    let off = arr.offset(self.var_name(uidx, v), &subs)?;
                    self.op(VOp::Store);
                    store_val(&arr, off, val);
                }
                BArg::Arr { .. } | BArg::Val { .. } => {}
            }
        }
        self.sstash.truncate(base);
        let ret = cs
            .ret
            .map(|(rvs, rty)| Val::from_bits(cframe.read(rvs, self.ex, self.tid), rty).to_bits(rty));
        self.fpool[cs.callee as usize].push(cframe);
        Ok(ret)
    }

    // ---------- OMP PARALLEL DO ----------

    /// Writes a loop-dimension variable (interpreter's per-iteration
    /// `write_scalar`, including the Store cost for globals).
    #[inline]
    fn store_dim(&mut self, frame: &mut VFrame, vs: VSlot, ty: ScalarTy, v: i64) {
        if TRACE {
            if let VSlot::GlobS(_) = vs {
                self.op(VOp::Store);
            }
        }
        frame.write(vs, ty, Val::I(v), self.ex, self.tid);
    }

    fn exec_omp(
        &mut self,
        uidx: usize,
        frame: &mut VFrame,
        bu: &'e BUnit,
        desc: usize,
        line: u32,
    ) -> Result<Flow, RunError> {
        let d: &'e OmpDesc = &bu.omps[desc];
        // Stack (top last): s0, e0, st, [lo,hi]*, [num_threads].
        let clause_threads = if d.has_nt { Some(self.popi().max(1) as usize) } else { None };
        let ndims = d.dims.len();
        let mut bounds = vec![(0i64, 0i64); ndims];
        for k in (1..ndims).rev() {
            let hi = self.popi();
            let lo = self.popi();
            bounds[k] = (lo, hi);
        }
        let st = self.popi();
        let e0 = self.popi();
        let s0 = self.popi();
        bounds[0] = (s0, e0);
        let outer_trip = trip_count(s0, e0, st);
        let total_trip: u64 = if ndims == 1 {
            outer_trip
        } else {
            bounds.iter().map(|&(lo, hi)| trip_count(lo, hi, 1)).product()
        };
        let mode_threads = self.ex.mode.threads();
        let team = clause_threads.unwrap_or(mode_threads).min(MAX_THREADS);

        // OMP region entry is a safepoint: never fork a team for a run
        // whose token already fired (or whose deadline already passed).
        if self.ex.limits.poll {
            self.ex.limits.check_interrupt(Some(line))?;
        }

        match self.ex.mode {
            ExecMode::Serial => self.omp_serial_nest(uidx, frame, d, &bounds, st, None),
            ExecMode::Simulated { .. } => {
                if self.tr.in_sim_region || self.in_real_region {
                    // Nested region: team of one + fork overhead.
                    self.add_misc(|c| c.nested_forks += 1);
                    return self.omp_serial_nest(uidx, frame, d, &bounds, st, None);
                }
                let serial = std::mem::take(&mut self.tr.serial);
                self.tr.trace.push_serial(serial);
                self.tr.region = Some(Box::new(VRegion {
                    per_thread: vec![CostCounters::default(); team],
                    cur: 0,
                    critical: CostCounters::default(),
                    threads: team,
                    trip: total_trip,
                    reductions: d.reductions.len(),
                }));
                self.tr.in_sim_region = true;
                let mut sched = self.ex.sched_overrides.resolve(line, d.sched);
                if d.per_thread_access {
                    sched = sched.legalize_for_per_thread();
                }
                let owner = build_owner_map(sched, total_trip as usize, team);
                let r = self.omp_serial_nest(uidx, frame, d, &bounds, st, Some(&owner));
                self.tr.in_sim_region = false;
                let region = self.tr.region.take().expect("region open");
                self.tr.trace.push_region(RegionEvent {
                    threads: region.threads,
                    per_thread: region.per_thread,
                    critical: region.critical,
                    reductions: region.reductions,
                    trip: region.trip,
                    line,
                });
                r
            }
            ExecMode::Parallel { .. } => {
                if self.in_real_region {
                    // Nested: team of one.
                    return self.omp_serial_nest(uidx, frame, d, &bounds, st, None);
                }
                self.omp_parallel(uidx, frame, d, &bounds, st, team, line)?;
                // Workers may have allocated or freed global arrays; drop
                // every cached handle so we re-read the cells.
                self.gcache.iter_mut().for_each(|s| *s = None);
                Ok(Flow::Normal)
            }
        }
    }

    fn omp_serial_nest(
        &mut self,
        uidx: usize,
        frame: &mut VFrame,
        d: &'e OmpDesc,
        bounds: &[(i64, i64)],
        outer_step: i64,
        owner: Option<&[u16]>,
    ) -> Result<Flow, RunError> {
        let trips: Vec<u64> = bounds
            .iter()
            .enumerate()
            .map(|(k, &(lo, hi))| trip_count(lo, hi, if k == 0 { outer_step } else { 1 }))
            .collect();
        let total: u64 = trips.iter().product();
        let (blo, bhi) = d.body;
        let mut result = Flow::Normal;
        for k in 0..total {
            if TRACE {
                if let (Some(map), Some(region)) = (owner, self.tr.region.as_mut()) {
                    region.cur = map[k as usize] as usize;
                }
            }
            let mut rem = k;
            for (dim, &(vs, ty)) in d.dims.iter().enumerate().rev() {
                let t = trips[dim].max(1);
                let ix = rem % t;
                rem /= t;
                let step = if dim == 0 { outer_step } else { 1 };
                self.store_dim(frame, vs, ty, bounds[dim].0 + ix as i64 * step);
            }
            match self.run_range(uidx, frame, blo, bhi)? {
                Flow::Normal | Flow::Cycle => {}
                Flow::Exit => break,
                Flow::Return => {
                    result = Flow::Return;
                    break;
                }
            }
        }
        if TRACE {
            if let Some(region) = self.tr.region.as_mut() {
                region.cur = 0;
            }
        }
        Ok(result)
    }

    #[allow(clippy::too_many_arguments)]
    fn omp_parallel(
        &mut self,
        uidx: usize,
        frame: &mut VFrame,
        d: &'e OmpDesc,
        bounds: &[(i64, i64)],
        outer_step: i64,
        team: usize,
        do_line: u32,
    ) -> Result<(), RunError> {
        let pool: Arc<ThreadPool> =
            self.ex.pool.as_ref().expect("Parallel mode has a pool").clone();
        let team = team.min(pool.threads());
        let mut sched = self.ex.sched_overrides.resolve(do_line, d.sched);
        if d.per_thread_access {
            sched = sched.legalize_for_per_thread();
        }
        let trips: Vec<u64> = bounds
            .iter()
            .enumerate()
            .map(|(k, &(lo, hi))| trip_count(lo, hi, if k == 0 { outer_step } else { 1 }))
            .collect();
        let total = trips.iter().product::<u64>() as usize;

        // Reduction setup: read the incoming value, combine at the join.
        let red_info: Vec<(RedSpec, Val)> = d
            .reductions
            .iter()
            .map(|&spec| {
                let cur = Val::from_bits(frame.read(spec.vs, self.ex, self.tid), spec.ty);
                (spec, cur)
            })
            .collect();

        // Keyed partials, exactly like the interpreter tier: per-thread
        // keyed by tid under static schedules, per-chunk keyed by the
        // chunk's first flat iteration under dynamic/guided; sorted and
        // folded in key order at the join for a deterministic combine.
        let results: Mutex<KeyedPartials> = Mutex::new(Vec::new());
        let prints: Mutex<String> = Mutex::new(String::new());
        let ex = self.ex;
        let bunits = self.bunits;
        let base_frame = &*frame;
        let (blo, bhi) = d.body;
        let dispenser =
            sched.is_runtime_dispatched().then(|| omprt::Dispenser::new(sched, total, team));
        let disp_ref = &dispenser;

        pool.run_tagged(do_line, sched, |tid| {
            if tid >= team {
                return;
            }
            if ex.debug_panic_worker == Some(tid) {
                panic!("chaos: injected worker panic on tid {tid}");
            }
            let mut vm = Vm::<'_, false>::new(ex, bunits, tid);
            vm.in_real_region = true;
            let mut tframe = base_frame.clone();
            // PRIVATE arrays: detach per-thread deep copies.
            for &pa in &d.private_arrays {
                if let Some(h) = &tframe.a[pa as usize] {
                    tframe.a[pa as usize] = Some(Arc::new(h.deep_clone()));
                }
            }
            // Reduction identities (frame slots only, like the interpreter).
            let set_identities = |tframe: &mut VFrame| {
                for (spec, _) in &red_info {
                    if !matches!(spec.vs, VSlot::GlobS(_) | VSlot::GlobA(_)) {
                        let ident = identity_val(spec.op, spec.ty);
                        tframe.write(spec.vs, spec.ty, ident, ex, tid);
                    }
                }
            };
            let collect_partials = |tframe: &mut VFrame| -> Vec<Val> {
                red_info
                    .iter()
                    .map(|(spec, _)| {
                        if matches!(spec.vs, VSlot::GlobS(_) | VSlot::GlobA(_)) {
                            Val::I(0)
                        } else {
                            Val::from_bits(tframe.read(spec.vs, ex, tid), spec.ty)
                        }
                    })
                    .collect()
            };
            let run_range =
                |vm: &mut Vm<'_, false>, tframe: &mut VFrame, lo: usize, hi: usize| {
                    for k in lo..hi {
                        let mut rem = k as u64;
                        for (dim, &(vs, ty)) in d.dims.iter().enumerate().rev() {
                            let t = trips[dim].max(1);
                            let ix = rem % t;
                            rem /= t;
                            let step = if dim == 0 { outer_step } else { 1 };
                            vm.store_dim(tframe, vs, ty, bounds[dim].0 + ix as i64 * step);
                        }
                        match vm.run_range(uidx, tframe, blo, bhi)? {
                            Flow::Normal | Flow::Cycle => {}
                            Flow::Exit | Flow::Return => {
                                return Err(RunError::Type {
                                    msg: "EXIT/RETURN out of a parallel loop".into(),
                                });
                            }
                        }
                    }
                    Ok(())
                };

            match disp_ref {
                // Dynamic/guided: claim chunks first-come-first-served.
                Some(disp) => {
                    while let Some((lo, hi)) = disp.claim() {
                        set_identities(&mut tframe);
                        let r = run_range(&mut vm, &mut tframe, lo, hi)
                            .map(|()| collect_partials(&mut tframe));
                        let failed = r.is_err();
                        results.lock().push((lo, r.map_err(|e| vm_ctx(ex, bunits, &vm, e))));
                        if failed {
                            break;
                        }
                    }
                }
                // Static: the thread owns its chunks up front.
                None => {
                    set_identities(&mut tframe);
                    let r = (|| {
                        for (lo, hi) in chunks_for(sched, total, tid, team) {
                            run_range(&mut vm, &mut tframe, lo, hi)?;
                        }
                        Ok(collect_partials(&mut tframe))
                    })();
                    results.lock().push((tid, r.map_err(|e| vm_ctx(ex, bunits, &vm, e))));
                }
            }
            if !vm.out.is_empty() {
                prints.lock().push_str(&vm.out);
            }
        })
        .map_err(|p| RunError::Trap { what: p.to_string() })?;

        self.out.push_str(&prints.into_inner());
        let mut keyed = results.into_inner();
        keyed.sort_by_key(|&(k, _)| k);
        let mut all_partials: Vec<Vec<Val>> = Vec::new();
        for (_, r) in keyed {
            all_partials.push(r?);
        }

        // Combine reductions into the original variables.
        for (ri, (spec, init)) in red_info.iter().enumerate() {
            let mut acc = *init;
            for p in &all_partials {
                acc = combine_vals(spec.ty, spec.op, acc, p[ri]);
            }
            if TRACE {
                if let VSlot::GlobS(_) = spec.vs {
                    self.op(VOp::Store);
                }
            }
            frame.write(spec.vs, spec.ty, acc, self.ex, self.tid);
        }
        let _ = uidx;
        Ok(())
    }
}

/// Wraps a fault with the VM's location registers: source line when the
/// debug table knows it, raw pc otherwise. Display matches the
/// tree-walker's context exactly whenever a line is known, keeping the
/// differential suite's string comparison tier-blind.
fn vm_ctx<const TRACE: bool>(
    exec: &Exec,
    bunits: &[BUnit],
    vm: &Vm<'_, TRACE>,
    e: RunError,
) -> RunError {
    let uidx = vm.cur_uidx;
    let line = bunits[uidx].line_for_pc(vm.cur_pc);
    let pc = if line.is_some() { None } else { Some(vm.cur_pc) };
    // The dispatch-loop safepoint defers line attribution to here: give
    // a cancellation its observed line so both tiers report it.
    let e = match e {
        RunError::Cancelled { at_line: None, reason } => {
            RunError::Cancelled { at_line: line, reason }
        }
        other => other,
    };
    e.with_ctx(&exec.prog.units[uidx].name, line, pc)
}

/// Entry point: runs `unit_id` with `args` under `exec.mode` on the
/// given bytecode build (optimized or traced — the engine picks the
/// matching one). Returns (result, trace, printed) like the
/// interpreter's `run_entry`.
pub(crate) fn run_vm(
    exec: &Exec,
    bunits: &[BUnit],
    unit_id: usize,
    args: &[ArgVal],
    prof: Option<&crate::trace::Collector>,
) -> Result<(Option<Val>, CostTrace, String), RunError> {
    match exec.mode {
        ExecMode::Simulated { .. } => go::<true>(exec, bunits, unit_id, args, prof),
        _ => go::<false>(exec, bunits, unit_id, args, prof),
    }
}

fn go<const TRACE: bool>(
    exec: &Exec,
    bunits: &[BUnit],
    unit_id: usize,
    args: &[ArgVal],
    prof: Option<&crate::trace::Collector>,
) -> Result<(Option<Val>, CostTrace, String), RunError> {
    let bu = &bunits[unit_id];
    let unit = &exec.prog.units[unit_id];
    if unit.params.len() != args.len() {
        return Err(RunError::BadCall {
            name: unit.name.clone(),
            msg: format!("takes {} args, got {}", unit.params.len(), args.len()),
        });
    }
    let mut frame = VFrame::new(bu);
    for (k, a) in args.iter().enumerate() {
        let pvar = unit.params[k];
        let vs = bu.vslots[pvar];
        let pty = unit.vars[pvar].ty;
        match a {
            ArgVal::I(v) => frame.write(vs, pty, Val::I(*v), exec, 0),
            ArgVal::F(v) => frame.write(vs, pty, Val::F(*v), exec, 0),
            ArgVal::B(v) => frame.write(vs, pty, Val::B(*v), exec, 0),
            ArgVal::Arr(h) => match vs {
                VSlot::A(s) => frame.a[s as usize] = Some(Arc::clone(h)),
                // Array handle passed for a scalar parameter: the
                // tree-walker defers the type error to first use; the
                // VM reports it at entry (documented divergence).
                _ => {
                    return Err(RunError::Type {
                        msg: format!("array `{}` read as scalar", unit.vars[pvar].name),
                    });
                }
            },
        }
    }
    let mut vm = Vm::<TRACE>::new(exec, bunits, 0);
    vm.prof = prof;
    if let Some(p) = prof {
        p.unit_enter(&unit.name);
    }
    let flow = match vm.run_range(unit_id, &mut frame, 0, bu.code.len() as u32) {
        Ok(f) => f,
        Err(e) => return Err(vm_ctx(exec, bunits, &vm, e)),
    };
    if let Some(p) = prof {
        p.unit_exit();
        p.set_steps(vm.steps);
    }
    debug_assert!(matches!(flow, Flow::Normal | Flow::Return));
    let result = bu
        .result
        .map(|(rvs, rty)| Val::from_bits(frame.read(rvs, exec, 0), rty));
    if TRACE {
        let serial = std::mem::take(&mut vm.tr.serial);
        vm.tr.trace.push_serial(serial);
    }
    Ok((result, vm.tr.trace, vm.out))
}
