//! Seeded generative fixed-form F77 corpus (differential-test fodder).
//!
//! [`generate`] derives a small, deterministic, terminating two-file F77
//! program from a seed: file one holds subroutines/functions over a
//! COMMON block, file two the main program. The statement pool is chosen
//! to exercise the legacy surface of [`crate::fixedform`] — labeled DO
//! loops with CONTINUE terminals, computed and backward GOTO, arithmetic
//! IF, EQUIVALENCE, DATA/SAVE, IMPLICIT typing, OMP PARALLEL DO
//! reductions, plus one deliberately vectorizable affine sweep per
//! program so the vector and native execution tiers see the corpus
//! too — while staying semantically tame: every loop is bounded,
//! every subscript is forced in range with MOD, no division by anything
//! that can reach zero, and every variable is written before it is read.
//! Statements are wrapped onto continuation cards at a hard column
//! boundary (blank-insensitive lexing makes mid-token splits legal), so
//! the corpus also exercises card assembly organically.

/// xorshift64* — tiny, seedable, good enough for corpus derivation.
pub struct Rng(u64);

impl Rng {
    pub fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in `0..n`.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    /// True with roughly `pct` percent probability.
    pub fn chance(&mut self, pct: u64) -> bool {
        self.below(100) < pct
    }
}

const REALS: &[&str] = &["0.5", "1.5", "2.0", "0.25", "3.0", "1.25", "0.75", "4.0"];

/// One program unit under construction: fixed-form cards plus a label
/// allocator.
struct U {
    lines: Vec<String>,
    label: u32,
}

impl U {
    fn new() -> U {
        U { lines: Vec::new(), label: 0 }
    }

    fn next_label(&mut self) -> u32 {
        self.label += 10;
        self.label
    }

    /// Emits one statement, wrapping onto continuation cards at a hard
    /// column boundary (legal anywhere: blanks are insignificant and the
    /// generator emits no character literals).
    fn stmt(&mut self, label: Option<u32>, text: &str) {
        let chars: Vec<char> = text.chars().collect();
        let mut at = 0;
        let mut first = true;
        while at < chars.len() || first {
            let take = (chars.len() - at).min(60);
            let chunk: String = chars[at..at + take].iter().collect();
            let prefix = if first {
                match label {
                    Some(l) => format!("{l:>5} "),
                    None => "      ".to_string(),
                }
            } else {
                "     &".to_string()
            };
            self.lines.push(format!("{prefix}{chunk}"));
            at += take;
            first = false;
        }
    }

    fn raw(&mut self, line: &str) {
        self.lines.push(line.to_string());
    }

    fn finish(mut self) -> String {
        self.stmt(None, "END");
        let mut s = self.lines.join("\n");
        s.push('\n');
        s
    }
}

/// Statement-pool context shared by the unit builders.
struct Gen<'a> {
    r: &'a mut Rng,
    n: u64,
}

impl Gen<'_> {
    fn rc(&mut self) -> &'static str {
        REALS[self.r.below(REALS.len() as u64) as usize]
    }

    fn ic(&mut self) -> u64 {
        1 + self.r.below(9)
    }

    /// An always-in-bounds subscript expression over loop variable `v`.
    fn idx(&mut self, v: &str) -> String {
        format!("MOD({v}*{} + {}, N) + 1", self.ic(), self.ic())
    }

    /// A bounded real-valued expression over the COMMON arrays.
    fn rexpr(&mut self, v: &str) -> String {
        let a = self.idx(v);
        match self.r.below(4) {
            0 => format!("A({a}) * {}", self.rc()),
            1 => format!("B({a}) + {}", self.rc()),
            2 => {
                let b = self.idx(v);
                format!("A({a}) - B({b}) * {}", self.rc())
            }
            _ => {
                let b = self.idx(v);
                format!("B({a}) / (ABS(A({b})) + {})", self.rc())
            }
        }
    }

    /// A vectorizable RHS for the SWEEP map loop: affine subscripts
    /// only (no MOD), reading `B`; `inv` names a loop-invariant REAL
    /// scalar in scope. The returned flag is true when `B` was read
    /// through a non-identity subscript, in which case the caller must
    /// not also write `B` in the same loop (the vectorizer's dependence
    /// rule would reject the loop and defeat the point).
    fn vec_rhs(&mut self, v: &str, inv: &str) -> (String, bool) {
        match self.r.below(4) {
            0 => (format!("B({v}) * {} + {inv}", self.rc()), false),
            1 => (format!("SQRT(ABS(B({v}))) + {}", self.rc()), false),
            2 => (format!("B(N + 1 - {v}) - {}", self.rc()), true),
            _ => (format!("REAL({v}) * {} + B({v})", self.rc()), false),
        }
    }

    /// One random statement block appended to `u`, using loop variable
    /// `v`; `s` names the scalar being accumulated.
    fn block(&mut self, u: &mut U, v: &str, s: &str) {
        match self.r.below(7) {
            0 => {
                let e = self.rexpr(v);
                u.stmt(None, &format!("{s} = {s} + {e}"));
            }
            1 => {
                let t = self.idx(v);
                let e = self.rexpr(v);
                u.stmt(None, &format!("A({t}) = {e}"));
            }
            2 => {
                let e = self.rexpr(v);
                let e2 = self.rexpr(v);
                u.stmt(None, &format!("IF ({e} .GT. {}) THEN", self.rc()));
                u.stmt(None, &format!("{s} = {s} + {e2}"));
                u.stmt(None, "ELSE");
                u.stmt(None, &format!("{s} = {s} - {}", self.rc()));
                u.stmt(None, "END IF");
            }
            3 => {
                u.stmt(
                    None,
                    &format!("KACC = KACC + MOD({v}*{} + {}, 5)", self.ic(), self.ic()),
                );
            }
            4 => {
                // Computed GOTO diamond.
                let (l1, l2, l3, l4) =
                    (u.next_label(), u.next_label(), u.next_label(), u.next_label());
                u.stmt(None, &format!("KSEL = MOD({v} + {}, 3) + 1", self.ic()));
                u.stmt(None, &format!("GOTO ({l1}, {l2}, {l3}), KSEL"));
                u.stmt(Some(l1), &format!("{s} = {s} + {}", self.rc()));
                u.stmt(None, &format!("GOTO {l4}"));
                u.stmt(Some(l2), &format!("{s} = {s} - {}", self.rc()));
                u.stmt(None, &format!("GOTO {l4}"));
                u.stmt(Some(l3), "KACC = KACC + 1");
                u.stmt(Some(l4), "CONTINUE");
            }
            5 => {
                // Arithmetic IF diamond.
                let (l1, l2, l3, l4) =
                    (u.next_label(), u.next_label(), u.next_label(), u.next_label());
                let a = self.idx(v);
                let b = self.idx(v);
                u.stmt(None, &format!("IF (A({a}) - B({b})) {l1}, {l2}, {l3}"));
                u.stmt(Some(l1), &format!("{s} = {s} - {}", self.rc()));
                u.stmt(None, &format!("GOTO {l4}"));
                u.stmt(Some(l2), "KACC = KACC + 2");
                u.stmt(None, &format!("GOTO {l4}"));
                u.stmt(Some(l3), &format!("{s} = {s} + {}", self.rc()));
                u.stmt(Some(l4), "CONTINUE");
            }
            _ => {
                // Inner labeled DO with a GOTO-to-terminal (a CYCLE in
                // disguise).
                let lt = u.next_label();
                u.stmt(None, &format!("DO {lt} JJ = 1, {}", 1 + self.r.below(4)));
                let a = self.idx("JJ");
                u.stmt(None, &format!("IF (A({a}) .LT. {}) GOTO {lt}", self.rc()));
                let e = self.rexpr("JJ");
                u.stmt(None, &format!("{s} = {s} + {e}"));
                u.stmt(Some(lt), "CONTINUE");
            }
        }
    }
}

fn common_header(u: &mut U, n: u64) {
    u.stmt(None, &format!("PARAMETER (N = {n})"));
    u.stmt(None, "COMMON /DAT/ A(N), B(N), S1, S2, KACC");
}

fn unit_fillup(g: &mut Gen) -> String {
    let mut u = U::new();
    u.stmt(None, "SUBROUTINE FILLUP");
    common_header(&mut u, g.n);
    let lt = u.next_label();
    u.stmt(None, &format!("DO {lt} I = 1, N"));
    u.stmt(None, &format!("A(I) = REAL(I) * {} + {}", g.rc(), g.rc()));
    u.stmt(
        None,
        &format!("B(I) = REAL(MOD(I*{} + {}, 7)) - {}", g.ic(), g.ic(), g.rc()),
    );
    u.stmt(Some(lt), "CONTINUE");
    u.finish()
}

/// A deliberately vectorizable unit: one canonical unit-stride DO whose
/// statements are elementwise affine REAL assignments (no MOD
/// subscripts, no control flow), so every generated program exercises
/// the bytecode compiler's vector superinstruction — and, promoted from
/// it, the native (JIT) tier — not just the scalar paths.
fn unit_sweep(g: &mut Gen) -> String {
    let mut u = U::new();
    u.stmt(None, "SUBROUTINE SWEEP(C0)");
    common_header(&mut u, g.n);
    u.stmt(None, "REAL C0");
    let lt = u.next_label();
    u.stmt(None, &format!("DO {lt} I = 1, N"));
    let (rhs, reversed) = g.vec_rhs("I", "C0");
    u.stmt(None, &format!("A(I) = {rhs}"));
    if !reversed && g.r.chance(60) {
        u.stmt(None, &format!("B(I) = B(I) * {} + {}", g.rc(), g.rc()));
    }
    u.stmt(Some(lt), "CONTINUE");
    if g.r.chance(50) {
        // Reduction-shaped serial loop (parenthesized term → `acc +
        // term`), covering the tiers' sequential fold path as well.
        let lr = u.next_label();
        u.stmt(None, &format!("DO {lr} I = 1, N"));
        u.stmt(None, &format!("S2 = S2 + (A(I) * {} + C0)", g.rc()));
        u.stmt(Some(lr), "CONTINUE");
    }
    u.finish()
}

fn unit_stir(g: &mut Gen) -> String {
    let mut u = U::new();
    u.stmt(None, "SUBROUTINE STIR(M)");
    common_header(&mut u, g.n);
    u.stmt(None, "INTEGER M");
    let lt = u.next_label();
    u.stmt(None, &format!("DO {lt} I = 1, N"));
    let blocks = 2 + g.r.below(3);
    for _ in 0..blocks {
        g.block(&mut u, "I", "S2");
    }
    u.stmt(Some(lt), "CONTINUE");
    u.stmt(None, "S2 = S2 + REAL(M) * 0.125");
    u.finish()
}

fn unit_blend(g: &mut Gen) -> String {
    let mut u = U::new();
    // Half the time the FUNCTION head is untyped: the result type comes
    // from IMPLICIT (B -> REAL).
    if g.r.chance(50) {
        u.stmt(None, "REAL FUNCTION BLEND(K)");
    } else {
        u.stmt(None, "FUNCTION BLEND(K)");
    }
    common_header(&mut u, g.n);
    u.stmt(None, "INTEGER K");
    if g.r.chance(50) {
        // Backward-GOTO counter loop.
        let l1 = u.next_label();
        let m = 2 + g.r.below(4);
        u.stmt(None, "BLEND = 0.0");
        u.stmt(None, "JC = 0");
        u.stmt(Some(l1), "JC = JC + 1");
        let e = g.rexpr("JC");
        u.stmt(None, &format!("BLEND = BLEND + {e}"));
        u.stmt(None, &format!("IF (JC .LT. {m}) GOTO {l1}"));
    } else {
        let a = g.idx("K");
        u.stmt(None, &format!("BLEND = A({a}) * {} + S1 * 0.0625", g.rc()));
    }
    u.finish()
}

fn unit_main(g: &mut Gen) -> String {
    let mut u = U::new();
    // Half the corpus uses an implicit main (no PROGRAM card).
    if g.r.chance(50) {
        u.stmt(None, "PROGRAM MAIN");
    }
    common_header(&mut u, g.n);
    let use_equiv = g.r.chance(40);
    let use_data = g.r.chance(40);
    if use_equiv {
        u.stmt(None, "REAL T1, T2");
        u.stmt(None, "EQUIVALENCE (T1, T2)");
    }
    if use_data {
        u.stmt(None, "REAL W(3)");
        u.stmt(None, &format!("DATA W /2*{}, {}/", g.rc(), g.rc()));
    }
    u.stmt(None, "S1 = 0.0");
    u.stmt(None, "S2 = 0.0");
    u.stmt(None, "KACC = 0");
    u.stmt(None, "CALL FILLUP");
    u.stmt(None, &format!("CALL SWEEP({})", g.rc()));
    let lt = u.next_label();
    let outer = 2 + g.r.below(4);
    u.stmt(None, &format!("DO {lt} I = 1, {outer}"));
    u.stmt(None, "CALL STIR(I)");
    u.stmt(Some(lt), "CONTINUE");
    if use_equiv {
        u.stmt(None, "T1 = S2 * 0.5");
        u.stmt(None, "S2 = S2 + T2");
    }
    if use_data {
        u.stmt(None, "S2 = S2 + W(1) + W(2) * W(3)");
    }
    if g.r.chance(60) {
        // OMP reduction loop: reassociation-tolerant compare in
        // Parallel mode, bit-exact in Serial/Simulated. The term is
        // parenthesized so the statement parses as `acc + term` — the
        // reduction shape the vector/native tiers accept.
        u.raw("C$OMP PARALLEL DO REDUCTION(+:S1) PRIVATE(I)");
        let lo = u.next_label();
        u.stmt(None, &format!("DO {lo} I = 1, N"));
        u.stmt(None, &format!("S1 = S1 + (A(I) * {} + B(I))", g.rc()));
        u.stmt(Some(lo), "CONTINUE");
    }
    let lb = u.next_label();
    u.stmt(None, &format!("DO {lb} I = 1, {}", 1 + g.r.below(3)));
    u.stmt(None, "S1 = S1 + BLEND(I)");
    u.stmt(Some(lb), "CONTINUE");
    let extra = 1 + g.r.below(3);
    for _ in 0..extra {
        g.block(&mut u, "KACC", "S1");
    }
    u.stmt(None, "PRINT *, S1, S2, KACC");
    u.finish()
}

/// Derives one deterministic two-file fixed-form F77 program from `seed`.
/// The entry unit is always `main`; the files share the COMMON block
/// `/DAT/` so cross-file global storage is exercised by every program.
pub fn generate(seed: u64) -> Vec<String> {
    let mut r = Rng::new(seed);
    let n = 4 + r.below(13); // PARAMETER N in 4..=16
    let mut g = Gen { r: &mut r, n };
    let mut f1 = String::new();
    f1.push_str(&unit_fillup(&mut g));
    f1.push_str(&unit_sweep(&mut g));
    f1.push_str(&unit_stir(&mut g));
    f1.push_str(&unit_blend(&mut g));
    let f2 = unit_main(&mut g);
    vec![f1, f2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(generate(42), generate(42));
        assert_ne!(generate(1), generate(2));
    }

    #[test]
    fn generated_sources_are_fixed_form() {
        for seed in 0..20 {
            for src in generate(seed) {
                assert!(crate::fixedform::is_fixed_form(&src), "seed {seed}");
            }
        }
    }
}
