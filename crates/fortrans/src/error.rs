//! Compile-time and run-time error types.

/// A source position (line-granular; the lexer joins continuations so a
/// logical line's first physical line is reported).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    pub line: u32,
}

impl std::fmt::Display for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}", self.line)
    }
}

/// Errors raised while lexing, parsing or resolving a program.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    Lex { msg: String, span: Span },
    Parse { msg: String, span: Span },
    Sema { msg: String, span: Span },
    /// The static bytecode verifier rejected a compiled unit. `pc` is the
    /// instruction index within the unit (or the unit length for
    /// end-of-stream faults).
    Verify { unit: String, pc: u32, msg: String },
    /// The fixed-form F77 front end rejected the source set. Unlike the
    /// fail-fast variants above this carries *every* problem found: the
    /// front end recovers at statement boundaries, so one batch
    /// submission reports all errors in one pass.
    Fixed { diags: Diagnostics },
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::Lex { msg, span } => write!(f, "lex error at {span}: {msg}"),
            CompileError::Parse { msg, span } => write!(f, "parse error at {span}: {msg}"),
            CompileError::Sema { msg, span } => write!(f, "semantic error at {span}: {msg}"),
            CompileError::Verify { unit, pc, msg } => {
                write!(f, "bytecode verification failed in `{unit}` at pc {pc}: {msg}")
            }
            CompileError::Fixed { diags } => {
                write!(
                    f,
                    "fixed-form front end: {} error(s), {} warning(s)\n{}",
                    diags.error_count(),
                    diags.warning_count(),
                    diags.render()
                )
            }
        }
    }
}

/// How bad one fixed-form diagnostic is. `Warning`s alone never fail a
/// compile (e.g. discarded text past column 72); `Error`s do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    Warning,
    Error,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One recovered problem from the fixed-form front end: where, how bad,
/// what, and (when we can guess) how to fix it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Index of the offending source in the submitted set.
    pub file: usize,
    pub span: Span,
    pub severity: Severity,
    pub message: String,
    /// A fix-hint, when the front end can suggest one.
    pub hint: Option<String>,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "file {}, line {}: {}: {}",
            self.file, self.span.line, self.severity, self.message
        )?;
        if let Some(h) = &self.hint {
            write!(f, "\n  help: {h}")?;
        }
        Ok(())
    }
}

/// The accumulated diagnostics of one front-end pass over a source set.
/// Statement-boundary recovery means this usually holds *several*
/// entries for a malformed file, in source order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Diagnostics {
    pub list: Vec<Diagnostic>,
}

impl Diagnostics {
    pub fn push(&mut self, d: Diagnostic) {
        self.list.push(d);
    }

    pub fn error(&mut self, file: usize, line: u32, message: impl Into<String>) {
        self.list.push(Diagnostic {
            file,
            span: Span { line },
            severity: Severity::Error,
            message: message.into(),
            hint: None,
        });
    }

    pub fn error_hint(
        &mut self,
        file: usize,
        line: u32,
        message: impl Into<String>,
        hint: impl Into<String>,
    ) {
        self.list.push(Diagnostic {
            file,
            span: Span { line },
            severity: Severity::Error,
            message: message.into(),
            hint: Some(hint.into()),
        });
    }

    pub fn warn_hint(
        &mut self,
        file: usize,
        line: u32,
        message: impl Into<String>,
        hint: impl Into<String>,
    ) {
        self.list.push(Diagnostic {
            file,
            span: Span { line },
            severity: Severity::Warning,
            message: message.into(),
            hint: Some(hint.into()),
        });
    }

    pub fn error_count(&self) -> usize {
        self.list.iter().filter(|d| d.severity == Severity::Error).count()
    }

    pub fn warning_count(&self) -> usize {
        self.list.iter().filter(|d| d.severity == Severity::Warning).count()
    }

    pub fn has_errors(&self) -> bool {
        self.error_count() > 0
    }

    pub fn is_empty(&self) -> bool {
        self.list.is_empty()
    }

    /// Absorbs a fail-fast [`CompileError`] (e.g. a free-form parse error
    /// from a mixed source set) as one more diagnostic.
    pub fn absorb(&mut self, file: usize, e: &CompileError) {
        let (line, msg) = match e {
            CompileError::Lex { msg, span }
            | CompileError::Parse { msg, span }
            | CompileError::Sema { msg, span } => (span.line, msg.clone()),
            CompileError::Verify { unit, pc, msg } => {
                (0, format!("bytecode verification failed in `{unit}` at pc {pc}: {msg}"))
            }
            CompileError::Fixed { diags } => {
                for d in &diags.list {
                    let mut d = d.clone();
                    d.file = file;
                    self.list.push(d);
                }
                return;
            }
        };
        self.list.push(Diagnostic {
            file,
            span: Span { line },
            severity: Severity::Error,
            message: msg,
            hint: None,
        });
    }

    /// One line per diagnostic (plus indented help lines), in source
    /// order. This is what golden tests pin.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (i, d) in self.list.iter().enumerate() {
            if i > 0 {
                out.push('\n');
            }
            out.push_str(&d.to_string());
        }
        out
    }
}

impl std::error::Error for CompileError {}

/// Errors raised during execution.
#[derive(Debug, Clone, PartialEq)]
pub enum RunError {
    /// Array index outside declared bounds.
    OutOfBounds { var: String, dim: usize, index: i64, lo: i64, hi: i64 },
    /// Use of an unallocated allocatable array.
    Unallocated { var: String },
    /// ALLOCATE of an already-allocated array (without SAVE-guard).
    AlreadyAllocated { var: String },
    /// Call of an unknown unit, or argument count mismatch.
    BadCall { name: String, msg: String },
    /// Arithmetic fault surfaced deliberately (e.g. integer division by
    /// zero; float ops follow IEEE and do not fault).
    Arith { msg: String },
    /// Type confusion that slipped past static checking.
    Type { msg: String },
    /// User-visible STOP with a message.
    Stop { msg: String },
    /// Iteration/recursion safety valve tripped.
    Limit { msg: String },
    /// An internal fault (worker panic, contained VM trap) surfaced as a
    /// recoverable error instead of aborting the process.
    Trap { what: String },
    /// Cooperative cancellation observed at a safepoint (DO-loop
    /// back-edge, OMP region entry, VM dispatch poll). `at_line` is the
    /// source line executing when the token was observed, when known.
    /// `reason` records who fired the token (e.g. a batch watchdog's
    /// deadline). Cancellation is final: it never retries and never
    /// falls back to the oracle tier.
    Cancelled { at_line: Option<u32>, reason: String },
    /// The artifact's circuit breaker is open: its accumulated
    /// trap/cancel count crossed the quarantine threshold and the policy
    /// refuses new runs until `ArtifactCache::clear_quarantine`.
    Quarantined { source_hash: u64, faults: u64 },
    /// A job was rejected before execution started (compile failure in a
    /// deferred-compile batch, or a panic while setting up its session).
    Rejected { msg: String },
    /// A runtime fault annotated with where it happened. `line` is the
    /// source line (via the PC→line debug table in the VM tier, or the
    /// statement span in the tree-walk tier); `pc` is the bytecode
    /// program counter and is set only by the VM tier. Display shows the
    /// line when known so both tiers render identically, and falls back
    /// to the pc otherwise.
    Ctx { unit: String, line: Option<u32>, pc: Option<u32>, inner: Box<RunError> },
}

impl RunError {
    /// Wraps `self` with execution context unless it is already wrapped
    /// (the innermost frame wins: it is the most precise).
    pub fn with_ctx(self, unit: &str, line: Option<u32>, pc: Option<u32>) -> RunError {
        match self {
            RunError::Ctx { .. } => self,
            inner => RunError::Ctx { unit: unit.to_string(), line, pc, inner: Box::new(inner) },
        }
    }

    /// The underlying fault, stripped of any context wrapper.
    pub fn root(&self) -> &RunError {
        match self {
            RunError::Ctx { inner, .. } => inner.root(),
            other => other,
        }
    }
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::OutOfBounds { var, dim, index, lo, hi } => write!(
                f,
                "index {index} out of bounds {lo}:{hi} in dimension {dim} of `{var}`"
            ),
            RunError::Unallocated { var } => write!(f, "array `{var}` used before ALLOCATE"),
            RunError::AlreadyAllocated { var } => write!(f, "array `{var}` is already allocated"),
            RunError::BadCall { name, msg } => write!(f, "bad call to `{name}`: {msg}"),
            RunError::Arith { msg } => write!(f, "arithmetic error: {msg}"),
            RunError::Type { msg } => write!(f, "type error: {msg}"),
            RunError::Stop { msg } => write!(f, "STOP: {msg}"),
            RunError::Limit { msg } => write!(f, "limit exceeded: {msg}"),
            RunError::Trap { what } => write!(f, "internal fault trapped: {what}"),
            RunError::Cancelled { at_line, reason } => {
                write!(f, "cancelled: {reason}")?;
                if let Some(l) = at_line {
                    write!(f, " (observed at line {l})")?;
                }
                Ok(())
            }
            RunError::Quarantined { source_hash, faults } => write!(
                f,
                "artifact {source_hash:016x} is quarantined after {faults} faults; \
                 clear it explicitly to resume"
            ),
            RunError::Rejected { msg } => write!(f, "job rejected: {msg}"),
            RunError::Ctx { unit, line, pc, inner } => {
                write!(f, "{inner} (in {unit}")?;
                match (line, pc) {
                    (Some(l), _) => write!(f, " at line {l})"),
                    (None, Some(p)) => write!(f, " at pc {p})"),
                    (None, None) => write!(f, ")"),
                }
            }
        }
    }
}

impl std::error::Error for RunError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        let e = CompileError::Parse { msg: "x".into(), span: Span { line: 3 } };
        assert_eq!(e.to_string(), "parse error at line 3: x");
        let r = RunError::OutOfBounds { var: "a".into(), dim: 0, index: 9, lo: 1, hi: 4 };
        assert!(r.to_string().contains("out of bounds"));
    }
}
