//! Cost accounting for the simulated execution mode.
//!
//! While interpreting, the engine tallies abstract operation counts. The
//! counts are split into a **scalar** and a **vector** bucket: work inside
//! a serial loop the (modeled) compiler could vectorize lands in the
//! vector bucket; everything else is scalar. The `simcpu` crate turns a
//! [`CostTrace`] into simulated time on a machine model.

/// Raw operation counts.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OpCounts {
    /// f64 add/sub/mul and comparisons.
    pub flop: u64,
    /// f64 divisions.
    pub fdiv: u64,
    /// Transcendentals (exp, log, sqrt, pow, trig).
    pub fspecial: u64,
    /// Integer ALU ops.
    pub iop: u64,
    /// Memory reads of array elements / shared scalars.
    pub load: u64,
    /// Memory writes.
    pub store: u64,
}

impl OpCounts {
    pub fn add(&mut self, o: &OpCounts) {
        self.flop += o.flop;
        self.fdiv += o.fdiv;
        self.fspecial += o.fspecial;
        self.iop += o.iop;
        self.load += o.load;
        self.store += o.store;
    }

    /// Total memory traffic in bytes (8 bytes per access in our model).
    pub fn mem_bytes(&self) -> u64 {
        (self.load + self.store) * 8
    }

    pub fn is_zero(&self) -> bool {
        *self == OpCounts::default()
    }
}

/// Counters for a stretch of execution.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CostCounters {
    pub scalar: OpCounts,
    /// Work attributable to compiler-vectorizable serial loops.
    pub vector: OpCounts,
    /// Work attributable to memset-recognizable zero-initialization loops.
    pub memset_bytes: u64,
    pub branches: u64,
    pub calls: u64,
    pub alloc_calls: u64,
    pub alloc_bytes: u64,
    /// `!$OMP ATOMIC` updates executed.
    pub atomics: u64,
    /// Fork costs of *nested* parallel regions encountered while already
    /// inside a region (executed with a team of one).
    pub nested_forks: u64,
}

impl CostCounters {
    pub fn add(&mut self, o: &CostCounters) {
        self.scalar.add(&o.scalar);
        self.vector.add(&o.vector);
        self.memset_bytes += o.memset_bytes;
        self.branches += o.branches;
        self.calls += o.calls;
        self.alloc_calls += o.alloc_calls;
        self.alloc_bytes += o.alloc_bytes;
        self.atomics += o.atomics;
        self.nested_forks += o.nested_forks;
    }

    pub fn is_zero(&self) -> bool {
        *self == CostCounters::default()
    }
}

/// A parallel region observed during simulated execution.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionEvent {
    /// Team size the region forked with.
    pub threads: usize,
    /// Per-thread work under the static schedule.
    pub per_thread: Vec<CostCounters>,
    /// Work executed inside `!$OMP CRITICAL` sections (serializes).
    pub critical: CostCounters,
    /// Number of `REDUCTION` variables combined at the join.
    pub reductions: usize,
    /// Total iterations of the (collapsed) parallel loop.
    pub trip: u64,
    /// Source line of the parallel DO (0 when unknown) — joins simulated
    /// region costs with measured `omp@line` profile spans.
    pub line: u32,
}

/// The trace: serial stretches interleaved with parallel regions.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    Serial(CostCounters),
    Region(RegionEvent),
}

/// A full simulated-execution trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CostTrace {
    pub events: Vec<TraceEvent>,
}

impl CostTrace {
    /// Appends accumulated serial counters (if non-empty).
    pub fn push_serial(&mut self, c: CostCounters) {
        if !c.is_zero() {
            self.events.push(TraceEvent::Serial(c));
        }
    }

    pub fn push_region(&mut self, r: RegionEvent) {
        self.events.push(TraceEvent::Region(r));
    }

    /// Number of parallel regions in the trace.
    pub fn region_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Region(_)))
            .count()
    }

    /// Sum of all counters (flattened over threads) — a coarse "total
    /// work" metric used in tests.
    pub fn total(&self) -> CostCounters {
        let mut t = CostCounters::default();
        for e in &self.events {
            match e {
                TraceEvent::Serial(c) => t.add(c),
                TraceEvent::Region(r) => {
                    for p in &r.per_thread {
                        t.add(p);
                    }
                    t.add(&r.critical);
                }
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut a = CostCounters::default();
        a.scalar.flop = 3;
        a.atomics = 1;
        let mut b = CostCounters::default();
        b.scalar.flop = 2;
        b.vector.load = 5;
        a.add(&b);
        assert_eq!(a.scalar.flop, 5);
        assert_eq!(a.vector.load, 5);
        assert_eq!(a.atomics, 1);
    }

    #[test]
    fn empty_serial_not_pushed() {
        let mut t = CostTrace::default();
        t.push_serial(CostCounters::default());
        assert!(t.events.is_empty());
        t.push_serial(CostCounters { branches: 1, ..Default::default() });
        assert_eq!(t.events.len(), 1);
    }

    #[test]
    fn totals_flatten_regions() {
        let mut t = CostTrace::default();
        let mut s = CostCounters::default();
        s.scalar.flop = 1;
        t.push_serial(s);
        let mut p0 = CostCounters::default();
        p0.scalar.flop = 10;
        let mut p1 = CostCounters::default();
        p1.scalar.flop = 20;
        t.push_region(RegionEvent {
            threads: 2,
            per_thread: vec![p0, p1],
            critical: CostCounters::default(),
            reductions: 1,
            trip: 30,
            line: 0,
        });
        assert_eq!(t.total().scalar.flop, 31);
        assert_eq!(t.region_count(), 1);
    }

    #[test]
    fn mem_bytes() {
        let o = OpCounts { load: 3, store: 2, ..Default::default() };
        assert_eq!(o.mem_bytes(), 40);
    }
}
