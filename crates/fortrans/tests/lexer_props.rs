//! Property tests at the token level: every literal the code generator
//! can emit must survive the lexer exactly.

use fortrans::lex::{lex, Tok};
use proptest::prelude::*;

/// The code generator's double-precision literal form (mirrors
/// `glaf_codegen::fortran::real_literal`).
fn fortran_real_literal(v: f64) -> String {
    format!("{v:e}").replacen('e', "D", 1)
}

fn lex_single(src: &str) -> Vec<Tok> {
    let lines = lex(src).unwrap_or_else(|e| panic!("{e} for {src:?}"));
    assert_eq!(lines.len(), 1, "{src:?} -> {lines:?}");
    lines[0].toks.clone()
}

proptest! {
    /// Positive reals round-trip bit-exactly through emit + lex.
    #[test]
    fn real_literals_roundtrip(v in prop::num::f64::POSITIVE) {
        let lit = fortran_real_literal(v);
        let toks = lex_single(&format!("x = {lit}"));
        prop_assert_eq!(toks.len(), 3);
        match &toks[2] {
            Tok::Real(got) => prop_assert_eq!(*got, v, "{}", lit),
            other => prop_assert!(false, "expected real, got {:?} from {}", other, lit),
        }
    }

    /// Integers round-trip.
    #[test]
    fn int_literals_roundtrip(v in 0i64..=i64::MAX) {
        let toks = lex_single(&format!("x = {v}"));
        match &toks[2] {
            Tok::Int(got) => prop_assert_eq!(*got, v),
            other => prop_assert!(false, "{:?}", other),
        }
    }

    /// Identifiers fold to lowercase regardless of input case.
    #[test]
    fn identifiers_case_fold(name in "[A-Za-z][A-Za-z0-9_]{0,12}") {
        let toks = lex_single(&name);
        match &toks[0] {
            Tok::Ident(s) => prop_assert_eq!(s, &name.to_ascii_lowercase()),
            other => prop_assert!(false, "{:?}", other),
        }
    }

    /// Splitting a statement across continuations never changes tokens.
    #[test]
    fn continuations_token_equivalent(a in 1i64..1000, b in 1i64..1000, c in 1i64..1000) {
        let one = lex_single(&format!("x = {a} + {b} * {c}"));
        let lines = lex(&format!("x = {a} + &\n  {b} * &\n  {c}")).unwrap();
        prop_assert_eq!(lines.len(), 1);
        prop_assert_eq!(&lines[0].toks, &one);
    }
}

#[test]
fn subnormal_and_extreme_reals() {
    for v in [f64::MIN_POSITIVE, 1e-300, 1e300, 4.9e-324] {
        let lit = fortran_real_literal(v);
        let toks = lex_single(&format!("x = {lit}"));
        match &toks[2] {
            Tok::Real(got) => assert_eq!(*got, v, "{lit}"),
            other => panic!("{other:?}"),
        }
    }
}
