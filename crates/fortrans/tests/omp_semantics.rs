//! Focused OpenMP-semantics tests: scheduling clauses, NUM_THREADS,
//! firstprivate behaviour through frame cloning, product/min reductions,
//! negative-step parallel loops, and printing from parallel regions.
//!
//! `Engine::run` executes on the bytecode VM by default, so every test
//! here exercises the VM's OMP implementation; the tier-matrix test at
//! the bottom additionally pins VM/tree-walker agreement for the full
//! clause set.

use fortrans::{ArgVal, Engine, ExecMode, ExecTier, Val};

fn engine(src: &str) -> Engine {
    Engine::compile(&[src]).unwrap_or_else(|e| panic!("{e}\n{src}"))
}

const ALL: [ExecMode; 3] = [
    ExecMode::Serial,
    ExecMode::Parallel { threads: 3 },
    ExecMode::Simulated { threads: 3 },
];

#[test]
fn schedule_static_chunk_covers_iterations() {
    let src = r#"
MODULE m
CONTAINS
  SUBROUTINE mark(a, n)
    REAL(8), DIMENSION(1:97) :: a
    INTEGER :: n
    INTEGER :: i
    !$OMP PARALLEL DO SCHEDULE(STATIC, 5)
    DO i = 1, n
      a(i) = a(i) + i * 1.0D0
    END DO
    !$OMP END PARALLEL DO
  END SUBROUTINE mark
END MODULE m
"#;
    let e = engine(src);
    for mode in ALL {
        let a = ArgVal::array_f(&vec![0.0; 97], 1);
        e.run("mark", &[a.clone(), ArgVal::I(97)], mode).unwrap();
        let got = a.handle().unwrap().to_f64_vec();
        for (i, v) in got.iter().enumerate() {
            assert_eq!(*v, (i + 1) as f64, "{mode:?} i={i}");
        }
    }
}

#[test]
fn num_threads_clause_caps_team() {
    let src = r#"
MODULE m
CONTAINS
  SUBROUTINE work(a)
    REAL(8), DIMENSION(1:64) :: a
    INTEGER :: i
    !$OMP PARALLEL DO NUM_THREADS(2)
    DO i = 1, 64
      a(i) = i * 1.0D0
    END DO
    !$OMP END PARALLEL DO
  END SUBROUTINE work
END MODULE m
"#;
    let e = engine(src);
    let a = ArgVal::array_f(&vec![0.0; 64], 1);
    let out = e
        .run("work", std::slice::from_ref(&a), ExecMode::Simulated { threads: 8 })
        .unwrap();
    // The trace must show a 2-thread region despite the 8-thread mode.
    let region = out
        .trace
        .events
        .iter()
        .find_map(|ev| match ev {
            fortrans::TraceEvent::Region(r) => Some(r),
            _ => None,
        })
        .expect("one region");
    assert_eq!(region.threads, 2);
    assert_eq!(a.handle().unwrap().get_f(63), 64.0);
}

#[test]
fn firstprivate_semantics_via_frame_cloning() {
    // `scale` is set before the region and read inside: every thread must
    // see the pre-region value.
    let src = r#"
MODULE m
CONTAINS
  SUBROUTINE scaleit(a, n)
    REAL(8), DIMENSION(1:40) :: a
    INTEGER :: n
    REAL(8) :: scale
    INTEGER :: i
    scale = 2.5D0
    !$OMP PARALLEL DO FIRSTPRIVATE(scale)
    DO i = 1, n
      a(i) = a(i) * scale
    END DO
    !$OMP END PARALLEL DO
  END SUBROUTINE scaleit
END MODULE m
"#;
    let e = engine(src);
    for mode in ALL {
        let a = ArgVal::array_f(&vec![2.0; 40], 1);
        e.run("scaleit", &[a.clone(), ArgVal::I(40)], mode).unwrap();
        assert_eq!(a.handle().unwrap().get_f(17), 5.0, "{mode:?}");
    }
}

#[test]
fn product_and_min_reductions() {
    let src = r#"
MODULE m
CONTAINS
  SUBROUTINE stats(a, n, p, mn)
    REAL(8), DIMENSION(1:12) :: a
    INTEGER :: n
    REAL(8) :: p, mn
    INTEGER :: i
    p = 1.0D0
    mn = 1.0D30
    !$OMP PARALLEL DO REDUCTION(*:p) REDUCTION(MIN:mn)
    DO i = 1, n
      p = p * a(i)
      mn = MIN(mn, a(i))
    END DO
    !$OMP END PARALLEL DO
  END SUBROUTINE stats
  SUBROUTINE driver(a, n, res)
    REAL(8), DIMENSION(1:12) :: a
    INTEGER :: n
    REAL(8), DIMENSION(1:2) :: res
    REAL(8) :: p, mn
    CALL stats(a, n, p, mn)
    res(1) = p
    res(2) = mn
  END SUBROUTINE driver
END MODULE m
"#;
    let e = engine(src);
    let data: Vec<f64> = (1..=12).map(|i| 1.0 + (i % 3) as f64 * 0.5).collect();
    let expect_p: f64 = data.iter().product();
    let expect_mn: f64 = data.iter().cloned().fold(f64::INFINITY, f64::min);
    for mode in ALL {
        let a = ArgVal::array_f(&data, 1);
        let res = ArgVal::array_f(&[0.0, 0.0], 1);
        e.run("driver", &[a, ArgVal::I(12), res.clone()], mode).unwrap();
        let h = res.handle().unwrap();
        assert!((h.get_f(0) - expect_p).abs() < 1e-12, "{mode:?}: {}", h.get_f(0));
        assert_eq!(h.get_f(1), expect_mn, "{mode:?}");
    }
}

#[test]
fn parallel_loop_with_negative_step() {
    let src = r#"
MODULE m
CONTAINS
  SUBROUTINE rev(a, n)
    REAL(8), DIMENSION(1:30) :: a
    INTEGER :: n
    INTEGER :: i
    !$OMP PARALLEL DO
    DO i = n, 1, -1
      a(i) = i * 10.0D0
    END DO
    !$OMP END PARALLEL DO
  END SUBROUTINE rev
END MODULE m
"#;
    let e = engine(src);
    for mode in ALL {
        let a = ArgVal::array_f(&vec![0.0; 30], 1);
        e.run("rev", &[a.clone(), ArgVal::I(30)], mode).unwrap();
        assert_eq!(a.handle().unwrap().get_f(0), 10.0, "{mode:?}");
        assert_eq!(a.handle().unwrap().get_f(29), 300.0, "{mode:?}");
    }
}

#[test]
fn prints_from_parallel_regions_are_collected() {
    let src = r#"
MODULE m
CONTAINS
  SUBROUTINE noisy(n)
    INTEGER :: n
    INTEGER :: i
    !$OMP PARALLEL DO
    DO i = 1, n
      PRINT *, 'iter', i
    END DO
    !$OMP END PARALLEL DO
  END SUBROUTINE noisy
END MODULE m
"#;
    let e = engine(src);
    let out = e
        .run("noisy", &[ArgVal::I(8)], ExecMode::Parallel { threads: 4 })
        .unwrap();
    assert_eq!(out.printed.matches("iter").count(), 8, "{}", out.printed);
}

#[test]
fn integer_parallel_reduction() {
    let src = r#"
MODULE m
CONTAINS
  INTEGER FUNCTION countup(n)
    INTEGER :: n
    INTEGER :: i, acc
    acc = 0
    !$OMP PARALLEL DO REDUCTION(+:acc)
    DO i = 1, n
      acc = acc + i
    END DO
    !$OMP END PARALLEL DO
    countup = acc
  END FUNCTION countup
END MODULE m
"#;
    let e = engine(src);
    for mode in ALL {
        let out = e.run("countup", &[ArgVal::I(100)], mode).unwrap();
        assert_eq!(out.result, Some(Val::I(5050)), "{mode:?}");
    }
}

/// One kernel combining every supported worksharing clause —
/// PRIVATE, FIRSTPRIVATE, REDUCTION, COLLAPSE, SCHEDULE, ATOMIC and
/// CRITICAL — run through both execution tiers in all three modes.
/// The accumulators are integer-valued reals, so even the Parallel
/// combine is exact and both tiers must agree to the bit.
#[test]
fn clause_matrix_agrees_across_tiers() {
    let src = r#"
MODULE m
  REAL(8) :: crit_total
  REAL(8), DIMENSION(1:8) :: bins
CONTAINS
  SUBROUTINE kitchen_sink(a, n, m, res)
    REAL(8), DIMENSION(1:6, 1:40) :: a
    INTEGER :: n, m
    REAL(8), DIMENSION(1:2) :: res
    REAL(8) :: base, acc
    REAL(8), DIMENSION(1:4) :: scratch
    INTEGER :: i, j, k, b
    base = 3.0D0
    acc = 0.0D0
    !$OMP PARALLEL DO DEFAULT(SHARED) COLLAPSE(2) SCHEDULE(STATIC, 7) &
    !$OMP&  FIRSTPRIVATE(base) PRIVATE(scratch, k, b) REDUCTION(+:acc)
    DO i = 1, n
      DO j = 1, m
        DO k = 1, 4
          scratch(k) = i * 1.0D0 + j
        END DO
        a(i, j) = scratch(1) + scratch(4) + base
        acc = acc + a(i, j)
        b = MOD(i * 40 + j, 8) + 1
        !$OMP ATOMIC
        bins(b) = bins(b) + 1.0D0
        !$OMP CRITICAL (tot)
        crit_total = crit_total + 1.0D0
        !$OMP END CRITICAL
      END DO
    END DO
    !$OMP END PARALLEL DO
    res(1) = acc
    res(2) = crit_total
  END SUBROUTINE kitchen_sink
END MODULE m
"#;
    for mode in ALL {
        let run_tier = |tier| {
            let e = engine(src);
            let a = ArgVal::array_f_dims(&vec![0.0; 240], vec![(1, 6), (1, 40)]).unwrap();
            let res = ArgVal::array_f(&[0.0, 0.0], 1);
            let out = e
                .run_tiered(
                    "kitchen_sink",
                    &[a.clone(), ArgVal::I(6), ArgVal::I(40), res.clone()],
                    mode,
                    tier,
                )
                .unwrap();
            let bins = e.global_array("m::bins").unwrap().to_f64_vec();
            (out.result, a.handle().unwrap().to_f64_vec(), res.handle().unwrap().to_f64_vec(), bins)
        };
        let vm = run_tier(ExecTier::Vm);
        let tw = run_tier(ExecTier::TreeWalk);
        assert_eq!(vm, tw, "tier divergence under {mode:?}");
        // Sanity: 240 iterations hit the critical section exactly once.
        assert_eq!(vm.2[1], 240.0, "{mode:?}");
    }
}
