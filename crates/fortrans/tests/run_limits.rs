//! Execution limits ([`fortrans::RunLimits`]) and runtime fault
//! context, on both execution tiers.
//!
//! The two tiers meter differently — the tree-walker ticks once per
//! statement, the VM once per instruction — so each tier is tested
//! against its own budget rather than through the differential harness.

use std::time::Duration;

use fortrans::{ArgVal, Engine, ExecMode, ExecTier, RunLimits, Val};

const SPIN: &str = r#"
MODULE m
CONTAINS
  SUBROUTINE spin(n, out)
    INTEGER :: n
    REAL(8), DIMENSION(1:1) :: out
    REAL(8) :: acc
    INTEGER :: i
    acc = 0.0D0
    DO i = 1, n
      acc = acc + SQRT(i * 1.0D0)
    END DO
    out(1) = acc
  END SUBROUTINE spin
END MODULE m
"#;

fn spin_engine(limits: RunLimits) -> Engine {
    let mut engine = Engine::compile(&[SPIN]).unwrap();
    engine.set_limits(limits);
    engine
}

fn run_spin(engine: &Engine, n: i64, tier: ExecTier) -> Result<f64, String> {
    let out = ArgVal::array_f(&[0.0], 1);
    engine
        .run_tiered("spin", &[ArgVal::I(n), out.clone()], ExecMode::Serial, tier)
        .map(|_| out.handle().unwrap().get_f(0))
        .map_err(|e| e.to_string())
}

#[test]
fn step_budget_trips_on_both_tiers() {
    let engine = spin_engine(RunLimits { max_steps: Some(1_000), ..RunLimits::default() });
    for tier in [ExecTier::Vm, ExecTier::TreeWalk] {
        let err = run_spin(&engine, 1_000_000, tier).expect_err("budget trips");
        assert!(err.contains("step budget of 1000 exhausted"), "{tier:?}: {err}");
    }
}

#[test]
fn generous_step_budget_does_not_trip() {
    let engine = spin_engine(RunLimits { max_steps: Some(10_000_000), ..RunLimits::default() });
    for tier in [ExecTier::Vm, ExecTier::TreeWalk] {
        let got = run_spin(&engine, 1_000, tier).expect("run completes");
        let want: f64 = (1..=1000).map(|i| (i as f64).sqrt()).sum();
        assert!((got - want).abs() < 1e-9, "{tier:?}: {got} vs {want}");
    }
}

#[test]
fn deadline_trips_on_both_tiers() {
    let engine =
        spin_engine(RunLimits { deadline: Some(Duration::ZERO), ..RunLimits::default() });
    for tier in [ExecTier::Vm, ExecTier::TreeWalk] {
        let err = run_spin(&engine, 10_000_000, tier).expect_err("deadline trips");
        assert!(err.contains("deadline exceeded"), "{tier:?}: {err}");
    }
}

#[test]
fn generous_deadline_does_not_trip() {
    let engine =
        spin_engine(RunLimits { deadline: Some(Duration::from_secs(120)), ..RunLimits::default() });
    for tier in [ExecTier::Vm, ExecTier::TreeWalk] {
        run_spin(&engine, 10_000, tier).expect("run completes");
    }
}

const PINGPONG: &str = r#"
MODULE m
CONTAINS
  INTEGER FUNCTION ping(n)
    INTEGER :: n
    IF (n <= 0) THEN
      ping = 0
    ELSE
      ping = pong(n - 1) + 1
    END IF
  END FUNCTION ping
  INTEGER FUNCTION pong(n)
    INTEGER :: n
    IF (n <= 0) THEN
      pong = 0
    ELSE
      pong = ping(n - 1) + 1
    END IF
  END FUNCTION pong
END MODULE m
"#;

#[test]
fn call_depth_limit_is_configurable() {
    let mut engine = Engine::compile(&[PINGPONG]).unwrap();
    engine.set_limits(RunLimits { max_call_depth: 16, ..RunLimits::default() });
    for tier in [ExecTier::Vm, ExecTier::TreeWalk] {
        // Ten nested frames fit under a depth cap of 16 ...
        let ok = engine
            .run_tiered("ping", &[ArgVal::I(10)], ExecMode::Serial, tier)
            .unwrap_or_else(|e| panic!("{tier:?}: {e}"));
        assert_eq!(ok.result, Some(Val::I(10)));
        // ... a hundred do not.
        let err = engine
            .run_tiered("ping", &[ArgVal::I(100)], ExecMode::Serial, tier)
            .expect_err("depth cap trips");
        assert!(err.to_string().contains("call depth exceeded"), "{tier:?}: {err}");
    }
}

#[test]
fn limit_defaults_are_off_except_call_depth() {
    let limits = RunLimits::default();
    assert_eq!(limits.max_steps, None);
    assert_eq!(limits.deadline, None);
    assert!(limits.max_call_depth > 0);
    let engine = Engine::compile(&[SPIN]).unwrap();
    assert_eq!(engine.limits().max_steps, None);
}

// ---------------------------------------------------------------------
// Fault context: runtime errors carry unit and line, on both tiers.
// ---------------------------------------------------------------------

#[test]
fn runtime_faults_carry_unit_and_line_context() {
    let src = r#"
MODULE m
CONTAINS
  INTEGER FUNCTION shatter(n)
    INTEGER :: n
    shatter = 10 / n
  END FUNCTION shatter
END MODULE m
"#;
    let engine = Engine::compile(&[src]).unwrap();
    for tier in [ExecTier::Vm, ExecTier::TreeWalk] {
        let err = engine
            .run_tiered("shatter", &[ArgVal::I(0)], ExecMode::Serial, tier)
            .expect_err("division by zero");
        let s = err.to_string();
        assert!(s.contains("in shatter at line "), "{tier:?} context missing: {s}");
    }
}

#[test]
fn limit_errors_carry_context_too() {
    let engine = spin_engine(RunLimits { max_steps: Some(100), ..RunLimits::default() });
    for tier in [ExecTier::Vm, ExecTier::TreeWalk] {
        let err = run_spin(&engine, 1_000_000, tier).expect_err("budget trips");
        assert!(err.contains("in spin at line "), "{tier:?} context missing: {err}");
    }
}
