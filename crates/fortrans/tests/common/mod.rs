//! Shared corpus + snapshot machinery for the service-layer test suite.
//!
//! The corpus mirrors the differential suite's program families (module
//! globals, COMMON blocks, derived types, every OMP construct the engine
//! supports, allocatables, error paths, PRINT) as `Case` values a test
//! can run through arbitrary [`fortrans::Session`]s. The snapshot type
//! captures the complete observable state of one run — result, printed
//! output, globals, argument arrays — with the same comparison policy
//! the differential suite uses: bit-identical for deterministic modes,
//! float-tolerant with line-multiset PRINT comparison for `Parallel`.

#![allow(dead_code)] // each test binary uses its own slice of this module

use fortrans::{ArgVal, ExecMode, ScalarTy, Session, Val};

/// One corpus program: sources, entry unit, and an argument builder
/// (arguments must be rebuilt per run — array handles are shared).
pub struct Case {
    pub label: &'static str,
    pub src: &'static str,
    pub unit: &'static str,
    pub mk_args: fn() -> Vec<ArgVal>,
}

/// Bit dump of one global after a run.
#[derive(Debug, Clone, PartialEq)]
pub enum GSnap {
    Scalar(Option<Val>),
    Array(ScalarTy, Vec<u64>),
    Unallocated,
}

/// Everything observable from one run.
#[derive(Debug, Clone, PartialEq)]
pub struct Snap {
    pub result: Result<Option<Val>, String>,
    pub printed: String,
    pub globals: Vec<(String, GSnap)>,
    pub arg_arrays: Vec<(ScalarTy, Vec<u64>)>,
}

fn dump_arr(h: &fortrans::ArrayObj) -> (ScalarTy, Vec<u64>) {
    (h.ty, (0..h.len()).map(|k| h.get_bits(k)).collect())
}

/// Runs `case` on `session` and captures the observable state. The cost
/// trace is deliberately not captured: the service suite compares runs
/// across schedules and thread interleavings where traces legitimately
/// differ.
pub fn snapshot(session: &Session, case: &Case, mode: ExecMode) -> Snap {
    let args = (case.mk_args)();
    let run = session.run(case.unit, &args, mode);
    let (result, printed) = match run {
        Ok(out) => (Ok(out.result), out.printed),
        Err(e) => (Err(e.to_string()), String::new()),
    };
    let mut globals = Vec::new();
    let mut names = session.global_names();
    names.sort();
    for name in names {
        let snap = if let Some(v) = session.global_scalar(&name) {
            GSnap::Scalar(Some(v))
        } else if let Some(h) = session.global_array(&name) {
            let (ty, bits) = dump_arr(&h);
            GSnap::Array(ty, bits)
        } else {
            GSnap::Unallocated
        };
        globals.push((name, snap));
    }
    let arg_arrays = args.iter().filter_map(|a| a.handle().map(|h| dump_arr(h))).collect();
    Snap { result, printed, globals, arg_arrays }
}

fn f64_close(a: f64, b: f64) -> bool {
    a.to_bits() == b.to_bits() || (a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs()))
}

fn bits_close(ty: ScalarTy, a: u64, b: u64) -> bool {
    match ty {
        ScalarTy::F => f64_close(f64::from_bits(a), f64::from_bits(b)),
        _ => a == b,
    }
}

fn sorted_lines(s: &str) -> Vec<&str> {
    let mut v: Vec<&str> = s.lines().collect();
    v.sort();
    v
}

/// Mode-appropriate comparison: bit-identical for Serial/Simulated,
/// tolerant for Parallel.
pub fn assert_equivalent(label: &str, mode: ExecMode, a: &Snap, b: &Snap) {
    if !matches!(mode, ExecMode::Parallel { .. }) {
        assert_eq!(a, b, "{label} under {mode:?}: snapshots diverge");
        return;
    }
    assert_tolerant(label, a, b);
}

/// Tolerant comparison: results and storage modulo float reduction-order
/// rounding, printed output as a line multiset.
pub fn assert_tolerant(label: &str, a: &Snap, b: &Snap) {
    match (&a.result, &b.result) {
        (Ok(Some(Val::F(x))), Ok(Some(Val::F(y)))) => {
            assert!(f64_close(*x, *y), "{label} result: {x} vs {y}");
        }
        (Ok(x), Ok(y)) => assert_eq!(x, y, "{label} result"),
        (Err(_), Err(_)) => {}
        (x, y) => panic!("{label}: one run errored: {x:?} vs {y:?}"),
    }
    assert_eq!(sorted_lines(&a.printed), sorted_lines(&b.printed), "{label} printed lines");
    assert_eq!(a.globals.len(), b.globals.len(), "{label} global count");
    for ((an, ag), (bn, bg)) in a.globals.iter().zip(&b.globals) {
        assert_eq!(an, bn, "{label} global name order");
        match (ag, bg) {
            (GSnap::Scalar(Some(Val::F(x))), GSnap::Scalar(Some(Val::F(y)))) => {
                assert!(f64_close(*x, *y), "{label} global {an}: {x} vs {y}");
            }
            (GSnap::Array(ta, va), GSnap::Array(tb, vb)) => {
                assert_eq!((ta, va.len()), (tb, vb.len()), "{label} global {an} shape");
                for (k, (&x, &y)) in va.iter().zip(vb).enumerate() {
                    assert!(bits_close(*ta, x, y), "{label} global {an}[{k}]");
                }
            }
            (x, y) => assert_eq!(x, y, "{label} global {an}"),
        }
    }
    assert_eq!(a.arg_arrays.len(), b.arg_arrays.len(), "{label} arg array count");
    for (ai, ((ta, va), (tb, vb))) in a.arg_arrays.iter().zip(&b.arg_arrays).enumerate() {
        assert_eq!((ta, va.len()), (tb, vb.len()), "{label} arg {ai} shape");
        for (k, (&x, &y)) in va.iter().zip(vb).enumerate() {
            assert!(bits_close(*ta, x, y), "{label} arg {ai}[{k}]");
        }
    }
}

/// The corpus. Program families match the differential suite; every
/// source is distinct (distinct artifacts in a shared cache).
pub fn corpus() -> Vec<Case> {
    vec![
        Case {
            label: "hyp",
            src: r#"
MODULE m
CONTAINS
  REAL(8) FUNCTION hyp(a, b)
    REAL(8) :: a, b
    hyp = SQRT(a**2 + b**2)
  END FUNCTION hyp
END MODULE m
"#,
            unit: "hyp",
            mk_args: || vec![ArgVal::F(3.0), ArgVal::F(4.0)],
        },
        Case {
            label: "value-result",
            src: r#"
MODULE m
CONTAINS
  SUBROUTINE bump(x)
    REAL(8) :: x
    x = x + 1.0D0
  END SUBROUTINE bump
  SUBROUTINE run2(out)
    REAL(8), DIMENSION(1:1) :: out
    REAL(8) :: t
    t = 10.0D0
    CALL bump(t)
    CALL bump(t)
    out(1) = t
  END SUBROUTINE run2
END MODULE m
"#,
            unit: "run2",
            mk_args: || vec![ArgVal::array_f(&[0.0], 1)],
        },
        Case {
            label: "counter",
            src: r#"
MODULE counter_mod
  INTEGER :: count
CONTAINS
  SUBROUTINE tick()
    count = count + 1
  END SUBROUTINE tick
END MODULE counter_mod
"#,
            unit: "tick",
            mk_args: Vec::new,
        },
        Case {
            label: "common",
            src: r#"
MODULE m
CONTAINS
  SUBROUTINE both()
    REAL(8) :: cc
    REAL(8), DIMENSION(1:4) :: dd
    COMMON /rad/ cc, dd
    INTEGER :: i
    cc = 42.0D0
    DO i = 1, 4
      dd(i) = i * 1.0D0
    END DO
  END SUBROUTINE both
END MODULE m
"#,
            unit: "both",
            mk_args: Vec::new,
        },
        Case {
            label: "derived",
            src: r#"
MODULE fuliou_mod
  TYPE fuout_t
    REAL(8), DIMENSION(1:4) :: fd
    REAL(8) :: total
  END TYPE fuout_t
  TYPE(fuout_t) :: fo
END MODULE fuliou_mod
MODULE kernels
  USE fuliou_mod
CONTAINS
  SUBROUTINE fill()
    INTEGER :: i
    DO i = 1, 4
      fo%fd(i) = i * 10.0D0
    END DO
    fo%total = fo%fd(1) + fo%fd(2) + fo%fd(3) + fo%fd(4)
  END SUBROUTINE fill
END MODULE kernels
"#,
            unit: "fill",
            mk_args: Vec::new,
        },
        Case {
            label: "sum-reduction",
            src: r#"
MODULE m
CONTAINS
  REAL(8) FUNCTION total(a, n)
    REAL(8), DIMENSION(1:1000) :: a
    INTEGER :: n
    REAL(8) :: acc
    INTEGER :: i
    acc = 0.0D0
    !$OMP PARALLEL DO DEFAULT(SHARED) REDUCTION(+:acc)
    DO i = 1, n
      acc = acc + a(i)
    END DO
    !$OMP END PARALLEL DO
    total = acc
  END FUNCTION total
END MODULE m
"#,
            unit: "total",
            mk_args: || {
                let data: Vec<f64> = (1..=1000).map(|i| i as f64).collect();
                vec![ArgVal::array_f(&data, 1), ArgVal::I(1000)]
            },
        },
        Case {
            label: "multi-reduction",
            src: r#"
MODULE m
CONTAINS
  SUBROUTINE stats(a, n, s, mx)
    REAL(8), DIMENSION(1:100) :: a
    INTEGER :: n
    REAL(8) :: s, mx
    INTEGER :: i
    s = 0.0D0
    mx = -1.0D30
    !$OMP PARALLEL DO REDUCTION(+:s) REDUCTION(MAX:mx)
    DO i = 1, n
      s = s + a(i)
      mx = MAX(mx, a(i))
    END DO
    !$OMP END PARALLEL DO
  END SUBROUTINE stats
  SUBROUTINE driver(a, n, out)
    REAL(8), DIMENSION(1:100) :: a
    INTEGER :: n
    REAL(8), DIMENSION(1:2) :: out
    REAL(8) :: s, mx
    CALL stats(a, n, s, mx)
    out(1) = s
    out(2) = mx
  END SUBROUTINE driver
END MODULE m
"#,
            unit: "driver",
            mk_args: || {
                let data: Vec<f64> = (0..100).map(|i| ((i * 37) % 100) as f64).collect();
                vec![ArgVal::array_f(&data, 1), ArgVal::I(100), ArgVal::array_f(&[0.0, 0.0], 1)]
            },
        },
        Case {
            label: "atomic",
            src: r#"
MODULE accum_mod
  REAL(8), DIMENSION(1:4) :: bins
CONTAINS
  SUBROUTINE scatter(n)
    INTEGER :: n
    INTEGER :: i, b
    !$OMP PARALLEL DO DEFAULT(SHARED) PRIVATE(b)
    DO i = 1, n
      b = MOD(i, 4) + 1
      !$OMP ATOMIC
      bins(b) = bins(b) + 1.0D0
    END DO
    !$OMP END PARALLEL DO
  END SUBROUTINE scatter
END MODULE accum_mod
"#,
            unit: "scatter",
            mk_args: || vec![ArgVal::I(4000)],
        },
        Case {
            label: "critical",
            src: r#"
MODULE m
  REAL(8) :: shared_total
CONTAINS
  SUBROUTINE work(n)
    INTEGER :: n
    INTEGER :: i
    REAL(8) :: t
    !$OMP PARALLEL DO DEFAULT(SHARED) PRIVATE(t)
    DO i = 1, n
      t = 1.0D0
      !$OMP CRITICAL (upd)
      shared_total = shared_total + t
      !$OMP END CRITICAL
    END DO
    !$OMP END PARALLEL DO
  END SUBROUTINE work
END MODULE m
"#,
            unit: "work",
            mk_args: || vec![ArgVal::I(2000)],
        },
        Case {
            label: "collapse",
            src: r#"
MODULE m
CONTAINS
  SUBROUTINE fill(a)
    REAL(8), DIMENSION(1:2, 1:60) :: a
    INTEGER :: i, j
    !$OMP PARALLEL DO DEFAULT(SHARED) COLLAPSE(2)
    DO i = 1, 2
      DO j = 1, 60
        a(i, j) = i * 100.0D0 + j
      END DO
    END DO
    !$OMP END PARALLEL DO
  END SUBROUTINE fill
END MODULE m
"#,
            unit: "fill",
            mk_args: || vec![ArgVal::array_f_dims(&vec![0.0; 120], vec![(1, 2), (1, 60)]).unwrap()],
        },
        Case {
            label: "alloc-save",
            src: r#"
MODULE m
CONTAINS
  REAL(8) FUNCTION edge_tmp()
    REAL(8), DIMENSION(:), ALLOCATABLE, SAVE :: tmp
    IF (.NOT. ALLOCATED(tmp)) ALLOCATE(tmp(1:8))
    tmp(1) = tmp(1) + 1.0D0
    edge_tmp = tmp(1)
  END FUNCTION edge_tmp
END MODULE m
"#,
            unit: "edge_tmp",
            mk_args: Vec::new,
        },
        Case {
            label: "do-while",
            src: r#"
MODULE m
CONTAINS
  INTEGER FUNCTION count_down(n)
    INTEGER :: n
    INTEGER :: c
    c = 0
    DO WHILE (n > 0)
      n = n - 1
      IF (MOD(n, 2) == 0) CYCLE
      c = c + 1
      IF (c >= 3) EXIT
    END DO
    count_down = c
  END FUNCTION count_down
END MODULE m
"#,
            unit: "count_down",
            mk_args: || vec![ArgVal::I(100)],
        },
        Case {
            label: "oob-error",
            src: r#"
MODULE m
CONTAINS
  SUBROUTINE oops(k)
    INTEGER :: k
    REAL(8), DIMENSION(1:4) :: a
    a(k) = 1.0D0
  END SUBROUTINE oops
END MODULE m
"#,
            unit: "oops",
            mk_args: || vec![ArgVal::I(9)],
        },
        Case {
            label: "div-zero-error",
            src: r#"
MODULE m
CONTAINS
  INTEGER FUNCTION bad(n)
    INTEGER :: n
    bad = 10 / n
  END FUNCTION bad
END MODULE m
"#,
            unit: "bad",
            mk_args: || vec![ArgVal::I(0)],
        },
        Case {
            label: "stop-error",
            src: r#"
MODULE m
CONTAINS
  SUBROUTINE halt(x)
    REAL(8) :: x
    IF (x > 0.0D0) STOP 'positive input'
    x = -x
  END SUBROUTINE halt
END MODULE m
"#,
            unit: "halt",
            mk_args: || vec![ArgVal::F(1.0)],
        },
        Case {
            label: "print",
            src: r#"
MODULE m
CONTAINS
  SUBROUTINE speak(x, k, q)
    REAL(8) :: x
    INTEGER :: k
    LOGICAL :: q
    PRINT *, 'value is', x, k, q
  END SUBROUTINE speak
END MODULE m
"#,
            unit: "speak",
            mk_args: || vec![ArgVal::F(2.5), ArgVal::I(-3), ArgVal::B(true)],
        },
        Case {
            label: "chaos",
            src: r#"
MODULE m
CONTAINS
  REAL(8) FUNCTION chaos(a, n)
    REAL(8), DIMENSION(1:64) :: a
    INTEGER :: n
    REAL(8) :: acc
    INTEGER :: i
    acc = 0.0D0
    !$OMP PARALLEL DO REDUCTION(+:acc)
    DO i = 1, n
      acc = acc + SIN(a(i)) * COS(a(i)) / (1.0D0 + a(i)**2)
    END DO
    !$OMP END PARALLEL DO
    chaos = acc
  END FUNCTION chaos
END MODULE m
"#,
            unit: "chaos",
            mk_args: || {
                let data: Vec<f64> = (0..64).map(|i| i as f64 * 0.173).collect();
                vec![ArgVal::array_f(&data, 1), ArgVal::I(64)]
            },
        },
        Case {
            label: "vec-memset",
            src: r#"
MODULE m
CONTAINS
  SUBROUTINE axpy(a, b, n)
    REAL(8), DIMENSION(1:256) :: a, b
    INTEGER :: n
    INTEGER :: i
    DO i = 1, n
      a(i) = a(i) + 2.0D0 * b(i)
    END DO
    DO i = 1, n
      b(i) = 0.0D0
    END DO
  END SUBROUTINE axpy
END MODULE m
"#,
            unit: "axpy",
            mk_args: || {
                vec![
                    ArgVal::array_f(&vec![1.0; 256], 1),
                    ArgVal::array_f(&vec![1.0; 256], 1),
                    ArgVal::I(256),
                ]
            },
        },
        Case {
            label: "nested-omp",
            src: r#"
MODULE m
  REAL(8) :: acc
CONTAINS
  SUBROUTINE inner(k)
    INTEGER :: k
    INTEGER :: j
    !$OMP PARALLEL DO DEFAULT(SHARED)
    DO j = 1, 4
      !$OMP ATOMIC
      acc = acc + 1.0D0
    END DO
    !$OMP END PARALLEL DO
  END SUBROUTINE inner
  SUBROUTINE outer(n)
    INTEGER :: n
    INTEGER :: i
    !$OMP PARALLEL DO DEFAULT(SHARED)
    DO i = 1, n
      CALL inner(i)
    END DO
    !$OMP END PARALLEL DO
  END SUBROUTINE outer
END MODULE m
"#,
            unit: "outer",
            mk_args: || vec![ArgVal::I(10)],
        },
        Case {
            label: "threadprivate",
            src: r#"
MODULE m
  REAL(8), DIMENSION(1:4) :: buf
  !$OMP THREADPRIVATE(buf)
  REAL(8) :: merged
CONTAINS
  SUBROUTINE work(n)
    INTEGER :: n
    INTEGER :: i
    !$OMP PARALLEL DO DEFAULT(SHARED)
    DO i = 1, n
      buf(1) = buf(1) + 1.0D0
      !$OMP ATOMIC
      merged = merged + 1.0D0
    END DO
    !$OMP END PARALLEL DO
  END SUBROUTINE work
END MODULE m
"#,
            unit: "work",
            mk_args: || vec![ArgVal::I(100)],
        },
        Case {
            label: "params",
            src: r#"
MODULE m
  INTEGER, PARAMETER :: nv = 6
  REAL(8), PARAMETER :: scale_f = 2.5D0
CONTAINS
  REAL(8) FUNCTION use_params()
    REAL(8), DIMENSION(1:nv) :: w
    INTEGER :: i
    DO i = 1, nv
      w(i) = i * scale_f
    END DO
    use_params = SUM(w)
  END FUNCTION use_params
END MODULE m
"#,
            unit: "use_params",
            mk_args: Vec::new,
        },
        Case {
            label: "private-array",
            src: r#"
MODULE m
CONTAINS
  SUBROUTINE hist(out, n)
    REAL(8), DIMENSION(1:4) :: out
    INTEGER :: n
    REAL(8), DIMENSION(1:4) :: scratch
    INTEGER :: i, k
    !$OMP PARALLEL DO DEFAULT(SHARED) PRIVATE(scratch, k)
    DO i = 1, n
      DO k = 1, 4
        scratch(k) = i * 1.0D0
      END DO
      !$OMP ATOMIC
      out(MOD(i, 4) + 1) = out(MOD(i, 4) + 1) + scratch(1) / scratch(2)
    END DO
    !$OMP END PARALLEL DO
  END SUBROUTINE hist
END MODULE m
"#,
            unit: "hist",
            mk_args: || vec![ArgVal::array_f(&[0.0; 4], 1), ArgVal::I(400)],
        },
        Case {
            label: "sched-chunk",
            src: r#"
MODULE m
CONTAINS
  SUBROUTINE mark(a, n)
    REAL(8), DIMENSION(1:97) :: a
    INTEGER :: n
    INTEGER :: i
    !$OMP PARALLEL DO SCHEDULE(STATIC, 5) NUM_THREADS(2)
    DO i = 1, n
      a(i) = a(i) + i * 1.0D0
    END DO
    !$OMP END PARALLEL DO
  END SUBROUTINE mark
END MODULE m
"#,
            unit: "mark",
            mk_args: || vec![ArgVal::array_f(&vec![0.0; 97], 1), ArgVal::I(97)],
        },
        Case {
            label: "firstprivate",
            src: r#"
MODULE m
CONTAINS
  SUBROUTINE scaleit(a, n)
    REAL(8), DIMENSION(1:40) :: a
    INTEGER :: n
    REAL(8) :: scale
    INTEGER :: i
    scale = 2.5D0
    !$OMP PARALLEL DO FIRSTPRIVATE(scale)
    DO i = 1, n
      a(i) = a(i) * scale
    END DO
    !$OMP END PARALLEL DO
  END SUBROUTINE scaleit
END MODULE m
"#,
            unit: "scaleit",
            mk_args: || vec![ArgVal::array_f(&vec![2.0; 40], 1), ArgVal::I(40)],
        },
        Case {
            label: "prod-min",
            src: r#"
MODULE m
CONTAINS
  SUBROUTINE stats(a, n, res)
    REAL(8), DIMENSION(1:12) :: a
    INTEGER :: n
    REAL(8), DIMENSION(1:2) :: res
    REAL(8) :: p, mn
    INTEGER :: i
    p = 1.0D0
    mn = 1.0D30
    !$OMP PARALLEL DO REDUCTION(*:p) REDUCTION(MIN:mn)
    DO i = 1, n
      p = p * a(i)
      mn = MIN(mn, a(i))
    END DO
    !$OMP END PARALLEL DO
    res(1) = p
    res(2) = mn
  END SUBROUTINE stats
END MODULE m
"#,
            unit: "stats",
            mk_args: || {
                let data: Vec<f64> = (1..=12).map(|i| 1.0 + (i % 3) as f64 * 0.5).collect();
                vec![ArgVal::array_f(&data, 1), ArgVal::I(12), ArgVal::array_f(&[0.0, 0.0], 1)]
            },
        },
        Case {
            label: "int-reduction",
            src: r#"
MODULE m
CONTAINS
  INTEGER FUNCTION countup(n)
    INTEGER :: n
    INTEGER :: i, acc
    acc = 0
    !$OMP PARALLEL DO REDUCTION(+:acc)
    DO i = 1, n
      acc = acc + i
    END DO
    !$OMP END PARALLEL DO
    countup = acc
  END FUNCTION countup
END MODULE m
"#,
            unit: "countup",
            mk_args: || vec![ArgVal::I(100)],
        },
        Case {
            label: "global-loop-var",
            src: r#"
MODULE m
  INTEGER :: gi
  REAL(8) :: total
CONTAINS
  SUBROUTINE sweep(n)
    INTEGER :: n
    total = 0.0D0
    DO gi = 1, n
      total = total + gi * 1.0D0
    END DO
  END SUBROUTINE sweep
END MODULE m
"#,
            unit: "sweep",
            mk_args: || vec![ArgVal::I(17)],
        },
        Case {
            label: "exit-critical",
            src: r#"
MODULE m
  REAL(8) :: hits
CONTAINS
  SUBROUTINE scan(n)
    INTEGER :: n
    INTEGER :: i
    DO i = 1, n
      !$OMP CRITICAL (tally)
      hits = hits + 1.0D0
      !$OMP END CRITICAL
      IF (MOD(i, 3) == 0) CYCLE
      IF (i > 7) EXIT
    END DO
  END SUBROUTINE scan
END MODULE m
"#,
            unit: "scan",
            mk_args: || vec![ArgVal::I(50)],
        },
        Case {
            label: "promotion",
            src: r#"
MODULE m
CONTAINS
  REAL(8) FUNCTION mixer(k, x)
    INTEGER :: k
    REAL(8) :: x
    INTEGER :: j
    REAL(8) :: r
    j = k / 3 + MOD(k, 5)
    r = j + x * 2
    r = r + k ** 2 + x ** k + x ** 1.5D0
    r = r - j / 2
    mixer = r + NINT(x) + INT(x) + ABS(1 - k) + SIGN(2.0D0, -x)
  END FUNCTION mixer
END MODULE m
"#,
            unit: "mixer",
            mk_args: || vec![ArgVal::I(7), ArgVal::F(2.25)],
        },
        Case {
            label: "nested-calls",
            src: r#"
MODULE m
CONTAINS
  REAL(8) FUNCTION sq(x)
    REAL(8) :: x
    sq = x * x
  END FUNCTION sq
  REAL(8) FUNCTION quad(x)
    REAL(8) :: x
    quad = sq(sq(x)) + sq(x)
  END FUNCTION quad
END MODULE m
"#,
            unit: "quad",
            mk_args: || vec![ArgVal::F(2.0)],
        },
        Case {
            label: "par-neg-step",
            src: r#"
MODULE m
CONTAINS
  SUBROUTINE rev(a, n)
    REAL(8), DIMENSION(1:30) :: a
    INTEGER :: n
    INTEGER :: i
    !$OMP PARALLEL DO
    DO i = n, 1, -1
      a(i) = i * 10.0D0
    END DO
    !$OMP END PARALLEL DO
  END SUBROUTINE rev
END MODULE m
"#,
            unit: "rev",
            mk_args: || vec![ArgVal::array_f(&vec![0.0; 30], 1), ArgVal::I(30)],
        },
    ]
}
