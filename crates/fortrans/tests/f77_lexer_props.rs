//! Property tests for the fixed-form lexer against the free-form lexer.
//!
//! The bridge is [`fortrans::to_fixed_form`]: it prints a free-form
//! program's token stream onto fixed-form cards (labels blank, text in
//! columns 7-72, `C$OMP` sentinels for directives). Two invariants:
//!
//! 1. **Round trip**: lexing the printed cards with the fixed-form,
//!    blank-insensitive lexer yields exactly the free-form token stream
//!    — same tokens, same statement count, same OMP flags.
//! 2. **Wrap invariance**: printing with any wrap width (1..=66 columns
//!    per card, continuation cards for the rest) must lex to the same
//!    token stream — continuation splitting, even mid-token, is
//!    invisible to the fixed-form lexer.

use fortrans::gen::Rng;
use fortrans::lex::{lex, Tok};
use fortrans::{lex_fixed, to_fixed_form, to_fixed_form_wrapped};

/// Free-form sources chosen for lexical variety: keywords that collide
/// with identifier prefixes, string literals with blanks, reals in every
/// notation, OMP directives, dense operator runs.
const CORPUS: &[&str] = &[
    "program p\n  integer :: i, total\n  total = 0\n  do i = 1, 10\n    total = total + i\n  end do\n  print *, total\nend program p\n",
    "subroutine s(a, n)\n  real(8) :: a(n)\n  integer :: n, i\n  !$omp parallel do\n  do i = 1, n\n    a(i) = a(i) * 2.5d0 + 1.0e-3\n  end do\nend subroutine s\n",
    "function f(x) result(y)\n  real(8) :: x, y\n  y = x ** 2 - 3.25 / (x + 1.0)\n  if (y <= 0.0 .and. x /= 4.0) y = -y\nend function f\n",
    "program q\n  character(10) :: msg\n  msg = 'hi  there'\n  print *, msg, 'a''b'\nend program q\n",
    "program dotest\n  integer :: dook, ifx, endq\n  dook = 1\n  ifx = dook + 2\n  endq = ifx * dook\n  print *, endq\nend program dotest\n",
    "program ops\n  integer :: k\n  logical :: t\n  k = 7\n  t = k >= 3 .or. .not. (k == 5)\n  do while (k > 0)\n    k = k - 2\n  end do\nend program ops\n",
];

fn toks_of_fixed(fixed: &str) -> Vec<(Vec<Tok>, bool)> {
    let (stmts, diags) = lex_fixed(fixed);
    assert!(
        !diags.has_errors(),
        "printed fixed form must lex clean, got:\n{}",
        diags.render()
    );
    stmts.into_iter().map(|s| (s.toks, s.omp)).collect()
}

#[test]
fn free_to_fixed_roundtrip_is_token_identical() {
    for (i, src) in CORPUS.iter().enumerate() {
        let free: Vec<(Vec<Tok>, bool)> = lex(src)
            .unwrap_or_else(|e| panic!("corpus[{i}] must lex free-form: {e}"))
            .into_iter()
            .map(|l| (l.toks, l.omp))
            .collect();
        let fixed = to_fixed_form(src).unwrap_or_else(|e| panic!("corpus[{i}] prints: {e}"));
        let back = toks_of_fixed(&fixed);
        assert_eq!(
            free, back,
            "corpus[{i}]: token stream changed through the fixed-form printer:\n{fixed}"
        );
    }
}

#[test]
fn wrap_width_never_changes_the_token_stream() {
    let mut r = Rng::new(0x77AB1E);
    for (i, src) in CORPUS.iter().enumerate() {
        let baseline = toks_of_fixed(
            &to_fixed_form(src).unwrap_or_else(|e| panic!("corpus[{i}] prints: {e}")),
        );
        // Every extreme plus a random sample of interior widths.
        let mut widths = vec![1, 2, 3, 66];
        for _ in 0..12 {
            widths.push(1 + r.below(66) as usize);
        }
        for w in widths {
            let fixed = to_fixed_form_wrapped(src, w)
                .unwrap_or_else(|e| panic!("corpus[{i}] width {w}: {e}"));
            let got = toks_of_fixed(&fixed);
            assert_eq!(
                baseline, got,
                "corpus[{i}]: wrap width {w} altered the token stream:\n{fixed}"
            );
        }
    }
}

/// Generated fixed-form programs (the differential corpus) must also be
/// stable under re-lexing: lexing twice gives identical statements.
#[test]
fn generated_fixed_sources_lex_deterministically() {
    for seed in 0..20u64 {
        for src in fortrans::gen::generate(seed) {
            let (a, d1) = lex_fixed(&src);
            let (b, d2) = lex_fixed(&src);
            assert!(!d1.has_errors(), "seed {seed}: {}", d1.render());
            assert_eq!(d1, d2);
            let ta: Vec<_> = a.iter().map(|s| (&s.label, &s.toks, s.omp)).collect();
            let tb: Vec<_> = b.iter().map(|s| (&s.label, &s.toks, s.omp)).collect();
            assert_eq!(ta, tb, "seed {seed}: non-deterministic lex");
        }
    }
}
