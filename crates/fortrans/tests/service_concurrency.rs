//! Concurrent differential stress: the multi-tenant service contract.
//!
//! One [`fortrans::EngineService`] compiles the whole corpus once; then
//! 8 OS threads, each opening 4 sessions in turn, run every program in
//! every mode against that shared artifact set. The locks:
//!
//! * **Determinism under sharing** — every Serial and Simulated run in
//!   every session is bit-identical (result, globals, argument arrays,
//!   PRINT output) to a single-session baseline; Parallel runs agree
//!   modulo float reduction order. Sharing compiled artifacts and the
//!   pool set must be observationally invisible.
//! * **Artifact identity** — every session holds literally the same
//!   `Arc<CompiledProgram>` the baseline compiled (pointer equality),
//!   and the cache records one miss per distinct program, everything
//!   else hits.
//! * **Session isolation** — per-session counters (`fallback_count`)
//!   and per-session `RunLimits` never bleed: a session forced to trap
//!   or starved of steps observes its own failure while concurrent
//!   sibling sessions on the same artifact stay clean.

mod common;

use std::sync::Arc;

use common::{assert_equivalent, corpus, snapshot, Snap};
use fortrans::{ArgVal, CompiledProgram, EngineService, ExecMode, RunError, RunLimits};

const OS_THREADS: usize = 8;
const SESSIONS_PER_THREAD: usize = 4;

const MODES: [ExecMode; 3] = [
    ExecMode::Serial,
    ExecMode::Parallel { threads: 4 },
    ExecMode::Simulated { threads: 4 },
];

/// Runs each thread body on a dedicated OS thread with enough stack for
/// the tree-walk oracle and joins, propagating panics.
fn fan_out(bodies: Vec<Box<dyn FnOnce() + Send>>) {
    let handles: Vec<_> = bodies
        .into_iter()
        .enumerate()
        .map(|(i, body)| {
            std::thread::Builder::new()
                .name(format!("stress-{i}"))
                .stack_size(16 << 20)
                .spawn(body)
                .expect("spawn stress thread")
        })
        .collect();
    for h in handles {
        h.join().expect("stress thread panicked");
    }
}

#[test]
fn concurrent_sessions_are_bit_identical_to_a_single_session_baseline() {
    let service = Arc::new(EngineService::new(64));
    let cases = corpus();

    // Baseline: one fresh session per (case, mode), single-threaded.
    // Globals persist within a session, so every snapshot gets a
    // pristine session — exactly what the concurrent side does too.
    let mut baselines: Vec<(usize, ExecMode, Snap, Arc<CompiledProgram>)> = Vec::new();
    for (ci, case) in cases.iter().enumerate() {
        for mode in MODES {
            let session = service.session(&[case.src]).expect(case.label);
            let snap = snapshot(&session, case, mode);
            baselines.push((ci, mode, snap, Arc::clone(session.artifact())));
        }
    }
    let baselines = Arc::new(baselines);
    let misses_after_baseline = service.cache().misses();
    assert_eq!(
        misses_after_baseline,
        cases.len() as u64,
        "one compile per distinct program, all later opens hit"
    );

    let cases = Arc::new(cases);
    let bodies: Vec<Box<dyn FnOnce() + Send>> = (0..OS_THREADS)
        .map(|t| {
            let (service, cases, baselines) =
                (Arc::clone(&service), Arc::clone(&cases), Arc::clone(&baselines));
            Box::new(move || {
                for s in 0..SESSIONS_PER_THREAD {
                    for (ci, mode, base, base_artifact) in baselines.iter() {
                        let case = &cases[*ci];
                        let session = service.session(&[case.src]).expect(case.label);
                        assert!(
                            Arc::ptr_eq(session.artifact(), base_artifact),
                            "{}: session did not share the cached artifact",
                            case.label
                        );
                        let snap = snapshot(&session, case, *mode);
                        assert_equivalent(
                            &format!("{} (thread {t}, session {s})", case.label),
                            *mode,
                            &snap,
                            base,
                        );
                        assert_eq!(
                            session.fallback_count(),
                            0,
                            "{}: clean run must not tick the fallback counter",
                            case.label
                        );
                    }
                }
            }) as Box<dyn FnOnce() + Send>
        })
        .collect();
    fan_out(bodies);

    // Cache accounting: no concurrent open compiled anything new.
    assert_eq!(service.cache().misses(), misses_after_baseline, "stress phase was all hits");
    let expected_hits =
        (OS_THREADS * SESSIONS_PER_THREAD * baselines.len()) as u64 + baselines.len() as u64
            - misses_after_baseline;
    assert_eq!(service.cache().hits(), expected_hits);
    assert!(service.cache().hit_rate() > 0.95, "hit rate: {}", service.cache().hit_rate());
    // The shared pools stayed healthy (error-path programs return clean
    // RunErrors; nothing panicked into a pool).
    assert_eq!(service.pools().contained_panics(), 0);
}

const SCALE_SRC: &str = r#"
MODULE demo
CONTAINS
  SUBROUTINE scale(a, n, f)
    REAL(8), DIMENSION(1:64) :: a
    INTEGER :: n
    REAL(8) :: f
    INTEGER :: i
    DO i = 1, n
      a(i) = a(i) * f
    END DO
  END SUBROUTINE scale
END MODULE demo
"#;

fn scale_args() -> Vec<ArgVal> {
    vec![ArgVal::array_f(&vec![1.0; 64], 1), ArgVal::I(64), ArgVal::F(2.0)]
}

/// Sessions sharing one artifact: traps and limits are strictly
/// per-session. Half the concurrent sessions are forced to trap (VM
/// falls back to the oracle), a quarter run under a starvation-level
/// step budget (clean `Limit` error), and the rest must observe zero
/// fallbacks and full results — all interleaved on the same artifact
/// and pool set.
#[test]
fn fallbacks_and_limits_never_bleed_between_sessions() {
    let service = Arc::new(EngineService::new(4));
    let artifact = service.compile(&[SCALE_SRC]).expect("compiles");

    let bodies: Vec<Box<dyn FnOnce() + Send>> = (0..OS_THREADS)
        .map(|t| {
            let service = Arc::clone(&service);
            let artifact = Arc::clone(&artifact);
            Box::new(move || {
                for s in 0..SESSIONS_PER_THREAD {
                    let mut session = service.session_for(&artifact);
                    match (t + s) % 4 {
                        0 => {
                            // Forced trap: oracle answers, one fallback.
                            session.debug_force_vm_trap();
                            let out = session
                                .run("scale", &scale_args(), ExecMode::Serial)
                                .expect("trapped run recovers via the oracle");
                            assert!(out.fallback.is_some(), "trap diagnostic reported");
                            assert_eq!(session.fallback_count(), 1);
                        }
                        1 => {
                            // Starved session: clean Limit error, no
                            // fallback (a budget stop is not a trap).
                            session.set_limits(RunLimits {
                                max_steps: Some(8),
                                ..RunLimits::default()
                            });
                            let err = session
                                .run("scale", &scale_args(), ExecMode::Serial)
                                .expect_err("8 steps cannot finish 64 iterations");
                            assert!(
                                matches!(err.root(), RunError::Limit { .. }),
                                "starved session fails with Limit, got: {err}"
                            );
                            assert_eq!(session.fallback_count(), 0);
                        }
                        _ => {
                            // Clean sibling: full result, zero fallbacks,
                            // default limits — untouched by the others.
                            let out = session
                                .run("scale", &scale_args(), ExecMode::Parallel { threads: 4 })
                                .expect("clean session succeeds");
                            assert!(out.fallback.is_none(), "no cross-session fallback bleed");
                            assert_eq!(session.fallback_count(), 0);
                            assert_eq!(session.limits().max_steps, RunLimits::default().max_steps);
                        }
                    }
                }
            }) as Box<dyn FnOnce() + Send>
        })
        .collect();
    fan_out(bodies);

    // The forced traps panicked *inside the engine boundary*, not into
    // the shared pools: Serial-mode traps never touch a pool.
    assert_eq!(service.pools().contained_panics(), 0);
    // And the pools still work: a fresh parallel run succeeds.
    let session = service.session_for(&artifact);
    let out = session.run("scale", &scale_args(), ExecMode::Parallel { threads: 4 }).unwrap();
    assert!(out.fallback.is_none());
}

/// Debug bytecode injection is session-local: a corrupted session falls
/// back to the oracle while concurrent sessions on the *same artifact*
/// keep executing the pristine shared bytecode on the VM tier.
#[test]
fn injected_bytecode_corrupts_only_the_injecting_session() {
    use fortrans::bytecode::{compile_program, BInstr};

    let service = Arc::new(EngineService::new(4));
    let artifact = service.compile(&[SCALE_SRC]).expect("compiles");
    let mut bad = compile_program(artifact.program(), false);
    let u = (0..bad.len())
        .find(|&u| artifact.program().units[u].name == "scale")
        .expect("entry unit present");
    bad[u].code[0] = BInstr::AddI; // operand-stack underflow at pc 0

    let bodies: Vec<Box<dyn FnOnce() + Send>> = (0..OS_THREADS)
        .map(|t| {
            let service = Arc::clone(&service);
            let artifact = Arc::clone(&artifact);
            let bad = bad.clone();
            Box::new(move || {
                for _ in 0..SESSIONS_PER_THREAD {
                    let session = service.session_for(&artifact);
                    if t % 2 == 0 {
                        session.debug_inject_bytecode(false, bad.clone());
                        let out = session
                            .run("scale", &scale_args(), ExecMode::Serial)
                            .expect("corrupt session recovers via the oracle");
                        assert!(out.fallback.is_some(), "corruption trapped and diagnosed");
                        assert_eq!(session.fallback_count(), 1);
                    } else {
                        let out = session
                            .run("scale", &scale_args(), ExecMode::Serial)
                            .expect("pristine session runs the shared bytecode");
                        assert!(out.fallback.is_none(), "shared artifact stayed pristine");
                        assert_eq!(session.fallback_count(), 0);
                    }
                }
            }) as Box<dyn FnOnce() + Send>
        })
        .collect();
    fan_out(bodies);
}
