//! Property tests for the [`Profile`] renderers.
//!
//! * JSON round-trips losslessly: `from_json(to_json(p)) == p` for
//!   arbitrary profiles (integer-only payload, escaped strings).
//! * Folded stacks round-trip to the span skeleton:
//!   `parse_folded(to_folded(p)) == skeleton(p.spans)` for span trees
//!   satisfying the format's representable subset — sibling frame labels
//!   distinct (folded merges equal paths) and inclusive wall time at
//!   least the children's sum (self time is what the format stores).
//!
//! Generated trees satisfy both by construction, which mirrors what the
//! collector produces (it merges sibling spans by identity and charges
//! children's elapsed time to the parent too).

use fortrans::{FallbackInfo, Profile, RegionReport, SpanKind, SpanNode};
use proptest::prelude::*;
use proptest::test_runner::TestRng;

/// Draws a span tree of the given depth. Sibling labels are made
/// distinct by construction: child `i` gets `line == base + i` (loops)
/// or a name suffixed with `i` (units).
fn draw_tree(rng: &mut TestRng, depth: u32) -> SpanNode {
    let kind = match rng.below(3) {
        0 => SpanKind::Unit,
        1 => SpanKind::Loop,
        _ => SpanKind::OmpLoop,
    };
    let n_children = if depth == 0 { 0 } else { rng.below(4) };
    let base_line = 1 + rng.below(500) as u32;
    let children: Vec<SpanNode> = (0..n_children)
        .map(|i| {
            let mut c = draw_tree(rng, depth - 1);
            match c.kind {
                SpanKind::Unit => c.name = format!("{}_{i}", c.name),
                SpanKind::Loop | SpanKind::OmpLoop => c.line = base_line + i as u32,
            }
            c
        })
        .collect();
    let child_sum: u64 = children.iter().map(|c| c.wall_ns).sum();
    let name_strat = "[a-z][a-z0-9_]{0,8}";
    SpanNode {
        kind,
        name: if kind == SpanKind::Unit {
            Strategy::new_value(&name_strat, rng)
        } else {
            String::new()
        },
        line: if kind == SpanKind::Unit { 0 } else { base_line },
        entries: rng.below(1000) as u64,
        wall_ns: child_sum + rng.below(10_000) as u64,
        children,
    }
}

fn draw_profile(rng: &mut TestRng) -> Profile {
    let n_roots = 1 + rng.below(3);
    let spans: Vec<SpanNode> = (0..n_roots)
        .map(|i| {
            let mut s = draw_tree(rng, 3);
            match s.kind {
                SpanKind::Unit => s.name = format!("{}_{i}", s.name),
                SpanKind::Loop | SpanKind::OmpLoop => s.line = 1000 + i as u32,
            }
            s
        })
        .collect();
    let regions: Vec<RegionReport> = (0..rng.below(3))
        .map(|_| {
            let threads = 1 + rng.below(8) as u64;
            RegionReport {
                threads,
                wall_ns: rng.below(1_000_000) as u64,
                busy_ns: (0..threads).map(|_| rng.below(1_000_000) as u64).collect(),
                line: rng.below(2000) as u64,
                sched: ["static", "static,4", "dynamic,1", "guided,2"][rng.below(4)].into(),
            }
        })
        .collect();
    Profile {
        entry: Strategy::new_value(&"[a-z][a-z0-9_]{0,10}", rng),
        tier: if rng.below(2) == 0 { "vm".into() } else { "tree-walk".into() },
        mode: ["serial", "parallel(4)", "simulated(2)"][rng.below(3)].into(),
        wall_ns: rng.next_u64() >> 20,
        steps: rng.next_u64() >> 20,
        max_steps: if rng.below(2) == 0 { Some(rng.next_u64() >> 20) } else { None },
        spans,
        regions,
        fallback: if rng.below(3) == 0 {
            Some(FallbackInfo {
                unit: Strategy::new_value(&"[a-z][a-z0-9_]{0,10}", rng),
                // Exercise JSON escaping: quotes, backslash, control chars.
                what: format!("trap \"{}\"\\\n\t\u{1}", rng.below(100)),
            })
        } else {
            None
        },
        fallback_count: rng.below(10) as u64,
        native_entries: rng.below(100) as u64,
        native_deopts: rng.below(10) as u64,
    }
}

#[test]
fn json_round_trip_is_lossless() {
    let mut rng = TestRng::for_test("json_round_trip_is_lossless");
    for case in 0..256 {
        let p = draw_profile(&mut rng);
        let json = p.to_json();
        let back = Profile::from_json(&json)
            .unwrap_or_else(|e| panic!("case {case}: JSON does not parse back: {e}\n{json}"));
        assert_eq!(p, back, "case {case}: JSON round-trip changed the profile");
    }
}

#[test]
fn folded_round_trip_is_the_skeleton() {
    let mut rng = TestRng::for_test("folded_round_trip_is_the_skeleton");
    for case in 0..256 {
        let p = draw_profile(&mut rng);
        let folded = p.to_folded();
        let parsed = Profile::parse_folded(&folded)
            .unwrap_or_else(|e| panic!("case {case}: folded does not parse back: {e}\n{folded}"));
        let skel: Vec<SpanNode> = p.spans.iter().map(|s| s.skeleton()).collect();
        assert_eq!(parsed, skel, "case {case}: folded round-trip changed the span tree");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Headroom never underflows and is consistent with the budget.
    #[test]
    fn headroom_is_saturating(steps in 0u64..1_000_000, budget in 0u64..1_000_000) {
        let p = Profile {
            entry: "e".into(),
            tier: "vm".into(),
            mode: "serial".into(),
            wall_ns: 0,
            steps,
            max_steps: Some(budget),
            spans: vec![],
            regions: vec![],
            fallback: None,
            fallback_count: 0,
            native_entries: 0,
            native_deopts: 0,
        };
        let h = p.steps_headroom().unwrap();
        prop_assert_eq!(h, budget.saturating_sub(steps));
        prop_assert!(h <= budget);
    }
}
