//! Diagnostics-quality tests: the engine must reject malformed programs
//! with precise, located errors — a FORTRAN front-end that silently
//! mis-executes legacy code is worse than none.

use fortrans::{ArgVal, CompileError, Engine, ExecMode};

fn compile_err(src: &str) -> CompileError {
    match Engine::compile(&[src]) {
        Err(e) => e,
        Ok(_) => panic!("should not compile:\n{src}"),
    }
}

fn wrap(body: &str) -> String {
    format!(
        "MODULE m\nCONTAINS\n  SUBROUTINE s()\n    REAL(8) :: x\n    REAL(8), DIMENSION(1:4) :: a\n{body}\n  END SUBROUTINE s\nEND MODULE m\n"
    )
}

#[test]
fn unknown_variable_reports_name_and_line() {
    let err = compile_err(&wrap("    x = ghost + 1.0D0"));
    let msg = err.to_string();
    assert!(msg.contains("ghost"), "{msg}");
    assert!(msg.contains("line 6"), "{msg}");
}

#[test]
fn rank_mismatch_reported() {
    let err = compile_err(&wrap("    x = a(1, 2)"));
    assert!(err.to_string().contains("rank"), "{err}");
}

#[test]
fn scalar_subscripted_reported() {
    let err = compile_err(&wrap("    x = x(3)"));
    assert!(err.to_string().contains("subscripted"), "{err}");
}

#[test]
fn exit_outside_loop_rejected() {
    let err = compile_err(&wrap("    EXIT"));
    assert!(err.to_string().contains("EXIT outside a loop"), "{err}");
}

#[test]
fn function_called_as_subroutine_rejected() {
    let src = r#"
MODULE m
CONTAINS
  REAL(8) FUNCTION f()
    f = 1.0D0
  END FUNCTION f
  SUBROUTINE s()
    CALL f()
  END SUBROUTINE s
END MODULE m
"#;
    let err = compile_err(src);
    assert!(err.to_string().contains("FUNCTION, not a SUBROUTINE"), "{err}");
}

#[test]
fn subroutine_used_as_function_rejected() {
    let src = r#"
MODULE m
CONTAINS
  SUBROUTINE s2()
    RETURN
  END SUBROUTINE s2
  SUBROUTINE s()
    REAL(8) :: x
    x = s2()
  END SUBROUTINE s
END MODULE m
"#;
    let err = compile_err(src);
    assert!(err.to_string().contains("used as a function"), "{err}");
}

#[test]
fn wrong_arg_count_rejected() {
    let src = r#"
MODULE m
CONTAINS
  SUBROUTINE takes2(a, b)
    REAL(8) :: a, b
    a = b
  END SUBROUTINE takes2
  SUBROUTINE s()
    CALL takes2(1.0D0)
  END SUBROUTINE s
END MODULE m
"#;
    let err = compile_err(src);
    assert!(err.to_string().contains("takes 2 args, got 1"), "{err}");
}

#[test]
fn common_block_shape_mismatch_rejected() {
    let src = r#"
MODULE m
CONTAINS
  SUBROUTINE a1()
    REAL(8) :: u
    COMMON /blk/ u
    u = 1.0D0
  END SUBROUTINE a1
  SUBROUTINE a2()
    REAL(8), DIMENSION(1:4) :: u
    COMMON /blk/ u
    u(1) = 1.0D0
  END SUBROUTINE a2
END MODULE m
"#;
    let err = compile_err(src);
    assert!(err.to_string().contains("mismatch"), "{err}");
}

#[test]
fn use_of_unknown_module_rejected() {
    let src = "MODULE m\n  USE nonexistent_mod\nCONTAINS\n  SUBROUTINE s()\n    RETURN\n  END SUBROUTINE s\nEND MODULE m\n";
    let err = compile_err(src);
    assert!(err.to_string().contains("nonexistent_mod"), "{err}");
}

#[test]
fn duplicate_subprogram_rejected() {
    let src = r#"
MODULE m
CONTAINS
  SUBROUTINE twin()
    RETURN
  END SUBROUTINE twin
  SUBROUTINE twin()
    RETURN
  END SUBROUTINE twin
END MODULE m
"#;
    let err = compile_err(src);
    assert!(err.to_string().contains("duplicate"), "{err}");
}

#[test]
fn dynamic_dims_require_allocatable() {
    let src = r#"
MODULE m
CONTAINS
  SUBROUTINE s(n)
    INTEGER :: n
    REAL(8), DIMENSION(1:n) :: w
    w(1) = 0.0D0
  END SUBROUTINE s
END MODULE m
"#;
    let err = compile_err(src);
    assert!(err.to_string().contains("ALLOCATABLE"), "{err}");
}

#[test]
fn reduction_on_array_rejected() {
    let src = r#"
MODULE m
CONTAINS
  SUBROUTINE s(a)
    REAL(8), DIMENSION(1:4) :: a
    INTEGER :: i
    !$OMP PARALLEL DO REDUCTION(+:a)
    DO i = 1, 4
      a(i) = a(i) + 1.0D0
    END DO
    !$OMP END PARALLEL DO
  END SUBROUTINE s
END MODULE m
"#;
    let err = compile_err(src);
    assert!(err.to_string().contains("must be scalar"), "{err}");
}

#[test]
fn atomic_requires_update_form() {
    let src = r#"
MODULE m
  REAL(8) :: g
CONTAINS
  SUBROUTINE s()
    !$OMP ATOMIC
    g = 1.0D0
  END SUBROUTINE s
END MODULE m
"#;
    let err = compile_err(src);
    assert!(err.to_string().contains("x = x op expr"), "{err}");
}

#[test]
fn collapse_requires_perfect_nest() {
    let src = r#"
MODULE m
CONTAINS
  SUBROUTINE s(a)
    REAL(8), DIMENSION(1:4, 1:4) :: a
    INTEGER :: i, j
    !$OMP PARALLEL DO COLLAPSE(2)
    DO i = 1, 4
      a(i, 1) = 0.0D0
      DO j = 1, 4
        a(i, j) = 1.0D0
      END DO
    END DO
    !$OMP END PARALLEL DO
  END SUBROUTINE s
END MODULE m
"#;
    let err = compile_err(src);
    assert!(err.to_string().contains("perfectly nested"), "{err}");
}

#[test]
fn runtime_unallocated_use_reported() {
    let src = r#"
MODULE m
CONTAINS
  SUBROUTINE s()
    REAL(8), DIMENSION(:), ALLOCATABLE :: w
    w(1) = 1.0D0
  END SUBROUTINE s
END MODULE m
"#;
    let e = Engine::compile(&[src]).unwrap();
    let err = e.run("s", &[], ExecMode::Serial).unwrap_err();
    assert!(err.to_string().contains("before ALLOCATE"), "{err}");
}

#[test]
fn runtime_double_allocate_reported() {
    let src = r#"
MODULE m
CONTAINS
  SUBROUTINE s()
    REAL(8), DIMENSION(:), ALLOCATABLE :: w
    ALLOCATE(w(1:4))
    ALLOCATE(w(1:4))
  END SUBROUTINE s
END MODULE m
"#;
    let e = Engine::compile(&[src]).unwrap();
    let err = e.run("s", &[], ExecMode::Serial).unwrap_err();
    assert!(err.to_string().contains("already allocated"), "{err}");
}

#[test]
fn entry_arg_count_checked() {
    let src = r#"
MODULE m
CONTAINS
  SUBROUTINE s(x)
    REAL(8) :: x
    x = x + 1.0D0
  END SUBROUTINE s
END MODULE m
"#;
    let e = Engine::compile(&[src]).unwrap();
    let err = e.run("s", &[], ExecMode::Serial).unwrap_err();
    assert!(err.to_string().contains("takes 1 args, got 0"), "{err}");

    let err = e
        .run("nosuch", &[ArgVal::F(1.0)], ExecMode::Serial)
        .unwrap_err();
    assert!(err.to_string().contains("unknown unit"), "{err}");
}
