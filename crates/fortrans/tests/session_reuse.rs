//! Session recycling: `Session::reset_globals` must make a reused
//! session observationally identical to a fresh one — over the whole
//! shared corpus, across execution modes, and even after the session
//! just survived a trapped run with an oracle fallback. Batch queues
//! recycle nothing today (each job gets a private session), but the
//! engine service hands sessions to callers who *do* reuse them; this
//! suite is the contract that makes that safe.

mod common;

use common::{assert_equivalent, corpus, snapshot};
use fortrans::{ArgVal, EngineService, ExecMode, ExecTier};

#[test]
fn recycled_session_matches_fresh_over_corpus() {
    let service = EngineService::new(64);
    for case in corpus() {
        let artifact = service.compile(&[case.src]).expect(case.label);
        for mode in
            [ExecMode::Serial, ExecMode::Parallel { threads: 2 }, ExecMode::Simulated { threads: 2 }]
        {
            // Dirty a session with two runs, then reset it.
            let mut recycled = service.session_for(&artifact);
            let _ = snapshot(&recycled, &case, mode);
            let _ = snapshot(&recycled, &case, mode);
            recycled.reset_globals();
            let after_reset = snapshot(&recycled, &case, mode);

            let fresh = service.session_for(&artifact);
            let expect = snapshot(&fresh, &case, mode);
            assert_equivalent(case.label, mode, &after_reset, &expect);
        }
    }
}

#[test]
fn reset_after_trapped_run_restores_fresh_behavior() {
    // A forced trap runs the oracle fallback inside the same session;
    // reset_globals must still return it to a pristine state (the
    // fallback counter survives — it is diagnostics, not program state).
    let service = EngineService::new(8);
    for case in corpus() {
        let artifact = service.compile(&[case.src]).expect(case.label);
        let mut recycled = service.session_for(&artifact);
        recycled.debug_force_vm_trap();
        let trapped = recycled.run_tiered(
            case.unit,
            &(case.mk_args)(),
            ExecMode::Serial,
            fortrans::ExecTier::Vm,
        );
        // Error-family cases fail under the oracle too; either way the
        // session must reset cleanly below.
        let fell_back = matches!(&trapped, Ok(out) if out.fallback.is_some());
        if trapped.is_ok() {
            assert!(fell_back, "{}: forced trap must be diagnosed", case.label);
        }
        recycled.reset_globals();
        let after_reset = snapshot(&recycled, &case, ExecMode::Serial);

        let fresh = service.session_for(&artifact);
        let expect = snapshot(&fresh, &case, ExecMode::Serial);
        assert_equivalent(case.label, ExecMode::Serial, &after_reset, &expect);
        assert!(
            recycled.fallback_count() >= 1 || trapped.is_err(),
            "{}: fallback diagnostics survive reset",
            case.label
        );
    }
}

#[test]
fn recycled_session_runs_clean_batches_repeatedly() {
    // One session reused across "batches" of sequential runs with a
    // reset between batches: every batch must reproduce the first.
    let service = EngineService::new(4);
    let artifact = service
        .compile(&[r#"
MODULE m
  REAL(8) :: acc
CONTAINS
  SUBROUTINE add(x, out)
    REAL(8) :: x
    REAL(8), DIMENSION(1:1) :: out
    acc = acc + x
    out(1) = acc
  END SUBROUTINE add
END MODULE m
"#])
        .expect("compile");
    let mut session = service.session_for(&artifact);
    let mut first_batch: Vec<u64> = Vec::new();
    for batch in 0..3 {
        let mut outs = Vec::new();
        for k in 0..4 {
            let out = ArgVal::array_f(&[0.0], 1);
            session
                .run_tiered(
                    "add",
                    &[ArgVal::F(k as f64 + 0.25), out.clone()],
                    ExecMode::Serial,
                    ExecTier::Vm,
                )
                .expect("run");
            outs.push(out.handle().expect("arr").get_bits(0));
        }
        if batch == 0 {
            first_batch = outs;
        } else {
            assert_eq!(outs, first_batch, "batch {batch} diverged after reset");
        }
        session.reset_globals();
    }
}
