//! Differential testing: bytecode VM vs tree-walking interpreter.
//!
//! Every program in the corpus runs under both execution tiers
//! ([`ExecTier::Vm`] and [`ExecTier::TreeWalk`]) in all three modes, on
//! fresh engines, and the complete observable state is compared:
//!
//! * the returned result (bit-for-bit, via `Val`),
//! * every global scalar and array (bit dumps),
//! * every array argument after the run (bit dumps),
//! * captured PRINT output,
//! * the full Simulated-mode `CostTrace` event stream (`PartialEq` on
//!   every counter of every thread of every region),
//! * error `Display` strings when the program faults,
//! * the **profile**: aggregate per-`(unit, line)` loop-entry counts and
//!   the trap/fallback counters from a profiled run must be identical
//!   between the tiers, in every mode (spans are tier-invariant by
//!   construction — see `fortrans::trace`).
//!
//! Comparison policy by mode:
//! * **Serial** and **Simulated** are deterministic: everything must be
//!   bit-identical, including traces and error strings.
//! * **Parallel** combines floating reductions in thread-completion
//!   order and interleaves PRINT lines, so REAL(8) values get a tiny
//!   relative tolerance, printed output is compared as a line multiset,
//!   and both tiers merely have to agree on error-ness.

use fortrans::{ArgVal, CostTrace, Engine, ExecMode, ExecTier, ScalarTy, Schedule, Val};

const MODES: [ExecMode; 3] = [
    ExecMode::Serial,
    ExecMode::Parallel { threads: 4 },
    ExecMode::Simulated { threads: 4 },
];

/// Bit dump of one global after the run.
#[derive(Debug, Clone, PartialEq)]
enum GSnap {
    Scalar(Option<Val>),
    Array(ScalarTy, Vec<u64>),
    Unallocated,
}

/// Everything observable from one run.
#[derive(Debug, Clone, PartialEq)]
struct Snap {
    result: Result<Option<Val>, String>,
    printed: String,
    trace: CostTrace,
    globals: Vec<(String, GSnap)>,
    /// Post-run contents of array arguments (they are shared handles).
    arg_arrays: Vec<(ScalarTy, Vec<u64>)>,
}

fn dump_arr(h: &fortrans::ArrayObj) -> (ScalarTy, Vec<u64>) {
    (h.ty, (0..h.len()).map(|k| h.get_bits(k)).collect())
}

fn snapshot(engine: &Engine, unit: &str, args: &[ArgVal], mode: ExecMode, tier: ExecTier) -> Snap {
    let run = engine.run_tiered(unit, args, mode, tier);
    let (result, printed, trace) = match run {
        Ok(out) => (Ok(out.result), out.printed, out.trace),
        Err(e) => (Err(e.to_string()), String::new(), CostTrace::default()),
    };
    let mut globals = Vec::new();
    let mut names = engine.global_names();
    names.sort();
    for name in names {
        let snap = if let Some(v) = engine.global_scalar(&name) {
            GSnap::Scalar(Some(v))
        } else if let Some(h) = engine.global_array(&name) {
            let (ty, bits) = dump_arr(&h);
            GSnap::Array(ty, bits)
        } else {
            GSnap::Unallocated
        };
        globals.push((name, snap));
    }
    let arg_arrays = args
        .iter()
        .filter_map(|a| a.handle().map(|h| dump_arr(h)))
        .collect();
    Snap { result, printed, trace, globals, arg_arrays }
}

fn f64_close(a: f64, b: f64) -> bool {
    a.to_bits() == b.to_bits() || (a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs()))
}

fn bits_close(ty: ScalarTy, a: u64, b: u64) -> bool {
    match ty {
        ScalarTy::F => f64_close(f64::from_bits(a), f64::from_bits(b)),
        _ => a == b,
    }
}

fn sorted_lines(s: &str) -> Vec<&str> {
    let mut v: Vec<&str> = s.lines().collect();
    v.sort();
    v
}

/// Compares the VM snapshot against the tree-walker snapshot under the
/// mode-appropriate policy.
fn assert_equivalent(label: &str, mode: ExecMode, vm: &Snap, tw: &Snap) {
    if !matches!(mode, ExecMode::Parallel { .. }) {
        assert_eq!(vm, tw, "{label} under {mode:?}: VM and tree-walker diverge");
        return;
    }
    assert_tolerant(label, vm, tw);
}

/// The tolerance-based comparison: results, printed line multisets,
/// globals, and argument arrays must agree modulo float reduction-order
/// rounding; the cost trace is NOT compared (it legitimately differs by
/// thread interleaving or by chunk ownership across schedules).
fn assert_tolerant(label: &str, vm: &Snap, tw: &Snap) {
    match (&vm.result, &tw.result) {
        (Ok(Some(Val::F(a))), Ok(Some(Val::F(b)))) => {
            assert!(f64_close(*a, *b), "{label} Parallel result: {a} vs {b}");
        }
        (Ok(a), Ok(b)) => assert_eq!(a, b, "{label} Parallel result"),
        (Err(_), Err(_)) => {}
        (a, b) => panic!("{label} Parallel: one tier errored: vm={a:?} tw={b:?}"),
    }
    assert_eq!(
        sorted_lines(&vm.printed),
        sorted_lines(&tw.printed),
        "{label} Parallel printed lines"
    );
    assert_eq!(vm.globals.len(), tw.globals.len(), "{label} global count");
    for ((vn, vg), (tn, tg)) in vm.globals.iter().zip(&tw.globals) {
        assert_eq!(vn, tn, "{label} global name order");
        match (vg, tg) {
            (GSnap::Scalar(Some(Val::F(a))), GSnap::Scalar(Some(Val::F(b)))) => {
                assert!(f64_close(*a, *b), "{label} global {vn}: {a} vs {b}");
            }
            (GSnap::Array(ta, va), GSnap::Array(tb, vb)) => {
                assert_eq!((ta, va.len()), (tb, vb.len()), "{label} global {vn} shape");
                for (k, (&x, &y)) in va.iter().zip(vb).enumerate() {
                    assert!(bits_close(*ta, x, y), "{label} global {vn}[{k}]");
                }
            }
            (a, b) => assert_eq!(a, b, "{label} global {vn}"),
        }
    }
    assert_eq!(vm.arg_arrays.len(), tw.arg_arrays.len(), "{label} arg array count");
    for (ai, ((ta, va), (tb, vb))) in vm.arg_arrays.iter().zip(&tw.arg_arrays).enumerate() {
        assert_eq!((ta, va.len()), (tb, vb.len()), "{label} arg {ai} shape");
        for (k, (&x, &y)) in va.iter().zip(vb).enumerate() {
            assert!(bits_close(*ta, x, y), "{label} arg {ai}[{k}]");
        }
    }
}

/// The tier-invariant slice of a profiled run: aggregate loop-entry
/// counts plus the engine's trap/fallback counter. `None` when the run
/// errored (both tiers must then agree on error-ness, which the Snap
/// comparison already enforces).
type ProfSnap = Option<(std::collections::BTreeMap<(String, u32), u64>, u64)>;

fn profile_snapshot(
    engine: &Engine,
    unit: &str,
    args: &[ArgVal],
    mode: ExecMode,
    tier: ExecTier,
) -> ProfSnap {
    engine
        .run_profiled(unit, args, mode, tier)
        .ok()
        .map(|(_, p)| (p.loop_entry_counts(), p.fallback_count))
}

/// Schedule overrides swept over the whole corpus: every program must
/// produce the same observable state (modulo float reduction-order
/// rounding) under dynamic and guided dispatch as under the default
/// static partition.
const SCHED_SWEEP: [(&str, Schedule); 3] = [
    ("dynamic,1", Schedule::Dynamic(1)),
    ("dynamic,7", Schedule::Dynamic(7)),
    ("guided,2", Schedule::Guided(2)),
];

/// Runs `unit` from `src` under every (mode, tier) pair on fresh engines
/// (globals mutate, so tiers must not share storage) and cross-checks.
/// `runs` allows exercising global persistence across several calls; the
/// snapshots of every call are compared pairwise. A second pair of
/// engines repeats each call under the profiler and cross-checks the
/// tier-invariant profile observables. For Parallel and Simulated modes
/// the whole exercise repeats with every [`SCHED_SWEEP`] override forced
/// on all loops, and each swept snapshot is additionally checked against
/// the default-schedule baseline (schedule invariance).
fn differential_n(label: &str, src: &str, unit: &str, mk_args: impl Fn() -> Vec<ArgVal>, runs: usize) {
    for mode in MODES {
        let evm = Engine::compile(&[src]).unwrap_or_else(|e| panic!("{label}: {e}"));
        let etw = Engine::compile(&[src]).unwrap_or_else(|e| panic!("{label}: {e}"));
        let pvm = Engine::compile(&[src]).unwrap_or_else(|e| panic!("{label}: {e}"));
        let ptw = Engine::compile(&[src]).unwrap_or_else(|e| panic!("{label}: {e}"));
        let mut baselines = Vec::with_capacity(runs);
        for r in 0..runs {
            let vm = snapshot(&evm, unit, &mk_args(), mode, ExecTier::Vm);
            let tw = snapshot(&etw, unit, &mk_args(), mode, ExecTier::TreeWalk);
            assert_equivalent(&format!("{label} (run {r})"), mode, &vm, &tw);
            let pv = profile_snapshot(&pvm, unit, &mk_args(), mode, ExecTier::Vm);
            let pt = profile_snapshot(&ptw, unit, &mk_args(), mode, ExecTier::TreeWalk);
            assert_eq!(
                pv, pt,
                "{label} (run {r}) under {mode:?}: profiled loop-entry \
                 counts / fallback counters diverge between tiers"
            );
            baselines.push(vm);
        }
        if matches!(mode, ExecMode::Serial) {
            continue; // schedule is irrelevant without a (simulated) team
        }
        for (sname, sched) in SCHED_SWEEP {
            let svm = Engine::compile(&[src]).unwrap_or_else(|e| panic!("{label}: {e}"));
            let stw = Engine::compile(&[src]).unwrap_or_else(|e| panic!("{label}: {e}"));
            svm.set_schedule_override_all(Some(sched));
            stw.set_schedule_override_all(Some(sched));
            for (r, base) in baselines.iter().enumerate() {
                let slabel = format!("{label} (run {r}, sched {sname})");
                let vm = snapshot(&svm, unit, &mk_args(), mode, ExecTier::Vm);
                let tw = snapshot(&stw, unit, &mk_args(), mode, ExecTier::TreeWalk);
                assert_equivalent(&slabel, mode, &vm, &tw);
                assert_tolerant(&format!("{slabel} vs static baseline"), base, &vm);
            }
        }
    }
}

fn differential(label: &str, src: &str, unit: &str, mk_args: impl Fn() -> Vec<ArgVal>) {
    differential_n(label, src, unit, mk_args, 1);
}

// ---------------------------------------------------------------------
// Corpus: the engine_programs / omp_semantics programs plus VM-targeted
// stress cases (fused loops, global loop variables, step expressions,
// EXIT/CYCLE through CRITICAL, call-heavy kernels).
// ---------------------------------------------------------------------

#[test]
fn diff_function_intrinsics() {
    let src = r#"
MODULE m
CONTAINS
  REAL(8) FUNCTION hyp(a, b)
    REAL(8) :: a, b
    hyp = SQRT(a**2 + b**2)
  END FUNCTION hyp
END MODULE m
"#;
    differential("hyp", src, "hyp", || vec![ArgVal::F(3.0), ArgVal::F(4.0)]);
}

#[test]
fn diff_scalar_value_result_args() {
    let src = r#"
MODULE m
CONTAINS
  SUBROUTINE bump(x)
    REAL(8) :: x
    x = x + 1.0D0
  END SUBROUTINE bump
  SUBROUTINE run2(out)
    REAL(8), DIMENSION(1:1) :: out
    REAL(8) :: t
    t = 10.0D0
    CALL bump(t)
    CALL bump(t)
    out(1) = t
  END SUBROUTINE run2
END MODULE m
"#;
    differential("value-result", src, "run2", || vec![ArgVal::array_f(&[0.0], 1)]);
}

#[test]
fn diff_module_counter_persists() {
    let src = r#"
MODULE counter_mod
  INTEGER :: count
CONTAINS
  SUBROUTINE tick()
    count = count + 1
  END SUBROUTINE tick
END MODULE counter_mod
"#;
    differential_n("counter", src, "tick", Vec::new, 3);
}

#[test]
fn diff_common_blocks() {
    let src = r#"
MODULE m
CONTAINS
  SUBROUTINE both()
    REAL(8) :: cc
    REAL(8), DIMENSION(1:4) :: dd
    COMMON /rad/ cc, dd
    INTEGER :: i
    cc = 42.0D0
    DO i = 1, 4
      dd(i) = i * 1.0D0
    END DO
  END SUBROUTINE both
END MODULE m
"#;
    differential_n("common", src, "both", Vec::new, 2);
}

#[test]
fn diff_derived_types() {
    let src = r#"
MODULE fuliou_mod
  TYPE fuout_t
    REAL(8), DIMENSION(1:4) :: fd
    REAL(8) :: total
  END TYPE fuout_t
  TYPE(fuout_t) :: fo
END MODULE fuliou_mod
MODULE kernels
  USE fuliou_mod
CONTAINS
  SUBROUTINE fill()
    INTEGER :: i
    DO i = 1, 4
      fo%fd(i) = i * 10.0D0
    END DO
    fo%total = fo%fd(1) + fo%fd(2) + fo%fd(3) + fo%fd(4)
  END SUBROUTINE fill
END MODULE kernels
"#;
    differential("derived", src, "fill", Vec::new);
}

#[test]
fn diff_sum_reduction() {
    let src = r#"
MODULE m
CONTAINS
  REAL(8) FUNCTION total(a, n)
    REAL(8), DIMENSION(1:1000) :: a
    INTEGER :: n
    REAL(8) :: acc
    INTEGER :: i
    acc = 0.0D0
    !$OMP PARALLEL DO DEFAULT(SHARED) REDUCTION(+:acc)
    DO i = 1, n
      acc = acc + a(i)
    END DO
    !$OMP END PARALLEL DO
    total = acc
  END FUNCTION total
END MODULE m
"#;
    let data: Vec<f64> = (1..=1000).map(|i| i as f64).collect();
    differential("sum-reduction", src, "total", move || {
        vec![ArgVal::array_f(&data, 1), ArgVal::I(1000)]
    });
}

#[test]
fn diff_multi_reduction_with_call() {
    let src = r#"
MODULE m
CONTAINS
  SUBROUTINE stats(a, n, s, mx)
    REAL(8), DIMENSION(1:100) :: a
    INTEGER :: n
    REAL(8) :: s, mx
    INTEGER :: i
    s = 0.0D0
    mx = -1.0D30
    !$OMP PARALLEL DO REDUCTION(+:s) REDUCTION(MAX:mx)
    DO i = 1, n
      s = s + a(i)
      mx = MAX(mx, a(i))
    END DO
    !$OMP END PARALLEL DO
  END SUBROUTINE stats
  SUBROUTINE driver(a, n, out)
    REAL(8), DIMENSION(1:100) :: a
    INTEGER :: n
    REAL(8), DIMENSION(1:2) :: out
    REAL(8) :: s, mx
    CALL stats(a, n, s, mx)
    out(1) = s
    out(2) = mx
  END SUBROUTINE driver
END MODULE m
"#;
    let data: Vec<f64> = (0..100).map(|i| ((i * 37) % 100) as f64).collect();
    differential("multi-reduction", src, "driver", move || {
        vec![ArgVal::array_f(&data, 1), ArgVal::I(100), ArgVal::array_f(&[0.0, 0.0], 1)]
    });
}

#[test]
fn diff_atomic_scatter() {
    let src = r#"
MODULE accum_mod
  REAL(8), DIMENSION(1:4) :: bins
CONTAINS
  SUBROUTINE scatter(n)
    INTEGER :: n
    INTEGER :: i, b
    !$OMP PARALLEL DO DEFAULT(SHARED) PRIVATE(b)
    DO i = 1, n
      b = MOD(i, 4) + 1
      !$OMP ATOMIC
      bins(b) = bins(b) + 1.0D0
    END DO
    !$OMP END PARALLEL DO
  END SUBROUTINE scatter
END MODULE accum_mod
"#;
    differential("atomic", src, "scatter", || vec![ArgVal::I(4000)]);
}

#[test]
fn diff_critical_section() {
    let src = r#"
MODULE m
  REAL(8) :: shared_total
CONTAINS
  SUBROUTINE work(n)
    INTEGER :: n
    INTEGER :: i
    REAL(8) :: t
    !$OMP PARALLEL DO DEFAULT(SHARED) PRIVATE(t)
    DO i = 1, n
      t = 1.0D0
      !$OMP CRITICAL (upd)
      shared_total = shared_total + t
      !$OMP END CRITICAL
    END DO
    !$OMP END PARALLEL DO
  END SUBROUTINE work
END MODULE m
"#;
    differential("critical", src, "work", || vec![ArgVal::I(2000)]);
}

#[test]
fn diff_collapse_two() {
    let src = r#"
MODULE m
CONTAINS
  SUBROUTINE fill(a)
    REAL(8), DIMENSION(1:2, 1:60) :: a
    INTEGER :: i, j
    !$OMP PARALLEL DO DEFAULT(SHARED) COLLAPSE(2)
    DO i = 1, 2
      DO j = 1, 60
        a(i, j) = i * 100.0D0 + j
      END DO
    END DO
    !$OMP END PARALLEL DO
  END SUBROUTINE fill
END MODULE m
"#;
    differential("collapse", src, "fill", || {
        vec![ArgVal::array_f_dims(&vec![0.0; 120], vec![(1, 2), (1, 60)]).unwrap()]
    });
}

#[test]
fn diff_allocatable_save() {
    let src = r#"
MODULE m
CONTAINS
  REAL(8) FUNCTION edge_tmp()
    REAL(8), DIMENSION(:), ALLOCATABLE, SAVE :: tmp
    IF (.NOT. ALLOCATED(tmp)) ALLOCATE(tmp(1:8))
    tmp(1) = tmp(1) + 1.0D0
    edge_tmp = tmp(1)
  END FUNCTION edge_tmp
END MODULE m
"#;
    differential_n("alloc-save", src, "edge_tmp", Vec::new, 3);
}

#[test]
fn diff_allocate_deallocate() {
    let src = r#"
MODULE m
CONTAINS
  REAL(8) FUNCTION fresh()
    REAL(8), DIMENSION(:), ALLOCATABLE :: tmp
    ALLOCATE(tmp(1:8))
    tmp(1) = tmp(1) + 1.0D0
    fresh = tmp(1)
    DEALLOCATE(tmp)
  END FUNCTION fresh
END MODULE m
"#;
    differential_n("alloc-fresh", src, "fresh", Vec::new, 2);
}

#[test]
fn diff_do_while_exit_cycle() {
    let src = r#"
MODULE m
CONTAINS
  INTEGER FUNCTION count_down(n)
    INTEGER :: n
    INTEGER :: c
    c = 0
    DO WHILE (n > 0)
      n = n - 1
      IF (MOD(n, 2) == 0) CYCLE
      c = c + 1
      IF (c >= 3) EXIT
    END DO
    count_down = c
  END FUNCTION count_down
END MODULE m
"#;
    differential("do-while", src, "count_down", || vec![ArgVal::I(100)]);
}

#[test]
fn diff_broadcast_copy_reduce() {
    let src = r#"
MODULE m
CONTAINS
  REAL(8) FUNCTION demo(n)
    INTEGER :: n
    REAL(8), DIMENSION(1:10) :: a
    REAL(8), DIMENSION(1:10) :: b
    a = 2.5D0
    b = a
    demo = SUM(b) + MINVAL(a) + MAXVAL(a) + SIZE(a)
  END FUNCTION demo
END MODULE m
"#;
    differential("broadcast", src, "demo", || vec![ArgVal::I(1)]);
}

#[test]
fn diff_out_of_bounds_error() {
    let src = r#"
MODULE m
CONTAINS
  SUBROUTINE oops(k)
    INTEGER :: k
    REAL(8), DIMENSION(1:4) :: a
    a(k) = 1.0D0
  END SUBROUTINE oops
END MODULE m
"#;
    differential("oob", src, "oops", || vec![ArgVal::I(9)]);
}

#[test]
fn diff_div_zero_error() {
    let src = r#"
MODULE m
CONTAINS
  INTEGER FUNCTION bad(n)
    INTEGER :: n
    bad = 10 / n
  END FUNCTION bad
END MODULE m
"#;
    differential("div-zero", src, "bad", || vec![ArgVal::I(0)]);
    differential("div-ok", src, "bad", || vec![ArgVal::I(3)]);
}

#[test]
fn diff_stop_error() {
    let src = r#"
MODULE m
CONTAINS
  SUBROUTINE halt(x)
    REAL(8) :: x
    IF (x > 0.0D0) STOP 'positive input'
    x = -x
  END SUBROUTINE halt
END MODULE m
"#;
    differential("stop", src, "halt", || vec![ArgVal::F(1.0)]);
    differential("no-stop", src, "halt", || vec![ArgVal::F(-1.0)]);
}

#[test]
fn diff_print_output() {
    let src = r#"
MODULE m
CONTAINS
  SUBROUTINE speak(x, k, q)
    REAL(8) :: x
    INTEGER :: k
    LOGICAL :: q
    PRINT *, 'value is', x, k, q
  END SUBROUTINE speak
END MODULE m
"#;
    differential("print", src, "speak", || {
        vec![ArgVal::F(2.5), ArgVal::I(-3), ArgVal::B(true)]
    });
}

#[test]
fn diff_simulated_trace_exp_kernel() {
    let src = r#"
MODULE m
CONTAINS
  SUBROUTINE work(a, n)
    REAL(8), DIMENSION(1:100) :: a
    INTEGER :: n
    INTEGER :: i
    !$OMP PARALLEL DO DEFAULT(SHARED)
    DO i = 1, n
      a(i) = EXP(a(i)) + 1.0D0
    END DO
    !$OMP END PARALLEL DO
  END SUBROUTINE work
END MODULE m
"#;
    differential("trace-exp", src, "work", || {
        vec![ArgVal::array_f(&vec![0.1; 100], 1), ArgVal::I(100)]
    });
}

#[test]
fn diff_transcendental_reduction() {
    let src = r#"
MODULE m
CONTAINS
  REAL(8) FUNCTION chaos(a, n)
    REAL(8), DIMENSION(1:64) :: a
    INTEGER :: n
    REAL(8) :: acc
    INTEGER :: i
    acc = 0.0D0
    !$OMP PARALLEL DO REDUCTION(+:acc)
    DO i = 1, n
      acc = acc + SIN(a(i)) * COS(a(i)) / (1.0D0 + a(i)**2)
    END DO
    !$OMP END PARALLEL DO
    chaos = acc
  END FUNCTION chaos
END MODULE m
"#;
    let data: Vec<f64> = (0..64).map(|i| i as f64 * 0.173).collect();
    differential("chaos", src, "chaos", move || {
        vec![ArgVal::array_f(&data, 1), ArgVal::I(64)]
    });
}

#[test]
fn diff_vector_and_memset_cost_classes() {
    let src = r#"
MODULE m
CONTAINS
  SUBROUTINE axpy(a, b, n)
    REAL(8), DIMENSION(1:256) :: a, b
    INTEGER :: n
    INTEGER :: i
    DO i = 1, n
      a(i) = a(i) + 2.0D0 * b(i)
    END DO
    DO i = 1, n
      b(i) = 0.0D0
    END DO
  END SUBROUTINE axpy
END MODULE m
"#;
    differential("vec-memset", src, "axpy", || {
        vec![
            ArgVal::array_f(&vec![1.0; 256], 1),
            ArgVal::array_f(&vec![1.0; 256], 1),
            ArgVal::I(256),
        ]
    });
}

#[test]
fn diff_nested_parallel_regions() {
    let src = r#"
MODULE m
  REAL(8) :: acc
CONTAINS
  SUBROUTINE inner(k)
    INTEGER :: k
    INTEGER :: j
    !$OMP PARALLEL DO DEFAULT(SHARED)
    DO j = 1, 4
      !$OMP ATOMIC
      acc = acc + 1.0D0
    END DO
    !$OMP END PARALLEL DO
  END SUBROUTINE inner
  SUBROUTINE outer(n)
    INTEGER :: n
    INTEGER :: i
    !$OMP PARALLEL DO DEFAULT(SHARED)
    DO i = 1, n
      CALL inner(i)
    END DO
    !$OMP END PARALLEL DO
  END SUBROUTINE outer
END MODULE m
"#;
    differential("nested-omp", src, "outer", || vec![ArgVal::I(10)]);
}

#[test]
fn diff_threadprivate() {
    let src = r#"
MODULE m
  REAL(8), DIMENSION(1:4) :: buf
  !$OMP THREADPRIVATE(buf)
  REAL(8) :: merged
CONTAINS
  SUBROUTINE work(n)
    INTEGER :: n
    INTEGER :: i
    !$OMP PARALLEL DO DEFAULT(SHARED)
    DO i = 1, n
      buf(1) = buf(1) + 1.0D0
      !$OMP ATOMIC
      merged = merged + 1.0D0
    END DO
    !$OMP END PARALLEL DO
  END SUBROUTINE work
END MODULE m
"#;
    differential("threadprivate", src, "work", || vec![ArgVal::I(100)]);
}

#[test]
fn diff_nested_function_calls() {
    let src = r#"
MODULE m
CONTAINS
  REAL(8) FUNCTION sq(x)
    REAL(8) :: x
    sq = x * x
  END FUNCTION sq
  REAL(8) FUNCTION quad(x)
    REAL(8) :: x
    quad = sq(sq(x)) + sq(x)
  END FUNCTION quad
END MODULE m
"#;
    differential("nested-calls", src, "quad", || vec![ArgVal::F(2.0)]);
}

#[test]
fn diff_parameter_folding() {
    let src = r#"
MODULE m
  INTEGER, PARAMETER :: nv = 6
  REAL(8), PARAMETER :: scale_f = 2.5D0
CONTAINS
  REAL(8) FUNCTION use_params()
    REAL(8), DIMENSION(1:nv) :: w
    INTEGER :: i
    DO i = 1, nv
      w(i) = i * scale_f
    END DO
    use_params = SUM(w)
  END FUNCTION use_params
END MODULE m
"#;
    differential("params", src, "use_params", Vec::new);
}

#[test]
fn diff_negative_step() {
    let src = r#"
MODULE m
CONTAINS
  INTEGER FUNCTION walk()
    INTEGER :: i, acc
    acc = 0
    DO i = 10, 1, -2
      acc = acc + i
    END DO
    walk = acc
  END FUNCTION walk
END MODULE m
"#;
    differential("neg-step", src, "walk", Vec::new);
}

#[test]
fn diff_private_array_clause() {
    let src = r#"
MODULE m
CONTAINS
  SUBROUTINE hist(out, n)
    REAL(8), DIMENSION(1:4) :: out
    INTEGER :: n
    REAL(8), DIMENSION(1:4) :: scratch
    INTEGER :: i, k
    !$OMP PARALLEL DO DEFAULT(SHARED) PRIVATE(scratch, k)
    DO i = 1, n
      DO k = 1, 4
        scratch(k) = i * 1.0D0
      END DO
      !$OMP ATOMIC
      out(MOD(i, 4) + 1) = out(MOD(i, 4) + 1) + scratch(1) / scratch(2)
    END DO
    !$OMP END PARALLEL DO
  END SUBROUTINE hist
END MODULE m
"#;
    differential("private-array", src, "hist", || {
        vec![ArgVal::array_f(&[0.0; 4], 1), ArgVal::I(400)]
    });
}

#[test]
fn diff_schedule_chunk_and_num_threads() {
    let src = r#"
MODULE m
CONTAINS
  SUBROUTINE mark(a, n)
    REAL(8), DIMENSION(1:97) :: a
    INTEGER :: n
    INTEGER :: i
    !$OMP PARALLEL DO SCHEDULE(STATIC, 5) NUM_THREADS(2)
    DO i = 1, n
      a(i) = a(i) + i * 1.0D0
    END DO
    !$OMP END PARALLEL DO
  END SUBROUTINE mark
END MODULE m
"#;
    differential("sched-chunk", src, "mark", || {
        vec![ArgVal::array_f(&vec![0.0; 97], 1), ArgVal::I(97)]
    });
}

#[test]
fn diff_firstprivate() {
    let src = r#"
MODULE m
CONTAINS
  SUBROUTINE scaleit(a, n)
    REAL(8), DIMENSION(1:40) :: a
    INTEGER :: n
    REAL(8) :: scale
    INTEGER :: i
    scale = 2.5D0
    !$OMP PARALLEL DO FIRSTPRIVATE(scale)
    DO i = 1, n
      a(i) = a(i) * scale
    END DO
    !$OMP END PARALLEL DO
  END SUBROUTINE scaleit
END MODULE m
"#;
    differential("firstprivate", src, "scaleit", || {
        vec![ArgVal::array_f(&vec![2.0; 40], 1), ArgVal::I(40)]
    });
}

#[test]
fn diff_product_min_reductions() {
    let src = r#"
MODULE m
CONTAINS
  SUBROUTINE stats(a, n, res)
    REAL(8), DIMENSION(1:12) :: a
    INTEGER :: n
    REAL(8), DIMENSION(1:2) :: res
    REAL(8) :: p, mn
    INTEGER :: i
    p = 1.0D0
    mn = 1.0D30
    !$OMP PARALLEL DO REDUCTION(*:p) REDUCTION(MIN:mn)
    DO i = 1, n
      p = p * a(i)
      mn = MIN(mn, a(i))
    END DO
    !$OMP END PARALLEL DO
    res(1) = p
    res(2) = mn
  END SUBROUTINE stats
END MODULE m
"#;
    let data: Vec<f64> = (1..=12).map(|i| 1.0 + (i % 3) as f64 * 0.5).collect();
    differential("prod-min", src, "stats", move || {
        vec![ArgVal::array_f(&data, 1), ArgVal::I(12), ArgVal::array_f(&[0.0, 0.0], 1)]
    });
}

#[test]
fn diff_parallel_negative_step() {
    let src = r#"
MODULE m
CONTAINS
  SUBROUTINE rev(a, n)
    REAL(8), DIMENSION(1:30) :: a
    INTEGER :: n
    INTEGER :: i
    !$OMP PARALLEL DO
    DO i = n, 1, -1
      a(i) = i * 10.0D0
    END DO
    !$OMP END PARALLEL DO
  END SUBROUTINE rev
END MODULE m
"#;
    differential("par-neg-step", src, "rev", || {
        vec![ArgVal::array_f(&vec![0.0; 30], 1), ArgVal::I(30)]
    });
}

#[test]
fn diff_parallel_prints() {
    let src = r#"
MODULE m
CONTAINS
  SUBROUTINE noisy(n)
    INTEGER :: n
    INTEGER :: i
    !$OMP PARALLEL DO
    DO i = 1, n
      PRINT *, 'iter', i
    END DO
    !$OMP END PARALLEL DO
  END SUBROUTINE noisy
END MODULE m
"#;
    differential("par-print", src, "noisy", || vec![ArgVal::I(8)]);
}

#[test]
fn diff_integer_reduction() {
    let src = r#"
MODULE m
CONTAINS
  INTEGER FUNCTION countup(n)
    INTEGER :: n
    INTEGER :: i, acc
    acc = 0
    !$OMP PARALLEL DO REDUCTION(+:acc)
    DO i = 1, n
      acc = acc + i
    END DO
    !$OMP END PARALLEL DO
    countup = acc
  END FUNCTION countup
END MODULE m
"#;
    differential("int-reduction", src, "countup", || vec![ArgVal::I(100)]);
}

// ---------------- VM-targeted stress cases ----------------

#[test]
fn diff_global_loop_variable() {
    // DO variable living in module storage exercises the non-fused
    // DoHead path (the counter must be written back every iteration,
    // with a Store cost in Simulated mode).
    let src = r#"
MODULE m
  INTEGER :: gi
  REAL(8) :: total
CONTAINS
  SUBROUTINE sweep(n)
    INTEGER :: n
    total = 0.0D0
    DO gi = 1, n
      total = total + gi * 1.0D0
    END DO
  END SUBROUTINE sweep
END MODULE m
"#;
    differential("global-loop-var", src, "sweep", || vec![ArgVal::I(17)]);
}

#[test]
fn diff_step_expression_loop() {
    // Step computed from an argument: must use the general DoHeadN path
    // and reject a zero step exactly like the tree-walker.
    let src = r#"
MODULE m
CONTAINS
  INTEGER FUNCTION strided(n, s)
    INTEGER :: n, s
    INTEGER :: i, acc
    acc = 0
    DO i = 1, n, s
      acc = acc + i
    END DO
    strided = acc
  END FUNCTION strided
END MODULE m
"#;
    differential("step-expr", src, "strided", || vec![ArgVal::I(20), ArgVal::I(3)]);
    differential("step-zero", src, "strided", || vec![ArgVal::I(20), ArgVal::I(0)]);
    differential("step-neg", src, "strided", || vec![ArgVal::I(20), ArgVal::I(-1)]);
}

#[test]
fn diff_body_mutates_loop_var() {
    // The fused loop keeps its trip count in a hidden counter; writing
    // to the DO variable inside the body must not change the iteration
    // sequence (the tree-walker also re-stores the variable each trip).
    let src = r#"
MODULE m
CONTAINS
  INTEGER FUNCTION stubborn(n)
    INTEGER :: n
    INTEGER :: i, acc
    acc = 0
    DO i = 1, n
      acc = acc + i
      i = 999
    END DO
    stubborn = acc
  END FUNCTION stubborn
END MODULE m
"#;
    differential("mutate-loop-var", src, "stubborn", || vec![ArgVal::I(5)]);
}

#[test]
fn diff_exit_cycle_through_critical() {
    let src = r#"
MODULE m
  REAL(8) :: hits
CONTAINS
  SUBROUTINE scan(n)
    INTEGER :: n
    INTEGER :: i
    DO i = 1, n
      !$OMP CRITICAL (tally)
      hits = hits + 1.0D0
      !$OMP END CRITICAL
      IF (MOD(i, 3) == 0) CYCLE
      IF (i > 7) EXIT
    END DO
  END SUBROUTINE scan
END MODULE m
"#;
    differential("exit-critical", src, "scan", || vec![ArgVal::I(50)]);
}

#[test]
fn diff_mixed_type_promotion() {
    let src = r#"
MODULE m
CONTAINS
  REAL(8) FUNCTION mixer(k, x)
    INTEGER :: k
    REAL(8) :: x
    INTEGER :: j
    REAL(8) :: r
    j = k / 3 + MOD(k, 5)
    r = j + x * 2
    r = r + k ** 2 + x ** k + x ** 1.5D0
    r = r - j / 2
    mixer = r + NINT(x) + INT(x) + ABS(1 - k) + SIGN(2.0D0, -x)
  END FUNCTION mixer
END MODULE m
"#;
    differential("promotion", src, "mixer", || vec![ArgVal::I(7), ArgVal::F(2.25)]);
}

#[test]
fn diff_logical_ops_and_branches() {
    let src = r#"
MODULE m
CONTAINS
  INTEGER FUNCTION classify(x)
    REAL(8) :: x
    LOGICAL :: hot, cold
    hot = x > 10.0D0
    cold = x < -10.0D0
    IF (hot .AND. .NOT. cold) THEN
      classify = 1
    ELSE IF (hot .OR. cold) THEN
      classify = 2
    ELSE
      classify = 0
    END IF
  END FUNCTION classify
END MODULE m
"#;
    for v in [-20.0, -5.0, 0.0, 5.0, 20.0] {
        differential("logical", src, "classify", move || vec![ArgVal::F(v)]);
    }
}

#[test]
fn diff_call_depth_limit_error() {
    let src = r#"
MODULE m
CONTAINS
  INTEGER FUNCTION ping(n)
    INTEGER :: n
    IF (n <= 0) THEN
      ping = 0
    ELSE
      ping = pong(n - 1) + 1
    END IF
  END FUNCTION ping
  INTEGER FUNCTION pong(n)
    INTEGER :: n
    IF (n <= 0) THEN
      pong = 0
    ELSE
      pong = ping(n - 1) + 1
    END IF
  END FUNCTION pong
END MODULE m
"#;
    // Within the limit: result identical; beyond: identical Limit error.
    // 200 nested frames need more stack than the 2 MiB test default in
    // debug builds, for both tiers — use a dedicated thread.
    let src = src.to_string();
    std::thread::Builder::new()
        .stack_size(64 << 20)
        .spawn(move || {
            differential("recursion-ok", &src, "ping", || vec![ArgVal::I(50)]);
            differential("recursion-deep", &src, "ping", || vec![ArgVal::I(500)]);
        })
        .unwrap()
        .join()
        .unwrap();
}
