//! End-to-end engine tests: whole FORTRAN programs compiled and executed
//! in all three modes, exercising every §3 integration feature the GLAF
//! code generator relies on.

use fortrans::{ArgVal, Engine, ExecMode, TraceEvent, Val};

fn engine(src: &str) -> Engine {
    Engine::compile(&[src]).unwrap_or_else(|e| panic!("{e}\n{src}"))
}

const ALL_MODES: [ExecMode; 3] = [
    ExecMode::Serial,
    ExecMode::Parallel { threads: 4 },
    ExecMode::Simulated { threads: 4 },
];

#[test]
fn function_result_and_intrinsics() {
    let src = r#"
MODULE m
CONTAINS
  REAL(8) FUNCTION hyp(a, b)
    REAL(8) :: a, b
    hyp = SQRT(a**2 + b**2)
  END FUNCTION hyp
END MODULE m
"#;
    let e = engine(src);
    let out = e
        .run("hyp", &[ArgVal::F(3.0), ArgVal::F(4.0)], ExecMode::Serial)
        .unwrap();
    assert_eq!(out.result, Some(Val::F(5.0)));
}

#[test]
fn scalar_args_value_result() {
    let src = r#"
MODULE m
CONTAINS
  SUBROUTINE bump(x)
    REAL(8) :: x
    x = x + 1.0D0
  END SUBROUTINE bump
  SUBROUTINE driver(y)
    REAL(8) :: y
    CALL bump(y)
    CALL bump(y)
  END SUBROUTINE driver
END MODULE m
"#;
    let e = engine(src);
    // Top-level scalar args are copy-in only; observe through an array.
    let src2 = r#"
MODULE m2
  USE m
CONTAINS
  SUBROUTINE run2(out)
    REAL(8), DIMENSION(1:1) :: out
    REAL(8) :: t
    t = 10.0D0
    CALL driver(t)
    out(1) = t
  END SUBROUTINE run2
END MODULE m2
"#;
    let e2 = Engine::compile(&[src, src2]).unwrap();
    let out = ArgVal::array_f(&[0.0], 1);
    e2.run("run2", std::slice::from_ref(&out), ExecMode::Serial).unwrap();
    assert_eq!(out.handle().unwrap().get_f(0), 12.0);
    drop(e);
}

#[test]
fn module_variables_persist_across_runs() {
    let src = r#"
MODULE counter_mod
  INTEGER :: count
CONTAINS
  SUBROUTINE tick()
    count = count + 1
  END SUBROUTINE tick
END MODULE counter_mod
"#;
    let mut e = engine(src);
    for _ in 0..3 {
        e.run("tick", &[], ExecMode::Serial).unwrap();
    }
    assert_eq!(e.global_scalar("counter_mod::count"), Some(Val::I(3)));
    e.reset_globals();
    assert_eq!(e.global_scalar("counter_mod::count"), Some(Val::I(0)));
}

#[test]
fn common_blocks_share_storage_across_units() {
    let src = r#"
MODULE m
CONTAINS
  SUBROUTINE producer()
    REAL(8) :: cc
    REAL(8), DIMENSION(1:4) :: dd
    COMMON /rad/ cc, dd
    INTEGER :: i
    cc = 42.0D0
    DO i = 1, 4
      dd(i) = i * 1.0D0
    END DO
  END SUBROUTINE producer
  REAL(8) FUNCTION consumer()
    REAL(8) :: other_name
    REAL(8), DIMENSION(1:4) :: other_arr
    COMMON /rad/ other_name, other_arr
    consumer = other_name + other_arr(3)
  END FUNCTION consumer
END MODULE m
"#;
    let e = engine(src);
    e.run("producer", &[], ExecMode::Serial).unwrap();
    let out = e.run("consumer", &[], ExecMode::Serial).unwrap();
    assert_eq!(out.result, Some(Val::F(45.0)));
}

#[test]
fn derived_types_flattened_and_accessible() {
    let src = r#"
MODULE fuliou_mod
  TYPE fuout_t
    REAL(8), DIMENSION(1:4) :: fd
    REAL(8) :: total
  END TYPE fuout_t
  TYPE(fuout_t) :: fo
END MODULE fuliou_mod
MODULE kernels
  USE fuliou_mod
CONTAINS
  SUBROUTINE fill()
    INTEGER :: i
    DO i = 1, 4
      fo%fd(i) = i * 10.0D0
    END DO
    fo%total = SUM(fo_fd_alias())
  END SUBROUTINE fill
  REAL(8) FUNCTION fo_fd_alias()
    fo_fd_alias = fo%fd(1) + fo%fd(2) + fo%fd(3) + fo%fd(4)
  END FUNCTION fo_fd_alias
END MODULE kernels
"#;
    // SUM over a %-path is not supported directly; the helper function
    // stands in (GLAF generates scalar accumulation loops anyway).
    let src = src.replace("fo%total = SUM(fo_fd_alias())", "fo%total = fo_fd_alias()");
    let e = engine(&src);
    e.run("fill", &[], ExecMode::Serial).unwrap();
    assert_eq!(e.global_scalar("fuliou_mod::fo%total"), Some(Val::F(100.0)));
    let fd = e.global_array("fuliou_mod::fo%fd").unwrap();
    assert_eq!(fd.get_f(2), 30.0);
}

#[test]
fn reduction_loop_all_modes_agree() {
    let src = r#"
MODULE m
CONTAINS
  REAL(8) FUNCTION total(a, n)
    REAL(8), DIMENSION(1:1000) :: a
    INTEGER :: n
    REAL(8) :: acc
    INTEGER :: i
    acc = 0.0D0
    !$OMP PARALLEL DO DEFAULT(SHARED) REDUCTION(+:acc)
    DO i = 1, n
      acc = acc + a(i)
    END DO
    !$OMP END PARALLEL DO
    total = acc
  END FUNCTION total
END MODULE m
"#;
    let e = engine(src);
    let data: Vec<f64> = (1..=1000).map(|i| i as f64).collect();
    let expect = 500500.0;
    for mode in ALL_MODES {
        let a = ArgVal::array_f(&data, 1);
        let out = e.run("total", &[a, ArgVal::I(1000)], mode).unwrap();
        let Some(Val::F(v)) = out.result else { panic!() };
        assert!((v - expect).abs() < 1e-6, "{mode:?}: {v}");
    }
}

#[test]
fn multi_var_reduction_and_max() {
    let src = r#"
MODULE m
CONTAINS
  SUBROUTINE stats(a, n, s, mx)
    REAL(8), DIMENSION(1:100) :: a
    INTEGER :: n
    REAL(8) :: s, mx
    INTEGER :: i
    s = 0.0D0
    mx = -1.0D30
    !$OMP PARALLEL DO REDUCTION(+:s) REDUCTION(MAX:mx)
    DO i = 1, n
      s = s + a(i)
      mx = MAX(mx, a(i))
    END DO
    !$OMP END PARALLEL DO
  END SUBROUTINE stats
  SUBROUTINE driver(a, n, out)
    REAL(8), DIMENSION(1:100) :: a
    INTEGER :: n
    REAL(8), DIMENSION(1:2) :: out
    REAL(8) :: s, mx
    CALL stats(a, n, s, mx)
    out(1) = s
    out(2) = mx
  END SUBROUTINE driver
END MODULE m
"#;
    let e = engine(src);
    let data: Vec<f64> = (0..100).map(|i| ((i * 37) % 100) as f64).collect();
    for mode in ALL_MODES {
        let a = ArgVal::array_f(&data, 1);
        let out = ArgVal::array_f(&[0.0, 0.0], 1);
        e.run("driver", &[a, ArgVal::I(100), out.clone()], mode).unwrap();
        let h = out.handle().unwrap();
        assert_eq!(h.get_f(0), data.iter().sum::<f64>(), "{mode:?}");
        assert_eq!(h.get_f(1), 99.0, "{mode:?}");
    }
}

#[test]
fn atomic_updates_correct_under_threads() {
    let src = r#"
MODULE accum_mod
  REAL(8), DIMENSION(1:4) :: bins
CONTAINS
  SUBROUTINE scatter(n)
    INTEGER :: n
    INTEGER :: i, b
    !$OMP PARALLEL DO DEFAULT(SHARED) PRIVATE(b)
    DO i = 1, n
      b = MOD(i, 4) + 1
      !$OMP ATOMIC
      bins(b) = bins(b) + 1.0D0
    END DO
    !$OMP END PARALLEL DO
  END SUBROUTINE scatter
END MODULE accum_mod
"#;
    for mode in ALL_MODES {
        let e = engine(src);
        e.run("scatter", &[ArgVal::I(4000)], mode).unwrap();
        let bins = e.global_array("accum_mod::bins").unwrap();
        for k in 0..4 {
            assert_eq!(bins.get_f(k), 1000.0, "{mode:?} bin {k}");
        }
    }
}

#[test]
fn critical_section_protects_rmw() {
    let src = r#"
MODULE m
  REAL(8) :: shared_total
CONTAINS
  SUBROUTINE work(n)
    INTEGER :: n
    INTEGER :: i
    REAL(8) :: t
    !$OMP PARALLEL DO DEFAULT(SHARED) PRIVATE(t)
    DO i = 1, n
      t = 1.0D0
      !$OMP CRITICAL (upd)
      shared_total = shared_total + t
      !$OMP END CRITICAL
    END DO
    !$OMP END PARALLEL DO
  END SUBROUTINE work
END MODULE m
"#;
    for mode in ALL_MODES {
        let e = engine(src);
        e.run("work", &[ArgVal::I(2000)], mode).unwrap();
        assert_eq!(e.global_scalar("m::shared_total"), Some(Val::F(2000.0)), "{mode:?}");
    }
}

#[test]
fn collapse_two_loops() {
    let src = r#"
MODULE m
CONTAINS
  SUBROUTINE fill(a)
    REAL(8), DIMENSION(1:2, 1:60) :: a
    INTEGER :: i, j
    !$OMP PARALLEL DO DEFAULT(SHARED) COLLAPSE(2)
    DO i = 1, 2
      DO j = 1, 60
        a(i, j) = i * 100.0D0 + j
      END DO
    END DO
    !$OMP END PARALLEL DO
  END SUBROUTINE fill
END MODULE m
"#;
    let e = engine(src);
    for mode in ALL_MODES {
        let a = ArgVal::array_f_dims(&vec![0.0; 120], vec![(1, 2), (1, 60)]).unwrap();
        e.run("fill", std::slice::from_ref(&a), mode).unwrap();
        let h = a.handle().unwrap();
        // a(2, 60) at column-major offset (2-1) + (60-1)*2 = 119.
        assert_eq!(h.get_f(119), 260.0, "{mode:?}");
        assert_eq!(h.get_f(0), 101.0, "{mode:?}");
    }
}

#[test]
fn allocatable_save_persists() {
    let src = r#"
MODULE m
CONTAINS
  REAL(8) FUNCTION edge_tmp()
    REAL(8), DIMENSION(:), ALLOCATABLE, SAVE :: tmp
    IF (.NOT. ALLOCATED(tmp)) ALLOCATE(tmp(1:8))
    tmp(1) = tmp(1) + 1.0D0
    edge_tmp = tmp(1)
  END FUNCTION edge_tmp
END MODULE m
"#;
    let e = engine(src);
    for expect in 1..=3 {
        let out = e.run("edge_tmp", &[], ExecMode::Serial).unwrap();
        assert_eq!(out.result, Some(Val::F(expect as f64)));
    }
}

#[test]
fn allocatable_without_save_reallocates() {
    let src = r#"
MODULE m
CONTAINS
  REAL(8) FUNCTION fresh()
    REAL(8), DIMENSION(:), ALLOCATABLE :: tmp
    ALLOCATE(tmp(1:8))
    tmp(1) = tmp(1) + 1.0D0
    fresh = tmp(1)
    DEALLOCATE(tmp)
  END FUNCTION fresh
END MODULE m
"#;
    let e = engine(src);
    for _ in 0..3 {
        let out = e.run("fresh", &[], ExecMode::Serial).unwrap();
        assert_eq!(out.result, Some(Val::F(1.0)), "fresh allocation each call");
    }
}

#[test]
fn do_while_exit_cycle() {
    let src = r#"
MODULE m
CONTAINS
  INTEGER FUNCTION count_down(n)
    INTEGER :: n
    INTEGER :: c
    c = 0
    DO WHILE (n > 0)
      n = n - 1
      IF (MOD(n, 2) == 0) CYCLE
      c = c + 1
      IF (c >= 3) EXIT
    END DO
    count_down = c
  END FUNCTION count_down
END MODULE m
"#;
    let e = engine(src);
    let out = e.run("count_down", &[ArgVal::I(100)], ExecMode::Serial).unwrap();
    assert_eq!(out.result, Some(Val::I(3)));
}

#[test]
fn broadcast_and_array_copy_and_sum() {
    let src = r#"
MODULE m
CONTAINS
  REAL(8) FUNCTION demo(n)
    INTEGER :: n
    REAL(8), DIMENSION(1:10) :: a
    REAL(8), DIMENSION(1:10) :: b
    a = 2.5D0
    b = a
    demo = SUM(b) + MINVAL(a) + MAXVAL(a) + SIZE(a)
  END FUNCTION demo
END MODULE m
"#;
    let e = engine(src);
    let out = e.run("demo", &[ArgVal::I(1)], ExecMode::Serial).unwrap();
    assert_eq!(out.result, Some(Val::F(25.0 + 2.5 + 2.5 + 10.0)));
}

#[test]
fn out_of_bounds_reported_with_context() {
    let src = r#"
MODULE m
CONTAINS
  SUBROUTINE oops(k)
    INTEGER :: k
    REAL(8), DIMENSION(1:4) :: a
    a(k) = 1.0D0
  END SUBROUTINE oops
END MODULE m
"#;
    let e = engine(src);
    let err = e.run("oops", &[ArgVal::I(9)], ExecMode::Serial).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("out of bounds"), "{msg}");
    assert!(msg.contains('9'), "{msg}");
}

#[test]
fn integer_div_by_zero_is_error() {
    let src = r#"
MODULE m
CONTAINS
  INTEGER FUNCTION bad(n)
    INTEGER :: n
    bad = 10 / n
  END FUNCTION bad
END MODULE m
"#;
    let e = engine(src);
    assert!(e.run("bad", &[ArgVal::I(0)], ExecMode::Serial).is_err());
    let ok = e.run("bad", &[ArgVal::I(3)], ExecMode::Serial).unwrap();
    assert_eq!(ok.result, Some(Val::I(3)));
}

#[test]
fn print_output_captured() {
    let src = r#"
MODULE m
CONTAINS
  SUBROUTINE speak(x)
    REAL(8) :: x
    PRINT *, 'value is', x
  END SUBROUTINE speak
END MODULE m
"#;
    let e = engine(src);
    let out = e.run("speak", &[ArgVal::F(2.5)], ExecMode::Serial).unwrap();
    assert!(out.printed.contains("value is 2.500000"), "{}", out.printed);
}

#[test]
fn simulated_trace_has_region_with_imbalance_attribution() {
    let src = r#"
MODULE m
CONTAINS
  SUBROUTINE work(a, n)
    REAL(8), DIMENSION(1:100) :: a
    INTEGER :: n
    INTEGER :: i
    !$OMP PARALLEL DO DEFAULT(SHARED)
    DO i = 1, n
      a(i) = EXP(a(i)) + 1.0D0
    END DO
    !$OMP END PARALLEL DO
  END SUBROUTINE work
END MODULE m
"#;
    let e = engine(src);
    let a = ArgVal::array_f(&vec![0.1; 100], 1);
    let out = e
        .run("work", &[a, ArgVal::I(100)], ExecMode::Simulated { threads: 4 })
        .unwrap();
    assert_eq!(out.trace.region_count(), 1);
    let region = out
        .trace
        .events
        .iter()
        .find_map(|e| match e {
            TraceEvent::Region(r) => Some(r),
            _ => None,
        })
        .unwrap();
    assert_eq!(region.threads, 4);
    assert_eq!(region.trip, 100);
    // 100 iterations over 4 threads: every thread gets exactly 25 of the
    // transcendental ops.
    for (t, c) in region.per_thread.iter().enumerate() {
        assert_eq!(c.scalar.fspecial, 25, "thread {t}");
    }
}

#[test]
fn simulated_results_bit_identical_to_serial() {
    let src = r#"
MODULE m
CONTAINS
  REAL(8) FUNCTION chaos(a, n)
    REAL(8), DIMENSION(1:64) :: a
    INTEGER :: n
    REAL(8) :: acc
    INTEGER :: i
    acc = 0.0D0
    !$OMP PARALLEL DO REDUCTION(+:acc)
    DO i = 1, n
      acc = acc + SIN(a(i)) * COS(a(i)) / (1.0D0 + a(i)**2)
    END DO
    !$OMP END PARALLEL DO
    chaos = acc
  END FUNCTION chaos
END MODULE m
"#;
    let e = engine(src);
    let data: Vec<f64> = (0..64).map(|i| i as f64 * 0.173).collect();
    let serial = e
        .run("chaos", &[ArgVal::array_f(&data, 1), ArgVal::I(64)], ExecMode::Serial)
        .unwrap();
    let sim = e
        .run(
            "chaos",
            &[ArgVal::array_f(&data, 1), ArgVal::I(64)],
            ExecMode::Simulated { threads: 8 },
        )
        .unwrap();
    assert_eq!(serial.result, sim.result, "simulated must be bit-identical");
}

#[test]
fn vectorizable_loop_cost_lands_in_vector_bucket() {
    let src = r#"
MODULE m
CONTAINS
  SUBROUTINE axpy(a, b, n)
    REAL(8), DIMENSION(1:256) :: a, b
    INTEGER :: n
    INTEGER :: i
    DO i = 1, n
      a(i) = a(i) + 2.0D0 * b(i)
    END DO
  END SUBROUTINE axpy
  SUBROUTINE zinit(a, n)
    REAL(8), DIMENSION(1:256) :: a
    INTEGER :: n
    INTEGER :: i
    DO i = 1, n
      a(i) = 0.0D0
    END DO
  END SUBROUTINE zinit
END MODULE m
"#;
    let e = engine(src);
    let a = ArgVal::array_f(&vec![1.0; 256], 1);
    let b = ArgVal::array_f(&vec![1.0; 256], 1);
    let out = e
        .run("axpy", &[a.clone(), b, ArgVal::I(256)], ExecMode::Simulated { threads: 1 })
        .unwrap();
    let total = out.trace.total();
    assert!(total.vector.flop >= 512, "axpy flops vectorizable: {total:?}");
    assert_eq!(total.scalar.flop, 0, "no scalar flops expected: {total:?}");

    let out2 = e
        .run("zinit", &[a, ArgVal::I(256)], ExecMode::Simulated { threads: 1 })
        .unwrap();
    let t2 = out2.trace.total();
    assert_eq!(t2.memset_bytes, 256 * 8, "zero-init recognized as memset: {t2:?}");
}

#[test]
fn nested_parallel_regions_run_team_of_one() {
    let src = r#"
MODULE m
  REAL(8) :: acc
CONTAINS
  SUBROUTINE inner(k)
    INTEGER :: k
    INTEGER :: j
    !$OMP PARALLEL DO DEFAULT(SHARED)
    DO j = 1, 4
      !$OMP ATOMIC
      acc = acc + 1.0D0
    END DO
    !$OMP END PARALLEL DO
  END SUBROUTINE inner
  SUBROUTINE outer(n)
    INTEGER :: n
    INTEGER :: i
    !$OMP PARALLEL DO DEFAULT(SHARED)
    DO i = 1, n
      CALL inner(i)
    END DO
    !$OMP END PARALLEL DO
  END SUBROUTINE outer
END MODULE m
"#;
    for mode in ALL_MODES {
        let e = engine(src);
        e.run("outer", &[ArgVal::I(10)], mode).unwrap();
        assert_eq!(e.global_scalar("m::acc"), Some(Val::F(40.0)), "{mode:?}");
    }
    // Simulated trace records the nested forks.
    let e = engine(src);
    let out = e
        .run("outer", &[ArgVal::I(10)], ExecMode::Simulated { threads: 4 })
        .unwrap();
    let total = out.trace.total();
    assert_eq!(total.nested_forks, 10, "each inner call pays a nested fork");
}

#[test]
fn threadprivate_module_array_isolated_per_thread() {
    let src = r#"
MODULE m
  REAL(8), DIMENSION(1:4) :: buf
  !$OMP THREADPRIVATE(buf)
  REAL(8) :: merged
CONTAINS
  SUBROUTINE work(n)
    INTEGER :: n
    INTEGER :: i
    !$OMP PARALLEL DO DEFAULT(SHARED)
    DO i = 1, n
      buf(1) = buf(1) + 1.0D0
      !$OMP ATOMIC
      merged = merged + 1.0D0
    END DO
    !$OMP END PARALLEL DO
  END SUBROUTINE work
END MODULE m
"#;
    // With real threads, each thread bumps its own buf; merged counts all.
    let e = engine(src);
    e.run("work", &[ArgVal::I(100)], ExecMode::Parallel { threads: 4 })
        .unwrap();
    assert_eq!(e.global_scalar("m::merged"), Some(Val::F(100.0)));
    let buf0 = e.global_array("m::buf").unwrap();
    assert!(buf0.get_f(0) <= 100.0);
}

#[test]
fn function_called_in_expression() {
    let src = r#"
MODULE m
CONTAINS
  REAL(8) FUNCTION sq(x)
    REAL(8) :: x
    sq = x * x
  END FUNCTION sq
  REAL(8) FUNCTION quad(x)
    REAL(8) :: x
    quad = sq(sq(x)) + sq(x)
  END FUNCTION quad
END MODULE m
"#;
    let e = engine(src);
    let out = e.run("quad", &[ArgVal::F(2.0)], ExecMode::Serial).unwrap();
    assert_eq!(out.result, Some(Val::F(20.0)));
}

#[test]
fn parameter_constants_fold_into_dims_and_exprs() {
    let src = r#"
MODULE m
  INTEGER, PARAMETER :: nv = 6
  REAL(8), PARAMETER :: scale_f = 2.5D0
CONTAINS
  REAL(8) FUNCTION use_params()
    REAL(8), DIMENSION(1:nv) :: w
    INTEGER :: i
    DO i = 1, nv
      w(i) = i * scale_f
    END DO
    use_params = SUM(w)
  END FUNCTION use_params
END MODULE m
"#;
    let e = engine(src);
    let out = e.run("use_params", &[], ExecMode::Serial).unwrap();
    assert_eq!(out.result, Some(Val::F(21.0 * 2.5)));
}

#[test]
fn stop_statement_surfaces() {
    let src = r#"
MODULE m
CONTAINS
  SUBROUTINE halt(x)
    REAL(8) :: x
    IF (x > 0.0D0) STOP 'positive input'
    x = -x
  END SUBROUTINE halt
END MODULE m
"#;
    let e = engine(src);
    let err = e.run("halt", &[ArgVal::F(1.0)], ExecMode::Serial).unwrap_err();
    assert!(err.to_string().contains("positive input"));
    assert!(e.run("halt", &[ArgVal::F(-1.0)], ExecMode::Serial).is_ok());
}

#[test]
fn negative_step_and_stride() {
    let src = r#"
MODULE m
CONTAINS
  INTEGER FUNCTION walk()
    INTEGER :: i, acc
    acc = 0
    DO i = 10, 1, -2
      acc = acc + i
    END DO
    walk = acc
  END FUNCTION walk
END MODULE m
"#;
    let e = engine(src);
    let out = e.run("walk", &[], ExecMode::Serial).unwrap();
    assert_eq!(out.result, Some(Val::I(10 + 8 + 6 + 4 + 2)));
}

#[test]
fn private_clause_array_deep_copied_per_thread() {
    let src = r#"
MODULE m
CONTAINS
  SUBROUTINE hist(out, n)
    REAL(8), DIMENSION(1:4) :: out
    INTEGER :: n
    REAL(8), DIMENSION(1:4) :: scratch
    INTEGER :: i, k
    !$OMP PARALLEL DO DEFAULT(SHARED) PRIVATE(scratch, k)
    DO i = 1, n
      DO k = 1, 4
        scratch(k) = i * 1.0D0
      END DO
      !$OMP ATOMIC
      out(MOD(i, 4) + 1) = out(MOD(i, 4) + 1) + scratch(1) / scratch(2)
    END DO
    !$OMP END PARALLEL DO
  END SUBROUTINE hist
END MODULE m
"#;
    for mode in ALL_MODES {
        let e = engine(src);
        let out = ArgVal::array_f(&[0.0; 4], 1);
        e.run("hist", &[out.clone(), ArgVal::I(400)], mode).unwrap();
        let h = out.handle().unwrap();
        for k in 0..4 {
            assert_eq!(h.get_f(k), 100.0, "{mode:?} bin {k}");
        }
    }
}
