//! Property tests for the [`fortrans::ArtifactCache`]: source-hash
//! keying, LRU eviction order, the capacity invariant, and monotone
//! hit/miss/eviction accounting — checked against a reference LRU model
//! under randomized compile sequences.

use std::sync::Arc;

use fortrans::{source_hash, ArtifactCache};
use proptest::prelude::*;

/// A pool of small, distinct, valid programs. Index `i` yields a unique
/// source text (and therefore a unique source hash).
fn program(i: usize) -> String {
    format!(
        r#"
MODULE m{i}
CONTAINS
  REAL(8) FUNCTION f{i}(x)
    REAL(8) :: x
    f{i} = x * {i}.0D0 + {i}
  END FUNCTION f{i}
END MODULE m{i}
"#
    )
}

#[test]
fn same_source_returns_the_same_arc() {
    let cache = ArtifactCache::new(4);
    let src = program(1);
    let a = cache.get_or_compile(&[&src]).unwrap();
    let b = cache.get_or_compile(&[&src]).unwrap();
    assert!(Arc::ptr_eq(&a, &b), "hit must return the identical artifact");
    assert_eq!((cache.hits(), cache.misses()), (1, 1));
    assert_eq!(a.source_hash(), source_hash(&[&src]));
}

#[test]
fn whitespace_distinct_sources_are_distinct_entries() {
    let cache = ArtifactCache::new(4);
    let src = program(2);
    let spaced = format!("{src}\n"); // same program, different text
    let a = cache.get_or_compile(&[&src]).unwrap();
    let b = cache.get_or_compile(&[&spaced]).unwrap();
    assert_ne!(source_hash(&[&src]), source_hash(&[&spaced]));
    assert!(!Arc::ptr_eq(&a, &b), "textually distinct sources get distinct artifacts");
    assert_eq!(cache.len(), 2);
    assert_eq!(cache.misses(), 2);
}

#[test]
fn multi_file_hash_is_order_and_boundary_sensitive() {
    let (a, b) = (program(3), program(4));
    assert_ne!(source_hash(&[&a, &b]), source_hash(&[&b, &a]), "file order matters");
    let joined = format!("{a}{b}");
    assert_ne!(
        source_hash(&[&a, &b]),
        source_hash(&[&joined]),
        "file boundaries are part of the key"
    );
}

/// Reference LRU model: front = least recently used, back = most recent.
struct ModelLru {
    cap: usize,
    order: Vec<u64>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl ModelLru {
    fn new(cap: usize) -> ModelLru {
        ModelLru { cap: cap.max(1), order: Vec::new(), hits: 0, misses: 0, evictions: 0 }
    }

    fn access(&mut self, hash: u64) {
        if let Some(pos) = self.order.iter().position(|&h| h == hash) {
            self.order.remove(pos);
            self.order.push(hash);
            self.hits += 1;
        } else {
            self.misses += 1;
            if self.order.len() == self.cap {
                self.order.remove(0);
                self.evictions += 1;
            }
            self.order.push(hash);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Randomized compile sequences over a pool of 6 distinct programs
    /// against caches of capacity 1..4: the cache must match the
    /// reference model access for access — LRU order (via `lru_hashes`),
    /// the capacity invariant, counter values, and the accounting
    /// identity `misses == len + evictions`. Counters are checked
    /// monotone at every step.
    #[test]
    fn cache_matches_the_reference_lru_model(
        cap in 1usize..5,
        seq in prop::collection::vec(0usize..6, 1..40),
    ) {
        let sources: Vec<String> = (0..6).map(program).collect();
        let hashes: Vec<u64> = sources.iter().map(|s| source_hash(&[s.as_str()])).collect();
        let cache = ArtifactCache::new(cap);
        let mut model = ModelLru::new(cap);
        let (mut last_hits, mut last_misses, mut last_evictions) = (0u64, 0u64, 0u64);
        for &i in &seq {
            let artifact = cache.get_or_compile(&[sources[i].as_str()]).unwrap();
            prop_assert_eq!(artifact.source_hash(), hashes[i]);
            model.access(hashes[i]);

            // Exact agreement with the model after every access.
            prop_assert_eq!(cache.lru_hashes(), model.order.clone());
            prop_assert_eq!(cache.len(), model.order.len());
            prop_assert!(cache.len() <= cache.capacity(), "capacity invariant");
            prop_assert_eq!(cache.hits(), model.hits);
            prop_assert_eq!(cache.misses(), model.misses);
            prop_assert_eq!(cache.evictions(), model.evictions);

            // Monotonicity, and exactly one counter ticks per access.
            let ticked = (cache.hits() - last_hits) + (cache.misses() - last_misses);
            prop_assert_eq!(ticked, 1, "exactly one hit-or-miss per access");
            prop_assert!(cache.evictions() >= last_evictions);
            (last_hits, last_misses, last_evictions) =
                (cache.hits(), cache.misses(), cache.evictions());
        }
        prop_assert_eq!(cache.misses(), cache.len() as u64 + cache.evictions());
    }

    /// A re-compiled evicted program is a fresh artifact; an entry still
    /// resident keeps its identity across unrelated accesses.
    #[test]
    fn resident_entries_keep_identity_and_evicted_ones_do_not(
        filler in prop::collection::vec(1usize..6, 1..10),
    ) {
        let keep = program(0);
        let cache = ArtifactCache::new(2);
        let first = cache.get_or_compile(&[&keep]).unwrap();
        let mut resident = true;
        for &i in &filler {
            let src = program(i);
            cache.get_or_compile(&[src.as_str()]).unwrap();
            // Touch the kept entry only while it is still resident.
            if resident && cache.lru_hashes().contains(&first.source_hash()) {
                let again = cache.get_or_compile(&[&keep]).unwrap();
                prop_assert!(Arc::ptr_eq(&first, &again), "resident entry keeps its Arc");
            } else {
                resident = false;
            }
        }
        if !resident {
            let fresh = cache.get_or_compile(&[&keep]).unwrap();
            prop_assert!(!Arc::ptr_eq(&first, &fresh), "evicted entry recompiles fresh");
            prop_assert_eq!(fresh.source_hash(), first.source_hash());
        }
    }
}

// ---------------------------------------------------------------------
// Size-aware eviction (byte budget)
// ---------------------------------------------------------------------

#[test]
fn byte_budget_zero_keeps_only_the_newest_entry() {
    // Every artifact is over a 0-byte budget, but the newest entry is
    // always kept: the cache degenerates to capacity 1 by bytes.
    let cache = ArtifactCache::with_byte_budget(8, 0);
    assert_eq!(cache.byte_budget(), Some(0));
    for i in 10..14 {
        let src = program(i);
        cache.get_or_compile(&[&src]).unwrap();
        assert_eq!(cache.len(), 1, "budget 0 keeps exactly the newest artifact");
    }
    assert_eq!(cache.evictions(), 3);
}

#[test]
fn byte_budget_evicts_lru_first_and_tracks_bytes() {
    let one = {
        let probe = ArtifactCache::new(1);
        let src = program(20);
        probe.get_or_compile(&[&src]).unwrap().estimated_bytes()
    };
    assert!(one > 0, "artifacts report a nonzero size estimate");
    // Room for roughly two artifacts of this shape.
    let cache = ArtifactCache::with_byte_budget(16, one * 2 + one / 2);
    let srcs: Vec<String> = (21..25).map(program).collect();
    for src in &srcs {
        cache.get_or_compile(&[src]).unwrap();
        assert!(
            cache.len() == 1 || cache.bytes() <= one * 2 + one / 2,
            "cache over byte budget with multiple entries"
        );
    }
    // The survivors are the most recently inserted; LRU went first.
    let order = cache.lru_hashes();
    let last = source_hash(&[srcs.last().unwrap()]);
    assert_eq!(order.last().copied(), Some(last), "newest artifact survives");
    assert!(!order.contains(&source_hash(&[&srcs[0]])), "oldest artifact evicted");
    assert!(cache.evictions() >= 2);
}

#[test]
fn entry_cap_still_applies_with_a_generous_byte_budget() {
    let cache = ArtifactCache::with_byte_budget(2, usize::MAX);
    for i in 30..35 {
        let src = program(i);
        cache.get_or_compile(&[&src]).unwrap();
    }
    assert_eq!(cache.len(), 2, "entry capacity binds when bytes do not");
}

// ---------------------------------------------------------------------
// Quarantine ledger / circuit breaker
// ---------------------------------------------------------------------

use fortrans::{QuarantineMode, QuarantinePolicy};

#[test]
fn breaker_trips_at_threshold_and_only_clears_explicitly() {
    let cache = ArtifactCache::new(4);
    cache.set_quarantine_policy(Some(QuarantinePolicy {
        threshold: 3,
        mode: QuarantineMode::Refuse,
    }));
    let h = 0xABCD;
    cache.record_fault(h, false);
    cache.record_fault(h, true);
    assert!(!cache.is_quarantined(h), "below threshold");
    assert_eq!(cache.fault_counts(h), (1, 1));
    cache.record_fault(h, false);
    assert!(cache.is_quarantined(h), "threshold reached");
    assert_eq!(cache.quarantined_hashes(), vec![h]);
    // Disabling the policy does NOT close an open breaker.
    cache.set_quarantine_policy(None);
    assert!(cache.is_quarantined(h));
    assert!(cache.clear_quarantine(h), "clear reports the breaker was open");
    assert!(!cache.is_quarantined(h));
    assert_eq!(cache.fault_counts(h), (0, 0), "clear zeroes the ledger entry");
    assert!(!cache.clear_quarantine(h), "second clear is a no-op");
}

#[test]
fn fault_ledger_survives_eviction() {
    // Quarantine is keyed by source hash, not cache residency: evicting
    // an artifact must not launder its fault history.
    let cache = ArtifactCache::new(1);
    cache.set_quarantine_policy(Some(QuarantinePolicy {
        threshold: 2,
        mode: QuarantineMode::Refuse,
    }));
    let src = program(40);
    let h = cache.get_or_compile(&[&src]).unwrap().source_hash();
    cache.record_fault(h, false);
    // Evict it by inserting another artifact into the 1-entry cache.
    let other = program(41);
    cache.get_or_compile(&[&other]).unwrap();
    assert!(!cache.lru_hashes().contains(&h), "artifact evicted");
    cache.record_fault(h, false);
    assert!(cache.is_quarantined(h), "faults recorded across eviction trip the breaker");
}

#[test]
fn faults_without_a_policy_count_but_never_trip() {
    let cache = ArtifactCache::new(4);
    let h = 0x77;
    for _ in 0..100 {
        cache.record_fault(h, false);
    }
    assert_eq!(cache.fault_counts(h), (100, 0));
    assert!(!cache.is_quarantined(h), "no policy, no breaker");
}
