//! Tier-interaction tests for the native (tier-3) execution path:
//! cancellation and deadlines must trip *inside* JIT'd loops, session
//! recycling must scrub native-run state, guard-failure deopts must be
//! counted and surfaced through `run_profiled`, and concurrent sessions
//! sharing one native cache must stay bit-identical to the oracle.
//!
//! Every test runs on every platform: where the JIT backend is
//! unavailable (`!fortrans::jit::available()`), `ExecTier::Native`
//! falls through to the VM tiers, every behavioral assertion still
//! holds, and only the native-counter assertions are gated.

use std::sync::Arc;
use std::time::Duration;

use fortrans::{
    ArgVal, CancelToken, Engine, EngineService, ExecMode, ExecTier, RunLimits, ScalarTy, Val,
};

/// A long vectorizable reduction — the same shape `run_limits` meters;
/// promoted to native code on its first entry under `ExecTier::Native`.
const SPIN: &str = r#"
MODULE m
CONTAINS
  SUBROUTINE spin(n, out)
    INTEGER :: n
    REAL(8), DIMENSION(1:1) :: out
    REAL(8) :: acc
    INTEGER :: i
    acc = 0.0D0
    DO i = 1, n
      acc = acc + SQRT(i * 1.0D0)
    END DO
    out(1) = acc
  END SUBROUTINE spin
END MODULE m
"#;

fn spin_args(n: i64) -> (Vec<ArgVal>, ArgVal) {
    let out = ArgVal::array_f(&[0.0], 1);
    (vec![ArgVal::I(n), out.clone()], out)
}

#[test]
fn cancel_token_fires_inside_native_loop() {
    let engine = Engine::compile(&[SPIN]).unwrap();
    let token = CancelToken::new();
    engine.set_cancel_token(Some(Arc::clone(&token)));
    let (args, _out) = spin_args(2_000_000_000);
    let arm = Arc::clone(&token);
    let watchdog = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(40));
        arm.cancel("tier-3 watchdog");
    });
    let err = engine
        .run_tiered("spin", &args, ExecMode::Serial, ExecTier::Native)
        .expect_err("a 2e9-iteration loop must not outrun the token");
    watchdog.join().unwrap();
    let msg = err.to_string();
    assert!(msg.contains("cancelled"), "unexpected error: {msg}");
    assert!(msg.contains("tier-3 watchdog"), "reason lost: {msg}");
    if fortrans::jit::available() {
        assert!(
            engine.native_entry_count() > 0,
            "cancellation should have interrupted a *native* loop entry"
        );
    }
}

#[test]
fn deadline_trips_inside_native_loop() {
    let mut engine = Engine::compile(&[SPIN]).unwrap();
    engine.set_limits(RunLimits {
        deadline: Some(Duration::from_millis(25)),
        ..RunLimits::default()
    });
    let (args, _out) = spin_args(2_000_000_000);
    let err = engine
        .run_tiered("spin", &args, ExecMode::Serial, ExecTier::Native)
        .expect_err("deadline must trip mid-loop");
    assert!(err.to_string().contains("deadline exceeded"), "{err}");
    if fortrans::jit::available() {
        assert!(
            engine.native_entry_count() > 0,
            "the deadline should have interrupted a *native* loop entry"
        );
    }
}

#[test]
fn step_budget_and_results_agree_with_oracle() {
    // Tight budget: the native tier pre-reserves the whole trip count,
    // sees it cannot fit, and falls through so the scalar loop trips
    // with the stock error at the exact iteration — same text as Vm.
    let mut engine = Engine::compile(&[SPIN]).unwrap();
    engine.set_limits(RunLimits { max_steps: Some(1_000), ..RunLimits::default() });
    let (args, _out) = spin_args(1_000_000);
    let err = engine
        .run_tiered("spin", &args, ExecMode::Serial, ExecTier::Native)
        .expect_err("budget trips");
    assert!(err.to_string().contains("step budget of 1000 exhausted"), "{err}");

    // Generous budget: the native answer is bit-identical to the
    // tree-walking oracle.
    let mut native = Engine::compile(&[SPIN]).unwrap();
    native.set_limits(RunLimits { max_steps: Some(100_000_000), ..RunLimits::default() });
    let (nargs, nout) = spin_args(100_000);
    native.run_tiered("spin", &nargs, ExecMode::Serial, ExecTier::Native).unwrap();
    let oracle = Engine::compile(&[SPIN]).unwrap();
    let (oargs, oout) = spin_args(100_000);
    oracle.run_tiered("spin", &oargs, ExecMode::Serial, ExecTier::TreeWalk).unwrap();
    assert_eq!(
        nout.handle().unwrap().get_bits(0),
        oout.handle().unwrap().get_bits(0),
        "native result must be bit-identical to the oracle"
    );
    if fortrans::jit::available() {
        assert!(native.native_entry_count() > 0, "loop never promoted");
        assert_eq!(native.native_deopt_count(), 0, "clean run must not deopt");
    }
}

/// Statically vectorizable, dynamically alias-hazardous: `a` and `b`
/// are distinct parameters, so the analyzer emits a `VecLoop`, but the
/// caller may pass one array for both — only the runtime entry guard
/// can see that.
const SHIFT: &str = r#"
MODULE m
CONTAINS
  SUBROUTINE shift(a, b)
    REAL(8), DIMENSION(1:64) :: a, b
    INTEGER :: i
    DO i = 1, 63
      a(i) = b(i + 1) * 2.0D0 + 1.0D0
    END DO
  END SUBROUTINE shift
END MODULE m
"#;

#[test]
fn aliased_streams_deopt_and_match_oracle() {
    let init: Vec<f64> = (1..=64).map(|k| k as f64).collect();

    // Aliased call: same handle for both parameters. The promoted
    // region's entry guard must refuse (write a(i) overlaps read
    // b(i+1) in the same storage) and the scalar path must produce
    // exactly what the oracle produces for the same aliased call.
    let native = Engine::compile(&[SHIFT]).unwrap();
    let arr = ArgVal::array_f(&init, 1);
    native
        .run_tiered("shift", &[arr.clone(), arr.clone()], ExecMode::Serial, ExecTier::Native)
        .unwrap();

    let oracle = Engine::compile(&[SHIFT]).unwrap();
    let oarr = ArgVal::array_f(&init, 1);
    oracle
        .run_tiered("shift", &[oarr.clone(), oarr.clone()], ExecMode::Serial, ExecTier::TreeWalk)
        .unwrap();

    let (nh, oh) = (arr.handle().unwrap(), oarr.handle().unwrap());
    for k in 0..64 {
        assert_eq!(nh.get_bits(k), oh.get_bits(k), "aliased element {k} diverges from oracle");
    }
    if fortrans::jit::available() {
        assert!(native.native_deopt_count() >= 1, "alias guard failure must count as a deopt");
        assert_eq!(native.native_entry_count(), 0, "aliased entries must never commit");
    }

    // Distinct arrays: the same session now passes the guard and runs
    // natively (the compiled region was cached by the deopted call).
    let (a, b) = (ArgVal::array_f(&init, 1), ArgVal::array_f(&init, 1));
    native.run_tiered("shift", &[a.clone(), b], ExecMode::Serial, ExecTier::Native).unwrap();
    assert_eq!(a.handle().unwrap().get_f(0), 2.0 * 2.0 + 1.0);
    if fortrans::jit::available() {
        assert!(native.native_entry_count() > 0, "unaliased call should run natively");
    }
}

#[test]
fn run_profiled_surfaces_native_counters() {
    let engine = Engine::compile(&[SHIFT]).unwrap();
    let init: Vec<f64> = (1..=64).map(|k| k as f64).collect();

    // One deopting (aliased) call and one committing (clean) call...
    let arr = ArgVal::array_f(&init, 1);
    engine
        .run_tiered("shift", &[arr.clone(), arr.clone()], ExecMode::Serial, ExecTier::Native)
        .unwrap();
    let (a, b) = (ArgVal::array_f(&init, 1), ArgVal::array_f(&init, 1));
    engine.run_tiered("shift", &[a, b], ExecMode::Serial, ExecTier::Native).unwrap();

    // ...then a profiled run. Profiled runs themselves take the scalar
    // path (they want per-iteration loop events), but the profile must
    // surface the session-lifetime native entry/deopt counters.
    let (c, d) = (ArgVal::array_f(&init, 1), ArgVal::array_f(&init, 1));
    let (_out, profile) = engine
        .run_profiled("shift", &[c, d], ExecMode::Serial, ExecTier::Native)
        .unwrap();
    assert_eq!(profile.native_entries, engine.native_entry_count());
    assert_eq!(profile.native_deopts, engine.native_deopt_count());
    if fortrans::jit::available() {
        assert!(profile.native_entries >= 1, "profile lost the native entry count");
        assert!(profile.native_deopts >= 1, "profile lost the native deopt count");
    }
    // The round-trip encoding keeps them too.
    let back = fortrans::Profile::from_json(&profile.to_json()).unwrap();
    assert_eq!(back.native_entries, profile.native_entries);
    assert_eq!(back.native_deopts, profile.native_deopts);
}

/// Module globals mutated by vectorizable loops: a filled table plus a
/// reduction total, both touched natively.
const ACCUM: &str = r#"
MODULE state
  REAL(8), DIMENSION(1:128) :: tbl
  REAL(8) :: total
END MODULE state
MODULE m
CONTAINS
  SUBROUTINE accum(x)
    USE state
    REAL(8) :: x
    INTEGER :: i
    DO i = 1, 128
      tbl(i) = tbl(i) + x * (i * 1.0D0)
    END DO
    total = 0.0D0
    DO i = 1, 128
      total = total + tbl(i)
    END DO
  END SUBROUTINE accum
END MODULE m
"#;

fn global_bits(engine: &Engine) -> Vec<(String, Vec<u64>)> {
    let mut names = engine.global_names();
    names.sort();
    names
        .into_iter()
        .map(|name| {
            let bits = if let Some(v) = engine.global_scalar(&name) {
                match v {
                    Val::F(f) => vec![f.to_bits()],
                    Val::I(i) => vec![i as u64],
                    Val::B(b) => vec![b as u64],
                }
            } else if let Some(h) = engine.global_array(&name) {
                assert_eq!(h.ty, ScalarTy::F);
                (0..h.len()).map(|k| h.get_bits(k)).collect()
            } else {
                Vec::new()
            };
            (name, bits)
        })
        .collect()
}

#[test]
fn reset_globals_after_native_run_matches_fresh_session() {
    let run = |e: &Engine, x: f64| {
        e.run_tiered("accum", &[ArgVal::F(x)], ExecMode::Serial, ExecTier::Native).unwrap()
    };

    // Dirty a session with two native runs, then reset and run once.
    let mut recycled = Engine::compile(&[ACCUM]).unwrap();
    run(&recycled, 3.0);
    run(&recycled, 7.0);
    recycled.reset_globals();
    run(&recycled, 1.5);

    // A fresh session's single run must match bit-for-bit — and so
    // must the tree-walking oracle's view of the same program.
    let fresh = Engine::compile(&[ACCUM]).unwrap();
    run(&fresh, 1.5);
    assert_eq!(global_bits(&recycled), global_bits(&fresh), "reset session diverged from fresh");

    let oracle = Engine::compile(&[ACCUM]).unwrap();
    oracle.run_tiered("accum", &[ArgVal::F(1.5)], ExecMode::Serial, ExecTier::TreeWalk).unwrap();
    assert_eq!(global_bits(&fresh), global_bits(&oracle), "native globals diverged from oracle");

    if fortrans::jit::available() {
        assert!(recycled.native_entry_count() > 0, "loops never promoted");
    }
}

#[test]
fn eight_thread_native_stress_is_bit_identical() {
    const THREADS: usize = 8;
    const REPS: usize = 12;

    let service = EngineService::new(16);
    let artifact = service.compile(&[SPIN]).expect("spin compiles");

    // Scalar baseline: native off, plain VM, one fresh session.
    let baseline = {
        let session = service.session_for(&artifact);
        session.set_native_enabled(false);
        let (args, out) = spin_args(20_000);
        session.run_tiered("spin", &args, ExecMode::Serial, ExecTier::Vm).unwrap();
        out.handle().unwrap().get_bits(0)
    };

    // Eight sessions over the same artifact hammer the shared native
    // cache concurrently; every result must be bit-identical to the
    // scalar baseline, and no run may deopt or fall back.
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let service = &service;
            let artifact = artifact.clone();
            scope.spawn(move || {
                let session = service.session_for(&artifact);
                for rep in 0..REPS {
                    let (args, out) = spin_args(20_000);
                    let run = session
                        .run_tiered("spin", &args, ExecMode::Serial, ExecTier::Native)
                        .unwrap_or_else(|e| panic!("thread {t} rep {rep}: {e}"));
                    assert!(run.fallback.is_none(), "thread {t} rep {rep}: fell back");
                    assert_eq!(
                        out.handle().unwrap().get_bits(0),
                        baseline,
                        "thread {t} rep {rep}: native result diverged"
                    );
                }
                if fortrans::jit::available() {
                    assert!(
                        session.native_entry_count() >= REPS as u64,
                        "thread {t}: every rep should have entered natively"
                    );
                    assert_eq!(session.native_deopt_count(), 0, "thread {t}: unexpected deopt");
                }
            });
        }
    });
}
