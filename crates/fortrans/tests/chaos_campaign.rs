//! Chaos campaign integration tests, including the PR's acceptance
//! batch: 30 mixed jobs — hung, trapping, bytecode-corrupted, and clean
//! — through one queue, with every clean job bit-equal to a quiet
//! baseline, every bad job returning a structured [`JobResult`] naming
//! the policy action, and the pools still usable afterwards.

use std::time::Duration;

use fortrans::chaos::{self, CampaignConfig};
use fortrans::{
    ArgVal, EngineService, ExecMode, ExecTier, Job, JobPolicy, PolicyAction, QuarantineMode,
    QuarantinePolicy, RunError, RunLimits, Session,
};

#[test]
fn refuse_mode_campaign_survives() {
    let report = chaos::run_campaign(&CampaignConfig {
        rounds: 5,
        jobs_per_round: 10,
        ..CampaignConfig::default()
    });
    assert!(report.ok(), "violations: {:#?}", report.violations);
    assert!(report.injected_total() >= 30, "campaign too quiet: {:?}", report.injected);
    assert!(report.watchdog_fired >= 1, "no deadline ever fired");
    assert!(report.actions.contains_key("completed"));
    assert!(report.actions.contains_key("cancelled"));
}

#[test]
fn quarantine_off_campaign_survives() {
    let report = chaos::run_campaign(&CampaignConfig {
        seed: 0xDEAD_BEEF,
        rounds: 4,
        jobs_per_round: 8,
        quarantine: None,
        ..CampaignConfig::default()
    });
    assert!(report.ok(), "violations: {:#?}", report.violations);
}

/// The acceptance batch: 30 jobs, mixed clean/hung/trapping/corrupted,
/// one queue, one drain.
#[test]
fn thirty_job_mixed_batch_acceptance() {
    let service = EngineService::new(16);
    service.set_quarantine_policy(Some(QuarantinePolicy {
        threshold: 64, // high: this test exercises policies, not the breaker
        mode: QuarantineMode::Refuse,
    }));

    let corpus = chaos::base_corpus();
    let arts: Vec<_> = corpus
        .iter()
        .map(|p| service.compile(&[p.source.as_str()]).expect("corpus compiles"))
        .collect();
    let hog = service.compile(&[chaos::hog_source("acceptance").as_str()]).expect("hog compiles");

    // Quiet per-(program, mode) baselines from solo sessions.
    let mut baselines = std::collections::BTreeMap::new();
    for (pi, prog) in corpus.iter().enumerate() {
        for (mk, mode) in [(0usize, ExecMode::Serial), (1, ExecMode::Parallel { threads: 2 })] {
            let session = Session::solo(arts[pi].clone());
            let (args, out) = chaos::make_args(prog.entry);
            session.run_tiered(prog.entry, &args, mode, ExecTier::Vm).expect("baseline");
            baselines.insert((pi, mk), chaos::out_bits(&out));
        }
    }

    #[derive(Debug, Clone, Copy, PartialEq)]
    enum Plan {
        Clean { base: usize, mk: usize },
        Hung,
        Trap { base: usize },
        Corrupt,
    }

    let mut queue = service.queue(4);
    let mut plans: Vec<(Plan, ArgVal)> = Vec::new();
    for j in 0..30 {
        match j % 6 {
            // 15 clean jobs across programs and modes.
            0 | 2 | 4 => {
                let base = j % corpus.len();
                let mode = if j % 4 == 0 && base != 2 {
                    ExecMode::Parallel { threads: 2 }
                } else {
                    ExecMode::Serial
                };
                let mk = matches!(mode, ExecMode::Parallel { .. }) as usize;
                let (args, out) = chaos::make_args(corpus[base].entry);
                queue.submit(&arts[base], Job::new(corpus[base].entry, args).mode(mode));
                plans.push((Plan::Clean { base, mk }, out));
            }
            // 5 hung jobs: watchdog must cancel them.
            1 => {
                let (args, out) = chaos::make_args("spin");
                queue.submit(
                    &hog,
                    Job::new("spin", args)
                        .limits(RunLimits {
                            deadline: Some(Duration::from_secs(2)),
                            ..RunLimits::default()
                        })
                        .policy(JobPolicy {
                            deadline: Some(Duration::from_millis(30)),
                            ..JobPolicy::default()
                        }),
                );
                plans.push((Plan::Hung, out));
            }
            // 5 trapping jobs: oracle fallback recovers bit-equal.
            3 => {
                let (args, out) = chaos::make_args(corpus[0].entry);
                queue.submit(&arts[0], Job::new(corpus[0].entry, args).debug_force_trap());
                plans.push((Plan::Trap { base: 0 }, out));
            }
            // 5 corrupted-bytecode jobs: structured result, no bleed.
            _ => {
                let mut bunits = (*arts[1].bytecode(false)).clone();
                let _ = fortrans::verify::mutate::corrupt(&mut bunits, 0x1000 + j as u64);
                let (args, out) = chaos::make_args(corpus[1].entry);
                queue.submit(
                    &arts[1],
                    Job::new(corpus[1].entry, args).debug_inject_bytecode(false, bunits),
                );
                plans.push((Plan::Corrupt, out));
            }
        }
    }

    let report = queue.run_batch_report();
    assert_eq!(report.results.len(), 30, "queue must drain all 30 jobs");

    for (j, ((plan, out), jr)) in plans.iter().zip(&report.results).enumerate() {
        match plan {
            Plan::Clean { base, mk } => {
                let ok = jr.result.as_ref().unwrap_or_else(|e| panic!("clean job {j}: {e}"));
                assert!(ok.fallback.is_none(), "clean job {j} fell back");
                assert_eq!(jr.action, PolicyAction::Completed, "clean job {j}");
                assert_eq!(
                    chaos::out_bits(out),
                    baselines[&(*base, *mk)],
                    "clean job {j} diverged from quiet baseline"
                );
            }
            Plan::Hung => {
                let err = jr.result.as_ref().expect_err("hung job must not complete");
                assert!(
                    matches!(err.root(), RunError::Cancelled { .. }),
                    "hung job {j}: expected Cancelled, got {err}"
                );
                assert_eq!(jr.action, PolicyAction::Cancelled, "hung job {j}");
                assert!(!jr.attempts.is_empty(), "hung job {j} logged no attempts");
            }
            Plan::Trap { base } => {
                let ok = jr.result.as_ref().unwrap_or_else(|e| panic!("trap job {j}: {e}"));
                assert!(ok.fallback.is_some(), "trap job {j} not diagnosed");
                assert_eq!(jr.action, PolicyAction::Completed, "trap job {j}");
                assert_eq!(
                    chaos::out_bits(out),
                    baselines[&(*base, 0)],
                    "trap job {j}: oracle recovery diverged"
                );
            }
            Plan::Corrupt => {
                // Structured either way; when the oracle recovered it,
                // the output matches the baseline.
                if let Ok(ok) = &jr.result {
                    if ok.fallback.is_some() {
                        assert_eq!(
                            chaos::out_bits(out),
                            baselines[&(1, 0)],
                            "corrupt job {j}: oracle recovery diverged"
                        );
                    }
                }
                assert!(
                    matches!(jr.action, PolicyAction::Completed | PolicyAction::Failed),
                    "corrupt job {j}: unexpected verdict {}",
                    jr.action
                );
            }
        }
    }
    assert!(report.watchdog_fired >= 5, "all five hung jobs should trip the watchdog");

    // No pool left unusable: a fresh all-clean batch on the same
    // service completes with zero faults.
    let mut queue = service.queue(4);
    let mut outs = Vec::new();
    for (pi, prog) in corpus.iter().enumerate() {
        let (args, out) = chaos::make_args(prog.entry);
        queue.submit(&arts[pi], Job::new(prog.entry, args).mode(ExecMode::Parallel { threads: 2 }));
        outs.push((pi, out));
    }
    for (k, jr) in queue.run_batch().iter().enumerate() {
        let ok = jr.result.as_ref().unwrap_or_else(|e| panic!("post-batch job {k}: {e}"));
        assert!(ok.fallback.is_none(), "post-batch job {k} fell back");
        let (pi, out) = &outs[k];
        assert_eq!(
            chaos::out_bits(out),
            baselines[&(*pi, 1)],
            "post-batch job {k} diverged — pool damaged by the chaos batch"
        );
    }
}

#[test]
fn policy_named_in_structured_results() {
    // Every policy action renders to a stable lowercase name the batch
    // reports aggregate on.
    for (action, name) in [
        (PolicyAction::Completed, "completed"),
        (PolicyAction::Retried, "retried"),
        (PolicyAction::Degraded, "degraded"),
        (PolicyAction::Cancelled, "cancelled"),
        (PolicyAction::Quarantined, "quarantined"),
        (PolicyAction::Failed, "failed"),
    ] {
        assert_eq!(action.to_string(), name);
    }
}
