//! Static bytecode verifier: targeted rejection corpus plus a
//! verify-everything sweep.
//!
//! Each rejection test takes *real* compiler output, breaks one
//! invariant by hand, and checks that [`fortrans::verify::verify_program`]
//! refuses the stream with a diagnostic naming the violation. The sweep
//! at the bottom compiles a corpus spanning the whole feature surface
//! and checks both bytecode variants (optimized and traced) verify
//! clean — the same check `Engine::compile` performs eagerly, asserted
//! here explicitly so a verifier regression fails loudly rather than
//! through some downstream test.

use fortrans::bytecode::{compile_program, BInstr, BUnit};
use fortrans::verify::verify_program;
use fortrans::Engine;

fn compiled(src: &str) -> (Engine, Vec<BUnit>) {
    let engine = Engine::compile(&[src]).expect("corpus program compiles");
    let bunits = compile_program(engine.program(), false);
    (engine, bunits)
}

fn reject_msg(engine: &Engine, bad: &[BUnit]) -> String {
    verify_program(engine.program(), bad)
        .expect_err("verifier accepts a corrupted stream")
        .to_string()
}

const BRANCHY: &str = r#"
MODULE m
CONTAINS
  REAL(8) FUNCTION pick(a, b, k)
    REAL(8) :: a, b
    INTEGER :: k
    INTEGER :: i
    pick = 0.0D0
    DO i = 1, k
      IF (MOD(i, 2) == 0) THEN
        pick = pick + a
      ELSE
        pick = pick - b
      END IF
    END DO
  END FUNCTION pick
END MODULE m
"#;

#[test]
fn rejects_branch_target_out_of_range() {
    let (engine, mut bad) = compiled(BRANCHY);
    let (u, pc) = bad
        .iter()
        .enumerate()
        .find_map(|(u, b)| {
            b.code
                .iter()
                .position(|i| matches!(i, BInstr::Jump(_) | BInstr::JumpIfFalse(_)))
                .map(|pc| (u, pc))
        })
        .expect("branchy program has a branch");
    let wild = bad[u].code.len() as u32 + 7;
    match &mut bad[u].code[pc] {
        BInstr::Jump(t) | BInstr::JumpIfFalse(t) => *t = wild,
        _ => unreachable!(),
    }
    let msg = reject_msg(&engine, &bad);
    assert!(msg.contains("out of range"), "got: {msg}");
    assert!(msg.contains("target"), "got: {msg}");
}

#[test]
fn rejects_scalar_slot_out_of_range() {
    let (engine, mut bad) = compiled(BRANCHY);
    let (u, pc) = bad
        .iter()
        .enumerate()
        .find_map(|(u, b)| {
            b.code
                .iter()
                .position(|i| matches!(i, BInstr::LoadF(_) | BInstr::StoreF(_)))
                .map(|pc| (u, pc))
        })
        .expect("program touches an f-slot");
    match &mut bad[u].code[pc] {
        BInstr::LoadF(s) | BInstr::StoreF(s) => *s = u32::MAX,
        _ => unreachable!(),
    }
    let msg = reject_msg(&engine, &bad);
    assert!(msg.contains("out of range"), "got: {msg}");
}

#[test]
fn rejects_operand_stack_underflow() {
    let (engine, mut bad) = compiled(BRANCHY);
    // Entry depth is zero; a binary op at pc 0 must underflow.
    bad[0].code[0] = BInstr::AddF;
    let msg = reject_msg(&engine, &bad);
    assert!(msg.contains("underflow"), "got: {msg}");
}

#[test]
fn rejects_unbalanced_stack_at_unit_end() {
    let (engine, mut bad) = compiled(BRANCHY);
    // A trailing push makes every fall-through path reach the unit end
    // with a non-empty operand stack.
    for b in &mut bad {
        b.code.push(BInstr::Const(0));
    }
    let msg = reject_msg(&engine, &bad);
    assert!(
        msg.contains("not empty at unit end") || msg.contains("non-empty stacks"),
        "got: {msg}"
    );
}

#[test]
fn rejects_zeroed_unchecked_do_stride() {
    // A module-global loop variable defeats the fused head: the compiler
    // proves the literal stride non-zero, pushes `Const(1)` and elides
    // the runtime check. Zeroing that constant must not verify.
    let src = r#"
MODULE gm
  INTEGER :: gi
CONTAINS
  SUBROUTINE gfill(a, n)
    REAL(8), DIMENSION(1:16) :: a
    INTEGER :: n
    DO gi = 1, n
      a(gi) = gi * 2.0D0
    END DO
  END SUBROUTINE gfill
END MODULE gm
"#;
    let (engine, mut bad) = compiled(src);
    let mut found = false;
    'outer: for b in &mut bad {
        for pc in 1..b.code.len() {
            if matches!(b.code[pc], BInstr::DoInit { check: false, .. })
                && matches!(b.code[pc - 1], BInstr::Const(_))
            {
                b.code[pc - 1] = BInstr::Const(0);
                found = true;
                break 'outer;
            }
        }
    }
    assert!(found, "expected an unchecked DoInit with a constant stride");
    let msg = reject_msg(&engine, &bad);
    assert!(msg.contains("non-zero"), "got: {msg}");
}

#[test]
fn rejects_call_arity_mismatch() {
    let src = r#"
MODULE m
CONTAINS
  SUBROUTINE bump(x, by)
    REAL(8) :: x, by
    x = x + by
  END SUBROUTINE bump
  SUBROUTINE driver(out)
    REAL(8), DIMENSION(1:1) :: out
    REAL(8) :: acc
    acc = 1.0D0
    CALL bump(acc, 2.5D0)
    out(1) = acc
  END SUBROUTINE driver
END MODULE m
"#;
    let (engine, mut bad) = compiled(src);
    let mut found = false;
    for b in &mut bad {
        if let Some(cs) = b.calls.iter_mut().find(|c| !c.args.is_empty()) {
            cs.args.pop();
            found = true;
            break;
        }
    }
    assert!(found, "driver program has a call with arguments");
    let msg = reject_msg(&engine, &bad);
    assert!(msg.contains("call"), "got: {msg}");
}

#[test]
fn rejects_omp_descriptor_without_dims() {
    let src = r#"
MODULE m
CONTAINS
  SUBROUTINE fill(a, n)
    REAL(8), DIMENSION(1:32) :: a
    INTEGER :: n
    INTEGER :: i
    !$OMP PARALLEL DO DEFAULT(SHARED)
    DO i = 1, n
      a(i) = i * 1.0D0
    END DO
    !$OMP END PARALLEL DO
  END SUBROUTINE fill
END MODULE m
"#;
    let (engine, mut bad) = compiled(src);
    let mut found = false;
    for b in &mut bad {
        if let Some(od) = b.omps.first_mut() {
            od.dims.clear();
            found = true;
            break;
        }
    }
    assert!(found, "program has an OMP descriptor");
    let msg = reject_msg(&engine, &bad);
    assert!(msg.contains("no loop dimensions"), "got: {msg}");
}

// ---------------------------------------------------------------------
// Verify-everything sweep.
// ---------------------------------------------------------------------

/// Feature-spanning corpus (subset of the differential suite's shapes):
/// every program must verify clean in both bytecode variants.
const SWEEP: &[(&str, &str)] = &[
    ("branchy", BRANCHY),
    (
        "value-result",
        r#"
MODULE m
CONTAINS
  SUBROUTINE bump(x)
    REAL(8) :: x
    x = x + 1.0D0
  END SUBROUTINE bump
  SUBROUTINE run2(out)
    REAL(8), DIMENSION(1:1) :: out
    REAL(8) :: t
    t = 10.0D0
    CALL bump(t)
    CALL bump(t)
    out(1) = t
  END SUBROUTINE run2
END MODULE m
"#,
    ),
    (
        "derived",
        r#"
MODULE fuliou_mod
  TYPE fuout_t
    REAL(8), DIMENSION(1:4) :: fd
    REAL(8) :: total
  END TYPE fuout_t
  TYPE(fuout_t) :: fo
END MODULE fuliou_mod
MODULE kernels
  USE fuliou_mod
CONTAINS
  SUBROUTINE fill()
    INTEGER :: i
    DO i = 1, 4
      fo%fd(i) = i * 10.0D0
    END DO
    fo%total = fo%fd(1) + fo%fd(2) + fo%fd(3) + fo%fd(4)
  END SUBROUTINE fill
END MODULE kernels
"#,
    ),
    (
        "common",
        r#"
MODULE m
CONTAINS
  SUBROUTINE both()
    REAL(8) :: cc
    REAL(8), DIMENSION(1:4) :: dd
    COMMON /rad/ cc, dd
    INTEGER :: i
    cc = 42.0D0
    DO i = 1, 4
      dd(i) = i * 1.0D0
    END DO
  END SUBROUTINE both
END MODULE m
"#,
    ),
    (
        "reduction",
        r#"
MODULE m
CONTAINS
  REAL(8) FUNCTION total(a, n)
    REAL(8), DIMENSION(1:100) :: a
    INTEGER :: n
    REAL(8) :: acc
    INTEGER :: i
    acc = 0.0D0
    !$OMP PARALLEL DO DEFAULT(SHARED) REDUCTION(+:acc)
    DO i = 1, n
      acc = acc + a(i)
    END DO
    !$OMP END PARALLEL DO
    total = acc
  END FUNCTION total
END MODULE m
"#,
    ),
    (
        "critical-atomic",
        r#"
MODULE accum_mod
  REAL(8), DIMENSION(1:4) :: bins
  REAL(8) :: grand
CONTAINS
  SUBROUTINE scatter(n)
    INTEGER :: n
    INTEGER :: i, b
    !$OMP PARALLEL DO DEFAULT(SHARED) PRIVATE(b)
    DO i = 1, n
      b = MOD(i, 4) + 1
      !$OMP ATOMIC
      bins(b) = bins(b) + 1.0D0
      !$OMP CRITICAL (tot)
      grand = grand + 1.0D0
      !$OMP END CRITICAL
    END DO
    !$OMP END PARALLEL DO
  END SUBROUTINE scatter
END MODULE accum_mod
"#,
    ),
    (
        "collapse",
        r#"
MODULE m
CONTAINS
  SUBROUTINE fill(a)
    REAL(8), DIMENSION(1:2, 1:60) :: a
    INTEGER :: i, j
    !$OMP PARALLEL DO DEFAULT(SHARED) COLLAPSE(2)
    DO i = 1, 2
      DO j = 1, 60
        a(i, j) = i * 100.0D0 + j
      END DO
    END DO
    !$OMP END PARALLEL DO
  END SUBROUTINE fill
END MODULE m
"#,
    ),
    (
        "alloc-print-stop",
        r#"
MODULE m
CONTAINS
  SUBROUTINE scratch(n, out)
    INTEGER :: n
    REAL(8), DIMENSION(1:1) :: out
    REAL(8), DIMENSION(:), ALLOCATABLE :: w
    INTEGER :: i
    IF (n < 1) THEN
      STOP 'bad n'
    END IF
    ALLOCATE(w(1:n))
    DO i = 1, n
      w(i) = i * 0.5D0
    END DO
    out(1) = w(1) + w(n)
    PRINT *, 'scratch done', out(1)
    DEALLOCATE(w)
  END SUBROUTINE scratch
END MODULE m
"#,
    ),
    (
        "recursion",
        r#"
MODULE m
CONTAINS
  INTEGER FUNCTION ping(n)
    INTEGER :: n
    IF (n <= 0) THEN
      ping = 0
    ELSE
      ping = pong(n - 1) + 1
    END IF
  END FUNCTION ping
  INTEGER FUNCTION pong(n)
    INTEGER :: n
    IF (n <= 0) THEN
      pong = 0
    ELSE
      pong = ping(n - 1) + 1
    END IF
  END FUNCTION pong
END MODULE m
"#,
    ),
];

#[test]
fn every_corpus_program_verifies_in_both_variants() {
    for (label, src) in SWEEP {
        let engine =
            Engine::compile(&[src]).unwrap_or_else(|e| panic!("{label} compiles: {e}"));
        for traced in [false, true] {
            let bunits = compile_program(engine.program(), traced);
            verify_program(engine.program(), &bunits).unwrap_or_else(|e| {
                panic!("{label} (traced={traced}) fails verification: {e}")
            });
        }
    }
}

/// The pristine compiler output for the rejection programs also
/// verifies — i.e. the rejections above really come from the injected
/// corruption, not a pre-existing violation.
#[test]
fn rejection_baselines_are_clean() {
    let (engine, bunits) = compiled(BRANCHY);
    verify_program(engine.program(), &bunits).expect("baseline verifies");
}
