//! Golden tests for fixed-form front-end diagnostics.
//!
//! Each case pins the *exact* rendered output of
//! [`fortrans::Diagnostics::render`] — message text, help hints, file
//! indices and line numbers — so diagnostics cannot silently regress.
//! The same malformed sources are also pushed through the service batch
//! path to prove the full multi-error report reaches `Rejected` job
//! results, not just direct [`Engine::compile`] callers.

use fortrans::{CompileError, Engine, EngineService, Job, ProgramSet, RunError};

/// Compiles and returns the accumulated diagnostics, panicking if the
/// front end accepted the sources.
fn expect_fixed_err(sources: &[&str]) -> fortrans::Diagnostics {
    match Engine::compile(sources) {
        Ok(_) => panic!("sources unexpectedly compiled"),
        Err(CompileError::Fixed { diags }) => diags,
        Err(e) => panic!("expected CompileError::Fixed, got: {e}"),
    }
}

#[test]
fn golden_bad_continuation() {
    // Line 2 is a continuation card with nothing before it; line 5
    // carries a label on a continuation card. Both recover and both are
    // reported in one pass.
    let src = "\n     &X = 1\n      K = 1\n      END\n";
    let diags = expect_fixed_err(&[src]);
    assert_eq!(
        diags.render(),
        "file 0, line 2: error: continuation line has nothing to continue\n\
         \x20 help: column 6 must be blank or `0` on an initial line"
    );

    let src2 = "\n      K = 1\n   10&0\n      END\n";
    let diags2 = expect_fixed_err(&[src2]);
    assert_eq!(
        diags2.render(),
        "file 0, line 3: error: label on a continuation line\n\
         \x20 help: only the initial line of a statement may carry a label"
    );
}

#[test]
fn golden_column_73_overflow_is_a_warning() {
    // Text past column 72 is discarded with a warning; the program still
    // compiles, so the warning surfaces on the successful ProgramSet.
    let line = format!("      K = 1{}XTRA", " ".repeat(61));
    assert!(line.len() > 72);
    let src = format!("\n{line}\n      END\n");
    let set = ProgramSet::from_sources(&[&src]).expect("warnings alone must not fail");
    assert_eq!(
        set.warnings.render(),
        "file 0, line 2: warning: text beyond column 72 is ignored\n\
         \x20 help: fixed-form statements end at column 72; split the statement onto a \
         continuation card"
    );
    // And the discarded text really is gone: the program compiles clean.
    let refs = [src.as_str()];
    Engine::compile(&refs).expect("compiles despite overflow");
}

#[test]
fn golden_conflicting_equivalence() {
    let src = "\n      INTEGER X\n      REAL Y\n      EQUIVALENCE (X, Y)\n      END\n";
    let diags = expect_fixed_err(&[src]);
    assert_eq!(
        diags.render(),
        "file 0, line 4: error: EQUIVALENCE of `x` and `y` with conflicting type or shape\n\
         \x20 help: only exact-alias EQUIVALENCE (identical type and shape) is supported"
    );
}

#[test]
fn golden_missing_label() {
    let src = "\n      K = 1\n      GO TO 999\n      END\n";
    let diags = expect_fixed_err(&[src]);
    assert_eq!(
        diags.render(),
        "file 0, line 3: error: label 999 is not defined in this unit\n\
         \x20 help: add the labeled statement or fix the GO TO target"
    );
}

#[test]
fn golden_multi_error_single_pass() {
    // One pass over a file with three independent problems must report
    // all three, in source order — never just the first.
    let src = "\n     &X = 1\n      GO TO 999\n      INTEGER Z\n      REAL Z\n      END\n";
    let diags = expect_fixed_err(&[src]);
    assert_eq!(
        diags.render(),
        "file 0, line 2: error: continuation line has nothing to continue\n\
         \x20 help: column 6 must be blank or `0` on an initial line\n\
         file 0, line 3: error: label 999 is not defined in this unit\n\
         \x20 help: add the labeled statement or fix the GO TO target\n\
         file 0, line 5: error: `z` is declared more than once"
    );
}

#[test]
fn golden_second_file_index() {
    // Diagnostics carry the index of the offending source in the set.
    let good = "\n      SUBROUTINE OK\n      END\n";
    let bad = "\n      GO TO 7\n      END\n";
    let diags = expect_fixed_err(&[good, bad]);
    assert_eq!(
        diags.render(),
        "file 1, line 2: error: label 7 is not defined in this unit\n\
         \x20 help: add the labeled statement or fix the GO TO target"
    );
}

/// The full multi-error report must flow through a service batch: a
/// malformed source job becomes `Rejected` carrying every diagnostic,
/// while sibling jobs in the same batch run normally.
#[test]
fn batch_rejection_carries_full_diagnostics() {
    let service = EngineService::new(4);
    let mut queue = service.queue(2);

    let good = "\n      K = 1\n      PRINT *, K\n      END\n";
    let bad = "\n     &X = 1\n      GO TO 999\n      END\n";
    queue.submit_sources(&[bad], Job::new("main", vec![]));
    queue.submit_sources(&[good], Job::new("main", vec![]));
    let results = queue.run_batch();
    assert_eq!(results.len(), 2);

    match &results[0].result {
        Err(RunError::Rejected { msg }) => {
            assert!(msg.starts_with("compile failed: fixed-form front end: 2 error(s), 0 warning(s)"), "msg: {msg}");
            assert!(msg.contains("continuation line has nothing to continue"), "msg: {msg}");
            assert!(msg.contains("label 999 is not defined in this unit"), "msg: {msg}");
        }
        other => panic!("expected Rejected, got {other:?}"),
    }
    let out = results[1].result.as_ref().expect("sibling job unaffected");
    assert_eq!(out.printed.trim(), "1");
}
