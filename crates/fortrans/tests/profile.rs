//! End-to-end tests for [`Engine::run_profiled`]: span shape, omprt
//! region capture, trap/fallback surfacing, and the zero-overhead guard
//! for the disabled-tracing path.

use fortrans::{ArgVal, Engine, ExecMode, ExecTier, RunLimits, SpanKind};

const KERNEL: &str = r#"
MODULE m
CONTAINS
  SUBROUTINE helper(a, n)
    REAL(8), DIMENSION(1:64) :: a
    INTEGER :: n
    INTEGER :: k
    DO k = 1, n
      a(k) = a(k) + 1.0D0
    END DO
  END SUBROUTINE helper
  REAL(8) FUNCTION work(a, n)
    REAL(8), DIMENSION(1:64) :: a
    INTEGER :: n
    REAL(8) :: acc
    INTEGER :: i, j
    CALL helper(a, n)
    acc = 0.0D0
    DO j = 1, 3
      !$OMP PARALLEL DO REDUCTION(+:acc)
      DO i = 1, n
        acc = acc + a(i) * 0.5D0
      END DO
      !$OMP END PARALLEL DO
    END DO
    work = acc
  END FUNCTION work
END MODULE m
"#;

fn args() -> Vec<ArgVal> {
    vec![ArgVal::array_f(&vec![1.0; 64], 1), ArgVal::I(64)]
}

#[test]
fn profile_records_units_loops_and_regions() {
    for tier in [ExecTier::Vm, ExecTier::TreeWalk] {
        let engine = Engine::compile(&[KERNEL]).unwrap();
        let (out, p) = engine
            .run_profiled("work", &args(), ExecMode::Parallel { threads: 2 }, tier)
            .unwrap();
        assert!(out.result.is_some());
        assert_eq!(p.entry, "work");
        assert_eq!(p.mode, "parallel(2)");
        assert!(p.steps > 0, "{tier:?}: steps not recorded");
        assert!(p.wall_ns > 0);
        assert!(p.fallback.is_none());

        // Span tree: the entry unit, the helper call, the serial DO in
        // helper, the serial j loop, the OMP region under it.
        assert_eq!(p.spans.len(), 1);
        let root = &p.spans[0];
        assert_eq!((root.kind, root.name.as_str(), root.entries), (SpanKind::Unit, "work", 1));
        let helper = root
            .children
            .iter()
            .find(|c| c.kind == SpanKind::Unit && c.name == "helper")
            .expect("helper call span");
        assert_eq!(helper.entries, 1);
        assert_eq!(helper.children.len(), 1, "helper's DO loop");
        assert_eq!(helper.children[0].kind, SpanKind::Loop);
        let jloop = root
            .children
            .iter()
            .find(|c| c.kind == SpanKind::Loop)
            .expect("serial j loop span");
        assert_eq!(jloop.entries, 1);
        let omp = jloop
            .children
            .iter()
            .find(|c| c.kind == SpanKind::OmpLoop)
            .expect("omp region span");
        assert_eq!(omp.entries, 3, "{tier:?}: region entered once per j iteration");

        // The three forks each produced one omprt utilization record.
        assert_eq!(p.regions.len(), 3, "{tier:?}: one RegionReport per fork");
        for r in &p.regions {
            assert_eq!(r.threads, 2);
            assert_eq!(r.busy_ns.len(), 2);
        }

        // Unprofiled runs stay silent: the pool must not keep recording.
        engine.run("work", &args(), ExecMode::Parallel { threads: 2 }).unwrap();
        let (_, p2) = engine
            .run_profiled("work", &args(), ExecMode::Parallel { threads: 2 }, tier)
            .unwrap();
        assert_eq!(p2.regions.len(), 3, "{tier:?}: leftover records from unprofiled run");
    }
}

#[test]
fn steps_headroom_tracks_run_limits() {
    let mut engine = Engine::compile(&[KERNEL]).unwrap();
    engine.set_limits(RunLimits { max_steps: Some(1_000_000), ..RunLimits::default() });
    let (_, p) = engine
        .run_profiled("work", &args(), ExecMode::Serial, ExecTier::Vm)
        .unwrap();
    assert_eq!(p.max_steps, Some(1_000_000));
    let headroom = p.steps_headroom().expect("budget configured");
    assert_eq!(headroom, 1_000_000 - p.steps);
}

#[test]
fn forced_trap_appears_in_profile() {
    let engine = Engine::compile(&[KERNEL]).unwrap();
    engine.debug_force_vm_trap();
    let (out, p) = engine
        .run_profiled("work", &args(), ExecMode::Serial, ExecTier::Vm)
        .unwrap();
    // The VM trapped; the oracle re-ran and produced the answer.
    assert!(out.result.is_some());
    assert_eq!(p.tier, "tree-walk", "answer tier after fallback");
    let fb = p.fallback.as_ref().expect("fallback diagnostics in profile");
    assert_eq!(fb.unit, "work");
    assert!(!fb.what.is_empty());
    assert_eq!(p.fallback_count, 1);
    assert_eq!(p.fallback_count, engine.fallback_count());
    // The profile describes the oracle execution, not the aborted VM one.
    assert_eq!(p.spans.len(), 1);
    assert_eq!(p.spans[0].name, "work");
    assert_eq!(p.spans[0].entries, 1);

    // The next run is clean and keeps the engine-lifetime counter.
    let (_, p2) = engine
        .run_profiled("work", &args(), ExecMode::Serial, ExecTier::Vm)
        .unwrap();
    assert_eq!(p2.tier, "vm");
    assert!(p2.fallback.is_none());
    assert_eq!(p2.fallback_count, 1, "lifetime counter is monotonic");
}

/// Zero-overhead guard: the disabled-tracing path (`Engine::run`, which
/// passes no collector) must stay within noise of the profiled path's
/// *lower* bound — i.e. profiling is cheap enough that `run` showing up
/// slower than `run_profiled * 4` can only mean the disabled path grew a
/// real cost. Min-of-N with generous slack keeps this robust on loaded
/// CI machines; `engine_micro` (criterion) tracks the precise numbers.
#[test]
fn disabled_tracing_is_within_noise_of_profiled() {
    // Loop-heavy kernel: many iterations per span boundary, so span
    // bookkeeping is amortized and the comparison is about the per-step
    // hot path, where the disabled branch must cost nothing measurable.
    let src = r#"
MODULE m
CONTAINS
  REAL(8) FUNCTION spin(n)
    INTEGER :: n
    REAL(8) :: acc
    INTEGER :: i, j
    acc = 0.0D0
    DO j = 1, 50
      DO i = 1, n
        acc = acc + i * 1.0D-6
      END DO
    END DO
    spin = acc
  END FUNCTION spin
END MODULE m
"#;
    let engine = Engine::compile(&[src]).unwrap();
    let a = [ArgVal::I(2000)];
    let min_of = |f: &dyn Fn()| -> u64 {
        (0..7)
            .map(|_| {
                let t = std::time::Instant::now();
                f();
                t.elapsed().as_nanos() as u64
            })
            .min()
            .unwrap()
    };
    // Warm up (first run pays bytecode compilation).
    engine.run("spin", &a, ExecMode::Serial).unwrap();
    let plain = min_of(&|| {
        engine.run("spin", &a, ExecMode::Serial).unwrap();
    });
    let profiled = min_of(&|| {
        engine
            .run_profiled("spin", &a, ExecMode::Serial, ExecTier::Vm)
            .unwrap();
    });
    assert!(
        plain <= profiled.saturating_mul(4) + 2_000_000,
        "disabled tracing got expensive: plain {plain} ns vs profiled {profiled} ns"
    );
}
