//! Differential testing of the VM's vector superinstruction path.
//!
//! Every kernel runs three ways on fresh engines — VM with the vector
//! path enabled (the default), VM with it disabled
//! ([`Engine::set_vector_enabled`]), and the tree-walk oracle — in all
//! three execution modes. Vector execution is designed to be
//! *bit-identical* to scalar execution (same per-element operations,
//! same statement order, same reduction fold order), so Serial and
//! Simulated snapshots must match exactly; Parallel combines reduction
//! partials in completion order, so floats get the usual tiny
//! tolerance.
//!
//! Each vectorizable kernel also asserts the vector path actually ran
//! (`Engine::vector_entry_count`), so a silent de-vectorization
//! regression fails loudly here rather than only showing up as a bench
//! slowdown.

use std::sync::Arc;

use fortrans::{ArgVal, ArrayObj, Engine, ExecMode, ExecTier, RunLimits, ScalarTy, Val};

const MODES: [ExecMode; 3] = [
    ExecMode::Serial,
    ExecMode::Parallel { threads: 4 },
    ExecMode::Simulated { threads: 4 },
];

/// Observable state of one run: result (or error string), printed
/// output, global bit dumps, argument-array bit dumps.
#[derive(Debug, Clone, PartialEq)]
struct Snap {
    result: Result<Option<Val>, String>,
    printed: String,
    globals: Vec<(String, Option<Vec<u64>>)>,
    args: Vec<Vec<u64>>,
}

fn dump(h: &ArrayObj) -> Vec<u64> {
    (0..h.len()).map(|k| h.get_bits(k)).collect()
}

fn snapshot(engine: &Engine, unit: &str, args: &[ArgVal], mode: ExecMode, tier: ExecTier) -> Snap {
    let run = engine.run_tiered(unit, args, mode, tier);
    let (result, printed) = match run {
        Ok(out) => (Ok(out.result), out.printed),
        Err(e) => (Err(e.to_string()), String::new()),
    };
    let mut names = engine.global_names();
    names.sort();
    let globals = names
        .into_iter()
        .map(|n| {
            let bits = match engine.global_scalar(&n) {
                Some(Val::I(v)) => Some(vec![v as u64]),
                Some(Val::F(v)) => Some(vec![v.to_bits()]),
                Some(Val::B(v)) => Some(vec![u64::from(v)]),
                None => engine.global_array(&n).map(|h| dump(&h)),
            };
            (n, bits)
        })
        .collect();
    let args = args
        .iter()
        .filter_map(|a| match a {
            ArgVal::Arr(h) => Some(dump(h)),
            _ => None,
        })
        .collect();
    Snap { result, printed, globals, args }
}

fn f64_close(a: f64, b: f64) -> bool {
    a.to_bits() == b.to_bits() || (a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs()))
}

/// Parallel-mode comparison: float results and f64 cells get a relative
/// tolerance (reduction combine order), everything else exact.
fn assert_tolerant(label: &str, x: &Snap, y: &Snap) {
    match (&x.result, &y.result) {
        (Ok(Some(Val::F(a))), Ok(Some(Val::F(b)))) => {
            assert!(f64_close(*a, *b), "{label}: results {a} vs {b}");
        }
        (Ok(a), Ok(b)) => assert_eq!(a, b, "{label}: results"),
        (Err(_), Err(_)) => {}
        (a, b) => panic!("{label}: one side errored: {a:?} vs {b:?}"),
    }
    let close = |va: &[u64], vb: &[u64]| {
        va.len() == vb.len()
            && va
                .iter()
                .zip(vb)
                .all(|(&p, &q)| p == q || f64_close(f64::from_bits(p), f64::from_bits(q)))
    };
    assert_eq!(x.globals.len(), y.globals.len(), "{label}: global count");
    for ((n, a), (m, b)) in x.globals.iter().zip(&y.globals) {
        assert_eq!(n, m, "{label}: global order");
        match (a, b) {
            (Some(va), Some(vb)) => assert!(close(va, vb), "{label}: global {n}"),
            (a, b) => assert_eq!(a, b, "{label}: global {n}"),
        }
    }
    assert_eq!(x.args.len(), y.args.len(), "{label}: arg count");
    for (k, (va, vb)) in x.args.iter().zip(&y.args).enumerate() {
        assert!(close(va, vb), "{label}: arg array {k}");
    }
}

/// Runs `unit` three ways under every mode and cross-checks; with
/// `expect_vec` also asserts the vector path actually executed at
/// least one loop in Serial mode.
fn vector_differential(
    label: &str,
    src: &str,
    unit: &str,
    mk_args: impl Fn() -> Vec<ArgVal>,
    expect_vec: bool,
) {
    for mode in MODES {
        let von = Engine::compile(&[src]).unwrap_or_else(|e| panic!("{label}: {e}"));
        let voff = Engine::compile(&[src]).unwrap_or_else(|e| panic!("{label}: {e}"));
        voff.set_vector_enabled(false);
        let oracle = Engine::compile(&[src]).unwrap_or_else(|e| panic!("{label}: {e}"));

        let a_on = mk_args();
        let a_off = mk_args();
        let a_tw = mk_args();
        let s_on = snapshot(&von, unit, &a_on, mode, ExecTier::Vm);
        let s_off = snapshot(&voff, unit, &a_off, mode, ExecTier::Vm);
        let s_tw = snapshot(&oracle, unit, &a_tw, mode, ExecTier::TreeWalk);

        if matches!(mode, ExecMode::Parallel { .. }) {
            assert_tolerant(&format!("{label} vector-vs-scalar ({mode:?})"), &s_on, &s_off);
            assert_tolerant(&format!("{label} vector-vs-oracle ({mode:?})"), &s_on, &s_tw);
        } else {
            assert_eq!(s_on, s_off, "{label} under {mode:?}: vector and scalar VM diverge");
            assert_eq!(s_on, s_tw, "{label} under {mode:?}: vector VM and oracle diverge");
        }
        if expect_vec && matches!(mode, ExecMode::Serial) {
            assert!(
                !von.vector_report().is_empty(),
                "{label}: compiler emitted no vector descriptors"
            );
            assert!(
                von.vector_entry_count() > 0,
                "{label}: no loop actually ran on the vector path"
            );
            assert_eq!(
                voff.vector_entry_count(),
                0,
                "{label}: disabled engine still took the vector path"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Maps
// ---------------------------------------------------------------------

#[test]
fn vec_daxpy_map() {
    let src = r#"
MODULE m
CONTAINS
  SUBROUTINE daxpy(n, a, x, y)
    INTEGER :: n, i
    REAL(8) :: a
    REAL(8), DIMENSION(1:1000) :: x, y
    DO i = 1, n
      y(i) = y(i) + a * x(i)
    END DO
  END SUBROUTINE daxpy
END MODULE m
"#;
    let mk = || {
        let x: Vec<f64> = (0..1000).map(|k| 0.25 * k as f64).collect();
        let y: Vec<f64> = (0..1000).map(|k| 1.0 / (1.0 + k as f64)).collect();
        vec![ArgVal::I(1000), ArgVal::F(1.5), ArgVal::array_f(&x, 1), ArgVal::array_f(&y, 1)]
    };
    vector_differential("daxpy", src, "daxpy", mk, true);
}

#[test]
fn vec_multi_statement_fused_body() {
    // Several assignments in one loop body — the shape loop fusion
    // produces — with loads reused across statements.
    let src = r#"
MODULE m
CONTAINS
  SUBROUTINE sweep(n, a, b, c, d)
    INTEGER :: n, i
    REAL(8), DIMENSION(1:513) :: a, b, c, d
    DO i = 1, n
      c(i) = a(i) + b(i)
      d(i) = a(i) * b(i) - c(i)
      a(i) = a(i) * 0.5D0
    END DO
  END SUBROUTINE sweep
END MODULE m
"#;
    let mk = || {
        let v: Vec<f64> = (0..513).map(|k| (k as f64).sin()).collect();
        let w: Vec<f64> = (0..513).map(|k| (k as f64 * 0.1).cos()).collect();
        vec![
            ArgVal::I(513),
            ArgVal::array_f(&v, 1),
            ArgVal::array_f(&w, 1),
            ArgVal::array_f(&vec![0.0; 513], 1),
            ArgVal::array_f(&vec![0.0; 513], 1),
        ]
    };
    vector_differential("fused-body", src, "sweep", mk, true);
}

#[test]
fn vec_shifted_and_invariant_subscripts() {
    // Shifted write stream (i+1), reversed read (n-i+1, negative
    // coefficient) and an invariant term folded into the subscript.
    let src = r#"
MODULE m
CONTAINS
  SUBROUTINE shift(n, k, x, y)
    INTEGER :: n, k, i
    REAL(8), DIMENSION(1:101) :: x, y
    DO i = 1, n
      y(i + 1) = x(n - i + 1) + x(k + i)
    END DO
  END SUBROUTINE shift
END MODULE m
"#;
    let mk = || {
        let x: Vec<f64> = (0..101).map(|j| j as f64 * 0.75).collect();
        vec![ArgVal::I(100), ArgVal::I(0), ArgVal::array_f(&x, 1), ArgVal::array_f(&vec![0.0; 101], 1)]
    };
    vector_differential("shifted", src, "shift", mk, true);
}

#[test]
fn vec_intrinsics_and_pow() {
    let src = r#"
MODULE m
CONTAINS
  SUBROUTINE planck(n, t, b)
    INTEGER :: n, i
    REAL(8), DIMENSION(1:300) :: t, b
    DO i = 1, n
      b(i) = t(i)**4 * EXP(-1.0D0 / MAX(t(i), 0.5D0)) + SQRT(ABS(t(i)))
    END DO
  END SUBROUTINE planck
END MODULE m
"#;
    let mk = || {
        let t: Vec<f64> = (0..300).map(|k| 0.3 + 0.01 * k as f64).collect();
        vec![ArgVal::I(300), ArgVal::array_f(&t, 1), ArgVal::array_f(&vec![0.0; 300], 1)]
    };
    vector_differential("planck", src, "planck", mk, true);
}

#[test]
fn vec_2d_inner_column_sweep() {
    // Inner unit-stride loop over the leading (contiguous) dimension
    // with the outer index invariant — the SARB band-sweep shape.
    let src = r#"
MODULE grid_mod
  REAL(8), DIMENSION(1:64, 1:8) :: tau
  REAL(8), DIMENSION(1:64) :: acc
END MODULE grid_mod
MODULE m
  USE grid_mod
CONTAINS
  SUBROUTINE sweep()
    INTEGER :: i, j
    DO j = 1, 8
      DO i = 1, 64
        tau(i, j) = i * 1.0D0 + j * 100.0D0
      END DO
    END DO
    DO i = 1, 64
      acc(i) = 0.0D0
    END DO
    DO j = 1, 8
      DO i = 1, 64
        acc(i) = acc(i) + EXP(-tau(i, j) * 1.0D-3)
      END DO
    END DO
  END SUBROUTINE sweep
END MODULE m
"#;
    vector_differential("2d-sweep", src, "sweep", Vec::new, true);
}

// ---------------------------------------------------------------------
// Reductions
// ---------------------------------------------------------------------

#[test]
fn vec_dot_product_reduction() {
    let src = r#"
MODULE m
CONTAINS
  REAL(8) FUNCTION dot(n, x, y)
    INTEGER :: n, i
    REAL(8), DIMENSION(1:2000) :: x, y
    dot = 0.0D0
    DO i = 1, n
      dot = dot + x(i) * y(i)
    END DO
  END FUNCTION dot
END MODULE m
"#;
    let mk = || {
        let x: Vec<f64> = (0..2000).map(|k| (k as f64 * 0.01).sin()).collect();
        let y: Vec<f64> = (0..2000).map(|k| (k as f64 * 0.02).cos()).collect();
        vec![ArgVal::I(2000), ArgVal::array_f(&x, 1), ArgVal::array_f(&y, 1)]
    };
    vector_differential("dot", src, "dot", mk, true);
}

#[test]
fn vec_product_reduction_acc_right() {
    // Accumulator on the right-hand side of the fold operator.
    let src = r#"
MODULE m
CONTAINS
  REAL(8) FUNCTION prodr(n, x)
    INTEGER :: n, i
    REAL(8), DIMENSION(1:400) :: x
    prodr = 1.0D0
    DO i = 1, n
      prodr = (1.0D0 + x(i) * 1.0D-3) * prodr
    END DO
  END FUNCTION prodr
END MODULE m
"#;
    let mk = || {
        let x: Vec<f64> = (0..400).map(|k| (k as f64 * 0.13).cos()).collect();
        vec![ArgVal::I(400), ArgVal::array_f(&x, 1)]
    };
    vector_differential("prodr", src, "prodr", mk, true);
}

#[test]
fn vec_reduction_into_global() {
    let src = r#"
MODULE acc_mod
  REAL(8) :: total
END MODULE acc_mod
MODULE m
  USE acc_mod
CONTAINS
  SUBROUTINE sum_into(n, x)
    INTEGER :: n, i
    REAL(8), DIMENSION(1:777) :: x
    DO i = 1, n
      total = total + x(i)
    END DO
  END SUBROUTINE sum_into
END MODULE m
"#;
    let mk = || {
        let x: Vec<f64> = (0..777).map(|k| 1.0 / (1.0 + k as f64)).collect();
        vec![ArgVal::I(777), ArgVal::array_f(&x, 1)]
    };
    vector_differential("global-sum", src, "sum_into", mk, true);
}

// ---------------------------------------------------------------------
// Runtime guards: fallback must reproduce scalar behavior exactly
// ---------------------------------------------------------------------

#[test]
fn vec_zero_trip_loop() {
    let src = r#"
MODULE m
CONTAINS
  SUBROUTINE fill(n, y)
    INTEGER :: n, i
    REAL(8), DIMENSION(1:10) :: y
    DO i = 1, n
      y(i) = 7.0D0
    END DO
  END SUBROUTINE fill
END MODULE m
"#;
    let mk = || vec![ArgVal::I(0), ArgVal::array_f(&[1.0; 10], 1)];
    // Zero-trip: the guard bails before doing anything (expect_vec off —
    // the descriptor exists but never executes).
    vector_differential("zero-trip", src, "fill", mk, false);
}

#[test]
fn vec_aliased_arguments_fall_back() {
    // Same array passed as both parameters: the write stream u(i)
    // overlaps the shifted read v(i+1), which only the runtime alias
    // guard can see. The vector path must fall back and match the
    // scalar result bit for bit.
    let src = r#"
MODULE m
CONTAINS
  SUBROUTINE smooth(n, u, v)
    INTEGER :: n, i
    REAL(8), DIMENSION(1:33) :: u, v
    DO i = 1, n
      u(i) = v(i + 1) * 0.5D0 + u(i) * 0.5D0
    END DO
  END SUBROUTINE smooth
END MODULE m
"#;
    let shared = || {
        let obj = ArrayObj::new(ScalarTy::F, vec![(1, 33)]);
        for k in 0..33 {
            obj.set_f(k, k as f64 * 0.3 - 4.0);
        }
        let h = Arc::new(obj);
        vec![ArgVal::I(32), ArgVal::Arr(Arc::clone(&h)), ArgVal::Arr(h)]
    };
    vector_differential("aliased", src, "smooth", shared, false);
}

#[test]
fn vec_out_of_bounds_reported_at_scalar_iteration() {
    // The loop walks past the end of y; the bounds guard must reject
    // the whole range up front and the scalar loop then faults at the
    // exact iteration with the stock error message.
    let src = r#"
MODULE m
CONTAINS
  SUBROUTINE oob(n, y)
    INTEGER :: n, i
    REAL(8), DIMENSION(1:8) :: y
    DO i = 1, n
      y(i) = i * 1.0D0
    END DO
  END SUBROUTINE oob
END MODULE m
"#;
    let mk = || vec![ArgVal::I(12), ArgVal::array_f(&[0.0; 8], 1)];
    vector_differential("oob", src, "oob", mk, false);
}

#[test]
fn vec_step_budget_fallback_matches_scalar_error() {
    let src = r#"
MODULE m
CONTAINS
  REAL(8) FUNCTION spin(n)
    INTEGER :: n, i
    REAL(8) :: acc
    REAL(8), DIMENSION(1:1) :: dummy
    acc = 0.0D0
    DO i = 1, n
      acc = acc + SQRT(i * 1.0D0)
    END DO
    spin = acc
  END FUNCTION spin
END MODULE m
"#;
    for on in [true, false] {
        let mut e = Engine::compile(&[src]).unwrap();
        e.set_limits(RunLimits { max_steps: Some(500), ..RunLimits::default() });
        e.set_vector_enabled(on);
        let err = e
            .run("spin", &[ArgVal::I(1_000_000)], ExecMode::Serial)
            .expect_err("budget must trip");
        assert!(
            err.to_string().contains("step budget of 500 exhausted"),
            "vector={on}: unexpected error {err}"
        );
        assert_eq!(e.vector_entry_count(), 0, "vector={on}: budget fallback must stay scalar");
    }
}

#[test]
fn vec_report_names_loops() {
    let src = r#"
MODULE m
CONTAINS
  SUBROUTINE two(n, x, y)
    INTEGER :: n, i
    REAL(8) :: s
    REAL(8), DIMENSION(1:64) :: x, y
    DO i = 1, n
      y(i) = x(i) * 2.0D0
    END DO
    s = 0.0D0
    DO i = 1, n
      s = s + y(i)
    END DO
    y(1) = s
  END SUBROUTINE two
END MODULE m
"#;
    let e = Engine::compile(&[src]).unwrap();
    let rep = e.vector_report();
    assert_eq!(rep.len(), 2, "expected both loops vectorized: {rep:?}");
    assert!(rep.iter().all(|r| r.unit == "two"));
    assert_eq!(rep.iter().filter(|r| r.reduction).count(), 1);
}
