//! Fault-injection harness: seeded bytecode corruption against the
//! hardened engine.
//!
//! The contract under test (ISSUE: hardened execution):
//!
//! 1. Every corruption produced by the seeded mutator
//!    ([`fortrans::verify::mutate`]) is **rejected by the static
//!    verifier** — no corrupt stream reaches the VM through the normal
//!    compile path.
//! 2. When corrupt bytecode is injected *past* the verifier (via the
//!    `debug_inject_bytecode` hook, simulating a verifier gap or a
//!    miscompile), the engine still never lets a panic escape
//!    `Engine::run`: the VM traps, the call falls back to the
//!    tree-walk oracle, and the caller sees either a clean `RunError`
//!    or a correct result carrying a [`fortrans::TierFallback`]
//!    diagnostic.
//!
//! Deliberately **no `catch_unwind` anywhere in this file**: an escaped
//! panic fails the test at the harness boundary, which is exactly the
//! property being locked.

use fortrans::bytecode::compile_program;
use fortrans::verify::{mutate, verify_program};
use fortrans::{ArgVal, Engine, ExecMode, RunLimits};

// ---------------------------------------------------------------------
// Corpus: small programs with enough instruction variety (loops with
// literal strides, branches, calls with mixed argument kinds, OMP
// regions, allocatables, PRINT/STOP) that every mutation kind in
// `mutate::corrupt` finds a target.
// ---------------------------------------------------------------------

struct Prog {
    label: &'static str,
    src: &'static str,
    entry: &'static str,
    mk_args: fn() -> Vec<ArgVal>,
}

fn corpus() -> Vec<Prog> {
    vec![
        Prog {
            label: "arith",
            src: r#"
MODULE m
CONTAINS
  REAL(8) FUNCTION mixy(a, b, k)
    REAL(8) :: a, b
    INTEGER :: k
    REAL(8) :: t
    t = SQRT(a**2 + b**2) + ABS(a - b)
    IF (MOD(k, 2) == 0) THEN
      t = t * 2.0D0
    ELSE
      t = t / 2.0D0
    END IF
    mixy = t + k
  END FUNCTION mixy
END MODULE m
"#,
            entry: "mixy",
            mk_args: || vec![ArgVal::F(3.0), ArgVal::F(4.0), ArgVal::I(7)],
        },
        Prog {
            label: "loops",
            src: r#"
MODULE m
CONTAINS
  SUBROUTINE sweep(a, n)
    REAL(8), DIMENSION(1:64) :: a
    INTEGER :: n
    INTEGER :: i, j
    DO i = 1, n
      a(i) = i * 1.5D0
    END DO
    DO i = n, 1, -2
      a(i) = a(i) + 0.25D0
    END DO
    DO i = 1, 4
      DO j = 1, 4
        a((i - 1) * 4 + j) = a((i - 1) * 4 + j) + i * j
      END DO
    END DO
  END SUBROUTINE sweep
END MODULE m
"#,
            entry: "sweep",
            mk_args: || vec![ArgVal::array_f(&[0.0; 64], 1), ArgVal::I(64)],
        },
        Prog {
            label: "calls",
            src: r#"
MODULE m
CONTAINS
  REAL(8) FUNCTION area(w, h)
    REAL(8) :: w, h
    area = w * h
  END FUNCTION area
  SUBROUTINE bump(x, by)
    REAL(8) :: x, by
    x = x + by
  END SUBROUTINE bump
  SUBROUTINE driver(out, n)
    REAL(8), DIMENSION(1:8) :: out
    INTEGER :: n
    REAL(8) :: acc
    INTEGER :: i
    acc = 0.0D0
    DO i = 1, n
      CALL bump(acc, area(i * 1.0D0, 2.0D0))
      out(i) = acc
    END DO
  END SUBROUTINE driver
END MODULE m
"#,
            entry: "driver",
            mk_args: || vec![ArgVal::array_f(&[0.0; 8], 1), ArgVal::I(8)],
        },
        Prog {
            label: "omp",
            src: r#"
MODULE m
  REAL(8) :: shared_total
CONTAINS
  SUBROUTINE reduce_all(a, n, out)
    REAL(8), DIMENSION(1:128) :: a
    INTEGER :: n
    REAL(8), DIMENSION(1:1) :: out
    REAL(8) :: acc
    INTEGER :: i
    acc = 0.0D0
    !$OMP PARALLEL DO DEFAULT(SHARED) REDUCTION(+:acc)
    DO i = 1, n
      acc = acc + a(i)
    END DO
    !$OMP END PARALLEL DO
    !$OMP PARALLEL DO DEFAULT(SHARED)
    DO i = 1, n
      !$OMP CRITICAL (upd)
      shared_total = shared_total + 1.0D0
      !$OMP END CRITICAL
    END DO
    !$OMP END PARALLEL DO
    out(1) = acc
  END SUBROUTINE reduce_all
END MODULE m
"#,
            entry: "reduce_all",
            mk_args: || {
                let data: Vec<f64> = (1..=128).map(|i| i as f64).collect();
                vec![ArgVal::array_f(&data, 1), ArgVal::I(128), ArgVal::array_f(&[0.0], 1)]
            },
        },
        Prog {
            label: "gloop",
            // A module-global loop variable defeats the fused loop head,
            // so the compiler emits the `Const(1); DoInit{check:false}`
            // sequence the zero-stride mutation targets.
            src: r#"
MODULE gm
  INTEGER :: gi
CONTAINS
  SUBROUTINE gfill(a, n)
    REAL(8), DIMENSION(1:16) :: a
    INTEGER :: n
    DO gi = 1, n
      a(gi) = gi * 2.0D0
    END DO
  END SUBROUTINE gfill
END MODULE gm
"#,
            entry: "gfill",
            mk_args: || vec![ArgVal::array_f(&[0.0; 16], 1), ArgVal::I(16)],
        },
        Prog {
            label: "redux",
            // A serial REAL reduction loop: compiles to a vector
            // descriptor with a reduction tail, the target of the
            // native-tier corruption kinds (`vec-red-slot` et al.).
            src: r#"
MODULE m
CONTAINS
  REAL(8) FUNCTION dotp(a, b, n)
    REAL(8), DIMENSION(1:32) :: a
    REAL(8), DIMENSION(1:32) :: b
    INTEGER :: n
    REAL(8) :: s
    INTEGER :: i
    s = 0.0D0
    DO i = 1, n
      s = s + a(i) * b(i)
    END DO
    dotp = s
  END FUNCTION dotp
END MODULE m
"#,
            entry: "dotp",
            mk_args: || {
                let a: Vec<f64> = (1..=32).map(|i| i as f64 * 0.5).collect();
                let b: Vec<f64> = (1..=32).map(|i| 33.0 - i as f64).collect();
                vec![ArgVal::array_f(&a, 1), ArgVal::array_f(&b, 1), ArgVal::I(32)]
            },
        },
        Prog {
            label: "alloc",
            src: r#"
MODULE m
CONTAINS
  SUBROUTINE scratch(n, out)
    INTEGER :: n
    REAL(8), DIMENSION(1:1) :: out
    REAL(8), DIMENSION(:), ALLOCATABLE :: w
    INTEGER :: i
    IF (n < 1) THEN
      STOP 'bad n'
    END IF
    ALLOCATE(w(1:n))
    DO i = 1, n
      w(i) = i * 0.5D0
    END DO
    out(1) = w(1) + w(n)
    PRINT *, 'scratch done', out(1)
    DEALLOCATE(w)
  END SUBROUTINE scratch
END MODULE m
"#,
            entry: "scratch",
            mk_args: || vec![ArgVal::I(16), ArgVal::array_f(&[0.0], 1)],
        },
    ]
}

// ---------------------------------------------------------------------
// 1. Verifier front line: every seeded corruption is rejected.
// ---------------------------------------------------------------------

/// ≥ 200 seeded corruptions across the corpus (both bytecode variants),
/// each rejected by the static verifier. Fixed seeds: fully
/// deterministic, reproducible by seed on failure.
#[test]
fn seeded_corruptions_are_all_rejected_by_the_verifier() {
    let mut applied = 0usize;
    let mut by_kind: std::collections::BTreeMap<&'static str, usize> = Default::default();
    for (pi, p) in corpus().iter().enumerate() {
        let engine =
            Engine::compile(&[p.src]).unwrap_or_else(|e| panic!("{} compiles: {e}", p.label));
        for traced in [false, true] {
            let base = compile_program(engine.program(), traced);
            for round in 0..40u64 {
                let seed = ((pi as u64) << 40) | (u64::from(traced) << 32) | round;
                let mut mutated = base.clone();
                let Some(m) = mutate::corrupt(&mut mutated, seed) else {
                    continue;
                };
                applied += 1;
                *by_kind.entry(m.kind).or_default() += 1;
                let v = verify_program(engine.program(), &mutated);
                assert!(
                    v.is_err(),
                    "{} seed {seed:#x}: corruption escaped the verifier: {m}",
                    p.label
                );
            }
        }
    }
    assert!(applied >= 200, "harness under-exercised: only {applied} corruptions applied");
    // Diversity guard: the rotation must exercise every mutation kind.
    for kind in [
        "retargeted-jump",
        "slot-out-of-range",
        "opcode-flip",
        "truncated-stream",
        "zero-stride",
        "call-arity",
        "vec-op-oob",
        "vec-unbalance",
        "vec-iter-cost",
        "vec-access-slot",
        "vec-red-slot",
    ] {
        assert!(by_kind.contains_key(kind), "mutation kind {kind} never applied: {by_kind:?}");
    }
}

// ---------------------------------------------------------------------
// 2. Behind the verifier: injected corruption must trap, never escape.
// ---------------------------------------------------------------------

/// Injects corrupt bytecode *past* the verifier and runs it. The engine
/// boundary must hold: each run returns `Ok` or `Err` — any panic
/// escaping `Engine::run` fails this test (there is no `catch_unwind`
/// here). A step budget bounds corruptions that turn loops infinite
/// (e.g. a zeroed stride).
#[test]
fn injected_corruption_never_panics_across_the_engine_boundary() {
    let mut ran = 0usize;
    let mut diagnosed = 0u64;
    let mut counted = 0u64;
    for (pi, p) in corpus().iter().enumerate() {
        let mut engine =
            Engine::compile(&[p.src]).unwrap_or_else(|e| panic!("{} compiles: {e}", p.label));
        engine.set_limits(RunLimits { max_steps: Some(2_000_000), ..RunLimits::default() });
        let base = compile_program(engine.program(), false);
        for round in 0..24u64 {
            let seed = ((pi as u64) << 32) | round;
            let mut mutated = base.clone();
            let Some(m) = mutate::corrupt(&mut mutated, seed) else {
                continue;
            };
            engine.debug_inject_bytecode(false, mutated);
            // The lock: this call must return, not unwind. Wrong results
            // are acceptable here (the verifier, tested above, is the
            // layer that prevents them in the real pipeline).
            let r = engine.run(p.entry, &(p.mk_args)(), ExecMode::Serial);
            engine.debug_inject_bytecode(false, base.clone());
            ran += 1;
            if let Ok(out) = r {
                if let Some(fb) = out.fallback {
                    assert_eq!(fb.unit, p.entry, "fallback names the entry unit ({m})");
                    assert!(!fb.what.is_empty(), "fallback carries the trap description");
                    diagnosed += 1;
                }
            }
        }
        counted += engine.fallback_count();
    }
    assert!(ran >= 100, "harness under-exercised: only {ran} injected runs");
    assert!(diagnosed >= 1, "no injected corruption ever exercised the trap-and-fallback path");
    // Every fallback reported in a RunOutcome is also counted by the
    // engine; traps on runs that ultimately errored may add more.
    assert!(counted >= diagnosed, "fallback_count ({counted}) < diagnostics seen ({diagnosed})");
}

/// Native-tier contract under corruption: a vector descriptor corrupted
/// *behind* the verifier is refused at promotion (the JIT re-verifies
/// every descriptor before emitting machine code) or deopts to the
/// scalar head — machine code is never compiled from a corrupt
/// descriptor, the run completes with the scalar loop's (correct)
/// answer, no trap-and-fallback fires, and no panic escapes. Eager
/// promotion removes the warm-up so every seed exercises the decision.
#[test]
fn corrupt_vector_descriptors_are_refused_at_promotion_or_deopt() {
    let mut vec_hits = 0usize;
    let mut by_kind: std::collections::BTreeMap<&'static str, usize> = Default::default();
    for (pi, p) in corpus().iter().enumerate() {
        if !matches!(p.label, "loops" | "redux") {
            continue; // only the vector-bearing programs have descriptors
        }
        for round in 0..48u64 {
            let seed = ((pi as u64) << 32) | round;
            // Fresh engine per seed: the shared native cache memoizes
            // promotion verdicts per (unit, descriptor) key, and a prior
            // seed's verdict must not mask this seed's corruption.
            let engine =
                Engine::compile(&[p.src]).unwrap_or_else(|e| panic!("{} compiles: {e}", p.label));
            let clean = engine
                .run(p.entry, &(p.mk_args)(), ExecMode::Serial)
                .expect("clean run succeeds")
                .result;
            let engine = Engine::compile(&[p.src]).unwrap();
            let mut mutated = compile_program(engine.program(), false);
            let Some(m) = mutate::corrupt(&mut mutated, seed) else { continue };
            // The descriptor-level kinds: these must deopt cleanly. The
            // op-level kinds (`vec-op-oob`, `vec-unbalance`) are still
            // refused at promotion but may trap on the VM vector tier,
            // which the never-panics test above already locks.
            if !matches!(m.kind, "vec-iter-cost" | "vec-access-slot" | "vec-red-slot") {
                continue;
            }
            vec_hits += 1;
            *by_kind.entry(m.kind).or_default() += 1;
            engine.debug_inject_bytecode(false, mutated);
            engine.set_native_eager(true);
            let out = engine
                .run(p.entry, &(p.mk_args)(), ExecMode::Serial)
                .unwrap_or_else(|e| panic!("{} seed {seed:#x} ({m}): corrupt descriptor must \
                     deopt to the scalar loop, got error: {e}", p.label));
            assert!(
                out.fallback.is_none(),
                "{} seed {seed:#x} ({m}): descriptor corruption must deopt, not trap",
                p.label
            );
            assert_eq!(
                out.result.as_ref().map(|v| format!("{v:?}")),
                clean.as_ref().map(|v| format!("{v:?}")),
                "{} seed {seed:#x} ({m}): scalar deopt diverged from the clean run",
                p.label
            );
            if fortrans::jit::available() {
                assert_eq!(
                    engine.native_entry_count(),
                    0,
                    "{} seed {seed:#x} ({m}): native code ran from a corrupt descriptor",
                    p.label
                );
            }
        }
    }
    assert!(vec_hits >= 20, "harness under-exercised: only {vec_hits} descriptor corruptions");
    for kind in ["vec-iter-cost", "vec-access-slot", "vec-red-slot"] {
        assert!(by_kind.contains_key(kind), "kind {kind} never applied: {by_kind:?}");
    }
}

// ---------------------------------------------------------------------
// 3. Trap-and-fallback: a trapped VM run returns the oracle's answer.
// ---------------------------------------------------------------------

const SCALE_SRC: &str = r#"
MODULE demo
CONTAINS
  SUBROUTINE scale(a, n, f)
    REAL(8), DIMENSION(1:4) :: a
    INTEGER :: n
    REAL(8) :: f
    INTEGER :: i
    DO i = 1, n
      a(i) = a(i) * f
    END DO
  END SUBROUTINE scale
END MODULE demo
"#;

/// A forced VM trap is transparently recovered: the caller gets the
/// tree-walk oracle's (correct) result plus a `TierFallback` diagnostic,
/// and the engine's fallback counter ticks exactly once.
#[test]
fn forced_vm_trap_falls_back_to_the_oracle_with_the_correct_result() {
    let engine = Engine::compile(&[SCALE_SRC]).unwrap();
    engine.debug_force_vm_trap();
    let a = ArgVal::array_f(&[1.0, 2.0, 3.0, 4.0], 1);
    let out = engine
        .run("scale", &[a.clone(), ArgVal::I(4), ArgVal::F(3.0)], ExecMode::Serial)
        .expect("trapped run recovers via the oracle");
    let fb = out.fallback.expect("fallback diagnostic is reported");
    assert_eq!(fb.unit, "scale");
    assert!(fb.what.contains("forced VM trap"), "diagnostic carries the payload: {}", fb.what);
    assert_eq!(engine.fallback_count(), 1);
    for (k, want) in [(0usize, 3.0f64), (1, 6.0), (2, 9.0), (3, 12.0)] {
        assert_eq!(a.handle().unwrap().get_f(k), want, "oracle result at {k}");
    }
    // The hook is one-shot: the next run stays on the VM tier.
    let out2 = engine
        .run("scale", &[a.clone(), ArgVal::I(4), ArgVal::F(1.0)], ExecMode::Serial)
        .unwrap();
    assert!(out2.fallback.is_none());
    assert_eq!(engine.fallback_count(), 1);
}

/// Same recovery through real corruption: bytecode whose first
/// instruction underflows the operand stack panics the VM; the engine
/// traps it and the oracle (which interprets the original program, not
/// the corrupt bytecode) still produces the right answer.
#[test]
fn trapped_corruption_recovers_the_oracle_answer() {
    use fortrans::bytecode::BInstr;
    let engine = Engine::compile(&[SCALE_SRC]).unwrap();
    let mut bad = compile_program(engine.program(), false);
    let u = (0..bad.len())
        .find(|&u| engine.program().units[u].name == "scale")
        .expect("entry unit present");
    // Operand-stack underflow at pc 0 — the verifier would reject this
    // stream (checked below); injection bypasses it on purpose.
    bad[u].code[0] = BInstr::AddI;
    assert!(verify_program(engine.program(), &bad).is_err(), "verifier rejects the stream");
    engine.debug_inject_bytecode(false, bad);
    let a = ArgVal::array_f(&[1.0, 2.0, 3.0, 4.0], 1);
    let out = engine
        .run("scale", &[a.clone(), ArgVal::I(4), ArgVal::F(5.0)], ExecMode::Serial)
        .expect("trapped run recovers via the oracle");
    assert!(out.fallback.is_some(), "corruption surfaced as a fallback diagnostic");
    assert_eq!(engine.fallback_count(), 1);
    for (k, want) in [(0usize, 5.0f64), (1, 10.0), (2, 15.0), (3, 20.0)] {
        assert_eq!(a.handle().unwrap().get_f(k), want, "oracle result at {k}");
    }
}

// ---------------------------------------------------------------------
// 4. Batched execution: faults are per-job, the shared pool self-heals.
// ---------------------------------------------------------------------

/// A batch mixing clean jobs with a forced-trap job and a
/// step-starved job, across all three modes on one shared artifact and
/// pool set. The locks: sibling jobs stay bit-identical to an all-clean
/// baseline batch, each fault is confined to its own job's session, the
/// shared pools contain no panics, and a follow-up batch on the same
/// queue runs fully clean (nothing was poisoned).
#[test]
fn batched_faults_do_not_poison_sibling_jobs_or_the_pool() {
    use fortrans::{EngineService, Job, RunError};

    let service = EngineService::new(4);
    let artifact = service.compile(&[SCALE_SRC]).expect("compiles");
    let modes = [
        ExecMode::Serial,
        ExecMode::Simulated { threads: 4 },
        ExecMode::Parallel { threads: 2 },
    ];
    let mk = || {
        let a = ArgVal::array_f(&[1.0, 2.0, 3.0, 4.0], 1);
        (a.clone(), vec![a, ArgVal::I(4), ArgVal::F(3.0)])
    };
    let expect = [3.0f64, 6.0, 9.0, 12.0];

    // Baseline: all-clean batch, one job per mode.
    let mut queue = service.queue(4);
    let mut baseline_arrs = Vec::new();
    for mode in modes {
        let (arr, args) = mk();
        queue.submit(&artifact, Job::new("scale", args).mode(mode));
        baseline_arrs.push(arr);
    }
    for jr in queue.run_batch() {
        jr.result.expect("baseline job succeeds");
    }
    let baseline: Vec<Vec<u64>> = baseline_arrs
        .iter()
        .map(|a| {
            let h = a.handle().unwrap();
            (0..h.len()).map(|k| h.get_bits(k)).collect()
        })
        .collect();
    for (m, bits) in baseline.iter().enumerate() {
        for (k, &b) in bits.iter().enumerate() {
            assert_eq!(f64::from_bits(b), expect[k], "baseline mode {m} elem {k}");
        }
    }

    // Mixed batch: per mode, a clean job, a forced-trap job, and a
    // starved job — interleaved in one dispatch.
    let mut clean_arrs = Vec::new(); // (mode index, array)
    for (mi, mode) in modes.iter().enumerate() {
        let (arr, args) = mk();
        queue.submit(&artifact, Job::new("scale", args).mode(*mode));
        clean_arrs.push((mi, arr));
        let (_, args) = mk();
        queue.submit(&artifact, Job::new("scale", args).mode(*mode).debug_force_trap());
        let (_, args) = mk();
        queue.submit(
            &artifact,
            Job::new("scale", args)
                .mode(*mode)
                .limits(RunLimits { max_steps: Some(2), ..RunLimits::default() }),
        );
    }
    let results = queue.run_batch();
    assert_eq!(results.len(), 9);
    for (j, jr) in results.iter().enumerate() {
        match j % 3 {
            0 => {
                // Clean sibling: success, no fallback, counter untouched.
                let out = jr.result.as_ref().expect("clean sibling succeeds");
                assert!(out.fallback.is_none(), "job {j}: no bleed from faulted siblings");
                assert_eq!(jr.session.as_ref().expect("session").fallback_count(), 0, "job {j}");
            }
            1 => {
                // Forced trap: recovered via the oracle, diagnosed, and
                // counted on this job's session only.
                let out = jr.result.as_ref().expect("trapped job recovers via the oracle");
                let fb = out.fallback.as_ref().expect("trap diagnostic reported");
                assert_eq!(fb.unit, "scale");
                assert_eq!(jr.session.as_ref().expect("session").fallback_count(), 1, "job {j}");
            }
            _ => {
                // Starved: a clean Limit error, not a trap, no fallback.
                let err = jr.result.as_ref().expect_err("2 steps cannot finish");
                assert!(
                    matches!(err.root(), RunError::Limit { .. }),
                    "job {j} fails with Limit, got: {err}"
                );
                assert_eq!(jr.session.as_ref().expect("session").fallback_count(), 0, "job {j}");
            }
        }
    }
    // Sibling outputs are bit-identical to the all-clean baseline.
    for (mi, arr) in &clean_arrs {
        let h = arr.handle().unwrap();
        let bits: Vec<u64> = (0..h.len()).map(|k| h.get_bits(k)).collect();
        assert_eq!(&bits, &baseline[*mi], "mode {mi}: sibling diverged from clean baseline");
    }
    // Faults were contained at the engine boundary, not in the pools.
    assert_eq!(service.pools().contained_panics(), 0);

    // Self-heal probe: the next batch on the same queue is fully clean.
    for mode in modes {
        let (_, args) = mk();
        queue.submit(&artifact, Job::new("scale", args).mode(mode));
    }
    for (j, jr) in queue.run_batch().into_iter().enumerate() {
        let out = jr.result.unwrap_or_else(|e| panic!("post-fault batch job {j} failed: {e}"));
        assert!(out.fallback.is_none(), "job {j}: pool left unhealthy");
    }
    assert_eq!(service.pools().contained_panics(), 0);
}

/// The compile path itself refuses corrupt bytecode: mutating what
/// `compile_program` produced and re-verifying yields a
/// `CompileError::Verify` whose display names the unit and pc.
#[test]
fn verify_error_display_names_unit_and_pc() {
    let engine = Engine::compile(&[SCALE_SRC]).unwrap();
    let mut bad = compile_program(engine.program(), false);
    let m = mutate::corrupt(&mut bad, 1).expect("mutator finds a target");
    let err = verify_program(engine.program(), &bad).expect_err("rejected");
    let s = err.to_string();
    assert!(
        s.contains("bytecode verification failed in `"),
        "display format: {s} (mutation: {m})"
    );
    assert!(s.contains("at pc "), "display carries the pc: {s}");
}
