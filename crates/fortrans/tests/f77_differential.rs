//! Generative differential testing for the fixed-form F77 front end.
//!
//! [`fortrans::gen::generate`] derives a deterministic two-file F77
//! program per seed (COMMON-coupled units, labeled DO loops, computed
//! and backward GOTO, arithmetic IF, EQUIVALENCE, DATA, OMP reduction
//! loops). Every program compiles into ONE shared artifact and then runs
//! under both execution tiers ([`ExecTier::Vm`] vs the tree-walking
//! oracle [`ExecTier::TreeWalk`]) in all three modes on fresh sessions;
//! the complete observable state — result, PRINT output, every COMMON
//! scalar and array (bit dumps), the Simulated cost trace — must agree.
//!
//! Comparison policy (same as `vm_differential`):
//! * **Serial** and **Simulated** are deterministic: bit-identical.
//! * **Parallel** tolerates float reduction-order rounding and compares
//!   printed output as a line multiset; traces are not compared.

use fortrans::service::CompiledProgram;
use fortrans::{CostTrace, Engine, ExecMode, ExecTier, ScalarTy, Val};

/// Seeds per fixed corpus; every seed is a distinct two-file program.
const SEEDS: u64 = 200;

const MODES: [ExecMode; 3] = [
    ExecMode::Serial,
    ExecMode::Parallel { threads: 4 },
    ExecMode::Simulated { threads: 4 },
];

#[derive(Debug, Clone, PartialEq)]
enum GSnap {
    Scalar(Option<Val>),
    Array(ScalarTy, Vec<u64>),
    Unallocated,
}

#[derive(Debug, Clone, PartialEq)]
struct Snap {
    result: Result<Option<Val>, String>,
    printed: String,
    trace: CostTrace,
    globals: Vec<(String, GSnap)>,
}

fn snapshot(engine: &Engine, mode: ExecMode, tier: ExecTier) -> Snap {
    let run = engine.run_tiered("main", &[], mode, tier);
    let (result, printed, trace) = match run {
        Ok(out) => (Ok(out.result), out.printed, out.trace),
        Err(e) => (Err(e.to_string()), String::new(), CostTrace::default()),
    };
    let mut globals = Vec::new();
    let mut names = engine.global_names();
    names.sort();
    for name in names {
        let snap = if let Some(v) = engine.global_scalar(&name) {
            GSnap::Scalar(Some(v))
        } else if let Some(h) = engine.global_array(&name) {
            GSnap::Array(h.ty, (0..h.len()).map(|k| h.get_bits(k)).collect())
        } else {
            GSnap::Unallocated
        };
        globals.push((name, snap));
    }
    Snap { result, printed, trace, globals }
}

fn f64_close(a: f64, b: f64) -> bool {
    a.to_bits() == b.to_bits() || (a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs()))
}

fn bits_close(ty: ScalarTy, a: u64, b: u64) -> bool {
    match ty {
        ScalarTy::F => f64_close(f64::from_bits(a), f64::from_bits(b)),
        _ => a == b,
    }
}

fn sorted_lines(s: &str) -> Vec<&str> {
    let mut v: Vec<&str> = s.lines().collect();
    v.sort();
    v
}

fn assert_equivalent(label: &str, mode: ExecMode, vm: &Snap, tw: &Snap) {
    if !matches!(mode, ExecMode::Parallel { .. }) {
        assert_eq!(vm, tw, "{label} under {mode:?}: VM and tree-walker diverge");
        return;
    }
    match (&vm.result, &tw.result) {
        (Ok(Some(Val::F(a))), Ok(Some(Val::F(b)))) => {
            assert!(f64_close(*a, *b), "{label} Parallel result: {a} vs {b}");
        }
        (Ok(a), Ok(b)) => assert_eq!(a, b, "{label} Parallel result"),
        (Err(_), Err(_)) => {}
        (a, b) => panic!("{label} Parallel: one tier errored: vm={a:?} tw={b:?}"),
    }
    assert_eq!(
        sorted_lines(&vm.printed),
        sorted_lines(&tw.printed),
        "{label} Parallel printed lines"
    );
    assert_eq!(vm.globals.len(), tw.globals.len(), "{label} global count");
    for ((vn, vg), (tn, tg)) in vm.globals.iter().zip(&tw.globals) {
        assert_eq!(vn, tn, "{label} global name order");
        match (vg, tg) {
            (GSnap::Scalar(Some(Val::F(a))), GSnap::Scalar(Some(Val::F(b)))) => {
                assert!(f64_close(*a, *b), "{label} global {vn}: {a} vs {b}");
            }
            (GSnap::Array(ta, va), GSnap::Array(tb, vb)) => {
                assert_eq!((ta, va.len()), (tb, vb.len()), "{label} global {vn} shape");
                for (k, (&x, &y)) in va.iter().zip(vb).enumerate() {
                    assert!(bits_close(*ta, x, y), "{label} global {vn}[{k}]");
                }
            }
            (a, b) => assert_eq!(a, b, "{label} global {vn}"),
        }
    }
}

/// The core sweep: ≥200 generated programs, each run VM-vs-oracle in all
/// three modes on fresh sessions over one shared compiled artifact.
#[test]
fn generated_corpus_vm_matches_oracle() {
    for seed in 0..SEEDS {
        let srcs = fortrans::gen::generate(seed);
        let refs: Vec<&str> = srcs.iter().map(|s| s.as_str()).collect();
        let artifact = CompiledProgram::compile(&refs)
            .unwrap_or_else(|e| panic!("seed {seed}: generated program failed to compile: {e}"));
        for mode in MODES {
            let evm = Engine::from_artifact(artifact.clone());
            let etw = Engine::from_artifact(artifact.clone());
            let vm = snapshot(&evm, mode, ExecTier::Vm);
            let tw = snapshot(&etw, mode, ExecTier::TreeWalk);
            assert!(
                vm.result.is_ok(),
                "seed {seed} under {mode:?}: generated program errored: {:?}",
                vm.result
            );
            assert_equivalent(&format!("seed {seed}"), mode, &vm, &tw);
        }
    }
}

/// Native-tier arm of the sweep: every generated program must run
/// bit-identically under [`ExecTier::Native`] (VM dispatch with eager
/// JIT promotion) vs the tree-walking oracle in Serial mode. Where the
/// JIT backend is unavailable the tier falls through to the VM paths
/// and the identity still must hold.
#[test]
fn generated_corpus_native_matches_oracle_serially() {
    let mut entries = 0u64;
    for seed in 0..SEEDS {
        let srcs = fortrans::gen::generate(seed);
        let refs: Vec<&str> = srcs.iter().map(|s| s.as_str()).collect();
        let artifact = CompiledProgram::compile(&refs)
            .unwrap_or_else(|e| panic!("seed {seed}: generated program failed to compile: {e}"));
        let en = Engine::from_artifact(artifact.clone());
        let etw = Engine::from_artifact(artifact);
        let nv = snapshot(&en, ExecMode::Serial, ExecTier::Native);
        let tw = snapshot(&etw, ExecMode::Serial, ExecTier::TreeWalk);
        assert!(
            nv.result.is_ok(),
            "seed {seed}: native-tier run errored: {:?}",
            nv.result
        );
        assert_equivalent(&format!("seed {seed} (native)"), ExecMode::Serial, &nv, &tw);
        entries += en.native_entry_count();
    }
    if fortrans::jit::available() {
        assert!(entries > 0, "native arm never promoted a loop across {SEEDS} seeds");
    }
}

/// Serial determinism across repeated fresh sessions: the same artifact
/// must produce bit-identical state every time.
#[test]
fn generated_corpus_is_deterministic() {
    for seed in (0..SEEDS).step_by(20) {
        let srcs = fortrans::gen::generate(seed);
        let refs: Vec<&str> = srcs.iter().map(|s| s.as_str()).collect();
        let artifact = CompiledProgram::compile(&refs)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        let a = snapshot(&Engine::from_artifact(artifact.clone()), ExecMode::Serial, ExecTier::Vm);
        let b = snapshot(&Engine::from_artifact(artifact), ExecMode::Serial, ExecTier::Vm);
        assert_eq!(a, b, "seed {seed}: serial rerun diverged");
    }
}

/// Corruption sweep: randomly damaged fixed-form sources must never
/// panic the front end — every outcome is either a clean compile or an
/// accumulated-diagnostics error.
#[test]
fn corrupted_sources_never_panic() {
    use fortrans::gen::Rng;
    for seed in 0..60u64 {
        let mut srcs = fortrans::gen::generate(seed);
        let mut r = Rng::new(seed ^ 0xDEAD_BEEF);
        let fi = (r.below(2)) as usize;
        let mut lines: Vec<String> = srcs[fi].lines().map(String::from).collect();
        if lines.is_empty() {
            continue;
        }
        let li = (r.below(lines.len() as u64)) as usize;
        match r.below(5) {
            0 => {
                lines.remove(li);
            }
            1 => {
                let cut = (r.below(1 + lines[li].len() as u64)) as usize;
                lines[li].truncate(cut);
            }
            2 => lines[li] = format!("     &{}", lines[li]),
            3 => lines[li] = lines[li].replacen(['0', '1', '2'], "X", 1),
            _ => {
                let junk = "$ %^ 123 ((";
                lines.insert(li, junk.to_string());
            }
        }
        srcs[fi] = lines.join("\n");
        let refs: Vec<&str> = srcs.iter().map(|s| s.as_str()).collect();
        // Must return, never panic; errors must render (multi-error safe).
        if let Err(e) = CompiledProgram::compile(&refs) {
            let _ = e.to_string();
        }
    }
}
