//! # glaf — the end-to-end pipeline facade
//!
//! Ties the reproduction together the way the paper's Fig. 2 workflow
//! does: a program built through the GPI-equivalent builder flows through
//! the auto-parallelization back-end, the code-generation back-end, and
//! into the execution substrate:
//!
//! ```text
//! glaf_ir::Program ──validate──▶ glaf_autopar::ProgramPlan
//!        │                               │
//!        └──────── glaf_codegen ◀────────┘
//!                      │ FORTRAN source (serial / v0..v3 / cost-model)
//!                      ▼
//!              fortrans::Engine  ──Simulated──▶ simcpu::SimReport
//! ```
//!
//! [`verify`] implements the paper's §4.1.1 methodology: "a code-wide
//! side-by-side comparison of the results from the execution using the
//! GLAF auto-generated subroutines, against the results from executing
//! the original code", plus the §4.2.1 RMS check at 1e-7.

pub mod ingest;
pub mod sloc;
pub mod verify;

use fortrans::Engine;
use glaf_autopar::{
    analyze_program_with_log, fuse_program, CostAdvisor, DecisionLog, FusionReport, ProgramPlan,
};
use glaf_codegen::{generate_c, generate_fortran, CodegenOptions};
use glaf_ir::{validate_program, Program, ValidateError};

pub use glaf_codegen::policy::DirectivePolicy;
pub use sloc::{function_sloc_table, SlocRow};
pub use verify::{compare_slices, rms, CompareReport};

/// Target language for code generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lang {
    Fortran,
    C,
}

/// Output of one code-generation run.
#[derive(Debug, Clone)]
pub struct GeneratedCode {
    pub lang: Lang,
    pub source: String,
    /// Total source lines of code (paper Table 1 accounting).
    pub sloc: usize,
}

/// A validated GLAF program with its parallel plan.
pub struct Glaf {
    program: Program,
    plan: ProgramPlan,
    log: DecisionLog,
}

impl Glaf {
    /// Validates and analyzes a program. Returns the GPI-style diagnostics
    /// on failure.
    pub fn new(program: Program) -> Result<Glaf, Vec<ValidateError>> {
        let errs = validate_program(&program);
        if !errs.is_empty() {
            return Err(errs);
        }
        let (plan, log) = analyze_program_with_log(&program);
        Ok(Glaf { program, plan, log })
    }

    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The auto-parallelization back-end's verdicts.
    pub fn plan(&self) -> &ProgramPlan {
        &self.plan
    }

    /// The decision log behind [`Glaf::plan`]: which dependence test fired
    /// per loop, the applied clauses, and the cost advisor's verdict.
    pub fn decision_log(&self) -> &DecisionLog {
        &self.log
    }

    /// Applies the optimization back-end's cost-driven loop fusion
    /// (§2.1's "guiding the code generation" options), re-analyzes the
    /// rewritten program, and records each fusion's rationale on the
    /// fused loop's decision record. Returns one report per fusion;
    /// an empty vector means the program was left unchanged.
    pub fn fuse(&mut self) -> Vec<FusionReport> {
        let advisor = CostAdvisor::default();
        let reports = fuse_program(&mut self.program, &advisor);
        if !reports.is_empty() {
            let (plan, log) = analyze_program_with_log(&self.program);
            self.plan = plan;
            self.log = log;
            for r in &reports {
                if let Some(d) = self
                    .log
                    .loops
                    .iter_mut()
                    .find(|d| d.function == r.function && d.step_index == r.step_index)
                {
                    d.fusion =
                        Some(format!("fused {} loops [{}]: {}", r.fused, r.labels.join(" + "), r.why));
                }
            }
        }
        reports
    }

    /// Generates source code in `lang` under `opts`.
    pub fn generate(&self, lang: Lang, opts: &CodegenOptions) -> GeneratedCode {
        let source = match lang {
            Lang::Fortran => generate_fortran(&self.program, &self.plan, opts),
            Lang::C => generate_c(&self.program, &self.plan, opts),
        };
        let sloc = glaf_codegen::sloc(&source);
        GeneratedCode { lang, source, sloc }
    }

    /// Generates FORTRAN and compiles it together with the legacy sources
    /// it integrates into (existing modules, COMMON-block owners, original
    /// subroutines for comparison runs).
    pub fn compile_with(
        &self,
        opts: &CodegenOptions,
        legacy_sources: &[&str],
    ) -> Result<Engine, fortrans::CompileError> {
        let generated = self.generate(Lang::Fortran, opts);
        let mut sources: Vec<&str> = legacy_sources.to_vec();
        sources.push(&generated.source);
        Engine::compile(&sources)
    }

    /// [`Glaf::compile_with`], producing a shareable service-layer
    /// artifact instead of a one-shot engine: open sessions on it (or
    /// submit jobs against it) without recompiling.
    pub fn compile_artifact_with(
        &self,
        opts: &CodegenOptions,
        legacy_sources: &[&str],
    ) -> Result<std::sync::Arc<fortrans::CompiledProgram>, fortrans::CompileError> {
        let generated = self.generate(Lang::Fortran, opts);
        let mut sources: Vec<&str> = legacy_sources.to_vec();
        sources.push(&generated.source);
        fortrans::CompiledProgram::compile(&sources)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fortrans::{ArgVal, ExecMode};
    use glaf_grid::{DataType, Grid};
    use glaf_ir::{Expr, LValue, ProgramBuilder};

    fn axpy() -> Program {
        let n = Grid::build("n").typed(DataType::Integer).finish().unwrap();
        let a = Grid::build("a").typed(DataType::Real8).dim1(64).finish().unwrap();
        let b = Grid::build("b").typed(DataType::Real8).dim1(64).finish().unwrap();
        ProgramBuilder::new()
            .module("kern")
            .subroutine("axpy")
            .param(n)
            .param(a)
            .param(b)
            .loop_step("saxpy")
            .foreach("i", Expr::int(1), Expr::scalar("n"))
            .formula(
                LValue::at("a", vec![Expr::idx("i")]),
                Expr::at("a", vec![Expr::idx("i")])
                    + Expr::at("b", vec![Expr::idx("i")]) * Expr::real(2.0),
            )
            .done()
            .done()
            .done()
            .finish()
    }

    #[test]
    fn pipeline_end_to_end() {
        let g = Glaf::new(axpy()).unwrap();
        assert_eq!(g.plan().parallel_loop_count(), 1);
        let engine = g
            .compile_with(&CodegenOptions::parallel_version(0), &[])
            .unwrap();
        let a = ArgVal::array_f(&vec![1.0; 64], 1);
        let b = ArgVal::array_f(&(0..64).map(|i| i as f64).collect::<Vec<_>>(), 1);
        for mode in [ExecMode::Serial, ExecMode::Parallel { threads: 4 }] {
            engine.run("axpy", &[ArgVal::I(64), a.clone(), b.clone()], mode).unwrap();
        }
        // Two applications of a += 2b.
        let h = a.handle().unwrap();
        assert_eq!(h.get_f(10), 1.0 + 2.0 * (2.0 * 10.0));
    }

    #[test]
    fn invalid_program_rejected() {
        let mut p = axpy();
        p.modules[0].functions[0].steps.clear();
        // Reference a missing grid.
        let bad = Grid::build("ghost_user").typed(DataType::Real8).finish().unwrap();
        drop(bad);
        p.modules[0].functions[0].steps.push(glaf_ir::Step {
            label: None,
            body: glaf_ir::StepBody::Straight(vec![glaf_ir::Stmt::assign(
                LValue::scalar("ghost"),
                Expr::int(1),
            )]),
        });
        assert!(Glaf::new(p).is_err());
    }

    #[test]
    fn generated_c_and_fortran_both_nonempty() {
        let g = Glaf::new(axpy()).unwrap();
        let f = g.generate(Lang::Fortran, &CodegenOptions::serial());
        let c = g.generate(Lang::C, &CodegenOptions::serial());
        assert!(f.sloc > 5, "{}", f.source);
        assert!(c.sloc > 5, "{}", c.source);
        assert!(f.source.contains("SUBROUTINE axpy"));
        assert!(c.source.contains("void axpy"));
    }

    #[test]
    fn simulated_pipeline_produces_trace() {
        let g = Glaf::new(axpy()).unwrap();
        let engine = g
            .compile_with(&CodegenOptions::parallel_version(0), &[])
            .unwrap();
        let a = ArgVal::array_f(&vec![1.0; 64], 1);
        let b = ArgVal::array_f(&vec![1.0; 64], 1);
        let out = engine
            .run(
                "axpy",
                &[ArgVal::I(64), a, b],
                ExecMode::Simulated { threads: 4 },
            )
            .unwrap();
        assert_eq!(out.trace.region_count(), 1);
        let rep = simcpu::time_trace(&out.trace, &simcpu::MachineModel::i5_2400_like());
        assert!(rep.total_cycles > 0.0);
        assert_eq!(rep.regions, 1);
    }
}
