//! Legacy ingestion bridge: lift a parsed `fortrans` AST into
//! [`glaf_ir`] so the auto-parallelization back-end can produce a
//! [`glaf_autopar::DecisionLog`] for *ingested* programs — including
//! fixed-form F77 assembled by `fortrans::ProgramSet::from_sources` —
//! not just programs authored through the GPI-style builder.
//!
//! The lift is deliberately partial: it models exactly what autopar
//! reasons about (DO nests over declared arrays, the formulas inside
//! them, scalar state) and records everything it cannot express as a
//! human-readable note instead of failing. Constructs outside the GLAF
//! subset — character data, derived types, I/O, unstructured control
//! that survived front-end legalization — are skipped with a note, so
//! the returned [`IngestReport`] is both an analyzable program and an
//! honest account of coverage.

use fortrans::ast as fast;
use glaf_grid::{DataType, Grid};
use glaf_ir::{BinOp, Expr, LValue, LibFunc, Program, ProgramBuilder, Stmt, UnOp};
use std::collections::HashMap;

/// Extent used for arrays whose declared bounds are not literal
/// constants after front-end folding (e.g. adjustable dummy arrays).
/// Autopar decisions depend on structure, not the exact trip count.
const DEFAULT_EXTENT: i64 = 1024;

/// The result of lifting one AST.
pub struct IngestReport {
    /// The lifted program, one `glaf_ir` function per ingested unit.
    pub program: Program,
    /// DO nests lifted into loop steps (what autopar will decide on).
    pub lifted_loops: usize,
    /// Constructs the GLAF subset cannot express, one note each.
    pub skipped: Vec<String>,
}

struct Sym {
    rank: usize,
}

struct Lift<'a> {
    syms: HashMap<String, Sym>,
    unit_names: Vec<String>,
    idx_stack: Vec<String>,
    unit: &'a str,
    skipped: Vec<String>,
    lifted_loops: usize,
}

fn data_type(ts: &fast::TypeSpec) -> Option<DataType> {
    match ts {
        fast::TypeSpec::Integer => Some(DataType::Integer),
        fast::TypeSpec::Real => Some(DataType::Real),
        fast::TypeSpec::Real8 => Some(DataType::Real8),
        fast::TypeSpec::Logical => Some(DataType::Logical),
        fast::TypeSpec::Character | fast::TypeSpec::Derived(_) => None,
    }
}

fn const_bound(e: &Option<fast::Expr>) -> Option<i64> {
    match e {
        Some(fast::Expr::Int(v)) => Some(*v),
        _ => None,
    }
}

fn lib_func(name: &str) -> Option<LibFunc> {
    Some(match name {
        "abs" => LibFunc::Abs,
        "alog" => LibFunc::Alog,
        "log" => LibFunc::Log,
        "log10" => LibFunc::Log10,
        "exp" => LibFunc::Exp,
        "sqrt" => LibFunc::Sqrt,
        "sin" => LibFunc::Sin,
        "cos" => LibFunc::Cos,
        "tan" => LibFunc::Tan,
        "max" => LibFunc::Max,
        "min" => LibFunc::Min,
        "mod" => LibFunc::Mod,
        "int" => LibFunc::Int,
        "real" | "float" => LibFunc::Real,
        "dble" => LibFunc::Dble,
        "sign" => LibFunc::Sign,
        _ => return None,
    })
}

impl Lift<'_> {
    fn note(&mut self, what: impl std::fmt::Display) {
        self.skipped.push(format!("{}: {what}", self.unit));
    }

    fn expr(&mut self, e: &fast::Expr) -> Result<Expr, String> {
        match e {
            fast::Expr::Int(v) => Ok(Expr::int(*v)),
            fast::Expr::Real(v) => Ok(Expr::real(*v)),
            fast::Expr::Logical(b) => Ok(Expr::BoolLit(*b)),
            fast::Expr::Str(_) => Err("character literal".into()),
            fast::Expr::Neg(x) => {
                Ok(Expr::Unary { op: UnOp::Neg, operand: Box::new(self.expr(x)?) })
            }
            fast::Expr::Not(x) => {
                Ok(Expr::Unary { op: UnOp::Not, operand: Box::new(self.expr(x)?) })
            }
            fast::Expr::Bin(op, a, b) => {
                let l = self.expr(a)?;
                let r = self.expr(b)?;
                let op = match op {
                    fast::Bin::Add => BinOp::Add,
                    fast::Bin::Sub => BinOp::Sub,
                    fast::Bin::Mul => BinOp::Mul,
                    fast::Bin::Div => BinOp::Div,
                    fast::Bin::Pow => return Ok(l.pow(r)),
                    fast::Bin::Eq => BinOp::Eq,
                    fast::Bin::Ne => BinOp::Ne,
                    fast::Bin::Lt => BinOp::Lt,
                    fast::Bin::Le => BinOp::Le,
                    fast::Bin::Gt => BinOp::Gt,
                    fast::Bin::Ge => BinOp::Ge,
                    fast::Bin::And => BinOp::And,
                    fast::Bin::Or => BinOp::Or,
                };
                Ok(Expr::Binary { op, lhs: Box::new(l), rhs: Box::new(r) })
            }
            fast::Expr::Name(d) => self.name(d),
        }
    }

    fn name(&mut self, d: &fast::Desig) -> Result<Expr, String> {
        if d.parts.len() != 1 {
            return Err(format!("derived-type reference `{}`", d.base()));
        }
        let part = &d.parts[0];
        let n = &part.name;
        if part.subs.is_empty() {
            if self.idx_stack.iter().any(|v| v == n) {
                return Ok(Expr::idx(n.clone()));
            }
            if self.syms.contains_key(n) {
                return Ok(Expr::scalar(n.clone()));
            }
            return Err(format!("undeclared scalar `{n}`"));
        }
        let subs: Vec<Expr> =
            part.subs.iter().map(|s| self.expr(s)).collect::<Result<_, _>>()?;
        match self.syms.get(n) {
            Some(s) if s.rank > 0 => Ok(Expr::at(n.clone(), subs)),
            _ if self.unit_names.iter().any(|u| u == n) => Ok(Expr::call(n.clone(), subs)),
            _ => match lib_func(n) {
                Some(f) => Ok(Expr::lib(f, subs)),
                None => Err(format!("call of unknown function `{n}`")),
            },
        }
    }

    fn lvalue(&mut self, d: &fast::Desig) -> Result<LValue, String> {
        if d.parts.len() != 1 {
            return Err(format!("derived-type target `{}`", d.base()));
        }
        let part = &d.parts[0];
        if part.subs.is_empty() {
            return Ok(LValue::scalar(part.name.clone()));
        }
        let subs: Vec<Expr> =
            part.subs.iter().map(|s| self.expr(s)).collect::<Result<_, _>>()?;
        Ok(LValue::at(part.name.clone(), subs))
    }

    /// Maps one statement inside a lifted loop (or a straight-line
    /// region). `None` means the construct was skipped with a note.
    fn stmt(&mut self, s: &fast::Stmt) -> Option<Stmt> {
        match s {
            fast::Stmt::Assign { target, value, .. } => {
                let t = self.lvalue(target);
                let v = self.expr(value);
                match (t, v) {
                    (Ok(t), Ok(v)) => Some(Stmt::assign(t, v)),
                    (Err(e), _) | (_, Err(e)) => {
                        self.note(format_args!("assignment not lifted ({e})"));
                        None
                    }
                }
            }
            fast::Stmt::If { arms, else_body, .. } => {
                // Chain multi-arm IF into nested If statements.
                let mut out = self.stmts(else_body);
                for (cond, body) in arms.iter().rev() {
                    let c = match self.expr(cond) {
                        Ok(c) => c,
                        Err(e) => {
                            self.note(format_args!("IF condition not lifted ({e})"));
                            return None;
                        }
                    };
                    out = vec![Stmt::If {
                        cond: c,
                        then_body: self.stmts(body),
                        else_body: out,
                    }];
                }
                out.into_iter().next()
            }
            fast::Stmt::Exit(_) => Some(Stmt::Exit),
            fast::Stmt::Cycle(_) => Some(Stmt::Cycle),
            fast::Stmt::Continue(_) => None,
            fast::Stmt::Return(_) => Some(Stmt::Return(None)),
            fast::Stmt::Call { name, args, .. } => {
                if !self.unit_names.iter().any(|u| u == name) {
                    self.note(format_args!("CALL of external `{name}` not lifted"));
                    return None;
                }
                let mapped: Result<Vec<Expr>, String> =
                    args.iter().map(|a| self.expr(a)).collect();
                match mapped {
                    Ok(a) => Some(Stmt::CallSub { name: name.clone(), args: a }),
                    Err(e) => {
                        self.note(format_args!("CALL `{name}` not lifted ({e})"));
                        None
                    }
                }
            }
            fast::Stmt::Do { span, .. } => {
                self.note(format_args!(
                    "imperfectly nested DO at line {} kept opaque",
                    span.line
                ));
                None
            }
            other => {
                self.note(format_args!(
                    "statement at line {} outside the GLAF subset",
                    other.span().line
                ));
                None
            }
        }
    }

    fn stmts(&mut self, body: &[fast::Stmt]) -> Vec<Stmt> {
        body.iter().filter_map(|s| self.stmt(s)).collect()
    }
}

/// Lifts every unit of `ast` into one `glaf_ir` module. See the module
/// docs for the coverage contract.
pub fn lift_ast(ast: &fast::Ast, module_name: &str) -> IngestReport {
    let unit_names: Vec<String> = ast
        .modules
        .iter()
        .flat_map(|m| m.units.iter().map(|u| u.name.clone()))
        .collect();
    let mut skipped = Vec::new();
    let mut lifted_loops = 0usize;

    let mut mb = ProgramBuilder::new().module(module_name);
    for m in &ast.modules {
        for unit in &m.units {
            // Symbol table: every declared entity with a GLAF data type.
            let mut lift = Lift {
                syms: HashMap::new(),
                unit_names: unit_names.clone(),
                idx_stack: Vec::new(),
                unit: &unit.name,
                skipped: Vec::new(),
                lifted_loops: 0,
            };
            let mut grids: Vec<(String, Grid)> = Vec::new();
            for d in &unit.decls {
                let Some(ty) = data_type(&d.spec) else {
                    lift.note(format_args!(
                        "declaration at line {} has no GLAF data type",
                        d.span.line
                    ));
                    continue;
                };
                for e in &d.entities {
                    let dims = e.dims.as_ref().or(d.attrs.dims.as_ref());
                    let mut gb = Grid::build(e.name.clone()).typed(ty);
                    let mut rank = 0;
                    if let Some(dims) = dims {
                        for dd in dims {
                            let lo = const_bound(&dd.lo).unwrap_or(1);
                            let hi = match const_bound(&dd.hi) {
                                Some(h) => h,
                                None => {
                                    lift.note(format_args!(
                                        "array `{}` has a non-constant extent; \
                                         modeled as {DEFAULT_EXTENT}",
                                        e.name
                                    ));
                                    lo + DEFAULT_EXTENT - 1
                                }
                            };
                            gb = gb.dim(lo, hi);
                            rank += 1;
                        }
                    }
                    match gb.finish() {
                        Ok(g) => {
                            lift.syms.insert(e.name.clone(), Sym { rank });
                            grids.push((e.name.clone(), g));
                        }
                        Err(err) => lift.note(format_args!(
                            "grid `{}` not modeled ({err:?})",
                            e.name
                        )),
                    }
                }
            }

            let ret = match &unit.kind {
                fast::UnitKind::Function(ts) => data_type(ts).unwrap_or(DataType::Real8),
                fast::UnitKind::Subroutine => DataType::Integer,
            };
            // A FUNCTION's result variable is its own name; model it as
            // a scalar grid so result assignments lift.
            if matches!(unit.kind, fast::UnitKind::Function(_))
                && !lift.syms.contains_key(&unit.name)
            {
                if let Ok(g) = Grid::build(unit.name.clone()).typed(ret).finish() {
                    lift.syms.insert(unit.name.clone(), Sym { rank: 0 });
                    grids.push((unit.name.clone(), g));
                }
            }
            let mut fb = match &unit.kind {
                fast::UnitKind::Function(_) => mb.function(unit.name.clone(), ret),
                fast::UnitKind::Subroutine => mb.subroutine(unit.name.clone()),
            };
            let param_set: Vec<&String> = unit.params.iter().collect();
            for (name, g) in grids {
                if param_set.iter().any(|p| **p == name) {
                    fb = fb.param(g);
                } else {
                    fb = fb.local(g);
                }
            }

            // Body: DO nests become loop steps; runs of straight-line
            // statements between them become straight steps.
            let mut straight: Vec<Stmt> = Vec::new();
            let mut step_no = 0usize;
            for s in &unit.body {
                if let fast::Stmt::Do { .. } = s {
                    if !straight.is_empty() {
                        step_no += 1;
                        fb = fb.straight_step(format!("s{step_no}"), std::mem::take(&mut straight));
                    }
                    step_no += 1;
                    let mut sb = fb.loop_step(format!("do@{}", s.span().line));
                    // Chase the perfect prefix of the nest: each level
                    // whose body is exactly one inner DO chains another
                    // foreach; the innermost body provides the formulas.
                    let mut cur = s;
                    let mut depth = 0usize;
                    loop {
                        let fast::Stmt::Do { var, start, end, step, body, .. } = cur else {
                            unreachable!("loop chase starts at a DO");
                        };
                        let (lo, hi) = match (lift.expr(start), lift.expr(end)) {
                            (Ok(l), Ok(h)) => (l, h),
                            (Err(e), _) | (_, Err(e)) => {
                                lift.note(format_args!(
                                    "DO bounds at line {} not lifted ({e})",
                                    cur.span().line
                                ));
                                (Expr::int(1), Expr::int(DEFAULT_EXTENT))
                            }
                        };
                        lift.idx_stack.push(var.clone());
                        depth += 1;
                        sb = match step {
                            None => sb.foreach(var.clone(), lo, hi),
                            Some(st) => {
                                let st = lift.expr(st).unwrap_or(Expr::int(1));
                                sb.foreach_step(var.clone(), lo, hi, st)
                            }
                        };
                        match body.as_slice() {
                            [inner @ fast::Stmt::Do { .. }] => cur = inner,
                            _ => {
                                for mapped in lift.stmts(body) {
                                    sb = sb.stmt(mapped);
                                }
                                break;
                            }
                        }
                    }
                    lift.lifted_loops += 1;
                    lift.idx_stack.truncate(lift.idx_stack.len() - depth);
                    fb = sb.done();
                } else if let Some(mapped) = lift.stmt(s) {
                    straight.push(mapped);
                }
            }
            if !straight.is_empty() {
                step_no += 1;
                fb = fb.straight_step(format!("s{step_no}"), straight);
            }
            mb = fb.done();
            skipped.extend(lift.skipped);
            lifted_loops += lift.lifted_loops;
        }
    }

    IngestReport { program: mb.done().finish(), lifted_loops, skipped }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifts_fixed_form_common_program() {
        let src = "\n      SUBROUTINE SCALE(N)\n      COMMON /DAT/ A(8), S\n\
                   \n      DO 10 I = 1, N\n      A(I) = A(I) * 2.0 + 1.0\n\
                   \x20  10 CONTINUE\n      S = A(1)\n      END\n";
        let set = fortrans::ProgramSet::from_sources(&[src]).expect("compiles");
        let report = lift_ast(&set.ast, "ingested");
        assert_eq!(report.lifted_loops, 1);
        let (_, log) = glaf_autopar::analyze_program_with_log(&report.program);
        let rendered = log.render();
        assert!(rendered.contains("do@"), "decision log names the loop: {rendered}");
    }

    #[test]
    fn notes_unliftable_constructs_instead_of_failing() {
        let src = "\n      K = 1\n      PRINT *, K\n      END\n";
        let set = fortrans::ProgramSet::from_sources(&[src]).expect("compiles");
        let report = lift_ast(&set.ast, "ingested");
        assert!(
            report.skipped.iter().any(|n| n.contains("outside the GLAF subset")),
            "PRINT must be noted, got: {:?}",
            report.skipped
        );
    }
}
