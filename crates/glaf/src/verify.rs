//! Functional-correctness comparison — the paper's §4.1.1 / §4.2.1
//! methodology.

/// Result of comparing two result vectors element-wise.
#[derive(Debug, Clone, PartialEq)]
pub struct CompareReport {
    pub n: usize,
    pub max_abs_diff: f64,
    pub max_rel_diff: f64,
    pub rms_diff: f64,
    /// Index of the worst absolute difference.
    pub worst_index: usize,
}

impl CompareReport {
    /// The §4.2.1 acceptance test: "a reference root mean square of the
    /// output arrays that is automatically checked at a 1e-7 (absolute)
    /// tolerance".
    pub fn passes_rms(&self, tol: f64) -> bool {
        self.rms_diff <= tol
    }

    /// Strict elementwise tolerance check.
    pub fn passes_abs(&self, tol: f64) -> bool {
        self.max_abs_diff <= tol
    }
}

/// Compares two slices.
///
/// Panics if lengths differ — a shape mismatch is a bug in the harness,
/// not a numerical difference.
pub fn compare_slices(a: &[f64], b: &[f64]) -> CompareReport {
    assert_eq!(a.len(), b.len(), "compare_slices: length mismatch");
    let mut max_abs = 0.0f64;
    let mut max_rel = 0.0f64;
    let mut sq = 0.0f64;
    let mut worst = 0usize;
    for (i, (&x, &y)) in a.iter().zip(b.iter()).enumerate() {
        let d = (x - y).abs();
        if d > max_abs {
            max_abs = d;
            worst = i;
        }
        let denom = x.abs().max(y.abs());
        if denom > 0.0 {
            max_rel = max_rel.max(d / denom);
        }
        sq += d * d;
    }
    CompareReport {
        n: a.len(),
        max_abs_diff: max_abs,
        max_rel_diff: max_rel,
        rms_diff: if a.is_empty() { 0.0 } else { (sq / a.len() as f64).sqrt() },
        worst_index: worst,
    }
}

/// Root mean square of a vector (the FUN3D output norm).
pub fn rms(v: &[f64]) -> f64 {
    if v.is_empty() {
        return 0.0;
    }
    (v.iter().map(|x| x * x).sum::<f64>() / v.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identical_slices_report_zero() {
        let a = vec![1.0, -2.0, 3.5];
        let r = compare_slices(&a, &a);
        assert_eq!(r.max_abs_diff, 0.0);
        assert_eq!(r.rms_diff, 0.0);
        assert!(r.passes_rms(0.0));
    }

    #[test]
    fn worst_index_found() {
        let a = vec![1.0, 2.0, 3.0];
        let b = vec![1.0, 2.5, 3.1];
        let r = compare_slices(&a, &b);
        assert_eq!(r.worst_index, 1);
        assert_eq!(r.max_abs_diff, 0.5);
        assert!(!r.passes_abs(0.1));
        assert!(r.passes_abs(0.5));
    }

    #[test]
    fn rms_basics() {
        assert_eq!(rms(&[]), 0.0);
        assert_eq!(rms(&[3.0, 4.0]), (12.5f64).sqrt());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        compare_slices(&[1.0], &[1.0, 2.0]);
    }

    proptest! {
        /// RMS diff is never larger than max abs diff.
        #[test]
        fn rms_bounded_by_max(a in prop::collection::vec(-1e6f64..1e6, 1..64),
                              d in prop::collection::vec(-1.0f64..1.0, 1..64)) {
            let n = a.len().min(d.len());
            let a = &a[..n];
            let b: Vec<f64> = a.iter().zip(&d[..n]).map(|(x, y)| x + y).collect();
            let r = compare_slices(a, &b);
            prop_assert!(r.rms_diff <= r.max_abs_diff + 1e-12);
        }

        /// Comparison is symmetric in its absolute metrics.
        #[test]
        fn compare_symmetric(a in prop::collection::vec(-1e3f64..1e3, 1..32),
                             b in prop::collection::vec(-1e3f64..1e3, 1..32)) {
            let n = a.len().min(b.len());
            let r1 = compare_slices(&a[..n], &b[..n]);
            let r2 = compare_slices(&b[..n], &a[..n]);
            prop_assert_eq!(r1.max_abs_diff, r2.max_abs_diff);
            prop_assert!((r1.rms_diff - r2.rms_diff).abs() < 1e-15);
        }
    }
}
