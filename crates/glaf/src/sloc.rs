//! Per-subroutine SLOC accounting — the paper's Table 1.

use glaf_codegen::{generate_fortran_function, CodegenOptions};
use glaf_ir::Program;

/// One Table 1 row.
#[derive(Debug, Clone, PartialEq)]
pub struct SlocRow {
    pub subroutine: String,
    pub sloc: usize,
}

/// SLOC of every function in the program, as generated FORTRAN under
/// `opts` (the paper counts the implemented subroutines' source lines;
/// we count the equivalent generated code).
pub fn function_sloc_table(program: &Program, opts: &CodegenOptions) -> Vec<SlocRow> {
    let plan = glaf_autopar::analyze_program(program);
    let mut rows = Vec::new();
    for module in &program.modules {
        for func in &module.functions {
            let src = generate_fortran_function(program, module, func, &plan, opts);
            rows.push(SlocRow { subroutine: func.name.clone(), sloc: glaf_codegen::sloc(&src) });
        }
    }
    rows
}

/// Counts SLOC per `SUBROUTINE`/`FUNCTION` in a hand-written FORTRAN
/// source (for the "original" column).
pub fn fortran_unit_sloc(source: &str) -> Vec<SlocRow> {
    let mut rows: Vec<SlocRow> = Vec::new();
    let mut current: Option<(String, usize)> = None;
    for line in source.lines() {
        let t = line.trim();
        if t.is_empty() || (t.starts_with('!') && !t.starts_with("!$")) {
            continue;
        }
        let lower = t.to_ascii_lowercase();
        let first_two: Vec<&str> = lower.split_whitespace().take(2).collect();
        let is_start = matches!(first_two.first(), Some(&"subroutine"))
            || first_two.get(1).map(|w| w.starts_with("function")).unwrap_or(false)
            || lower.starts_with("function ");
        if is_start && current.is_none() {
            let name = lower
                .split_whitespace()
                .skip_while(|w| *w != "subroutine" && !w.starts_with("function"))
                .nth(1)
                .unwrap_or("?")
                .split('(')
                .next()
                .unwrap_or("?")
                .to_string();
            current = Some((name, 1));
            continue;
        }
        if let Some((name, count)) = current.as_mut() {
            *count += 1;
            if lower.starts_with("end subroutine") || lower.starts_with("end function") {
                rows.push(SlocRow { subroutine: name.clone(), sloc: *count });
                current = None;
            }
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_sloc_counts_per_subroutine() {
        let src = "\
MODULE m
CONTAINS
  SUBROUTINE a()
    x = 1
    y = 2
  END SUBROUTINE a
  ! comment
  REAL(8) FUNCTION b()
    b = 1.0
  END FUNCTION b
END MODULE m
";
        let rows = fortran_unit_sloc(src);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].subroutine, "a");
        assert_eq!(rows[0].sloc, 4, "header + 2 stmts + end");
        assert_eq!(rows[1].subroutine, "b");
        assert_eq!(rows[1].sloc, 3);
    }

    #[test]
    fn generated_table_nonzero() {
        use glaf_grid::{DataType, Grid};
        use glaf_ir::{Expr, LValue, ProgramBuilder};
        let a = Grid::build("a").typed(DataType::Real8).dim1(8).finish().unwrap();
        let p = ProgramBuilder::new()
            .module("m")
            .subroutine("zero")
            .param(a)
            .loop_step("z")
            .foreach("i", Expr::int(1), Expr::int(8))
            .formula(LValue::at("a", vec![Expr::idx("i")]), Expr::real(0.0))
            .done()
            .done()
            .done()
            .finish();
        let rows = function_sloc_table(&p, &CodegenOptions::serial());
        assert_eq!(rows.len(), 1);
        assert!(rows[0].sloc >= 6, "{rows:?}");
    }
}
