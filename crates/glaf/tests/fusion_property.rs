//! Property test for the optimization back-end's loop fusion: over
//! randomly generated runs of conformable single loops — including
//! producer/consumer chains and shifted reads that make fusion illegal —
//! applying [`Glaf::fuse`] before code generation never changes a bit of
//! the serial answer. Illegal runs must be left unfused (same result
//! trivially); legal runs interleave only same-iteration work.

use fortrans::{ArgVal, ExecMode};
use glaf::Glaf;
use glaf_codegen::CodegenOptions;
use glaf_grid::{DataType, Grid};
use glaf_ir::{Expr, LValue, Program, ProgramBuilder};
use proptest::prelude::*;

const GRIDS: [&str; 4] = ["ga", "gb", "gc", "gd"];
const DIM: i64 = 64;
/// Loops run i = 2..N so a ±1 subscript shift stays in bounds.
const N: i64 = 48;

/// One generated loop: `GRIDS[target](i) = bias + Σ coef·GRIDS[src](i+shift)`.
#[derive(Debug, Clone)]
struct LoopSpec {
    target: usize,
    terms: Vec<(usize, i64, f64)>,
    bias: f64,
}

fn loop_spec() -> impl Strategy<Value = LoopSpec> {
    (
        0..GRIDS.len(),
        proptest::collection::vec((0..GRIDS.len(), -1..=1i64, -2.0..2.0f64), 1..3),
        -1.0..1.0f64,
    )
        .prop_map(|(target, terms, bias)| LoopSpec { target, terms, bias })
}

fn build_program(specs: &[LoopSpec]) -> Program {
    let mut fb = ProgramBuilder::new().module("m").subroutine("kern");
    for g in GRIDS {
        fb = fb.param(Grid::build(g).typed(DataType::Real8).dim1(DIM).finish().unwrap());
    }
    for (k, spec) in specs.iter().enumerate() {
        let mut rhs = Expr::real(spec.bias);
        for &(src, shift, coef) in &spec.terms {
            let sub = if shift == 0 {
                Expr::idx("i")
            } else {
                Expr::idx("i") + Expr::int(shift)
            };
            rhs = rhs + Expr::real(coef) * Expr::at(GRIDS[src], vec![sub]);
        }
        fb = fb
            .loop_step(format!("loop {k}"))
            .foreach("i", Expr::int(2), Expr::int(N))
            .formula(LValue::at(GRIDS[spec.target], vec![Expr::idx("i")]), rhs)
            .done();
    }
    fb.done().done().finish()
}

fn init(k: usize) -> Vec<f64> {
    (0..DIM).map(|i| ((i * 7 + k as i64 * 13) % 17) as f64 * 0.5 - 3.0).collect()
}

/// Runs the program serially (optionally fused first) and returns every
/// grid's final contents.
fn run(program: Program, fuse: bool) -> (Vec<Vec<f64>>, usize) {
    let mut g = Glaf::new(program).expect("generated program is valid");
    let fused = if fuse { g.fuse().len() } else { 0 };
    let engine = g
        .compile_with(&CodegenOptions::serial(), &[])
        .expect("generated code compiles");
    let args: Vec<ArgVal> = (0..GRIDS.len()).map(|k| ArgVal::array_f(&init(k), 1)).collect();
    engine.run("kern", &args, ExecMode::Serial).expect("kern runs");
    let out = args.iter().map(|a| a.handle().unwrap().to_f64_vec()).collect();
    (out, fused)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fusion_never_changes_results(specs in proptest::collection::vec(loop_spec(), 2..5)) {
        let (base, _) = run(build_program(&specs), false);
        let (fused, _) = run(build_program(&specs), true);
        prop_assert_eq!(base, fused);
    }
}

/// Deterministic companion: a plain producer/consumer pair does fuse (the
/// property above must also cover the fused path, not just refusals).
#[test]
fn conformable_pair_actually_fuses() {
    let specs = vec![
        LoopSpec { target: 0, terms: vec![(1, 0, 2.0)], bias: 0.5 },
        LoopSpec { target: 2, terms: vec![(0, 0, 1.0)], bias: 0.0 },
    ];
    let (base, fused_count) = run(build_program(&specs), true);
    assert_eq!(fused_count, 1, "the pair fuses");
    let (unfused, _) = run(build_program(&specs), false);
    assert_eq!(base, unfused);
}
