//! Feeds measured vector-tier results back into the cost model.
//!
//! The vector smoke bin commits `BENCH_pr6.json` with, per kernel, the
//! scalar-vs-vector speedup and the number of loop entries that actually
//! ran vectorized. Those pairs are exactly the evidence
//! `glaf_autopar::calibrate_simd_speedup` wants, so this module extracts
//! them from any `BENCH_*.json` document (schema-agnostic, via the same
//! numeric-leaf flattening the regression gate uses) and closes the
//! loop: the flat `simd_speedup = 4.0` prior becomes a measured,
//! entry-weighted value.

use crate::compare::numeric_leaves;

/// One kernel's measured vector-tier evidence.
#[derive(Debug, Clone, PartialEq)]
pub struct VectorSample {
    /// Dotted path prefix of the kernel (e.g. `kernels.sarb_longwave`).
    pub kernel: String,
    /// Measured scalar-over-vector speedup.
    pub speedup: f64,
    /// Loop entries that executed on the vector path.
    pub entries: u64,
}

/// Extracts `(speedup, vector_entries)` pairs from a trajectory file:
/// every dotted-path prefix carrying both a `speedup` and a
/// `vector_entries` leaf yields one sample, in document order.
pub fn vector_samples(bench_json: &str) -> Result<Vec<VectorSample>, String> {
    let leaves = numeric_leaves(bench_json)?;
    let mut out = Vec::new();
    for (path, speedup) in &leaves {
        let Some(kernel) = path.strip_suffix(".speedup") else { continue };
        let entries_path = format!("{kernel}.vector_entries");
        if let Some((_, entries)) = leaves.iter().find(|(p, _)| *p == entries_path) {
            out.push(VectorSample {
                kernel: kernel.to_string(),
                speedup: *speedup,
                entries: *entries as u64,
            });
        }
    }
    Ok(out)
}

/// End to end: trajectory JSON in, calibrated `simd_speedup` out.
/// `None` when the document carries no usable samples.
pub fn calibrated_simd_speedup(bench_json: &str) -> Result<Option<f64>, String> {
    let pairs: Vec<(f64, u64)> =
        vector_samples(bench_json)?.into_iter().map(|s| (s.speedup, s.entries)).collect();
    Ok(glaf_autopar::calibrate_simd_speedup(&pairs))
}

#[cfg(test)]
mod tests {
    use super::*;

    const BENCH: &str = r#"{
      "pr": 6,
      "kernels": {
        "a": {"scalar_vm_ns": 100, "vector_vm_ns": 50, "speedup": 2.0, "vector_entries": 10},
        "b": {"scalar_vm_ns": 80, "vector_vm_ns": 10, "speedup": 8.0, "vector_entries": 10},
        "no_vec": {"scalar_vm_ns": 5, "vector_vm_ns": 5}
      }
    }"#;

    #[test]
    fn samples_pair_speedup_with_entries() {
        let s = vector_samples(BENCH).unwrap();
        assert_eq!(s.len(), 2, "{s:?}");
        assert_eq!(s[0].kernel, "kernels.a");
        assert_eq!(s[0].speedup, 2.0);
        assert_eq!(s[1].entries, 10);
    }

    #[test]
    fn calibration_runs_end_to_end() {
        let v = calibrated_simd_speedup(BENCH).unwrap().unwrap();
        assert!((v - 4.0).abs() < 1e-12, "geometric mean of 2x and 8x: {v}");
        assert_eq!(calibrated_simd_speedup(r#"{"pr": 6}"#).unwrap(), None);
    }
}
