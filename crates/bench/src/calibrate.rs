//! Feeds measured vector-tier results back into the cost model.
//!
//! The vector smoke bin commits `BENCH_pr6.json` with, per kernel, the
//! scalar-vs-vector speedup and the number of loop entries that actually
//! ran vectorized. Those pairs are exactly the evidence
//! `glaf_autopar::calibrate_simd_speedup` wants, so this module extracts
//! them from any `BENCH_*.json` document (schema-agnostic, via the same
//! numeric-leaf flattening the regression gate uses) and closes the
//! loop: the flat `simd_speedup = 4.0` prior becomes a measured,
//! entry-weighted value.

use crate::compare::numeric_leaves;

/// One kernel's measured vector-tier evidence.
#[derive(Debug, Clone, PartialEq)]
pub struct VectorSample {
    /// Dotted path prefix of the kernel (e.g. `kernels.sarb_longwave`).
    pub kernel: String,
    /// Measured scalar-over-vector speedup.
    pub speedup: f64,
    /// Loop entries that executed on the vector path.
    pub entries: u64,
}

/// Extracts `(speedup, vector_entries)` pairs from a trajectory file:
/// every dotted-path prefix carrying both a `speedup` and a
/// `vector_entries` leaf yields one sample, in document order.
pub fn vector_samples(bench_json: &str) -> Result<Vec<VectorSample>, String> {
    let leaves = numeric_leaves(bench_json)?;
    let mut out = Vec::new();
    for (path, speedup) in &leaves {
        let Some(kernel) = path.strip_suffix(".speedup") else { continue };
        let entries_path = format!("{kernel}.vector_entries");
        if let Some((_, entries)) = leaves.iter().find(|(p, _)| *p == entries_path) {
            out.push(VectorSample {
                kernel: kernel.to_string(),
                speedup: *speedup,
                entries: *entries as u64,
            });
        }
    }
    Ok(out)
}

/// End to end: trajectory JSON in, calibrated `simd_speedup` out.
/// `None` when the document carries no usable samples.
pub fn calibrated_simd_speedup(bench_json: &str) -> Result<Option<f64>, String> {
    let pairs: Vec<(f64, u64)> =
        vector_samples(bench_json)?.into_iter().map(|s| (s.speedup, s.entries)).collect();
    Ok(glaf_autopar::calibrate_simd_speedup(&pairs))
}

/// One kernel's measured native-tier (tier-3 JIT) evidence.
#[derive(Debug, Clone, PartialEq)]
pub struct NativeSample {
    /// Dotted path prefix of the kernel (e.g. `kernels.sarb_longwave`).
    pub kernel: String,
    /// Measured scalar-over-native speedup.
    pub speedup: f64,
    /// Loop entries that committed on the native path.
    pub entries: u64,
}

/// Extracts `(native_speedup, native_entries)` pairs from a trajectory
/// file (the `BENCH_pr10.json` schema the JIT smoke bin commits): every
/// dotted-path prefix carrying both leaves yields one sample, in
/// document order.
pub fn native_samples(bench_json: &str) -> Result<Vec<NativeSample>, String> {
    let leaves = numeric_leaves(bench_json)?;
    let mut out = Vec::new();
    for (path, speedup) in &leaves {
        let Some(kernel) = path.strip_suffix(".native_speedup") else { continue };
        let entries_path = format!("{kernel}.native_entries");
        if let Some((_, entries)) = leaves.iter().find(|(p, _)| *p == entries_path) {
            out.push(NativeSample {
                kernel: kernel.to_string(),
                speedup: *speedup,
                entries: *entries as u64,
            });
        }
    }
    Ok(out)
}

/// End to end: trajectory JSON in, calibrated `native_speedup` out.
/// `None` when the document carries no usable samples (e.g. a trajectory
/// recorded on a host without the JIT backend).
pub fn calibrated_native_speedup(bench_json: &str) -> Result<Option<f64>, String> {
    let pairs: Vec<(f64, u64)> =
        native_samples(bench_json)?.into_iter().map(|s| (s.speedup, s.entries)).collect();
    Ok(glaf_autopar::calibrate_native_speedup(&pairs))
}

#[cfg(test)]
mod tests {
    use super::*;

    const BENCH: &str = r#"{
      "pr": 6,
      "kernels": {
        "a": {"scalar_vm_ns": 100, "vector_vm_ns": 50, "speedup": 2.0, "vector_entries": 10},
        "b": {"scalar_vm_ns": 80, "vector_vm_ns": 10, "speedup": 8.0, "vector_entries": 10},
        "no_vec": {"scalar_vm_ns": 5, "vector_vm_ns": 5}
      }
    }"#;

    #[test]
    fn samples_pair_speedup_with_entries() {
        let s = vector_samples(BENCH).unwrap();
        assert_eq!(s.len(), 2, "{s:?}");
        assert_eq!(s[0].kernel, "kernels.a");
        assert_eq!(s[0].speedup, 2.0);
        assert_eq!(s[1].entries, 10);
    }

    #[test]
    fn calibration_runs_end_to_end() {
        let v = calibrated_simd_speedup(BENCH).unwrap().unwrap();
        assert!((v - 4.0).abs() < 1e-12, "geometric mean of 2x and 8x: {v}");
        assert_eq!(calibrated_simd_speedup(r#"{"pr": 6}"#).unwrap(), None);
    }

    const BENCH_NATIVE: &str = r#"{
      "pr": 10,
      "kernels": {
        "a": {"scalar_vm_ns": 100, "native_ns": 25, "native_speedup": 4.0, "native_entries": 6},
        "b": {"scalar_vm_ns": 90, "native_ns": 10, "native_speedup": 9.0, "native_entries": 6},
        "no_jit": {"scalar_vm_ns": 5, "vector_vm_ns": 5, "speedup": 1.0, "vector_entries": 3}
      }
    }"#;

    #[test]
    fn native_samples_pair_speedup_with_entries() {
        let s = native_samples(BENCH_NATIVE).unwrap();
        assert_eq!(s.len(), 2, "{s:?}");
        assert_eq!(s[0].kernel, "kernels.a");
        assert_eq!(s[0].speedup, 4.0);
        assert_eq!(s[1].entries, 6);
        // The two extractors never cross-contaminate: the vector-only
        // kernel yields no native sample and vice versa.
        assert_eq!(vector_samples(BENCH_NATIVE).unwrap().len(), 1);
        assert_eq!(native_samples(BENCH).unwrap(), vec![]);
    }

    #[test]
    fn native_calibration_runs_end_to_end() {
        let v = calibrated_native_speedup(BENCH_NATIVE).unwrap().unwrap();
        assert!((v - 6.0).abs() < 1e-12, "geometric mean of 4x and 9x: {v}");
        assert_eq!(calibrated_native_speedup(r#"{"pr": 10}"#).unwrap(), None);
    }
}
