//! CI smoke: one profiled SARB execution, with report-schema validation.
//!
//! Usage: `profile_sarb [ncolumns] [threads]` (defaults 4, 3).
//!
//! Runs the GLAF v3 parallel SARB build under the profiler, prints the
//! observability report, and exits nonzero if the report violates its
//! schema (JSON round-trip, required sections, join coverage).

use glaf_bench::observe::observe_sarb;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let ncol: i64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(4);
    let threads: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(3);

    let report = match observe_sarb(ncol, threads) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("profile_sarb: SARB run failed: {e}");
            std::process::exit(1);
        }
    };

    let text = report.render();
    println!("{text}");

    let mut errors: Vec<String> = Vec::new();

    // The profile must survive a JSON round-trip unchanged.
    match fortrans::Profile::from_json(&report.profile.to_json()) {
        Ok(back) => {
            if back != report.profile {
                errors.push("profile JSON round-trip changed the profile".into());
            }
        }
        Err(e) => errors.push(format!("profile JSON does not parse back: {e}")),
    }

    for section in [
        "== profile ==",
        "== measured spans ==",
        "== omprt utilization ==",
        "== autopar decisions ==",
        "== predicted vs measured ==",
    ] {
        if !text.contains(section) {
            errors.push(format!("report is missing section {section:?}"));
        }
    }

    if report.profile.spans.is_empty() {
        errors.push("profile recorded no spans".into());
    }
    if report.profile.loop_entry_counts().is_empty() {
        errors.push("profile recorded no loop entries".into());
    }
    if report.profile.regions.is_empty() {
        errors.push("profile recorded no omprt regions".into());
    }
    if report.loops.is_empty() {
        errors.push("predicted-vs-measured join produced no loops".into());
    }
    if !report.loops.iter().any(|l| l.predicted_cycles.is_some()) {
        errors.push("no measured loop joined a predicted region cost".into());
    }
    if !(0.0..=1.0).contains(&report.agreement) {
        errors.push(format!("ordering agreement {} outside [0, 1]", report.agreement));
    }
    if report.decisions.is_empty() {
        errors.push("decision log is empty".into());
    }

    if errors.is_empty() {
        println!("profile_sarb: report schema OK");
    } else {
        for e in &errors {
            eprintln!("profile_sarb: SCHEMA VIOLATION: {e}");
        }
        std::process::exit(1);
    }
}
