//! Figure 5: "Speed-up of GLAF-generated versions versus the original
//! serial implementation of Synoptic SARB kernels of interest" — four
//! threads on the i5-2400-class machine model.
//!
//! Usage: `repro_fig5 [ncolumns] [threads]` (defaults 8, 4).

use glaf_bench::{ordering_agreement, print_bars, Bar};
use sarb::variants::{run_simulated, SarbVariant};
use simcpu::MachineModel;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let ncol: i64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(8);
    let threads: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(4);
    let machine = MachineModel::i5_2400_like();
    println!("machine: {}   columns: {ncol}   threads: {threads}", machine.name);

    let base = run_simulated(SarbVariant::OriginalSerial, ncol, threads, &machine);
    let cases: Vec<(SarbVariant, Option<f64>)> = vec![
        (SarbVariant::OriginalSerial, Some(1.00)),
        (SarbVariant::GlafSerial, Some(0.89)),
        (SarbVariant::GlafParallel(0), Some(0.48)),
        (SarbVariant::GlafParallel(1), Some(0.66)),
        (SarbVariant::GlafParallel(2), Some(1.11)),
        (SarbVariant::GlafParallel(3), Some(1.41)),
        (SarbVariant::GlafCostModel, None),
    ];
    let bars: Vec<Bar> = cases
        .into_iter()
        .map(|(v, paper)| {
            let run = run_simulated(v, ncol, threads, &machine);
            Bar {
                label: run.variant_name.clone(),
                paper,
                measured: base.report.total_cycles / run.report.total_cycles,
            }
        })
        .collect();
    print_bars(
        "Figure 5: speed-up vs original serial (Synoptic SARB, 4 threads)",
        &bars,
    );
    println!(
        "\npairwise ordering agreement with the paper: {:.0}%",
        ordering_agreement(&bars) * 100.0
    );
}
