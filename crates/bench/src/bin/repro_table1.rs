//! Table 1: "Subroutines implemented using GLAF" — SLOC per subroutine.
//!
//! The paper reports the line counts of the restricted NASA originals; we
//! report (a) our synthetic originals and (b) the GLAF-generated code
//! (serial policy). The shape criterion: `longwave_entropy_model`
//! dominates, `shortwave_entropy_model` is the smallest.

use glaf::sloc::{function_sloc_table, fortran_unit_sloc};
use glaf_codegen::CodegenOptions;

const PAPER: &[(&str, usize)] = &[
    ("lw_spectral_integration", 75),
    ("longwave_entropy_model", 422),
    ("sw_spectral_integration", 50),
    ("shortwave_entropy_model", 13),
    ("entropy_interface", 46),
    ("adjust2", 38),
];

fn main() {
    let original_rows = fortran_unit_sloc(sarb::original::ORIGINAL_KERNELS_SRC);
    let program = sarb::glaf_model::build_sarb_program();
    let generated_rows = function_sloc_table(&program, &CodegenOptions::serial());

    println!("Table 1: Subroutines implemented using GLAF (SLOC)");
    println!("{:-<78}", "");
    println!(
        "{:28} {:>10} {:>16} {:>16}",
        "Subroutine", "paper", "our original", "GLAF-generated"
    );
    for (name, paper) in PAPER {
        let ours = original_rows
            .iter()
            .find(|r| r.subroutine == *name)
            .map(|r| r.sloc)
            .unwrap_or(0);
        let gen = generated_rows
            .iter()
            .find(|r| r.subroutine == *name)
            .map(|r| r.sloc)
            .unwrap_or(0);
        println!("{name:28} {paper:>10} {ours:>16} {gen:>16}");
    }
    let helpers: Vec<_> = generated_rows
        .iter()
        .filter(|r| r.subroutine.starts_with("g_"))
        .collect();
    println!(
        "\n(+ {} GLAF interior-loop helper functions totaling {} SLOC — the §3.3 decomposition)",
        helpers.len(),
        helpers.iter().map(|r| r.sloc).sum::<usize>()
    );
    println!(
        "\nNote: the NASA sources are restricted; ours are structural stand-ins \
         (DESIGN.md §2). The ordering (longwave dominates, shortwave-entropy \
         smallest) is the reproduced shape."
    );
}
