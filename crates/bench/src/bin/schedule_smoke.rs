//! CI smoke: the schedule matrix plus the feedback loop, with an
//! imbalance-report schema check, emitting `BENCH_pr5.json`.
//!
//! Usage: `schedule_smoke [out.json]` (default `BENCH_pr5.json`).
//!
//! 1. Times static / dynamic,1 / guided,2 on three kernels (the skewed
//!    triangular loop, SARB v3 `run_columns`, FUN3D `edgejp`) on real
//!    threads and records median wall times.
//! 2. Profiles the skewed kernel, validates the per-region imbalance
//!    report schema (tagged line, rendered schedule, one busy counter
//!    per worker, finite imbalance ≥ 1, JSON round-trip), runs
//!    `observe::reschedule`, applies the overrides, and verifies the
//!    imbalanced region actually flips to `dynamic,1`.
//! 3. Writes the measurements as JSON — the start of the perf
//!    trajectory file. Exits nonzero on any schema violation.

use std::fmt::Write as _;
use std::time::Instant;

use fortrans::{ArgVal, Engine, ExecMode, ExecTier, Schedule};
use glaf_bench::observe::reschedule;

const THREADS: usize = 4;

const SKEWED: &str = r#"
MODULE w
  REAL(8), DIMENSION(1:96) :: out
CONTAINS
  SUBROUTINE skewed(n)
    INTEGER :: n
    INTEGER :: i, k
    REAL(8) :: acc
    !$OMP PARALLEL DO DEFAULT(SHARED)
    DO i = 1, n
      acc = 0.0D0
      DO k = 1, i * 300
        acc = acc + DBLE(k) * 1.0D-9
      END DO
      out(i) = acc
    END DO
    !$OMP END PARALLEL DO
  END SUBROUTINE skewed
END MODULE w
"#;

fn median_ns(reps: usize, mut run: impl FnMut()) -> u64 {
    let mut samples: Vec<u64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            run();
            t.elapsed().as_nanos() as u64
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn matrix_row(label: &str, mk: impl Fn() -> Engine, run: impl Fn(&Engine)) -> Vec<(String, u64)> {
    [
        ("static", None),
        ("dynamic,1", Some(Schedule::Dynamic(1))),
        ("guided,2", Some(Schedule::Guided(2))),
    ]
    .into_iter()
    .map(|(name, sched)| {
        let engine = mk();
        engine.set_schedule_override_all(sched);
        run(&engine); // warm-up
        let ns = median_ns(5, || run(&engine));
        println!("{label:<22} {name:<10} {:.3} ms", ns as f64 / 1e6);
        (name.to_string(), ns)
    })
    .collect()
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_pr5.json".into());
    let mut errors: Vec<String> = Vec::new();

    // 1. Schedule matrix.
    println!("== schedule matrix (median of 5, {THREADS} threads) ==");
    let skewed = matrix_row(
        "skewed_triangular",
        || Engine::compile(&[SKEWED]).unwrap(),
        |e| {
            e.run("skewed", &[ArgVal::I(96)], ExecMode::Parallel { threads: THREADS }).unwrap();
        },
    );
    let sarb = matrix_row(
        "sarb_v3_run_columns",
        || sarb::variants::build_engine(sarb::variants::SarbVariant::GlafParallel(3)),
        |e| {
            e.run("run_columns", &[ArgVal::I(2)], ExecMode::Parallel { threads: THREADS })
                .unwrap();
        },
    );
    let fun3d = matrix_row(
        "fun3d_edgejp",
        || {
            let cfg = fun3d::variants::Fun3dConfig::best();
            let e = fun3d::variants::build_engine(fun3d::variants::Fun3dVariant::Glaf(cfg));
            e.run("build_mesh", &[ArgVal::I(80)], ExecMode::Serial).unwrap();
            e
        },
        |e| {
            e.run("edgejp", &[], ExecMode::Parallel { threads: THREADS }).unwrap();
        },
    );

    // 2. Imbalance report schema + feedback loop.
    let engine = Engine::compile(&[SKEWED]).unwrap();
    let args = [ArgVal::I(96)];
    let mode = ExecMode::Parallel { threads: THREADS };
    let (_, before) = engine
        .run_profiled("skewed", &args, mode, ExecTier::Vm)
        .expect("profiled skewed run");
    if before.regions.is_empty() {
        errors.push("profiled run recorded no omprt regions".into());
    }
    for (i, r) in before.regions.iter().enumerate() {
        if r.line == 0 {
            errors.push(format!("region {i}: untagged fork (line 0)"));
        }
        if r.sched.is_empty() {
            errors.push(format!("region {i}: empty schedule string"));
        }
        if r.busy_ns.len() != r.threads as usize {
            errors.push(format!(
                "region {i}: {} busy counters for {} threads",
                r.busy_ns.len(),
                r.threads
            ));
        }
        let imb = r.imbalance();
        if !imb.is_finite() || imb < 1.0 {
            errors.push(format!("region {i}: imbalance {imb} outside [1, inf)"));
        }
    }
    match fortrans::Profile::from_json(&before.to_json()) {
        Ok(back) => {
            if back != before {
                errors.push("profile JSON round-trip changed the profile".into());
            }
        }
        Err(e) => errors.push(format!("profile JSON does not parse back: {e}")),
    }

    let imb_before =
        before.regions.iter().map(|r| r.imbalance()).fold(0.0f64, f64::max);
    let overrides = reschedule(&before, 1.25);
    if overrides.is_empty() {
        errors.push(format!(
            "reschedule proposed nothing despite imbalance {imb_before:.2}"
        ));
    }
    engine.set_schedule_overrides(overrides.clone());
    let (_, after) = engine
        .run_profiled("skewed", &args, mode, ExecTier::Vm)
        .expect("profiled rescheduled run");
    let imb_after = after.regions.iter().map(|r| r.imbalance()).fold(0.0f64, f64::max);
    for &(line, _) in &overrides {
        let flipped = after
            .regions
            .iter()
            .any(|r| r.line == u64::from(line) && r.sched == "dynamic,1");
        if !flipped {
            errors.push(format!("override on line {line} did not flip to dynamic,1"));
        }
    }
    println!(
        "feedback: imbalance {imb_before:.2} (static) -> {imb_after:.2} (rescheduled)"
    );

    // 3. Emit the trajectory file.
    let mut json = String::new();
    json.push_str("{\n  \"pr\": 5,\n  \"threads\": 4,\n  \"schedule_matrix_ns\": {\n");
    let rows = [("skewed_triangular", &skewed), ("sarb_v3_run_columns", &sarb), ("fun3d_edgejp", &fun3d)];
    for (ri, (label, row)) in rows.iter().enumerate() {
        let _ = write!(json, "    \"{label}\": {{");
        for (si, (name, ns)) in row.iter().enumerate() {
            let _ = write!(json, "{}\"{name}\": {ns}", if si == 0 { "" } else { ", " });
        }
        let _ = writeln!(json, "}}{}", if ri + 1 == rows.len() { "" } else { "," });
    }
    json.push_str("  },\n");
    let _ = writeln!(
        json,
        "  \"feedback\": {{\"imbalance_static\": {imb_before:.4}, \"imbalance_rescheduled\": {imb_after:.4}, \"overrides\": {}}}",
        overrides.len()
    );
    json.push_str("}\n");
    if let Err(e) = std::fs::write(&out_path, &json) {
        errors.push(format!("cannot write {out_path}: {e}"));
    } else {
        println!("wrote {out_path}");
    }

    if errors.is_empty() {
        println!("schedule_smoke: imbalance report schema OK");
    } else {
        for e in &errors {
            eprintln!("schedule_smoke: SCHEMA VIOLATION: {e}");
        }
        std::process::exit(1);
    }
}
