//! Figure 7: "16-thread parallel speed-up of GLAF-generated matrix
//! reconstruction ... with all combinations of parallelization and
//! no-reallocation options. Manual parallel version (based on
//! best-performing GLAF options), provided for comparison."
//!
//! The paper's figure shows an option matrix (colored boxes for enabled
//! options); we print the full 32-combination sweep plus the manual
//! version, with the paper's three anchor values: best GLAF 1.67x,
//! manual 3.85x, worst (fully nested) ~1/128x.
//!
//! Usage: `repro_fig7 [ncells] [threads]` (defaults 2000, 16; the paper
//! used 1M cells — linear scaling, see EXPERIMENTS.md).

use fun3d::variants::{run_simulated, Fun3dConfig, Fun3dVariant};
use glaf_bench::{print_bars, Bar};
use simcpu::MachineModel;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let ncell: i64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(2000);
    let threads: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(16);
    let machine = MachineModel::xeon_e5_2637v4_dual_like();
    println!("machine: {}   cells: {ncell}   threads: {threads}", machine.name);

    let base = run_simulated(Fun3dVariant::OriginalSerial, ncell, threads, &machine);
    let speedup = |v: Fun3dVariant| {
        let r = run_simulated(v, ncell, threads, &machine);
        base.report.total_cycles / r.report.total_cycles
    };

    // Anchor bars with paper values.
    let mut bars = vec![
        Bar { label: "original serial".into(), paper: Some(1.0), measured: 1.0 },
        Bar {
            label: "manual parallel (paper: 3.85x)".into(),
            paper: Some(3.85),
            measured: speedup(Fun3dVariant::ManualParallel),
        },
        Bar {
            label: "GLAF EdgeJP noRealloc (best, paper: 1.67x)".into(),
            paper: Some(1.67),
            measured: speedup(Fun3dVariant::Glaf(Fun3dConfig::best())),
        },
        Bar {
            label: "GLAF all levels + realloc (worst, ~1/128x)".into(),
            paper: Some(1.0 / 128.0),
            measured: speedup(Fun3dVariant::Glaf(Fun3dConfig {
                par_edgejp: true,
                par_cell_loop: true,
                par_edge_loop: true,
                par_ioff_search: true,
                no_realloc: false,
                fuse: false,
            })),
        },
    ];
    print_bars("Figure 7 anchors: paper's named bars", &bars);

    // Full option matrix.
    println!("\nFull option matrix (speed-up vs original serial):");
    println!(
        "{:>7} {:>5} {:>5} {:>5} {:>9} | {:>10}",
        "EdgeJP", "Cell", "Edge", "IOff", "noRealloc", "speed-up"
    );
    let onoff = |b: bool| if b { "x" } else { "." };
    for cfg in Fun3dConfig::all() {
        let s = speedup(Fun3dVariant::Glaf(cfg));
        println!(
            "{:>7} {:>5} {:>5} {:>5} {:>9} | {:>10.4}",
            onoff(cfg.par_edgejp),
            onoff(cfg.par_cell_loop),
            onoff(cfg.par_edge_loop),
            onoff(cfg.par_ioff_search),
            onoff(cfg.no_realloc),
            s
        );
        bars.push(Bar { label: format!("GLAF {}", cfg.tag()), paper: None, measured: s });
    }

    // Paper's qualitative findings, checked live.
    let best = speedup(Fun3dVariant::Glaf(Fun3dConfig::best()));
    let manual = speedup(Fun3dVariant::ManualParallel);
    println!("\nfindings:");
    println!(
        "  coarsest-granularity parallelism wins among GLAF configs (paper §4.2.2): best = EdgeJP+noRealloc = {best:.2}x"
    );
    println!(
        "  manual / best-GLAF ratio: {:.2}x (paper: ~2.3x)",
        manual / best
    );
}
