//! Table 2: "Synoptic SARB implementations" — the variant ladder, with
//! the directive census our policies actually produce (how many
//! `!$OMP PARALLEL DO` lines each variant's generated code carries).

use glaf::{Glaf, Lang};
use sarb::variants::{generated_source, SarbVariant};

fn main() {
    println!("Table 2: Synoptic SARB implementations");
    println!("{:-<100}", "");
    println!("{:22} {:>12}  Description", "Implementation", "directives");
    for v in SarbVariant::table2() {
        let directives = match generated_source(v) {
            Some(src) => src.matches("!$OMP PARALLEL DO").count().to_string(),
            None => "-".to_string(),
        };
        println!("{:22} {:>12}  {}", v.name(), directives, v.description());
    }

    // The plan census behind the ladder.
    let g = Glaf::new(sarb::glaf_model::build_sarb_program()).unwrap();
    let plan = g.plan();
    let mut by_class = std::collections::BTreeMap::new();
    for fp in plan.functions.values() {
        for lp in &fp.loops {
            if lp.parallelizable {
                *by_class.entry(lp.class.name()).or_insert(0usize) += 1;
            }
        }
    }
    println!("\nparallelizable-loop census by class (the ladder's raw material):");
    for (class, n) in by_class {
        println!("  {class:20} {n}");
    }
    let serial = g.generate(Lang::Fortran, &glaf_codegen::CodegenOptions::serial());
    println!("\ngenerated module (serial policy): {} SLOC", serial.sloc);
}
