//! Diffs two perf-trajectory files (`BENCH_*.json`) and fails on
//! wall-clock regressions.
//!
//! Usage: `bench_compare <old.json> <new.json> [tolerance]`
//!
//! Every numeric leaf shared by both files is compared; leaves whose
//! dotted path mentions `_ns` are timings and regress when the new value
//! exceeds the old by more than `tolerance` (default 0.10 = 10%).
//! Exits 1 when any timing regresses, 2 on usage or parse errors. CI
//! runs this as a soft (warning-only) step: timings on shared runners
//! are noisy, so a red result is a prompt to look, not a build failure.

use glaf_bench::compare::compare;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (old_path, new_path) = match (args.first(), args.get(1)) {
        (Some(o), Some(n)) => (o.clone(), n.clone()),
        _ => {
            eprintln!("usage: bench_compare <old.json> <new.json> [tolerance]");
            std::process::exit(2);
        }
    };
    let tolerance: f64 = match args.get(2).map(|t| t.parse()) {
        None => 0.10,
        Some(Ok(t)) => t,
        Some(Err(_)) => {
            eprintln!("bench_compare: tolerance must be a number");
            std::process::exit(2);
        }
    };
    // Missing *baseline* is a soft skip: first runs on a branch (and CI
    // caches that were evicted) have nothing to diff against, which is
    // not an error worth failing the step over.
    if !std::path::Path::new(&old_path).exists() {
        println!("bench_compare: baseline {old_path} not found; nothing to compare (skipping)");
        std::process::exit(0);
    }
    let read = |p: &str| {
        std::fs::read_to_string(p).unwrap_or_else(|e| {
            eprintln!("bench_compare: cannot read {p}: {e}");
            std::process::exit(2);
        })
    };
    let cmp = match compare(&read(&old_path), &read(&new_path)) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("bench_compare: {e}");
            std::process::exit(2);
        }
    };

    println!("== {old_path} -> {new_path} (tolerance {:.0}%) ==", tolerance * 100.0);
    for d in &cmp.shared {
        let marker = if !d.is_timing() {
            "  "
        } else if d.new > d.old * (1.0 + tolerance) {
            "!!"
        } else if d.new < d.old * (1.0 - tolerance) {
            "++"
        } else {
            "  "
        };
        println!("{marker} {:<44} {:>14} -> {:>14}  ({:>6.2}x)", d.path, d.old, d.new, d.ratio());
    }
    for (p, v) in &cmp.removed {
        println!("-- {p:<44} {v:>14} -> (removed)");
    }
    for (p, v) in &cmp.added {
        println!("++ {p:<44} {:>14} -> {v:>14}  (added)", "");
    }

    let regs = cmp.regressions(tolerance);
    if regs.is_empty() {
        println!("bench_compare: no timing regression beyond {:.0}%", tolerance * 100.0);
    } else {
        for d in &regs {
            eprintln!(
                "bench_compare: REGRESSION {}: {} -> {} ({:.2}x)",
                d.path,
                d.old,
                d.new,
                d.ratio()
            );
        }
        std::process::exit(1);
    }
}
