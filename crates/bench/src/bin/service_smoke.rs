//! CI smoke for the engine service layer, emitting `BENCH_pr7.json`.
//!
//! Usage: `service_smoke [out.json]` (default `BENCH_pr7.json`).
//!
//! 1. **Cache reuse** — opens sessions over the three SARB/FUN3D/micro
//!    programs repeatedly through one [`fortrans::EngineService`] and
//!    validates that every re-open returns literally the same artifact
//!    (`Arc` identity) with a ≥ 90% cache hit rate.
//! 2. **Batched execution** — runs a batch of SARB column jobs through
//!    the shared-pool [`fortrans::JobQueue`] and requires (a) bit-equal
//!    outputs to a serial single-session baseline, (b) batch throughput
//!    of at least 1.0x the legacy workflow (one compile + one serial run
//!    per parameter set — what every pre-service caller did), and (c)
//!    batch wall time within overhead bounds of a warm serial loop that
//!    already shares the artifact (which a batch can only beat when the
//!    host grants more than one CPU — the queue is sized to the host).
//! 3. **Trajectory** — re-measures the three PR 6 vector kernels through
//!    the session API (same schema as `BENCH_pr6.json`, so
//!    `bench_compare` diffs them directly) and records the service
//!    metrics: cache hit rate, batch throughput, and the calibrated
//!    `simd_speedup` derived from the committed PR 6 measurements.
//!
//! Exits nonzero on any violation.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use fortrans::{ArgVal, EngineService, ExecMode, Job, Session};

const MICRO_REDUCTION: &str = r#"
MODULE mr
CONTAINS
  SUBROUTINE dotp(a, b, n, s)
    REAL(8), DIMENSION(1:4096) :: a
    REAL(8), DIMENSION(1:4096) :: b
    INTEGER :: n
    REAL(8) :: s
    INTEGER :: i
    s = 0.0D0
    DO i = 1, n
      s = s + a(i) * b(i)
    END DO
  END SUBROUTINE dotp
END MODULE mr
"#;

fn median_ns(reps: usize, mut run: impl FnMut()) -> u64 {
    let mut samples: Vec<u64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            run();
            t.elapsed().as_nanos() as u64
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Scalar-vs-vector wall time on one kernel through the session API.
/// The native (JIT) tier is kept out of both sides so the PR 7
/// trajectory keys stay comparable across PRs (jit_smoke owns the
/// native numbers).
fn pair(label: &str, mk: impl Fn() -> Session, run: impl Fn(&Session)) -> (u64, u64, u64) {
    let off = mk();
    off.set_native_enabled(false);
    off.set_vector_enabled(false);
    run(&off); // warm-up
    let scalar = median_ns(7, || run(&off));
    let on = mk();
    on.set_native_enabled(false);
    run(&on);
    let vector = median_ns(7, || run(&on));
    let entries = on.vector_entry_count();
    println!(
        "{label:<22} scalar {:>9.3} ms   vector {:>9.3} ms   speedup {:.2}x   entries {entries}",
        scalar as f64 / 1e6,
        vector as f64 / 1e6,
        scalar as f64 / vector.max(1) as f64,
    );
    (scalar, vector, entries)
}

fn sarb_output_bits(session: &Session) -> Vec<u64> {
    let out = sarb::variants::SarbOutputs::read(session);
    [&out.fdl, &out.ful, &out.fds, &out.fus]
        .into_iter()
        .flat_map(|v| v.iter().map(|x| x.to_bits()))
        .collect()
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_pr7.json".into());
    let mut errors: Vec<String> = Vec::new();

    // ------------------------------------------------------------------
    // 1. Cache reuse: repeated opens share one compiled artifact.
    // ------------------------------------------------------------------
    let service = EngineService::new(8);
    let sarb_sources = sarb::variants::variant_sources(sarb::variants::SarbVariant::GlafSerial);
    let fun3d_cfg = fun3d::variants::Fun3dConfig { fuse: true, ..Default::default() };
    let fun3d_sources =
        fun3d::variants::variant_sources(fun3d::variants::Fun3dVariant::Glaf(fun3d_cfg));
    let programs: Vec<Vec<&str>> = vec![
        sarb_sources.iter().map(String::as_str).collect(),
        fun3d_sources.iter().map(String::as_str).collect(),
        vec![MICRO_REDUCTION],
    ];
    let firsts: Vec<_> =
        programs.iter().map(|srcs| service.compile(srcs).expect("compiles")).collect();
    for round in 0..19 {
        for (pi, srcs) in programs.iter().enumerate() {
            let again = service.compile(srcs).expect("compiles");
            if !Arc::ptr_eq(&again, &firsts[pi]) {
                errors.push(format!("round {round}: program {pi} recompiled instead of hitting"));
            }
        }
    }
    let hit_rate = service.cache().hit_rate();
    println!(
        "cache: {} hits / {} misses / {} evictions (hit rate {:.1}%)",
        service.cache().hits(),
        service.cache().misses(),
        service.cache().evictions(),
        hit_rate * 100.0
    );
    if hit_rate < 0.90 {
        errors.push(format!("cache hit rate {:.3} below the 0.90 floor", hit_rate));
    }
    if service.cache().misses() != programs.len() as u64 {
        errors.push(format!(
            "expected one miss per program, saw {} misses",
            service.cache().misses()
        ));
    }

    // ------------------------------------------------------------------
    // 2. Batched execution vs. a serial single-session baseline.
    // ------------------------------------------------------------------
    const BATCH_JOBS: usize = 12;
    const NCOL: i64 = 4;
    let sarb_artifact = Arc::clone(&firsts[0]);
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let width = host_cpus.min(4);

    // Warm a session first so no measurement pays first-run costs.
    let baseline_session = service.session_for(&sarb_artifact);
    baseline_session.run("run_columns", &[ArgVal::I(NCOL)], ExecMode::Serial).expect("warm-up");

    // Legacy workflow: before the service layer every parameter set paid
    // its own compile (one Engine per run). This is the baseline the
    // batch must beat — the artifact cache alone guarantees it.
    let sarb_srcs: Vec<&str> = sarb_sources.iter().map(String::as_str).collect();
    let t = Instant::now();
    for _ in 0..BATCH_JOBS {
        let artifact = fortrans::CompiledProgram::compile(&sarb_srcs).expect("compiles");
        let session = Session::solo(artifact);
        session.run("run_columns", &[ArgVal::I(NCOL)], ExecMode::Serial).expect("legacy job");
    }
    let legacy_ns = t.elapsed().as_nanos() as u64;

    // Warm serial loop: shared artifact, one session at a time. The
    // batch can only beat this on multi-CPU hosts; everywhere it must
    // stay within scheduling-overhead distance.
    let t = Instant::now();
    for _ in 0..BATCH_JOBS {
        let session = service.session_for(&sarb_artifact);
        session.run("run_columns", &[ArgVal::I(NCOL)], ExecMode::Serial).expect("serial job");
    }
    let warm_serial_ns = t.elapsed().as_nanos() as u64;
    let expect_bits = {
        let session = service.session_for(&sarb_artifact);
        session.run("run_columns", &[ArgVal::I(NCOL)], ExecMode::Serial).expect("reference job");
        sarb_output_bits(&session)
    };

    let mut queue = service.queue(width);
    let t = Instant::now();
    for _ in 0..BATCH_JOBS {
        queue.submit(&sarb_artifact, Job::new("run_columns", vec![ArgVal::I(NCOL)]));
    }
    let results = queue.run_batch();
    let batch_ns = t.elapsed().as_nanos() as u64;
    for (j, jr) in results.iter().enumerate() {
        if let Err(e) = &jr.result {
            errors.push(format!("batch job {j} failed: {e}"));
            continue;
        }
        let Some(session) = jr.session.as_ref() else {
            errors.push(format!("batch job {j}: missing session"));
            continue;
        };
        if sarb_output_bits(session) != expect_bits {
            errors.push(format!("batch job {j}: outputs diverge from the serial baseline"));
        }
        if session.fallback_count() != 0 {
            errors.push(format!("batch job {j}: unexpected tier fallback"));
        }
    }
    let throughput = legacy_ns as f64 / batch_ns.max(1) as f64;
    let vs_warm = warm_serial_ns as f64 / batch_ns.max(1) as f64;
    println!(
        "batch: {BATCH_JOBS} jobs ({width}-wide, {host_cpus} cpu)  legacy {:.3} ms  \
         warm serial {:.3} ms  batched {:.3} ms  throughput {throughput:.2}x  vs warm {vs_warm:.2}x",
        legacy_ns as f64 / 1e6,
        warm_serial_ns as f64 / 1e6,
        batch_ns as f64 / 1e6
    );
    if throughput < 1.0 {
        errors.push(format!("batch throughput {throughput:.3}x below the 1.0x legacy floor"));
    }
    // On a single-CPU host parity with the warm loop is the best
    // possible outcome; on real parallel hardware the batch must win.
    let warm_floor = if width > 1 { 1.0 } else { 0.85 };
    if vs_warm < warm_floor {
        errors.push(format!(
            "batch ran {vs_warm:.3}x a warm serial loop, below the {warm_floor:.2}x floor \
             for a {width}-wide queue"
        ));
    }
    if service.pools().contained_panics() != 0 {
        errors.push("shared pools caught panics during the clean batch".into());
    }

    // ------------------------------------------------------------------
    // 3. Trajectory: the PR 6 kernels through the session API, plus the
    //    service metrics and the calibrated simd speedup.
    // ------------------------------------------------------------------
    println!("== scalar VM vs vector tier via sessions (median of 7, serial) ==");
    let sarb = pair(
        "sarb_longwave",
        || Session::solo(sarb::variants::build_artifact(sarb::variants::SarbVariant::GlafSerial)),
        |s| {
            s.run("run_columns", &[ArgVal::I(6)], ExecMode::Serial).unwrap();
        },
    );
    let fun3d = pair(
        "fun3d_edge_gather",
        || {
            let cfg = fun3d::variants::Fun3dConfig { fuse: true, ..Default::default() };
            let s = Session::solo(fun3d::variants::build_artifact(
                fun3d::variants::Fun3dVariant::Glaf(cfg),
            ));
            s.run("build_mesh", &[ArgVal::I(300)], ExecMode::Serial).unwrap();
            s
        },
        |s| {
            s.run("edgejp", &[], ExecMode::Serial).unwrap();
        },
    );
    let a: Vec<f64> = (0..4096).map(|i| (i % 97) as f64 * 0.01).collect();
    let b: Vec<f64> = (0..4096).map(|i| (i % 89) as f64 * 0.02 - 0.5).collect();
    let micro = pair(
        "micro_reduction",
        || Session::solo(fortrans::CompiledProgram::compile(&[MICRO_REDUCTION]).unwrap()),
        |s| {
            let acc = ArgVal::F(0.0);
            for _ in 0..64 {
                s.run(
                    "dotp",
                    &[
                        ArgVal::array_f(&a, 1),
                        ArgVal::array_f(&b, 1),
                        ArgVal::I(4096),
                        acc.clone(),
                    ],
                    ExecMode::Serial,
                )
                .unwrap();
            }
        },
    );

    let calibrated = match std::fs::read_to_string("BENCH_pr6.json") {
        Ok(doc) => match glaf_bench::calibrate::calibrated_simd_speedup(&doc) {
            Ok(Some(v)) => v,
            Ok(None) => {
                errors.push("BENCH_pr6.json carries no vector samples to calibrate from".into());
                0.0
            }
            Err(e) => {
                errors.push(format!("calibration failed: {e}"));
                0.0
            }
        },
        Err(e) => {
            errors.push(format!("cannot read BENCH_pr6.json: {e}"));
            0.0
        }
    };
    println!("calibrated simd_speedup from BENCH_pr6.json: {calibrated:.3}");

    let mut json = String::new();
    json.push_str("{\n  \"pr\": 7,\n  \"mode\": \"serial\",\n  \"kernels\": {\n");
    let rows =
        [("sarb_longwave", &sarb), ("fun3d_edge_gather", &fun3d), ("micro_reduction", &micro)];
    for (ri, (label, (scalar, vector, entries))) in rows.iter().enumerate() {
        let speedup = *scalar as f64 / (*vector).max(1) as f64;
        let _ = writeln!(
            json,
            "    \"{label}\": {{\"scalar_vm_ns\": {scalar}, \"vector_vm_ns\": {vector}, \
             \"speedup\": {speedup:.3}, \"vector_entries\": {entries}}}{}",
            if ri + 1 == rows.len() { "" } else { "," }
        );
    }
    json.push_str("  },\n  \"service\": {\n");
    let _ = writeln!(json, "    \"cache_hits\": {},", service.cache().hits());
    let _ = writeln!(json, "    \"cache_misses\": {},", service.cache().misses());
    let _ = writeln!(json, "    \"cache_hit_rate\": {hit_rate:.4},");
    let _ = writeln!(json, "    \"batch_jobs\": {BATCH_JOBS},");
    let _ = writeln!(json, "    \"batch_width\": {width},");
    let _ = writeln!(json, "    \"host_cpus\": {host_cpus},");
    let _ = writeln!(json, "    \"legacy_serial_ns\": {legacy_ns},");
    let _ = writeln!(json, "    \"warm_serial_ns\": {warm_serial_ns},");
    let _ = writeln!(json, "    \"pooled_batch_ns\": {batch_ns},");
    let _ = writeln!(json, "    \"batch_throughput\": {throughput:.3},");
    let _ = writeln!(json, "    \"batch_vs_warm_serial\": {vs_warm:.3},");
    let _ = writeln!(json, "    \"calibrated_simd_speedup\": {calibrated:.3}");
    json.push_str("  }\n}\n");
    if let Err(e) = std::fs::write(&out_path, &json) {
        errors.push(format!("cannot write {out_path}: {e}"));
    } else {
        println!("wrote {out_path}");
    }

    if errors.is_empty() {
        println!("service_smoke: cache reuse and batched execution checks OK");
    } else {
        for e in &errors {
            eprintln!("service_smoke: VIOLATION: {e}");
        }
        std::process::exit(1);
    }
}
