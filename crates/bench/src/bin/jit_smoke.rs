//! CI smoke for the native (JIT) execution tier, emitting `BENCH_pr10.json`.
//!
//! Usage: `jit_smoke [out.json]` (default `BENCH_pr10.json`).
//!
//! 1. Times three configurations of the same engine on three kernels —
//!    scalar VM (vector + native off), vector tier (native off), native
//!    tier (eager promotion) — on the SARB longwave spectral
//!    integration, the FUN3D edge gather (fused), and a 4096-element
//!    serial reduction.
//! 2. On targets with a JIT, validates the acceptance bar: every kernel
//!    run enters native code at least once, and at least 2 of the 3
//!    kernels reach >= 3x over the scalar VM. Exits nonzero otherwise.
//! 3. Runs a generated-F77 differential sweep: each seeded program runs
//!    Serial under `ExecTier::Native` (native promotion forced eager)
//!    and under the tree-walking oracle; result, PRINT output, and every
//!    COMMON global must be bit-identical, and the sweep as a whole must
//!    actually enter native code.
//! 4. Writes the measurements as JSON — the PR 10 perf trajectory file.
//!
//! On targets without a JIT (`fortrans::jit::available()` is false) the
//! native column duplicates the VM measurement by construction; the
//! speedup bar and entry-count checks are skipped so the smoke still
//! passes, and the file records `"native_available": false`.

use std::fmt::Write as _;
use std::time::Instant;

use fortrans::service::CompiledProgram;
use fortrans::{ArgVal, Engine, ExecMode, ExecTier, Val};

const MICRO_REDUCTION: &str = r#"
MODULE mr
CONTAINS
  SUBROUTINE dotp(a, b, n, s)
    REAL(8), DIMENSION(1:4096) :: a
    REAL(8), DIMENSION(1:4096) :: b
    INTEGER :: n
    REAL(8) :: s
    INTEGER :: i
    s = 0.0D0
    DO i = 1, n
      s = s + a(i) * b(i)
    END DO
  END SUBROUTINE dotp
END MODULE mr
"#;

/// Generated programs in the differential sweep. The exhaustive 200-seed
/// corpus runs in `tests/f77_differential.rs`; the smoke re-runs a prefix
/// to prove the *native* path is exercised end to end in CI.
const SWEEP_SEEDS: u64 = 64;

fn median_ns(reps: usize, mut run: impl FnMut()) -> u64 {
    let mut samples: Vec<u64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            run();
            t.elapsed().as_nanos() as u64
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

struct Row {
    scalar_ns: u64,
    vector_ns: u64,
    native_ns: u64,
    native_entries: u64,
    native_deopts: u64,
}

impl Row {
    fn native_speedup(&self) -> f64 {
        self.scalar_ns as f64 / self.native_ns.max(1) as f64
    }
}

/// One kernel under three configurations of the same engine factory:
/// scalar VM, vector tier, native tier (eager promotion).
fn triple(label: &str, mk: impl Fn() -> Engine, run: impl Fn(&Engine)) -> Row {
    let off = mk();
    off.set_native_enabled(false);
    off.set_vector_enabled(false);
    run(&off); // warm-up
    let scalar_ns = median_ns(7, || run(&off));

    let vec_e = mk();
    vec_e.set_native_enabled(false);
    run(&vec_e);
    let vector_ns = median_ns(7, || run(&vec_e));

    let nat = mk();
    nat.set_native_eager(true);
    run(&nat); // warm-up also compiles every region eagerly
    let native_ns = median_ns(7, || run(&nat));
    let row = Row {
        scalar_ns,
        vector_ns,
        native_ns,
        native_entries: nat.native_entry_count(),
        native_deopts: nat.native_deopt_count(),
    };
    println!(
        "{label:<20} scalar {:>9.3} ms   vector {:>9.3} ms   native {:>9.3} ms   \
         native speedup {:>6.2}x   entries {}   deopts {}",
        scalar_ns as f64 / 1e6,
        vector_ns as f64 / 1e6,
        native_ns as f64 / 1e6,
        row.native_speedup(),
        row.native_entries,
        row.native_deopts,
    );
    row
}

/// Observable state of one Serial run: result, PRINT output, and the bit
/// pattern of every COMMON global. Serial runs are deterministic, so the
/// native tier must reproduce the oracle exactly.
fn snapshot(engine: &Engine, tier: ExecTier) -> (Result<Option<Val>, String>, String, Vec<u64>) {
    let run = engine.run_tiered("main", &[], ExecMode::Serial, tier);
    let (result, printed) = match run {
        Ok(out) => (Ok(out.result), out.printed),
        Err(e) => (Err(e.to_string()), String::new()),
    };
    let mut names = engine.global_names();
    names.sort();
    let mut bits = Vec::new();
    for name in names {
        if let Some(v) = engine.global_scalar(&name) {
            bits.push(match v {
                Val::F(f) => f.to_bits(),
                Val::I(i) => i as u64,
                Val::B(b) => b as u64,
            });
        } else if let Some(h) = engine.global_array(&name) {
            bits.extend((0..h.len()).map(|k| h.get_bits(k)));
        }
    }
    (result, printed, bits)
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_pr10.json".into());
    let available = fortrans::jit::available();
    let mut errors: Vec<String> = Vec::new();
    println!("== scalar VM vs vector vs native tier (median of 7, serial) ==");
    if !available {
        println!("   (no JIT on this target: native == VM, bars skipped)");
    }

    // 1. The three kernels.
    let sarb = triple(
        "sarb_longwave",
        || sarb::variants::build_engine(sarb::variants::SarbVariant::GlafSerial),
        |e| {
            e.run("run_columns", &[ArgVal::I(6)], ExecMode::Serial).unwrap();
        },
    );
    let fun3d = triple(
        "fun3d_edge_gather",
        || {
            let cfg = fun3d::variants::Fun3dConfig { fuse: true, ..Default::default() };
            let e = fun3d::variants::build_engine(fun3d::variants::Fun3dVariant::Glaf(cfg));
            e.run("build_mesh", &[ArgVal::I(300)], ExecMode::Serial).unwrap();
            e
        },
        |e| {
            e.run("edgejp", &[], ExecMode::Serial).unwrap();
        },
    );
    let a: Vec<f64> = (0..4096).map(|i| (i % 97) as f64 * 0.01).collect();
    let b: Vec<f64> = (0..4096).map(|i| (i % 89) as f64 * 0.02 - 0.5).collect();
    let micro = triple(
        "micro_reduction",
        || Engine::compile(&[MICRO_REDUCTION]).unwrap(),
        |e| {
            let s = ArgVal::F(0.0);
            for _ in 0..64 {
                e.run(
                    "dotp",
                    &[
                        ArgVal::array_f(&a, 1),
                        ArgVal::array_f(&b, 1),
                        ArgVal::I(4096),
                        s.clone(),
                    ],
                    ExecMode::Serial,
                )
                .unwrap();
            }
        },
    );
    let rows = [("sarb_longwave", &sarb), ("fun3d_edge_gather", &fun3d), ("micro_reduction", &micro)];

    // 2. Acceptance bar (JIT targets only).
    if available {
        for (label, row) in &rows {
            if row.native_entries == 0 {
                errors.push(format!("{label}: benchmark run never entered native code"));
            }
        }
        let fast = rows.iter().filter(|(_, r)| r.native_speedup() >= 3.0).count();
        if fast < 2 {
            errors.push(format!(
                "native tier speedup bar missed: {fast}/3 kernels >= 3x over scalar VM \
                 (sarb {:.2}x, fun3d {:.2}x, micro {:.2}x)",
                sarb.native_speedup(),
                fun3d.native_speedup(),
                micro.native_speedup(),
            ));
        }
    }

    // 3. Generated-F77 differential sweep through the native tier.
    let mut sweep_entries: u64 = 0;
    let mut sweep_deopts: u64 = 0;
    for seed in 0..SWEEP_SEEDS {
        let srcs = fortrans::gen::generate(seed);
        let refs: Vec<&str> = srcs.iter().map(|s| s.as_str()).collect();
        let artifact = match CompiledProgram::compile(&refs) {
            Ok(a) => a,
            Err(e) => {
                errors.push(format!("sweep seed {seed}: failed to compile: {e}"));
                continue;
            }
        };
        let en = Engine::from_artifact(artifact.clone());
        let et = Engine::from_artifact(artifact);
        let native = snapshot(&en, ExecTier::Native);
        let oracle = snapshot(&et, ExecTier::TreeWalk);
        if native != oracle {
            errors.push(format!("sweep seed {seed}: native tier diverged from the oracle"));
        }
        sweep_entries += en.native_entry_count();
        sweep_deopts += en.native_deopt_count();
    }
    if available && sweep_entries == 0 {
        errors.push("differential sweep never entered native code".into());
    }
    println!(
        "differential sweep: {SWEEP_SEEDS} seeds, {sweep_entries} native entries, \
         {sweep_deopts} deopts"
    );

    // 4. Emit the trajectory file.
    let mut json = String::new();
    json.push_str("{\n  \"pr\": 10,\n  \"mode\": \"serial\",\n");
    let _ = writeln!(json, "  \"native_available\": {available},");
    json.push_str("  \"kernels\": {\n");
    for (ri, (label, r)) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    \"{label}\": {{\"scalar_vm_ns\": {}, \"vector_vm_ns\": {}, \
             \"native_ns\": {}, \"native_speedup\": {:.3}, \"native_entries\": {}, \
             \"native_deopts\": {}}}{}",
            r.scalar_ns,
            r.vector_ns,
            r.native_ns,
            r.native_speedup(),
            r.native_entries,
            r.native_deopts,
            if ri + 1 == rows.len() { "" } else { "," }
        );
    }
    json.push_str("  },\n");
    let _ = writeln!(
        json,
        "  \"differential\": {{\"seeds\": {SWEEP_SEEDS}, \"native_entries\": {sweep_entries}, \
         \"native_deopts\": {sweep_deopts}}}"
    );
    json.push_str("}\n");
    if let Err(e) = std::fs::write(&out_path, &json) {
        errors.push(format!("cannot write {out_path}: {e}"));
    } else {
        println!("wrote {out_path}");
    }

    if errors.is_empty() {
        println!("jit_smoke: native tier checks OK");
    } else {
        for e in &errors {
            eprintln!("jit_smoke: VIOLATION: {e}");
        }
        std::process::exit(1);
    }
}
