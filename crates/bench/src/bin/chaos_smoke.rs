//! CI smoke for the resilient service runtime, emitting `BENCH_pr8.json`.
//!
//! Usage: `chaos_smoke [out.json]` (default `BENCH_pr8.json`).
//!
//! 1. **Chaos campaign** — a fixed-seed randomized campaign (traps,
//!    corrupted bytecode, forced deadline misses, worker panics, retry
//!    ladders, quarantine hammering, cache-eviction storms) with at
//!    least 200 injected faults. Every invariant violation is a hard
//!    failure: clean jobs must stay bit-equal to quiet baselines, bad
//!    jobs must return structured verdicts, pools must self-heal.
//! 2. **Policy overhead** — re-runs the PR 7 batched SARB sweep with a
//!    full [`fortrans::JobPolicy`] installed (deadline + retries +
//!    degradation armed, never triggered). The resulting
//!    `pooled_batch_ns` lands in the same JSON slot as PR 7's, so CI's
//!    soft `bench_compare BENCH_pr7.json BENCH_pr8.new.json` step flags
//!    any watchdog/token overhead beyond tolerance.
//! 3. **Trajectory** — re-measures the PR 6 vector kernels through the
//!    session API (schema-compatible with `BENCH_pr7.json`) and records
//!    campaign survival statistics under a new `chaos` section.
//!
//! Exits nonzero on any violation.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use fortrans::chaos::{run_campaign, CampaignConfig};
use fortrans::{ArgVal, EngineService, ExecMode, Job, JobPolicy, Session};

const MICRO_REDUCTION: &str = r#"
MODULE mr
CONTAINS
  SUBROUTINE dotp(a, b, n, s)
    REAL(8), DIMENSION(1:4096) :: a
    REAL(8), DIMENSION(1:4096) :: b
    INTEGER :: n
    REAL(8) :: s
    INTEGER :: i
    s = 0.0D0
    DO i = 1, n
      s = s + a(i) * b(i)
    END DO
  END SUBROUTINE dotp
END MODULE mr
"#;

fn median_ns(reps: usize, mut run: impl FnMut()) -> u64 {
    let mut samples: Vec<u64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            run();
            t.elapsed().as_nanos() as u64
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Scalar-vs-vector wall time on one kernel through the session API.
fn pair(label: &str, mk: impl Fn() -> Session, run: impl Fn(&Session)) -> (u64, u64, u64) {
    let off = mk();
    off.set_vector_enabled(false);
    run(&off); // warm-up
    let scalar = median_ns(7, || run(&off));
    let on = mk();
    run(&on);
    let vector = median_ns(7, || run(&on));
    let entries = on.vector_entry_count();
    println!(
        "{label:<22} scalar {:>9.3} ms   vector {:>9.3} ms   speedup {:.2}x   entries {entries}",
        scalar as f64 / 1e6,
        vector as f64 / 1e6,
        scalar as f64 / vector.max(1) as f64,
    );
    (scalar, vector, entries)
}

fn sarb_output_bits(session: &Session) -> Vec<u64> {
    let out = sarb::variants::SarbOutputs::read(session);
    [&out.fdl, &out.ful, &out.fds, &out.fus]
        .into_iter()
        .flat_map(|v| v.iter().map(|x| x.to_bits()))
        .collect()
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_pr8.json".into());
    let mut errors: Vec<String> = Vec::new();

    // ------------------------------------------------------------------
    // 1. Fixed-seed chaos campaign: ≥200 injected faults, 0 violations.
    // ------------------------------------------------------------------
    let cfg = CampaignConfig {
        seed: 0x00C0_FFEE,
        rounds: 20,
        jobs_per_round: 16,
        ..CampaignConfig::default()
    };
    // The campaign injects panics by design (forced traps, worker
    // panics); every one is caught at a catch_unwind boundary. Silence
    // the default hook for the duration so CI logs stay readable —
    // anything that actually escapes still fails the run.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let t = Instant::now();
    let report = run_campaign(&cfg);
    let campaign_ms = t.elapsed().as_millis();
    std::panic::set_hook(default_hook);
    println!(
        "campaign: {} jobs / {} rounds, {} faults injected, {} watchdog firings, \
         {} cache evictions, {} violations ({campaign_ms} ms)",
        report.jobs,
        report.rounds,
        report.injected_total(),
        report.watchdog_fired,
        report.cache_evictions,
        report.violations.len()
    );
    for (kind, n) in &report.injected {
        println!("  injected {kind:<22} {n}");
    }
    for (action, n) in &report.actions {
        println!("  verdict  {action:<22} {n}");
    }
    if report.injected_total() < 200 {
        errors.push(format!(
            "campaign injected only {} faults, below the 200 floor",
            report.injected_total()
        ));
    }
    for v in &report.violations {
        errors.push(format!("campaign invariant violation: {v}"));
    }
    if report.watchdog_fired == 0 {
        errors.push("no watchdog deadline ever fired during the campaign".into());
    }

    // ------------------------------------------------------------------
    // 2. Policy overhead on the PR 7 batched SARB sweep: same batch,
    //    full policy armed (never triggered).
    // ------------------------------------------------------------------
    const BATCH_JOBS: usize = 12;
    const NCOL: i64 = 4;
    let service = EngineService::new(8);
    let sarb_sources = sarb::variants::variant_sources(sarb::variants::SarbVariant::GlafSerial);
    let sarb_srcs: Vec<&str> = sarb_sources.iter().map(String::as_str).collect();
    let sarb_artifact = service.compile(&sarb_srcs).expect("sarb compiles");
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let width = host_cpus.min(4);

    // Warm up and take the reference bits.
    let expect_bits = {
        let session = service.session_for(&sarb_artifact);
        session.run("run_columns", &[ArgVal::I(NCOL)], ExecMode::Serial).expect("reference job");
        sarb_output_bits(&session)
    };

    let run_batch = |policy: Option<JobPolicy>| -> (u64, Vec<String>) {
        let mut errs = Vec::new();
        let mut queue = service.queue(width);
        if let Some(p) = policy {
            queue.set_default_policy(p);
        }
        let t = Instant::now();
        for _ in 0..BATCH_JOBS {
            queue.submit(&sarb_artifact, Job::new("run_columns", vec![ArgVal::I(NCOL)]));
        }
        let results = queue.run_batch();
        let ns = t.elapsed().as_nanos() as u64;
        for (j, jr) in results.iter().enumerate() {
            match (&jr.result, jr.session.as_ref()) {
                (Err(e), _) => errs.push(format!("batch job {j} failed: {e}")),
                (Ok(_), None) => errs.push(format!("batch job {j}: missing session")),
                (Ok(_), Some(session)) => {
                    if sarb_output_bits(session) != expect_bits {
                        errs.push(format!("batch job {j}: outputs diverge from baseline"));
                    }
                    if session.fallback_count() != 0 {
                        errs.push(format!("batch job {j}: unexpected tier fallback"));
                    }
                }
            }
        }
        (ns, errs)
    };

    let armed_policy = JobPolicy {
        deadline: Some(Duration::from_secs(30)),
        retries: 2,
        backoff: Duration::from_millis(1),
        degrade: true,
    };
    // Warm-up batch, then alternating medians so scheduler noise hits
    // both configurations evenly.
    let _ = run_batch(None);
    let mut plain_samples = Vec::new();
    let mut policied_samples = Vec::new();
    for _ in 0..5 {
        let (ns, errs) = run_batch(None);
        plain_samples.push(ns);
        errors.extend(errs);
        let (ns, errs) = run_batch(Some(armed_policy));
        policied_samples.push(ns);
        errors.extend(errs);
    }
    plain_samples.sort_unstable();
    policied_samples.sort_unstable();
    let plain_ns = plain_samples[plain_samples.len() / 2];
    let policied_ns = policied_samples[policied_samples.len() / 2];
    let overhead = policied_ns as f64 / plain_ns.max(1) as f64;
    println!(
        "policy overhead: {BATCH_JOBS} jobs ({width}-wide)  plain {:.3} ms  \
         policied {:.3} ms  ratio {overhead:.3}x",
        plain_ns as f64 / 1e6,
        policied_ns as f64 / 1e6
    );
    if service.pools().contained_panics() != 0 {
        errors.push("shared pools caught panics during the clean batches".into());
    }

    // ------------------------------------------------------------------
    // 3. Trajectory: PR 6 kernels through sessions + chaos statistics.
    // ------------------------------------------------------------------
    println!("== scalar VM vs vector tier via sessions (median of 7, serial) ==");
    let sarb_k = pair(
        "sarb_longwave",
        || Session::solo(sarb::variants::build_artifact(sarb::variants::SarbVariant::GlafSerial)),
        |s| {
            s.run("run_columns", &[ArgVal::I(6)], ExecMode::Serial).unwrap();
        },
    );
    let fun3d_k = pair(
        "fun3d_edge_gather",
        || {
            let cfg = fun3d::variants::Fun3dConfig { fuse: true, ..Default::default() };
            let s = Session::solo(fun3d::variants::build_artifact(
                fun3d::variants::Fun3dVariant::Glaf(cfg),
            ));
            s.run("build_mesh", &[ArgVal::I(300)], ExecMode::Serial).unwrap();
            s
        },
        |s| {
            s.run("edgejp", &[], ExecMode::Serial).unwrap();
        },
    );
    let a: Vec<f64> = (0..4096).map(|i| (i % 97) as f64 * 0.01).collect();
    let b: Vec<f64> = (0..4096).map(|i| (i % 89) as f64 * 0.02 - 0.5).collect();
    let micro_k = pair(
        "micro_reduction",
        || Session::solo(fortrans::CompiledProgram::compile(&[MICRO_REDUCTION]).unwrap()),
        |s| {
            let acc = ArgVal::F(0.0);
            for _ in 0..64 {
                s.run(
                    "dotp",
                    &[
                        ArgVal::array_f(&a, 1),
                        ArgVal::array_f(&b, 1),
                        ArgVal::I(4096),
                        acc.clone(),
                    ],
                    ExecMode::Serial,
                )
                .unwrap();
            }
        },
    );

    let mut json = String::new();
    json.push_str("{\n  \"pr\": 8,\n  \"mode\": \"serial\",\n  \"kernels\": {\n");
    let rows =
        [("sarb_longwave", &sarb_k), ("fun3d_edge_gather", &fun3d_k), ("micro_reduction", &micro_k)];
    for (ri, (label, (scalar, vector, entries))) in rows.iter().enumerate() {
        let speedup = *scalar as f64 / (*vector).max(1) as f64;
        let _ = writeln!(
            json,
            "    \"{label}\": {{\"scalar_vm_ns\": {scalar}, \"vector_vm_ns\": {vector}, \
             \"speedup\": {speedup:.3}, \"vector_entries\": {entries}}}{}",
            if ri + 1 == rows.len() { "" } else { "," }
        );
    }
    json.push_str("  },\n  \"service\": {\n");
    let _ = writeln!(json, "    \"batch_jobs\": {BATCH_JOBS},");
    let _ = writeln!(json, "    \"batch_width\": {width},");
    let _ = writeln!(json, "    \"host_cpus\": {host_cpus},");
    let _ = writeln!(json, "    \"pooled_batch_ns\": {policied_ns},");
    let _ = writeln!(json, "    \"plain_batch_ns\": {plain_ns},");
    let _ = writeln!(json, "    \"policy_overhead\": {overhead:.3}");
    json.push_str("  },\n  \"chaos\": {\n");
    let _ = writeln!(json, "    \"seed\": {},", cfg.seed);
    let _ = writeln!(json, "    \"rounds\": {},", report.rounds);
    let _ = writeln!(json, "    \"jobs\": {},", report.jobs);
    let _ = writeln!(json, "    \"injected_faults\": {},", report.injected_total());
    let _ = writeln!(json, "    \"watchdog_fired\": {},", report.watchdog_fired);
    let _ = writeln!(json, "    \"cache_evictions\": {},", report.cache_evictions);
    let _ = writeln!(json, "    \"violations\": {},", report.violations.len());
    let mut kinds: Vec<String> = Vec::new();
    for (kind, n) in &report.injected {
        kinds.push(format!("      \"{kind}\": {n}"));
    }
    let _ = writeln!(json, "    \"injected_by_kind\": {{\n{}\n    }},", kinds.join(",\n"));
    let mut verdicts: Vec<String> = Vec::new();
    for (action, n) in &report.actions {
        verdicts.push(format!("      \"{action}\": {n}"));
    }
    let _ = writeln!(json, "    \"verdicts\": {{\n{}\n    }}", verdicts.join(",\n"));
    json.push_str("  }\n}\n");
    if let Err(e) = std::fs::write(&out_path, &json) {
        errors.push(format!("cannot write {out_path}: {e}"));
    } else {
        println!("wrote {out_path}");
    }

    if errors.is_empty() {
        println!("chaos_smoke: campaign survived with zero invariant violations");
    } else {
        for e in &errors {
            eprintln!("chaos_smoke: VIOLATION: {e}");
        }
        std::process::exit(1);
    }
}
