//! Runs every table/figure reproduction and writes a machine-readable
//! summary (JSON) next to the human-readable output — the data source
//! for EXPERIMENTS.md.
//!
//! Usage: `repro_all [out.json]`.

use fun3d::variants::{run_simulated as f3d_run, Fun3dConfig, Fun3dVariant};
use glaf_bench::{ordering_agreement, print_bars, Bar, Experiment};
use sarb::variants::{run_simulated as sarb_run, SarbVariant};
use simcpu::MachineModel;

fn fig5(ncol: i64, threads: usize) -> Experiment {
    let m = MachineModel::i5_2400_like();
    let base = sarb_run(SarbVariant::OriginalSerial, ncol, threads, &m);
    let cases = [
        (SarbVariant::OriginalSerial, Some(1.00)),
        (SarbVariant::GlafSerial, Some(0.89)),
        (SarbVariant::GlafParallel(0), Some(0.48)),
        (SarbVariant::GlafParallel(1), Some(0.66)),
        (SarbVariant::GlafParallel(2), Some(1.11)),
        (SarbVariant::GlafParallel(3), Some(1.41)),
        (SarbVariant::GlafCostModel, None),
    ];
    let bars = cases
        .into_iter()
        .map(|(v, paper)| {
            let r = sarb_run(v, ncol, threads, &m);
            Bar {
                label: r.variant_name,
                paper,
                measured: base.report.total_cycles / r.report.total_cycles,
            }
        })
        .collect();
    Experiment {
        id: "fig5".into(),
        description: "SARB speed-up vs original serial, 4 threads, i5-2400-like".into(),
        bars,
    }
}

fn fig6(ncol: i64) -> Experiment {
    let m = MachineModel::i5_2400_like();
    let base = sarb_run(SarbVariant::GlafSerial, ncol, 1, &m);
    let bars = [(1usize, 0.92), (2, 1.24), (4, 1.59), (8, 0.70)]
        .iter()
        .map(|&(t, p)| {
            let r = sarb_run(SarbVariant::GlafParallel(3), ncol, t, &m);
            Bar {
                label: format!("v3 {t}T"),
                paper: Some(p),
                measured: base.report.total_cycles / r.report.total_cycles,
            }
        })
        .collect();
    Experiment {
        id: "fig6".into(),
        description: "SARB v3 thread scaling vs GLAF serial, i5-2400-like".into(),
        bars,
    }
}

fn fig7(ncell: i64, threads: usize) -> Experiment {
    let m = MachineModel::xeon_e5_2637v4_dual_like();
    let base = f3d_run(Fun3dVariant::OriginalSerial, ncell, threads, &m);
    let sp = |v: Fun3dVariant| {
        let r = f3d_run(v, ncell, threads, &m);
        base.report.total_cycles / r.report.total_cycles
    };
    let mut bars = vec![
        Bar { label: "original serial".into(), paper: Some(1.0), measured: 1.0 },
        Bar {
            label: "manual parallel".into(),
            paper: Some(3.85),
            measured: sp(Fun3dVariant::ManualParallel),
        },
        Bar {
            label: "GLAF EdgeJP noRealloc (best)".into(),
            paper: Some(1.67),
            measured: sp(Fun3dVariant::Glaf(Fun3dConfig::best())),
        },
        Bar {
            label: "GLAF all levels + realloc (worst)".into(),
            paper: Some(1.0 / 128.0),
            measured: sp(Fun3dVariant::Glaf(Fun3dConfig {
                par_edgejp: true,
                par_cell_loop: true,
                par_edge_loop: true,
                par_ioff_search: true,
                no_realloc: false,
                fuse: false,
            })),
        },
    ];
    for cfg in Fun3dConfig::all() {
        bars.push(Bar {
            label: format!("GLAF {}", cfg.tag()),
            paper: None,
            measured: sp(Fun3dVariant::Glaf(cfg)),
        });
    }
    Experiment {
        id: "fig7".into(),
        description: format!(
            "FUN3D 16-thread option matrix, {ncell} cells, 2x E5-2637v4-like"
        ),
        bars,
    }
}

fn main() {
    let out_path = std::env::args().nth(1);
    let experiments = vec![fig5(8, 4), fig6(8), fig7(2000, 16)];
    for e in &experiments {
        print_bars(&format!("{} — {}", e.id, e.description), &e.bars);
        println!(
            "ordering agreement with paper: {:.0}%",
            ordering_agreement(&e.bars) * 100.0
        );
    }
    if let Some(path) = out_path {
        let json = glaf_bench::experiments_to_json(&experiments);
        std::fs::write(&path, json).expect("write json");
        println!("\nwrote {path}");
    }
    println!("\n(run repro_table1 / repro_table2 for the SLOC and variant tables)");
}
