//! CI smoke for the vector execution tier and the fusion pass, emitting
//! `BENCH_pr6.json`.
//!
//! Usage: `vector_smoke [out.json]` (default `BENCH_pr6.json`).
//!
//! 1. Times the scalar VM against the vector tier (same engine with the
//!    vector path disabled vs. enabled) on three kernels: the SARB
//!    longwave spectral integration, the FUN3D edge gather (fused), and
//!    a 4096-element serial reduction.
//! 2. Validates that the vector path is actually taken: the decision log
//!    marks the FUN3D edge loop and the SARB longwave loops vectorizable,
//!    the compiled engines report vector superinstructions in those
//!    units, and the runs count vector loop entries. Exits nonzero on
//!    any violation.
//! 3. Writes the measurements as JSON — the PR 6 perf trajectory file.

use std::fmt::Write as _;
use std::time::Instant;

use fortrans::{ArgVal, Engine, ExecMode};
use glaf::Glaf;

const MICRO_REDUCTION: &str = r#"
MODULE mr
CONTAINS
  SUBROUTINE dotp(a, b, n, s)
    REAL(8), DIMENSION(1:4096) :: a
    REAL(8), DIMENSION(1:4096) :: b
    INTEGER :: n
    REAL(8) :: s
    INTEGER :: i
    s = 0.0D0
    DO i = 1, n
      s = s + a(i) * b(i)
    END DO
  END SUBROUTINE dotp
END MODULE mr
"#;

fn median_ns(reps: usize, mut run: impl FnMut()) -> u64 {
    let mut samples: Vec<u64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            run();
            t.elapsed().as_nanos() as u64
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Scalar-vs-vector wall time on one kernel: same engine factory, vector
/// path off then on. Returns `(scalar_ns, vector_ns, vector_entries)`.
fn pair(label: &str, mk: impl Fn() -> Engine, run: impl Fn(&Engine)) -> (u64, u64, u64) {
    // This smoke measures the *vector* tier in isolation; keep the
    // native (JIT) tier out of both sides so the PR 6 trajectory keys
    // stay comparable across PRs (jit_smoke owns the native numbers).
    let off = mk();
    off.set_native_enabled(false);
    off.set_vector_enabled(false);
    run(&off); // warm-up
    let scalar = median_ns(7, || run(&off));
    let on = mk();
    on.set_native_enabled(false);
    run(&on);
    let vector = median_ns(7, || run(&on));
    let entries = on.vector_entry_count();
    println!(
        "{label:<22} scalar {:>9.3} ms   vector {:>9.3} ms   speedup {:.2}x   entries {entries}",
        scalar as f64 / 1e6,
        vector as f64 / 1e6,
        scalar as f64 / vector.max(1) as f64,
    );
    (scalar, vector, entries)
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_pr6.json".into());
    let mut errors: Vec<String> = Vec::new();

    // 1. Scalar VM vs. vector tier.
    println!("== scalar VM vs vector tier (median of 7, serial) ==");
    let sarb = pair(
        "sarb_longwave",
        || sarb::variants::build_engine(sarb::variants::SarbVariant::GlafSerial),
        |e| {
            e.run("run_columns", &[ArgVal::I(6)], ExecMode::Serial).unwrap();
        },
    );
    let fun3d = pair(
        "fun3d_edge_gather",
        || {
            let cfg = fun3d::variants::Fun3dConfig { fuse: true, ..Default::default() };
            let e = fun3d::variants::build_engine(fun3d::variants::Fun3dVariant::Glaf(cfg));
            e.run("build_mesh", &[ArgVal::I(300)], ExecMode::Serial).unwrap();
            e
        },
        |e| {
            e.run("edgejp", &[], ExecMode::Serial).unwrap();
        },
    );
    let a: Vec<f64> = (0..4096).map(|i| (i % 97) as f64 * 0.01).collect();
    let b: Vec<f64> = (0..4096).map(|i| (i % 89) as f64 * 0.02 - 0.5).collect();
    let micro = pair(
        "micro_reduction",
        || Engine::compile(&[MICRO_REDUCTION]).unwrap(),
        |e| {
            let s = ArgVal::F(0.0);
            for _ in 0..64 {
                e.run(
                    "dotp",
                    &[
                        ArgVal::array_f(&a, 1),
                        ArgVal::array_f(&b, 1),
                        ArgVal::I(4096),
                        s.clone(),
                    ],
                    ExecMode::Serial,
                )
                .unwrap();
            }
        },
    );

    // 2. The vector path must actually be taken where the design says so.
    let mut g = Glaf::new(fun3d::glaf_model::build_fun3d_program()).expect("FUN3D program valid");
    let reports = g.fuse();
    if !reports.iter().any(|r| r.function == "edge_loop" && r.fused >= 10) {
        errors.push(format!("edge_loop temporaries run did not fuse: {reports:?}"));
    }
    let edge_vec = g
        .decision_log()
        .for_function("edge_loop")
        .iter()
        .any(|d| d.fusion.is_some() && d.vectorizable);
    if !edge_vec {
        errors.push("decision log: fused FUN3D edge loop not marked vectorizable".into());
    }
    let sg = Glaf::new(sarb::glaf_model::build_sarb_program()).expect("SARB program valid");
    for f in ["g_lw_emis", "g_lw_trn", "g_lw_up"] {
        if !sg.decision_log().for_function(f).iter().any(|d| d.vectorizable) {
            errors.push(format!("decision log: SARB longwave loop `{f}` not vectorizable"));
        }
    }

    let sarb_engine = sarb::variants::build_engine(sarb::variants::SarbVariant::GlafSerial);
    sarb_engine.set_native_enabled(false);
    sarb_engine.run("run_columns", &[ArgVal::I(1)], ExecMode::Serial).unwrap();
    let rep = sarb_engine.vector_report();
    for f in ["g_lw_emis", "g_lw_trn", "g_lw_up"] {
        if !rep.iter().any(|v| v.unit == f) {
            errors.push(format!("SARB engine compiled no vector loop in `{f}`"));
        }
    }
    if sarb_engine.vector_entry_count() == 0 {
        errors.push("SARB longwave run took zero vector loop entries".into());
    }
    let cfg = fun3d::variants::Fun3dConfig { fuse: true, ..Default::default() };
    let f3 = fun3d::variants::build_engine(fun3d::variants::Fun3dVariant::Glaf(cfg));
    f3.set_native_enabled(false);
    f3.run("build_mesh", &[ArgVal::I(40)], ExecMode::Serial).unwrap();
    f3.run("edgejp", &[], ExecMode::Serial).unwrap();
    if !f3.vector_report().iter().any(|v| v.unit == "edge_loop") {
        errors.push("FUN3D engine compiled no vector loop in `edge_loop`".into());
    }
    if f3.vector_entry_count() == 0 {
        errors.push("FUN3D edge gather run took zero vector loop entries".into());
    }
    for (label, (_, _, entries)) in
        [("sarb_longwave", &sarb), ("fun3d_edge_gather", &fun3d), ("micro_reduction", &micro)]
    {
        if *entries == 0 {
            errors.push(format!("{label}: benchmark run took zero vector loop entries"));
        }
    }

    // 3. Emit the trajectory file.
    let mut json = String::new();
    json.push_str("{\n  \"pr\": 6,\n  \"mode\": \"serial\",\n  \"kernels\": {\n");
    let rows =
        [("sarb_longwave", &sarb), ("fun3d_edge_gather", &fun3d), ("micro_reduction", &micro)];
    for (ri, (label, (scalar, vector, entries))) in rows.iter().enumerate() {
        let speedup = *scalar as f64 / (*vector).max(1) as f64;
        let _ = writeln!(
            json,
            "    \"{label}\": {{\"scalar_vm_ns\": {scalar}, \"vector_vm_ns\": {vector}, \
             \"speedup\": {speedup:.3}, \"vector_entries\": {entries}}}{}",
            if ri + 1 == rows.len() { "" } else { "," }
        );
    }
    json.push_str("  }\n}\n");
    if let Err(e) = std::fs::write(&out_path, &json) {
        errors.push(format!("cannot write {out_path}: {e}"));
    } else {
        println!("wrote {out_path}");
    }

    if errors.is_empty() {
        println!("vector_smoke: vector tier and fusion checks OK");
    } else {
        for e in &errors {
            eprintln!("vector_smoke: VIOLATION: {e}");
        }
        std::process::exit(1);
    }
}
