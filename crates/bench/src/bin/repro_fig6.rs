//! Figure 6: "Speed-up of fastest GLAF-generated version (GLAF-parallel
//! v3) with varying number of threads (T) versus GLAF serial
//! implementation" — 1/2/4/8 threads on the 4-core i5-2400-class model,
//! where 8 threads oversubscribe and collapse (the paper's
//! diminishing-returns observation).
//!
//! Usage: `repro_fig6 [ncolumns]` (default 8).

use glaf_bench::{ordering_agreement, print_bars, Bar};
use sarb::variants::{run_simulated, SarbVariant};
use simcpu::MachineModel;

fn main() {
    let ncol: i64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    let machine = MachineModel::i5_2400_like();
    println!("machine: {}   columns: {ncol}", machine.name);

    let glaf_serial = run_simulated(SarbVariant::GlafSerial, ncol, 1, &machine);
    let paper = [(1usize, 0.92), (2, 1.24), (4, 1.59), (8, 0.70)];
    let bars: Vec<Bar> = paper
        .iter()
        .map(|&(t, p)| {
            let run = run_simulated(SarbVariant::GlafParallel(3), ncol, t, &machine);
            Bar {
                label: format!("GLAF-parallel v3 ({t}T)"),
                paper: Some(p),
                measured: glaf_serial.report.total_cycles / run.report.total_cycles,
            }
        })
        .collect();
    print_bars("Figure 6: v3 speed-up vs GLAF serial across threads", &bars);
    println!(
        "\npairwise ordering agreement with the paper: {:.0}%",
        ordering_agreement(&bars) * 100.0
    );
}
