//! Perf-trajectory comparison: diff two `BENCH_*.json` files and flag
//! wall-clock regressions.
//!
//! The trajectory files are hand-written JSON with ad-hoc schemas per
//! PR, so the comparison is schema-agnostic: every numeric leaf is
//! flattened to a dotted path (`kernels.sarb_longwave.vector_vm_ns`),
//! paths present in both files are compared, and a leaf whose path
//! mentions `_ns` counts as a timing — higher-is-worse, regressed when
//! `new > old * (1 + tolerance)`. Non-timing leaves are reported but
//! never fail the comparison.

/// One shared numeric leaf.
#[derive(Debug, Clone, PartialEq)]
pub struct Delta {
    pub path: String,
    pub old: f64,
    pub new: f64,
}

impl Delta {
    /// `new / old`; infinity when old is zero and new is not.
    pub fn ratio(&self) -> f64 {
        if self.old == 0.0 {
            if self.new == 0.0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.new / self.old
        }
    }

    /// Timing leaves are the ones a regression gate applies to.
    pub fn is_timing(&self) -> bool {
        self.path.contains("_ns")
    }
}

/// The full comparison between two trajectory files.
#[derive(Debug, Clone, Default)]
pub struct Comparison {
    /// Leaves present in both files, in old-file order.
    pub shared: Vec<Delta>,
    /// Leaves only in the old file, with their (old) values.
    pub removed: Vec<(String, f64)>,
    /// Leaves only in the new file, with their (new) values.
    pub added: Vec<(String, f64)>,
}

impl Comparison {
    /// Timing leaves slower than `old * (1 + tolerance)`.
    pub fn regressions(&self, tolerance: f64) -> Vec<&Delta> {
        self.shared
            .iter()
            .filter(|d| d.is_timing() && d.new > d.old * (1.0 + tolerance))
            .collect()
    }
}

/// Compares two trajectory files' numeric leaves.
pub fn compare(old_json: &str, new_json: &str) -> Result<Comparison, String> {
    let old = numeric_leaves(old_json).map_err(|e| format!("old file: {e}"))?;
    let new = numeric_leaves(new_json).map_err(|e| format!("new file: {e}"))?;
    let mut cmp = Comparison::default();
    for (path, o) in &old {
        match new.iter().find(|(p, _)| p == path) {
            Some((_, n)) => cmp.shared.push(Delta { path: path.clone(), old: *o, new: *n }),
            None => cmp.removed.push((path.clone(), *o)),
        }
    }
    for (path, n) in &new {
        if !old.iter().any(|(p, _)| p == path) {
            cmp.added.push((path.clone(), *n));
        }
    }
    Ok(cmp)
}

/// Flattens every numeric leaf of a JSON document to `(dotted.path,
/// value)`, in document order. Minimal recursive-descent parser — the
/// build environment is offline, so serde_json is unavailable.
pub fn numeric_leaves(json: &str) -> Result<Vec<(String, f64)>, String> {
    let mut p = Parser { s: json.as_bytes(), i: 0 };
    let mut out = Vec::new();
    p.ws();
    p.value("", &mut out)?;
    p.ws();
    if p.i != p.s.len() {
        return Err(format!("trailing content at byte {}", p.i));
    }
    Ok(out)
}

struct Parser<'a> {
    s: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn ws(&mut self) {
        while self.i < self.s.len() && self.s[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.s.get(self.i).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", c as char, self.i))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        while let Some(c) = self.peek() {
            self.i += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.i += 1;
                    out.push(match esc {
                        b'n' => '\n',
                        b't' => '\t',
                        b'r' => '\r',
                        other => other as char,
                    });
                }
                c => out.push(c as char),
            }
        }
        Err("unterminated string".into())
    }

    fn value(&mut self, path: &str, out: &mut Vec<(String, f64)>) -> Result<(), String> {
        self.ws();
        match self.peek().ok_or("unexpected end of input")? {
            b'{' => {
                self.i += 1;
                self.ws();
                if self.peek() == Some(b'}') {
                    self.i += 1;
                    return Ok(());
                }
                loop {
                    self.ws();
                    let key = self.string()?;
                    self.ws();
                    self.expect(b':')?;
                    let child =
                        if path.is_empty() { key } else { format!("{path}.{key}") };
                    self.value(&child, out)?;
                    self.ws();
                    match self.peek() {
                        Some(b',') => self.i += 1,
                        Some(b'}') => {
                            self.i += 1;
                            return Ok(());
                        }
                        _ => return Err(format!("expected `,` or `}}` at byte {}", self.i)),
                    }
                }
            }
            b'[' => {
                self.i += 1;
                self.ws();
                if self.peek() == Some(b']') {
                    self.i += 1;
                    return Ok(());
                }
                let mut idx = 0usize;
                loop {
                    self.value(&format!("{path}[{idx}]"), out)?;
                    idx += 1;
                    self.ws();
                    match self.peek() {
                        Some(b',') => self.i += 1,
                        Some(b']') => {
                            self.i += 1;
                            return Ok(());
                        }
                        _ => return Err(format!("expected `,` or `]` at byte {}", self.i)),
                    }
                }
            }
            b'"' => {
                self.string()?;
                Ok(())
            }
            b't' | b'f' | b'n' => {
                while self.peek().is_some_and(|c| c.is_ascii_alphabetic()) {
                    self.i += 1;
                }
                Ok(())
            }
            _ => {
                let start = self.i;
                while self
                    .peek()
                    .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E'))
                {
                    self.i += 1;
                }
                let text = std::str::from_utf8(&self.s[start..self.i]).unwrap_or("");
                let v: f64 = text
                    .parse()
                    .map_err(|_| format!("bad number `{text}` at byte {start}"))?;
                out.push((path.to_string(), v));
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const OLD: &str = r#"{
      "pr": 6,
      "kernels": {
        "sarb": {"scalar_vm_ns": 1000, "vector_vm_ns": 500, "speedup": 2.0},
        "micro": {"scalar_vm_ns": 800, "vector_vm_ns": 100}
      }
    }"#;

    #[test]
    fn leaves_flatten_in_order() {
        let leaves = numeric_leaves(OLD).unwrap();
        let paths: Vec<&str> = leaves.iter().map(|(p, _)| p.as_str()).collect();
        assert_eq!(
            paths,
            [
                "pr",
                "kernels.sarb.scalar_vm_ns",
                "kernels.sarb.vector_vm_ns",
                "kernels.sarb.speedup",
                "kernels.micro.scalar_vm_ns",
                "kernels.micro.vector_vm_ns",
            ]
        );
        assert_eq!(leaves[2].1, 500.0);
    }

    #[test]
    fn regression_gate_fires_only_past_tolerance_on_timings() {
        let new = OLD.replace("\"vector_vm_ns\": 500", "\"vector_vm_ns\": 560")
            .replace("\"speedup\": 2.0", "\"speedup\": 99.0");
        let cmp = compare(OLD, &new).unwrap();
        // 12% slower timing regresses at 10% tolerance; the non-timing
        // `speedup` leaf and the 0%-change leaves do not.
        let regs = cmp.regressions(0.10);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].path, "kernels.sarb.vector_vm_ns");
        assert!((regs[0].ratio() - 1.12).abs() < 1e-9);
        assert!(cmp.regressions(0.15).is_empty());
    }

    #[test]
    fn added_and_removed_paths_reported() {
        let new = r#"{"pr": 6, "kernels": {"sarb": {"scalar_vm_ns": 1000}}, "extra": 1}"#;
        let cmp = compare(OLD, new).unwrap();
        // Values ride along so one-sided leaves are reportable, not
        // silently dropped from the printout.
        assert!(cmp.removed.contains(&("kernels.micro.scalar_vm_ns".to_string(), 800.0)));
        assert!(cmp.removed.contains(&("kernels.micro.vector_vm_ns".to_string(), 100.0)));
        assert!(cmp.added.contains(&("extra".to_string(), 1.0)));
        assert_eq!(cmp.shared.len(), 2, "{cmp:?}");
    }

    #[test]
    fn arrays_and_literals_parse() {
        let leaves =
            numeric_leaves(r#"{"a": [1, {"b_ns": 2}, true, null, "x"], "c": -1.5e3}"#).unwrap();
        assert_eq!(
            leaves,
            vec![
                ("a[0]".to_string(), 1.0),
                ("a[1].b_ns".to_string(), 2.0),
                ("c".to_string(), -1500.0),
            ]
        );
        assert!(numeric_leaves("{\"a\": }").is_err());
    }
}
