//! # glaf-bench — the reproduction harness
//!
//! One `repro_*` binary per table/figure of the paper's evaluation
//! (§4), printing the same rows/series the paper reports, next to the
//! paper's own numbers:
//!
//! | Binary | Reproduces |
//! |---|---|
//! | `repro_table1` | Table 1 — SLOC of the six SARB subroutines |
//! | `repro_table2` | Table 2 — the implementation-variant ladder |
//! | `repro_fig5` | Fig. 5 — SARB speed-ups vs. original serial @ 4 threads |
//! | `repro_fig6` | Fig. 6 — v3 thread-scaling vs. GLAF serial |
//! | `repro_fig7` | Fig. 7 — FUN3D 16-thread option-matrix speed-ups |
//! | `repro_all` | everything above, plus a machine-readable JSON dump |
//!
//! Criterion benches (`cargo bench`) measure the *real* wall-clock cost
//! of the reproduction stack itself (compile pipeline, engine execution
//! throughput, variant runs) and the ablation studies DESIGN.md calls
//! out (fork-cost sweep, SIMD-width sweep, cost-model policy vs. the
//! manual ladder).


pub mod calibrate;
pub mod compare;
pub mod observe;

/// One labeled measurement (speed-up bar).
#[derive(Debug, Clone)]
pub struct Bar {
    pub label: String,
    pub paper: Option<f64>,
    pub measured: f64,
}

/// Renders a bar table with an ASCII gauge, paper-vs-measured.
pub fn print_bars(title: &str, bars: &[Bar]) {
    println!("\n{title}");
    println!("{}", "-".repeat(title.len()));
    let max = bars.iter().map(|b| b.measured).fold(0.0f64, f64::max).max(1e-9);
    for b in bars {
        let width = ((b.measured / max) * 40.0).round() as usize;
        let paper = match b.paper {
            Some(p) => format!("{p:>6.2}"),
            None => "     -".to_string(),
        };
        println!(
            "{:34} paper {}  measured {:>7.3}  |{}",
            b.label,
            paper,
            b.measured,
            "#".repeat(width.max(if b.measured > 0.0 { 1 } else { 0 }))
        );
    }
}

/// Serializable experiment record for EXPERIMENTS.md regeneration.
#[derive(Debug, Clone)]
pub struct Experiment {
    pub id: String,
    pub description: String,
    pub bars: Vec<Bar>,
}

/// Ordering agreement between paper and measured bars: fraction of
/// pairwise orderings that match (1.0 = identical ranking) over bars that
/// carry paper values.
pub fn ordering_agreement(bars: &[Bar]) -> f64 {
    let with_paper: Vec<&Bar> = bars.iter().filter(|b| b.paper.is_some()).collect();
    let n = with_paper.len();
    if n < 2 {
        return 1.0;
    }
    let mut agree = 0usize;
    let mut total = 0usize;
    for i in 0..n {
        for j in (i + 1)..n {
            let p = with_paper[i].paper.unwrap() - with_paper[j].paper.unwrap();
            let m = with_paper[i].measured - with_paper[j].measured;
            total += 1;
            if p.signum() == m.signum() || p.abs() < 1e-9 {
                agree += 1;
            }
        }
    }
    agree as f64 / total as f64
}

/// JSON serialization for the experiment records (hand-rolled: the build
/// environment is offline, so serde_json is unavailable). Numbers use
/// `{:?}`, which round-trips f64 exactly.
pub fn experiments_to_json(experiments: &[Experiment]) -> String {
    fn esc(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                '\r' => out.push_str("\\r"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }
    fn num(v: f64) -> String {
        if v.is_finite() { format!("{v:?}") } else { "null".to_string() }
    }
    let mut out = String::from("[\n");
    for (i, e) in experiments.iter().enumerate() {
        out.push_str("  {\n");
        out.push_str(&format!("    \"id\": \"{}\",\n", esc(&e.id)));
        out.push_str(&format!("    \"description\": \"{}\",\n", esc(&e.description)));
        out.push_str("    \"bars\": [\n");
        for (j, b) in e.bars.iter().enumerate() {
            let paper = match b.paper {
                Some(p) => num(p),
                None => "null".to_string(),
            };
            out.push_str(&format!(
                "      {{ \"label\": \"{}\", \"paper\": {}, \"measured\": {} }}{}\n",
                esc(&b.label),
                paper,
                num(b.measured),
                if j + 1 < e.bars.len() { "," } else { "" }
            ));
        }
        out.push_str("    ]\n");
        out.push_str(&format!("  }}{}\n", if i + 1 < experiments.len() { "," } else { "" }));
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bar(l: &str, p: f64, m: f64) -> Bar {
        Bar { label: l.into(), paper: Some(p), measured: m }
    }

    #[test]
    fn ordering_agreement_full_and_partial() {
        let good = vec![bar("a", 1.0, 1.1), bar("b", 2.0, 2.3), bar("c", 0.5, 0.4)];
        assert_eq!(ordering_agreement(&good), 1.0);
        let flipped = vec![bar("a", 1.0, 2.0), bar("b", 2.0, 1.0)];
        assert_eq!(ordering_agreement(&flipped), 0.0);
        let single = vec![bar("a", 1.0, 9.0)];
        assert_eq!(ordering_agreement(&single), 1.0);
    }

    #[test]
    fn bars_without_paper_ignored() {
        let bars = vec![
            bar("a", 1.0, 1.0),
            Bar { label: "x".into(), paper: None, measured: 99.0 },
            bar("b", 2.0, 3.0),
        ];
        assert_eq!(ordering_agreement(&bars), 1.0);
    }
}
