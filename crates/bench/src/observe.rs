//! Execution observability: the predicted-vs-measured report.
//!
//! Joins three views of one kernel run:
//!
//! 1. **measured** — a profiled execution ([`fortrans::Engine::run_profiled`])
//!    giving per-unit / per-DO-loop wall time, VM step counts against the
//!    [`fortrans::RunLimits`] budget, tier-fallback diagnostics, and
//!    per-region `omprt` worker utilization;
//! 2. **predicted** — a Simulated-mode run of the same entry point, whose
//!    cost trace [`simcpu::region_costs`] converts to predicted cycles per
//!    parallel region (joined to measured `omp@line` spans by source line);
//! 3. **decided** — the autopar [`glaf_autopar::DecisionLog`] explaining
//!    why each loop was (or was not) parallelized.
//!
//! The join flags loops whose predicted ranking disagrees with the
//! measured ranking — exactly the loops where the cost model would
//! misorder hot spots.

use std::collections::BTreeMap;

use fortrans::{ArgVal, Engine, ExecMode, ExecTier, Profile, SpanKind, SpanNode};
use simcpu::MachineModel;

use crate::{ordering_agreement, Bar};

/// One parallel loop in the predicted-vs-measured join.
#[derive(Debug, Clone)]
pub struct LoopObs {
    /// Innermost enclosing unit of the `omp@line` span.
    pub unit: String,
    /// Source line of the parallel DO (the join key).
    pub line: u32,
    /// Times the region was entered in the measured run.
    pub entries: u64,
    /// Measured wall time of the region span, in nanoseconds.
    pub measured_ns: u64,
    /// Predicted cycles summed over the region's simulated forks
    /// (None when the simulated run never forked this line).
    pub predicted_cycles: Option<f64>,
    /// Fork events joined from the simulated trace.
    pub forks: u64,
}

/// The full observability report for one profiled run.
#[derive(Debug, Clone)]
pub struct ObservabilityReport {
    /// The measured profile (serialize with [`Profile::to_json`]).
    pub profile: Profile,
    /// Rendered autopar decision log.
    pub decisions: String,
    /// Predicted-vs-measured join over parallel loops.
    pub loops: Vec<LoopObs>,
    /// Pairwise ordering agreement between predicted and measured time
    /// over the joined loops (1.0 = the cost model ranks hot spots
    /// exactly like the measurement).
    pub agreement: f64,
}

impl ObservabilityReport {
    /// Loops whose predicted rank disagrees with their measured rank —
    /// the places where the cost model misorders hot spots.
    pub fn misordered(&self) -> Vec<&LoopObs> {
        let joined: Vec<&LoopObs> =
            self.loops.iter().filter(|l| l.predicted_cycles.is_some()).collect();
        let rank = |key: &dyn Fn(&LoopObs) -> f64| -> Vec<usize> {
            let mut idx: Vec<usize> = (0..joined.len()).collect();
            idx.sort_by(|&a, &b| {
                key(joined[b]).partial_cmp(&key(joined[a])).unwrap_or(std::cmp::Ordering::Equal)
            });
            let mut rank = vec![0usize; joined.len()];
            for (r, &i) in idx.iter().enumerate() {
                rank[i] = r;
            }
            rank
        };
        let measured = rank(&|l: &LoopObs| l.measured_ns as f64);
        let predicted = rank(&|l: &LoopObs| l.predicted_cycles.unwrap_or(0.0));
        joined
            .into_iter()
            .enumerate()
            .filter(|(i, _)| measured[*i] != predicted[*i])
            .map(|(_, l)| l)
            .collect()
    }

    /// Human-readable report: profile summary, measured span tree, omprt
    /// utilization, autopar decisions, predicted-vs-measured table.
    pub fn render(&self) -> String {
        let p = &self.profile;
        let mut out = String::new();
        out.push_str("== profile ==\n");
        out.push_str(&format!(
            "entry {} tier {} mode {} wall {:.3} ms steps {}{}\n",
            p.entry,
            p.tier,
            p.mode,
            p.wall_ns as f64 / 1e6,
            p.steps,
            match p.max_steps {
                Some(m) => format!(" (budget {m}, headroom {})", p.steps_headroom().unwrap_or(0)),
                None => String::new(),
            },
        ));
        match &p.fallback {
            Some(fb) => out.push_str(&format!(
                "tier fallback: unit {} trapped ({}); engine total {}\n",
                fb.unit, fb.what, p.fallback_count
            )),
            None => out.push_str(&format!(
                "tier fallbacks this engine: {}\n",
                p.fallback_count
            )),
        }

        out.push_str("\n== measured spans ==\n");
        fn walk(n: &SpanNode, depth: usize, out: &mut String) {
            out.push_str(&format!(
                "{}{}  entries {}  wall {:.3} ms\n",
                "  ".repeat(depth),
                n.label(),
                n.entries,
                n.wall_ns as f64 / 1e6,
            ));
            for c in &n.children {
                walk(c, depth + 1, out);
            }
        }
        for s in &p.spans {
            walk(s, 0, &mut out);
        }

        out.push_str("\n== omprt utilization ==\n");
        if p.regions.is_empty() {
            out.push_str("(no parallel regions recorded)\n");
        }
        for (i, r) in p.regions.iter().enumerate() {
            out.push_str(&format!(
                "region {i}: threads {} wall {:.3} ms utilization {:.2} imbalance {:.2} idle {:.3} ms\n",
                r.threads,
                r.wall_ns as f64 / 1e6,
                r.utilization(),
                r.imbalance(),
                r.idle_ns() as f64 / 1e6,
            ));
        }

        out.push_str("\n== autopar decisions ==\n");
        out.push_str(&self.decisions);

        out.push_str("\n== predicted vs measured ==\n");
        for l in &self.loops {
            out.push_str(&format!(
                "{}::omp@{}  entries {}  measured {:.3} ms  predicted {}\n",
                l.unit,
                l.line,
                l.entries,
                l.measured_ns as f64 / 1e6,
                match l.predicted_cycles {
                    Some(c) => format!("{c:.0} cycles over {} forks", l.forks),
                    None => "-".to_string(),
                },
            ));
        }
        out.push_str(&format!("ordering agreement: {:.2}\n", self.agreement));
        let miss = self.misordered();
        if miss.is_empty() {
            out.push_str("cost model ranks hot spots consistently with measurement\n");
        } else {
            for l in miss {
                out.push_str(&format!(
                    "MISORDERED: {}::omp@{} (cost model ranks this loop differently)\n",
                    l.unit, l.line
                ));
            }
        }
        out
    }
}

/// Collects `omp@line` spans with their innermost enclosing unit.
fn omp_spans(spans: &[SpanNode]) -> Vec<(String, u32, u64, u64)> {
    fn walk(n: &SpanNode, unit: &str, out: &mut Vec<(String, u32, u64, u64)>) {
        let unit = if n.kind == SpanKind::Unit { n.name.as_str() } else { unit };
        if n.kind == SpanKind::OmpLoop {
            out.push((unit.to_string(), n.line, n.entries, n.wall_ns));
        }
        for c in &n.children {
            walk(c, unit, out);
        }
    }
    let mut out = Vec::new();
    for s in spans {
        walk(s, "", &mut out);
    }
    out
}

/// Profiles `entry` on `engine` (measured side), re-runs it in Simulated
/// mode (predicted side), and joins the two by parallel-DO source line.
///
/// `decisions` is the rendered autopar decision log for the program the
/// engine was generated from (pass an empty string when unavailable).
pub fn observe(
    engine: &Engine,
    entry: &str,
    args: &[ArgVal],
    threads: usize,
    machine: &MachineModel,
    decisions: String,
) -> Result<ObservabilityReport, fortrans::RunError> {
    let (_, profile) =
        engine.run_profiled(entry, args, ExecMode::Parallel { threads }, ExecTier::Vm)?;
    let sim = engine.run(entry, args, ExecMode::Simulated { threads })?;
    let costs = simcpu::region_costs(&sim.trace, machine);

    // Predicted side, aggregated per source line.
    let mut by_line: BTreeMap<u32, (f64, u64)> = BTreeMap::new();
    for c in &costs {
        let e = by_line.entry(c.line).or_insert((0.0, 0));
        e.0 += c.cycles;
        e.1 += 1;
    }

    let loops: Vec<LoopObs> = omp_spans(&profile.spans)
        .into_iter()
        .map(|(unit, line, entries, measured_ns)| {
            let joined = by_line.get(&line);
            LoopObs {
                unit,
                line,
                entries,
                measured_ns,
                predicted_cycles: joined.map(|(c, _)| *c),
                forks: joined.map(|(_, f)| *f).unwrap_or(0),
            }
        })
        .collect();

    let bars: Vec<Bar> = loops
        .iter()
        .filter(|l| l.predicted_cycles.is_some())
        .map(|l| Bar {
            label: format!("{}::omp@{}", l.unit, l.line),
            paper: l.predicted_cycles,
            measured: l.measured_ns as f64,
        })
        .collect();
    let agreement = ordering_agreement(&bars);

    Ok(ObservabilityReport { profile, decisions, loops, agreement })
}

/// Feedback-directed rescheduling: turns a measured [`Profile`] into
/// per-line schedule overrides for the next run.
///
/// Every parallel region that ran a *static* schedule and whose
/// worst-case load imbalance (max-over-mean worker busy time, aggregated
/// over all entries of the region's source line) exceeds
/// `imbalance_threshold` is proposed for `SCHEDULE(DYNAMIC,1)` — the
/// measured counterpart of the cost model's static irregularity
/// analysis. Regions already running a dynamic or guided schedule, and
/// untagged forks (line 0), are left alone. Feed the result to
/// [`Engine::set_schedule_overrides`].
pub fn reschedule(
    profile: &Profile,
    imbalance_threshold: f64,
) -> Vec<(u32, fortrans::Schedule)> {
    // Worst imbalance per source line, static-scheduled regions only.
    let mut worst: BTreeMap<u32, f64> = BTreeMap::new();
    for r in &profile.regions {
        if r.line == 0 || !r.sched.starts_with("static") {
            continue;
        }
        let e = worst.entry(r.line as u32).or_insert(0.0);
        *e = e.max(r.imbalance());
    }
    worst
        .into_iter()
        .filter(|&(_, imb)| imb > imbalance_threshold)
        .map(|(line, _)| (line, fortrans::Schedule::Dynamic(1)))
        .collect()
}

/// The SARB observability report: profiles the GLAF v3 parallel build of
/// the Synoptic SARB kernels over `ncol` columns.
pub fn observe_sarb(
    ncol: i64,
    threads: usize,
) -> Result<ObservabilityReport, fortrans::RunError> {
    let engine = sarb::variants::build_engine(sarb::variants::SarbVariant::GlafParallel(3));
    let g = glaf::Glaf::new(sarb::glaf_model::build_sarb_program())
        .expect("SARB program validates");
    observe(
        &engine,
        "run_columns",
        &[ArgVal::I(ncol)],
        threads,
        &MachineModel::i5_2400_like(),
        g.decision_log().render(),
    )
}
