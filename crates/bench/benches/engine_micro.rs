//! Microbenchmarks of the reproduction stack itself: lexing/parsing/
//! resolution throughput, interpreter execution in each mode, and the
//! GLAF pipeline (analyze + generate).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use fortrans::{ArgVal, Engine, ExecMode, ExecTier};
use glaf::Glaf;
use glaf_codegen::CodegenOptions;

const KERNEL: &str = r#"
MODULE m
CONTAINS
  REAL(8) FUNCTION work(a, n)
    REAL(8), DIMENSION(1:4096) :: a
    INTEGER :: n
    REAL(8) :: acc
    INTEGER :: i
    acc = 0.0D0
    !$OMP PARALLEL DO REDUCTION(+:acc)
    DO i = 1, n
      acc = acc + SIN(a(i)) * COS(a(i)) + SQRT(ABS(a(i)))
    END DO
    !$OMP END PARALLEL DO
    work = acc
  END FUNCTION work
END MODULE m
"#;

fn bench_compile(c: &mut Criterion) {
    let mut g = c.benchmark_group("compile");
    g.sample_size(20);
    g.bench_function("parse_resolve_sarb_original", |b| {
        b.iter(|| {
            Engine::compile(&[
                sarb::legacy::FULIOU_MOD_SRC,
                sarb::original::ORIGINAL_KERNELS_SRC,
                sarb::legacy::DRIVER_SRC,
            ])
            .unwrap()
        })
    });
    g.bench_function("glaf_pipeline_sarb", |b| {
        b.iter(|| {
            let g = Glaf::new(sarb::glaf_model::build_sarb_program()).unwrap();
            g.generate(glaf::Lang::Fortran, &CodegenOptions::parallel_version(3))
        })
    });
    g.finish();
}

fn bench_exec_modes(c: &mut Criterion) {
    let engine = Engine::compile(&[KERNEL]).unwrap();
    let data: Vec<f64> = (0..4096).map(|i| i as f64 * 0.001).collect();
    let mut g = c.benchmark_group("exec_modes");
    g.sample_size(20);
    for (name, mode) in [
        ("serial", ExecMode::Serial),
        ("parallel_4t", ExecMode::Parallel { threads: 4 }),
        ("simulated_4t", ExecMode::Simulated { threads: 4 }),
    ] {
        g.bench_function(name, |b| {
            b.iter_batched(
                || ArgVal::array_f(&data, 1),
                |a| engine.run("work", &[a, ArgVal::I(4096)], mode).unwrap(),
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

/// The zero-overhead contract of `fortrans::trace`: `plain` (no
/// collector — the default `Engine::run` path) against `profiled`
/// (`Engine::run_profiled`, spans + step counts + omprt metrics on).
/// Tracing only branches at unit/loop/region boundaries, so the two
/// series should be indistinguishable on this iteration-heavy kernel;
/// a gap opening up here means the disabled path grew a real cost.
fn bench_tracing_overhead(c: &mut Criterion) {
    let engine = Engine::compile(&[KERNEL]).unwrap();
    let data: Vec<f64> = (0..4096).map(|i| i as f64 * 0.001).collect();
    let mut g = c.benchmark_group("tracing_overhead");
    g.sample_size(20);
    g.bench_function("plain", |b| {
        b.iter_batched(
            || ArgVal::array_f(&data, 1),
            |a| engine.run("work", &[a, ArgVal::I(4096)], ExecMode::Serial).unwrap(),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("profiled", |b| {
        b.iter_batched(
            || ArgVal::array_f(&data, 1),
            |a| {
                engine
                    .run_profiled("work", &[a, ArgVal::I(4096)], ExecMode::Serial, ExecTier::Vm)
                    .unwrap()
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_runtime(c: &mut Criterion) {
    let mut g = c.benchmark_group("omprt");
    g.sample_size(30);
    let pool = omprt::ThreadPool::new(4);
    g.bench_function("fork_join_empty", |b| {
        b.iter(|| pool.run(|_tid| {}).unwrap());
    });
    g.bench_function("atomic_f64_add_10k", |b| {
        let cell = omprt::AtomicF64Cell::new(0.0);
        b.iter(|| {
            for _ in 0..10_000 {
                cell.fetch_add(1.0);
            }
        });
    });
    g.finish();
}

criterion_group!(benches, bench_compile, bench_exec_modes, bench_tracing_overhead, bench_runtime);
criterion_main!(benches);
