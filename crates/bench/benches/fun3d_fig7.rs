//! Figure 7 measurement kernels under criterion: the key FUN3D
//! configurations (the full matrix is printed by `repro_fig7`).

use criterion::{criterion_group, criterion_main, Criterion};
use fun3d::variants::{run_simulated, Fun3dConfig, Fun3dVariant};
use simcpu::MachineModel;

const NC: i64 = 300;

fn bench_fig7_key_configs(c: &mut Criterion) {
    let m = MachineModel::xeon_e5_2637v4_dual_like();
    let mut g = c.benchmark_group("fig7_key_configs");
    g.sample_size(10);
    let cases: Vec<(&str, Fun3dVariant)> = vec![
        ("original_serial", Fun3dVariant::OriginalSerial),
        ("manual_parallel", Fun3dVariant::ManualParallel),
        ("glaf_serial_realloc", Fun3dVariant::Glaf(Fun3dConfig::default())),
        (
            "glaf_serial_norealloc",
            Fun3dVariant::Glaf(Fun3dConfig { no_realloc: true, ..Default::default() }),
        ),
        ("glaf_best_edgejp_norealloc", Fun3dVariant::Glaf(Fun3dConfig::best())),
        (
            "glaf_all_nested_realloc",
            Fun3dVariant::Glaf(Fun3dConfig {
                par_edgejp: true,
                par_cell_loop: true,
                par_edge_loop: true,
                par_ioff_search: true,
                no_realloc: false,
                fuse: false,
            }),
        ),
    ];
    for (name, v) in cases {
        g.bench_function(name, |b| b.iter(|| run_simulated(v, NC, 16, &m)));
    }
    g.finish();
}

fn bench_native_oracles(c: &mut Criterion) {
    let mesh = fun3d::mesh::Mesh::build(2000);
    let mut g = c.benchmark_group("fun3d_native");
    g.sample_size(20);
    g.bench_function("native_serial", |b| b.iter(|| fun3d::native::native_jacobian(&mesh)));
    g.bench_function("native_rayon", |b| {
        b.iter(|| fun3d::native::native_jacobian_rayon(&mesh))
    });
    g.finish();
}

criterion_group!(benches, bench_fig7_key_configs, bench_native_oracles);
criterion_main!(benches);
