//! Execution-tier comparison: bytecode VM vs tree-walking interpreter on
//! the paper's two case-study kernels (the SARB longwave entropy model
//! and the FUN3D edge loop), plus a synthetic reduction microkernel.
//!
//! The acceptance bar for the VM tier is a >= 3x wall-clock speedup over
//! the tree walker on both case-study kernels in Serial mode; the
//! `speedup_summary` group measures and prints the ratios directly.
//!
//! The `vector_tier` group layers the next rung on top: the same VM with
//! the vector superinstruction path disabled vs. enabled, on the SARB
//! longwave integration, the fused FUN3D edge gather, and a serial
//! (non-OMP) reduction microkernel — the PR 6 acceptance bar is >= 1.5x
//! on at least two of the three.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use fortrans::{ArgVal, Engine, ExecMode, ExecTier};
use fun3d::variants::{Fun3dConfig, Fun3dVariant};
use sarb::variants::SarbVariant;

const KERNEL: &str = r#"
MODULE m
CONTAINS
  REAL(8) FUNCTION work(a, n)
    REAL(8), DIMENSION(1:4096) :: a
    INTEGER :: n
    REAL(8) :: acc
    INTEGER :: i
    acc = 0.0D0
    !$OMP PARALLEL DO REDUCTION(+:acc)
    DO i = 1, n
      acc = acc + SIN(a(i)) * COS(a(i)) + SQRT(ABS(a(i)))
    END DO
    !$OMP END PARALLEL DO
    work = acc
  END FUNCTION work
END MODULE m
"#;

/// Serial (no-OMP) reduction: the OMP kernel above never vectorizes —
/// the vector path only rewrites plain serial `DO` loops.
const SERIAL_REDUCTION: &str = r#"
MODULE msr
CONTAINS
  REAL(8) FUNCTION dotp(a, b, n)
    REAL(8), DIMENSION(1:4096) :: a
    REAL(8), DIMENSION(1:4096) :: b
    INTEGER :: n
    REAL(8) :: acc
    INTEGER :: i
    acc = 0.0D0
    DO i = 1, n
      acc = acc + a(i) * b(i)
    END DO
    dotp = acc
  END FUNCTION dotp
END MODULE msr
"#;

fn sarb_engine() -> Engine {
    sarb::variants::build_engine(SarbVariant::GlafSerial)
}

fn fun3d_engine(ncell: i64) -> Engine {
    let engine = fun3d::variants::build_engine(Fun3dVariant::Glaf(Fun3dConfig::default()));
    engine
        .run("build_mesh", &[ArgVal::I(ncell)], ExecMode::Serial)
        .expect("mesh builds");
    engine
}

fn bench_micro(c: &mut Criterion) {
    let engine = Engine::compile(&[KERNEL]).unwrap();
    let data: Vec<f64> = (0..4096).map(|i| i as f64 * 0.001).collect();
    let mut g = c.benchmark_group("micro_reduction_4096");
    g.sample_size(20);
    for (name, tier) in [("vm", ExecTier::Vm), ("tree_walk", ExecTier::TreeWalk)] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let a = ArgVal::array_f(&data, 1);
                engine
                    .run_tiered("work", &[a, ArgVal::I(4096)], ExecMode::Serial, tier)
                    .unwrap()
            })
        });
    }
    g.finish();
}

fn bench_sarb(c: &mut Criterion) {
    let engine = sarb_engine();
    let mut g = c.benchmark_group("sarb_longwave_entropy");
    g.sample_size(10);
    for (name, tier) in [("vm", ExecTier::Vm), ("tree_walk", ExecTier::TreeWalk)] {
        g.bench_function(name, |b| {
            b.iter(|| {
                engine
                    .run_tiered("run_columns", &[ArgVal::I(2)], ExecMode::Serial, tier)
                    .unwrap()
            })
        });
    }
    g.finish();
}

fn bench_fun3d(c: &mut Criterion) {
    let engine = fun3d_engine(200);
    let mut g = c.benchmark_group("fun3d_edge_loop");
    g.sample_size(10);
    for (name, tier) in [("vm", ExecTier::Vm), ("tree_walk", ExecTier::TreeWalk)] {
        g.bench_function(name, |b| {
            b.iter(|| engine.run_tiered("edgejp", &[], ExecMode::Serial, tier).unwrap())
        });
    }
    g.finish();
}

/// Scalar VM vs. vector tier on the PR 6 kernels: identical engine and
/// bytecode, with the `VecLoop` path toggled per entry.
fn bench_vector_tier(c: &mut Criterion) {
    let sarb = sarb_engine();
    let f3d = {
        let cfg = Fun3dConfig { fuse: true, ..Default::default() };
        let engine = fun3d::variants::build_engine(Fun3dVariant::Glaf(cfg));
        engine.run("build_mesh", &[ArgVal::I(200)], ExecMode::Serial).expect("mesh builds");
        engine
    };
    let micro = Engine::compile(&[SERIAL_REDUCTION]).unwrap();
    // Pin the JIT off: this group isolates the scalar/vector VM rung,
    // and the native tier would otherwise claim every promoted region
    // regardless of the vector toggle (it sits above both in the
    // ladder). The native tier has its own driver (`jit_smoke`).
    for e in [&sarb, &f3d, &micro] {
        e.set_native_enabled(false);
    }
    let a: Vec<f64> = (0..4096).map(|i| i as f64 * 0.001).collect();
    let b_data: Vec<f64> = (0..4096).map(|i| (i % 31) as f64 * 0.1 - 1.5).collect();

    let mut g = c.benchmark_group("vector_tier");
    g.sample_size(10);
    for (name, on) in [("scalar", false), ("vector", true)] {
        sarb.set_vector_enabled(on);
        g.bench_function(format!("sarb_longwave/{name}"), |b| {
            b.iter(|| sarb.run("run_columns", &[ArgVal::I(2)], ExecMode::Serial).unwrap())
        });
        f3d.set_vector_enabled(on);
        g.bench_function(format!("fun3d_edge_gather/{name}"), |b| {
            b.iter(|| f3d.run("edgejp", &[], ExecMode::Serial).unwrap())
        });
        micro.set_vector_enabled(on);
        g.bench_function(format!("micro_reduction/{name}"), |b| {
            b.iter(|| {
                micro
                    .run(
                        "dotp",
                        &[ArgVal::array_f(&a, 1), ArgVal::array_f(&b_data, 1), ArgVal::I(4096)],
                        ExecMode::Serial,
                    )
                    .unwrap()
            })
        });
    }
    g.finish();
    assert!(sarb.vector_entry_count() > 0, "SARB bench never entered the vector path");
    assert!(f3d.vector_entry_count() > 0, "FUN3D bench never entered the vector path");
    assert!(micro.vector_entry_count() > 0, "micro bench never entered the vector path");
}

/// Times `iters` runs of `f` after one warm-up call.
fn time_it(iters: u32, mut f: impl FnMut()) -> f64 {
    f();
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
    }
    t0.elapsed().as_secs_f64() / iters as f64
}

fn speedup_summary(_c: &mut Criterion) {
    let sarb = sarb_engine();
    // Keep the VM rungs honest: with the native tier at its default
    // (on), every promoted region would run as machine code and the
    // scalar/vector ratios below would all measure tier 3. It gets its
    // own section at the end via `ExecTier::Native`, which forces
    // native on for that run regardless of this toggle.
    sarb.set_native_enabled(false);
    let run_sarb = |tier| {
        time_it(10, || {
            sarb.run_tiered("run_columns", &[ArgVal::I(2)], ExecMode::Serial, tier)
                .map(|_| ())
                .unwrap()
        })
    };
    let sarb_vm = run_sarb(ExecTier::Vm);
    let sarb_tw = run_sarb(ExecTier::TreeWalk);

    let f3d = fun3d_engine(200);
    f3d.set_native_enabled(false);
    let run_f3d = |tier| {
        time_it(10, || {
            f3d.run_tiered("edgejp", &[], ExecMode::Serial, tier).map(|_| ()).unwrap()
        })
    };
    let f3d_vm = run_f3d(ExecTier::Vm);
    let f3d_tw = run_f3d(ExecTier::TreeWalk);

    println!("--- execution-tier speedup (tree-walk time / VM time, Serial) ---");
    println!(
        "sarb longwave_entropy_model (run_columns ncol=2): {:.2}x  (vm {:.1} ms, tree {:.1} ms)",
        sarb_tw / sarb_vm,
        sarb_vm * 1e3,
        sarb_tw * 1e3
    );
    println!(
        "fun3d edge loop (edgejp, 200 cells):              {:.2}x  (vm {:.1} ms, tree {:.1} ms)",
        f3d_tw / f3d_vm,
        f3d_vm * 1e3,
        f3d_tw * 1e3
    );

    // Vector tier on top of the scalar VM.
    let run_sarb_vec = |on: bool| {
        sarb.set_vector_enabled(on);
        time_it(10, || {
            sarb.run("run_columns", &[ArgVal::I(2)], ExecMode::Serial).map(|_| ()).unwrap()
        })
    };
    let sarb_scalar = run_sarb_vec(false);
    let sarb_vec = run_sarb_vec(true);
    let f3d_fused = {
        let cfg = Fun3dConfig { fuse: true, ..Default::default() };
        let engine = fun3d::variants::build_engine(Fun3dVariant::Glaf(cfg));
        engine.set_native_enabled(false);
        engine.run("build_mesh", &[ArgVal::I(200)], ExecMode::Serial).expect("mesh builds");
        engine
    };
    let run_f3d_vec = |on: bool| {
        f3d_fused.set_vector_enabled(on);
        time_it(10, || f3d_fused.run("edgejp", &[], ExecMode::Serial).map(|_| ()).unwrap())
    };
    let f3d_scalar = run_f3d_vec(false);
    let f3d_vec = run_f3d_vec(true);
    println!("--- vector-tier speedup (scalar VM time / vector VM time, Serial) ---");
    println!(
        "sarb longwave (run_columns ncol=2):               {:.2}x  (vector {:.1} ms, scalar {:.1} ms)",
        sarb_scalar / sarb_vec,
        sarb_vec * 1e3,
        sarb_scalar * 1e3
    );
    println!(
        "fun3d fused edge gather (edgejp, 200 cells):      {:.2}x  (vector {:.1} ms, scalar {:.1} ms)",
        f3d_scalar / f3d_vec,
        f3d_vec * 1e3,
        f3d_scalar * 1e3
    );

    // Native tier (tier 3) on top of the scalar VM. `ExecTier::Native`
    // forces eager promotion for the run even though the engines above
    // pinned the tier off; on targets without the JIT backend this
    // falls through to the VM ladder cleanly.
    let sarb_native = time_it(10, || {
        sarb.run_tiered("run_columns", &[ArgVal::I(2)], ExecMode::Serial, ExecTier::Native)
            .map(|_| ())
            .unwrap()
    });
    let f3d_native = time_it(10, || {
        f3d_fused
            .run_tiered("edgejp", &[], ExecMode::Serial, ExecTier::Native)
            .map(|_| ())
            .unwrap()
    });
    println!(
        "--- native-tier speedup (scalar VM time / native time, Serial, jit {}) ---",
        if fortrans::jit::available() { "on" } else { "unavailable: VM fall-through" }
    );
    println!(
        "sarb longwave (run_columns ncol=2):               {:.2}x  (native {:.1} ms, scalar {:.1} ms)",
        sarb_scalar / sarb_native,
        sarb_native * 1e3,
        sarb_scalar * 1e3
    );
    println!(
        "fun3d fused edge gather (edgejp, 200 cells):      {:.2}x  (native {:.1} ms, scalar {:.1} ms)",
        f3d_scalar / f3d_native,
        f3d_native * 1e3,
        f3d_scalar * 1e3
    );
}

criterion_group!(benches, bench_micro, bench_sarb, bench_fun3d, bench_vector_tier, speedup_summary);
criterion_main!(benches);
