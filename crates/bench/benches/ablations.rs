//! Ablation studies over the machine model and the directive policies —
//! the design-choice experiments DESIGN.md §4 calls out:
//!
//! * **fork-cost sweep** — how the Fig. 5 ladder's crossover moves as the
//!   OpenMP fork/join cost varies (the paper's entire v0→v3 story is a
//!   fork-cost-vs-loop-size tradeoff);
//! * **SIMD-width sweep** — how much of the serial baseline's advantage
//!   comes from the compiler-vectorization model;
//! * **cost-model policy** — the §4.1.2 future-work advisor vs. the
//!   manual ladder (decision quality measured as simulated cycles).

use criterion::{criterion_group, criterion_main, Criterion};
use fortrans::{ArgVal, ExecMode};
use sarb::variants::{build_engine, SarbVariant};
use simcpu::{time_trace, MachineModel};

fn trace_for(variant: SarbVariant, threads: usize) -> fortrans::CostTrace {
    let engine = build_engine(variant);
    engine
        .run("run_columns", &[ArgVal::I(2)], ExecMode::Simulated { threads })
        .unwrap()
        .trace
}

fn bench_fork_cost_sweep(c: &mut Criterion) {
    let v0 = trace_for(SarbVariant::GlafParallel(0), 4);
    let mut g = c.benchmark_group("ablation_fork_cost");
    g.sample_size(30);
    for fork in [500.0f64, 1_100.0, 5_000.0, 20_000.0] {
        let mut m = MachineModel::i5_2400_like();
        m.fork_join_base = fork;
        g.bench_function(format!("v0_time_trace_fork{fork}"), |b| {
            b.iter(|| time_trace(&v0, &m))
        });
    }
    g.finish();

    // Report the ablation data itself once (criterion measures the model's
    // evaluation cost; the interesting numbers go to stdout).
    let serial = trace_for(SarbVariant::OriginalSerial, 4);
    println!("\nfork-cost ablation (v0 speed-up vs original serial):");
    for fork in [250.0f64, 500.0, 1_100.0, 2_500.0, 5_000.0, 20_000.0] {
        let mut m = MachineModel::i5_2400_like();
        m.fork_join_base = fork;
        let s = time_trace(&serial, &m).total_cycles / time_trace(&v0, &m).total_cycles;
        println!("  fork_join_base {fork:>8.0} cycles -> v0 speed-up {s:.3}");
    }
}

fn bench_simd_sweep(c: &mut Criterion) {
    let serial = trace_for(SarbVariant::OriginalSerial, 4);
    let v3 = trace_for(SarbVariant::GlafParallel(3), 4);
    let mut g = c.benchmark_group("ablation_simd_width");
    g.sample_size(30);
    g.bench_function("time_trace_baseline", |b| {
        let m = MachineModel::i5_2400_like();
        b.iter(|| time_trace(&serial, &m))
    });
    g.finish();

    println!("\nSIMD-width ablation (v3 speed-up vs original serial):");
    for width in [1.0f64, 2.0, 4.0, 8.0] {
        let mut m = MachineModel::i5_2400_like();
        m.simd_width = width;
        let s = time_trace(&serial, &m).total_cycles / time_trace(&v3, &m).total_cycles;
        println!("  simd_width {width:>3.0} -> v3 speed-up {s:.3}");
    }
}

fn bench_costmodel_vs_ladder(c: &mut Criterion) {
    let m = MachineModel::i5_2400_like();
    let serial = trace_for(SarbVariant::OriginalSerial, 4);
    let base = time_trace(&serial, &m).total_cycles;
    let mut g = c.benchmark_group("ablation_costmodel");
    g.sample_size(10);
    g.bench_function("costmodel_full_run", |b| {
        b.iter(|| trace_for(SarbVariant::GlafCostModel, 4))
    });
    g.finish();

    println!("\ncost-model policy vs manual ladder (speed-up vs original serial):");
    for v in [
        SarbVariant::GlafParallel(0),
        SarbVariant::GlafParallel(1),
        SarbVariant::GlafParallel(2),
        SarbVariant::GlafParallel(3),
        SarbVariant::GlafCostModel,
    ] {
        let t = trace_for(v, 4);
        println!("  {:26} {:.3}", v.name(), base / time_trace(&t, &m).total_cycles);
    }
}

criterion_group!(benches, bench_fork_cost_sweep, bench_simd_sweep, bench_costmodel_vs_ladder);
criterion_main!(benches);
