//! The Figure 5 / Figure 6 measurement kernels under criterion: each
//! Table 2 variant's simulated run (wall-clock here measures our stack;
//! the *simulated* speed-ups are printed by `repro_fig5`/`repro_fig6`).

use criterion::{criterion_group, criterion_main, Criterion};
use sarb::variants::{run_simulated, SarbVariant};
use simcpu::MachineModel;

fn bench_fig5_variants(c: &mut Criterion) {
    let m = MachineModel::i5_2400_like();
    let mut g = c.benchmark_group("fig5_variants");
    g.sample_size(10);
    for v in [
        SarbVariant::OriginalSerial,
        SarbVariant::GlafSerial,
        SarbVariant::GlafParallel(0),
        SarbVariant::GlafParallel(3),
        SarbVariant::GlafCostModel,
    ] {
        g.bench_function(v.name(), |b| b.iter(|| run_simulated(v, 2, 4, &m)));
    }
    g.finish();
}

fn bench_fig6_threads(c: &mut Criterion) {
    let m = MachineModel::i5_2400_like();
    let mut g = c.benchmark_group("fig6_thread_sweep");
    g.sample_size(10);
    for t in [1usize, 2, 4, 8] {
        g.bench_function(format!("v3_{t}T"), |b| {
            b.iter(|| run_simulated(SarbVariant::GlafParallel(3), 2, t, &m))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fig5_variants, bench_fig6_threads);
criterion_main!(benches);
