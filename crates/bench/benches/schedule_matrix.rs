//! Schedule matrix: static vs dynamic vs guided, measured wall time on
//! real threads.
//!
//! Three kernels:
//!
//! * **SARB v3** — the full parallel longwave/shortwave pipeline. Uniform
//!   column work, so static should win or tie (dispatch overhead only).
//! * **FUN3D edgejp** — the edge/cell sweeps. The cost model emits
//!   `SCHEDULE(DYNAMIC)` for the indirect-subscript stages; the engine
//!   legalizes the stages that stage through SAVE'd temps back to static
//!   (see DESIGN.md §6), so this measures the legal mixed schedule.
//! * **skewed triangular** — iteration `i` costs `i` flops: the injected
//!   imbalance case, where dynamic dispatch must recover the idle time a
//!   static block partition leaves on the last thread.
//!
//! Criterion measures the full run; the per-schedule comparison table
//! prints once at the end of each group.

use criterion::{criterion_group, criterion_main, Criterion};
use fortrans::{ArgVal, Engine, ExecMode, Schedule};

const THREADS: usize = 4;

const SCHEDULES: [(&str, Option<Schedule>); 3] = [
    ("static", None),
    ("dynamic1", Some(Schedule::Dynamic(1))),
    ("guided2", Some(Schedule::Guided(2))),
];

/// Triangular workload (same shape as the reschedule feedback test).
const SKEWED: &str = r#"
MODULE w
  REAL(8), DIMENSION(1:128) :: out
CONTAINS
  SUBROUTINE skewed(n)
    INTEGER :: n
    INTEGER :: i, k
    REAL(8) :: acc
    !$OMP PARALLEL DO DEFAULT(SHARED)
    DO i = 1, n
      acc = 0.0D0
      DO k = 1, i * 400
        acc = acc + DBLE(k) * 1.0D-9
      END DO
      out(i) = acc
    END DO
    !$OMP END PARALLEL DO
  END SUBROUTINE skewed
END MODULE w
"#;

fn bench_sarb(c: &mut Criterion) {
    let mut g = c.benchmark_group("schedule_matrix_sarb");
    g.sample_size(10);
    for (name, sched) in SCHEDULES {
        let engine = sarb::variants::build_engine(sarb::variants::SarbVariant::GlafParallel(3));
        engine.set_schedule_override_all(sched);
        g.bench_function(format!("run_columns_{name}"), |b| {
            b.iter(|| {
                engine
                    .run("run_columns", &[ArgVal::I(4)], ExecMode::Parallel { threads: THREADS })
                    .unwrap()
            })
        });
    }
    g.finish();
}

fn bench_fun3d(c: &mut Criterion) {
    let mut g = c.benchmark_group("schedule_matrix_fun3d");
    g.sample_size(10);
    for (name, sched) in SCHEDULES {
        let cfg = fun3d::variants::Fun3dConfig::best();
        let engine = fun3d::variants::build_engine(fun3d::variants::Fun3dVariant::Glaf(cfg));
        engine.set_schedule_override_all(sched);
        engine.run("build_mesh", &[ArgVal::I(120)], ExecMode::Serial).unwrap();
        g.bench_function(format!("edgejp_{name}"), |b| {
            b.iter(|| {
                engine.run("edgejp", &[], ExecMode::Parallel { threads: THREADS }).unwrap()
            })
        });
    }
    g.finish();
}

fn bench_skewed(c: &mut Criterion) {
    let mut g = c.benchmark_group("schedule_matrix_skewed");
    g.sample_size(10);
    for (name, sched) in SCHEDULES {
        let engine = Engine::compile(&[SKEWED]).unwrap();
        engine.set_schedule_override_all(sched);
        g.bench_function(format!("triangular_{name}"), |b| {
            b.iter(|| {
                engine
                    .run("skewed", &[ArgVal::I(128)], ExecMode::Parallel { threads: THREADS })
                    .unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_sarb, bench_fun3d, bench_skewed);
criterion_main!(benches);
