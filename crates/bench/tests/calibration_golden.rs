//! Golden tests for the measurement-calibrated cost model.
//!
//! PR 6 committed `BENCH_pr6.json` with measured scalar-vs-vector
//! speedups and per-kernel vector-entry counts. This suite locks the
//! feedback loop that replaces the flat `simd_speedup = 4.0` prior with
//! the entry-weighted geometric mean of those measurements, and pins the
//! SARB/FUN3D directive verdicts the recalibrated advisor produces — so
//! any change to the calibration math, the committed measurements, or
//! the cost model shows up as an exact diff here.

use glaf_autopar::{analyze_program_with_log_using, CostAdvisor, CostParams, DecisionLog};
use glaf_bench::calibrate::{
    calibrated_native_speedup, calibrated_simd_speedup, native_samples, vector_samples,
};

/// The measured trajectory this repo ships: three kernels from the PR 6
/// vector smoke run.
const BENCH_PR6: &str = include_str!("../../../BENCH_pr6.json");

/// The PR 10 trajectory: the same three kernels measured against the
/// native (tier-3 JIT) execution path.
const BENCH_PR10: &str = include_str!("../../../BENCH_pr10.json");

fn calibrated_params() -> CostParams {
    let pairs: Vec<(f64, u64)> = vector_samples(BENCH_PR6)
        .expect("BENCH_pr6.json parses")
        .into_iter()
        .map(|s| (s.speedup, s.entries))
        .collect();
    CostParams::calibrated_simd(&pairs)
}

/// The fully-measured model: SIMD speedup from the PR 6 vector smoke,
/// native speedup from the PR 10 JIT smoke.
fn native_calibrated_params() -> CostParams {
    let mut p = calibrated_params();
    if let Some(n) = calibrated_native_speedup(BENCH_PR10).expect("BENCH_pr10.json parses") {
        p.native_speedup = n;
    }
    p
}

/// Compact per-loop verdict rendering: one line per analyzed loop.
fn verdicts(log: &DecisionLog) -> String {
    let mut out = String::new();
    for l in &log.loops {
        out.push_str(&format!(
            "{} step {}: advisor={}\n",
            l.function,
            l.step_index,
            l.advisor.name()
        ));
    }
    out
}

#[test]
fn calibrated_value_is_pinned() {
    let v = calibrated_simd_speedup(BENCH_PR6)
        .expect("BENCH_pr6.json parses")
        .expect("BENCH_pr6.json carries vector samples");
    // Entry-weighted geometric mean of (2.025, w=4464), (1.618, w=40889),
    // (15.591, w=512): dominated by the large fun3d gather kernel, pulled
    // up slightly by the reduction microbenchmark.
    assert_eq!((v * 1000.0).round() / 1000.0, 1.696, "calibrated simd_speedup = {v}");
    // Sanity: strictly below the flat prior — measured vector gains on
    // real kernels are smaller than the 4.0 default assumed.
    assert!(v < CostParams::default().simd_speedup);
}

#[test]
fn calibrated_params_only_change_simd_speedup() {
    let cal = calibrated_params();
    let def = CostParams::default();
    assert_ne!(cal.simd_speedup, def.simd_speedup);
    let mut def_patched = def;
    def_patched.simd_speedup = cal.simd_speedup;
    assert_eq!(format!("{cal:?}"), format!("{def_patched:?}"));
}

#[test]
fn sarb_decisions_under_calibrated_model() {
    let program = sarb::glaf_model::build_sarb_program();
    let advisor = CostAdvisor::new(calibrated_params());
    let (_, log) = analyze_program_with_log_using(&advisor, &program);
    let expected = "\
g_lw_emis step 0: advisor=threads
g_lw_trn step 0: advisor=simd
g_lw_dn step 0: advisor=simd
g_lw_up step 0: advisor=simd
lw_spectral_integration step 0: advisor=simd
lw_spectral_integration step 1: advisor=simd
lw_spectral_integration step 2: advisor=serial
lw_spectral_integration step 4: advisor=simd
lw_spectral_integration step 5: advisor=simd
g_ent_band step 1: advisor=simd
longwave_entropy_model step 0: advisor=simd
longwave_entropy_model step 1: advisor=threads
longwave_entropy_model step 2: advisor=simd
longwave_entropy_model step 3: advisor=threads
longwave_entropy_model step 5: advisor=simd
g_sw_band step 1: advisor=simd
g_sw_band step 2: advisor=simd
sw_spectral_integration step 0: advisor=simd
sw_spectral_integration step 1: advisor=simd
sw_spectral_integration step 2: advisor=serial
sw_spectral_integration step 3: advisor=simd
shortwave_entropy_model step 0: advisor=simd
entropy_interface step 1: advisor=simd
entropy_interface step 4: advisor=simd
adjust2 step 1: advisor=simd
adjust2 step 2: advisor=simd
adjust2 step 3: advisor=simd
adjust2 step 4: advisor=simd
";
    assert_eq!(verdicts(&log), expected);
}

#[test]
fn fun3d_decisions_under_calibrated_model() {
    let program = fun3d::glaf_model::build_fun3d_program();
    let advisor = CostAdvisor::new(calibrated_params());
    let (_, log) = analyze_program_with_log_using(&advisor, &program);
    let expected = "\
ioff_search step 1: advisor=serial
edge_loop step 1: advisor=simd
edge_loop step 2: advisor=simd
edge_loop step 3: advisor=simd
edge_loop step 4: advisor=simd
edge_loop step 5: advisor=simd
edge_loop step 6: advisor=simd
edge_loop step 7: advisor=simd
edge_loop step 8: advisor=simd
edge_loop step 9: advisor=simd
edge_loop step 10: advisor=simd
edge_loop step 12: advisor=simd
cell_loop step 1: advisor=simd
cell_loop step 2: advisor=simd
cell_loop step 3: advisor=simd
cell_loop step 4: advisor=simd
cell_loop step 5: advisor=simd
cell_loop step 6: advisor=serial
edgejp step 0: advisor=serial
";
    assert_eq!(verdicts(&log), expected);
}

#[test]
fn native_calibrated_value_is_pinned() {
    let samples = native_samples(BENCH_PR10).expect("BENCH_pr10.json parses");
    assert_eq!(samples.len(), 3, "three kernels carry native evidence: {samples:?}");
    let v = calibrated_native_speedup(BENCH_PR10)
        .expect("BENCH_pr10.json parses")
        .expect("BENCH_pr10.json carries native samples");
    // Entry-weighted geometric mean of (3.411, w=10224), (1.444,
    // w=40888), (12.649, w=512): as with the vector calibration, the
    // heavyweight fun3d gather kernel dominates, and the deep SARB
    // band loops plus the reduction microbenchmark pull it up.
    assert_eq!((v * 1000.0).round() / 1000.0, 1.749, "calibrated native_speedup = {v}");
    // Sanity: the native tier measures faster than the vector tier it
    // replaces on the same kernels.
    let simd = calibrated_simd_speedup(BENCH_PR6).unwrap().unwrap();
    assert!(v > simd, "native {v} should beat vector {simd}");
}

/// The flips: which verdicts the measured calibration actually changes
/// relative to the flat `simd_speedup = 4.0` prior. A lower measured
/// speedup makes "leave it to compiler SIMD" less attractive, so flips
/// can only move loops away from the SIMD verdict.
#[test]
fn calibration_flips_vs_default_are_pinned() {
    let advisor = CostAdvisor::new(calibrated_params());
    let mut flips = String::new();
    for program in
        [sarb::glaf_model::build_sarb_program(), fun3d::glaf_model::build_fun3d_program()]
    {
        let (_, def_log) = glaf_autopar::analyze_program_with_log(&program);
        let (_, cal_log) = analyze_program_with_log_using(&advisor, &program);
        assert_eq!(def_log.loops.len(), cal_log.loops.len());
        for (d, c) in def_log.loops.iter().zip(&cal_log.loops) {
            if d.advisor != c.advisor {
                flips.push_str(&format!(
                    "{} step {}: {} -> {}\n",
                    d.function,
                    d.step_index,
                    d.advisor.name(),
                    c.advisor.name()
                ));
            }
        }
    }
    // Exactly one loop flips: the SARB emissivity nest is vectorizable
    // but heavy enough that, once the measured 1.696x (not 4.0x) vector
    // gain is priced in, threading beats leaving it to compiler SIMD.
    assert_eq!(flips, "g_lw_emis step 0: simd -> threads\n");
}

/// Per-program calibration: the advisor for one code uses that code's
/// own kernel measurement, not the fleet-wide entry-weighted mean.
fn per_kernel_native_params(kernel_substr: &str) -> CostParams {
    let mut p = calibrated_params();
    let s = native_samples(BENCH_PR10)
        .expect("BENCH_pr10.json parses")
        .into_iter()
        .find(|s| s.kernel.contains(kernel_substr))
        .unwrap_or_else(|| panic!("no native sample for {kernel_substr}"));
    if let Some(n) = glaf_autopar::calibrate_native_speedup(&[(s.speedup, s.entries)]) {
        p.native_speedup = n;
    }
    p
}

fn flips_between(a: &CostAdvisor, b: &CostAdvisor, program: &glaf_ir::Program) -> String {
    let (_, a_log) = analyze_program_with_log_using(a, program);
    let (_, b_log) = analyze_program_with_log_using(b, program);
    assert_eq!(a_log.loops.len(), b_log.loops.len());
    let mut flips = String::new();
    for (x, y) in a_log.loops.iter().zip(&b_log.loops) {
        if x.advisor != y.advisor {
            flips.push_str(&format!(
                "{} step {}: {} -> {}\n",
                x.function,
                x.step_index,
                x.advisor.name(),
                y.advisor.name()
            ));
        }
    }
    flips
}

/// The native tier's flips: which verdicts the PR 10 measurements change
/// relative to the PR 6 vector-only calibration. A faster serial tier
/// makes fork/join overhead harder to justify, so flips can only move
/// loops away from the threads verdict.
#[test]
fn native_tier_flips_vs_vector_calibration_are_pinned() {
    let vec_advisor = CostAdvisor::new(calibrated_params());

    // The fleet-wide entry-weighted mean (1.749x) is dominated by the
    // fun3d gather kernel, whose native gain (1.444x) is *below* the
    // vector tier's — globally the native tier barely moves the model,
    // and no verdict flips. Pinned so a future backend improvement
    // that starts flipping verdicts shows up here as an exact diff.
    let global = CostAdvisor::new(native_calibrated_params());
    for program in
        [sarb::glaf_model::build_sarb_program(), fun3d::glaf_model::build_fun3d_program()]
    {
        assert_eq!(flips_between(&vec_advisor, &global, &program), "");
    }

    // Calibrated from SARB's own measured 3.411x, the serial native
    // tier overtakes threading for the emissivity nest — undoing the
    // PR 6 flip above.
    let sarb_native = CostAdvisor::new(per_kernel_native_params("sarb"));
    assert_eq!(
        flips_between(&vec_advisor, &sarb_native, &sarb::glaf_model::build_sarb_program()),
        "g_lw_emis step 0: threads -> simd\n"
    );

    // FUN3D's own native measurement (1.444x) loses to the vector
    // tier, so `max(simd, native)` leaves every verdict alone.
    let fun3d_native = CostAdvisor::new(per_kernel_native_params("fun3d"));
    assert_eq!(
        flips_between(&vec_advisor, &fun3d_native, &fun3d::glaf_model::build_fun3d_program()),
        ""
    );
}
