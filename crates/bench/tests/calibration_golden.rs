//! Golden tests for the measurement-calibrated cost model.
//!
//! PR 6 committed `BENCH_pr6.json` with measured scalar-vs-vector
//! speedups and per-kernel vector-entry counts. This suite locks the
//! feedback loop that replaces the flat `simd_speedup = 4.0` prior with
//! the entry-weighted geometric mean of those measurements, and pins the
//! SARB/FUN3D directive verdicts the recalibrated advisor produces — so
//! any change to the calibration math, the committed measurements, or
//! the cost model shows up as an exact diff here.

use glaf_autopar::{analyze_program_with_log_using, CostAdvisor, CostParams, DecisionLog};
use glaf_bench::calibrate::{calibrated_simd_speedup, vector_samples};

/// The measured trajectory this repo ships: three kernels from the PR 6
/// vector smoke run.
const BENCH_PR6: &str = include_str!("../../../BENCH_pr6.json");

fn calibrated_params() -> CostParams {
    let pairs: Vec<(f64, u64)> = vector_samples(BENCH_PR6)
        .expect("BENCH_pr6.json parses")
        .into_iter()
        .map(|s| (s.speedup, s.entries))
        .collect();
    CostParams::calibrated_simd(&pairs)
}

/// Compact per-loop verdict rendering: one line per analyzed loop.
fn verdicts(log: &DecisionLog) -> String {
    let mut out = String::new();
    for l in &log.loops {
        out.push_str(&format!(
            "{} step {}: advisor={}\n",
            l.function,
            l.step_index,
            l.advisor.name()
        ));
    }
    out
}

#[test]
fn calibrated_value_is_pinned() {
    let v = calibrated_simd_speedup(BENCH_PR6)
        .expect("BENCH_pr6.json parses")
        .expect("BENCH_pr6.json carries vector samples");
    // Entry-weighted geometric mean of (2.025, w=4464), (1.618, w=40889),
    // (15.591, w=512): dominated by the large fun3d gather kernel, pulled
    // up slightly by the reduction microbenchmark.
    assert_eq!((v * 1000.0).round() / 1000.0, 1.696, "calibrated simd_speedup = {v}");
    // Sanity: strictly below the flat prior — measured vector gains on
    // real kernels are smaller than the 4.0 default assumed.
    assert!(v < CostParams::default().simd_speedup);
}

#[test]
fn calibrated_params_only_change_simd_speedup() {
    let cal = calibrated_params();
    let def = CostParams::default();
    assert_ne!(cal.simd_speedup, def.simd_speedup);
    let mut def_patched = def;
    def_patched.simd_speedup = cal.simd_speedup;
    assert_eq!(format!("{cal:?}"), format!("{def_patched:?}"));
}

#[test]
fn sarb_decisions_under_calibrated_model() {
    let program = sarb::glaf_model::build_sarb_program();
    let advisor = CostAdvisor::new(calibrated_params());
    let (_, log) = analyze_program_with_log_using(&advisor, &program);
    let expected = "\
g_lw_emis step 0: advisor=threads
g_lw_trn step 0: advisor=simd
g_lw_dn step 0: advisor=simd
g_lw_up step 0: advisor=simd
lw_spectral_integration step 0: advisor=simd
lw_spectral_integration step 1: advisor=simd
lw_spectral_integration step 2: advisor=serial
lw_spectral_integration step 4: advisor=simd
lw_spectral_integration step 5: advisor=simd
g_ent_band step 1: advisor=simd
longwave_entropy_model step 0: advisor=simd
longwave_entropy_model step 1: advisor=threads
longwave_entropy_model step 2: advisor=simd
longwave_entropy_model step 3: advisor=threads
longwave_entropy_model step 5: advisor=simd
g_sw_band step 1: advisor=simd
g_sw_band step 2: advisor=simd
sw_spectral_integration step 0: advisor=simd
sw_spectral_integration step 1: advisor=simd
sw_spectral_integration step 2: advisor=serial
sw_spectral_integration step 3: advisor=simd
shortwave_entropy_model step 0: advisor=simd
entropy_interface step 1: advisor=simd
entropy_interface step 4: advisor=simd
adjust2 step 1: advisor=simd
adjust2 step 2: advisor=simd
adjust2 step 3: advisor=simd
adjust2 step 4: advisor=simd
";
    assert_eq!(verdicts(&log), expected);
}

#[test]
fn fun3d_decisions_under_calibrated_model() {
    let program = fun3d::glaf_model::build_fun3d_program();
    let advisor = CostAdvisor::new(calibrated_params());
    let (_, log) = analyze_program_with_log_using(&advisor, &program);
    let expected = "\
ioff_search step 1: advisor=serial
edge_loop step 1: advisor=simd
edge_loop step 2: advisor=simd
edge_loop step 3: advisor=simd
edge_loop step 4: advisor=simd
edge_loop step 5: advisor=simd
edge_loop step 6: advisor=simd
edge_loop step 7: advisor=simd
edge_loop step 8: advisor=simd
edge_loop step 9: advisor=simd
edge_loop step 10: advisor=simd
edge_loop step 12: advisor=simd
cell_loop step 1: advisor=simd
cell_loop step 2: advisor=simd
cell_loop step 3: advisor=simd
cell_loop step 4: advisor=simd
cell_loop step 5: advisor=simd
cell_loop step 6: advisor=serial
edgejp step 0: advisor=serial
";
    assert_eq!(verdicts(&log), expected);
}

/// The flips: which verdicts the measured calibration actually changes
/// relative to the flat `simd_speedup = 4.0` prior. A lower measured
/// speedup makes "leave it to compiler SIMD" less attractive, so flips
/// can only move loops away from the SIMD verdict.
#[test]
fn calibration_flips_vs_default_are_pinned() {
    let advisor = CostAdvisor::new(calibrated_params());
    let mut flips = String::new();
    for program in
        [sarb::glaf_model::build_sarb_program(), fun3d::glaf_model::build_fun3d_program()]
    {
        let (_, def_log) = glaf_autopar::analyze_program_with_log(&program);
        let (_, cal_log) = analyze_program_with_log_using(&advisor, &program);
        assert_eq!(def_log.loops.len(), cal_log.loops.len());
        for (d, c) in def_log.loops.iter().zip(&cal_log.loops) {
            if d.advisor != c.advisor {
                flips.push_str(&format!(
                    "{} step {}: {} -> {}\n",
                    d.function,
                    d.step_index,
                    d.advisor.name(),
                    c.advisor.name()
                ));
            }
        }
    }
    // Exactly one loop flips: the SARB emissivity nest is vectorizable
    // but heavy enough that, once the measured 1.696x (not 4.0x) vector
    // gain is priced in, threading beats leaving it to compiler SIMD.
    assert_eq!(flips, "g_lw_emis step 0: simd -> threads\n");
}
