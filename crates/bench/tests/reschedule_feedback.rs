//! The apply side of the feedback loop: a measured profile's per-region
//! imbalance produces schedule overrides that demonstrably change the
//! schedule an imbalanced region runs under on the next run.

use fortrans::{ArgVal, Engine, ExecMode, ExecTier};
use glaf_bench::observe::reschedule;

/// Triangular workload: iteration `i` performs `i * 300` flops, so a
/// static block partition hands the last thread ~1.7x the mean work
/// (64 iterations over 4 threads: max/mean = sum(49..64)/sum(1..64)*4).
const SKEWED: &str = r#"
MODULE w
  REAL(8), DIMENSION(1:64) :: out
CONTAINS
  SUBROUTINE skewed(n, reps)
    INTEGER :: n, reps
    INTEGER :: r, i, k
    REAL(8) :: acc
    DO r = 1, reps
      !$OMP PARALLEL DO DEFAULT(SHARED)
      DO i = 1, n
        acc = 0.0D0
        DO k = 1, i * 300
          acc = acc + DBLE(k) * 1.0D-9
        END DO
        out(i) = acc
      END DO
      !$OMP END PARALLEL DO
    END DO
  END SUBROUTINE skewed
END MODULE w
"#;

#[test]
fn measured_imbalance_flips_static_region_to_dynamic() {
    let engine = Engine::compile(&[SKEWED]).unwrap();
    let args = [ArgVal::I(64), ArgVal::I(3)];
    let mode = ExecMode::Parallel { threads: 4 };

    let (_, before) = engine.run_profiled("skewed", &args, mode, ExecTier::Vm).unwrap();
    let static_regions: Vec<_> =
        before.regions.iter().filter(|r| r.sched.starts_with("static")).collect();
    assert!(!static_regions.is_empty(), "baseline run recorded no static regions");
    let worst_before =
        static_regions.iter().map(|r| r.imbalance()).fold(0.0f64, f64::max);

    // The triangular skew is structural: the last static chunk carries
    // ~1.7x the mean work, so the measured imbalance must clear the
    // threshold and the feedback pass must propose an override.
    let overrides = reschedule(&before, 1.25);
    assert!(
        !overrides.is_empty(),
        "no override proposed despite worst imbalance {worst_before:.2}"
    );
    let line = overrides[0].0;
    assert_eq!(overrides[0].1, fortrans::Schedule::Dynamic(1));

    // Apply and re-run: the region at that line now runs dynamically.
    engine.set_schedule_overrides(overrides);
    let (_, after) = engine.run_profiled("skewed", &args, mode, ExecTier::Vm).unwrap();
    let rescheduled: Vec<_> =
        after.regions.iter().filter(|r| r.line == u64::from(line)).collect();
    assert!(!rescheduled.is_empty(), "rescheduled line {line} recorded no regions");
    for r in &rescheduled {
        assert_eq!(r.sched, "dynamic,1", "line {line} still reports {}", r.sched);
    }
    let worst_after = rescheduled.iter().map(|r| r.imbalance()).fold(0.0f64, f64::max);
    eprintln!(
        "imbalance before (static) {worst_before:.2} -> after (dynamic,1) {worst_after:.2}"
    );

    // A second feedback round has nothing left to fix on that line:
    // the region no longer runs a static schedule.
    assert!(
        reschedule(&after, 1.25).iter().all(|&(l, _)| l != line),
        "feedback proposed the same line twice"
    );
}
