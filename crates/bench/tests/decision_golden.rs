//! Golden tests for the autopar decision log on the two case-study
//! models: the SARB longwave kernels and the FUN3D edge-loop kernels.
//!
//! The goldens lock the *explanations*, not just the plans: which
//! dependence test fired per (grid, index), the loop classification, the
//! reduction/privatization sets, and the blockers. A change in any
//! dependence-test attribution or classification shows up as an exact
//! text diff here.

use glaf_autopar::{DecisionLog, LoopDecision};

fn render_fn(log: &DecisionLog, func: &str) -> String {
    let subset = DecisionLog {
        loops: log.for_function(func).into_iter().cloned().collect(),
    };
    subset.render()
}

fn sarb_log() -> DecisionLog {
    glaf::Glaf::new(sarb::glaf_model::build_sarb_program())
        .expect("SARB program validates")
        .decision_log()
        .clone()
}

fn fun3d_log() -> DecisionLog {
    glaf::Glaf::new(fun3d::glaf_model::build_fun3d_program())
        .expect("FUN3D program validates")
        .decision_log()
        .clone()
}

#[test]
fn sarb_longwave_entropy_decisions() {
    let expected = r#"longwave_entropy_model step 0 "zero entropy profile": class=simple-double vectorizable=yes parallel=yes collapse=2 advisor=simd schedule=static
  schedule rationale: uniform affine iterations; static block partition has no dispatch overhead
  dep: `entl` on `i`: strong-siv -> loop-independent
  dep: `entl` on `is`: strong-siv -> loop-independent
longwave_entropy_model step 1 "spectral entropy integration": class=complex vectorizable=no parallel=yes collapse=2 advisor=threads schedule=static
  schedule rationale: uniform affine iterations; static block partition has no dispatch overhead
  private: acc2, fql, tl
  dep: `entl` on `i`: strong-siv -> loop-independent
  dep: `entl` on `is`: strong-siv -> loop-independent
longwave_entropy_model step 2 "copy to work buffer": class=simple-double vectorizable=yes parallel=yes collapse=2 advisor=simd schedule=static
  schedule rationale: uniform affine iterations; static block partition has no dispatch overhead
  dep: `lwork` on `i`: strong-siv -> loop-independent
  dep: `lwork` on `is`: strong-siv -> loop-independent
longwave_entropy_model step 3 "vertical smoothing": class=complex vectorizable=no parallel=yes collapse=2 advisor=threads schedule=dynamic
  schedule rationale: conditional control flow makes iteration cost data-dependent
  private: vsm
  dep: `entl` on `i`: strong-siv -> loop-independent
  dep: `entl` on `is`: strong-siv -> loop-independent
longwave_entropy_model step 5 "column total": class=simple-single vectorizable=yes parallel=yes collapse=1 advisor=simd schedule=static
  schedule rationale: uniform affine iterations; static block partition has no dispatch overhead
  reduction: +:tot
"#;
    assert_eq!(render_fn(&sarb_log(), "longwave_entropy_model"), expected);
}

#[test]
fn sarb_shortwave_band_decisions() {
    // The recurrence on `taucum` must be caught (trivially — same index
    // on both sides is the trivial self-dependence case) and must block
    // step 1, while step 2 stays parallel.
    let expected = r#"g_sw_band step 1 "direct beam attenuation": class=simple-single vectorizable=yes parallel=no collapse=0 advisor=simd
  dep: `swdir` on `i`: strong-siv -> loop-independent
  dep: `taucum` on `i`: trivial -> loop-carried
  blocker: grid `taucum`: LoopCarried dependence on index `i`
g_sw_band step 2 "accumulate downward shortwave": class=simple-single vectorizable=yes parallel=yes collapse=1 advisor=simd schedule=static
  schedule rationale: uniform affine iterations; static block partition has no dispatch overhead
  dep: `fds` on `i`: strong-siv -> loop-independent
"#;
    assert_eq!(render_fn(&sarb_log(), "g_sw_band"), expected);
}

#[test]
fn sarb_spectral_integration_blockers() {
    let expected = r#"lw_spectral_integration step 0 "zero downwelling flux": class=zero-init vectorizable=yes parallel=yes collapse=1 advisor=simd schedule=static
  schedule rationale: uniform affine iterations; static block partition has no dispatch overhead
  dep: `fdl` on `i`: strong-siv -> loop-independent
lw_spectral_integration step 1 "zero upwelling flux": class=zero-init vectorizable=yes parallel=yes collapse=1 advisor=simd schedule=static
  schedule rationale: uniform affine iterations; static block partition has no dispatch overhead
  dep: `ful` on `i`: strong-siv -> loop-independent
lw_spectral_integration step 2 "loop over longwave bands": class=complex vectorizable=no parallel=no collapse=0 advisor=serial
  atomic: fdl
  blocker: callee overwrites shared module-scope grid `bf`
  blocker: callee overwrites shared module-scope grid `ful`
  blocker: callee overwrites shared module-scope grid `trn`
lw_spectral_integration step 4 "normalize downwelling": class=simple-single vectorizable=yes parallel=yes collapse=1 advisor=simd schedule=static
  schedule rationale: uniform affine iterations; static block partition has no dispatch overhead
  dep: `fdl` on `i`: strong-siv -> loop-independent
lw_spectral_integration step 5 "normalize upwelling": class=simple-single vectorizable=yes parallel=yes collapse=1 advisor=simd schedule=static
  schedule rationale: uniform affine iterations; static block partition has no dispatch overhead
  dep: `ful` on `i`: strong-siv -> loop-independent
"#;
    assert_eq!(render_fn(&sarb_log(), "lw_spectral_integration"), expected);
}

#[test]
fn fun3d_edge_kernels_decisions() {
    let log = fun3d_log();

    // The cell sweep is blocked by callee side effects and falls back to
    // atomic accumulation; the neighbour search parallelizes with a MAX
    // reduction.
    let expected_edgejp = r#"edgejp step 0 "loop over cells of the simulation": class=complex vectorizable=no parallel=no collapse=0 advisor=serial
  atomic: jac
  blocker: callee overwrites shared module-scope grid `grad`
  blocker: callee overwrites shared module-scope grid `qavg`
"#;
    assert_eq!(render_fn(&log, "edgejp"), expected_edgejp);

    let expected_ioff = r#"ioff_search step 1 "search neighbour row": class=complex vectorizable=no parallel=yes collapse=1 advisor=serial schedule=dynamic
  schedule rationale: conditional control flow makes iteration cost data-dependent
  reduction: MAX:kfound
"#;
    assert_eq!(render_fn(&log, "ioff_search"), expected_ioff);

    // cell_loop: the three structurally interesting steps. The gather
    // over nodes subscripts `qn` through the connectivity table, so it
    // draws a dynamic schedule; the others are uniform and stay static.
    let expected_cell = r#"cell_loop step 2 "loop over nodes: gather primitives": class=simple-double vectorizable=yes parallel=yes collapse=1 advisor=simd schedule=dynamic
  schedule rationale: non-affine subscript on grid `qn`
  dep: `qavg` on `k`: ziv -> loop-carried
  dep: `qavg` on `m`: strong-siv -> loop-independent
cell_loop step 5 "loop over faces: Green-Gauss gradient": class=complex vectorizable=yes parallel=yes collapse=2 advisor=simd schedule=static
  schedule rationale: uniform affine iterations; static block partition has no dispatch overhead
  dep: `grad` on `d`: strong-siv -> loop-independent
  dep: `grad` on `f`: ziv -> loop-carried
  dep: `grad` on `m`: strong-siv -> loop-independent
cell_loop step 6 "loop over edges": class=complex vectorizable=no parallel=yes collapse=1 advisor=serial schedule=static
  schedule rationale: uniform affine iterations; static block partition has no dispatch overhead
  atomic: jac
"#;
    let cell = DecisionLog {
        loops: log
            .for_function("cell_loop")
            .into_iter()
            .filter(|l| matches!(l.step_index, 2 | 5 | 6))
            .cloned()
            .collect(),
    };
    assert_eq!(cell.render(), expected_cell);

    // Every edge_loop stage: one strong-SIV independent access on the
    // edge index, classification simple-single, SIMD-advised.
    let stages = log.for_function("edge_loop");
    assert_eq!(stages.len(), 11, "edge_loop pipeline stages");
    for l in &stages {
        assert_eq!(l.class.name(), "simple-single", "step {}", l.step_index);
        assert!(l.parallelizable && l.vectorizable, "step {}", l.step_index);
        assert_eq!(l.deps.len(), 1, "step {}", l.step_index);
        assert_eq!(l.deps[0].test.name(), "strong-siv", "step {}", l.step_index);
        assert_eq!(l.deps[0].result.name(), "loop-independent", "step {}", l.step_index);
        assert_eq!(l.deps[0].index, "m", "step {}", l.step_index);
    }
}

#[test]
fn schedule_selection_fun3d_dynamic_sarb_static() {
    // The schedule picks on the two case studies lock the cost model's
    // regularity analysis: FUN3D's edge kernels that subscript through
    // the indirectly-loaded endpoints (`n1`/`kslot`) draw a dynamic
    // schedule, while SARB's longwave spectral integration — uniform
    // affine column sweeps — stays on the static default.
    let flog = fun3d_log();
    let dynamic_steps: Vec<usize> = flog
        .for_function("edge_loop")
        .iter()
        .filter(|l| {
            l.schedule
                .as_ref()
                .is_some_and(|s| s.kind == glaf_autopar::SchedKind::Dynamic)
        })
        .map(|l| l.step_index)
        .collect();
    assert_eq!(dynamic_steps, vec![1, 2, 12], "edge_loop dynamic stages");
    for l in flog.for_function("edge_loop") {
        if dynamic_steps.contains(&l.step_index) {
            let why = &l.schedule.as_ref().unwrap().why;
            assert!(why.contains("indirectly-loaded"), "step {}: {why}", l.step_index);
        }
    }

    // SARB longwave: every parallelized loop in the spectral
    // integration pipeline keeps the static default.
    let slog = sarb_log();
    for func in ["lw_spectral_integration", "g_lw_emis", "g_lw_trn", "g_lw_dn", "g_lw_up"] {
        for l in slog.for_function(func) {
            if let Some(sc) = &l.schedule {
                assert_eq!(
                    sc.kind,
                    glaf_autopar::SchedKind::Static,
                    "{func} step {}",
                    l.step_index
                );
            }
        }
    }
}

#[test]
fn decision_log_covers_every_planned_loop() {
    // The log is a faithful companion to the plan: same loop count, and
    // the logged verdicts agree with the plan bits.
    for log in [sarb_log(), fun3d_log()] {
        assert!(!log.loops.is_empty());
        for l in &log.loops {
            if !l.blockers.is_empty() {
                assert!(
                    !l.parallelizable,
                    "{} step {}: blockers recorded on a parallel loop",
                    l.function, l.step_index
                );
            }
            let _: &LoopDecision = l;
        }
    }
}
