//! Legacy ingestion end to end: a multi-file, COMMON-heavy fixed-form
//! F77 program through the whole stack.
//!
//! 1. Three classic punched-card sources (main + SUBROUTINE + FUNCTION,
//!    coupled only through COMMON blocks) compile as one program via
//!    [`fortrans::ArtifactCache`] — the second request is a cache hit.
//! 2. The program runs on both execution tiers (bytecode VM and the
//!    tree-walking oracle); printed output and every COMMON bit pattern
//!    must be identical.
//! 3. The parsed program lifts into `glaf_ir` through [`glaf::ingest`]
//!    and the auto-parallelization back-end explains, loop by loop, what
//!    it would parallelize — a [`glaf_autopar::DecisionLog`] over
//!    *ingested* legacy code, not hand-built GPI programs.
//!
//! Run with: `cargo run --release --example f77_legacy`

use glaf_repro::fortrans::{self, ArtifactCache, Engine, ExecMode, ExecTier};

/// Main program: DATA-initialized control block, sweep driver, report.
const MAIN_F: &str = "\
\n      PROGRAM HEAT
      COMMON /FIELD/ U(64), V(64), RESID
      COMMON /CTRL/ NITER, RELAXW
      DATA NITER /8/, RELAXW /1.8D0/
C     Initial condition: a spike in the middle of the rod.
      DO 10 I = 1, 64
      U(I) = 0.0D0
      V(I) = 0.0D0
   10 CONTINUE
      U(32) = 100.0D0
      DO 20 K = 1, NITER
      CALL SWEEP
   20 CONTINUE
      PRINT *, 'RESID', RESID
      PRINT *, 'ENERGY', ENORM(64)
      END
";

/// Jacobi-style sweep over the COMMON field, OMP-annotated.
const SWEEP_F: &str = "\
\n      SUBROUTINE SWEEP
      COMMON /FIELD/ U(64), V(64), RESID
      COMMON /CTRL/ NITER, RELAXW
C$OMP PARALLEL DO PRIVATE(I)
      DO 10 I = 2, 63
      V(I) = U(I) + 0.25D0 * (U(I-1) - 2.0D0*U(I) + U(I+1))
   10 CONTINUE
      RESID = 0.0D0
      DO 20 I = 2, 63
      RESID = RESID + ABS(V(I) - U(I))
      U(I) = V(I)
   20 CONTINUE
      END
";

/// Energy norm of the field; IMPLICIT typing (E -> REAL) throughout.
const NORM_F: &str = "\
\n      FUNCTION ENORM(N)
      COMMON /FIELD/ U(64), V(64), RESID
      ENORM = 0.0D0
      DO 10 I = 1, N
      ENORM = ENORM + U(I) * U(I)
   10 CONTINUE
      ENORM = SQRT(ENORM)
      END
";

fn main() {
    let sources = [MAIN_F, SWEEP_F, NORM_F];

    // 1. Compile through the artifact cache; re-requesting the same
    //    multi-file set must hit, not recompile.
    let cache = ArtifactCache::new(8);
    let artifact = cache.get_or_compile(&sources).expect("legacy sources compile");
    let again = cache.get_or_compile(&sources).expect("second lookup");
    assert!(std::sync::Arc::ptr_eq(&artifact, &again));
    println!(
        "compiled {} fixed-form files as one program (cache: {} hit / {} miss)",
        sources.len(),
        cache.hits(),
        cache.misses()
    );

    // 2. Run on both tiers and compare everything observable.
    let mut outputs = Vec::new();
    for tier in [ExecTier::Vm, ExecTier::TreeWalk] {
        let engine = Engine::from_artifact(artifact.clone());
        let out = engine
            .run_tiered("heat", &[], ExecMode::Serial, tier)
            .expect("legacy program runs");
        print!("{:?} says:\n{}", tier, out.printed);
        let mut names = engine.global_names();
        names.sort();
        let mut state: Vec<(String, String)> = Vec::new();
        for n in names {
            if let Some(v) = engine.global_scalar(&n) {
                state.push((n, format!("{v:?}")));
            } else if let Some(h) = engine.global_array(&n) {
                let bits: Vec<u64> = (0..h.len()).map(|k| h.get_bits(k)).collect();
                state.push((n, format!("{bits:?}")));
            }
        }
        outputs.push((out.printed, state));
    }
    assert_eq!(outputs[0], outputs[1], "VM and oracle tiers diverged");
    println!("VM and tree-walk oracle agree bit-for-bit on every COMMON slot\n");

    // 3. Lift the parsed program into glaf_ir and let autopar explain
    //    its decisions over the ingested loops.
    let set = fortrans::ProgramSet::from_sources(&sources).expect("parses");
    let report = glaf::ingest::lift_ast(&set.ast, "heat77");
    println!(
        "lifted {} DO nest(s) into glaf_ir; {} construct(s) outside the GLAF subset",
        report.lifted_loops,
        report.skipped.len()
    );
    for note in &report.skipped {
        println!("  note: {note}");
    }
    let (_, log) = glaf_autopar::analyze_program_with_log(&report.program);
    println!("\n== autopar decision log over the ingested program ==");
    println!("{}", log.render());
}
