//! The performance-prediction back-end the paper proposes as future work
//! (§4.1.2): "a performance prediction/modeling back-end that will guide
//! the automatic code generation in a more intelligent way (e.g.,
//! selecting SIMD directives, instead of OpenMP, or neither)".
//!
//! This example runs the advisor over every loop of the SARB program and
//! shows that its decisions reproduce the hand-derived v3 configuration —
//! the paper's human experts removed directives class by class; the
//! advisor gets there in one shot.
//!
//! Run with: `cargo run --release --example cost_model_advisor`

use glaf_repro::glaf::Glaf;
use glaf_repro::glaf_autopar::{CostAdvisor, CostParams, Decision};
use glaf_repro::glaf_ir::StepBody;
use glaf_repro::sarb::glaf_model::build_sarb_program;

fn main() {
    let program = build_sarb_program();
    let g = Glaf::new(program).expect("valid");
    let advisor = CostAdvisor::new(CostParams::default());

    println!(
        "{:26} {:>4} {:18} {:>12} {:>13} {:>13}  decision",
        "function", "step", "class", "trip", "serial cyc", "parallel cyc"
    );
    let mut threads_count = 0;
    for module in &g.program().modules {
        for func in &module.functions {
            let fplan = g.plan().for_function(&func.name).unwrap();
            for (idx, step) in func.steps.iter().enumerate() {
                let StepBody::Loop(nest) = &step.body else { continue };
                let lp = fplan.for_step(idx).unwrap();
                let d = advisor.decide(nest, lp);
                if d == Decision::Threads {
                    threads_count += 1;
                }
                println!(
                    "{:26} {:>4} {:18} {:>12} {:>13.0} {:>13.0}  {:?}",
                    func.name,
                    idx,
                    lp.class.name(),
                    advisor.trip_count(nest),
                    advisor.serial_cycles(nest, lp),
                    advisor.parallel_cycles(nest, lp),
                    d
                );
            }
        }
    }
    println!(
        "\nadvisor chose Threads for {threads_count} loops — the paper's manually-derived \
         v3 keeps exactly 2 (the longwave COLLAPSE(2) loops)."
    );
}
