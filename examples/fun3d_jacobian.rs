//! The FUN3D Jacobian-reconstruction case study end-to-end (paper §4.2):
//! the five-function GLAF decomposition, the §4.2.1 RMS acceptance check,
//! and the Fig. 7 parallelization/no-reallocation option space.
//!
//! Run with: `cargo run --release --example fun3d_jacobian [ncells]`

use glaf_repro::fun3d::mesh::Mesh;
use glaf_repro::fun3d::native::{native_jacobian, native_jacobian_rayon};
use glaf_repro::fun3d::variants::{run_real, run_simulated, Fun3dConfig, Fun3dVariant};
use glaf_repro::glaf::{compare_slices, rms};
use glaf_repro::simcpu::MachineModel;

fn main() {
    let ncell: i64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1000);
    println!("mesh: {ncell} cells, {} edges", ncell * 6);

    // 1. Reference outputs: engine original == Rust oracle, bitwise.
    let mesh = Mesh::build(ncell as usize);
    let reference = native_jacobian(&mesh);
    let engine_jac = run_real(Fun3dVariant::OriginalSerial, ncell, 1);
    assert_eq!(reference, engine_jac, "oracle and engine agree bitwise");
    println!(
        "reference RMS of the output array: {:.6e} (the §4.2.1 acceptance datum)",
        rms(&reference)
    );

    // 2. §4.2.1: every parallel configuration must reproduce the outputs
    //    at 1e-7 RMS.
    println!("\n=== RMS acceptance across configurations (4 real threads) ===");
    for cfg in [
        Fun3dConfig::default(),
        Fun3dConfig::best(),
        Fun3dConfig { par_cell_loop: true, no_realloc: true, ..Default::default() },
        Fun3dConfig {
            par_edgejp: true,
            par_cell_loop: true,
            par_edge_loop: true,
            par_ioff_search: true,
            no_realloc: true,
            fuse: false,
        },
    ] {
        let jac = run_real(Fun3dVariant::Glaf(cfg), ncell, 4);
        let r = compare_slices(&reference, &jac);
        println!(
            "  {:36} rms diff {:.2e}  -> {}",
            cfg.tag(),
            r.rms_diff,
            if r.passes_rms(1e-7) { "PASS" } else { "FAIL" }
        );
    }
    let rayon_jac = native_jacobian_rayon(&mesh);
    let r = compare_slices(&reference, &rayon_jac);
    println!("  {:36} rms diff {:.2e}  -> native rayon oracle", "rayon fold/reduce", r.rms_diff);

    // 3. Fig. 7 highlights on the simulated dual-Xeon.
    println!("\n=== Fig. 7 highlights (simulated, 16 threads) ===");
    let m = MachineModel::xeon_e5_2637v4_dual_like();
    let base = run_simulated(Fun3dVariant::OriginalSerial, ncell, 16, &m);
    let show = |label: &str, v: Fun3dVariant| {
        let r = run_simulated(v, ncell, 16, &m);
        println!(
            "  {:40} {:>9.3}x   (alloc {:.1e} cyc, fork {:.1e} cyc)",
            label,
            base.report.total_cycles / r.report.total_cycles,
            r.report.alloc_cycles,
            r.report.fork_join_cycles
        );
    };
    show("manual parallel (paper 3.85x)", Fun3dVariant::ManualParallel);
    show("GLAF EdgeJP + noRealloc (paper best 1.67x)", Fun3dVariant::Glaf(Fun3dConfig::best()));
    show(
        "GLAF EdgeJP + realloc (realloc storm)",
        Fun3dVariant::Glaf(Fun3dConfig { par_edgejp: true, ..Default::default() }),
    );
    show(
        "GLAF fully nested + realloc (paper ~1/128x)",
        Fun3dVariant::Glaf(Fun3dConfig {
            par_edgejp: true,
            par_cell_loop: true,
            par_edge_loop: true,
            par_ioff_search: true,
            no_realloc: false,
            fuse: false,
        }),
    );
}
