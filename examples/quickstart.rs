//! Quickstart: the full GLAF pipeline on a small kernel.
//!
//! Build a program through the GPI-equivalent builder, let the
//! auto-parallelization back-end analyze it, generate FORTRAN and C,
//! execute the FORTRAN serially and with real threads, and time it on
//! the simulated machine model.
//!
//! Run with: `cargo run --release --example quickstart`

use glaf::{Glaf, Lang};
use glaf_codegen::CodegenOptions;
use glaf_grid::{DataType, Grid};
use glaf_ir::{Expr, LValue, ProgramBuilder};
use glaf_repro::fortrans::{ArgVal, ExecMode};
use glaf_repro::{fortrans, simcpu};

fn main() {
    // 1. Build the program: dot = sum(a(i) * b(i)) plus a scaled copy.
    let n = Grid::build("n").typed(DataType::Integer).finish().unwrap();
    let a = Grid::build("a").typed(DataType::Real8).dim1(1024).finish().unwrap();
    let b = Grid::build("b").typed(DataType::Real8).dim1(1024).finish().unwrap();
    let out = Grid::build("outv").typed(DataType::Real8).dim1(1024).finish().unwrap();
    let acc = Grid::build("acc").typed(DataType::Real8).finish().unwrap();

    let program = ProgramBuilder::new()
        .module("quick")
        .function("dot_scale", DataType::Real8)
        .param(n)
        .param(a)
        .param(b)
        .param(out)
        .local(acc)
        .straight_step(
            "init",
            vec![glaf_ir::Stmt::assign(LValue::scalar("acc"), Expr::real(0.0))],
        )
        .loop_step("dot product")
        .foreach("i", Expr::int(1), Expr::scalar("n"))
        .formula(
            LValue::scalar("acc"),
            Expr::scalar("acc") + Expr::at("a", vec![Expr::idx("i")]) * Expr::at("b", vec![Expr::idx("i")]),
        )
        .done()
        .loop_step("scaled copy")
        .foreach("i", Expr::int(1), Expr::scalar("n"))
        .formula(
            LValue::at("outv", vec![Expr::idx("i")]),
            Expr::at("a", vec![Expr::idx("i")]) * Expr::scalar("acc"),
        )
        .done()
        .straight_step(
            "return",
            vec![glaf_ir::Stmt::Return(Some(Expr::scalar("acc")))],
        )
        .done()
        .done()
        .finish();

    // 2. Analyze: the auto-parallelization back-end.
    let g = Glaf::new(program).expect("valid program");
    for (name, fp) in &g.plan().functions {
        for lp in &fp.loops {
            println!(
                "loop {}#{}: class={} parallel={} reductions={:?}",
                name,
                lp.step_index,
                lp.class.name(),
                lp.parallelizable,
                lp.reductions.iter().map(|r| &r.grid).collect::<Vec<_>>()
            );
        }
    }

    // 3. Generate code in both languages.
    let f90 = g.generate(Lang::Fortran, &CodegenOptions::parallel_version(0));
    let c = g.generate(Lang::C, &CodegenOptions::parallel_version(0));
    println!("\n--- generated FORTRAN ({} SLOC) ---\n{}", f90.sloc, f90.source);
    println!("--- generated C ({} SLOC, excerpt) ---", c.sloc);
    for line in c.source.lines().filter(|l| l.contains("pragma") || l.contains("dot_scale")) {
        println!("{line}");
    }

    // 4. Execute through the engine, serial and threaded.
    let engine = g
        .compile_with(&CodegenOptions::parallel_version(0), &[])
        .expect("generated code compiles");
    let data: Vec<f64> = (1..=1024).map(|i| 1.0 / i as f64).collect();
    for mode in [ExecMode::Serial, ExecMode::Parallel { threads: 4 }] {
        let av = ArgVal::array_f(&data, 1);
        let bv = ArgVal::array_f(&data, 1);
        let ov = ArgVal::array_f(&vec![0.0; 1024], 1);
        let r = engine
            .run("dot_scale", &[ArgVal::I(1024), av, bv, ov.clone()], mode)
            .unwrap();
        println!("\n{mode:?}: dot = {:?}", r.result);
        println!("outv(1) = {}", ov.handle().unwrap().get_f(0));
    }

    // 5. Simulated timing on the paper's machine model.
    let av = ArgVal::array_f(&data, 1);
    let bv = ArgVal::array_f(&data, 1);
    let ov = ArgVal::array_f(&vec![0.0; 1024], 1);
    let sim = engine
        .run(
            "dot_scale",
            &[ArgVal::I(1024), av, bv, ov],
            ExecMode::Simulated { threads: 4 },
        )
        .unwrap();
    let report = simcpu::time_trace(&sim.trace, &simcpu::MachineModel::i5_2400_like());
    println!(
        "\nsimulated on {}: {:.0} cycles ({} parallel regions, {:.2} us)",
        report.machine,
        report.total_cycles,
        report.regions,
        report.total_seconds() * 1e6
    );
    let _ = fortrans::ExecMode::Serial;
}
