//! The Synoptic SARB case study end-to-end (paper §4.1): generate the six
//! kernels with GLAF, show the legacy-integration features in the output,
//! substitute them into the legacy code base, verify §4.1.1-style, and
//! print the Fig. 5 speed-up ladder.
//!
//! Run with: `cargo run --release --example sarb_integration`

use glaf_repro::glaf::compare_slices;
use glaf_repro::sarb::variants::{
    generated_source, run_real, run_simulated, SarbVariant,
};
use glaf_repro::simcpu::MachineModel;

fn main() {
    // 1. The generated code carries every §3 integration feature.
    let src = generated_source(SarbVariant::GlafSerial).unwrap();
    println!("=== §3 integration features in the generated FORTRAN ===");
    for needle in [
        "USE fuliou_mod",                     // §3.1 existing modules
        "COMMON /radparams/ u0, ee, tsfc",    // §3.2 COMMON blocks
        "REAL(8), DIMENSION(1:60) :: bf",     // §3.3 module-scope buffers
        "SUBROUTINE adjust2()",               // §3.4 subroutines
        "fi%pt",                              // §3.5 TYPE elements
        "ALOG(",                              // §3.6 extended library
    ] {
        let hit = src.lines().find(|l| l.contains(needle)).unwrap_or("(missing!)");
        println!("  {needle:40} -> {}", hit.trim());
    }

    // 2. §4.1.1 verification: substitute the GLAF subroutines into the
    //    legacy code base and compare side by side.
    println!("\n=== functional correctness (§4.1.1) ===");
    let original = run_real(SarbVariant::OriginalSerial, 4, 1);
    for v in [
        SarbVariant::GlafSerial,
        SarbVariant::GlafParallel(0),
        SarbVariant::GlafParallel(3),
    ] {
        let serial = run_real(v, 4, 1);
        let threaded = run_real(v, 4, 4);
        let rs = compare_slices(&original.flat(), &serial.flat());
        let rt = compare_slices(&original.flat(), &threaded.flat());
        println!(
            "  {:20} serial max|diff| = {:.1e}   4-thread max|diff| = {:.1e}",
            v.name(),
            rs.max_abs_diff,
            rt.max_abs_diff
        );
    }

    // 3. The Fig. 5 ladder on the simulated i5-2400.
    println!("\n=== Fig. 5 ladder (simulated, 8 columns, 4 threads) ===");
    let machine = MachineModel::i5_2400_like();
    let base = run_simulated(SarbVariant::OriginalSerial, 8, 4, &machine);
    for v in SarbVariant::table2() {
        let r = run_simulated(v, 8, 4, &machine);
        println!(
            "  {:20} {:>6.2}x",
            r.variant_name,
            base.report.total_cycles / r.report.total_cycles
        );
    }
}
